package hetgrid

import (
	"fmt"

	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
)

// HeartbeatScheme selects the CAN maintenance protocol (Section IV).
type HeartbeatScheme string

// The three heartbeat schemes of the paper.
const (
	// HeartbeatVanilla sends full neighbor tables to every neighbor:
	// most resilient, O(d²) volume per node.
	HeartbeatVanilla HeartbeatScheme = "vanilla"
	// HeartbeatCompact sends full tables only to the predetermined
	// take-over node: O(d) volume, least resilient under churn.
	HeartbeatCompact HeartbeatScheme = "compact"
	// HeartbeatAdaptive is compact plus on-demand full updates when a
	// node detects a broken link: near-vanilla resilience at
	// near-compact cost.
	HeartbeatAdaptive HeartbeatScheme = "adaptive"
)

func (s HeartbeatScheme) internal() (proto.Scheme, error) {
	switch s {
	case HeartbeatVanilla, "":
		return proto.Vanilla, nil
	case HeartbeatCompact:
		return proto.Compact, nil
	case HeartbeatAdaptive:
		return proto.Adaptive, nil
	default:
		return 0, fmt.Errorf("hetgrid: unknown heartbeat scheme %q", s)
	}
}

// MaintenanceOptions configures a maintenance simulation.
type MaintenanceOptions struct {
	// Dims is the CAN dimensionality (the paper evaluates 5, 8, 11,
	// 14). Default 11.
	Dims int
	// Scheme picks the heartbeat protocol. Default vanilla.
	Scheme HeartbeatScheme
	// HeartbeatSeconds is the heartbeat period. Default 60.
	HeartbeatSeconds float64
	// MaxPerFace bounds the actively tracked neighbors per zone face
	// (see DESIGN.md); 0 uses the default (2). Negative values disable
	// the bound entirely (full adjacency tracking — expensive in high
	// dimensions).
	MaxPerFace int
	// Seed drives all randomness. Default 1.
	Seed int64
}

// Maintenance simulates the overlay-upkeep plane: churn, heartbeats,
// take-overs, broken links and message costs.
type Maintenance struct {
	sim    *proto.Sim
	driver *proto.ChurnDriver
	churn  proto.ChurnConfig
}

// NewMaintenance creates a maintenance simulation with n initial nodes
// joining sequentially. meanEventGapSeconds sets the churn intensity
// after the initial joins (0 disables churn); gaps shorter than the
// heartbeat period are the paper's high-churn regime.
func NewMaintenance(opts MaintenanceOptions, n int, meanEventGapSeconds float64) (*Maintenance, error) {
	scheme, err := opts.Scheme.internal()
	if err != nil {
		return nil, err
	}
	if opts.Dims == 0 {
		opts.Dims = 11
	}
	if opts.Dims < 2 {
		return nil, fmt.Errorf("hetgrid: dims %d too small", opts.Dims)
	}
	if opts.HeartbeatSeconds == 0 {
		opts.HeartbeatSeconds = 60
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cfg := proto.DefaultConfig(scheme)
	cfg.HeartbeatPeriod = sim.FromSeconds(opts.HeartbeatSeconds)
	if opts.MaxPerFace > 0 {
		cfg.MaxPerFace = opts.MaxPerFace
	} else if opts.MaxPerFace < 0 {
		cfg.MaxPerFace = 0
	}
	cfg.Seed = opts.Seed
	s := proto.NewSim(opts.Dims, cfg)
	cc := proto.DefaultChurnConfig(n, sim.FromSeconds(meanEventGapSeconds))
	cc.Seed = opts.Seed
	d := proto.NewChurnDriver(s, cc)
	d.Start()
	return &Maintenance{sim: s, driver: d, churn: cc}, nil
}

// RunForSeconds advances the simulation.
func (m *Maintenance) RunForSeconds(seconds float64) {
	m.sim.Eng.RunUntil(m.sim.Eng.Now().Add(sim.FromSeconds(seconds)))
}

// StopChurn halts further join/leave events; protocol activity
// continues.
func (m *Maintenance) StopChurn() { m.driver.Stop() }

// NowSeconds returns the current virtual time in seconds.
func (m *Maintenance) NowSeconds() float64 { return m.sim.Eng.Now().Seconds() }

// AliveNodes returns the current population.
func (m *Maintenance) AliveNodes() int { return m.sim.AliveHosts() }

// BrokenLinks returns the current number of ground-truth adjacencies
// missing from node views (the paper's Figure 7 metric) and the number
// present but stale.
func (m *Maintenance) BrokenLinks() (missing, stale int) { return m.sim.BrokenLinks() }

// Traffic summarizes cumulative protocol traffic.
type Traffic struct {
	Messages int64
	Bytes    int64
}

// TotalTraffic returns cumulative message counts and volume.
func (m *Maintenance) TotalTraffic() Traffic {
	t := m.sim.Net.Total()
	return Traffic{Messages: t.MsgsSent, Bytes: t.BytesSent}
}

// ResetTrafficWindow starts a fresh measurement window.
func (m *Maintenance) ResetTrafficWindow() { m.sim.Net.ResetWindow() }

// WindowTraffic returns traffic since the last ResetTrafficWindow.
func (m *Maintenance) WindowTraffic() Traffic {
	t := m.sim.Net.Window()
	return Traffic{Messages: t.MsgsSent, Bytes: t.BytesSent}
}

// Churn reports the number of joins, graceful leaves and silent
// failures injected so far.
func (m *Maintenance) Churn() (joins, leaves, fails int) {
	return m.driver.Joins, m.driver.Leaves, m.driver.Fails
}
