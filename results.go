package hetgrid

import (
	"sort"

	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusFinished JobStatus = "finished"
)

// JobHandle tracks a submitted job.
type JobHandle struct {
	job *exec.Job
}

// ID returns the job's id.
func (h *JobHandle) ID() int64 { return int64(h.job.ID) }

// Status returns the job's current state.
func (h *JobHandle) Status() JobStatus {
	switch h.job.State {
	case exec.Running:
		return StatusRunning
	case exec.Finished:
		return StatusFinished
	default:
		return StatusQueued
	}
}

// RunNode returns the node the job was matched to.
func (h *JobHandle) RunNode() NodeID { return NodeID(h.job.RunNode) }

// DominantCE names the job's dominant computing element ("cpu" or
// "gpuN").
func (h *JobHandle) DominantCE() string { return h.job.Dominant.String() }

// WaitSeconds is the paper's headline metric: seconds between placement
// on the run node and execution start. Valid once the job has started.
func (h *JobHandle) WaitSeconds() float64 { return h.job.WaitTime().Seconds() }

// TurnaroundSeconds is the time from placement to completion. Valid
// once the job has finished.
func (h *JobHandle) TurnaroundSeconds() float64 { return h.job.Turnaround().Seconds() }

// GridStats summarizes a grid simulation.
type GridStats struct {
	Nodes         int
	Submitted     int
	Finished      int
	MeanWaitSec   float64
	P90WaitSec    float64
	P99WaitSec    float64
	MaxWaitSec    float64
	ZeroWaitShare float64 // fraction of finished jobs that never waited
	// MeanWaitByCE breaks the mean wait down by the jobs' dominant CE
	// ("cpu", "gpu1", ...), exposing where queueing concentrates.
	MeanWaitByCE map[string]float64
}

// Stats computes summary statistics over finished jobs.
func (g *Grid) Stats() GridStats {
	st := GridStats{
		Nodes:     g.ov.Len(),
		Submitted: g.cluster.Submitted(),
		Finished:  g.cluster.Finished(),
	}
	waits := make([]float64, 0, len(g.jobs))
	zero := 0
	ceSum := map[string]float64{}
	ceN := map[string]int{}
	for _, h := range g.jobs {
		if h.job.State != exec.Finished {
			continue
		}
		w := h.job.WaitTime().Seconds()
		waits = append(waits, w)
		if w == 0 {
			zero++
		}
		ce := h.job.Dominant.String()
		ceSum[ce] += w
		ceN[ce]++
	}
	if len(waits) == 0 {
		return st
	}
	sum := 0.0
	for _, w := range waits {
		sum += w
	}
	st.MeanWaitSec = sum / float64(len(waits))
	st.P90WaitSec = quantile(waits, 0.90)
	st.P99WaitSec = quantile(waits, 0.99)
	st.MaxWaitSec = quantile(waits, 1)
	st.ZeroWaitShare = float64(zero) / float64(len(waits))
	st.MeanWaitByCE = make(map[string]float64, len(ceSum))
	for ce, s := range ceSum {
		st.MeanWaitByCE[ce] = s / float64(ceN[ce])
	}
	return st
}

func quantile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// NodeInfo describes a live node for inspection.
type NodeInfo struct {
	ID       NodeID
	CPU      CPUSpec
	GPUSlots []int
	DiskGB   float64
	Queue    int
	Running  int
	Finished int
	Free     bool
}

// NodeInfos lists all live nodes sorted by id.
func (g *Grid) NodeInfos() []NodeInfo {
	var out []NodeInfo
	for _, n := range g.ov.Nodes() {
		rt := g.cluster.Runtime(n.ID)
		if rt == nil || n.Caps == nil {
			continue
		}
		cpu := n.Caps.CPU()
		info := NodeInfo{
			ID:       NodeID(n.ID),
			CPU:      CPUSpec{Clock: cpu.Clock, Cores: cpu.Cores, MemoryGB: cpu.Memory},
			DiskGB:   n.Caps.Disk,
			Queue:    rt.QueueLen(),
			Running:  rt.RunningJobs(),
			Finished: rt.FinishedJobs(),
			Free:     rt.IsFree(),
		}
		for _, ce := range n.Caps.CEs {
			if ce.Type != resource.TypeCPU {
				info.GPUSlots = append(info.GPUSlots, int(ce.Type))
			}
		}
		out = append(out, info)
	}
	return out
}
