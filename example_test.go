package hetgrid_test

import (
	"fmt"

	"hetgrid"
)

// The simplest possible grid: one node, one job.
func Example() {
	grid, _ := hetgrid.New(hetgrid.Options{Seed: 1})
	grid.AddNode(hetgrid.NodeSpec{
		CPU:    hetgrid.CPUSpec{Clock: 2.0, Cores: 4, MemoryGB: 8},
		DiskGB: 100,
	})
	h, _ := grid.Submit(hetgrid.JobSpec{
		CPU:           &hetgrid.CEReqSpec{Cores: 2},
		DurationHours: 1,
	})
	grid.Run()
	fmt.Printf("%s after waiting %.0fs\n", h.Status(), h.WaitSeconds())
	// Output: finished after waiting 0s
}

// A CUDA-style job routes to a node with the matching accelerator.
func ExampleGrid_Submit_gpuJob() {
	grid, _ := hetgrid.New(hetgrid.Options{GPUSlots: 1, Seed: 1})
	grid.AddNode(hetgrid.NodeSpec{ // CPU-only desktop
		CPU:    hetgrid.CPUSpec{Clock: 3.0, Cores: 8, MemoryGB: 16},
		DiskGB: 100,
	})
	grid.AddNode(hetgrid.NodeSpec{ // GPU workstation
		CPU:    hetgrid.CPUSpec{Clock: 2.0, Cores: 4, MemoryGB: 8},
		GPUs:   []hetgrid.GPUSpec{{Slot: 1, Clock: 1.2, Cores: 240, MemoryGB: 4}},
		DiskGB: 100,
	})
	h, _ := grid.Submit(hetgrid.JobSpec{
		CPU:           &hetgrid.CEReqSpec{Cores: 1},
		GPU:           &hetgrid.CEReqSpec{Cores: 128},
		GPUSlot:       1,
		DurationHours: 1,
	})
	fmt.Println("dominant CE:", h.DominantCE())
	// Output: dominant CE: gpu1
}

// Maintenance simulations expose the heartbeat schemes of Section IV.
func ExampleNewMaintenance() {
	m, _ := hetgrid.NewMaintenance(hetgrid.MaintenanceOptions{
		Dims:             5,
		Scheme:           hetgrid.HeartbeatCompact,
		HeartbeatSeconds: 10,
		Seed:             1,
	}, 25, 0 /* no churn */)
	m.RunForSeconds(300)
	missing, _ := m.BrokenLinks()
	fmt.Printf("nodes=%d broken=%d\n", m.AliveNodes(), missing)
	// Output: nodes=25 broken=0
}
