package can

import (
	"testing"

	"hetgrid/internal/rng"
)

// shadowLog is the unbounded reference the ring is checked against: it
// records every ChurnEvent ever emitted, indexed by version.
type shadowLog struct {
	events []ChurnEvent // events[i] advanced version i → i+1
}

func (l *shadowLog) record(o *Overlay) {
	// Called immediately after one successful Join or Leave: replay just
	// that step from the ring (gap 1 is always retained).
	if !o.ChurnSince(o.Version()-1, func(ev ChurnEvent) { l.events = append(l.events, ev) }) {
		panic("gap-1 ChurnSince failed")
	}
	if uint64(len(l.events)) != o.Version() {
		panic("shadow log out of sync")
	}
}

// checkLag replays the ring from `lag` versions behind and compares
// against the shadow log. wantOK says whether the ring must still cover
// the gap.
func checkLag(t *testing.T, o *Overlay, l *shadowLog, lag uint64, wantOK bool) {
	t.Helper()
	v := o.Version()
	from := v - lag
	var got []ChurnEvent
	ok := o.ChurnSince(from, func(ev ChurnEvent) { got = append(got, ev) })
	if ok != wantOK {
		t.Fatalf("ChurnSince(v-%d) at version %d: ok=%v, want %v (cap %d)", lag, v, ok, wantOK, o.JournalCap())
	}
	if !ok {
		if len(got) != 0 {
			t.Fatalf("failed ChurnSince invoked the callback %d times", len(got))
		}
		return
	}
	if uint64(len(got)) != lag {
		t.Fatalf("ChurnSince(v-%d) replayed %d events", lag, len(got))
	}
	for i, ev := range got {
		if want := l.events[from+uint64(i)]; ev != want {
			t.Fatalf("replay from v-%d: event %d = %+v, want %+v", lag, i, ev, want)
		}
	}
}

// churnStep applies one random join or leave, keeping the population in
// a small band so the ring capacity stays at minJournalCap while the
// version count wraps it several times.
func churnStep(t *testing.T, o *Overlay, s *rng.Stream, l *shadowLog) {
	t.Helper()
	if o.Len() > 8 && s.Bool(0.5) {
		nodes := o.Nodes()
		victim := nodes[s.Intn(len(nodes))].ID
		if _, err := o.Leave(victim); err != nil {
			t.Fatal(err)
		}
	} else {
		joined := false
		for try := 0; try < 8 && !joined; try++ {
			if _, err := o.Join(randomPoint(s, o.Dims()), nil); err == nil {
				joined = true
			}
		}
		if !joined {
			t.Fatal("could not place a join")
		}
	}
	l.record(o)
}

// TestChurnSinceRingWrapBoundary pins the ring-wrap boundary semantics
// of ChurnSince: a consumer exactly JournalCap() versions behind
// replays correctly (every event matching an unbounded shadow log), one
// more version behind falls back all-or-nothing, and both hold at and
// around version multiples of the capacity — where the ring's modular
// indexing wraps and an off-by-one would serve the newest event in
// place of the oldest.
func TestChurnSinceRingWrapBoundary(t *testing.T) {
	o := NewOverlay(2)
	s := rng.NewSplit(11, "journal-wrap")
	l := &shadowLog{}

	cap64 := uint64(minJournalCap)
	// Drive the version count through two full wraps of the ring.
	for o.Version() < 2*cap64+cap64/2 {
		churnStep(t, o, s, l)
		v := o.Version()
		// At every version near a wrap boundary (k·cap ± 2), and at a
		// sparse cadence in between, check the exact-cap and cap+1 lags.
		nearWrap := v%cap64 <= 2 || v%cap64 >= cap64-2
		if !nearWrap && v%97 != 0 {
			continue
		}
		if o.JournalCap() != minJournalCap {
			t.Fatalf("ring grew to %d at population %d; the wrap test needs the fixed floor", o.JournalCap(), o.Len())
		}
		checkLag(t, o, l, 0, true)
		checkLag(t, o, l, 1, true)
		if v >= cap64 {
			checkLag(t, o, l, cap64, true)    // exactly journalCap behind: replays
			checkLag(t, o, l, cap64+1, false) // one more: all-or-nothing fallback
		} else {
			checkLag(t, o, l, v, true) // everything since genesis is retained
		}
	}
	// Future versions are always rejected.
	if o.ChurnSince(o.Version()+1, func(ChurnEvent) {}) {
		t.Fatal("ChurnSince from a future version reported success")
	}
}

// TestJournalGrowsWithPopulation pins the adaptive-capacity contract:
// growth triggers when the population crosses twice the capacity, the
// resize preserves every retained event (replays across the grow
// boundary match the shadow log), and a freshly grown ring never claims
// a window it has not actually recorded.
func TestJournalGrowsWithPopulation(t *testing.T) {
	o := NewOverlay(2)
	s := rng.NewSplit(5, "journal-grow")
	l := &shadowLog{}

	join := func() {
		for try := 0; try < 8; try++ {
			if _, err := o.Join(randomPoint(s, 2), nil); err == nil {
				l.record(o)
				return
			}
		}
		t.Fatal("could not place a join")
	}

	for o.JournalCap() == minJournalCap {
		join()
		if o.Len() > 3*minJournalCap {
			t.Fatalf("ring never grew by population %d", o.Len())
		}
	}
	if got, want := o.JournalCap(), 2*minJournalCap; got != want {
		t.Fatalf("first growth step: cap %d, want %d", got, want)
	}
	if got := o.Len(); got < 2*minJournalCap || got > 2*minJournalCap+2 {
		t.Fatalf("growth triggered at population %d, want at the 2×cap crossing", got)
	}

	// Immediately after the grow, the ring's capacity exceeds its
	// recorded history only nominally — it must still serve exactly what
	// it retained and no more.
	v := o.Version()
	retained := uint64(o.journalLen) // pre-grow window plus the event that triggered growth
	checkLag(t, o, l, retained, true)
	checkLag(t, o, l, retained+1, false)

	// Fill past the old capacity: the enlarged window must now serve
	// gaps the old ring could not.
	for o.Version() < v+uint64(minJournalCap)/2 {
		join()
	}
	checkLag(t, o, l, uint64(minJournalCap)+uint64(minJournalCap)/2, true)
	checkLag(t, o, l, uint64(o.journalLen)+1, false)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}
