package can

// Two nodes are CAN neighbors when their zones share a (d-1)-dimensional
// face. The overlay maintains this adjacency incrementally: a join only
// affects the split zone's former neighborhood, and a leave only the
// neighborhoods of the departing, taking-over and merging nodes. The
// brute-force recomputation in check.go cross-validates the incremental
// maintenance in tests.

// NeighborIDs returns the IDs of node id's neighbors, sorted ascending.
// The slice is freshly allocated; hot paths should use NeighborView.
func (o *Overlay) NeighborIDs(id NodeID) []NodeID {
	view := o.NeighborView(id)
	ids := make([]NodeID, len(view))
	for i, nb := range view {
		ids[i] = nb.ID
	}
	return ids
}

// Neighbors returns node id's neighbors, sorted by ID. The slice is
// freshly allocated; hot paths should use NeighborView, which serves
// the same contents from the version-keyed cache.
func (o *Overlay) Neighbors(id NodeID) []*Node {
	return append([]*Node(nil), o.NeighborView(id)...)
}

// IsNeighbor reports whether a and b are currently neighbors.
func (o *Overlay) IsNeighbor(a, b NodeID) bool {
	_, ok := o.neighbors[a][b]
	return ok
}

// AvgNeighbors returns the mean neighbor count over all live nodes.
func (o *Overlay) AvgNeighbors() float64 {
	if len(o.nodes) == 0 {
		return 0
	}
	total := 0
	for _, set := range o.neighbors {
		total += len(set)
	}
	return float64(total) / float64(len(o.nodes))
}

func (o *Overlay) link(a, b NodeID) {
	o.neighbors[a][b] = struct{}{}
	o.neighbors[b][a] = struct{}{}
	o.invalidateView(a)
	o.invalidateView(b)
}

func (o *Overlay) unlink(a, b NodeID) {
	delete(o.neighbors[a], b)
	delete(o.neighbors[b], a)
	o.invalidateView(a)
	o.invalidateView(b)
}

// rewireAfterJoin updates adjacency after owner's zone was split to
// admit n. Any neighbor of either half abutted the original zone, so
// owner's former neighborhood is a complete candidate set.
func (o *Overlay) rewireAfterJoin(owner, n *Node) {
	oldNbrs := make([]NodeID, 0, len(o.neighbors[owner.ID]))
	for nb := range o.neighbors[owner.ID] {
		oldNbrs = append(oldNbrs, nb)
	}
	for _, nbID := range oldNbrs {
		nb := o.nodes[nbID]
		if _, _, ok := owner.Zone.Abuts(nb.Zone); !ok {
			o.unlink(owner.ID, nbID)
		}
		if _, _, ok := n.Zone.Abuts(nb.Zone); ok {
			o.link(n.ID, nbID)
		}
	}
	// The two halves always share the split-plane face.
	o.link(owner.ID, n.ID)
}

// adjacencyFrontier captures, before a leave mutates the tree, every
// node that could gain or lose an edge: the union of the neighborhoods
// of the departing node, the taker and the merging partner. The taker's
// new zone is the departing node's old zone, and the merged zone is the
// union of two former sibling zones, so all new edges land inside this
// set.
func (o *Overlay) adjacencyFrontier(leaving *Node, plan TakeoverPlan) map[NodeID]struct{} {
	set := make(map[NodeID]struct{})
	add := func(id NodeID) {
		for nb := range o.neighbors[id] {
			set[nb] = struct{}{}
		}
		set[id] = struct{}{}
	}
	add(leaving.ID)
	add(plan.Taker.ID)
	if plan.Merged != nil {
		add(plan.Merged.ID)
	}
	delete(set, leaving.ID)
	return set
}

// rewireAfterLeave rebuilds the neighborhoods of the nodes whose zones
// changed (the taker, and the merging partner if any) against the
// pre-captured candidate frontier.
func (o *Overlay) rewireAfterLeave(frontier map[NodeID]struct{}, plan TakeoverPlan) {
	changed := []*Node{plan.Taker}
	if plan.Merged != nil {
		changed = append(changed, plan.Merged)
	}
	for _, x := range changed {
		// Drop all of x's old edges; they will be rebuilt.
		for nb := range o.neighbors[x.ID] {
			o.unlink(x.ID, nb)
		}
	}
	for _, x := range changed {
		for cid := range frontier {
			if cid == x.ID {
				continue
			}
			c := o.nodes[cid]
			if c == nil {
				continue // the departed node itself
			}
			if _, _, ok := x.Zone.Abuts(c.Zone); ok {
				o.link(x.ID, cid)
			}
		}
	}
}
