package can

// Churn journal: a bounded ring of per-version membership deltas.
//
// Every Join and Leave advances Version() by exactly one and appends one
// ChurnEvent describing what that version changed: which node appeared,
// which disappeared, and which surviving nodes had their zones rewritten
// by the split or take-over. Consumers that cache membership-derived
// state (the aggregation table's per-dimension sorted orders, the
// delta-maintained Nodes() snapshot's external mirrors) replay the
// events since their last synchronized version and splice, instead of
// rebuilding from scratch on every churn event.
//
// The ring holds the last journalCap events. ChurnSince is
// all-or-nothing: when the caller's version gap exceeds the retained
// window it reports false without invoking the callback, and the caller
// falls back to its full rebuild — the same fallback that covers a
// table seeing an overlay for the first time. Correctness therefore
// never depends on the journal's capacity; only the cost of catching up
// does.

// NoneID marks an absent node reference in a ChurnEvent.
const NoneID NodeID = -1

// ChurnEvent is the membership delta of one overlay version step.
// Unused slots hold NoneID.
type ChurnEvent struct {
	// Joined is the node admitted by this version (a Join), else NoneID.
	Joined NodeID
	// Left is the node removed by this version (a Leave), else NoneID.
	Left NodeID
	// ZoneChanged lists surviving nodes whose zone was rewritten: on a
	// join, the owner whose zone was split; on a leave, the taker that
	// assumed the vacated zone and, for a deepest-pair take-over, the
	// merge partner that absorbed the taker's former zone.
	ZoneChanged [2]NodeID
}

// journalCap bounds the retained churn window. Consumers that poll on
// the heartbeat cadence see at most a few events per refresh; anything
// slower than journalCap events behind is cheaper to rebuild anyway.
const journalCap = 1024

// recordChurn files the event for the version step that was just
// completed (o.Version() already reflects it).
func (o *Overlay) recordChurn(ev ChurnEvent) {
	if o.journal == nil {
		o.journal = make([]ChurnEvent, journalCap)
	}
	o.journal[(o.Version()-1)%journalCap] = ev
}

// ChurnSince replays, in version order, the membership deltas that
// advanced the overlay from version `from` to the current version,
// invoking fn once per event. It reports false — without calling fn at
// all — when the gap exceeds the retained window (or `from` is from the
// future), in which case the caller must rebuild from scratch. A call
// with from == Version() is a successful no-op.
func (o *Overlay) ChurnSince(from uint64, fn func(ChurnEvent)) bool {
	v := o.Version()
	if from > v || v-from > journalCap || (v-from > 0 && o.journal == nil) {
		return false
	}
	for ver := from + 1; ver <= v; ver++ {
		fn(o.journal[(ver-1)%journalCap])
	}
	return true
}
