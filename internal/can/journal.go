package can

// Churn journal: a bounded ring of per-version membership deltas.
//
// Every Join and Leave advances Version() by exactly one and appends one
// ChurnEvent describing what that version changed: which node appeared,
// which disappeared, and which surviving nodes had their zones rewritten
// by the split or take-over. Consumers that cache membership-derived
// state (the aggregation table's per-dimension sorted orders, the
// delta-maintained Nodes() snapshot's external mirrors) replay the
// events since their last synchronized version and splice, instead of
// rebuilding from scratch on every churn event.
//
// The ring's capacity adapts to the population: it starts at
// minJournalCap and grows (never shrinks) so that it always retains at
// least half a population's worth of events. At steady per-node churn —
// each node joining or leaving with a fixed hazard rate — the events
// arriving within one polling interval scale linearly with the
// population, so a fixed cap that comfortably covers a 1,000-node grid
// is poisoned at 100,000 nodes: every heartbeat-cadence refresh would
// find its gap already evicted and fall back to a full rebuild. Growth
// re-files the retained events into the larger ring (amortized O(1) per
// event, capacity doubles), and ChurnSince additionally tracks how many
// events have actually been recorded, so a freshly grown ring never
// serves a gap it only nominally covers.
//
// ChurnSince is all-or-nothing: when the caller's version gap exceeds
// the retained window it reports false without invoking the callback,
// and the caller falls back to its full rebuild — the same fallback
// that covers a table seeing an overlay for the first time. Correctness
// therefore never depends on the journal's capacity; only the cost of
// catching up does.

// NoneID marks an absent node reference in a ChurnEvent.
const NoneID NodeID = -1

// ChurnEvent is the membership delta of one overlay version step.
// Unused slots hold NoneID.
type ChurnEvent struct {
	// Joined is the node admitted by this version (a Join), else NoneID.
	Joined NodeID
	// Left is the node removed by this version (a Leave), else NoneID.
	Left NodeID
	// ZoneChanged lists surviving nodes whose zone was rewritten: on a
	// join, the owner whose zone was split; on a leave, the taker that
	// assumed the vacated zone and, for a deepest-pair take-over, the
	// merge partner that absorbed the taker's former zone.
	ZoneChanged [2]NodeID
}

// minJournalCap is the retention floor (and the fixed capacity of every
// overlay up to 2·minJournalCap nodes). Consumers that poll on the
// heartbeat cadence see a few events per refresh at small populations;
// anything slower than the retained window behind is cheaper to rebuild
// anyway.
const minJournalCap = 1024

// journalCapFor returns the ring capacity for a population of n nodes:
// the smallest power of two ≥ n/2, floored at minJournalCap. Half the
// population out-lasts any realistic refresh interval — at a one-event-
// per-node-per-hour churn rate, a consumer would have to fall half an
// hour behind before the window evicts its gap — while keeping the ring
// a small fraction of the overlay's own per-node footprint.
func journalCapFor(n int) int {
	c := minJournalCap
	for c < n/2 {
		c <<= 1
	}
	return c
}

// recordChurn files the event for the version step that was just
// completed (o.Version() already reflects it), growing the ring first
// when the population has outpaced the current capacity.
func (o *Overlay) recordChurn(ev ChurnEvent) {
	if o.journal == nil {
		o.journalCap = journalCapFor(len(o.nodes))
		o.journal = make([]ChurnEvent, o.journalCap)
	} else if c := journalCapFor(len(o.nodes)); c > o.journalCap {
		o.growJournal(c)
	}
	o.journal[(o.Version()-1)%uint64(o.journalCap)] = ev
	if o.journalLen < o.journalCap {
		o.journalLen++
	}
}

// growJournal re-files the retained events into a larger ring. Versions
// keep their canonical slot (ver-1) mod cap, so ChurnSince needs no
// epoch bookkeeping across the resize; the retained count is unchanged
// (growth adds capacity, not history).
func (o *Overlay) growJournal(newCap int) {
	nj := make([]ChurnEvent, newCap)
	// The current version's event is stored after the resize; the old
	// ring retains versions [v-journalLen, v-1].
	v := o.Version()
	for ver := v - uint64(o.journalLen); ver < v; ver++ {
		nj[(ver-1)%uint64(newCap)] = o.journal[(ver-1)%uint64(o.journalCap)]
	}
	o.journal, o.journalCap = nj, newCap
}

// JournalCap returns the ring's current capacity (minJournalCap before
// any churn was recorded). Exposed for adaptive consumers that scale
// their own replay budgets with the retained window.
func (o *Overlay) JournalCap() int {
	if o.journal == nil {
		return minJournalCap
	}
	return o.journalCap
}

// ChurnSince replays, in version order, the membership deltas that
// advanced the overlay from version `from` to the current version,
// invoking fn once per event. It reports false — without calling fn at
// all — when the retained window no longer covers the gap (or `from` is
// from the future), in which case the caller must rebuild from scratch.
// The window is the number of events actually recorded, capped at the
// ring capacity: a consumer exactly JournalCap() versions behind a
// long-running overlay replays successfully; one more version behind
// falls back. A call with from == Version() is a successful no-op.
func (o *Overlay) ChurnSince(from uint64, fn func(ChurnEvent)) bool {
	v := o.Version()
	if from > v || v-from > uint64(o.journalLen) {
		return false
	}
	for ver := from + 1; ver <= v; ver++ {
		fn(o.journal[(ver-1)%uint64(o.journalCap)])
	}
	return true
}
