package can

import (
	"testing"

	"hetgrid/internal/geom"
	"hetgrid/internal/rng"
)

// TestNeighborViewMatchesNeighbors checks the cached view against the
// fresh-copy accessor on a static overlay.
func TestNeighborViewMatchesNeighbors(t *testing.T) {
	o := buildOverlay(t, 3, 40, 7)
	for _, n := range o.Nodes() {
		view := o.NeighborView(n.ID)
		want := o.Neighbors(n.ID)
		if len(view) != len(want) {
			t.Fatalf("node %d: view has %d neighbors, want %d", n.ID, len(view), len(want))
		}
		for i := range view {
			if view[i] != want[i] {
				t.Fatalf("node %d: view[%d] = %d, want %d", n.ID, i, view[i].ID, want[i].ID)
			}
		}
	}
}

// TestOutwardViewSemantics checks every outward pair abuts on the high
// side along the recorded dimension, and that no qualifying neighbor is
// missing.
func TestOutwardViewSemantics(t *testing.T) {
	o := buildOverlay(t, 4, 30, 11)
	for _, n := range o.Nodes() {
		want := 0
		for _, nb := range o.NeighborView(n.ID) {
			dim, dir, ok := n.Zone.Abuts(nb.Zone)
			if !ok {
				t.Fatalf("node %d: cached neighbor %d does not abut", n.ID, nb.ID)
			}
			if dir > 0 {
				want++
				_ = dim
			}
		}
		if got := len(o.OutwardView(n.ID)); got != want {
			t.Fatalf("node %d: OutwardView has %d pairs, want %d", n.ID, got, want)
		}
		for _, ow := range o.OutwardView(n.ID) {
			dim, dir, ok := n.Zone.Abuts(ow.Node.Zone)
			if !ok || dir <= 0 || dim != ow.Dim {
				t.Fatalf("node %d: outward pair (%d, dim %d) invalid (abuts dim %d dir %d ok %v)",
					n.ID, ow.Node.ID, ow.Dim, dim, dir, ok)
			}
		}
	}
}

// TestNodesSnapshotSharing pins the delta-maintained snapshot contract:
// Nodes() returns the same backing slice while the version is
// unchanged; a join appends to the shared backing (so a previously
// returned slice header still shows its old, unmutated prefix); a leave
// splices the shared backing in place, so slices held across a leave go
// stale and callers must re-fetch once Version() moves.
func TestNodesSnapshotSharing(t *testing.T) {
	o := buildOverlay(t, 3, 20, 13)
	a := o.Nodes()
	b := o.Nodes()
	if &a[0] != &b[0] {
		t.Fatal("Nodes() reallocated with no intervening churn")
	}
	held := append([]*Node(nil), a...)
	if _, err := o.Join(geom.Point{0.123, 0.456, 0.789}, nil); err != nil {
		t.Fatalf("join: %v", err)
	}
	c := o.Nodes()
	if len(c) != len(a)+1 {
		t.Fatalf("snapshot has %d nodes after join, want %d", len(c), len(a)+1)
	}
	// Joins append: the pre-join slice header still sees its old
	// contents (the shared prefix is untouched).
	for i := range held {
		if a[i] != held[i] {
			t.Fatalf("old snapshot mutated at index %d after join", i)
		}
	}
	// The post-join snapshot shares the same backing array, maintained by
	// delta rather than rebuilt.
	if &c[0] != &a[0] && cap(a) > len(a) {
		t.Fatal("join reallocated the snapshot despite spare capacity")
	}
	// Leaves splice in place: the shared backing mutates, and a fresh
	// fetch sees the departed node gone with ID order preserved.
	victim := c[len(c)/2].ID
	if _, err := o.Leave(victim); err != nil {
		t.Fatalf("leave: %v", err)
	}
	d := o.Nodes()
	if len(d) != len(c)-1 {
		t.Fatalf("snapshot has %d nodes after leave, want %d", len(d), len(c)-1)
	}
	if &d[0] != &c[0] {
		t.Fatal("leave reallocated the snapshot instead of splicing in place")
	}
	for i, n := range d {
		if n.ID == victim {
			t.Fatalf("departed node %d still in snapshot", victim)
		}
		if i > 0 && d[i-1].ID >= n.ID {
			t.Fatalf("snapshot order broken at index %d after splice", i)
		}
	}
}

// TestChurnCacheConsistency interleaves joins and leaves with cached-view
// reads, cross-validating the incremental caches against brute-force
// recomputation (Overlay.Validate) after every single mutation. This is
// the ground-truth check for the selective invalidation scheme: a missed
// invalidation shows up as a stale neighbor list or outward pair on the
// very next read.
func TestChurnCacheConsistency(t *testing.T) {
	const dims = 3
	for _, seed := range []int64{1, 2, 3} {
		o := NewOverlay(dims)
		s := rng.New(seed)
		var live []NodeID
		for step := 0; step < 160; step++ {
			if len(live) < 2 || s.Float64() < 0.6 {
				n, err := o.Join(randomPoint(s, dims), nil)
				if err != nil {
					continue
				}
				live = append(live, n.ID)
			} else {
				idx := s.Intn(len(live))
				id := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := o.Leave(id); err != nil {
					t.Fatalf("seed %d step %d: leave(%d): %v", seed, step, id, err)
				}
			}
			// Touch the caches the way the schedulers do, so stale
			// entries would be materialized before validation.
			for _, id := range live {
				_ = o.NeighborView(id)
				_ = o.OutwardView(id)
			}
			nodes := o.Nodes()
			if len(nodes) > 1 {
				from := nodes[s.Intn(len(nodes))]
				target := nodes[s.Intn(len(nodes))]
				if _, err := o.Route(from.ID, target.Point); err != nil {
					t.Fatalf("seed %d step %d: route: %v", seed, step, err)
				}
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("seed %d step %d (%d live): %v", seed, step, len(live), err)
			}
		}
	}
}

// TestRouteAppendReusesBuffer checks that RouteAppend routes into the
// caller's buffer without reallocating when capacity suffices.
func TestRouteAppendReusesBuffer(t *testing.T) {
	o := buildOverlay(t, 3, 50, 17)
	nodes := o.Nodes()
	buf := make([]*Node, 0, 4*len(nodes))
	for i := 0; i < 20; i++ {
		from := nodes[i%len(nodes)]
		target := nodes[(i*7+3)%len(nodes)]
		path, err := o.RouteAppend(buf, from.ID, target.Point)
		if err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
		if cap(path) != cap(buf) {
			t.Fatalf("route %d: buffer reallocated (cap %d -> %d)", i, cap(buf), cap(path))
		}
		if path[0] != from || !path[len(path)-1].Zone.Contains(target.Point) {
			t.Fatalf("route %d: bad endpoints", i)
		}
		buf = path
	}
}
