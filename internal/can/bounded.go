package can

import "sort"

// Bounded neighbor tracking.
//
// With n nodes spread over d dimensions and n ≪ 2^d, most zones span
// the full extent of many dimensions, so the raw face-sharing relation
// approaches all-pairs: tracking every abutting zone would cost O(n)
// state and messages per node, not the O(d) the paper's cost analysis
// (Section IV-A) is built on. A practical CAN node therefore maintains
// a routing-sufficient subset: for each face (dimension × direction) it
// tracks the few abutters sharing the largest portion of that face.
// The maintenance protocols (heartbeats, take-over announcements,
// broken-link accounting) operate on this bounded set; full adjacency
// remains available for ground-truth routing and for oracles.

// FaceKey identifies one face of a zone.
type FaceKey struct {
	Dim int
	Dir int // +1 or -1
}

// BoundedNeighborIDs returns the ground-truth bounded neighbor set of
// node id: for each face, the up-to-perFace abutting nodes with the
// largest shared-face measure (ties toward lower id), unioned and
// sorted. perFace ≤ 0 returns the full neighbor set.
func (o *Overlay) BoundedNeighborIDs(id NodeID, perFace int) []NodeID {
	if perFace <= 0 {
		return o.NeighborIDs(id)
	}
	n := o.nodes[id]
	if n == nil {
		return nil
	}
	type scored struct {
		id      NodeID
		overlap float64
	}
	buckets := make(map[FaceKey][]scored)
	for _, nb := range o.NeighborView(id) {
		dim, dir, ok := n.Zone.Abuts(nb.Zone)
		if !ok {
			continue
		}
		key := FaceKey{dim, dir}
		buckets[key] = append(buckets[key], scored{nb.ID, n.Zone.FaceOverlap(nb.Zone, dim)})
	}
	set := make(map[NodeID]struct{})
	for _, bucket := range buckets {
		sort.Slice(bucket, func(i, j int) bool {
			if bucket[i].overlap != bucket[j].overlap {
				return bucket[i].overlap > bucket[j].overlap
			}
			return bucket[i].id < bucket[j].id
		})
		if len(bucket) > perFace {
			bucket = bucket[:perFace]
		}
		for _, s := range bucket {
			set[s.id] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(set))
	for nbID := range set {
		out = append(out, nbID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
