package can

import (
	"strings"
	"testing"

	"hetgrid/internal/geom"
)

func TestBoundedNeighborsZeroMeansFull(t *testing.T) {
	o := buildOverlay(t, 3, 40, 50)
	for _, n := range o.Nodes() {
		full := o.NeighborIDs(n.ID)
		got := o.BoundedNeighborIDs(n.ID, 0)
		if len(got) != len(full) {
			t.Fatalf("node %d: perFace=0 returned %d of %d neighbors", n.ID, len(got), len(full))
		}
	}
}

func TestBoundedNeighborsSubsetOfFull(t *testing.T) {
	o := buildOverlay(t, 4, 80, 51)
	for _, n := range o.Nodes() {
		full := make(map[NodeID]bool)
		for _, id := range o.NeighborIDs(n.ID) {
			full[id] = true
		}
		for _, id := range o.BoundedNeighborIDs(n.ID, 2) {
			if !full[id] {
				t.Fatalf("node %d: bounded set contains non-neighbor %d", n.ID, id)
			}
		}
	}
}

func TestBoundedNeighborsRespectsPerFaceCap(t *testing.T) {
	o := buildOverlay(t, 3, 60, 52)
	for _, n := range o.Nodes() {
		for _, perFace := range []int{1, 2} {
			counts := make(map[FaceKey]int)
			for _, id := range o.BoundedNeighborIDs(n.ID, perFace) {
				nb := o.Node(id)
				dim, dir, ok := n.Zone.Abuts(nb.Zone)
				if !ok {
					t.Fatalf("bounded neighbor %d does not abut", id)
				}
				counts[FaceKey{dim, dir}]++
			}
			for key, c := range counts {
				if c > perFace {
					t.Fatalf("node %d face %v has %d > %d tracked neighbors", n.ID, key, c, perFace)
				}
			}
		}
	}
}

func TestBoundedNeighborsPicksLargestOverlap(t *testing.T) {
	// Left half vs right half split into two unequal zones: the bounded
	// set with perFace=1 must pick the larger-overlap abutter.
	o := NewOverlay(2)
	a, _ := o.Join(geom.Point{0.25, 0.5}, nil)
	o.Join(geom.Point{0.75, 0.1}, nil)         // becomes bottom right
	c, _ := o.Join(geom.Point{0.75, 0.9}, nil) // top right
	// Split the right side unevenly: push the plane so one side is larger.
	// With the midpoint rule, b owns [0.5,1)x[0,0.5), c owns [0.5,1)x[0.5,1):
	// equal overlap; tie-break by id picks the lower id. Shrink c's share
	// by adding a node high up.
	d, _ := o.Join(geom.Point{0.75, 0.95}, nil)
	_ = d
	got := o.BoundedNeighborIDs(a.ID, 1)
	// a's +x face: candidates are b (overlap 0.5), c and d (smaller).
	// The top pick must have the maximal overlap among them.
	best := got[len(got)-1]
	_ = best
	// Verify by direct computation.
	var maxOverlap float64
	var maxID NodeID = -1
	for _, nbID := range o.NeighborIDs(a.ID) {
		nb := o.Node(nbID)
		if dim, dir, ok := a.Zone.Abuts(nb.Zone); ok && dim == 0 && dir == +1 {
			ov := a.Zone.FaceOverlap(nb.Zone, 0)
			if ov > maxOverlap || (ov == maxOverlap && (maxID < 0 || nbID < maxID)) {
				maxOverlap, maxID = ov, nbID
			}
		}
	}
	found := false
	for _, id := range got {
		if id == maxID {
			found = true
		}
	}
	if !found {
		t.Fatalf("bounded set %v lacks the max-overlap +x neighbor %d", got, maxID)
	}
	_ = c
}

func TestBoundedNeighborsUnknownNode(t *testing.T) {
	o := NewOverlay(2)
	if got := o.BoundedNeighborIDs(99, 2); got != nil {
		t.Fatalf("unknown node returned %v", got)
	}
}

func TestBoundedNeighborsCoverEveryInnerFace(t *testing.T) {
	// Every inner face of every zone must contribute at least one
	// tracked neighbor (the space is partitioned, so an abutter exists).
	o := buildOverlay(t, 3, 50, 53)
	for _, n := range o.Nodes() {
		covered := make(map[FaceKey]bool)
		for _, id := range o.BoundedNeighborIDs(n.ID, 1) {
			nb := o.Node(id)
			if dim, dir, ok := n.Zone.Abuts(nb.Zone); ok {
				covered[FaceKey{dim, dir}] = true
			}
		}
		for dim := 0; dim < 3; dim++ {
			if n.Zone.Lo[dim] > 0 && !covered[FaceKey{dim, -1}] {
				t.Fatalf("node %d: inner face (%d,-1) has no tracked neighbor", n.ID, dim)
			}
			if n.Zone.Hi[dim] < 1 && !covered[FaceKey{dim, +1}] {
				t.Fatalf("node %d: inner face (%d,+1) has no tracked neighbor", n.ID, dim)
			}
		}
	}
}

func TestDumpTreeAndDepths(t *testing.T) {
	o := buildOverlay(t, 2, 15, 60)
	var b strings.Builder
	o.DumpTree(&b)
	out := b.String()
	if strings.Count(out, "- node") != 15 {
		t.Fatalf("dump shows %d leaves, want 15:\n%s", strings.Count(out, "- node"), out)
	}
	if !strings.Contains(out, "+ split dim") {
		t.Fatal("dump shows no internal splits")
	}
	depths := o.Depths()
	if len(depths) != 15 {
		t.Fatalf("Depths has %d entries", len(depths))
	}
	for id, d := range depths {
		if got := len(o.SplitHistory(id)); got != d {
			t.Fatalf("node %d: depth %d but history length %d", id, d, got)
		}
	}
}

func TestDumpEmptyOverlay(t *testing.T) {
	var b strings.Builder
	NewOverlay(2).DumpTree(&b)
	if !strings.Contains(b.String(), "empty") {
		t.Fatal("empty overlay dump wrong")
	}
}
