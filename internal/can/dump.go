package can

import (
	"fmt"
	"io"
)

// DumpTree writes the split tree in indented form: internal nodes show
// the split dimension and plane, leaves show owner, zone volume and
// neighbor count. Intended for debugging and the canviz tool.
func (o *Overlay) DumpTree(w io.Writer) {
	if o.root == nil {
		fmt.Fprintln(w, "(empty overlay)")
		return
	}
	o.dump(w, o.root, 0)
}

func (o *Overlay) dump(w io.Writer, t *treeNode, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	if t.isLeaf() {
		n := t.owner
		moved := ""
		if n.Moved {
			moved = " (moved)"
		}
		fmt.Fprintf(w, "%s- node %d%s vol=%.3g neighbors=%d\n",
			indent, n.ID, moved, t.zone.Volume(), len(o.neighbors[n.ID]))
		return
	}
	fmt.Fprintf(w, "%s+ split dim %d @ %.4f\n", indent, t.dim, t.plane)
	o.dump(w, t.low, depth+1)
	o.dump(w, t.high, depth+1)
}

// Depths returns the depth of every leaf, keyed by owner. The depth
// distribution is the split-history length distribution, which bounds
// per-node state a real node keeps for take-over.
func (o *Overlay) Depths() map[NodeID]int {
	out := make(map[NodeID]int, len(o.nodes))
	var walk func(t *treeNode, d int)
	walk = func(t *treeNode, d int) {
		if t == nil {
			return
		}
		if t.isLeaf() {
			out[t.owner.ID] = d
			return
		}
		walk(t.low, d+1)
		walk(t.high, d+1)
	}
	walk(o.root, 0)
	return out
}
