package can

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelRows runs check(i) for every row i in [0, n) across
// GOMAXPROCS goroutines (rows dealt round-robin, which balances the
// triangular sweeps below) and returns the error of the LOWEST failing
// row — the same error a serial ascending sweep would report, so
// parallelism never changes which violation a test sees. The callback
// must only read shared state.
func parallelRows(n int, check func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := check(i); err != nil {
				return err
			}
		}
		return nil
	}
	errRow := make([]int, workers)
	errVal := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func(k int) {
			defer wg.Done()
			errRow[k] = n
			for i := k; i < n; i += workers {
				if err := check(i); err != nil {
					errRow[k], errVal[k] = i, err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	best, bestRow := error(nil), n
	for k := 0; k < workers; k++ {
		if errVal[k] != nil && errRow[k] < bestRow {
			best, bestRow = errVal[k], errRow[k]
		}
	}
	return best
}

// Validate exhaustively checks the overlay's invariants. It is O(n²) and
// intended for tests and debugging, not for use inside simulations:
//
//  1. Every leaf zone contains its owner's coordinate, and the leaf
//     zones exactly partition each internal zone (and hence the space).
//  2. The nodes map and the tree agree on membership and zones.
//  3. The incrementally maintained adjacency equals the brute-force
//     face-sharing relation.
func (o *Overlay) Validate() error {
	if o.root == nil {
		if len(o.nodes) != 0 {
			return fmt.Errorf("empty tree but %d nodes registered", len(o.nodes))
		}
		return nil
	}

	seen := make(map[NodeID]*Node)
	var walk func(t *treeNode) error
	walk = func(t *treeNode) error {
		if !t.zone.Valid() {
			return fmt.Errorf("invalid zone %v", t.zone)
		}
		if t.isLeaf() {
			n := t.owner
			if !n.Moved && !t.zone.Contains(n.Point) {
				return fmt.Errorf("node %d: zone %v does not contain point %v", n.ID, t.zone, n.Point)
			}
			if n.Moved && t.zone.Contains(n.Point) {
				return fmt.Errorf("node %d: marked moved but zone contains its point", n.ID)
			}
			if !n.Zone.Equal(t.zone) {
				return fmt.Errorf("node %d: cached zone %v differs from tree zone %v", n.ID, n.Zone, t.zone)
			}
			if n.leaf != t {
				return fmt.Errorf("node %d: stale leaf pointer", n.ID)
			}
			if seen[n.ID] != nil {
				return fmt.Errorf("node %d owns two leaves", n.ID)
			}
			seen[n.ID] = n
			return nil
		}
		lo, hi := t.zone.Split(t.dim, t.plane)
		if !t.low.zone.Equal(lo) || !t.high.zone.Equal(hi) {
			return fmt.Errorf("children zones do not partition parent %v at dim %d plane %v", t.zone, t.dim, t.plane)
		}
		if t.low.parent != t || t.high.parent != t {
			return fmt.Errorf("broken parent pointers under zone %v", t.zone)
		}
		if err := walk(t.low); err != nil {
			return err
		}
		return walk(t.high)
	}
	if err := walk(o.root); err != nil {
		return err
	}

	if len(seen) != len(o.nodes) {
		return fmt.Errorf("tree has %d owners, nodes map has %d", len(seen), len(o.nodes))
	}
	for id := range o.nodes {
		if seen[id] == nil {
			return fmt.Errorf("node %d registered but owns no leaf", id)
		}
	}

	// Direct (tree-independent) zone cover/disjointness over the live
	// node set.
	if err := o.CheckZoneCover(); err != nil {
		return err
	}

	// Brute-force adjacency, sharded across workers by row (read-only
	// over the overlay; minutes of single-core time at 100k nodes).
	nodes := o.Nodes()
	if err := parallelRows(len(nodes), func(i int) error {
		a := nodes[i]
		for _, b := range nodes[i+1:] {
			_, _, abuts := a.Zone.Abuts(b.Zone)
			linked := o.IsNeighbor(a.ID, b.ID)
			if abuts != linked {
				return fmt.Errorf("nodes %d and %d: abuts=%v but linked=%v (zones %v / %v)",
					a.ID, b.ID, abuts, linked, a.Zone, b.Zone)
			}
			if linked != o.IsNeighbor(b.ID, a.ID) {
				return fmt.Errorf("asymmetric adjacency between %d and %d", a.ID, b.ID)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	return o.validateCaches()
}

// CheckSnapshot verifies the delta-maintained Nodes() snapshot against
// the membership ground truth: when the snapshot is marked valid it
// must be stamped with the current version and hold exactly the live
// nodes in strictly ascending ID order. Those three properties pin the
// slice bit-for-bit to what a from-scratch rebuild (map sweep + sort
// by ID) would produce, since the sorted order of a fixed node set is
// unique. Exported as a reusable oracle for property tests in other
// packages; a stale (invalid) snapshot carries no claim.
func (o *Overlay) CheckSnapshot() error {
	if !o.snapValid {
		return nil
	}
	if o.snapVersion != o.Version() {
		return fmt.Errorf("snapshot marked valid at version %d, overlay at %d", o.snapVersion, o.Version())
	}
	if len(o.snap) != len(o.nodes) {
		return fmt.Errorf("snapshot has %d nodes, overlay has %d", len(o.snap), len(o.nodes))
	}
	for i, n := range o.snap {
		if i > 0 && o.snap[i-1].ID >= n.ID {
			return fmt.Errorf("snapshot not strictly ID-sorted at index %d", i)
		}
		if o.nodes[n.ID] != n {
			return fmt.Errorf("snapshot entry %d is not the live node", n.ID)
		}
	}
	return nil
}

// CheckZoneCover verifies the space-partition invariant directly on the
// live node set, independent of the split tree: the zones' volumes sum
// to the unit volume (within float tolerance) and no two zones overlap.
// O(n²); exported as a reusable oracle for churn property tests.
func (o *Overlay) CheckZoneCover() error {
	if len(o.nodes) == 0 {
		return nil
	}
	nodes := o.Nodes()
	total := 0.0
	for _, n := range nodes {
		total += n.Zone.Volume()
	}
	if total < 0.999999 || total > 1.000001 {
		return fmt.Errorf("zone volumes sum to %v, want 1", total)
	}
	return parallelRows(len(nodes), func(i int) error {
		a := nodes[i]
		for _, b := range nodes[i+1:] {
			overlap := true
			for d := 0; d < o.dims; d++ {
				if a.Zone.Lo[d] >= b.Zone.Hi[d] || b.Zone.Lo[d] >= a.Zone.Hi[d] {
					overlap = false
					break
				}
			}
			if overlap {
				return fmt.Errorf("zones of nodes %d and %d overlap (%v / %v)", a.ID, b.ID, a.Zone, b.Zone)
			}
		}
		return nil
	})
}

// validateCaches cross-checks the version-keyed read caches against
// brute-force recomputation: the shared membership snapshot, and every
// cached per-node view that is currently marked valid (stale entries are
// rebuilt lazily, so their contents carry no claim).
func (o *Overlay) validateCaches() error {
	if err := o.CheckSnapshot(); err != nil {
		return err
	}

	for id, v := range o.views {
		if o.nodes[id] == nil {
			return fmt.Errorf("cached view for dead node %d", id)
		}
		if !v.valid {
			continue
		}
		n := o.nodes[id]
		// Neighbor list: exactly the adjacency set, strictly ID-sorted.
		if len(v.neighbors) != len(o.neighbors[id]) {
			return fmt.Errorf("node %d: cached view has %d neighbors, adjacency has %d",
				id, len(v.neighbors), len(o.neighbors[id]))
		}
		wantOut := 0
		for i, nb := range v.neighbors {
			if i > 0 && v.neighbors[i-1].ID >= nb.ID {
				return fmt.Errorf("node %d: cached neighbor view not strictly ID-sorted", id)
			}
			if o.nodes[nb.ID] != nb {
				return fmt.Errorf("node %d: cached view holds stale pointer for neighbor %d", id, nb.ID)
			}
			if !o.IsNeighbor(id, nb.ID) {
				return fmt.Errorf("node %d: cached view lists non-neighbor %d", id, nb.ID)
			}
			dim, dir, ok := n.Zone.Abuts(nb.Zone)
			if !ok {
				return fmt.Errorf("node %d: cached neighbor %d no longer abuts", id, nb.ID)
			}
			if dir > 0 {
				if wantOut >= len(v.outward) || v.outward[wantOut].Node != nb || v.outward[wantOut].Dim != dim {
					return fmt.Errorf("node %d: cached outward pairs disagree with Abuts at neighbor %d", id, nb.ID)
				}
				wantOut++
			}
		}
		if wantOut != len(v.outward) {
			return fmt.Errorf("node %d: cached view has %d outward pairs, brute force finds %d",
				id, len(v.outward), wantOut)
		}
	}
	return nil
}

// Stats summarizes overlay shape for diagnostics.
type Stats struct {
	Nodes         int
	AvgNeighbors  float64
	MaxNeighbors  int
	Joins, Leaves int
	TakeoverMoves int
}

// Stats returns current overlay statistics.
func (o *Overlay) Stats() Stats {
	s := Stats{Nodes: len(o.nodes), Joins: o.joins, Leaves: o.leaves, TakeoverMoves: o.takeoverMoves}
	total := 0
	for _, set := range o.neighbors {
		total += len(set)
		if len(set) > s.MaxNeighbors {
			s.MaxNeighbors = len(set)
		}
	}
	if len(o.nodes) > 0 {
		s.AvgNeighbors = float64(total) / float64(len(o.nodes))
	}
	return s
}
