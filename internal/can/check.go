package can

import "fmt"

// Validate exhaustively checks the overlay's invariants. It is O(n²) and
// intended for tests and debugging, not for use inside simulations:
//
//  1. Every leaf zone contains its owner's coordinate, and the leaf
//     zones exactly partition each internal zone (and hence the space).
//  2. The nodes map and the tree agree on membership and zones.
//  3. The incrementally maintained adjacency equals the brute-force
//     face-sharing relation.
func (o *Overlay) Validate() error {
	if o.root == nil {
		if len(o.nodes) != 0 {
			return fmt.Errorf("empty tree but %d nodes registered", len(o.nodes))
		}
		return nil
	}

	seen := make(map[NodeID]*Node)
	var walk func(t *treeNode) error
	walk = func(t *treeNode) error {
		if !t.zone.Valid() {
			return fmt.Errorf("invalid zone %v", t.zone)
		}
		if t.isLeaf() {
			n := t.owner
			if !n.Moved && !t.zone.Contains(n.Point) {
				return fmt.Errorf("node %d: zone %v does not contain point %v", n.ID, t.zone, n.Point)
			}
			if n.Moved && t.zone.Contains(n.Point) {
				return fmt.Errorf("node %d: marked moved but zone contains its point", n.ID)
			}
			if !n.Zone.Equal(t.zone) {
				return fmt.Errorf("node %d: cached zone %v differs from tree zone %v", n.ID, n.Zone, t.zone)
			}
			if n.leaf != t {
				return fmt.Errorf("node %d: stale leaf pointer", n.ID)
			}
			if seen[n.ID] != nil {
				return fmt.Errorf("node %d owns two leaves", n.ID)
			}
			seen[n.ID] = n
			return nil
		}
		lo, hi := t.zone.Split(t.dim, t.plane)
		if !t.low.zone.Equal(lo) || !t.high.zone.Equal(hi) {
			return fmt.Errorf("children zones do not partition parent %v at dim %d plane %v", t.zone, t.dim, t.plane)
		}
		if t.low.parent != t || t.high.parent != t {
			return fmt.Errorf("broken parent pointers under zone %v", t.zone)
		}
		if err := walk(t.low); err != nil {
			return err
		}
		return walk(t.high)
	}
	if err := walk(o.root); err != nil {
		return err
	}

	if len(seen) != len(o.nodes) {
		return fmt.Errorf("tree has %d owners, nodes map has %d", len(seen), len(o.nodes))
	}
	for id := range o.nodes {
		if seen[id] == nil {
			return fmt.Errorf("node %d registered but owns no leaf", id)
		}
	}

	// Brute-force adjacency.
	nodes := o.Nodes()
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			_, _, abuts := a.Zone.Abuts(b.Zone)
			linked := o.IsNeighbor(a.ID, b.ID)
			if abuts != linked {
				return fmt.Errorf("nodes %d and %d: abuts=%v but linked=%v (zones %v / %v)",
					a.ID, b.ID, abuts, linked, a.Zone, b.Zone)
			}
			if linked != o.IsNeighbor(b.ID, a.ID) {
				return fmt.Errorf("asymmetric adjacency between %d and %d", a.ID, b.ID)
			}
		}
	}
	return nil
}

// Stats summarizes overlay shape for diagnostics.
type Stats struct {
	Nodes         int
	AvgNeighbors  float64
	MaxNeighbors  int
	Joins, Leaves int
	TakeoverMoves int
}

// Stats returns current overlay statistics.
func (o *Overlay) Stats() Stats {
	s := Stats{Nodes: len(o.nodes), Joins: o.joins, Leaves: o.leaves, TakeoverMoves: o.takeoverMoves}
	total := 0
	for _, set := range o.neighbors {
		total += len(set)
		if len(set) > s.MaxNeighbors {
			s.MaxNeighbors = len(set)
		}
	}
	if len(o.nodes) > 0 {
		s.AvgNeighbors = float64(total) / float64(len(o.nodes))
	}
	return s
}
