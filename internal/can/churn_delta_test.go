package can

import (
	"sort"
	"testing"

	"hetgrid/internal/geom"
	"hetgrid/internal/rng"
)

// TestSnapshotDeltaProperty drives random churn and, after every single
// mutation, compares the delta-maintained Nodes() snapshot against a
// from-scratch rebuild of the membership (map sweep + ID sort) and
// checks the zone cover/disjointness invariants through the exported
// oracles. This is the satellite property test for the append/splice
// maintenance: a missed splice, a broken sort order or a stale pointer
// shows up on the very next comparison.
func TestSnapshotDeltaProperty(t *testing.T) {
	const dims = 3
	for _, seed := range []int64{11, 12, 13} {
		o := NewOverlay(dims)
		s := rng.New(seed)
		var live []NodeID
		// Materialize the snapshot up front so every subsequent churn
		// event exercises the delta maintenance rather than the first
		// lazy build.
		_ = o.Nodes()
		for step := 0; step < 200; step++ {
			if len(live) < 2 || s.Float64() < 0.55 {
				n, err := o.Join(randomPoint(s, dims), nil)
				if err != nil {
					continue
				}
				live = append(live, n.ID)
			} else {
				i := s.Intn(len(live))
				id := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := o.Leave(id); err != nil {
					t.Fatalf("seed %d step %d: leave(%d): %v", seed, step, id, err)
				}
			}
			got := o.Nodes()
			want := make([]*Node, 0, o.Len())
			for _, n := range o.nodes {
				want = append(want, n)
			}
			sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d: snapshot has %d nodes, rebuild has %d", seed, step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d: snapshot[%d] = node %d, rebuild has %d",
						seed, step, i, got[i].ID, want[i].ID)
				}
			}
			if err := o.CheckSnapshot(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if err := o.CheckZoneCover(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

// replayMembership folds a churn event into an id set, the way a
// journal consumer tracks membership.
func replayMembership(set map[NodeID]struct{}, ev ChurnEvent) {
	if ev.Left != NoneID {
		delete(set, ev.Left)
	}
	if ev.Joined != NoneID {
		set[ev.Joined] = struct{}{}
	}
}

// TestChurnJournalReplay checks that replaying ChurnSince deltas
// reconstructs the live membership exactly, that every zone-changed
// reference in an event pointed at a node alive immediately after that
// event, and that the joined/left slots are mutually exclusive.
func TestChurnJournalReplay(t *testing.T) {
	const dims = 2
	o := NewOverlay(dims)
	s := rng.New(42)
	have := make(map[NodeID]struct{})
	synced := uint64(0)
	var live []NodeID
	for step := 0; step < 300; step++ {
		if len(live) == 0 || s.Float64() < 0.55 {
			if n, err := o.Join(randomPoint(s, dims), nil); err == nil {
				live = append(live, n.ID)
			}
		} else {
			i := s.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := o.Leave(id); err != nil {
				t.Fatalf("step %d: leave(%d): %v", step, id, err)
			}
		}
		if step%3 != 0 {
			continue // let deltas batch up across several versions
		}
		ok := o.ChurnSince(synced, func(ev ChurnEvent) {
			if ev.Joined != NoneID && ev.Left != NoneID {
				t.Fatalf("event claims both a join (%d) and a leave (%d)", ev.Joined, ev.Left)
			}
			if ev.Joined == NoneID && ev.Left == NoneID {
				t.Fatal("event with neither join nor leave")
			}
			replayMembership(have, ev)
			for _, zid := range ev.ZoneChanged {
				if zid == NoneID {
					continue
				}
				if _, alive := have[zid]; !alive {
					t.Fatalf("event reports zone change of node %d not in replayed membership", zid)
				}
			}
		})
		if !ok {
			t.Fatalf("step %d: journal gap within %d-step window", step, 3)
		}
		synced = o.Version()
		if len(have) != o.Len() {
			t.Fatalf("step %d: replayed membership has %d nodes, overlay has %d", step, len(have), o.Len())
		}
		for _, n := range o.Nodes() {
			if _, okm := have[n.ID]; !okm {
				t.Fatalf("step %d: live node %d missing from replayed membership", step, n.ID)
			}
		}
	}
}

// TestChurnJournalGap checks the all-or-nothing fallback contract: a
// consumer further behind than the retained window gets false and no
// callbacks; a consumer exactly at the current version gets a
// successful no-op; a future version is rejected.
func TestChurnJournalGap(t *testing.T) {
	o := NewOverlay(2)
	s := rng.New(7)
	for i := 0; i < minJournalCap+50; i++ {
		for try := 0; try < 4; try++ {
			if _, err := o.Join(randomPoint(s, 2), nil); err == nil {
				break
			}
		}
	}
	v := o.Version()
	calls := 0
	if o.ChurnSince(0, func(ChurnEvent) { calls++ }) {
		t.Fatal("gap beyond the retained window reported success")
	}
	if calls != 0 {
		t.Fatalf("failed ChurnSince invoked the callback %d times", calls)
	}
	if !o.ChurnSince(v, func(ChurnEvent) { calls++ }) || calls != 0 {
		t.Fatal("ChurnSince at the current version must be a successful no-op")
	}
	if o.ChurnSince(v+1, func(ChurnEvent) {}) {
		t.Fatal("ChurnSince from a future version reported success")
	}
	if !o.ChurnSince(v-5, func(ChurnEvent) { calls++ }) || calls != 5 {
		t.Fatalf("in-window replay delivered %d events, want 5", calls)
	}
}

// TestLeaveRootNeverSplit is the regression test for leaving nodes
// whose leaf has no parent — the root/never-split geometry: a
// single-node overlay empties, accepts a fresh join, and the journal
// and snapshot stay coherent through the empty state.
func TestLeaveRootNeverSplit(t *testing.T) {
	o := NewOverlay(2)
	_ = o.Nodes() // force delta maintenance from the start
	n, err := o.Join(geom.Point{0.5, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.leaf.parent != nil {
		t.Fatal("single node's leaf must be the root")
	}
	plan, err := o.Leave(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Taker != nil || plan.Merged != nil {
		t.Fatalf("last-node leave returned a non-empty plan %+v", plan)
	}
	if len(o.Nodes()) != 0 {
		t.Fatal("snapshot not empty after last leave")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Journal must carry the drain and the rebirth.
	var events []ChurnEvent
	if !o.ChurnSince(0, func(ev ChurnEvent) { events = append(events, ev) }) {
		t.Fatal("journal gap after two events")
	}
	if len(events) != 2 || events[0].Joined != n.ID || events[1].Left != n.ID {
		t.Fatalf("journal = %+v, want join then leave of node %d", events, n.ID)
	}
	m, err := o.Join(geom.Point{0.25, 0.75}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Nodes(); len(got) != 1 || got[0] != m {
		t.Fatalf("snapshot after rebirth = %v", got)
	}
	if !m.Zone.Equal(geom.UnitZone(2)) {
		t.Fatal("reborn overlay's first node must own the whole space")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaveDuringMergeChain drains a deep one-sided overlay node by
// node. Chained point geometry keeps producing deepest-pair take-overs
// (plan.Merged != nil), so consecutive leaves repeatedly hit the
// merge-then-move path — including leaves of nodes that were themselves
// just relocated by a previous merge — down through the two-node
// direct-sibling case and the final root leave.
func TestLeaveDuringMergeChain(t *testing.T) {
	o := NewOverlay(2)
	_ = o.Nodes()
	pts := []geom.Point{
		{0.05, 0.5}, {0.95, 0.5}, {0.55, 0.5}, {0.75, 0.5},
		{0.65, 0.5}, {0.85, 0.5}, {0.60, 0.5}, {0.70, 0.5},
	}
	var ids []NodeID
	for _, p := range pts {
		n, err := o.Join(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, n.ID)
	}
	mergedLeaves := 0
	// Leave shallowest-first (node 0 sits across the first split from
	// everyone else), so take-overs keep coming from the deep chain.
	for _, id := range ids {
		predicted, hadPlan := o.Takeover(id)
		plan, err := o.Leave(id)
		if err != nil {
			t.Fatalf("leave(%d): %v", id, err)
		}
		if hadPlan && (plan.Taker != predicted.Taker || plan.Merged != predicted.Merged) {
			t.Fatalf("leave(%d) executed %+v, Takeover predicted %+v", id, plan, predicted)
		}
		if plan.Merged != nil {
			mergedLeaves++
			if plan.Merged == plan.Taker {
				t.Fatalf("leave(%d): merge partner equals taker", id)
			}
			if o.Node(plan.Merged.ID) == nil || o.Node(plan.Taker.ID) == nil {
				t.Fatalf("leave(%d): plan references departed nodes", id)
			}
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("after leave(%d): %v", id, err)
		}
	}
	if mergedLeaves == 0 {
		t.Fatal("chain geometry produced no deepest-pair take-over; regression target unexercised")
	}
	if o.Len() != 0 {
		t.Fatalf("%d nodes left after full drain", o.Len())
	}
}

// TestTakeoverOfTakerAfterMerge pins the edge where the node departing
// next is the taker that just moved in a deepest-pair take-over: its
// leaf pointer was rewritten to the vacated leaf, and a stale pointer
// would derail the second plan.
func TestTakeoverOfTakerAfterMerge(t *testing.T) {
	o := NewOverlay(2)
	pts := []geom.Point{
		{0.1, 0.5}, {0.9, 0.5}, {0.6, 0.5}, {0.75, 0.5},
	}
	var nodes []*Node
	for _, p := range pts {
		n, err := o.Join(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	plan, err := o.Leave(nodes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Merged == nil {
		t.Fatalf("geometry no longer yields a deepest-pair move: %+v", plan)
	}
	// Immediately remove the relocated taker.
	if _, err := o.Leave(plan.Taker.ID); err != nil {
		t.Fatalf("leave of relocated taker: %v", err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckZoneCover(); err != nil {
		t.Fatal(err)
	}
}
