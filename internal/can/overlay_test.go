package can

import (
	"testing"

	"hetgrid/internal/geom"
	"hetgrid/internal/rng"
)

func randomPoint(s *rng.Stream, d int) geom.Point {
	p := make(geom.Point, d)
	for i := range p {
		p[i] = s.Float64() * 0.999
	}
	return p
}

// buildOverlay joins n nodes at random points, retrying on coordinate
// collisions, and validates the result.
func buildOverlay(t *testing.T, dims, n int, seed int64) *Overlay {
	t.Helper()
	o := NewOverlay(dims)
	s := rng.New(seed)
	for i := 0; i < n; i++ {
		var err error
		for try := 0; try < 5; try++ {
			if _, err = o.Join(randomPoint(s, dims), nil); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("join %d failed: %v", i, err)
		}
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("invalid overlay after %d joins: %v", n, err)
	}
	return o
}

func TestFirstNodeOwnsWholeSpace(t *testing.T) {
	o := NewOverlay(3)
	n, err := o.Join(geom.Point{0.5, 0.5, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Zone.Equal(geom.UnitZone(3)) {
		t.Fatalf("first node zone = %v, want unit zone", n.Zone)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d, want 1", o.Len())
	}
	if len(o.NeighborIDs(n.ID)) != 0 {
		t.Fatal("single node must have no neighbors")
	}
}

func TestJoinSplitsBetweenPoints(t *testing.T) {
	o := NewOverlay(2)
	a, _ := o.Join(geom.Point{0.2, 0.5}, nil)
	b, err := o.Join(geom.Point{0.8, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Farthest-separated dimension is 0; plane midway at 0.5.
	if a.Zone.Hi[0] != 0.5 || b.Zone.Lo[0] != 0.5 {
		t.Fatalf("split plane wrong: a=%v b=%v", a.Zone, b.Zone)
	}
	if !a.Zone.Contains(a.Point) || !b.Zone.Contains(b.Point) {
		t.Fatal("zones must contain their owners' points")
	}
	if !o.IsNeighbor(a.ID, b.ID) {
		t.Fatal("split halves must be neighbors")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinDuplicatePointRejected(t *testing.T) {
	o := NewOverlay(2)
	p := geom.Point{0.3, 0.3}
	if _, err := o.Join(p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Join(p.Clone(), nil); err != ErrDuplicatePoint {
		t.Fatalf("duplicate join error = %v, want ErrDuplicatePoint", err)
	}
}

func TestJoinRejectsBadPoints(t *testing.T) {
	o := NewOverlay(2)
	if _, err := o.Join(geom.Point{0.5}, nil); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if _, err := o.Join(geom.Point{1.0, 0.5}, nil); err == nil {
		t.Fatal("coordinate 1.0 accepted (space is half-open)")
	}
	if _, err := o.Join(geom.Point{-0.1, 0.5}, nil); err == nil {
		t.Fatal("negative coordinate accepted")
	}
}

func TestOwnerLocatesPoints(t *testing.T) {
	o := buildOverlay(t, 3, 50, 1)
	s := rng.New(99)
	for i := 0; i < 200; i++ {
		p := randomPoint(s, 3)
		owner := o.Owner(p)
		if owner == nil || !owner.Zone.Contains(p) {
			t.Fatalf("Owner(%v) = %v; zone does not contain point", p, owner)
		}
	}
}

func TestZonesPartitionSpace(t *testing.T) {
	o := buildOverlay(t, 4, 100, 2)
	total := 0.0
	for _, n := range o.Nodes() {
		total += n.Zone.Volume()
	}
	if total < 0.999999 || total > 1.000001 {
		t.Fatalf("zone volumes sum to %v, want 1", total)
	}
}

func TestLastNodeLeaveEmptiesOverlay(t *testing.T) {
	o := NewOverlay(2)
	n, _ := o.Join(geom.Point{0.5, 0.5}, nil)
	if _, err := o.Leave(n.ID); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 0 {
		t.Fatalf("Len = %d after last leave, want 0", o.Len())
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// The overlay must accept joins again.
	if _, err := o.Join(geom.Point{0.1, 0.1}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveOfUnknownNode(t *testing.T) {
	o := NewOverlay(2)
	if _, err := o.Leave(123); err == nil {
		t.Fatal("leave of unknown node did not error")
	}
}

func TestLeaveSiblingLeafMerges(t *testing.T) {
	o := NewOverlay(2)
	a, _ := o.Join(geom.Point{0.2, 0.5}, nil)
	b, _ := o.Join(geom.Point{0.8, 0.5}, nil)
	plan, err := o.Leave(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Taker != a || plan.Merged != nil {
		t.Fatalf("plan = %+v, want direct sibling takeover by a", plan)
	}
	if !a.Zone.Equal(geom.UnitZone(2)) {
		t.Fatalf("a's zone after merge = %v, want unit zone", a.Zone)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveWithDeepSiblingUsesDeepestPair(t *testing.T) {
	// Build a 1-ish dimensional chain so the sibling subtree is deep:
	// points along dim 0 produce nested splits.
	o := NewOverlay(2)
	pts := []geom.Point{
		{0.1, 0.5}, {0.9, 0.5}, {0.6, 0.5}, {0.75, 0.5},
	}
	var nodes []*Node
	for _, p := range pts {
		n, err := o.Join(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	// Node 0 owns the low zone; its sibling subtree holds nodes 1..3.
	plan, err := o.Leave(nodes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Merged == nil {
		t.Fatalf("expected a deepest-pair move, got %+v", plan)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// The taker now owns the vacated zone, so it must contain its point?
	// No: the taker moved, so the vacated zone need not contain the
	// taker's coordinate. This is the one place the CAN relaxes the
	// zone-contains-point invariant transiently in a real system; our
	// simulator keeps the node's point unchanged, so Validate must have
	// been updated... instead we check ownership coverage only.
	total := 0.0
	for _, n := range o.Nodes() {
		total += n.Zone.Volume()
	}
	if total < 0.999999 || total > 1.000001 {
		t.Fatalf("coverage broken after deep takeover: %v", total)
	}
}

func TestTakeoverPlanMatchesLeave(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		o := buildOverlay(t, 3, 30, seed+100)
		for _, n := range o.Nodes() {
			plan, ok := o.Takeover(n.ID)
			if !ok {
				t.Fatalf("no takeover plan for node %d in 30-node overlay", n.ID)
			}
			if plan.Taker == nil || plan.Taker.ID == n.ID {
				t.Fatalf("bad taker in plan %+v", plan)
			}
		}
		// Leave one node and verify the executed plan matches the query.
		victim := o.Nodes()[int(seed)%o.Len()]
		want, _ := o.Takeover(victim.ID)
		got, err := o.Leave(victim.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Taker != want.Taker || got.Merged != want.Merged {
			t.Fatalf("executed plan %+v differs from predicted %+v", got, want)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTakeoverSingleNode(t *testing.T) {
	o := NewOverlay(2)
	n, _ := o.Join(geom.Point{0.5, 0.5}, nil)
	if _, ok := o.Takeover(n.ID); ok {
		t.Fatal("single node must have no takeover plan")
	}
}

func TestSplitHistoryReflectsZone(t *testing.T) {
	o := buildOverlay(t, 3, 40, 3)
	for _, n := range o.Nodes() {
		recs := o.SplitHistory(n.ID)
		// Replaying the history from the unit zone must reproduce the
		// node's current zone.
		z := geom.UnitZone(3)
		for _, r := range recs {
			lo, hi := z.Split(r.Dim, r.Plane)
			if r.Low {
				z = lo
			} else {
				z = hi
			}
		}
		if !z.Equal(n.Zone) {
			t.Fatalf("node %d: replayed history %v -> %v, zone is %v", n.ID, recs, z, n.Zone)
		}
	}
}

func TestNodesSortedByID(t *testing.T) {
	o := buildOverlay(t, 2, 20, 4)
	ns := o.Nodes()
	for i := 1; i < len(ns); i++ {
		if ns[i-1].ID >= ns[i].ID {
			t.Fatal("Nodes() not sorted by ID")
		}
	}
}

// TestChurnProperty is the core structural property test: under a long
// random sequence of joins and leaves, every overlay invariant holds
// after every operation (zones partition the space, adjacency matches
// brute-force face sharing, tree is consistent).
func TestChurnProperty(t *testing.T) {
	for _, dims := range []int{2, 3, 5} {
		dims := dims
		s := rng.New(int64(1000 + dims))
		o := NewOverlay(dims)
		var live []NodeID
		ops := 400
		if testing.Short() {
			ops = 120
		}
		for op := 0; op < ops; op++ {
			if len(live) == 0 || s.Bool(0.55) {
				n, err := o.Join(randomPoint(s, dims), nil)
				if err != nil {
					continue
				}
				live = append(live, n.ID)
			} else {
				i := s.Intn(len(live))
				id := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := o.Leave(id); err != nil {
					t.Fatalf("dims %d op %d: leave: %v", dims, op, err)
				}
			}
			// Validating every op is O(n²); validate every few ops.
			if op%7 == 0 {
				if err := o.Validate(); err != nil {
					t.Fatalf("dims %d op %d: %v", dims, op, err)
				}
			}
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("dims %d final: %v", dims, err)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	o := buildOverlay(t, 3, 80, 5)
	s := rng.New(77)
	nodes := o.Nodes()
	for i := 0; i < 100; i++ {
		from := nodes[s.Intn(len(nodes))]
		target := randomPoint(s, 3)
		path, err := o.Route(from.ID, target)
		if err != nil {
			t.Fatalf("route failed: %v", err)
		}
		last := path[len(path)-1]
		if !last.Zone.Contains(target) {
			t.Fatalf("route ended at %d whose zone does not contain target", last.ID)
		}
		if path[0] != from {
			t.Fatal("path must start at the source")
		}
		// Consecutive path nodes must be neighbors.
		for j := 1; j < len(path); j++ {
			if !o.IsNeighbor(path[j-1].ID, path[j].ID) {
				t.Fatal("path hops between non-neighbors")
			}
		}
	}
}

func TestRouteFromSelfZone(t *testing.T) {
	o := buildOverlay(t, 2, 10, 6)
	n := o.Nodes()[0]
	path, err := o.Route(n.ID, n.Point)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != n {
		t.Fatalf("routing to own zone should be a single-node path, got %d hops", len(path))
	}
}

func TestRouteErrors(t *testing.T) {
	o := buildOverlay(t, 2, 5, 7)
	if _, err := o.Route(999, geom.Point{0.5, 0.5}); err == nil {
		t.Fatal("route from unknown node did not error")
	}
	if _, err := o.Route(o.Nodes()[0].ID, geom.Point{0.5}); err == nil {
		t.Fatal("route to wrong-dimension target did not error")
	}
}

func TestAvgNeighborsGrowsWithDims(t *testing.T) {
	avg2 := buildOverlay(t, 2, 200, 8).AvgNeighbors()
	avg6 := buildOverlay(t, 6, 200, 8).AvgNeighbors()
	if avg6 <= avg2 {
		t.Fatalf("avg neighbors: dims=6 %v <= dims=2 %v; should grow with dimensionality", avg6, avg2)
	}
}

func TestStatsCounters(t *testing.T) {
	o := buildOverlay(t, 2, 10, 9)
	st := o.Stats()
	if st.Nodes != 10 || st.Joins != 10 || st.Leaves != 0 {
		t.Fatalf("stats = %+v", st)
	}
	o.Leave(o.Nodes()[0].ID)
	st = o.Stats()
	if st.Nodes != 9 || st.Leaves != 1 {
		t.Fatalf("stats after leave = %+v", st)
	}
}
