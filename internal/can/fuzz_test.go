package can

import (
	"testing"

	"hetgrid/internal/geom"
)

// FuzzChurnSequence drives the overlay with an arbitrary byte-encoded
// sequence of joins and leaves and asserts the full invariant set after
// the run. Each byte encodes one operation: high bit selects join vs
// leave, low bits perturb coordinates / the victim index.
func FuzzChurnSequence(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0x10, 0x91, 0x55})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		const dims = 3
		o := NewOverlay(dims)
		var live []NodeID
		seed := uint64(1)
		next := func() float64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return float64(seed>>11) / float64(1<<53)
		}
		for _, op := range ops {
			if op&0x80 == 0 || len(live) == 0 {
				p := make(geom.Point, dims)
				for i := range p {
					p[i] = next() * 0.999
				}
				// Mix in the op byte for fuzz-directed coordinates.
				p[int(op)%dims] = float64(op&0x7f) / 128
				if n, err := o.Join(p, nil); err == nil {
					live = append(live, n.ID)
				}
			} else {
				idx := int(op&0x7f) % len(live)
				id := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := o.Leave(id); err != nil {
					t.Fatalf("leave(%d): %v", id, err)
				}
			}
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("invariants violated after churn: %v", err)
		}
		// Zones must cover the space exactly.
		if o.Len() > 0 {
			total := 0.0
			for _, n := range o.Nodes() {
				total += n.Zone.Volume()
			}
			if total < 0.999999 || total > 1.000001 {
				t.Fatalf("coverage %v after churn", total)
			}
		}
	})
}
