// Package can implements the variant of a Content-Addressable Network
// (CAN) DHT used by the P2P grid (Section II-A and IV of the paper).
//
// Node resource capabilities map to coordinates in a d-dimensional
// space; each node owns a hyper-rectangular zone containing its own
// coordinate, and the zones of all live nodes partition the space. Nodes
// whose zones share a face are neighbors and exchange periodic
// heartbeats.
//
// Because coordinates are real resource attributes rather than hashes, a
// zone cannot always be split in half on a join: the split plane is
// placed between the two owners' coordinates along the dimension where
// they are farthest apart (relative to the zone extent), giving the
// distributed-KD-tree structure the paper describes. The split history
// predetermines the take-over node used when a node leaves or fails.
//
// The Overlay type is the simulator's ground truth: zone ownership and
// adjacency are always exact here. Per-node protocol views — which can
// go stale and develop broken links — are layered on top by the proto
// package.
package can

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
)

// NodeID identifies a node in the overlay. IDs are assigned sequentially
// and never reused, so they double as join order.
type NodeID int64

// Node is a member of the overlay. Point and Zone are maintained by the
// Overlay; Caps is optional application payload (nil in protocol-only
// simulations).
type Node struct {
	ID    NodeID
	Point geom.Point
	Zone  geom.Zone
	Caps  *resource.NodeCaps

	// Moved is set when the node has taken over a zone that does not
	// contain its own coordinate (the deepest-pair take-over of
	// Section IV-B / Figure 3). A moved node still routes and splits
	// correctly; its effective position for splitting is its coordinate
	// clamped into its zone.
	Moved bool

	leaf *treeNode
}

// setZone updates the node's zone and derives the Moved flag.
func (n *Node) setZone(z geom.Zone) {
	n.Zone = z
	n.Moved = !z.Contains(n.Point)
}

// effectivePoint is the node's coordinate clamped into its current
// zone: identical to Point unless the node has moved.
func (n *Node) effectivePoint() geom.Point {
	if n.Zone.Contains(n.Point) {
		return n.Point
	}
	p := n.Point.Clone()
	for i := range p {
		if p[i] < n.Zone.Lo[i] {
			p[i] = n.Zone.Lo[i]
		} else if p[i] >= n.Zone.Hi[i] {
			p[i] = math.Nextafter(n.Zone.Hi[i], n.Zone.Lo[i])
		}
	}
	return p
}

// treeNode is a node of the global KD-style split tree. Leaves own
// zones; internal nodes record the split that partitioned their zone.
type treeNode struct {
	zone   geom.Zone
	parent *treeNode

	// Internal nodes:
	dim       int
	plane     float64
	low, high *treeNode

	// Leaves:
	owner *Node
}

func (t *treeNode) isLeaf() bool { return t.owner != nil }

// Overlay is the CAN ground truth. It is not safe for concurrent use;
// the simulation is single-threaded for determinism.
type Overlay struct {
	dims      int
	root      *treeNode
	nodes     map[NodeID]*Node
	neighbors map[NodeID]map[NodeID]struct{}
	nextID    NodeID

	// Version-keyed read caches (cache.go): per-node neighbor/outward
	// views, invalidated selectively by the rewire paths, and the shared
	// membership snapshot served by Nodes(). Once built, the snapshot is
	// maintained by delta — appended on join, spliced on leave — so it
	// never needs an O(n log n) rebuild (snapJoin/snapLeave).
	views       map[NodeID]*nodeView
	snap        []*Node
	snapVersion uint64
	snapValid   bool

	// Churn journal (journal.go): ring of per-version membership deltas
	// replayed by ChurnSince. journalCap is the ring's current capacity
	// (grown with the population, never shrunk); journalLen counts the
	// events actually recorded, capped at journalCap — the retained
	// window ChurnSince can serve.
	journal    []ChurnEvent
	journalCap int
	journalLen int

	// Counters for diagnostics.
	joins, leaves, takeoverMoves int
}

// NewOverlay creates an empty overlay over the d-dimensional unit space.
func NewOverlay(dims int) *Overlay {
	if dims <= 0 {
		panic("can: dims must be positive")
	}
	return &Overlay{
		dims:      dims,
		nodes:     make(map[NodeID]*Node),
		neighbors: make(map[NodeID]map[NodeID]struct{}),
		views:     make(map[NodeID]*nodeView),
	}
}

// Dims returns the dimensionality of the overlay's space.
func (o *Overlay) Dims() int { return o.dims }

// Version is a monotonic membership version: it advances on every join
// and leave. Zones only ever change as part of a join or leave (splits,
// take-overs and merges all happen inside those operations), so a cache
// keyed on Version pins both the node set and every node's zone. The
// schedulers use it to reuse sorted indexes between churn events.
func (o *Overlay) Version() uint64 { return uint64(o.joins) + uint64(o.leaves) }

// Len returns the number of live nodes.
func (o *Overlay) Len() int { return len(o.nodes) }

// Node returns the live node with the given id, or nil.
func (o *Overlay) Node(id NodeID) *Node { return o.nodes[id] }

// Nodes returns all live nodes sorted by ID as a shared, version-keyed
// snapshot: repeated calls between churn events return the same slice
// without allocating. The slice must not be modified, and it is only
// guaranteed intact until the next Join or Leave: the snapshot is
// maintained by delta — a join appends (IDs are assigned monotonically,
// so the sort order is preserved and a previously returned prefix is
// untouched), a leave splices the departed entry out of the shared
// backing array in place. Callers that hold a snapshot across churn
// must re-fetch it once Version() moves; the old slice header may then
// show shifted or truncated contents. This trades the former
// fresh-array-per-version guarantee for O(1)/O(n) allocation-free
// maintenance instead of an O(n log n) rebuild per churn event — every
// in-tree consumer either re-fetches per use or revalidates against
// Version() (the ID order itself is load-bearing: scheduler entry-point
// and churn-victim draws index this slice with seeded RNG streams).
func (o *Overlay) Nodes() []*Node {
	if o.snapValid && o.snapVersion == o.Version() {
		return o.snap
	}
	ns := make([]*Node, 0, len(o.nodes))
	for _, n := range o.nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	o.snap, o.snapVersion, o.snapValid = ns, o.Version(), true
	return ns
}

// snapJoin folds a just-admitted node into the shared snapshot. IDs are
// assigned monotonically and never reused, so appending preserves the
// strict ID sort. Before the first Nodes() call there is nothing to
// maintain; the first call builds the snapshot from the map.
func (o *Overlay) snapJoin(n *Node) {
	if !o.snapValid {
		return
	}
	o.snap = append(o.snap, n)
	o.snapVersion = o.Version()
}

// snapLeave splices a departed node out of the shared snapshot in
// place: binary search by ID, then one memmove. Allocation-free; the
// vacated tail slot is nil-ed so the departed node can be collected.
func (o *Overlay) snapLeave(id NodeID) {
	if !o.snapValid {
		return
	}
	i := sort.Search(len(o.snap), func(k int) bool { return o.snap[k].ID >= id })
	if i >= len(o.snap) || o.snap[i].ID != id {
		// Unreachable while the snapshot invariant holds; fall back to a
		// rebuild rather than corrupt the slice.
		o.snapValid = false
		return
	}
	copy(o.snap[i:], o.snap[i+1:])
	o.snap[len(o.snap)-1] = nil
	o.snap = o.snap[:len(o.snap)-1]
	o.snapVersion = o.Version()
}

// ErrDuplicatePoint is returned by Join when the joining coordinate
// collides exactly with the owner of the zone it lands in; the caller
// should redraw the virtual coordinate and retry.
var ErrDuplicatePoint = errors.New("can: joining point coincides with zone owner's point")

// Join inserts a node at the given coordinate and returns it. The zone
// containing the point is split between its current owner and the new
// node. caps may be nil.
func (o *Overlay) Join(p geom.Point, caps *resource.NodeCaps) (*Node, error) {
	if len(p) != o.dims {
		return nil, fmt.Errorf("can: point has %d dims, overlay has %d", len(p), o.dims)
	}
	for i, v := range p {
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("can: coordinate %d = %v outside [0,1)", i, v)
		}
	}
	n := &Node{ID: o.nextID, Point: p.Clone(), Caps: caps}

	if o.root == nil {
		n.Zone = geom.UnitZone(o.dims)
		o.root = &treeNode{zone: n.Zone.Clone(), owner: n}
		n.leaf = o.root
		o.nextID++
		o.nodes[n.ID] = n
		o.neighbors[n.ID] = make(map[NodeID]struct{})
		o.joins++
		o.snapJoin(n)
		o.recordChurn(ChurnEvent{Joined: n.ID, Left: NoneID, ZoneChanged: [2]NodeID{NoneID, NoneID}})
		return n, nil
	}

	leaf := o.locate(p)
	owner := leaf.owner
	ownerPt := owner.effectivePoint()
	dim, plane, ok := chooseSplit(leaf.zone, ownerPt, p)
	if !ok {
		return nil, ErrDuplicatePoint
	}

	lowZone, highZone := leaf.zone.Split(dim, plane)
	lowLeaf := &treeNode{zone: lowZone, parent: leaf}
	highLeaf := &treeNode{zone: highZone, parent: leaf}
	if ownerPt[dim] < plane {
		lowLeaf.owner, highLeaf.owner = owner, n
	} else {
		lowLeaf.owner, highLeaf.owner = n, owner
	}
	leaf.owner = nil
	leaf.dim, leaf.plane = dim, plane
	leaf.low, leaf.high = lowLeaf, highLeaf

	owner.setZone(ownerZone(lowLeaf, highLeaf, owner))
	n.setZone(ownerZone(lowLeaf, highLeaf, n))
	owner.leaf = leafOf(lowLeaf, highLeaf, owner)
	n.leaf = leafOf(lowLeaf, highLeaf, n)

	o.nextID++
	o.nodes[n.ID] = n
	o.neighbors[n.ID] = make(map[NodeID]struct{})
	o.rewireAfterJoin(owner, n)
	o.joins++
	o.snapJoin(n)
	o.recordChurn(ChurnEvent{Joined: n.ID, Left: NoneID, ZoneChanged: [2]NodeID{owner.ID, NoneID}})
	return n, nil
}

func ownerZone(a, b *treeNode, n *Node) geom.Zone {
	if a.owner == n {
		return a.zone.Clone()
	}
	return b.zone.Clone()
}

func leafOf(a, b *treeNode, n *Node) *treeNode {
	if a.owner == n {
		return a
	}
	return b
}

// chooseSplit picks the split dimension and plane for admitting point b
// into the zone owned by the node at point a. Among the dimensions
// where the two points differ (only those can separate them with an
// axis-aligned plane), it prefers the one where the zone is widest —
// the original CAN's cycling discipline, which keeps zones close to
// cubic so the average neighbor count stays O(d) rather than blowing up
// with elongated sliver zones. Width ties (common with catalog-valued
// coordinates) break toward larger point separation. The plane lies
// midway between the two points. ok is false when the points coincide
// in every dimension.
func chooseSplit(z geom.Zone, a, b geom.Point) (dim int, plane float64, ok bool) {
	bestWidth, bestSep := 0.0, 0.0
	dim = -1
	for i := range a {
		sep := a[i] - b[i]
		if sep < 0 {
			sep = -sep
		}
		if sep == 0 {
			continue
		}
		w := z.Width(i)
		if w > bestWidth || (w == bestWidth && sep > bestSep) {
			bestWidth, bestSep, dim = w, sep, i
		}
	}
	if dim < 0 {
		return 0, 0, false
	}
	lo, hi := a[dim], b[dim]
	if lo > hi {
		lo, hi = hi, lo
	}
	return dim, (lo + hi) / 2, true
}

// locate descends the tree to the leaf whose zone contains p.
func (o *Overlay) locate(p geom.Point) *treeNode {
	t := o.root
	for !t.isLeaf() {
		if p[t.dim] < t.plane {
			t = t.low
		} else {
			t = t.high
		}
	}
	return t
}

// Owner returns the node whose zone contains p, or nil when the overlay
// is empty.
func (o *Overlay) Owner(p geom.Point) *Node {
	if o.root == nil {
		return nil
	}
	return o.locate(p).owner
}

// TakeoverPlan describes how a node's departure is absorbed, as
// predetermined by the split tree (Section IV-B, Figure 3).
type TakeoverPlan struct {
	// Taker is the node that assumes the departing node's zone.
	Taker *Node
	// Merged, when non-nil, is the node that absorbs Taker's former
	// zone: Taker was one of the deepest pair of sibling leaves in the
	// departing node's sibling subtree, and Merged (its pair partner)
	// merges the pair's zones before Taker moves. Nil when the departing
	// node's direct sibling is a leaf and simply grows.
	Merged *Node
}

// Takeover reports the take-over plan for node id without mutating the
// overlay, or ok=false when the node is the only member (no one to take
// over) or unknown.
func (o *Overlay) Takeover(id NodeID) (TakeoverPlan, bool) {
	n := o.nodes[id]
	if n == nil || n.leaf.parent == nil {
		return TakeoverPlan{}, false
	}
	sib := sibling(n.leaf)
	if sib.isLeaf() {
		return TakeoverPlan{Taker: sib.owner}, true
	}
	pair := deepestLeafPair(sib)
	return TakeoverPlan{Taker: pair.high.owner, Merged: pair.low.owner}, true
}

// Leave removes node id from the overlay, executing the take-over plan:
// the taker assumes the departing zone (first merging its own zone into
// its pair partner's when it comes from deeper in the sibling subtree).
// It returns the plan that was executed. Removing the last node empties
// the overlay.
func (o *Overlay) Leave(id NodeID) (TakeoverPlan, error) {
	n := o.nodes[id]
	if n == nil {
		return TakeoverPlan{}, fmt.Errorf("can: leave of unknown node %d", id)
	}
	o.leaves++
	if n.leaf.parent == nil {
		// Last node: the overlay becomes empty.
		o.root = nil
		o.removeNodeState(id)
		o.recordChurn(ChurnEvent{Joined: NoneID, Left: id, ZoneChanged: [2]NodeID{NoneID, NoneID}})
		return TakeoverPlan{}, nil
	}

	plan, _ := o.Takeover(id)
	affectedBefore := o.adjacencyFrontier(n, plan)

	if plan.Merged != nil {
		// The taker leaves its own leaf: its pair partner absorbs the
		// pair's parent zone.
		pairParent := plan.Taker.leaf.parent
		collapse(pairParent, plan.Merged)
		plan.Merged.setZone(pairParent.zone.Clone())
		plan.Merged.leaf = pairParent
		o.takeoverMoves++
	} else {
		// Direct sibling grows over the vacated zone: collapse the
		// departing node's parent into a single leaf owned by the taker.
		parent := n.leaf.parent
		collapse(parent, plan.Taker)
		plan.Taker.setZone(parent.zone.Clone())
		plan.Taker.leaf = parent
		o.removeNodeState(id)
		o.rewireAfterLeave(affectedBefore, plan)
		o.recordChurn(ChurnEvent{Joined: NoneID, Left: id, ZoneChanged: [2]NodeID{plan.Taker.ID, NoneID}})
		return plan, nil
	}

	// The taker moves into the vacated leaf.
	vacated := n.leaf
	vacated.owner = plan.Taker
	plan.Taker.setZone(vacated.zone.Clone())
	plan.Taker.leaf = vacated
	o.removeNodeState(id)
	o.rewireAfterLeave(affectedBefore, plan)
	o.recordChurn(ChurnEvent{Joined: NoneID, Left: id, ZoneChanged: [2]NodeID{plan.Taker.ID, plan.Merged.ID}})
	return plan, nil
}

// collapse turns internal node t into a leaf owned by n, discarding its
// subtree (whose zones the caller has already reassigned).
func collapse(t *treeNode, n *Node) {
	t.owner = n
	t.low, t.high = nil, nil
	t.dim, t.plane = 0, 0
}

func sibling(t *treeNode) *treeNode {
	p := t.parent
	if p.low == t {
		return p.high
	}
	return p.low
}

// deepestLeafPair returns the deepest internal node in t's subtree whose
// children are both leaves, breaking depth ties toward the low child so
// the choice is deterministic. Plain recursion (no closure): Takeover
// runs once per heartbeat tick per node, and an escaping closure here
// would allocate on every call.
func deepestLeafPair(t *treeNode) *treeNode {
	best, _ := deepestLeafPairIn(t, 0, nil, -1)
	return best
}

func deepestLeafPairIn(x *treeNode, depth int, best *treeNode, bestDepth int) (*treeNode, int) {
	if x.isLeaf() {
		return best, bestDepth
	}
	if x.low.isLeaf() && x.high.isLeaf() && depth > bestDepth {
		best, bestDepth = x, depth
	}
	best, bestDepth = deepestLeafPairIn(x.low, depth+1, best, bestDepth)
	return deepestLeafPairIn(x.high, depth+1, best, bestDepth)
}

func (o *Overlay) removeNodeState(id NodeID) {
	for nb := range o.neighbors[id] {
		delete(o.neighbors[nb], id)
		o.invalidateView(nb)
	}
	delete(o.neighbors, id)
	delete(o.nodes, id)
	o.dropView(id)
	o.snapLeave(id)
}

// SplitHistory returns the sequence of splits that carved node id's
// current zone, oldest first. Each entry reports the dimension, plane
// and whether the node's zone lies on the low side of that split. This
// is the state a real node would persist locally (Section IV-B).
func (o *Overlay) SplitHistory(id NodeID) []SplitRecord {
	n := o.nodes[id]
	if n == nil {
		return nil
	}
	var recs []SplitRecord
	for t := n.leaf; t.parent != nil; t = t.parent {
		p := t.parent
		recs = append(recs, SplitRecord{Dim: p.dim, Plane: p.plane, Low: p.low == t})
	}
	// Reverse to oldest-first.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	return recs
}

// SplitRecord is one entry of a node's zone split history.
type SplitRecord struct {
	Dim   int
	Plane float64
	Low   bool // the node's zone is on the low side of the plane
}
