package can

import (
	"fmt"
	"math"

	"hetgrid/internal/geom"
)

// boundaryEps charges a tiny distance for sitting exactly on a zone's
// high boundary. Zones are half-open, so a point with p[i] == Hi[i] is
// not contained; without the epsilon such a point would be at distance
// zero from zones that merely touch it, stalling greedy routing on the
// plateau (job coordinates frequently coincide with split planes since
// both come from the same discrete resource catalogs). With it,
// distance zero holds exactly when the zone contains the point, and
// each touching dimension resolved strictly decreases the distance.
const boundaryEps = 1e-9

// zoneDistance is the Euclidean distance from point p to the zone as a
// half-open set: the per-dimension gap between p and z's extent,
// squared and summed. Zero exactly when z contains p.
func zoneDistance(z geom.Zone, p geom.Point) float64 {
	sum := 0.0
	for i := range p {
		var gap float64
		switch {
		case p[i] < z.Lo[i]:
			gap = z.Lo[i] - p[i]
		case p[i] >= z.Hi[i]:
			gap = p[i] - z.Hi[i] + boundaryEps
		}
		sum += gap * gap
	}
	return math.Sqrt(sum)
}

// Route performs greedy CAN routing from the node from toward the node
// owning target: at each hop it forwards to the neighbor whose zone is
// closest to the target (ties broken by lowest ID for determinism). It
// returns the full path including both endpoints. Because zones
// partition the space, greedy forwarding makes strict progress and
// always terminates at the owner.
func (o *Overlay) Route(from NodeID, target geom.Point) ([]*Node, error) {
	return o.RouteAppend(nil, from, target)
}

// RouteAppend is Route with a caller-supplied path buffer: the path is
// appended to path[:0], so a scheduler placing jobs in a loop can reuse
// one buffer and route without allocating. The returned slice aliases
// the buffer (grown if needed).
func (o *Overlay) RouteAppend(path []*Node, from NodeID, target geom.Point) ([]*Node, error) {
	path = path[:0]
	cur := o.nodes[from]
	if cur == nil {
		return nil, fmt.Errorf("can: route from unknown node %d", from)
	}
	if len(target) != o.dims {
		return nil, fmt.Errorf("can: target has %d dims, overlay has %d", len(target), o.dims)
	}
	path = append(path, cur)
	maxHops := 10*len(o.nodes) + 10
	for !cur.Zone.Contains(target) {
		curDist := zoneDistance(cur.Zone, target)
		var next *Node
		bestDist := math.Inf(1)
		for _, nb := range o.NeighborView(cur.ID) {
			if nb.Zone.Contains(target) {
				next, bestDist = nb, 0
				break
			}
			d := zoneDistance(nb.Zone, target)
			if d < bestDist {
				bestDist, next = d, nb
			}
		}
		if next == nil || bestDist >= curDist {
			return path, fmt.Errorf("can: routing stuck at node %d (dist %g): adjacency violated", cur.ID, curDist)
		}
		cur = next
		path = append(path, cur)
		if len(path) > maxHops {
			return path, fmt.Errorf("can: routing exceeded %d hops", maxHops)
		}
	}
	return path, nil
}
