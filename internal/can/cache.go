package can

import "sort"

// Version-keyed read caches.
//
// The schedulers and the maintenance plane read the same overlay state
// over and over between churn events: a placement walk asks for a
// node's sorted neighbor list and its outward (push-direction) pairs at
// every hop, and every heartbeat round re-reads membership. Zones and
// adjacency only change inside Join/Leave, so all of these reads are
// pure functions of the overlay version. The overlay therefore keeps:
//
//   - a per-node cached view: the ID-sorted neighbor slice plus the
//     precomputed (neighbor, dim) outward pairs derived from Zone.Abuts.
//     Views are invalidated selectively — only for nodes whose adjacency
//     or zone geometry actually changed — by the incremental rewire
//     paths, which already know the dirty set;
//   - a shared, version-keyed membership snapshot served by Nodes().
//
// Invalidation invariant: a node's cached view stays correct across a
// mutation unless (a) an edge incident to it was added or removed
// (link/unlink/removeNodeState fire on every such edge), or (b) its own
// zone or a neighbor's zone changed. For (b): on a leave, every node
// whose zone changes (taker, merge partner) has all of its edges
// dropped and rebuilt, so every kept or new neighbor sees a link or
// unlink; on a join, the splitting owner's zone only shrinks along the
// split dimension, and a kept neighbor's abutting face — its touching
// dimension and direction — is unchanged (the touch coordinates did not
// move, and gaining a second touching dimension would make the pair
// corner-contact, i.e. no longer neighbors, which unlinks them). The
// churn fuzz test cross-validates all of this against the brute-force
// recomputation after every mutation.
//
// Cached slices are shared and MUST NOT be modified by callers. They
// remain internally consistent until the next Join/Leave; callers that
// hold them across churn must revalidate against Version().

// Outward is one push direction out of a node: a neighbor on the high
// side of the node's zone along dimension Dim.
type Outward struct {
	Node *Node
	Dim  int
}

// nodeView is the cached per-node read view. Invalidation keeps the
// struct (and its slices' capacity) for reuse; only node removal drops
// the entry.
type nodeView struct {
	valid     bool
	neighbors []*Node
	outward   []Outward
}

// invalidateView marks node id's cached view stale. Cheap and
// idempotent; called from every adjacency or zone mutation.
func (o *Overlay) invalidateView(id NodeID) {
	if v := o.views[id]; v != nil {
		v.valid = false
	}
}

// dropView discards node id's cached view entirely (node removal).
func (o *Overlay) dropView(id NodeID) {
	delete(o.views, id)
}

// viewOf returns node id's up-to-date cached view, rebuilding it lazily
// if a mutation invalidated it. id must be live.
func (o *Overlay) viewOf(id NodeID) *nodeView {
	v := o.views[id]
	if v == nil {
		v = &nodeView{}
		if o.views == nil {
			o.views = make(map[NodeID]*nodeView)
		}
		o.views[id] = v
	}
	if !v.valid {
		o.buildView(id, v)
	}
	return v
}

// buildView recomputes the sorted neighbor slice and the outward pairs
// for node id into v, reusing the slices' capacity.
func (o *Overlay) buildView(id NodeID, v *nodeView) {
	v.neighbors = v.neighbors[:0]
	for nbID := range o.neighbors[id] {
		v.neighbors = append(v.neighbors, o.nodes[nbID])
	}
	sort.Slice(v.neighbors, func(i, j int) bool { return v.neighbors[i].ID < v.neighbors[j].ID })
	n := o.nodes[id]
	v.outward = v.outward[:0]
	for _, nb := range v.neighbors {
		if dim, dir, ok := n.Zone.Abuts(nb.Zone); ok && dir > 0 {
			v.outward = append(v.outward, Outward{Node: nb, Dim: dim})
		}
	}
	v.valid = true
}

// WarmViews rebuilds every live node's cached view that a mutation
// invalidated. After it returns — and until the next Join or Leave —
// view reads (NeighborView, OutwardView, BoundedNeighborIDs) touch no
// cache state, so several goroutines may read disjoint or even
// overlapping node sets concurrently. Parallel oracle sweeps run this
// warm pass serially first for exactly that guarantee.
func (o *Overlay) WarmViews() {
	for id := range o.nodes {
		o.viewOf(id)
	}
}

// NeighborView returns node id's neighbors sorted by ID as a shared
// cached slice: the same contents as Neighbors, without the per-call
// allocation and sort. The slice must not be modified and is valid
// until the next Join or Leave.
func (o *Overlay) NeighborView(id NodeID) []*Node {
	if o.nodes[id] == nil {
		return nil
	}
	return o.viewOf(id).neighbors
}

// OutwardView returns the cached (neighbor, dim) pairs where the
// neighbor sits on node id's high side along dim — the push directions
// of the matchmaking walk. Pairs appear in neighbor-ID order. The slice
// must not be modified and is valid until the next Join or Leave.
func (o *Overlay) OutwardView(id NodeID) []Outward {
	if o.nodes[id] == nil {
		return nil
	}
	return o.viewOf(id).outward
}
