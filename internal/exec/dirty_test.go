package exec

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// drain collects one DrainDirty pass.
func drain(c *Cluster) (ids []can.NodeID, enumerable bool) {
	enumerable = c.DrainDirty(func(id can.NodeID) { ids = append(ids, id) })
	return ids, enumerable
}

// TestClusterDirtyTracking pins the dirty-set protocol the incremental
// aggregation table consumes: the first drain is non-enumerable (events
// predate the consumer), subsequent drains enumerate exactly the nodes
// whose load-relevant state changed, in event order, deduplicated, and
// MarkAllDirty forces the fallback again.
func TestClusterDirtyTracking(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4))
	c.AddNode(2, testCaps(1.0, 4))
	c.AddNode(3, testCaps(1.0, 4))

	ids, enumerable := drain(c)
	if enumerable || ids != nil {
		t.Fatalf("first drain: got (%v, %v), want non-enumerable and no callbacks", ids, enumerable)
	}

	// Nothing happened since: an enumerable, empty drain.
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 0 {
		t.Fatalf("idle drain: got (%v, %v), want enumerable and empty", ids, enumerable)
	}

	// Submissions mark their nodes in event order, deduplicated.
	if err := c.Submit(cpuJob(1, 1, 100*sim.Second), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cpuJob(2, 1, 100*sim.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cpuJob(3, 1, 100*sim.Second), 2); err != nil {
		t.Fatal(err)
	}
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 2 || ids[0] != 2 || ids[1] != 1 {
		t.Fatalf("post-submit drain: got (%v, %v), want ([2 1], true)", ids, enumerable)
	}

	// A finishing job marks its node again.
	eng.Run()
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 2 {
		t.Fatalf("post-finish drain: got (%v, %v), want both busy nodes", ids, enumerable)
	}

	// Withdrawal marks the node one last time (the consumer sees the
	// zeroed load; the overlay version bump handles the membership side).
	c.RemoveNode(3)
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("post-remove drain: got (%v, %v), want ([3], true)", ids, enumerable)
	}

	// MarkAllDirty poisons exactly one drain, even with entries queued.
	if err := c.Submit(cpuJob(4, 1, 100*sim.Second), 1); err != nil {
		t.Fatal(err)
	}
	c.MarkAllDirty()
	ids, enumerable = drain(c)
	if enumerable || ids != nil {
		t.Fatalf("poisoned drain: got (%v, %v), want non-enumerable and no callbacks", ids, enumerable)
	}
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 0 {
		t.Fatalf("drain after poison consumed: got (%v, %v), want enumerable and empty", ids, enumerable)
	}
}
