package exec

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// drain collects one DrainDirty pass.
func drain(c *Cluster) (ids []can.NodeID, enumerable bool) {
	enumerable = c.DrainDirty(func(id can.NodeID) { ids = append(ids, id) })
	return ids, enumerable
}

// TestClusterDirtyTracking pins the dirty-set protocol the incremental
// aggregation table consumes: the first drain is non-enumerable (events
// predate the consumer), subsequent drains enumerate exactly the nodes
// whose load-relevant state changed, in event order, deduplicated, and
// MarkAllDirty forces the fallback again.
func TestClusterDirtyTracking(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4))
	c.AddNode(2, testCaps(1.0, 4))
	c.AddNode(3, testCaps(1.0, 4))

	ids, enumerable := drain(c)
	if enumerable || ids != nil {
		t.Fatalf("first drain: got (%v, %v), want non-enumerable and no callbacks", ids, enumerable)
	}

	// Nothing happened since: an enumerable, empty drain.
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 0 {
		t.Fatalf("idle drain: got (%v, %v), want enumerable and empty", ids, enumerable)
	}

	// Submissions mark their nodes in event order, deduplicated.
	if err := c.Submit(cpuJob(1, 1, 100*sim.Second), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cpuJob(2, 1, 100*sim.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cpuJob(3, 1, 100*sim.Second), 2); err != nil {
		t.Fatal(err)
	}
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 2 || ids[0] != 2 || ids[1] != 1 {
		t.Fatalf("post-submit drain: got (%v, %v), want ([2 1], true)", ids, enumerable)
	}

	// A finishing job marks its node again.
	eng.Run()
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 2 {
		t.Fatalf("post-finish drain: got (%v, %v), want both busy nodes", ids, enumerable)
	}

	// Withdrawal marks the node one last time (the consumer sees the
	// zeroed load; the overlay version bump handles the membership side).
	c.RemoveNode(3)
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("post-remove drain: got (%v, %v), want ([3], true)", ids, enumerable)
	}

	// MarkAllDirty poisons exactly one drain, even with entries queued.
	if err := c.Submit(cpuJob(4, 1, 100*sim.Second), 1); err != nil {
		t.Fatal(err)
	}
	c.MarkAllDirty()
	ids, enumerable = drain(c)
	if enumerable || ids != nil {
		t.Fatalf("poisoned drain: got (%v, %v), want non-enumerable and no callbacks", ids, enumerable)
	}
	ids, enumerable = drain(c)
	if !enumerable || len(ids) != 0 {
		t.Fatalf("drain after poison consumed: got (%v, %v), want enumerable and empty", ids, enumerable)
	}
}

// drainMem collects one DrainMembership pass.
func drainMem(c *Cluster) (evs []MembershipEvent, enumerable bool) {
	enumerable = c.DrainMembership(func(ev MembershipEvent) { evs = append(evs, ev) })
	return evs, enumerable
}

// TestClusterMembershipDeltas pins the membership delta log the
// incremental candidate indexes consume: the first drain is
// non-enumerable, subsequent drains replay add/remove events in order
// (without deduplication — remove-then-re-add must arrive as two
// entries), removed entries keep their Caps, MarkAllDirty poisons the
// log, and overflowing the undrained log collapses it to the
// all-changed state instead of growing without bound.
func TestClusterMembershipDeltas(t *testing.T) {
	_, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4))

	evs, enumerable := drainMem(c)
	if enumerable || evs != nil {
		t.Fatalf("first drain: got (%v, %v), want non-enumerable and no callbacks", evs, enumerable)
	}

	c.AddNode(2, testCaps(2.0, 8))
	c.AddNode(3, testCaps(1.0, 4))
	c.RemoveNode(2)
	evs, enumerable = drainMem(c)
	if !enumerable || len(evs) != 3 {
		t.Fatalf("delta drain: got (%v, %v), want 3 events", evs, enumerable)
	}
	if evs[0].Runtime.ID != 2 || evs[0].Removed ||
		evs[1].Runtime.ID != 3 || evs[1].Removed ||
		evs[2].Runtime.ID != 2 || !evs[2].Removed {
		t.Fatalf("delta drain order wrong: %+v", evs)
	}
	if evs[2].Runtime.Caps == nil || evs[2].Runtime.Caps.CE(0) == nil || evs[2].Runtime.Caps.CE(0).Clock != 2.0 {
		t.Fatal("removed runtime lost its Caps")
	}

	// Remove-then-re-add of the same id must replay as two ordered
	// events, not collapse.
	c.RemoveNode(3)
	c.AddNode(3, testCaps(3.0, 2))
	evs, enumerable = drainMem(c)
	if !enumerable || len(evs) != 2 || !evs[0].Removed || evs[1].Removed || evs[1].Runtime.Caps.CE(0).Clock != 3.0 {
		t.Fatalf("remove/re-add drain: %+v (%v)", evs, enumerable)
	}

	// MarkAllDirty poisons exactly one drain.
	c.AddNode(9, testCaps(1.0, 1))
	c.MarkAllDirty()
	evs, enumerable = drainMem(c)
	if enumerable || evs != nil {
		t.Fatalf("poisoned drain: got (%v, %v)", evs, enumerable)
	}
	evs, enumerable = drainMem(c)
	if !enumerable || len(evs) != 0 {
		t.Fatalf("drain after poison: got (%v, %v), want enumerable and empty", evs, enumerable)
	}

	// Overflow with no consumer collapses to the all-changed state.
	for i := 0; i <= memLogCap; i++ {
		c.AddNode(can.NodeID(100+i), testCaps(1.0, 1))
		c.RemoveNode(can.NodeID(100 + i))
	}
	evs, enumerable = drainMem(c)
	if enumerable || evs != nil {
		t.Fatalf("overflowed drain: got (%d events, %v), want non-enumerable", len(evs), enumerable)
	}
}
