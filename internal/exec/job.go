// Package exec models job execution on heterogeneous grid nodes
// (Sections II-B and III-B): each node has a FIFO queue; a job starts
// when every CE it requires is available — a dedicated CE (GPU) must be
// idle, a non-dedicated CE (CPU) must have enough free cores. Jobs on a
// shared non-dedicated CE suffer a contention slowdown; separate CEs do
// not interfere (the paper measured no significant cross-CE contention).
//
// The paper predicts contention by interpolating measured curves from
// prior work; those measurements are not published, so we substitute the
// parametric model rate = clock / (1 + gamma·otherBusyCores/totalCores),
// which preserves the property the scheduler relies on: co-located jobs
// slow each other down in proportion to how crowded the CE is.
package exec

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

// JobID identifies a submitted job.
type JobID int64

// JobState tracks a job through its lifecycle.
type JobState int

const (
	// Queued means the job sits in its run node's FIFO queue.
	Queued JobState = iota
	// Running means the job occupies CEs and is executing.
	Running
	// Finished means the job has completed.
	Finished
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one unit of work. BaseDuration is the execution time on a
// nominal (clock = 1.0) uncontended dominant CE; the realized duration
// scales inversely with the run node's dominant-CE clock and stretches
// under contention.
type Job struct {
	ID           JobID
	Req          resource.JobReq
	Dominant     resource.CEType
	BaseDuration sim.Duration

	State     JobState
	RunNode   can.NodeID
	Submitted sim.Time
	Placed    sim.Time // entered the run node's queue (after matchmaking)
	Started   sim.Time
	Finished_ sim.Time

	// Execution bookkeeping.
	remaining  float64 // nominal seconds of work left
	rate       float64 // nominal seconds of work retired per second
	rateSince  sim.Time
	completion sim.EventID
	reqTypes   []resource.CEType // cached Req.Types(); computed once
}

// types returns the job's required CE types sorted ascending, computed
// once per job — Req.Types() allocates and sorts, and the execution
// plane needs the list on every queue and occupancy transition.
func (j *Job) types() []resource.CEType {
	if j.reqTypes == nil {
		j.reqTypes = j.Req.Types()
	}
	return j.reqTypes
}

// WaitTime is the paper's reported metric: time from placement on the
// run node to execution start. It is only meaningful once the job has
// started.
func (j *Job) WaitTime() sim.Duration { return j.Started.Sub(j.Placed) }

// Turnaround is the time from placement to completion.
func (j *Job) Turnaround() sim.Duration { return j.Finished_.Sub(j.Placed) }

// syncWork folds elapsed execution into the remaining-work counter.
func (j *Job) syncWork(now sim.Time) {
	if j.State != Running {
		return
	}
	elapsed := now.Sub(j.rateSince).Seconds()
	j.remaining -= elapsed * j.rate
	if j.remaining < 0 {
		j.remaining = 0
	}
	j.rateSince = now
}
