package exec

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/resource"
)

// ceState tracks the live occupancy of one CE.
type ceState struct {
	ce      resource.CE
	usedCor int // sum of required cores of running jobs using this CE
	runJobs int // running jobs using this CE
}

func (c *ceState) freeCores() int { return c.ce.Cores - c.usedCor }

// canHost reports whether a job needing cores on this CE could start
// right now: a dedicated CE must be completely idle; a non-dedicated CE
// needs enough free cores (jobs never share a core).
func (c *ceState) canHost(cores int) bool {
	if c.ce.Dedicated {
		return c.runJobs == 0 && cores <= c.ce.Cores
	}
	return cores <= c.freeCores()
}

// Runtime is the execution state of one grid node: its FIFO queue and
// the occupancy of each CE.
type Runtime struct {
	ID   can.NodeID
	Caps *resource.NodeCaps

	queue []*Job // strictly FIFO: only the head may start
	ces   map[resource.CEType]*ceState
	run   []*Job // running jobs, kept sorted by id
	// queuedJobs / queuedCores are per-CE-type tallies over the FIFO
	// queue, maintained incrementally on queue transitions so that
	// Score and DemandOn (called per node per aggregation refresh and
	// per score evaluation) are O(1) instead of O(queue length).
	queuedJobs  []int
	queuedCores []int
	// dirty marks membership in the cluster's dirty list (the delta
	// channel consumed by the scheduler's incremental aggregation);
	// maintained by Cluster.notifyLoad / Cluster.DrainDirty only.
	dirty bool
	done  int
	// busyCoreSeconds accumulates, over completed jobs, execution
	// wall-time × cores occupied — the per-node work metric used by
	// the load-imbalance statistics.
	busyCoreSeconds float64
}

func newRuntime(id can.NodeID, caps *resource.NodeCaps) *Runtime {
	r := &Runtime{ID: id, Caps: caps, ces: make(map[resource.CEType]*ceState)}
	for _, ce := range caps.CEs {
		r.ces[ce.Type] = &ceState{ce: ce}
	}
	return r
}

// QueueLen returns the number of jobs waiting in the FIFO queue.
func (r *Runtime) QueueLen() int { return len(r.queue) }

// RunningJobs returns the number of jobs currently executing. A job
// using several CEs counts once.
func (r *Runtime) RunningJobs() int { return len(r.run) }

// running returns the node's running jobs sorted by id. The returned
// slice is the runtime's own bookkeeping; callers must not mutate it or
// hold it across occupy/release.
func (r *Runtime) running() []*Job { return r.run }

// noteQueued maintains the per-type queue tallies as jobs enter
// (sign = +1) and leave (sign = -1) the FIFO queue.
func (r *Runtime) noteQueued(j *Job, sign int) {
	for _, t := range j.types() {
		ti := int(t)
		for len(r.queuedJobs) <= ti {
			r.queuedJobs = append(r.queuedJobs, 0)
			r.queuedCores = append(r.queuedCores, 0)
		}
		r.queuedJobs[ti] += sign
		r.queuedCores[ti] += sign * j.Req.CoresOn(t)
	}
}

// FinishedJobs returns the number of jobs this node has completed.
func (r *Runtime) FinishedJobs() int { return r.done }

// BusyCoreSeconds returns the accumulated work this node has completed:
// per finished job, execution wall-time times the cores it occupied.
func (r *Runtime) BusyCoreSeconds() float64 { return r.busyCoreSeconds }

// totalCores sums a job's core occupancy across its required CEs.
func totalCores(j *Job) int {
	n := 0
	for _, t := range j.types() {
		n += j.Req.CoresOn(t)
	}
	return n
}

// IsFree reports whether the node is a free-node in the paper's sense:
// no running or waiting jobs at all, so any matching job starts
// immediately.
func (r *Runtime) IsFree() bool {
	return len(r.queue) == 0 && len(r.run) == 0
}

// IsAcceptable reports whether a job with requirements req would start
// without waiting if placed here now (Section III-B's acceptable node):
// the node statically satisfies the job, its FIFO queue is empty, and
// every required CE can host the job immediately.
func (r *Runtime) IsAcceptable(req resource.JobReq) bool {
	if len(r.queue) > 0 {
		return false
	}
	if !resource.Satisfies(r.Caps, req) {
		return false
	}
	return r.canStart(req)
}

// canStart checks CE availability only (queue discipline is the
// caller's concern). It iterates the requirement map directly — the
// all-must-pass check is order-independent, and req.Types() would
// allocate on every candidate evaluation.
func (r *Runtime) canStart(req resource.JobReq) bool {
	for t := range req.CE {
		c := r.ces[t]
		if c == nil || !c.canHost(req.CoresOn(t)) {
			return false
		}
	}
	return true
}

// Score is the job-assignment score of Section III-B for dominant CE
// type t: Equation 1 for dedicated CEs (queue size over clock),
// Equation 2 for non-dedicated CEs (core utilization over clock). Lower
// is better. Nodes lacking the CE type score +Inf-like.
func (r *Runtime) Score(t resource.CEType) float64 {
	c := r.ces[t]
	if c == nil {
		return 1e18
	}
	if c.ce.Dedicated {
		return resource.ScoreDedicated(c.runJobs+r.queuedOn(t), c.ce.Clock)
	}
	return resource.ScoreNonDedicated(c.usedCor+r.queuedCoresOn(t), c.ce.Cores, c.ce.Clock)
}

// queuedOn counts waiting jobs that require CE type t (O(1): read from
// the incrementally maintained tally).
func (r *Runtime) queuedOn(t resource.CEType) int {
	if int(t) < len(r.queuedJobs) {
		return r.queuedJobs[t]
	}
	return 0
}

// queuedCoresOn sums the cores waiting jobs will occupy on CE type t
// (O(1): read from the incrementally maintained tally).
func (r *Runtime) queuedCoresOn(t resource.CEType) int {
	if int(t) < len(r.queuedCores) {
		return r.queuedCores[t]
	}
	return 0
}

// DemandOn returns the load-aggregation inputs for CE type t: the cores
// required by running and waiting jobs (Equation 3's
// SumOfRequiredCores) and the CE's core count. ok is false when the
// node has no CE of that type.
func (r *Runtime) DemandOn(t resource.CEType) (requiredCores, cores int, ok bool) {
	c := r.ces[t]
	if c == nil {
		return 0, 0, false
	}
	return c.usedCor + r.queuedCoresOn(t), c.ce.Cores, true
}

// UtilizationOn reports the fraction of CE t's cores occupied by
// running jobs (queued demand excluded). ok is false when the node has
// no CE of that type.
func (r *Runtime) UtilizationOn(t resource.CEType) (util float64, ok bool) {
	c := r.ces[t]
	if c == nil {
		return 0, false
	}
	if c.ce.Cores == 0 {
		return 0, true
	}
	return float64(c.usedCor) / float64(c.ce.Cores), true
}

// CE returns the capability record of the node's CE of type t, or nil.
func (r *Runtime) CE(t resource.CEType) *resource.CE { return r.Caps.CE(t) }

// occupy reserves CEs for a starting job and enters it into the
// id-sorted running set.
func (r *Runtime) occupy(j *Job) {
	for _, t := range j.types() {
		c := r.ces[t]
		c.usedCor += j.Req.CoresOn(t)
		c.runJobs++
	}
	i := sort.Search(len(r.run), func(i int) bool { return r.run[i].ID >= j.ID })
	r.run = append(r.run, nil)
	copy(r.run[i+1:], r.run[i:])
	r.run[i] = j
}

// release frees a running job's CEs (on completion or preemption).
func (r *Runtime) release(j *Job) {
	for _, t := range j.types() {
		c := r.ces[t]
		c.usedCor -= j.Req.CoresOn(t)
		c.runJobs--
	}
	i := sort.Search(len(r.run), func(i int) bool { return r.run[i].ID >= j.ID })
	if i < len(r.run) && r.run[i] == j {
		r.run = append(r.run[:i], r.run[i+1:]...)
	}
}
