package exec

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/resource"
)

// ceState tracks the live occupancy of one CE.
type ceState struct {
	ce      resource.CE
	usedCor int // sum of required cores of running jobs using this CE
	runJobs int // running jobs using this CE
	runners map[JobID]*Job
}

func (c *ceState) freeCores() int { return c.ce.Cores - c.usedCor }

// canHost reports whether a job needing cores on this CE could start
// right now: a dedicated CE must be completely idle; a non-dedicated CE
// needs enough free cores (jobs never share a core).
func (c *ceState) canHost(cores int) bool {
	if c.ce.Dedicated {
		return c.runJobs == 0 && cores <= c.ce.Cores
	}
	return cores <= c.freeCores()
}

// Runtime is the execution state of one grid node: its FIFO queue and
// the occupancy of each CE.
type Runtime struct {
	ID   can.NodeID
	Caps *resource.NodeCaps

	queue []*Job // strictly FIFO: only the head may start
	ces   map[resource.CEType]*ceState
	done  int
	// busyCoreSeconds accumulates, over completed jobs, execution
	// wall-time × cores occupied — the per-node work metric used by
	// the load-imbalance statistics.
	busyCoreSeconds float64
}

func newRuntime(id can.NodeID, caps *resource.NodeCaps) *Runtime {
	r := &Runtime{ID: id, Caps: caps, ces: make(map[resource.CEType]*ceState)}
	for _, ce := range caps.CEs {
		r.ces[ce.Type] = &ceState{ce: ce, runners: make(map[JobID]*Job)}
	}
	return r
}

// QueueLen returns the number of jobs waiting in the FIFO queue.
func (r *Runtime) QueueLen() int { return len(r.queue) }

// RunningJobs returns the number of jobs currently executing. A job
// using several CEs counts once.
func (r *Runtime) RunningJobs() int { return len(r.running()) }

// running returns the node's running jobs sorted by id.
func (r *Runtime) running() []*Job {
	set := make(map[JobID]*Job)
	for _, c := range r.ces {
		for id, j := range c.runners {
			set[id] = j
		}
	}
	out := make([]*Job, 0, len(set))
	for _, j := range set {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FinishedJobs returns the number of jobs this node has completed.
func (r *Runtime) FinishedJobs() int { return r.done }

// BusyCoreSeconds returns the accumulated work this node has completed:
// per finished job, execution wall-time times the cores it occupied.
func (r *Runtime) BusyCoreSeconds() float64 { return r.busyCoreSeconds }

// totalCores sums a job's core occupancy across its required CEs.
func totalCores(j *Job) int {
	n := 0
	for _, t := range j.Req.Types() {
		n += j.Req.CoresOn(t)
	}
	return n
}

// IsFree reports whether the node is a free-node in the paper's sense:
// no running or waiting jobs at all, so any matching job starts
// immediately.
func (r *Runtime) IsFree() bool {
	if len(r.queue) > 0 {
		return false
	}
	for _, c := range r.ces {
		if c.runJobs > 0 {
			return false
		}
	}
	return true
}

// IsAcceptable reports whether a job with requirements req would start
// without waiting if placed here now (Section III-B's acceptable node):
// the node statically satisfies the job, its FIFO queue is empty, and
// every required CE can host the job immediately.
func (r *Runtime) IsAcceptable(req resource.JobReq) bool {
	if len(r.queue) > 0 {
		return false
	}
	if !resource.Satisfies(r.Caps, req) {
		return false
	}
	return r.canStart(req)
}

// canStart checks CE availability only (queue discipline is the
// caller's concern).
func (r *Runtime) canStart(req resource.JobReq) bool {
	for _, t := range req.Types() {
		c := r.ces[t]
		if c == nil || !c.canHost(req.CoresOn(t)) {
			return false
		}
	}
	return true
}

// Score is the job-assignment score of Section III-B for dominant CE
// type t: Equation 1 for dedicated CEs (queue size over clock),
// Equation 2 for non-dedicated CEs (core utilization over clock). Lower
// is better. Nodes lacking the CE type score +Inf-like.
func (r *Runtime) Score(t resource.CEType) float64 {
	c := r.ces[t]
	if c == nil {
		return 1e18
	}
	if c.ce.Dedicated {
		return resource.ScoreDedicated(c.runJobs+r.queuedOn(t), c.ce.Clock)
	}
	return resource.ScoreNonDedicated(c.usedCor+r.queuedCoresOn(t), c.ce.Cores, c.ce.Clock)
}

// queuedOn counts waiting jobs that require CE type t.
func (r *Runtime) queuedOn(t resource.CEType) int {
	n := 0
	for _, j := range r.queue {
		if _, ok := j.Req.CE[t]; ok {
			n++
		}
	}
	return n
}

// queuedCoresOn sums the cores waiting jobs will occupy on CE type t.
func (r *Runtime) queuedCoresOn(t resource.CEType) int {
	n := 0
	for _, j := range r.queue {
		n += j.Req.CoresOn(t)
	}
	return n
}

// DemandOn returns the load-aggregation inputs for CE type t: the cores
// required by running and waiting jobs (Equation 3's
// SumOfRequiredCores) and the CE's core count. ok is false when the
// node has no CE of that type.
func (r *Runtime) DemandOn(t resource.CEType) (requiredCores, cores int, ok bool) {
	c := r.ces[t]
	if c == nil {
		return 0, 0, false
	}
	return c.usedCor + r.queuedCoresOn(t), c.ce.Cores, true
}

// CE returns the capability record of the node's CE of type t, or nil.
func (r *Runtime) CE(t resource.CEType) *resource.CE { return r.Caps.CE(t) }

// occupy reserves CEs for a starting job.
func (r *Runtime) occupy(j *Job) {
	for _, t := range j.Req.Types() {
		c := r.ces[t]
		c.usedCor += j.Req.CoresOn(t)
		c.runJobs++
		c.runners[j.ID] = j
	}
}

// release frees a running job's CEs (on completion or preemption).
func (r *Runtime) release(j *Job) {
	for _, t := range j.Req.Types() {
		c := r.ces[t]
		c.usedCor -= j.Req.CoresOn(t)
		c.runJobs--
		delete(c.runners, j.ID)
	}
}
