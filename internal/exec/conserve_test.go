package exec

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// TestJobConservation pins the cluster-wide accounting invariant across
// the full job lifecycle, including the failure path: submitted ==
// finished + queued + running at every step. RemoveNode deducts its
// orphans from the submitted count — they are outside the books until
// re-submitted — so the invariant catches a failure path that drains a
// node's queue and then silently drops the work.
func TestJobConservation(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(2.0, 2))
	c.AddNode(2, testCaps(2.0, 2))

	must := func(stage string) {
		t.Helper()
		if err := c.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	must("empty cluster")

	// Fill node 1: one running job, three queued behind it.
	var onVictim []*Job
	for i := 0; i < 4; i++ {
		j := cpuJob(JobID(i+1), 2, 100*sim.Second)
		if err := c.Submit(j, 1); err != nil {
			t.Fatal(err)
		}
		onVictim = append(onVictim, j)
	}
	if err := c.Submit(cpuJob(10, 1, 50*sim.Second), 2); err != nil {
		t.Fatal(err)
	}
	must("after submits")
	if q, r := c.Totals(); q != 3 || r != 2 {
		t.Fatalf("totals = (%d queued, %d running), want (3, 2)", q, r)
	}

	// Let some work finish, then fail node 1 mid-run.
	eng.RunUntil(eng.Now().Add(60 * sim.Second))
	must("mid-run")

	orphans := c.RemoveNode(can.NodeID(1))
	must("after RemoveNode")
	if len(orphans) == 0 {
		t.Fatal("removing a loaded node produced no orphans")
	}
	for _, j := range orphans {
		if j.State != Queued {
			t.Fatalf("orphan %d in state %v, want Queued", j.ID, j.State)
		}
	}

	// Re-submitting every orphan restores it to the books; the invariant
	// must hold after each individual re-submission, not just at the end.
	for _, j := range orphans {
		if err := c.Submit(j, 2); err != nil {
			t.Fatalf("re-submit orphan %d: %v", j.ID, err)
		}
		must("after orphan re-submission")
	}
	_ = onVictim

	eng.Run()
	must("after drain")
	if q, r := c.Totals(); q != 0 || r != 0 {
		t.Fatalf("totals after drain = (%d, %d), want empty", q, r)
	}
	if c.Finished() != c.Submitted() {
		t.Fatalf("finished %d != submitted %d after drain", c.Finished(), c.Submitted())
	}
}

// TestRemoveNodeUnknownIsNoOp pins that removing an unknown node
// mutates nothing — no orphans, no accounting drift.
func TestRemoveNodeUnknownIsNoOp(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(2.0, 2))
	if err := c.Submit(cpuJob(1, 1, 10*sim.Second), 1); err != nil {
		t.Fatal(err)
	}
	before := c.Submitted()
	if got := c.RemoveNode(can.NodeID(99)); got != nil {
		t.Fatalf("RemoveNode(99) = %v, want nil", got)
	}
	if c.Submitted() != before {
		t.Fatalf("submitted drifted from %d to %d", before, c.Submitted())
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}
