package exec

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

// testCaps builds a node with a CPU (clock, cores, 8 GB) and optional
// GPUs.
func testCaps(clock float64, cores int, gpus ...resource.CE) *resource.NodeCaps {
	return &resource.NodeCaps{
		CEs:  append([]resource.CE{{Type: resource.TypeCPU, Clock: clock, Cores: cores, Memory: 8}}, gpus...),
		Disk: 100,
	}
}

func gpuCE(t resource.CEType, clock float64, cores int) resource.CE {
	return resource.CE{Type: t, Dedicated: true, Clock: clock, Cores: cores, Memory: 4}
}

func cpuJob(id JobID, cores int, dur sim.Duration) *Job {
	return &Job{
		ID:           id,
		Req:          resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: cores}}},
		Dominant:     resource.TypeCPU,
		BaseDuration: dur,
	}
}

func gpuJob(id JobID, t resource.CEType, dur sim.Duration) *Job {
	return &Job{
		ID: id,
		Req: resource.JobReq{CE: map[resource.CEType]resource.CEReq{
			resource.TypeCPU: {Cores: 1},
			t:                {Cores: 1},
		}},
		Dominant:     t,
		BaseDuration: dur,
	}
}

func newTestCluster(gamma float64) (*sim.Engine, *Cluster) {
	eng := sim.New()
	return eng, NewCluster(eng, Config{Gamma: gamma})
}

func TestJobRunsForScaledDuration(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(2.0, 4))
	j := cpuJob(1, 1, 100*sim.Second)
	if err := c.Submit(j, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State != Finished {
		t.Fatalf("job state = %v", j.State)
	}
	// 100 nominal seconds on a clock-2.0 CPU: 50 s.
	if j.Finished_ != sim.Time(50*sim.Second) {
		t.Fatalf("finished at %v, want 50 s", j.Finished_.Seconds())
	}
	if j.WaitTime() != 0 {
		t.Fatalf("wait time %v, want 0 on an empty node", j.WaitTime())
	}
}

func TestFIFOQueueing(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 1)) // single core: jobs serialize
	j1 := cpuJob(1, 1, 100*sim.Second)
	j2 := cpuJob(2, 1, 100*sim.Second)
	c.Submit(j1, 1)
	c.Submit(j2, 1)
	if j1.State != Running || j2.State != Queued {
		t.Fatalf("states = %v, %v", j1.State, j2.State)
	}
	eng.Run()
	if j2.Started != sim.Time(100*sim.Second) {
		t.Fatalf("j2 started at %v, want 100 s", j2.Started.Seconds())
	}
	if j2.WaitTime() != 100*sim.Second {
		t.Fatalf("j2 wait = %v, want 100 s", j2.WaitTime().Seconds())
	}
}

func TestParallelJobsOnMultiCore(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4))
	j1 := cpuJob(1, 2, 100*sim.Second)
	j2 := cpuJob(2, 2, 100*sim.Second)
	c.Submit(j1, 1)
	c.Submit(j2, 1)
	if j1.State != Running || j2.State != Running {
		t.Fatal("both jobs should run in parallel on 4 cores")
	}
	eng.Run()
	if j1.Finished_ != j2.Finished_ {
		t.Fatal("equal jobs started together should finish together")
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// Strict FIFO: a blocked head prevents later jobs from starting
	// even if their resources are free.
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4, gpuCE(1, 1.0, 128)))
	g1 := gpuJob(1, 1, 200*sim.Second)
	g2 := gpuJob(2, 1, 100*sim.Second) // blocked: GPU busy
	c1 := cpuJob(3, 1, 50*sim.Second)  // CPU free, but behind g2
	c.Submit(g1, 1)
	c.Submit(g2, 1)
	c.Submit(c1, 1)
	if g1.State != Running {
		t.Fatal("g1 should run")
	}
	if g2.State != Queued || c1.State != Queued {
		t.Fatal("g2 and c1 should queue behind the busy GPU")
	}
	eng.Run()
	if c1.Started.Seconds() < 200 {
		t.Fatalf("c1 started at %v, should wait for g2's start at 200 s", c1.Started.Seconds())
	}
}

func TestDedicatedCERunsOneJob(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 8, gpuCE(1, 2.0, 448)))
	g1 := gpuJob(1, 1, 100*sim.Second)
	g2 := gpuJob(2, 1, 100*sim.Second)
	c.Submit(g1, 1)
	c.Submit(g2, 1)
	if g2.State != Queued {
		t.Fatal("a dedicated CE must not run two jobs")
	}
	eng.Run()
	// Each runs 100/2.0 = 50 s, serialized.
	if g2.Finished_ != sim.Time(100*sim.Second) {
		t.Fatalf("g2 finished at %v, want 100 s", g2.Finished_.Seconds())
	}
}

func TestContentionSlowsCoRunners(t *testing.T) {
	eng, c := newTestCluster(0.5)
	c.AddNode(1, testCaps(1.0, 4))
	j1 := cpuJob(1, 2, 100*sim.Second)
	c.Submit(j1, 1)
	eng.RunUntil(sim.Time(10 * sim.Second))
	j2 := cpuJob(2, 2, 100*sim.Second)
	c.Submit(j2, 1)
	eng.Run()
	// Alone, j1 would finish at 100 s. With j2 occupying 2 of 4 cores
	// from t=10, both slow to rate 1/(1+0.5*2/4) = 0.8.
	// j1: 10 s at rate 1 (90 work left), then 90/0.8 = 112.5 s → 122.5.
	want := sim.FromSeconds(122.5)
	if j1.Finished_ != sim.Time(want) {
		t.Fatalf("j1 finished at %.2f s, want 122.5", j1.Finished_.Seconds())
	}
	// j2 slows while j1 runs, then speeds up after j1 finishes:
	// from 10 to 122.5 at 0.8 (90 work done), then 10 left at rate 1 → 132.5.
	if j2.Finished_ != sim.Time(sim.FromSeconds(132.5)) {
		t.Fatalf("j2 finished at %.2f s, want 132.5", j2.Finished_.Seconds())
	}
}

func TestNoContentionAcrossCEs(t *testing.T) {
	// A GPU job and a CPU job share the node but not a CE: neither
	// slows the other (the paper's measured result).
	eng, c := newTestCluster(0.5)
	c.AddNode(1, testCaps(1.0, 4, gpuCE(1, 1.0, 128)))
	g := gpuJob(1, 1, 100*sim.Second)
	j := cpuJob(2, 2, 100*sim.Second)
	c.Submit(g, 1)
	c.Submit(j, 1)
	eng.Run()
	// g's CPU control core occupies 1 core; j sees 1 other busy core:
	// rate = 1/(1+0.5*1/4) = 0.888..; g is GPU-dominant: full speed.
	if g.Finished_ != sim.Time(100*sim.Second) {
		t.Fatalf("GPU job finished at %v, want 100 s (no cross-CE contention)", g.Finished_.Seconds())
	}
	if j.Finished_ <= sim.Time(100*sim.Second) {
		t.Fatal("CPU job should feel contention from the GPU job's control core")
	}
}

func TestIsFreeAndAcceptable(t *testing.T) {
	eng, c := newTestCluster(0)
	r := c.AddNode(1, testCaps(1.0, 2, gpuCE(1, 1.0, 128)))
	if !r.IsFree() {
		t.Fatal("empty node must be free")
	}
	cpuReq := resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 1}}}
	if !r.IsAcceptable(cpuReq) {
		t.Fatal("empty node must be acceptable")
	}
	g := gpuJob(1, 1, 100*sim.Second)
	c.Submit(g, 1)
	if r.IsFree() {
		t.Fatal("node with a running job is not free")
	}
	// CPU has 1 free core left: still acceptable for a 1-core CPU job.
	if !r.IsAcceptable(cpuReq) {
		t.Fatal("node with a spare core should accept a 1-core CPU job")
	}
	gpuReq := resource.JobReq{CE: map[resource.CEType]resource.CEReq{1: {Cores: 1}}}
	if r.IsAcceptable(gpuReq) {
		t.Fatal("busy dedicated GPU must not be acceptable")
	}
	two := resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 2}}}
	if r.IsAcceptable(two) {
		t.Fatal("2-core job must not be acceptable with 1 free core")
	}
	eng.Run()
	if !r.IsFree() {
		t.Fatal("node must be free again after all jobs finish")
	}
}

func TestAcceptableRequiresEmptyQueue(t *testing.T) {
	_, c := newTestCluster(0)
	r := c.AddNode(1, testCaps(1.0, 1))
	c.Submit(cpuJob(1, 1, 100*sim.Second), 1)
	c.Submit(cpuJob(2, 1, 100*sim.Second), 1) // queued
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 1}}}
	if r.IsAcceptable(req) {
		t.Fatal("node with a non-empty queue is never acceptable")
	}
}

func TestScoreFunctions(t *testing.T) {
	_, c := newTestCluster(0)
	r := c.AddNode(1, testCaps(2.0, 4, gpuCE(1, 1.0, 128)))
	if r.Score(resource.TypeCPU) != 0 {
		t.Fatal("idle CPU score must be 0")
	}
	c.Submit(cpuJob(1, 2, 1000*sim.Second), 1)
	// Eq 2: (2/4)/2.0 = 0.25.
	if got := r.Score(resource.TypeCPU); got != 0.25 {
		t.Fatalf("CPU score = %v, want 0.25", got)
	}
	c.Submit(gpuJob(2, 1, 1000*sim.Second), 1)
	// Eq 1 for the GPU: 1 running job / clock 1.0 = 1.
	if got := r.Score(1); got != 1.0 {
		t.Fatalf("GPU score = %v, want 1", got)
	}
	// Queue a second GPU job: queue size 2.
	c.Submit(gpuJob(3, 1, 1000*sim.Second), 1)
	if got := r.Score(1); got != 2.0 {
		t.Fatalf("GPU score with queued job = %v, want 2", got)
	}
	if r.Score(resource.CEType(7)) < 1e17 {
		t.Fatal("missing CE type must score huge")
	}
}

func TestDemandOn(t *testing.T) {
	_, c := newTestCluster(0)
	r := c.AddNode(1, testCaps(1.0, 4))
	c.Submit(cpuJob(1, 2, 1000*sim.Second), 1)
	c.Submit(cpuJob(2, 3, 1000*sim.Second), 1) // queued (only 2 free)
	req, cores, ok := r.DemandOn(resource.TypeCPU)
	if !ok || cores != 4 {
		t.Fatalf("DemandOn: cores=%d ok=%v", cores, ok)
	}
	if req != 5 {
		t.Fatalf("required cores = %d, want 5 (2 running + 3 queued)", req)
	}
	if _, _, ok := r.DemandOn(3); ok {
		t.Fatal("DemandOn for missing CE must report !ok")
	}
}

func TestSubmitErrors(t *testing.T) {
	_, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 2))
	if err := c.Submit(cpuJob(1, 1, sim.Second), 99); err == nil {
		t.Fatal("submit to unknown node did not error")
	}
	big := cpuJob(2, 8, sim.Second)
	if err := c.Submit(big, 1); err == nil {
		t.Fatal("submit of unsatisfiable job did not error")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	_, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	c.AddNode(1, testCaps(1.0, 2))
}

func TestClusterCounters(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 4))
	var finished []JobID
	c.OnFinish = func(j *Job) { finished = append(finished, j.ID) }
	for i := 1; i <= 3; i++ {
		c.Submit(cpuJob(JobID(i), 1, sim.Duration(i)*100*sim.Second), 1)
	}
	if c.Submitted() != 3 {
		t.Fatalf("submitted = %d", c.Submitted())
	}
	eng.Run()
	if c.Finished() != 3 || len(finished) != 3 {
		t.Fatalf("finished = %d / callback %d", c.Finished(), len(finished))
	}
	if finished[0] != 1 || finished[2] != 3 {
		t.Fatalf("finish order %v, want shortest-first by duration", finished)
	}
	if c.Runtime(1).FinishedJobs() != 3 {
		t.Fatal("runtime finished counter wrong")
	}
}

func TestManyJobsConserved(t *testing.T) {
	// Sanity under load: every submitted job finishes exactly once and
	// CE occupancy returns to zero.
	eng, c := newTestCluster(0.3)
	for i := 1; i <= 5; i++ {
		caps := testCaps(1.0+float64(i)*0.2, 2+i%4)
		if i%2 == 0 {
			caps.CEs = append(caps.CEs, gpuCE(1, 1.0, 128))
		}
		c.AddNode(can.NodeID(i), caps)
	}
	jobs := make([]*Job, 0, 200)
	for i := 0; i < 200; i++ {
		var j *Job
		node := can.NodeID(1 + i%5)
		if i%4 == 0 {
			node = can.NodeID(2 + 2*((i/4)%2)) // nodes 2 and 4 have GPUs
			j = gpuJob(JobID(1000+i), 1, sim.Duration(60+i)*sim.Second)
		} else {
			j = cpuJob(JobID(1000+i), 1+i%2, sim.Duration(30+i)*sim.Second)
		}
		jobs = append(jobs, j)
		if err := c.Submit(j, node); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	eng.Run()
	if c.Finished() != 200 {
		t.Fatalf("finished %d of 200", c.Finished())
	}
	for _, j := range jobs {
		if j.State != Finished {
			t.Fatalf("job %d in state %v", j.ID, j.State)
		}
		if j.Started < j.Placed || j.Finished_ < j.Started {
			t.Fatalf("job %d has inconsistent timeline", j.ID)
		}
	}
	for i := 1; i <= 5; i++ {
		r := c.Runtime(can.NodeID(i))
		if !r.IsFree() {
			t.Fatalf("node %d not free after drain", i)
		}
		if len(r.run) != 0 {
			t.Fatalf("node %d running set not empty after drain", i)
		}
		for _, ce := range r.ces {
			if ce.usedCor != 0 || ce.runJobs != 0 {
				t.Fatalf("node %d CE %v occupancy not zero after drain", i, ce.ce.Type)
			}
		}
	}
}

func TestRemoveNodeReturnsOrphans(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 2))
	running := cpuJob(1, 2, 1000*sim.Second)
	queued := cpuJob(2, 1, 100*sim.Second)
	c.Submit(running, 1)
	c.Submit(queued, 1)
	eng.RunUntil(sim.Time(100 * sim.Second))

	orphans := c.RemoveNode(1)
	if len(orphans) != 2 {
		t.Fatalf("orphans = %d, want 2", len(orphans))
	}
	for _, j := range orphans {
		if j.State != Queued {
			t.Fatalf("orphan %d in state %v, want queued", j.ID, j.State)
		}
	}
	if c.Runtime(1) != nil {
		t.Fatal("removed node still registered")
	}
	// The cancelled completion event must not fire.
	eng.Run()
	if running.State == Finished {
		t.Fatal("job finished on a removed node")
	}
	if c.Finished() != 0 {
		t.Fatal("finished counter incremented for preempted job")
	}
}

func TestRemoveNodeThenResubmitElsewhere(t *testing.T) {
	eng, c := newTestCluster(0)
	c.AddNode(1, testCaps(1.0, 2))
	c.AddNode(2, testCaps(1.0, 2))
	j := cpuJob(1, 1, 600*sim.Second)
	c.Submit(j, 1)
	eng.RunUntil(sim.Time(300 * sim.Second)) // halfway
	orphans := c.RemoveNode(1)
	if len(orphans) != 1 {
		t.Fatalf("orphans = %d", len(orphans))
	}
	if err := c.Submit(j, 2); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if j.State != Finished {
		t.Fatal("resubmitted job did not finish")
	}
	// Restarted from scratch at t=300: finishes at 900, not 600.
	if j.Finished_ != sim.Time(900*sim.Second) {
		t.Fatalf("finished at %v, want 900 s (progress discarded)", j.Finished_.Seconds())
	}
}

func TestRemoveUnknownNodeNil(t *testing.T) {
	_, c := newTestCluster(0)
	if got := c.RemoveNode(42); got != nil {
		t.Fatal("unknown node returned orphans")
	}
}

func TestBusyCoreSecondsAccumulates(t *testing.T) {
	eng, c := newTestCluster(0)
	r := c.AddNode(1, testCaps(2.0, 4))
	// 2 cores for 100 nominal seconds on a 2.0 clock: 50 s wall.
	c.Submit(cpuJob(1, 2, 100*sim.Second), 1)
	eng.Run()
	if got := r.BusyCoreSeconds(); got != 100 { // 50 s × 2 cores
		t.Fatalf("BusyCoreSeconds = %v, want 100", got)
	}
	// A second 1-core job adds 50 more.
	c.Submit(cpuJob(2, 1, 100*sim.Second), 1)
	eng.Run()
	if got := r.BusyCoreSeconds(); got != 150 {
		t.Fatalf("BusyCoreSeconds = %v, want 150", got)
	}
}
