package exec

import (
	"fmt"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

var (
	cntSubmitted     = perf.NewCounter("exec.jobs_submitted")
	cntFinished      = perf.NewCounter("exec.jobs_finished")
	cntRateRefreshes = perf.NewCounter("exec.rate_refreshes")
)

// Config holds execution-model parameters.
type Config struct {
	// Gamma is the contention coefficient for non-dedicated CEs: a
	// running job's rate is clock / (1 + Gamma·otherBusyCores/cores).
	// Zero disables contention.
	Gamma float64
}

// DefaultConfig returns the execution parameters used in the evaluation.
func DefaultConfig() Config { return Config{Gamma: 0.3} }

// Cluster owns the runtime state of every grid node and drives job
// execution through the event engine.
type Cluster struct {
	eng   *sim.Engine
	cfg   Config
	nodes map[can.NodeID]*Runtime

	// OnStart, when non-nil, is called as each job begins executing.
	OnStart func(*Job)
	// OnFinish, when non-nil, is called as each job completes.
	OnFinish func(*Job)

	// loadObserver, when non-nil, is notified after every operation
	// that may change a node's queue length or idleness (AddNode,
	// Submit, a job finishing, RemoveNode). removed marks withdrawal.
	// Schedulers use it to maintain incremental candidate indexes.
	loadObserver func(r *Runtime, removed bool)

	// dirty is the delta channel for incremental load aggregation: the
	// runtimes whose DemandOn-relevant state (queue contents, running
	// occupancy, membership) changed since the last DrainDirty, in
	// event order, each listed at most once (Runtime.dirty dedupes).
	// allDirty marks the set as not enumerable — set at construction
	// (events before the first drain predate any consumer) and by
	// MarkAllDirty — forcing the consumer onto its full-recompute path.
	dirty    []*Runtime
	allDirty bool

	// membership is the companion delta channel for incremental
	// membership-keyed indexes: every AddNode/RemoveNode appends one
	// entry in event order (a node can legitimately appear several
	// times — removed then re-added — so the log is replayed in order
	// rather than deduplicated). memAll marks the log as not
	// enumerable, set at construction, by MarkAllDirty, and when the
	// undrained log outgrows memLogCap (a run whose scheduler never
	// consumes membership deltas must not accumulate them forever).
	membership []MembershipEvent
	memAll     bool

	submitted int
	finished  int
}

// MembershipEvent is one entry of the cluster's membership delta log:
// the runtime that was added to or removed from the cluster. Removed
// runtimes retain their Caps, so consumers can unindex them without a
// live lookup.
type MembershipEvent struct {
	Runtime *Runtime
	Removed bool
}

// memLogCap bounds the undrained membership log. A consumer polling on
// the scheduling cadence drains long before this; hitting the cap means
// nobody is listening, so the log collapses to the all-changed state.
const memLogCap = 1024

// SetLoadObserver installs the single load-change observer (the
// scheduler's candidate index). Passing nil removes it.
func (c *Cluster) SetLoadObserver(f func(r *Runtime, removed bool)) { c.loadObserver = f }

func (c *Cluster) notifyLoad(r *Runtime, removed bool) {
	if !r.dirty {
		r.dirty = true
		c.dirty = append(c.dirty, r)
	}
	if c.loadObserver != nil {
		c.loadObserver(r, removed)
	}
}

// DrainDirty empties the dirty set, invoking fn for each node whose
// load-relevant execution state (queue contents, running occupancy,
// membership) changed since the previous drain, in event order. It
// returns false when the set is not enumerable — on first use, and
// after MarkAllDirty — in which case fn is never called and the caller
// must treat every node as dirty. Either way the set is cleared.
//
// The channel is single-consumer: draining is destructive, so exactly
// one component (the scheduler's aggregation table) may rely on it.
// Job start events are deliberately not tracked on their own: a
// queue→running transition moves cores between the queued tally and
// the running occupancy of the same CE, leaving DemandOn unchanged,
// and the submit/finish notifications around it already mark the node.
func (c *Cluster) DrainDirty(fn func(can.NodeID)) bool {
	enumerable := !c.allDirty
	c.allDirty = false
	for i, r := range c.dirty {
		r.dirty = false
		c.dirty[i] = nil
		if enumerable {
			fn(r.ID)
		}
	}
	c.dirty = c.dirty[:0]
	return enumerable
}

// MarkAllDirty poisons the dirty set and the membership log: the next
// DrainDirty / DrainMembership reports them as not enumerable. For
// consumers that bypassed the notification channels (bulk mutations,
// external state restores) — and for benchmarking the all-dirty
// fallback.
func (c *Cluster) MarkAllDirty() {
	c.allDirty = true
	c.poisonMembership()
}

func (c *Cluster) poisonMembership() {
	c.memAll = true
	for i := range c.membership {
		c.membership[i] = MembershipEvent{}
	}
	c.membership = c.membership[:0]
}

func (c *Cluster) noteMembership(r *Runtime, removed bool) {
	if c.memAll {
		return // already poisoned; nothing to log until the next drain
	}
	if len(c.membership) >= memLogCap {
		c.poisonMembership()
		return
	}
	c.membership = append(c.membership, MembershipEvent{Runtime: r, Removed: removed})
}

// DrainMembership empties the membership delta log, invoking fn for
// each add/remove in event order. It returns false when the log is not
// enumerable — on first use, after MarkAllDirty, or after overflowing
// undrained — in which case fn is never called and the caller must
// rebuild its membership-derived index from scratch. Either way the log
// is cleared. Like DrainDirty, the channel is single-consumer:
// draining is destructive, so exactly one index may rely on it.
func (c *Cluster) DrainMembership(fn func(ev MembershipEvent)) bool {
	if c.memAll {
		c.memAll = false
		return false
	}
	for i, ev := range c.membership {
		c.membership[i] = MembershipEvent{}
		fn(ev)
	}
	c.membership = c.membership[:0]
	return true
}

// NewCluster creates an empty cluster on the engine.
func NewCluster(eng *sim.Engine, cfg Config) *Cluster {
	return &Cluster{eng: eng, cfg: cfg, nodes: make(map[can.NodeID]*Runtime), allDirty: true, memAll: true}
}

// AddNode registers a node's capabilities. It panics on duplicate ids —
// that is a programming error in the driver.
func (c *Cluster) AddNode(id can.NodeID, caps *resource.NodeCaps) *Runtime {
	if c.nodes[id] != nil {
		panic(fmt.Sprintf("exec: duplicate node %d", id))
	}
	r := newRuntime(id, caps)
	c.nodes[id] = r
	c.noteMembership(r, false)
	c.notifyLoad(r, false)
	return r
}

// Runtime returns the runtime state of a node, or nil.
func (c *Cluster) Runtime(id can.NodeID) *Runtime { return c.nodes[id] }

// Runtimes returns every node's runtime state sorted by id. It is meant
// for index seeding and diagnostics, not hot paths — it allocates.
func (c *Cluster) Runtimes() []*Runtime {
	out := make([]*Runtime, 0, len(c.nodes))
	for _, r := range c.nodes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Submitted and Finished report cluster-wide job counts.
func (c *Cluster) Submitted() int { return c.submitted }

// Finished reports how many jobs have completed.
func (c *Cluster) Finished() int { return c.finished }

// Totals counts the jobs currently queued and running across every
// node. It walks all runtimes — diagnostics and invariant checks, not
// hot paths.
func (c *Cluster) Totals() (queued, running int) {
	for _, r := range c.nodes {
		queued += len(r.queue)
		running += len(r.run)
	}
	return queued, running
}

// CheckConservation verifies the cluster-wide job-accounting invariant:
// every job ever accepted by Submit is either finished, still queued,
// or still running. RemoveNode deducts its orphans from the submitted
// count precisely so that this holds while they await re-submission —
// a failure here means a failure path silently dropped work.
func (c *Cluster) CheckConservation() error {
	queued, running := c.Totals()
	if c.submitted != c.finished+queued+running {
		return fmt.Errorf("exec: job conservation violated: submitted %d != finished %d + queued %d + running %d",
			c.submitted, c.finished, queued, running)
	}
	return nil
}

// Submit places a job in the FIFO queue of its run node (the output of
// matchmaking). The job may start immediately if the queue is empty and
// its CEs are available.
func (c *Cluster) Submit(j *Job, node can.NodeID) error {
	r := c.nodes[node]
	if r == nil {
		return fmt.Errorf("exec: submit to unknown node %d", node)
	}
	if !resource.Satisfies(r.Caps, j.Req) {
		return fmt.Errorf("exec: node %d cannot satisfy job %d", node, j.ID)
	}
	now := c.eng.Now()
	j.State = Queued
	j.RunNode = node
	j.Placed = now
	r.queue = append(r.queue, j)
	r.noteQueued(j, +1)
	c.submitted++
	cntSubmitted.Inc()
	c.advance(r, now)
	c.notifyLoad(r, false)
	return nil
}

// rate computes a running job's current service rate (nominal seconds
// of work per second) from its dominant CE on its run node.
func (c *Cluster) rate(r *Runtime, j *Job) float64 {
	ce := r.ces[j.Dominant]
	if ce == nil {
		// Dominant CE unspecified (pure disk/none job): run at nominal
		// speed on the CPU.
		ce = r.ces[resource.TypeCPU]
	}
	if ce.ce.Dedicated {
		return ce.ce.Clock
	}
	others := ce.usedCor - j.Req.CoresOn(j.Dominant)
	if others < 0 {
		others = 0
	}
	slow := 1 + c.cfg.Gamma*float64(others)/float64(ce.ce.Cores)
	return ce.ce.Clock / slow
}

// advance starts every queue-head job that can run, then refreshes the
// rates and completion times of all running jobs on the node (their
// contention may have changed).
func (c *Cluster) advance(r *Runtime, now sim.Time) {
	for len(r.queue) > 0 && r.canStart(r.queue[0].Req) {
		j := r.queue[0]
		r.queue = r.queue[1:]
		r.noteQueued(j, -1)
		r.occupy(j)
		j.State = Running
		j.Started = now
		j.remaining = j.BaseDuration.Seconds()
		j.rateSince = now
		if c.OnStart != nil {
			c.OnStart(j)
		}
	}
	c.refreshRates(r, now)
}

// refreshRates recomputes every running job's rate and reschedules its
// completion event. Jobs on dedicated CEs never change rate but are
// cheap to refresh; nodes run at most a handful of jobs. Jobs are
// processed in id order so event scheduling stays deterministic.
func (c *Cluster) refreshRates(r *Runtime, now sim.Time) {
	cntRateRefreshes.Add(int64(len(r.running())))
	for _, j := range r.running() {
		j.syncWork(now)
		j.rate = c.rate(r, j)
		c.eng.Cancel(j.completion)
		left := sim.FromSeconds(j.remaining / j.rate)
		job := j
		j.completion = c.eng.After(left, func(t sim.Time) { c.finish(r, job, t) })
	}
}

// RemoveNode withdraws a node from the cluster (a departure or failure
// in the execution plane) and returns the jobs that were queued or
// running there, with their completion events cancelled and their
// state reset to Queued so the caller can re-match them elsewhere.
// Running jobs lose their progress — a desktop grid restarts preempted
// work from scratch.
func (c *Cluster) RemoveNode(id can.NodeID) []*Job {
	r := c.nodes[id]
	if r == nil {
		return nil
	}
	delete(c.nodes, id)
	var orphans []*Job
	// release mutates the running set in place, so drain it from the
	// front rather than ranging over it.
	for len(r.run) > 0 {
		j := r.run[0]
		c.eng.Cancel(j.completion)
		r.release(j)
		j.State = Queued
		j.remaining = 0
		j.rate = 0
		orphans = append(orphans, j)
	}
	for _, j := range r.queue {
		r.noteQueued(j, -1)
		orphans = append(orphans, j)
	}
	r.queue = nil
	c.submitted -= len(orphans) // re-submission will recount them
	c.noteMembership(r, true)
	c.notifyLoad(r, true)
	return orphans
}

func (c *Cluster) finish(r *Runtime, j *Job, now sim.Time) {
	j.syncWork(now)
	r.release(j)
	r.done++
	r.busyCoreSeconds += now.Sub(j.Started).Seconds() * float64(totalCores(j))
	j.State = Finished
	j.Finished_ = now
	c.finished++
	cntFinished.Inc()
	c.advance(r, now)
	c.notifyLoad(r, false)
	if c.OnFinish != nil {
		c.OnFinish(j)
	}
}
