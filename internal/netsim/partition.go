package netsim

import (
	"sort"

	"hetgrid/internal/can"
)

// Partition models a network partition as an isolated node set: every
// message crossing the boundary between the isolated set and the rest
// of the grid is dropped, while traffic wholly inside either side still
// flows. Install its Blocked oracle with Net.SetLinkFault; Isolate and
// Heal then take effect on the next delivery with no further plumbing.
// The zero-cost empty partition blocks nothing.
type Partition struct {
	isolated map[can.NodeID]struct{}
}

// NewPartition returns a healed (empty) partition.
func NewPartition() *Partition {
	return &Partition{isolated: make(map[can.NodeID]struct{})}
}

// Isolate moves the given nodes to the isolated side. Isolating an
// already isolated node is a no-op.
func (p *Partition) Isolate(ids ...can.NodeID) {
	for _, id := range ids {
		p.isolated[id] = struct{}{}
	}
}

// Heal returns the given nodes to the majority side.
func (p *Partition) Heal(ids ...can.NodeID) {
	for _, id := range ids {
		delete(p.isolated, id)
	}
}

// HealAll clears the partition entirely.
func (p *Partition) HealAll() {
	clear(p.isolated)
}

// Blocked reports whether a src→dst message crosses the partition
// boundary — exactly one endpoint is isolated. It has the signature
// Net.SetLinkFault expects.
func (p *Partition) Blocked(src, dst can.NodeID) bool {
	_, a := p.isolated[src]
	_, b := p.isolated[dst]
	return a != b
}

// Isolated returns the isolated node ids in ascending order.
func (p *Partition) Isolated() []can.NodeID {
	out := make([]can.NodeID, 0, len(p.isolated))
	for id := range p.isolated {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size reports how many nodes are currently isolated.
func (p *Partition) Size() int { return len(p.isolated) }
