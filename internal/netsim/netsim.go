// Package netsim is the simulated message transport underneath the CAN
// maintenance protocols. It delivers messages through the event engine
// with a fixed latency and keeps the per-node message and byte counters
// that Section IV's cost analysis is about: the number of messages per
// node per minute and the volume of messages per node per minute.
package netsim

import (
	"hetgrid/internal/can"
	"hetgrid/internal/perf"
	"hetgrid/internal/sim"
)

var (
	cntMsgsSent    = perf.NewCounter("net.msgs_sent")
	cntBytesSent   = perf.NewCounter("net.bytes_sent")
	cntDropped     = perf.NewCounter("net.msgs_dropped")
	cntLinkDropped = perf.NewCounter("net.msgs_link_dropped")
)

// Kind classifies a message for per-type traffic accounting, so the
// heartbeat-volume figures can split maintenance cost by message shape
// (full table vs compact digest vs request vs announce) rather than
// reporting one aggregate.
type Kind uint8

const (
	KindOther    Kind = iota // uncategorized (tests, future protocols)
	KindFull                 // full neighbor-table heartbeat / handoff
	KindCompact              // compact self-record digest
	KindRequest              // adaptive on-demand table request
	KindAnnounce             // join/leave announce intro
	numKinds
)

// AllKinds lists the kinds in stable display order.
var AllKinds = [...]Kind{KindOther, KindFull, KindCompact, KindRequest, KindAnnounce}

func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindCompact:
		return "compact"
	case KindRequest:
		return "request"
	case KindAnnounce:
		return "announce"
	default:
		return "other"
	}
}

// Counters accumulates traffic totals.
type Counters struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// Net is the transport. Delivery is reliable and ordered per the event
// queue; failures are modeled at the protocol layer (a dead node's
// inbound messages are dropped by the delivery hook).
type Net struct {
	eng     *sim.Engine
	latency sim.Duration

	total      Counters
	window     Counters
	kindTotal  [numKinds]Counters
	kindWindow [numKinds]Counters
	perNode    map[can.NodeID]*Counters

	// deliverable reports whether dst can still receive messages;
	// nil means always deliverable.
	deliverable func(dst can.NodeID) bool

	// linkFault reports whether the src→dst link is currently down;
	// nil means all links are healthy. Evaluated at delivery time, the
	// same convention as the deliverable check: a message arriving
	// while its link is down is lost (never delayed or retried), while
	// one still in flight when the link heals is delivered normally.
	linkFault func(src, dst can.NodeID) bool
	linkDrops int64

	envPool []*envelope // recycled SendMsg envelopes

	// Sharded-transport facet identity: parent is non-nil when this Net
	// is one shard's facet of a ShardedNet, and shard is its index.
	// Facets route cross-shard traffic through the parent's mailboxes
	// and keep all counter/pool state shard-local (see sharded.go).
	parent *ShardedNet
	shard  int
}

// New creates a transport on the given engine with the given one-way
// latency.
func New(eng *sim.Engine, latency sim.Duration) *Net {
	return &Net{
		eng:     eng,
		latency: latency,
		perNode: make(map[can.NodeID]*Counters),
	}
}

// SetDeliverable installs the liveness check used to drop messages to
// departed nodes.
func (n *Net) SetDeliverable(f func(dst can.NodeID) bool) { n.deliverable = f }

// SetLinkFault installs the link-level fault oracle used to drop
// messages crossing a partitioned or severed link. It composes with the
// deliverable check: a message is delivered only when the destination
// is alive and the src→dst link is up at arrival time. Passing nil
// heals everything.
func (n *Net) SetLinkFault(f func(src, dst can.NodeID) bool) { n.linkFault = f }

// LinkDrops reports how many messages were lost to link faults since
// construction (a subset of the overall drop accounting, kept separate
// so scenarios can assert that a partition actually severed traffic).
func (n *Net) LinkDrops() int64 { return n.linkDrops }

// linkDown reports and counts a fault drop for the src→dst link. The
// callers guard with `n.linkFault != nil` so the fault-free hot path
// stays a single inlined nil-check; this slow path only runs when a
// fault oracle is installed.
func (n *Net) linkDown(src, dst can.NodeID) bool {
	if !n.linkFault(src, dst) {
		return false
	}
	cntLinkDropped.Inc()
	n.linkDrops++
	return true
}

// Latency returns the one-way delivery latency.
func (n *Net) Latency() sim.Duration { return n.latency }

func (n *Net) node(id can.NodeID) *Counters {
	c := n.perNode[id]
	if c == nil {
		c = &Counters{}
		n.perNode[id] = c
	}
	return c
}

func (n *Net) countSend(src can.NodeID, size int, kind Kind) {
	cntMsgsSent.Inc()
	cntBytesSent.Add(int64(size))
	n.total.MsgsSent++
	n.total.BytesSent += int64(size)
	n.window.MsgsSent++
	n.window.BytesSent += int64(size)
	n.kindTotal[kind].MsgsSent++
	n.kindTotal[kind].BytesSent += int64(size)
	n.kindWindow[kind].MsgsSent++
	n.kindWindow[kind].BytesSent += int64(size)
	sc := n.node(src)
	sc.MsgsSent++
	sc.BytesSent += int64(size)
}

func (n *Net) countRecv(dst can.NodeID, size int, kind Kind) {
	n.total.MsgsRecv++
	n.total.BytesRecv += int64(size)
	n.window.MsgsRecv++
	n.window.BytesRecv += int64(size)
	n.kindTotal[kind].MsgsRecv++
	n.kindTotal[kind].BytesRecv += int64(size)
	n.kindWindow[kind].MsgsRecv++
	n.kindWindow[kind].BytesRecv += int64(size)
	dc := n.node(dst)
	dc.MsgsRecv++
	dc.BytesRecv += int64(size)
}

// Send transmits size bytes from src to dst and invokes deliver at
// arrival (unless dst is gone by then). Sending is counted immediately;
// receiving at delivery.
//
// On a sharded facet the delivery runs on the serial control plane:
// closure sends are the churn-path messages (handoffs, takeover
// continuations), whose delivery procedures mutate hosts across shard
// boundaries and share per-Sim scratch, so they are exactly the events
// the global phase exists for. Counting on the sending facet is safe
// there (the control phase is single-threaded) and the merged totals
// are sums, so attribution is unaffected.
func (n *Net) Send(src, dst can.NodeID, size int, kind Kind, deliver func(now sim.Time)) {
	n.SendAt(n.eng.Now(), src, dst, size, kind, deliver)
}

// SendAt is Send with an explicit transmission time instead of the
// facet engine's clock. Barrier-context code (batched-admission
// completions, batch-phase continuations) runs while shard clocks sit
// at or before the window start, so the logical send time — the batch
// event's own time — must be passed in rather than read from a clock
// that is a partition-dependent distance behind. With sent ==
// n.eng.Now() it is exactly Send. On a batched sharded facet the
// delivery routes to the batch plane rather than the global plane: the
// closure still runs serially at a barrier, but without forcing a
// one-event quiesce, which is what lets windows keep their full
// lookahead width under churn.
func (n *Net) SendAt(sent sim.Time, src, dst can.NodeID, size int, kind Kind, deliver func(now sim.Time)) {
	n.countSend(src, size, kind)

	arrive := func(now sim.Time) {
		if n.deliverable != nil && !n.deliverable(dst) {
			cntDropped.Inc()
			return
		}
		if n.linkFault != nil && n.linkDown(src, dst) {
			return
		}
		n.countRecv(dst, size, kind)
		deliver(now)
	}
	if n.parent != nil {
		if n.parent.batched {
			n.parent.se.PostBatch(n.shard, sent.Add(n.latency), uint64(src), arrive)
		} else {
			n.parent.se.PostGlobal(n.shard, sent.Add(n.latency), uint64(src), arrive)
		}
		return
	}
	n.eng.At(sent.Add(n.latency), arrive)
}

// Deliverable is a message that knows how to apply itself at arrival.
// Protocols that send the same message shapes every round implement it
// on pooled structs so that a send costs no allocation (Net.Send costs
// one closure per message, which dominated heartbeat-round profiles).
type Deliverable interface {
	Deliver(now sim.Time)
}

// envelope carries one in-flight SendMsg through the event queue. It
// implements sim.Caller and returns itself to the transport's pool as
// soon as it fires.
type envelope struct {
	net  *Net
	src  can.NodeID
	dst  can.NodeID
	size int
	kind Kind
	msg  Deliverable
}

func (e *envelope) Call(now sim.Time) {
	n, src, dst, size, kind, msg := e.net, e.src, e.dst, e.size, e.kind, e.msg
	e.msg = nil
	n.envPool = append(n.envPool, e)
	if n.deliverable != nil && !n.deliverable(dst) {
		cntDropped.Inc()
		return
	}
	if n.linkFault != nil && n.linkDown(src, dst) {
		return
	}
	n.countRecv(dst, size, kind)
	msg.Deliver(now)
}

// SendMsg is Send for Deliverable messages: identical counting, drop
// semantics and delivery timing, with the closure replaced by a pooled
// envelope so steady-state traffic does not allocate.
//
// On a sharded facet, EVERY send — same-shard included — rebinds the
// envelope to the destination facet and posts it through the engine's
// mailboxes, keyed by the sending node's id: same-instant arrivals at a
// destination then fire in (sender id, emission) order, a pure property
// of the model, which is what makes a run's output independent of the
// shard partition (see sim.ShardedEngine.Post). The liveness/fault
// checks, receive counters and pool recycling all run on state owned by
// the destination shard's worker. The envelope is taken from the
// sender's free list (its own worker's), so each pool stays
// single-writer; envelopes migrate between pools along traffic, which
// is harmless. Nothing is delayed by the detour: an arrival at now+L
// can never land inside the window that sent it, so mailbox flush and
// direct scheduling reach the same window either way.
func (n *Net) SendMsg(src, dst can.NodeID, size int, kind Kind, msg Deliverable) {
	n.SendMsgAt(n.eng.Now(), src, dst, size, kind, msg)
}

// SendMsgAt is SendMsg with an explicit transmission time — the
// Deliverable counterpart of SendAt, for barrier-context senders whose
// facet clock lags the logical send time. With sent == n.eng.Now() it
// is exactly SendMsg.
func (n *Net) SendMsgAt(sent sim.Time, src, dst can.NodeID, size int, kind Kind, msg Deliverable) {
	n.countSend(src, size, kind)

	var env *envelope
	if k := len(n.envPool); k > 0 {
		env = n.envPool[k-1]
		n.envPool[k-1] = nil
		n.envPool = n.envPool[:k-1]
	} else {
		env = &envelope{net: n}
	}
	env.src, env.dst, env.size, env.kind, env.msg = src, dst, size, kind, msg
	if n.parent != nil {
		ds := n.parent.shardOf(dst)
		env.net = n.parent.facets[ds]
		n.parent.se.Post(n.shard, ds, sent.Add(n.latency), uint64(src), env)
		return
	}
	n.eng.AtCall(sent.Add(n.latency), env)
}

// Total returns cumulative counters since construction.
func (n *Net) Total() Counters { return n.total }

// Window returns counters accumulated since the last ResetWindow.
func (n *Net) Window() Counters { return n.window }

// KindTotal returns cumulative counters for one message kind.
func (n *Net) KindTotal(k Kind) Counters { return n.kindTotal[k] }

// KindWindow returns one kind's counters since the last ResetWindow.
func (n *Net) KindWindow(k Kind) Counters { return n.kindWindow[k] }

// ResetWindow zeroes the measurement window (used to exclude the
// initial-join warmup from steady-state cost measurements).
func (n *Net) ResetWindow() {
	n.window = Counters{}
	n.kindWindow = [numKinds]Counters{}
}

// Node returns the cumulative counters for one node (zero counters if it
// never communicated).
func (n *Net) Node(id can.NodeID) Counters {
	if c := n.perNode[id]; c != nil {
		return *c
	}
	return Counters{}
}
