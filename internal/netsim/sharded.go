package netsim

import (
	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// ShardedNet is the transport of a sharded simulation: one Net facet
// per shard, each bound to that shard's engine, sharing one latency.
// During parallel windows a facet's counters, per-node map, envelope
// pool and reply machinery are touched only by its own shard's worker;
// cross-shard sends travel through the ShardedEngine's mailboxes with
// exactly one latency of lookahead. Merged totals are sums taken in
// shard order, so every report is deterministic and — since integer
// sums are order-independent — equal to what a single Net carrying the
// same traffic would have counted.
type ShardedNet struct {
	se      *sim.ShardedEngine
	latency sim.Duration
	shardOf func(can.NodeID) int
	facets  []*Net

	// batched routes closure deliveries (Send/SendAt) to the batch
	// plane instead of the global plane — set once, before traffic, by
	// models running batched admission (see proto.Config.BatchedAdmission).
	batched bool
}

// NewSharded creates a facet transport over the sharded engine. The
// latency must equal the engine's lookahead — it is what makes the
// conservative windows sound.
func NewSharded(se *sim.ShardedEngine, latency sim.Duration) *ShardedNet {
	if latency != se.Lookahead() {
		panic("netsim: sharded transport latency must equal the engine lookahead")
	}
	sn := &ShardedNet{se: se, latency: latency, facets: make([]*Net, se.Shards())}
	for i := range sn.facets {
		f := New(se.Shard(i), latency)
		f.parent, f.shard = sn, i
		sn.facets[i] = f
	}
	return sn
}

// SetShardOf installs the node→shard map. It must be set before any
// traffic flows and must be stable for a node's lifetime (assigned at
// join, never migrated), and safe for concurrent reads during parallel
// windows — i.e. backed by state mutated only in control phases.
func (sn *ShardedNet) SetShardOf(f func(can.NodeID) int) { sn.shardOf = f }

// Facet returns shard i's transport facet; protocol hosts on shard i
// send through it.
func (sn *ShardedNet) Facet(i int) *Net { return sn.facets[i] }

// Shards returns the facet count S.
func (sn *ShardedNet) Shards() int { return len(sn.facets) }

// Latency returns the one-way delivery latency.
func (sn *ShardedNet) Latency() sim.Duration { return sn.latency }

// EarliestUndelivered reports the earliest in-flight arrival time from
// shard src's facet to shard dst — mail posted but not yet flushed into
// the destination queue — with ok false when none is in flight. This is
// the per-shard-pair transport horizon the adaptive window policy (and
// its tests) reason with: a window may never widen past the earliest
// undelivered arrival, because delivery must happen in the hop
// containing it. Barrier/control-plane use only.
func (sn *ShardedNet) EarliestUndelivered(src, dst int) (sim.Time, bool) {
	return sn.se.MailNext(src, dst)
}

// SetDeliverable installs one liveness check on every facet. The check
// runs on the destination shard's worker (envelope path) or the control
// plane (closure path), so it must only read state that parallel-phase
// code never writes.
func (sn *ShardedNet) SetDeliverable(f func(dst can.NodeID) bool) {
	for _, fc := range sn.facets {
		fc.SetDeliverable(f)
	}
}

// SetLinkFault installs one link-level fault oracle on every facet,
// with the same delivery-time drop semantics as Net.SetLinkFault. The
// oracle runs on whichever goroutine delivers (a shard worker for
// envelopes, the control plane for closures), so it must only read
// state that parallel-phase code never writes — partition schedules
// mutated in control phases qualify.
func (sn *ShardedNet) SetLinkFault(f func(src, dst can.NodeID) bool) {
	for _, fc := range sn.facets {
		fc.SetLinkFault(f)
	}
}

// LinkDrops reports messages lost to link faults, summed across facets.
func (sn *ShardedNet) LinkDrops() int64 {
	var n int64
	for _, f := range sn.facets {
		n += f.linkDrops
	}
	return n
}

// SetBatchedDelivery routes closure deliveries through the batch plane
// (see proto's batched-admission mode). It must be set before any
// traffic flows.
func (sn *ShardedNet) SetBatchedDelivery(on bool) { sn.batched = on }

// Total returns cumulative counters summed across facets.
func (sn *ShardedNet) Total() Counters {
	var c Counters
	for _, f := range sn.facets {
		c.MsgsSent += f.total.MsgsSent
		c.BytesSent += f.total.BytesSent
		c.MsgsRecv += f.total.MsgsRecv
		c.BytesRecv += f.total.BytesRecv
	}
	return c
}

// Window returns the measurement-window counters summed across facets.
func (sn *ShardedNet) Window() Counters {
	var c Counters
	for _, f := range sn.facets {
		c.MsgsSent += f.window.MsgsSent
		c.BytesSent += f.window.BytesSent
		c.MsgsRecv += f.window.MsgsRecv
		c.BytesRecv += f.window.BytesRecv
	}
	return c
}

// KindTotal returns one kind's cumulative counters across facets.
func (sn *ShardedNet) KindTotal(k Kind) Counters {
	var c Counters
	for _, f := range sn.facets {
		kc := f.kindTotal[k]
		c.MsgsSent += kc.MsgsSent
		c.BytesSent += kc.BytesSent
		c.MsgsRecv += kc.MsgsRecv
		c.BytesRecv += kc.BytesRecv
	}
	return c
}

// KindWindow returns one kind's window counters across facets.
func (sn *ShardedNet) KindWindow(k Kind) Counters {
	var c Counters
	for _, f := range sn.facets {
		kc := f.kindWindow[k]
		c.MsgsSent += kc.MsgsSent
		c.BytesSent += kc.BytesSent
		c.MsgsRecv += kc.MsgsRecv
		c.BytesRecv += kc.BytesRecv
	}
	return c
}

// ResetWindow zeroes every facet's measurement window. Control-phase
// (or quiesced-engine) use only.
func (sn *ShardedNet) ResetWindow() {
	for _, f := range sn.facets {
		f.ResetWindow()
	}
}

// Node returns one node's cumulative counters summed across facets
// (sends count on the facet whose host sent; receives on the facet that
// delivered — the sum is the node's true traffic).
func (sn *ShardedNet) Node(id can.NodeID) Counters {
	var c Counters
	for _, f := range sn.facets {
		fc := f.Node(id)
		c.MsgsSent += fc.MsgsSent
		c.BytesSent += fc.BytesSent
		c.MsgsRecv += fc.MsgsRecv
		c.BytesRecv += fc.BytesRecv
	}
	return c
}
