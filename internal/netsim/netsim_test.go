package netsim

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	eng := sim.New()
	n := New(eng, 100*sim.Millisecond)
	var deliveredAt sim.Time = -1
	eng.At(1000, func(sim.Time) {
		n.Send(1, 2, 64, KindOther, func(now sim.Time) { deliveredAt = now })
	})
	eng.Run()
	if deliveredAt != 1100 {
		t.Fatalf("delivered at %d, want 1100", deliveredAt)
	}
	if n.Latency() != 100*sim.Millisecond {
		t.Fatal("latency accessor wrong")
	}
}

func TestCountersSplitSendReceive(t *testing.T) {
	eng := sim.New()
	n := New(eng, 10)
	n.Send(1, 2, 100, KindOther, func(sim.Time) {})
	// Before delivery: sent counted, received not.
	tot := n.Total()
	if tot.MsgsSent != 1 || tot.BytesSent != 100 {
		t.Fatalf("sent counters: %+v", tot)
	}
	if tot.MsgsRecv != 0 {
		t.Fatal("receive counted before delivery")
	}
	eng.Run()
	tot = n.Total()
	if tot.MsgsRecv != 1 || tot.BytesRecv != 100 {
		t.Fatalf("recv counters after delivery: %+v", tot)
	}
}

func TestPerNodeCounters(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	n.Send(1, 3, 20, KindOther, func(sim.Time) {})
	n.Send(2, 1, 5, KindOther, func(sim.Time) {})
	eng.Run()
	if c := n.Node(1); c.MsgsSent != 2 || c.BytesSent != 30 || c.MsgsRecv != 1 || c.BytesRecv != 5 {
		t.Fatalf("node 1 counters: %+v", c)
	}
	if c := n.Node(99); c != (Counters{}) {
		t.Fatal("unknown node should have zero counters")
	}
}

func TestWindowReset(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	eng.Run()
	if n.Window().MsgsSent != 1 {
		t.Fatal("window missing traffic")
	}
	n.ResetWindow()
	if n.Window() != (Counters{}) {
		t.Fatal("window not zeroed")
	}
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	eng.Run()
	if n.Window().MsgsSent != 1 || n.Total().MsgsSent != 2 {
		t.Fatal("window/total divergence after reset")
	}
}

func TestUndeliverableDropped(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	alive := map[can.NodeID]bool{2: true}
	n.SetDeliverable(func(dst can.NodeID) bool { return alive[dst] })
	delivered := 0
	n.Send(1, 2, 10, KindOther, func(sim.Time) { delivered++ })
	n.Send(1, 3, 10, KindOther, func(sim.Time) { delivered++ }) // 3 is dead
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// Sends are counted even when the destination is gone (the sender
	// paid the cost); receives only on delivery.
	tot := n.Total()
	if tot.MsgsSent != 2 || tot.MsgsRecv != 1 {
		t.Fatalf("counters: %+v", tot)
	}
}

func TestKindCounters(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 100, KindFull, func(sim.Time) {})
	n.Send(1, 2, 10, KindCompact, func(sim.Time) {})
	n.Send(1, 2, 10, KindCompact, func(sim.Time) {})
	eng.Run()
	if c := n.KindTotal(KindFull); c.MsgsSent != 1 || c.BytesSent != 100 || c.MsgsRecv != 1 {
		t.Fatalf("full counters: %+v", c)
	}
	if c := n.KindTotal(KindCompact); c.MsgsSent != 2 || c.BytesSent != 20 {
		t.Fatalf("compact counters: %+v", c)
	}
	if c := n.KindTotal(KindRequest); c != (Counters{}) {
		t.Fatalf("request counters should be zero: %+v", c)
	}
	if c := n.KindWindow(KindFull); c.MsgsSent != 1 {
		t.Fatalf("full window: %+v", c)
	}
	n.ResetWindow()
	if c := n.KindWindow(KindFull); c != (Counters{}) {
		t.Fatal("kind window not zeroed by ResetWindow")
	}
	if c := n.KindTotal(KindFull); c.MsgsSent != 1 {
		t.Fatal("kind total lost by ResetWindow")
	}
	// Per-kind counters partition the aggregate.
	var sum Counters
	for _, k := range AllKinds {
		c := n.KindTotal(k)
		sum.MsgsSent += c.MsgsSent
		sum.BytesSent += c.BytesSent
		sum.MsgsRecv += c.MsgsRecv
		sum.BytesRecv += c.BytesRecv
	}
	if sum != n.Total() {
		t.Fatalf("kind sum %+v != total %+v", sum, n.Total())
	}
}

func TestDeathInFlight(t *testing.T) {
	eng := sim.New()
	n := New(eng, 100)
	alive := true
	n.SetDeliverable(func(can.NodeID) bool { return alive })
	delivered := false
	n.Send(1, 2, 10, KindOther, func(sim.Time) { delivered = true })
	eng.At(50, func(sim.Time) { alive = false }) // dies mid-flight
	eng.Run()
	if delivered {
		t.Fatal("message delivered to a node that died in flight")
	}
}
