package netsim

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	eng := sim.New()
	n := New(eng, 100*sim.Millisecond)
	var deliveredAt sim.Time = -1
	eng.At(1000, func(sim.Time) {
		n.Send(1, 2, 64, KindOther, func(now sim.Time) { deliveredAt = now })
	})
	eng.Run()
	if deliveredAt != 1100 {
		t.Fatalf("delivered at %d, want 1100", deliveredAt)
	}
	if n.Latency() != 100*sim.Millisecond {
		t.Fatal("latency accessor wrong")
	}
}

func TestCountersSplitSendReceive(t *testing.T) {
	eng := sim.New()
	n := New(eng, 10)
	n.Send(1, 2, 100, KindOther, func(sim.Time) {})
	// Before delivery: sent counted, received not.
	tot := n.Total()
	if tot.MsgsSent != 1 || tot.BytesSent != 100 {
		t.Fatalf("sent counters: %+v", tot)
	}
	if tot.MsgsRecv != 0 {
		t.Fatal("receive counted before delivery")
	}
	eng.Run()
	tot = n.Total()
	if tot.MsgsRecv != 1 || tot.BytesRecv != 100 {
		t.Fatalf("recv counters after delivery: %+v", tot)
	}
}

func TestPerNodeCounters(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	n.Send(1, 3, 20, KindOther, func(sim.Time) {})
	n.Send(2, 1, 5, KindOther, func(sim.Time) {})
	eng.Run()
	if c := n.Node(1); c.MsgsSent != 2 || c.BytesSent != 30 || c.MsgsRecv != 1 || c.BytesRecv != 5 {
		t.Fatalf("node 1 counters: %+v", c)
	}
	if c := n.Node(99); c != (Counters{}) {
		t.Fatal("unknown node should have zero counters")
	}
}

func TestWindowReset(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	eng.Run()
	if n.Window().MsgsSent != 1 {
		t.Fatal("window missing traffic")
	}
	n.ResetWindow()
	if n.Window() != (Counters{}) {
		t.Fatal("window not zeroed")
	}
	n.Send(1, 2, 10, KindOther, func(sim.Time) {})
	eng.Run()
	if n.Window().MsgsSent != 1 || n.Total().MsgsSent != 2 {
		t.Fatal("window/total divergence after reset")
	}
}

func TestUndeliverableDropped(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	alive := map[can.NodeID]bool{2: true}
	n.SetDeliverable(func(dst can.NodeID) bool { return alive[dst] })
	delivered := 0
	n.Send(1, 2, 10, KindOther, func(sim.Time) { delivered++ })
	n.Send(1, 3, 10, KindOther, func(sim.Time) { delivered++ }) // 3 is dead
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// Sends are counted even when the destination is gone (the sender
	// paid the cost); receives only on delivery.
	tot := n.Total()
	if tot.MsgsSent != 2 || tot.MsgsRecv != 1 {
		t.Fatalf("counters: %+v", tot)
	}
}

func TestKindCounters(t *testing.T) {
	eng := sim.New()
	n := New(eng, 1)
	n.Send(1, 2, 100, KindFull, func(sim.Time) {})
	n.Send(1, 2, 10, KindCompact, func(sim.Time) {})
	n.Send(1, 2, 10, KindCompact, func(sim.Time) {})
	eng.Run()
	if c := n.KindTotal(KindFull); c.MsgsSent != 1 || c.BytesSent != 100 || c.MsgsRecv != 1 {
		t.Fatalf("full counters: %+v", c)
	}
	if c := n.KindTotal(KindCompact); c.MsgsSent != 2 || c.BytesSent != 20 {
		t.Fatalf("compact counters: %+v", c)
	}
	if c := n.KindTotal(KindRequest); c != (Counters{}) {
		t.Fatalf("request counters should be zero: %+v", c)
	}
	if c := n.KindWindow(KindFull); c.MsgsSent != 1 {
		t.Fatalf("full window: %+v", c)
	}
	n.ResetWindow()
	if c := n.KindWindow(KindFull); c != (Counters{}) {
		t.Fatal("kind window not zeroed by ResetWindow")
	}
	if c := n.KindTotal(KindFull); c.MsgsSent != 1 {
		t.Fatal("kind total lost by ResetWindow")
	}
	// Per-kind counters partition the aggregate.
	var sum Counters
	for _, k := range AllKinds {
		c := n.KindTotal(k)
		sum.MsgsSent += c.MsgsSent
		sum.BytesSent += c.BytesSent
		sum.MsgsRecv += c.MsgsRecv
		sum.BytesRecv += c.BytesRecv
	}
	if sum != n.Total() {
		t.Fatalf("kind sum %+v != total %+v", sum, n.Total())
	}
}

func TestDeathInFlight(t *testing.T) {
	eng := sim.New()
	n := New(eng, 100)
	alive := true
	n.SetDeliverable(func(can.NodeID) bool { return alive })
	delivered := false
	n.Send(1, 2, 10, KindOther, func(sim.Time) { delivered = true })
	eng.At(50, func(sim.Time) { alive = false }) // dies mid-flight
	eng.Run()
	if delivered {
		t.Fatal("message delivered to a node that died in flight")
	}
}

// msgProbe is a Deliverable that records delivery, for exercising the
// pooled SendMsg path under link faults.
type msgProbe struct{ delivered int }

func (m *msgProbe) Deliver(sim.Time) { m.delivered++ }

// TestLinkFaultDropsCrossingTraffic pins the link-fault layer on both
// send paths: messages crossing a blocked link are silently lost and
// counted, traffic on healthy links is untouched, and the fault is
// evaluated at delivery time — a message still in flight when the link
// heals is delivered, mirroring the deliverable check's convention.
func TestLinkFaultDropsCrossingTraffic(t *testing.T) {
	eng := sim.New()
	n := New(eng, 10)
	p := NewPartition()
	n.SetLinkFault(p.Blocked)

	p.Isolate(2)
	delivered := 0
	probe := &msgProbe{}
	n.Send(1, 2, 64, KindOther, func(sim.Time) { delivered++ }) // crosses: dropped
	n.Send(2, 2, 64, KindOther, func(sim.Time) { delivered++ }) // intra-island: flows
	n.SendMsg(1, 2, 64, KindOther, probe)                       // crosses, pooled path: dropped
	n.SendMsg(3, 4, 64, KindOther, probe)                       // healthy side: flows
	eng.Run()
	if delivered != 1 || probe.delivered != 1 {
		t.Fatalf("delivered closure=%d pooled=%d, want 1 and 1", delivered, probe.delivered)
	}
	if n.LinkDrops() != 2 {
		t.Fatalf("LinkDrops = %d, want 2", n.LinkDrops())
	}
	if got := n.Total().MsgsRecv; got != 2 {
		t.Fatalf("MsgsRecv = %d; dropped messages must not count as received", got)
	}

	// Heal mid-flight: the fault is a delivery-time predicate.
	p.Isolate(2)
	n.Send(1, 2, 64, KindOther, func(sim.Time) { delivered++ })
	p.HealAll()
	// The in-flight message above was sent while blocked but the fault
	// is checked at delivery — with the partition healed it now flows.
	n.Send(1, 2, 64, KindOther, func(sim.Time) { delivered++ })
	eng.Run()
	if delivered != 3 {
		t.Fatalf("delivered = %d after heal, want 3 (both flow once healed)", delivered)
	}
	if n.LinkDrops() != 2 {
		t.Fatalf("LinkDrops = %d after heal, want unchanged 2", n.LinkDrops())
	}
}

// TestPartitionOracle pins the boundary predicate: only links with
// exactly one isolated endpoint are blocked, in both directions.
func TestPartitionOracle(t *testing.T) {
	p := NewPartition()
	if p.Blocked(1, 2) || p.Size() != 0 {
		t.Fatal("empty partition must block nothing")
	}
	p.Isolate(1, 3)
	if !p.Blocked(1, 2) || !p.Blocked(2, 1) {
		t.Fatal("boundary link not blocked both ways")
	}
	if p.Blocked(1, 3) {
		t.Fatal("intra-island link blocked")
	}
	if p.Blocked(2, 4) {
		t.Fatal("majority-side link blocked")
	}
	if got := p.Isolated(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Isolated() = %v", got)
	}
	p.Heal(1)
	if p.Blocked(1, 2) {
		t.Fatal("healed node still blocked")
	}
	if !p.Blocked(3, 1) {
		t.Fatal("remaining isolated node unblocked")
	}
	p.HealAll()
	if p.Blocked(3, 1) || p.Size() != 0 {
		t.Fatal("HealAll left residue")
	}
	_ = can.NodeID(0)
}
