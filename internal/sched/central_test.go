package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
	"hetgrid/internal/workload"
)

// referenceCentralPlace is the seed's full-population scan, kept
// verbatim as the specification the incremental index must match
// decision-for-decision.
func referenceCentralPlace(c *Context, st *Stats, j *exec.Job) (can.NodeID, error) {
	var sat, acceptable, free []*can.Node
	for _, n := range c.Ov.Nodes() {
		if n.Caps == nil || !resource.Satisfies(n.Caps, j.Req) {
			continue
		}
		rt := c.Cluster.Runtime(n.ID)
		if rt == nil {
			continue
		}
		sat = append(sat, n)
		if rt.IsAcceptable(j.Req) {
			acceptable = append(acceptable, n)
			if rt.IsFree() {
				free = append(free, n)
			}
		}
	}
	switch {
	case len(free) > 0:
		st.FreePicks++
		st.Placed++
		return pickFastest(free, j.Dominant).ID, nil
	case len(acceptable) > 0:
		st.AcceptPicks++
		st.Placed++
		return pickFastest(acceptable, j.Dominant).ID, nil
	case len(sat) > 0:
		st.ScorePicks++
		st.Placed++
		return c.pickMinScore(sat, j.Dominant).ID, nil
	default:
		st.Unmatchable++
		return 0, ErrUnmatchable
	}
}

// TestCentralIndexMatchesFullScan drives the indexed Central and the
// reference full scan over the same evolving grid — submissions filling
// queues, completions draining them, and churn invalidating the
// membership caches — and requires identical placements and stats at
// every step. The reference scan is read-only, so both deciders observe
// exactly the same state.
func TestCentralIndexMatchesFullScan(t *testing.T) {
	ctx, ov, cl := testGrid(t, 60, 2, 7)
	s := NewCentral(ctx)
	var refStats Stats
	r := rng.NewSplit(7, "central-equiv")
	jobs := workload.NewJobGen(ctx.Space, 7)
	nodeGen := workload.NewNodeGen(ctx.Space, 7001)

	nextID := exec.JobID(1)
	place := func(j *exec.Job) {
		wantID, wantErr := referenceCentralPlace(ctx, &refStats, j)
		gotID, gotErr := s.Place(j)
		if gotErr != wantErr {
			t.Fatalf("job %d: err=%v, reference err=%v", j.ID, gotErr, wantErr)
		}
		if gotErr == nil {
			if gotID != wantID {
				t.Fatalf("job %d: indexed central picked node %d, full scan picked %d",
					j.ID, gotID, wantID)
			}
			if err := cl.Submit(j, gotID); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		if s.Stats != refStats {
			t.Fatalf("job %d: stats diverged: %+v vs reference %+v", j.ID, s.Stats, refStats)
		}
	}

	for step := 0; step < 400; step++ {
		j, _ := jobs.Next()
		j.ID = nextID
		nextID++
		place(j)

		// Let some work complete so the idle/empty-queue sets shrink and
		// regrow across the run.
		if step%7 == 3 {
			ctx.Eng.RunUntil(ctx.Eng.Now().Add(sim.FromSeconds(90 * r.Float64())))
		}

		// Churn: withdraw a node (execution plane first, then overlay,
		// mirroring the experiment drivers) and re-place its orphans.
		if step%41 == 17 {
			nodes := ov.Nodes()
			victim := nodes[r.Intn(len(nodes))]
			orphans := cl.RemoveNode(victim.ID)
			ov.Leave(victim.ID)
			for _, oj := range orphans {
				place(oj)
			}
		}

		// Churn the other way: admit fresh nodes so the ranked lists
		// splice entries in as well as out across the run.
		if step%29 == 11 {
			caps := nodeGen.One()
			if node, err := ov.Join(ctx.Space.NodePoint(caps), caps); err == nil {
				cl.AddNode(node.ID, caps)
			}
		}
	}
	if s.Stats.Placed == 0 || s.Stats.ScorePicks == 0 {
		t.Fatalf("test never exercised the score tier: %+v", s.Stats)
	}
	if s.Stats != refStats {
		t.Fatalf("final stats diverged: %+v vs reference %+v", s.Stats, refStats)
	}
}
