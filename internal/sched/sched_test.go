package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
	"hetgrid/internal/workload"
)

// testGrid builds an overlay + cluster with n synthetic nodes and
// returns the wired context.
func testGrid(t *testing.T, n int, gpuSlots int, seed int64) (*Context, *can.Overlay, *exec.Cluster) {
	t.Helper()
	eng := sim.New()
	space := resource.NewSpace(gpuSlots)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	gen := workload.NewNodeGen(space, seed)
	redraw := rng.NewSplit(seed, "redraw")
	for i := 0; i < n; i++ {
		caps := gen.One()
		node, err := ov.Join(space.NodePoint(caps), caps)
		for err != nil {
			caps.Virtual = redraw.Float64() * 0.999999
			node, err = ov.Join(space.NodePoint(caps), caps)
		}
		cl.AddNode(node.ID, caps)
	}
	return NewContext(eng, ov, cl, space, seed), ov, cl
}

func cpuReq(cores int) resource.JobReq {
	return resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: cores}}}
}

func cpuJob(id int, cores int) *exec.Job {
	return &exec.Job{
		ID:           exec.JobID(id),
		Req:          cpuReq(cores),
		Dominant:     resource.TypeCPU,
		BaseDuration: sim.Hour,
	}
}

func gpuJob(id int, slot resource.CEType) *exec.Job {
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{
		resource.TypeCPU: {Cores: 1},
		slot:             {Cores: 32},
	}}
	return &exec.Job{
		ID:           exec.JobID(id),
		Req:          req,
		Dominant:     slot,
		BaseDuration: sim.Hour,
	}
}

// TestAggMatchesBruteForce cross-checks the suffix-sum aggregation
// against a direct O(n²) computation.
func TestAggMatchesBruteForce(t *testing.T) {
	ctx, ov, cl := testGrid(t, 80, 2, 1)
	// Load a few nodes so demands are non-zero.
	i := 0
	for _, n := range ov.Nodes() {
		if i%3 == 0 {
			j := cpuJob(1000+i, 1)
			if resource.Satisfies(n.Caps, j.Req) {
				cl.Submit(j, n.ID)
			}
		}
		i++
	}
	ctx.Agg.Refresh(ov, cl)

	for _, n := range ov.Nodes() {
		for d := 0; d < ov.Dims(); d++ {
			wantNodes := 0
			var wantLoad [3]CELoad
			for _, m := range ov.Nodes() {
				if m.Zone.Lo[d] < n.Zone.Hi[d] {
					continue
				}
				wantNodes++
				rt := cl.Runtime(m.ID)
				for ty := 0; ty < 3; ty++ {
					if req, cores, ok := rt.DemandOn(resource.CEType(ty)); ok {
						wantLoad[ty].SumRequiredCores += float64(req)
						wantLoad[ty].SumCores += float64(cores)
					}
				}
			}
			got := ctx.Agg.At(n.ID, d)
			if got.Nodes != wantNodes {
				t.Fatalf("node %d dim %d: Nodes=%d want %d", n.ID, d, got.Nodes, wantNodes)
			}
			for ty := 0; ty < 3; ty++ {
				if got.Load(resource.CEType(ty)) != wantLoad[ty] {
					t.Fatalf("node %d dim %d type %d: %+v want %+v",
						n.ID, d, ty, got.Load(resource.CEType(ty)), wantLoad[ty])
				}
			}
		}
	}
}

func TestAggEmptyBeforeRefresh(t *testing.T) {
	a := NewAggTable(5, 1)
	row := a.At(7, 3)
	if row.Nodes != 0 || row.Load(0) != (CELoad{}) {
		t.Fatal("unrefreshed table must return empty aggregates")
	}
}

func TestObjectivePrefersProvisionedRegions(t *testing.T) {
	// Equation 3 must rank a region with more cores and less demand
	// lower (better).
	a := resource.PushObjective(10, 100)
	b := resource.PushObjective(10, 10)
	if a >= b {
		t.Fatal("objective should prefer core-rich regions")
	}
}

func TestCentralPrefersFreeFastNode(t *testing.T) {
	ctx, ov, cl := testGrid(t, 50, 2, 2)
	s := NewCentral(ctx)
	id, err := s.Place(cpuJob(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// All nodes are free: central must pick a fastest-CPU satisfier.
	best := 0.0
	for _, n := range ov.Nodes() {
		if resource.Satisfies(n.Caps, cpuReq(1)) && n.Caps.CPU().Clock > best {
			best = n.Caps.CPU().Clock
		}
	}
	if got := ov.Node(id).Caps.CPU().Clock; got != best {
		t.Fatalf("central picked clock %v, fastest free is %v", got, best)
	}
	if s.Stats.FreePicks != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	_ = cl
}

func TestCentralUnmatchable(t *testing.T) {
	ctx, _, _ := testGrid(t, 20, 1, 3)
	s := NewCentral(ctx)
	impossible := &exec.Job{
		ID:       1,
		Req:      resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 64}}},
		Dominant: resource.TypeCPU,
	}
	if _, err := s.Place(impossible); err != ErrUnmatchable {
		t.Fatalf("err = %v, want ErrUnmatchable", err)
	}
	if s.Stats.Unmatchable != 1 {
		t.Fatal("unmatchable not counted")
	}
}

func TestCanHetPlacesEveryMatchableJob(t *testing.T) {
	ctx, ov, cl := testGrid(t, 120, 2, 4)
	s := NewCanHet(ctx)
	central := NewCentral(ctx)
	placed := 0
	for i := 0; i < 300; i++ {
		var j *exec.Job
		if i%3 == 0 {
			j = gpuJob(i, resource.CEType(1+i%2))
		} else {
			j = cpuJob(i, 1+i%4)
		}
		_, cerr := central.Place(j)
		id, herr := s.Place(j)
		if cerr == nil && herr != nil {
			t.Fatalf("job %d: central placed it but can-het failed: %v", i, herr)
		}
		if herr == nil {
			if !resource.Satisfies(ov.Node(id).Caps, j.Req) {
				t.Fatalf("job %d placed on unsatisfying node %d", i, id)
			}
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	_ = cl
}

func TestCanHetPrefersAcceptableOverQueued(t *testing.T) {
	// Saturate every node except one acceptable GPU node; a GPU job
	// must land on the acceptable node, not queue elsewhere.
	ctx, ov, cl := testGrid(t, 60, 1, 5)
	s := NewCanHet(ctx)

	// Occupy all CPUs with big jobs so no node is free.
	id := 10000
	for _, n := range ov.Nodes() {
		rt := cl.Runtime(n.ID)
		cores := n.Caps.CPU().Cores
		j := cpuJob(id, cores)
		id++
		if resource.Satisfies(n.Caps, j.Req) {
			rt := rt
			_ = rt
			cl.Submit(j, n.ID)
		}
	}
	g := gpuJob(1, 1)
	node, err := s.Place(g)
	if err != nil {
		t.Skip("no GPU nodes in this population draw")
	}
	rt := cl.Runtime(node)
	// The chosen node must have been able to start the job at once
	// (its GPU idle and a CPU core free) or, if none was acceptable,
	// be a minimum-score pick; in either case it must satisfy.
	if !resource.Satisfies(ov.Node(node).Caps, g.Req) {
		t.Fatal("GPU job on unsatisfying node")
	}
	_ = rt
}

func TestCanHomIgnoresGPUQueues(t *testing.T) {
	// Construct a two-node scenario: node A has a fast CPU and a GPU
	// already hammered with queued GPU jobs; node B has an idle GPU but
	// a slower, busy CPU. can-hom (CPU-oblivious... GPU-oblivious)
	// should be willing to send a GPU job to A, while can-het must see
	// A's GPU queue and prefer B.
	eng := sim.New()
	space := resource.NewSpace(1)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())

	mk := func(cpuClock float64, cores int, gpuClock float64, virtual float64) *can.Node {
		caps := &resource.NodeCaps{
			CEs: []resource.CE{
				{Type: resource.TypeCPU, Clock: cpuClock, Cores: cores, Memory: 8},
				{Type: 1, Dedicated: true, Clock: gpuClock, Cores: 128, Memory: 4},
			},
			Disk: 500, Virtual: virtual,
		}
		n, err := ov.Join(space.NodePoint(caps), caps)
		if err != nil {
			t.Fatal(err)
		}
		cl.AddNode(n.ID, caps)
		return n
	}
	a := mk(3.0, 8, 1.5, 0.2)
	b := mk(1.0, 2, 1.0, 0.7)

	// Hammer A's GPU with queued jobs; keep A's CPU mostly free.
	for i := 0; i < 5; i++ {
		cl.Submit(gpuJob(100+i, 1), a.ID)
	}
	// B runs one small CPU job (so B is not free either).
	cl.Submit(cpuJob(200, 1), b.ID)

	ctx := NewContext(eng, ov, cl, space, 6)
	het := NewCanHet(ctx)
	hom := NewCanHom(ctx)

	g := gpuJob(1, 1)
	hetNode, err := het.Place(g)
	if err != nil {
		t.Fatal(err)
	}
	if hetNode != b.ID {
		t.Fatalf("can-het placed the GPU job on node %d, want B (%d) whose GPU is idle", hetNode, b.ID)
	}
	g2 := gpuJob(2, 1)
	homNode, err := hom.Place(g2)
	if err != nil {
		t.Fatal(err)
	}
	// can-hom ranks by CPU state only: A's mostly-idle fast CPU makes
	// it the minimum-CPU-score pick despite the deep GPU queue.
	if homNode != a.ID {
		t.Fatalf("can-hom placed the GPU job on node %d; expected the GPU-blind pick A (%d)", homNode, a.ID)
	}
}

func TestFallbackCountsAndPlaces(t *testing.T) {
	ctx, ov, _ := testGrid(t, 40, 1, 7)
	var st Stats
	// A requirement only few nodes meet.
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{
		resource.TypeCPU: {Clock: 3.0, Cores: 8, Memory: 16},
	}}
	n := ctx.fallback(req, resource.TypeCPU, &st)
	any := false
	for _, m := range ov.Nodes() {
		if resource.Satisfies(m.Caps, req) {
			any = true
		}
	}
	if any && n == nil {
		t.Fatal("fallback missed an existing satisfier")
	}
	if !any && n != nil {
		t.Fatal("fallback invented a satisfier")
	}
	if n != nil && st.Fallbacks != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []can.NodeID {
		ctx, _, cl := testGrid(t, 60, 2, 8)
		s := NewCanHet(ctx)
		var ids []can.NodeID
		for i := 0; i < 100; i++ {
			j := cpuJob(i, 1+i%2)
			id, err := s.Place(j)
			if err != nil {
				ids = append(ids, -1)
				continue
			}
			cl.Submit(j, id)
			ids = append(ids, id)
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Placed: 3, RouteHops: 5, Fallbacks: 1}
	str := s.String()
	if str == "" || len(str) < 20 {
		t.Fatalf("Stats.String() = %q", str)
	}
}

func TestSchedulerNames(t *testing.T) {
	ctx, _, _ := testGrid(t, 20, 1, 9)
	if NewCanHet(ctx).Name() != "can-het" ||
		NewCanHom(ctx).Name() != "can-hom" ||
		NewCentral(ctx).Name() != "central" {
		t.Fatal("scheduler names wrong")
	}
}

func TestCanHomPlacesJobs(t *testing.T) {
	ctx, ov, cl := testGrid(t, 100, 2, 10)
	s := NewCanHom(ctx)
	placed := 0
	for i := 0; i < 200; i++ {
		var j *exec.Job
		if i%3 == 0 {
			j = gpuJob(i, resource.CEType(1+i%2))
		} else {
			j = cpuJob(i, 1+i%3)
		}
		id, err := s.Place(j)
		if err != nil {
			continue
		}
		if !resource.Satisfies(ov.Node(id).Caps, j.Req) {
			t.Fatalf("can-hom placed job %d on unsatisfying node", i)
		}
		cl.Submit(j, id)
		placed++
	}
	if placed < 150 {
		t.Fatalf("can-hom placed only %d of 200", placed)
	}
	if s.Stats.Placed != placed {
		t.Fatalf("stats placed=%d, want %d", s.Stats.Placed, placed)
	}
	// can-hom only ever uses free picks or score picks: the
	// acceptable-node notion requires CE awareness.
	if s.Stats.AcceptPicks != 0 {
		t.Fatalf("can-hom made %d acceptable picks", s.Stats.AcceptPicks)
	}
}

func TestCanHomUnmatchable(t *testing.T) {
	ctx, _, _ := testGrid(t, 20, 1, 11)
	s := NewCanHom(ctx)
	impossible := &exec.Job{
		ID:       1,
		Req:      resource.JobReq{CE: map[resource.CEType]resource.CEReq{resource.TypeCPU: {Cores: 64}}},
		Dominant: resource.TypeCPU,
	}
	if _, err := s.Place(impossible); err != ErrUnmatchable {
		t.Fatalf("err = %v, want ErrUnmatchable", err)
	}
}

func TestVirtualSpreadAblationChangesRouting(t *testing.T) {
	// With virtual spread disabled, identical jobs route to the same
	// virtual coordinate; the two configurations must consume the same
	// random draws yet can differ in placements.
	ctx, _, _ := testGrid(t, 60, 1, 12)
	ctx.DisableVirtualSpread = true
	if v := ctx.jobVirtual(); v != 0 {
		t.Fatalf("disabled virtual spread returned %v, want 0", v)
	}
	ctx.DisableVirtualSpread = false
	if v := ctx.jobVirtual(); v == 0 {
		t.Fatal("enabled virtual spread returned 0 (vanishingly unlikely)")
	}
}

func TestEmptyOverlayPlacement(t *testing.T) {
	eng := sim.New()
	space := resource.NewSpace(1)
	ov := can.NewOverlay(space.Dims())
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	ctx := NewContext(eng, ov, cl, space, 13)
	for _, s := range []Scheduler{NewCanHet(ctx), NewCanHom(ctx), NewCentral(ctx)} {
		if _, err := s.Place(cpuJob(1, 1)); err == nil {
			t.Fatalf("%s placed a job on an empty overlay", s.Name())
		}
	}
}
