package sched

import (
	"errors"
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

var (
	cntScoreEvals = perf.NewCounter("sched.score_evals")
	cntFallbacks  = perf.NewCounter("sched.fallback_scans")
)

// Scheduler assigns a run node to each job. Place returns the chosen
// node; the caller then submits the job to the cluster.
type Scheduler interface {
	Name() string
	Place(j *exec.Job) (can.NodeID, error)
}

// ErrUnmatchable is returned when no reachable node satisfies a job's
// requirements.
var ErrUnmatchable = errors.New("sched: no node satisfies the job")

// maxPushHops caps the pushing walk; in a healthy CAN the stop
// probability terminates walks long before this.
const maxPushHops = 128

// Stats accumulates matchmaking telemetry.
type Stats struct {
	Placed       int
	RouteHops    int // CAN routing hops to the job's coordinate
	PushHops     int // job-pushing hops after routing
	FreePicks    int // run node chosen because it was a free node
	AcceptPicks  int // run node chosen as an acceptable (non-free) node
	ScorePicks   int // run node chosen by the score function
	Unmatchable  int
	BoostedWalks int // hops spent escaping a non-satisfying region
	Fallbacks    int // placements that needed the expanding-search fallback
}

func (s Stats) String() string {
	return fmt.Sprintf("placed=%d route=%d push=%d free=%d accept=%d score=%d fallback=%d unmatchable=%d",
		s.Placed, s.RouteHops, s.PushHops, s.FreePicks, s.AcceptPicks, s.ScorePicks, s.Fallbacks, s.Unmatchable)
}

// StatsOf exposes a scheduler's Stats for telemetry, or nil for
// scheduler types that keep none.
func StatsOf(s Scheduler) *Stats {
	switch t := s.(type) {
	case *CanHet:
		return &t.Stats
	case *CanHom:
		return &t.Stats
	case *Central:
		return &t.Stats
	}
	return nil
}

// Probe observes the causal steps of one placement — submit, route
// path, push hops, and the final match — for span tracing. Probes are
// telemetry-only: they must not mutate scheduling state, and a nil
// Context.Probe costs nothing on the placement hot path.
type Probe interface {
	// PlaceBegin opens a span for the job about to be placed.
	PlaceBegin(j *exec.Job)
	// RoutePath reports the CAN routing path (entry first). The slice
	// aliases scheduler scratch and is valid only during the call.
	RoutePath(path []*can.Node)
	// PushHop reports one pushing (or boosting) hop to n.
	PushHop(n *can.Node)
	// Match closes the span with the chosen node and the pick kind:
	// "free", "accept", "score", or "fallback".
	Match(node can.NodeID, kind string)
	// Unmatched closes the span with no placement.
	Unmatched()
}

func (c *Context) probeBegin(j *exec.Job) {
	if c.Probe != nil {
		c.Probe.PlaceBegin(j)
	}
}

func (c *Context) probeRoute(path []*can.Node) {
	if c.Probe != nil {
		c.Probe.RoutePath(path)
	}
}

func (c *Context) probePush(n *can.Node) {
	if c.Probe != nil {
		c.Probe.PushHop(n)
	}
}

func (c *Context) probeMatch(node can.NodeID, kind string) {
	if c.Probe != nil {
		c.Probe.Match(node, kind)
	}
}

func (c *Context) probeUnmatched() {
	if c.Probe != nil {
		c.Probe.Unmatched()
	}
}

// Context bundles what every decentralized scheduler needs.
type Context struct {
	Eng     *sim.Engine
	Ov      *can.Overlay
	Cluster *exec.Cluster
	Space   *resource.Space
	Agg     *AggTable

	// StoppingFactor is Equation 4's SF.
	StoppingFactor float64
	// RefreshPeriod is the aggregation cadence (the heartbeat period).
	RefreshPeriod sim.Duration
	// DisableVirtualSpread routes every job with virtual coordinate 0
	// instead of a random draw — the ablation for the virtual
	// dimension's load-spreading role (Section II-B).
	DisableVirtualSpread bool

	// Probe, when non-nil, observes each placement's causal steps for
	// span tracing. Telemetry-only: it never alters decisions.
	Probe Probe

	rnd         *rng.Stream
	lastRefresh sim.Time
	refreshed   bool

	// Per-placement scratch. A Context serves one placement at a time;
	// these buffers are recycled across Place calls so a steady-state
	// placement allocates nothing. satBuf is overwritten by each
	// satisfying() call, so its result is valid only until the next hop.
	satBuf      []*can.Node
	acceptBuf   []*can.Node
	freeBuf     []*can.Node
	fallbackBuf []*can.Node
	pathBuf     []*can.Node
	jobPtBuf    geom.Point
}

// NewContext wires a scheduling context. Aggregated load information is
// refreshed lazily on the heartbeat cadence: a placement uses the table
// as of the last period boundary, exactly the staleness a real node
// sees between heartbeats.
func NewContext(eng *sim.Engine, ov *can.Overlay, cl *exec.Cluster, space *resource.Space, seed int64) *Context {
	return &Context{
		Eng:            eng,
		Ov:             ov,
		Cluster:        cl,
		Space:          space,
		Agg:            NewAggTable(space.Dims(), space.GPUSlots),
		StoppingFactor: 2,
		RefreshPeriod:  60 * sim.Second,
		rnd:            rng.NewSplit(seed, "sched"),
	}
}

// maybeRefresh recomputes the aggregate table when a full refresh
// period has elapsed since the last recomputation.
func (c *Context) maybeRefresh() {
	now := c.Eng.Now()
	if !c.refreshed || now.Sub(c.lastRefresh) >= c.RefreshPeriod {
		c.Agg.Refresh(c.Ov, c.Cluster)
		// Align to period boundaries so the refresh instant does not
		// drift with arrival times.
		period := sim.Time(c.RefreshPeriod)
		if period > 0 {
			c.lastRefresh = now - now%period
		} else {
			c.lastRefresh = now
		}
		c.refreshed = true
	}
}

// jobVirtual draws the virtual-dimension coordinate assigned to a job
// for routing (random, to spread placements across equivalent nodes),
// or 0 under the virtual-spread ablation.
func (c *Context) jobVirtual() float64 {
	v := c.rnd.Float64()
	if c.DisableVirtualSpread {
		return 0
	}
	return v
}

// jobPoint computes the job's routing coordinate into the per-Context
// scratch point (same contents as Space.JobPoint, without the
// allocation). The point is overwritten by the next placement.
func (c *Context) jobPoint(req resource.JobReq) geom.Point {
	if len(c.jobPtBuf) != c.Space.Dims() {
		c.jobPtBuf = make(geom.Point, c.Space.Dims())
	}
	return c.Space.JobPointInto(c.jobPtBuf, req, c.jobVirtual())
}

// route runs CAN routing into the per-Context path buffer. The returned
// path is valid until the next placement.
func (c *Context) route(from can.NodeID, target geom.Point) ([]*can.Node, error) {
	path, err := c.Ov.RouteAppend(c.pathBuf, from, target)
	if path != nil {
		c.pathBuf = path
	}
	return path, err
}

// randomEntry picks the node a client submits through (uniformly random,
// as in the evaluation).
func (c *Context) randomEntry() *can.Node {
	nodes := c.Ov.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	return nodes[c.rnd.Intn(len(nodes))]
}

// satisfying filters cur and its neighbors down to nodes that statically
// satisfy the job, returned in deterministic (ID) order with cur first
// when it qualifies. The result aliases a per-Context scratch buffer and
// is valid only until the next satisfying call; the neighborhood comes
// from the overlay's cached view, so no scan or allocation happens here.
func (c *Context) satisfying(cur *can.Node, req resource.JobReq) []*can.Node {
	out := c.satBuf[:0]
	if cur.Caps != nil && resource.Satisfies(cur.Caps, req) {
		out = append(out, cur)
	}
	for _, nb := range c.Ov.NeighborView(cur.ID) {
		if nb.Caps != nil && resource.Satisfies(nb.Caps, req) {
			out = append(out, nb)
		}
	}
	c.satBuf = out
	return out
}

// pickFastest returns the node whose CE of type t has the highest clock
// speed (ties to the lowest ID). Nodes lacking the type rank last.
func pickFastest(nodes []*can.Node, t resource.CEType) *can.Node {
	var best *can.Node
	bestClock := -1.0
	for _, n := range nodes {
		clock := 0.0
		if ce := n.Caps.CE(t); ce != nil {
			clock = ce.Clock
		}
		if clock > bestClock || (clock == bestClock && best != nil && n.ID < best.ID) {
			best, bestClock = n, clock
		}
	}
	return best
}

// pickMinScore returns the node minimizing the Section III-B score
// function for dominant CE type t (ties to the lowest ID).
func (c *Context) pickMinScore(nodes []*can.Node, t resource.CEType) *can.Node {
	var best *can.Node
	bestScore := 0.0
	cntScoreEvals.Add(int64(len(nodes)))
	for _, n := range nodes {
		rt := c.Cluster.Runtime(n.ID)
		if rt == nil {
			continue
		}
		s := rt.Score(t)
		if best == nil || s < bestScore || (s == bestScore && n.ID < best.ID) {
			best, bestScore = n, s
		}
	}
	return best
}

// outwardNeighbors lists (neighbor, dimension) pairs where the neighbor
// sits on cur's high side — the directions a job can be pushed toward
// more capable regions. Served straight from the overlay's cached view:
// the Abuts tests ran once when the view was built, so a hop no longer
// re-scans the neighborhood (previously both satisfying and this helper
// walked Neighbors, scanning every hop's neighborhood twice).
func (c *Context) outwardNeighbors(cur *can.Node) []can.Outward {
	return c.Ov.OutwardView(cur.ID)
}

// boost walks the job out of a region whose nodes cannot satisfy it:
// it follows the dimension with the largest requirement deficit toward
// higher capability. Used when routing lands the job among
// under-provisioned nodes. Returns the first node reached that has a
// satisfying node in its neighborhood (possibly itself).
func (c *Context) boost(cur *can.Node, req resource.JobReq, jobPt []float64, st *Stats) (*can.Node, error) {
	for hop := 0; hop < maxPushHops; hop++ {
		if len(c.satisfying(cur, req)) > 0 {
			return cur, nil
		}
		// Move outward along the dimension where cur's zone is farthest
		// below the job's coordinate.
		var best *can.Outward
		bestDeficit := 0.0
		outs := c.outwardNeighbors(cur)
		for i := range outs {
			o := &outs[i]
			deficit := jobPt[o.Dim] - cur.Zone.Hi[o.Dim]
			if deficit < 0 {
				// Already past the requirement in this dimension; an
				// outward hop may still help reach capable nodes, but
				// prefer true deficits.
				deficit = 1e-9
			}
			if best == nil || deficit > bestDeficit ||
				(deficit == bestDeficit && o.Node.ID < best.Node.ID) {
				best, bestDeficit = o, deficit
			}
		}
		if best == nil {
			return nil, ErrUnmatchable
		}
		cur = best.Node
		st.BoostedWalks++
		c.probePush(cur)
	}
	return nil, ErrUnmatchable
}

// fallback is the expanding-search last resort a real CAN deploys when
// greedy walks dead-end: scan for any satisfying node and take the one
// with the minimum score for CE type t. Its use is counted in
// Stats.Fallbacks so experiments can report how often the greedy
// machinery needed rescuing; a nil return means the job is genuinely
// unmatchable anywhere in the grid.
func (c *Context) fallback(req resource.JobReq, t resource.CEType, st *Stats) *can.Node {
	sat := c.fallbackBuf[:0]
	for _, n := range c.Ov.Nodes() {
		if n.Caps != nil && resource.Satisfies(n.Caps, req) {
			sat = append(sat, n)
		}
	}
	c.fallbackBuf = sat
	if len(sat) == 0 {
		return nil
	}
	st.Fallbacks++
	cntFallbacks.Inc()
	return c.pickMinScore(sat, t)
}
