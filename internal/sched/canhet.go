package sched

import (
	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
)

// CanHet is the paper's contribution (Algorithm 1): heterogeneity-aware
// decentralized matchmaking. The job routes to its coordinate, then is
// pushed toward less-loaded regions chosen by the dominant-CE objective
// (Equation 3), stopping probabilistically (Equation 4); at every hop
// an acceptable node — one that can start the job now on the CEs it
// needs — short-circuits the walk, with free nodes preferred and the
// fastest dominant-CE clock breaking ties.
type CanHet struct {
	ctx   *Context
	Stats Stats
}

// NewCanHet builds the heterogeneity-aware scheduler.
func NewCanHet(ctx *Context) *CanHet { return &CanHet{ctx: ctx} }

// Name returns the label used in the paper's figures.
func (s *CanHet) Name() string { return "can-het" }

// Place runs Algorithm 1 for one job.
func (s *CanHet) Place(j *exec.Job) (can.NodeID, error) {
	c := s.ctx
	c.maybeRefresh()
	c.probeBegin(j)
	entry := c.randomEntry()
	if entry == nil {
		c.probeUnmatched()
		return 0, ErrUnmatchable
	}
	jobPt := c.jobPoint(j.Req)

	// Step 1: CAN routing to the job's coordinate.
	path, err := c.route(entry.ID, jobPt)
	if err != nil {
		return 0, err
	}
	s.Stats.RouteHops += len(path) - 1
	c.probeRoute(path)
	cur := path[len(path)-1]

	// If the landing region cannot satisfy the job at all, climb toward
	// capability first.
	cur, err = c.boost(cur, j.Req, jobPt, &s.Stats)
	if err != nil {
		if n := c.fallback(j.Req, j.Dominant, &s.Stats); n != nil {
			s.Stats.Placed++
			c.probeMatch(n.ID, "fallback")
			return n.ID, nil
		}
		s.Stats.Unmatchable++
		c.probeUnmatched()
		return 0, ErrUnmatchable
	}

	dom := j.Dominant
	for hop := 0; hop < maxPushHops; hop++ {
		cands := c.satisfying(cur, j.Req)

		// Steps 3–9: an acceptable node ends the walk; free nodes win,
		// then the fastest dominant-CE clock.
		acceptable, free := c.acceptBuf[:0], c.freeBuf[:0]
		for _, n := range cands {
			rt := c.Cluster.Runtime(n.ID)
			if rt == nil || !rt.IsAcceptable(j.Req) {
				continue
			}
			acceptable = append(acceptable, n)
			if rt.IsFree() {
				free = append(free, n)
			}
		}
		c.acceptBuf, c.freeBuf = acceptable, free
		if len(free) > 0 {
			s.Stats.FreePicks++
			s.Stats.Placed++
			id := pickFastest(free, dom).ID
			c.probeMatch(id, "free")
			return id, nil
		}
		if len(acceptable) > 0 {
			s.Stats.AcceptPicks++
			s.Stats.Placed++
			id := pickFastest(acceptable, dom).ID
			c.probeMatch(id, "accept")
			return id, nil
		}

		// Step 11: choose the push target minimizing Equation 3 over
		// outward neighbors that can host the job.
		var target *can.Outward
		bestObj := 0.0
		outs := c.outwardNeighbors(cur)
		for i := range outs {
			o := &outs[i]
			if o.Node.Caps == nil || !resource.Satisfies(o.Node.Caps, j.Req) {
				continue
			}
			obj := c.Agg.Objective(o.Node.ID, o.Dim, dom)
			if target == nil || obj < bestObj ||
				(obj == bestObj && o.Node.ID < target.Node.ID) {
				target, bestObj = o, obj
			}
		}

		// Step 12: stop probabilistically based on how many nodes remain
		// beyond along the target dimension (Equation 4).
		stop := target == nil
		if !stop {
			p := resource.StopProbability(c.Agg.At(cur.ID, target.Dim).Nodes, c.StoppingFactor)
			stop = c.rnd.Bool(p)
		}
		if stop {
			if len(cands) == 0 {
				break
			}
			// Step 14: the minimum-score node among neighbors (Eq 1/2).
			s.Stats.ScorePicks++
			s.Stats.Placed++
			id := c.pickMinScore(cands, dom).ID
			c.probeMatch(id, "score")
			return id, nil
		}

		cur = target.Node
		s.Stats.PushHops++
		c.probePush(cur)
	}

	// Walk exhausted without a candidate: place at the best scoring
	// satisfier around the current position if any.
	if cands := c.satisfying(cur, j.Req); len(cands) > 0 {
		s.Stats.ScorePicks++
		s.Stats.Placed++
		id := c.pickMinScore(cands, dom).ID
		c.probeMatch(id, "score")
		return id, nil
	}
	if n := c.fallback(j.Req, dom, &s.Stats); n != nil {
		s.Stats.Placed++
		c.probeMatch(n.ID, "fallback")
		return n.ID, nil
	}
	s.Stats.Unmatchable++
	c.probeUnmatched()
	return 0, ErrUnmatchable
}
