package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// runChurnStormScript interprets a byte script as an interleaving of
// churn, load changes and — crucially — explicit refresh boundaries, so
// the fuzzer controls how many overlay versions batch up between
// refreshes. That is the surface runAggScript (refresh after every op)
// cannot reach: multi-event journal replays, join-then-leave of the
// same node inside one window, zone changes of nodes about to depart,
// and the all-dirty fallback landing on a freshly spliced topology.
// Overlay.Validate() runs after every mutation, and every refresh
// boundary compares the incremental table bit-for-bit against the
// full-recompute reference. Returns the incremental table's stats so
// tests can assert which maintenance paths actually ran.
func runChurnStormScript(tb testing.TB, data []byte) AggStats {
	const dims = 2
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	for i := 0; i < 12; i++ {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + i%4}},
			Disk: 100,
		}
		p := geom.Point{(float64(i%4) + 0.5) / 4, (float64(i/4) + 0.5) / 3}
		n, err := ov.Join(p, caps)
		if err != nil {
			tb.Fatalf("seed join %v: %v", p, err)
		}
		cl.AddNode(n.ID, caps)
	}

	inc := NewAggTable(dims, 0)
	ref := NewAggTable(dims, 0)
	nextJob := exec.JobID(1)

	validate := func(k int) {
		tb.Helper()
		if err := ov.Validate(); err != nil {
			tb.Fatalf("op %d: %v", k, err)
		}
	}
	join := func(k int, op byte) {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + k%4}},
			Disk: 100,
		}
		p := geom.Point{
			(float64(op>>3&7) + 0.37) / 8,
			(float64(op>>6|op&3<<2) + 0.61) / 16,
		}
		if n, err := ov.Join(p, caps); err == nil {
			cl.AddNode(n.ID, caps)
			validate(k)
		}
	}
	leave := func(k int, op byte) {
		nodes := ov.Nodes()
		if len(nodes) <= 2 {
			return
		}
		victim := nodes[int(op>>3)%len(nodes)].ID
		if _, err := ov.Leave(victim); err == nil {
			cl.RemoveNode(victim)
			validate(k)
		}
	}

	for k, op := range data {
		switch op % 8 {
		case 0: // submit a job (oversized requests are skipped)
			nodes := ov.Nodes()
			j := &exec.Job{
				ID:           nextJob,
				Req:          cpuReq(1 + int(op>>6)),
				Dominant:     resource.TypeCPU,
				BaseDuration: sim.Duration(1+int(op>>3)%8) * 10 * sim.Second,
			}
			if err := cl.Submit(j, nodes[int(op>>3)%len(nodes)].ID); err == nil {
				nextJob++
			}
		case 1: // let time pass: running jobs finish, queues drain
			eng.RunUntil(eng.Now().Add(sim.Duration(1+int(op>>3)) * 5 * sim.Second))
		case 2: // departure
			leave(k, op)
		case 3: // admission
			join(k, op)
		case 4: // refresh boundary: both tables converge, then compare
			inc.Refresh(ov, cl)
			ref.RefreshFull(ov, cl)
			compareAggTables(tb, ov, inc, ref, dims)
		case 5: // poison the dirty set: next refresh takes the load fallback
			cl.MarkAllDirty()
		case 6: // churn pulse: a leave and a join inside the same window
			leave(k, op)
			join(k, op^0xff)
		case 7: // a short time advance
			eng.RunUntil(eng.Now().Add(sim.Duration(1+int(op>>5)) * sim.Second))
		}
	}
	inc.Refresh(ov, cl)
	ref.RefreshFull(ov, cl)
	compareAggTables(tb, ov, inc, ref, dims)
	return inc.Stats()
}

// TestChurnStormDifferential drives randomized churn storms with
// batched refreshes: sustained join/leave bursts, overlapping load
// changes, and refresh boundaries landing at arbitrary points. Across
// the seeds the splice path must both run (ChurnRefreshes) and absorb
// multi-event batches (ChurnEvents > ChurnRefreshes), or the test is
// no longer exercising what it claims to.
func TestChurnStormDifferential(t *testing.T) {
	var total AggStats
	for seed := int64(1); seed <= 6; seed++ {
		r := rng.NewSplit(seed, "churn-storm")
		data := make([]byte, 200)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		st := runChurnStormScript(t, data)
		total.ChurnRefreshes += st.ChurnRefreshes
		total.ChurnEvents += st.ChurnEvents
		total.FullRebuilds += st.FullRebuilds
	}
	if total.ChurnRefreshes == 0 {
		t.Fatal("no refresh took the churn-splice path; the storm is not exercising it")
	}
	if total.ChurnEvents <= total.ChurnRefreshes {
		t.Fatalf("splices averaged ≤1 event (%d events over %d splices); batching is not happening",
			total.ChurnEvents, total.ChurnRefreshes)
	}
}

// TestChurnSpliceFallbacks pins the splice path's bail-out conditions:
// a batch within the threshold splices; a batch beyond maxSpliceEvents
// falls back to the full rebuild; a poisoned dirty set forces the load
// fallback even when the membership splice succeeded. Each arm must
// still match the reference exactly.
func TestChurnSpliceFallbacks(t *testing.T) {
	const dims = 2
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	s := rng.NewSplit(3, "splice-fallbacks")
	addOne := func() {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 2}},
			Disk: 100,
		}
		for try := 0; try < 8; try++ {
			p := geom.Point{s.Float64(), s.Float64()}
			if n, err := ov.Join(p, caps); err == nil {
				cl.AddNode(n.ID, caps)
				return
			}
		}
		t.Fatal("could not place a new node")
	}
	for i := 0; i < 20; i++ {
		addOne()
	}
	inc := NewAggTable(dims, 0)
	ref := NewAggTable(dims, 0)
	check := func() {
		t.Helper()
		inc.Refresh(ov, cl)
		ref.RefreshFull(ov, cl)
		compareAggTables(t, ov, inc, ref, dims)
	}
	check() // first use: full rebuild
	if got := inc.Stats(); got.FullRebuilds != 1 || got.ChurnRefreshes != 0 {
		t.Fatalf("first refresh: %+v, want one full rebuild", got)
	}

	// A small batch splices.
	victim := ov.Nodes()[7].ID
	if _, err := ov.Leave(victim); err != nil {
		t.Fatal(err)
	}
	cl.RemoveNode(victim)
	addOne()
	check()
	if got := inc.Stats(); got.ChurnRefreshes != 1 || got.ChurnEvents != 2 {
		t.Fatalf("small batch: %+v, want one splice of two events", got)
	}

	// A batch beyond maxSpliceEvents but within the journal's retained
	// window takes the batch compact+merge path, not the rebuild.
	for i := 0; i <= maxSpliceEvents; i++ {
		addOne()
	}
	check()
	if got := inc.Stats(); got.ChurnRefreshes != 2 || got.ChurnBatches != 1 || got.FullRebuilds != 1 {
		t.Fatalf("large batch: %+v, want a batch splice and no new rebuild", got)
	}

	// A backlog beyond the journal's retained window rebuilds instead:
	// ChurnSince is all-or-nothing once the ring has evicted the gap.
	for i := 0; i <= ov.JournalCap(); i++ {
		addOne()
	}
	check()
	if got := inc.Stats(); got.ChurnRefreshes != 2 || got.ChurnBatches != 1 || got.FullRebuilds != 2 {
		t.Fatalf("evicted backlog: %+v, want a second full rebuild and no new splice", got)
	}

	// A successful splice whose dirty set was poisoned still needs the
	// load fallback — both counters move on one refresh.
	victim = ov.Nodes()[3].ID
	if _, err := ov.Leave(victim); err != nil {
		t.Fatal(err)
	}
	cl.RemoveNode(victim)
	cl.MarkAllDirty()
	check()
	if got := inc.Stats(); got.ChurnRefreshes != 3 || got.FullRebuilds != 3 {
		t.Fatalf("poisoned splice: %+v, want splice and load fallback on the same refresh", got)
	}
}

// FuzzChurnIncremental lets the fuzzer search for a churn/refresh
// interleaving where the splice-maintained table diverges from the
// full recompute or the overlay invariants break. Seed corpus in
// testdata/fuzz/FuzzChurnIncremental.
func FuzzChurnIncremental(f *testing.F) {
	f.Add([]byte{0x04, 0x13, 0x02, 0x0b, 0x1e, 0x04, 0x06, 0x2c, 0x05, 0x04, 0x63, 0x1a, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		runChurnStormScript(t, data)
	})
}
