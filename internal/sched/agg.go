// Package sched implements the matchmaking and load-balancing
// algorithms of Sections II-B and III-B: the heterogeneity-aware
// decentralized scheme (can-het, Algorithm 1), the prior
// heterogeneity-oblivious scheme (can-hom), and the greedy online
// centralized comparator (central).
package sched

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
)

// CELoad is the aggregated load information for one CE type in a region
// of the CAN: the inputs to Equation 3.
type CELoad struct {
	SumRequiredCores float64 // cores demanded by running + queued jobs
	SumCores         float64 // cores installed
}

func (a CELoad) add(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores + b.SumRequiredCores, a.SumCores + b.SumCores}
}

// DimAgg is the aggregate over the region beyond a node along one
// dimension (toward higher resource values). ByType is indexed by
// resource.CEType (0 = CPU, then accelerator slots).
type DimAgg struct {
	Nodes  int // all nodes in the region (Equation 4's NumberOfNodes)
	ByType []CELoad
}

// Load returns the aggregate for CE type t (zero when out of range).
func (d DimAgg) Load(t resource.CEType) CELoad {
	if int(t) < len(d.ByType) {
		return d.ByType[t]
	}
	return CELoad{}
}

// AggTable holds, for every node and dimension, the aggregated load
// information over the outer region. In the real system this data rides
// on heartbeats, one hop per period; the simulator recomputes it exactly
// on the heartbeat cadence, which preserves the staleness the paper's
// scheme lives with (decisions between refreshes use old data).
type AggTable struct {
	dims   int
	ntypes int
	agg    map[can.NodeID][]DimAgg
}

// NewAggTable creates an empty table for a d-dimensional CAN with CE
// types 0..gpuSlots.
func NewAggTable(dims int, gpuSlots int) *AggTable {
	return &AggTable{dims: dims, ntypes: gpuSlots + 1, agg: make(map[can.NodeID][]DimAgg)}
}

// At returns the aggregate beyond node id along dim. Missing entries
// (before the first refresh) return an empty aggregate.
func (a *AggTable) At(id can.NodeID, dim int) DimAgg {
	if rows := a.agg[id]; rows != nil && dim < len(rows) {
		return rows[dim]
	}
	return DimAgg{}
}

// Refresh recomputes the table: for each dimension D, the region beyond
// node N is the set of nodes whose zone starts at or past N's zone end
// (zone.Lo[D] ≥ N.zone.Hi[D]) — the nodes reachable by pushing further
// out along D. Computed with sorted suffix sums in O(d·n log n).
func (a *AggTable) Refresh(ov *can.Overlay, cl *exec.Cluster) {
	nodes := ov.Nodes()
	n := len(nodes)
	a.agg = make(map[can.NodeID][]DimAgg, n)
	for _, nd := range nodes {
		a.agg[nd.ID] = make([]DimAgg, a.dims)
	}

	// Per-node loads, gathered once. loads[i] is indexed by CE type.
	loads := make([][]CELoad, n)
	for i, nd := range nodes {
		row := make([]CELoad, a.ntypes)
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < a.ntypes; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					row[t] = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
		}
		loads[i] = row
	}

	idx := make([]int, n)
	for d := 0; d < a.dims; d++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			return nodes[idx[x]].Zone.Lo[d] < nodes[idx[y]].Zone.Lo[d]
		})
		// Suffix sums over the sorted order: suf[i] aggregates sorted
		// positions i..n-1.
		suf := make([][]CELoad, n+1)
		suf[n] = make([]CELoad, a.ntypes)
		for i := n - 1; i >= 0; i-- {
			row := make([]CELoad, a.ntypes)
			for t := 0; t < a.ntypes; t++ {
				row[t] = suf[i+1][t].add(loads[idx[i]][t])
			}
			suf[i] = row
		}
		los := make([]float64, n)
		for i := range los {
			los[i] = nodes[idx[i]].Zone.Lo[d]
		}
		for _, nd := range nodes {
			pos := sort.SearchFloat64s(los, nd.Zone.Hi[d])
			a.agg[nd.ID][d] = DimAgg{Nodes: n - pos, ByType: suf[pos]}
		}
	}
}

// Objective evaluates Equation 3 for the region beyond node id along
// dim, for CE type c.
func (a *AggTable) Objective(id can.NodeID, dim int, c resource.CEType) float64 {
	l := a.At(id, dim).Load(c)
	return resource.PushObjective(l.SumRequiredCores, l.SumCores)
}
