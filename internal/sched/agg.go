// Package sched implements the matchmaking and load-balancing
// algorithms of Sections II-B and III-B: the heterogeneity-aware
// decentralized scheme (can-het, Algorithm 1), the prior
// heterogeneity-oblivious scheme (can-hom), and the greedy online
// centralized comparator (central).
package sched

import (
	"slices"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
)

var (
	cntAggRefresh     = perf.NewCounter("sched.agg_refreshes")
	cntAggRebuild     = perf.NewCounter("sched.agg_topology_rebuilds")
	cntAggInc         = perf.NewCounter("sched.agg_incremental_refreshes")
	cntAggDirty       = perf.NewCounter("sched.agg_dirty_nodes")
	cntAggFenUpdates  = perf.NewCounter("sched.agg_fenwick_updates")
	cntAggChurnSplice = perf.NewCounter("sched.agg_churn_splice_refreshes")
	cntAggChurnBatch  = perf.NewCounter("sched.agg_churn_batch_refreshes")
	cntAggChurnEvents = perf.NewCounter("sched.agg_churn_events")
	cntAggCarried     = perf.NewCounter("sched.agg_loads_carried")
	tmrAggRefresh     = perf.NewTimer("sched.agg_refresh")
)

// CELoad is the aggregated load information for one CE type in a region
// of the CAN: the inputs to Equation 3.
type CELoad struct {
	SumRequiredCores float64 // cores demanded by running + queued jobs
	SumCores         float64 // cores installed
}

func (a CELoad) add(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores + b.SumRequiredCores, a.SumCores + b.SumCores}
}

func (a CELoad) sub(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores - b.SumRequiredCores, a.SumCores - b.SumCores}
}

// DimAgg is the aggregate over the region beyond a node along one
// dimension (toward higher resource values). ByType is indexed by
// resource.CEType (0 = CPU, then accelerator slots).
type DimAgg struct {
	Nodes  int // all nodes in the region (Equation 4's NumberOfNodes)
	ByType []CELoad
}

// Load returns the aggregate for CE type t (zero when out of range).
func (d DimAgg) Load(t resource.CEType) CELoad {
	if int(t) < len(d.ByType) {
		return d.ByType[t]
	}
	return CELoad{}
}

// AggStats counts the aggregation plane's refresh work, so drivers and
// the metrics plane can show the incremental path operating: how often
// the table fell back to a full recompute, how many dirty nodes each
// delta refresh consumed, how many Fenwick node updates they cost, and
// how much churn was absorbed by splicing instead of re-sorting.
type AggStats struct {
	Refreshes      int64 // Refresh + RefreshFull calls
	FullRebuilds   int64 // refreshes that recomputed every node (first use, churn gap, all-dirty)
	IncRefreshes   int64 // refreshes whose load deltas came through the dirty drain
	ChurnRefreshes int64 // refreshes that spliced membership deltas instead of re-sorting
	ChurnBatches   int64 // churn refreshes that took the batch compact+merge path
	ChurnEvents    int64 // cumulative journal events absorbed by splices
	DirtyDrained   int64 // cumulative dirty-node notifications processed
	FenwickUpdates int64 // cumulative Fenwick tree-node updates applied
	CarriedLoads   int64 // full-rebuild load rows reused instead of re-queried
	LastDirty      int   // dirty nodes consumed by the most recent refresh
}

// maxSpliceEvents bounds how many journal events one refresh will
// absorb on the per-event splice path. Each per-event splice costs
// O(d·n) in the worst case (an ordered insert/remove memmoves the tail
// of every per-dimension order), so a backlog replayed one event at a
// time goes quadratic. 256 keeps heartbeat-cadence consumers at small
// populations (a handful of events per refresh) on the cheapest path;
// larger batches — steady churn at XXL populations delivers thousands
// of events per heartbeat poll — take the batch compact+merge path
// (batchSplice), which handles the whole backlog in one O(d·(n+Δ·logΔ))
// pass and is bounded only by the journal's adaptive retained window.
const maxSpliceEvents = 256

// AggTable holds, for every node and dimension, the aggregated load
// information over the outer region. In the real system this data rides
// on heartbeats, one hop per period; the simulator recomputes it exactly
// on the heartbeat cadence, which preserves the staleness the paper's
// scheme lives with (decisions between refreshes use old data).
//
// The table is maintained incrementally along both axes of change:
//
//   - Load deltas: the cluster records which nodes had a job start,
//     finish or queue change since the last refresh
//     (exec.Cluster.DrainDirty), and a steady-state Refresh applies
//     only those nodes' load deltas as point updates to per-dimension
//     Fenwick (binary-indexed) trees over the cached sorted orders —
//     O(k·d·log n) for k dirty nodes instead of an O(n·d) sweep.
//   - Membership deltas: on an overlay version change, Refresh replays
//     the overlay's churn journal (can.Overlay.ChurnSince) and splices
//     each joined/left/zone-changed node into or out of the sorted
//     orders — an O(d·log n) search plus an O(d·n) tail memmove per
//     event, followed by one linear O(d·n) Fenwick reconstruction —
//     instead of the former full re-sort (O(d·n·log n)) plus load
//     sweep. When the journal gap exceeds the retained window, the
//     batch exceeds maxSpliceEvents, or the table has never seen this
//     overlay, it falls back to the full rebuild, so correctness never
//     depends on the journal's capacity.
//
// Per-(node, dimension) results are materialized lazily: Refresh bumps
// an epoch, and At fills a row from the Fenwick trees (one binary
// search for the region cut plus one O(log n) prefix query) the first
// time it is read in an epoch. The placement walk touches a handful of
// rows per job, so reads keep their O(1) amortized map-lookup profile
// and a steady-state refresh-plus-reads cycle allocates nothing.
//
// All sums are exact: loads are integer-valued float64s, far below the
// 2^53 exactness horizon, so every Fenwick tree node, every delta and
// every total-minus-prefix difference is the exact integer it denotes.
// The accumulation order therefore cannot perturb a single output bit.
// The sorted orders are equally canonical: (Zone.Lo[d], ID) is a total
// order, so splicing and re-sorting produce the identical permutation.
// Both properties together make the churn-spliced table bit-identical
// to a from-scratch rebuild (the differential tests assert this).
type AggTable struct {
	dims   int
	ntypes int

	// Topology cache, valid while ov/version match the overlay. nodes
	// is an owned copy of the membership (swap-delete maintained across
	// splices), not an alias of the overlay's shared snapshot — the
	// snapshot mutates in place on churn, while splice replay needs the
	// pre-churn membership to interpret each journal event against.
	ov      *can.Overlay
	version uint64
	nodes   []*can.Node          // owned membership copy, unordered after splices
	order   [][]int              // per dim: node indexes sorted by (Zone.Lo[d], ID)
	los     [][]float64          // per dim: the sorted zone starts
	idx     map[can.NodeID]int32 // node ID → index into nodes
	pos     [][]int32            // per dim: sorted position of node i at pos[d][i]

	// Load state, incrementally maintained between full rebuilds.
	loads []CELoad   // n×ntypes current per-node loads
	tot   []CELoad   // ntypes grid-wide totals
	fen   [][]CELoad // per dim: (n+1)×ntypes Fenwick tree (1-indexed; entry 0 unused)

	// Lazily materialized results. dimAggs[r].ByType points into the
	// byTypes backing; rowEpoch[r] says which epoch filled it.
	epoch    uint64
	rowEpoch []uint64 // n×dims
	dimAggs  []DimAgg // n×dims
	byTypes  []CELoad // n×dims×ntypes

	onDirty   func(can.NodeID)     // applyDirty, bound once so Refresh allocates no closure
	onChurn   func(can.ChurnEvent) // applyChurn, bound once for the same reason
	onCollect func(can.ChurnEvent) // collectChurn, bound once for the batch path
	onDiscard func(can.NodeID)     // no-op drain sink for the full-rebuild path
	onStale   func(can.NodeID)     // stale-set collector for the carry-over rebuild
	cl        *exec.Cluster        // the cluster being drained, valid during Refresh only
	changed   bool                 // a drained delta was nonzero (epoch must advance)

	// Carry-over state for the full-rebuild fallback (rebuildDelta): the
	// previous generation's id→index map and load rows, double-buffered
	// with idx/loads across rebuilds so surviving nodes' loads can be
	// copied instead of re-queried, plus the drained stale-node set that
	// says which survivors must be re-queried anyway.
	prevIdx   map[can.NodeID]int32
	prevLoads []CELoad
	staleSet  map[can.NodeID]struct{}

	// Batch-splice scratch (batchSplice), reused across refreshes.
	batchIDs   []can.NodeID // affected ids collected from the journal
	remapBuf   []int32      // old membership index → compacted index (-1 dropped)
	ordScratch []int        // per-dim sorted re-admission batch
	ordMerge   []int        // merged order double-buffer
	losScratch []float64    // merged zone-start key double-buffer

	stats AggStats
}

// NewAggTable creates an empty table for a d-dimensional CAN with CE
// types 0..gpuSlots.
func NewAggTable(dims int, gpuSlots int) *AggTable {
	a := &AggTable{dims: dims, ntypes: gpuSlots + 1, idx: make(map[can.NodeID]int32)}
	a.onDirty = a.applyDirty
	a.onChurn = a.applyChurn
	a.onCollect = a.collectChurn
	a.onDiscard = func(can.NodeID) {}
	a.staleSet = make(map[can.NodeID]struct{})
	a.onStale = func(id can.NodeID) { a.staleSet[id] = struct{}{} }
	return a
}

// Stats returns cumulative refresh-cost counters (see AggStats).
func (a *AggTable) Stats() AggStats { return a.stats }

// At returns the aggregate beyond node id along dim. Missing entries
// (before the first refresh, or for departed nodes) return an empty
// aggregate.
//
// Aliasing contract: the returned DimAgg.ByType aliases table-owned
// storage that the next Refresh invalidates — the same backing row is
// refilled in place, so a retained DimAgg silently starts showing the
// new epoch's values. Callers must consume the row (or copy it) before
// the next refresh; TestAggAtAliasing pins this contract.
func (a *AggTable) At(id can.NodeID, dim int) DimAgg {
	i, ok := a.idx[id]
	if !ok || dim < 0 || dim >= a.dims {
		return DimAgg{}
	}
	r := int(i)*a.dims + dim
	if a.rowEpoch[r] != a.epoch {
		a.fillRow(r, dim)
	}
	return a.dimAggs[r]
}

// fillRow materializes one (node, dim) aggregate from the Fenwick tree.
// The region beyond the node is the set of nodes whose zone starts at
// or past the node's zone end, i.e. the sorted-order suffix from the
// cut position (found by binary search over the cached zone starts);
// its load is the grid total minus the Fenwick prefix before the cut.
// Totals, tree nodes and the subtraction chain are all exact integers,
// so the result equals a direct suffix sum bit for bit.
func (a *AggTable) fillRow(r, dim int) {
	n := len(a.nodes)
	nt := a.ntypes
	nd := a.nodes[r/a.dims]
	c := sort.SearchFloat64s(a.los[dim], nd.Zone.Hi[dim])
	row := a.byTypes[r*nt : (r+1)*nt]
	copy(row, a.tot)
	fen := a.fen[dim]
	for p := c; p > 0; p &= p - 1 {
		node := fen[p*nt : (p+1)*nt]
		for t := 0; t < nt; t++ {
			row[t] = row[t].sub(node[t])
		}
	}
	a.dimAggs[r] = DimAgg{Nodes: n - c, ByType: row}
	a.rowEpoch[r] = a.epoch
}

// grow returns s resized to n elements, reusing its backing array when
// the capacity allows. Contents are unspecified; callers overwrite (or,
// for rowEpoch, rely on stale values predating the current epoch).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// rebuildTopology re-sorts the per-dimension orders after churn and
// derives everything that depends on membership alone: the owned node
// copy, the id→index map and each node's sorted position per dimension.
// Ties on the (tie-prone, float-valued) zone starts break by node ID,
// the same discipline as can/bounded.go, so the permutation is a pure
// function of the overlay state rather than of sort.Slice's unstable
// internals — and therefore also of whether churn arrived here or via
// the splice path.
func (a *AggTable) rebuildTopology(ov *can.Overlay) {
	cntAggRebuild.Inc()
	a.ov, a.version = ov, ov.Version()
	a.nodes = append(a.nodes[:0], ov.Nodes()...)
	nodes := a.nodes
	n := len(nodes)
	if a.order == nil {
		a.order = make([][]int, a.dims)
		a.los = make([][]float64, a.dims)
		a.pos = make([][]int32, a.dims)
		a.fen = make([][]CELoad, a.dims)
	}
	clear(a.idx)
	for i, nd := range nodes {
		a.idx[nd.ID] = int32(i)
	}
	for d := 0; d < a.dims; d++ {
		idx := grow(a.order[d], n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			lx, ly := nodes[idx[x]].Zone.Lo[d], nodes[idx[y]].Zone.Lo[d]
			if lx != ly {
				return lx < ly
			}
			return nodes[idx[x]].ID < nodes[idx[y]].ID
		})
		los := grow(a.los[d], n)
		pos := grow(a.pos[d], n)
		for p, i := range idx {
			los[p] = nodes[i].Zone.Lo[d]
			pos[i] = int32(p)
		}
		a.order[d], a.los[d], a.pos[d] = idx, los, pos
	}

	a.rowEpoch = grow(a.rowEpoch, n*a.dims)
	a.dimAggs = grow(a.dimAggs, n*a.dims)
	a.byTypes = grow(a.byTypes, n*a.dims*a.ntypes)
	// rowEpoch entries (reused or zeroed) all predate the epoch bump in
	// rebuildLoads, so every row reads as stale afterwards; dimAggs and
	// byTypes are overwritten by fillRow before any read.
}

// rebuildLoads recomputes every node's load, the grid totals and the
// per-dimension Fenwick trees from scratch against the cached topology,
// then advances the epoch. O(n·d) — the fallback for first use and a
// non-enumerable dirty set; a churn-journal gap with an enumerable
// dirty set takes rebuildDelta instead, which skips the per-node
// DemandOn queries for unchanged survivors.
func (a *AggTable) rebuildLoads(cl *exec.Cluster) {
	nodes := a.nodes
	n := len(nodes)
	nt := a.ntypes

	a.loads = grow(a.loads, n*nt)
	a.tot = grow(a.tot, nt)
	for t := range a.tot {
		a.tot[t] = CELoad{}
	}
	for i, nd := range nodes {
		row := a.loads[i*nt : (i+1)*nt]
		for t := range row {
			row[t] = CELoad{}
		}
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < nt; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					row[t] = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
		}
		for t := 0; t < nt; t++ {
			a.tot[t] = a.tot[t].add(row[t])
		}
	}

	for d := 0; d < a.dims; d++ {
		a.buildFenwick(d)
	}
	a.epoch++
}

// rebuildDelta is the full-rebuild fallback with the O(n) DemandOn
// sweep removed: membership still re-sorts from scratch (the journal
// could not cover the gap), but load rows are carried over from the
// previous generation for every surviving node the cluster did not
// mark dirty, so only joined or load-changed nodes pay the
// Runtime+DemandOn lookups. The drained dirty set is exactly the set
// of nodes whose DemandOn-relevant state changed since the loads were
// last read (exec.Cluster's channel contract), so a carried row equals
// what the query would return, bit for bit; totals are re-summed in
// the same index order as rebuildLoads over the same exact-integer
// rows, so the Fenwick input — and hence every aggregate — is
// bit-identical to the sweep it replaces.
//
// Call order matters: the dirty set must be drained into staleSet and
// idx/loads swapped into prevIdx/prevLoads BEFORE rebuildTopology
// overwrites them; rebuildFull below owns that sequence.
func (a *AggTable) rebuildDelta(cl *exec.Cluster) {
	nodes := a.nodes
	n := len(nodes)
	nt := a.ntypes

	a.loads = grow(a.loads, n*nt)
	a.tot = grow(a.tot, nt)
	for t := range a.tot {
		a.tot[t] = CELoad{}
	}
	for i, nd := range nodes {
		row := a.loads[i*nt : (i+1)*nt]
		if oi, ok := a.prevIdx[nd.ID]; ok {
			if _, stale := a.staleSet[nd.ID]; !stale {
				copy(row, a.prevLoads[int(oi)*nt:(int(oi)+1)*nt])
				a.stats.CarriedLoads++
				cntAggCarried.Inc()
				for t := 0; t < nt; t++ {
					a.tot[t] = a.tot[t].add(row[t])
				}
				continue
			}
		}
		for t := range row {
			row[t] = CELoad{}
		}
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < nt; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					row[t] = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
		}
		for t := 0; t < nt; t++ {
			a.tot[t] = a.tot[t].add(row[t])
		}
	}

	for d := 0; d < a.dims; d++ {
		a.buildFenwick(d)
	}
	a.epoch++
}

// rebuildFull is Refresh's fallback when the churn journal cannot
// cover the membership gap. It drains the dirty set first (the old
// path discarded it after the sweep; the new one needs its contents),
// swaps the current id→index map and load rows into the prev buffers,
// re-sorts the topology, and then rebuilds loads — carrying unchanged
// survivors' rows over (rebuildDelta) when the dirty set enumerated
// and the table has prior state for this overlay, re-querying every
// node (rebuildLoads) otherwise.
func (a *AggTable) rebuildFull(ov *can.Overlay, cl *exec.Cluster) {
	clear(a.staleSet)
	enumerable := cl.DrainDirty(a.onStale)
	carry := enumerable && a.ov == ov && len(a.nodes) > 0

	// Swap the generations: prevIdx/prevLoads hold the pre-rebuild
	// mapping; rebuildTopology clears and refills the other buffer.
	a.idx, a.prevIdx = a.prevIdx, a.idx
	if a.idx == nil {
		a.idx = make(map[can.NodeID]int32)
	}
	a.loads, a.prevLoads = a.prevLoads, a.loads

	a.rebuildTopology(ov)
	if carry {
		a.rebuildDelta(cl)
	} else {
		a.rebuildLoads(cl)
	}
}

// buildFenwick linearly reconstructs dimension d's Fenwick tree from
// the current loads and sorted order: seed each tree node with its
// position's load, then fold every node into its parent. O(n·ntypes).
func (a *AggTable) buildFenwick(d int) {
	n := len(a.nodes)
	nt := a.ntypes
	fen := grow(a.fen[d], (n+1)*nt)
	for t := 0; t < nt; t++ {
		fen[t] = CELoad{}
	}
	order := a.order[d]
	for p := 1; p <= n; p++ {
		i := order[p-1]
		copy(fen[p*nt:(p+1)*nt], a.loads[i*nt:(i+1)*nt])
	}
	for p := 1; p <= n; p++ {
		if q := p + p&-p; q <= n {
			fq := fen[q*nt : (q+1)*nt]
			fp := fen[p*nt : (p+1)*nt]
			for t := 0; t < nt; t++ {
				fq[t] = fq[t].add(fp[t])
			}
		}
	}
	a.fen[d] = fen
}

// applyDirty folds one drained node's load change into the table: the
// delta against the stored load goes to the totals and, per dimension,
// to the Fenwick tree at the node's sorted position — O(d·log n) per
// changed node, nothing at all when the net change is zero.
func (a *AggTable) applyDirty(id can.NodeID) {
	a.stats.LastDirty++
	a.stats.DirtyDrained++
	cntAggDirty.Inc()
	i, ok := a.idx[id]
	if !ok {
		// Not in the tracked membership: either removed from the cluster
		// (the matching overlay leave was spliced or will force a
		// rebuild) or never part of the overlay.
		return
	}
	n := len(a.nodes)
	nt := a.ntypes
	row := a.loads[int(i)*nt : (int(i)+1)*nt]
	rt := a.cl.Runtime(id)
	for t := 0; t < nt; t++ {
		var nl CELoad
		if rt != nil {
			if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
				nl = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
			}
		}
		if nl == row[t] {
			continue
		}
		d := nl.sub(row[t])
		row[t] = nl
		a.tot[t] = a.tot[t].add(d)
		for dim := 0; dim < a.dims; dim++ {
			fen := a.fen[dim]
			for p := int(a.pos[dim][i]) + 1; p <= n; p += p & -p {
				fen[p*nt+t] = fen[p*nt+t].add(d)
				a.stats.FenwickUpdates++
				cntAggFenUpdates.Inc()
			}
		}
		a.changed = true
	}
}

// applyChurn folds one journal event into the topology. Within an
// event the departed node is spliced out first, then surviving nodes
// whose zones were rewritten are repositioned, then the admitted node
// is spliced in; every intermediate array stays sorted with respect to
// its stored keys, so the order of operations cannot change the final
// permutation. References to nodes that a later event in the same
// batch removes (join-then-leave, zone change of a node about to
// depart) resolve to skips — the later event settles them.
func (a *AggTable) applyChurn(ev can.ChurnEvent) {
	a.stats.ChurnEvents++
	cntAggChurnEvents.Inc()
	if ev.Left != can.NoneID {
		a.spliceOut(ev.Left)
	}
	for _, zid := range ev.ZoneChanged {
		if zid != can.NoneID {
			a.reposition(zid)
		}
	}
	if ev.Joined != can.NoneID {
		a.spliceIn(ev.Joined)
	}
}

// spliceOut removes a departed node: its load leaves the totals, its
// entry leaves every per-dimension order, and the membership arrays
// swap-delete (the moved last node's index map and order entries are
// patched). The per-dimension arrays stay ID-tie-sorted because only
// the departed entry is removed; everything else keeps its key.
func (a *AggTable) spliceOut(id can.NodeID) {
	i32, ok := a.idx[id]
	if !ok {
		return // joined and left within the same delta window; never inserted
	}
	i := int(i32)
	nt := a.ntypes
	last := len(a.nodes) - 1
	row := a.loads[i*nt : (i+1)*nt]
	for t := 0; t < nt; t++ {
		a.tot[t] = a.tot[t].sub(row[t])
	}
	for d := 0; d < a.dims; d++ {
		a.removeOrder(d, int(a.pos[d][i]))
	}
	if i != last {
		moved := a.nodes[last]
		a.nodes[i] = moved
		copy(row, a.loads[last*nt:(last+1)*nt])
		a.idx[moved.ID] = int32(i)
		for d := 0; d < a.dims; d++ {
			p := a.pos[d][last]
			a.pos[d][i] = p
			a.order[d][p] = i
		}
	}
	a.nodes[last] = nil
	a.nodes = a.nodes[:last]
	a.loads = a.loads[:last*nt]
	for d := 0; d < a.dims; d++ {
		a.pos[d] = a.pos[d][:last]
	}
	delete(a.idx, id)
}

// spliceIn admits a joined node: appended to the membership arrays,
// its current cluster load added to the totals, and an ordered insert
// into every per-dimension order at its (Zone.Lo[d], ID) position. The
// load row is read from the cluster at splice time, so a dirty
// notification for the same node drained later in this refresh nets to
// a zero delta — exactness is preserved either way.
func (a *AggTable) spliceIn(id can.NodeID) {
	if _, dup := a.idx[id]; dup {
		return
	}
	nd := a.ov.Node(id)
	if nd == nil {
		return // joined then left within the same delta window
	}
	i := len(a.nodes)
	nt := a.ntypes
	a.nodes = append(a.nodes, nd)
	a.idx[id] = int32(i)
	rt := a.cl.Runtime(id)
	for t := 0; t < nt; t++ {
		var nl CELoad
		if rt != nil {
			if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
				nl = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
			}
		}
		a.loads = append(a.loads, nl)
		a.tot[t] = a.tot[t].add(nl)
	}
	for d := 0; d < a.dims; d++ {
		a.pos[d] = append(a.pos[d], 0)
		a.insertOrder(d, i, nd)
	}
}

// reposition re-files a surviving node whose zone was rewritten by a
// take-over or split: along each dimension where its stored zone start
// differs from the current one, remove at the old sorted position and
// re-insert at the new key. Dimensions whose start did not move keep
// their position (the key is unchanged, so the sorted invariant
// already holds).
func (a *AggTable) reposition(id can.NodeID) {
	i32, ok := a.idx[id]
	if !ok {
		return // join was skipped (node already gone) — nothing tracked
	}
	nd := a.ov.Node(id)
	if nd == nil {
		return // a later event in this batch removes it; the splice-out settles it
	}
	i := int(i32)
	a.nodes[i] = nd
	for d := 0; d < a.dims; d++ {
		p := int(a.pos[d][i])
		if a.los[d][p] == nd.Zone.Lo[d] {
			continue
		}
		a.removeOrder(d, p)
		a.insertOrder(d, i, nd)
	}
}

// removeOrder deletes sorted position p from dimension d's order and
// key arrays and re-files the shifted tail's positions. O(n−p).
func (a *AggTable) removeOrder(d, p int) {
	ord, los := a.order[d], a.los[d]
	copy(ord[p:], ord[p+1:])
	copy(los[p:], los[p+1:])
	ord = ord[:len(ord)-1]
	los = los[:len(los)-1]
	a.order[d], a.los[d] = ord, los
	pos := a.pos[d]
	for k := p; k < len(ord); k++ {
		pos[ord[k]] = int32(k)
	}
}

// insertOrder files node index i (zones from nd) into dimension d's
// order at its (Zone.Lo[d], ID) position: binary search plus one tail
// memmove, then re-file the shifted positions. O(log n + (n−p)).
func (a *AggTable) insertOrder(d, i int, nd *can.Node) {
	lo := nd.Zone.Lo[d]
	ord, los := a.order[d], a.los[d]
	p := sort.Search(len(ord), func(k int) bool {
		if los[k] != lo {
			return los[k] > lo
		}
		return a.nodes[ord[k]].ID > nd.ID
	})
	ord = append(ord, 0)
	los = append(los, 0)
	copy(ord[p+1:], ord[p:])
	copy(los[p+1:], los[p:])
	ord[p] = i
	los[p] = lo
	a.order[d], a.los[d] = ord, los
	pos := a.pos[d]
	for k := p; k < len(ord); k++ {
		pos[ord[k]] = int32(k)
	}
}

// collectChurn is the batch path's journal callback: it only gathers
// the ids an event touched. Presence is resolved against the current
// overlay afterwards, so a node that joined and left (or changed zone
// and then departed) within the window settles to its final state
// without replaying the intermediate steps.
func (a *AggTable) collectChurn(ev can.ChurnEvent) {
	a.stats.ChurnEvents++
	cntAggChurnEvents.Inc()
	if ev.Joined != can.NoneID {
		a.batchIDs = append(a.batchIDs, ev.Joined)
	}
	if ev.Left != can.NoneID {
		a.batchIDs = append(a.batchIDs, ev.Left)
	}
	for _, zid := range ev.ZoneChanged {
		if zid != can.NoneID {
			a.batchIDs = append(a.batchIDs, zid)
		}
	}
}

// batchSplice absorbs a large churn backlog in one compact+merge pass
// instead of Δ individual splices. The journal is replayed only to
// collect the affected ids; every affected node that is still tracked
// is dropped from the membership and order arrays (one linear
// compaction per dimension), every affected node still in the overlay
// is re-admitted with its current zone and load, and the re-admitted
// batch — sorted per dimension by (Zone.Lo[d], ID) — merges into the
// compacted order in the same pass. Total cost O(d·(n+Δ·logΔ)) for Δ
// events over n nodes, versus O(Δ·d·n) for per-event splices — the
// difference between a heartbeat-cadence poll surviving steady churn
// at 100k nodes and every poll degenerating to a rebuild.
//
// Bit-identity with the rebuild is preserved by the same two facts the
// per-event path relies on: (Zone.Lo[d], ID) is a canonical total
// order (so the merged permutation equals the re-sorted one), and the
// per-event path also resolves zones and loads against the *current*
// overlay and cluster state, so collapsing a window to its endpoints
// changes nothing the table stores.
func (a *AggTable) batchSplice(ov *can.Overlay, cl *exec.Cluster) bool {
	a.batchIDs = a.batchIDs[:0]
	if !ov.ChurnSince(a.version, a.onCollect) {
		// All-or-nothing: nothing was collected, nothing was mutated.
		return false
	}
	slices.Sort(a.batchIDs)
	a.batchIDs = slices.Compact(a.batchIDs)
	nt := a.ntypes
	nodes := a.nodes
	oldN := len(nodes)

	// Phase 1: drop every affected id that is currently tracked,
	// subtracting its stored load from the totals, and compact the
	// membership arrays (preserving relative order so the per-dimension
	// walk below can reuse old sorted positions).
	remap := grow(a.remapBuf, oldN)
	for i := range remap {
		remap[i] = 0
	}
	for _, id := range a.batchIDs {
		if i, ok := a.idx[id]; ok {
			remap[i] = -1
			row := a.loads[int(i)*nt : (int(i)+1)*nt]
			for t := 0; t < nt; t++ {
				a.tot[t] = a.tot[t].sub(row[t])
			}
			delete(a.idx, id)
		}
	}
	a.remapBuf = remap
	w := 0
	for i := 0; i < oldN; i++ {
		if remap[i] < 0 {
			continue
		}
		remap[i] = int32(w)
		if w != i {
			nodes[w] = nodes[i]
			copy(a.loads[w*nt:(w+1)*nt], a.loads[i*nt:(i+1)*nt])
			a.idx[nodes[w].ID] = int32(w)
		}
		w++
	}
	a.nodes = nodes[:w]
	a.loads = a.loads[:w*nt]

	// Phase 2: re-admit every affected node still in the overlay with
	// its current zone and load (fresh reads, as spliceIn does).
	for _, id := range a.batchIDs {
		nd := ov.Node(id)
		if nd == nil {
			continue
		}
		i := len(a.nodes)
		a.nodes = append(a.nodes, nd)
		a.idx[id] = int32(i)
		rt := cl.Runtime(id)
		for t := 0; t < nt; t++ {
			var nl CELoad
			if rt != nil {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					nl = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
			a.loads = append(a.loads, nl)
			a.tot[t] = a.tot[t].add(nl)
		}
	}
	n := len(a.nodes)
	for i := n; i < oldN; i++ {
		nodes[i] = nil // release departed node pointers promptly
	}

	// Phase 3: per dimension, walk the old order skipping dropped
	// entries and merge the sorted re-admitted batch; then rebuild the
	// position index. Surviving entries kept their zones (any zone
	// change put the node in the batch), so the walk's keys are exactly
	// the old ones and the merged sequence is sorted by construction.
	for d := 0; d < a.dims; d++ {
		add := a.ordScratch[:0]
		for i := w; i < n; i++ {
			add = append(add, i)
		}
		sort.Slice(add, func(x, y int) bool {
			lx, ly := a.nodes[add[x]].Zone.Lo[d], a.nodes[add[y]].Zone.Lo[d]
			if lx != ly {
				return lx < ly
			}
			return a.nodes[add[x]].ID < a.nodes[add[y]].ID
		})
		oldOrd, oldLos := a.order[d], a.los[d]
		mergedOrd := grow(a.ordMerge, n)
		mergedLos := grow(a.losScratch, n)
		m, ai := 0, 0
		emitAdds := func(limitLo float64, limitID can.NodeID, all bool) {
			for ai < len(add) {
				i := add[ai]
				lo := a.nodes[i].Zone.Lo[d]
				if !all && (lo > limitLo || (lo == limitLo && a.nodes[i].ID > limitID)) {
					return
				}
				mergedOrd[m], mergedLos[m] = i, lo
				m++
				ai++
			}
		}
		for p, oi := range oldOrd {
			ni := remap[oi]
			if ni < 0 {
				continue
			}
			emitAdds(oldLos[p], a.nodes[ni].ID, false)
			mergedOrd[m], mergedLos[m] = int(ni), oldLos[p]
			m++
		}
		emitAdds(0, 0, true)
		a.ordScratch = add
		// Swap: the merged arrays become dimension d's order/keys, and
		// the previous backing arrays become scratch for the next
		// dimension (grow() re-extends them if this dimension's batch
		// made the membership larger than they were).
		a.order[d], a.ordMerge = mergedOrd, oldOrd
		a.los[d], a.losScratch = mergedLos, oldLos
		pos := grow(a.pos[d], n)
		for p, i := range mergedOrd {
			pos[i] = int32(p)
		}
		a.pos[d] = pos
	}
	return true
}

// tryChurnSplice brings the topology up to the overlay's current
// version by replaying the churn journal, returning false (leaving the
// table untouched) when the table has never seen this overlay or the
// journal cannot cover the gap. Small batches (≤ maxSpliceEvents)
// replay event by event; larger ones — up to the journal's adaptive
// retained window — take the batch compact+merge path. On success the
// Fenwick trees are linearly reconstructed over the spliced orders,
// the result epoch advances, and the caller proceeds to the normal
// dirty drain.
func (a *AggTable) tryChurnSplice(ov *can.Overlay, cl *exec.Cluster) bool {
	if a.ov != ov || ov.Version() < a.version {
		return false
	}
	gap := ov.Version() - a.version
	var ok bool
	a.cl = cl
	if gap <= maxSpliceEvents {
		ok = ov.ChurnSince(a.version, a.onChurn)
	} else {
		ok = a.batchSplice(ov, cl)
		if ok {
			a.stats.ChurnBatches++
			cntAggChurnBatch.Inc()
		}
	}
	a.cl = nil
	if !ok {
		// All-or-nothing: a failed ChurnSince invoked no callbacks, so
		// the table still matches a.version exactly.
		return false
	}
	a.version = ov.Version()
	n := len(a.nodes)
	a.rowEpoch = grow(a.rowEpoch, n*a.dims)
	a.dimAggs = grow(a.dimAggs, n*a.dims)
	a.byTypes = grow(a.byTypes, n*a.dims*a.ntypes)
	for d := 0; d < a.dims; d++ {
		a.buildFenwick(d)
	}
	// Stale rowEpoch entries (including reused-capacity junk) all hold
	// epochs at or before the pre-bump value, so every row reads as
	// stale after the bump.
	a.epoch++
	return true
}

// Refresh brings the table up to date: for each dimension D, the region
// beyond node N is the set of nodes whose zone starts at or past N's
// zone end (zone.Lo[D] ≥ N.zone.Hi[D]) — the nodes reachable by pushing
// further out along D.
//
// Between churn events the refresh is incremental: it drains the
// cluster's dirty set and point-updates the Fenwick trees, O(k·d·log n)
// for k dirty nodes. On a membership version change it replays the
// overlay's churn journal and splices the affected nodes, O(Δ·d·n)
// worst case for Δ events, falling back to the full rebuild
// (O(d·n·log n) re-sort plus O(d·n) load sweep) when the journal
// cannot cover the gap or the dirty set is not enumerable. Refresh is
// the dirty set's single consumer; a second table over the same
// cluster must use RefreshFull.
func (a *AggTable) Refresh(ov *can.Overlay, cl *exec.Cluster) {
	defer tmrAggRefresh.Start()()
	cntAggRefresh.Inc()
	a.stats.Refreshes++
	a.stats.LastDirty = 0
	if a.ov != ov || a.version != ov.Version() {
		if !a.tryChurnSplice(ov, cl) {
			// rebuildFull consumes the dirty set up front (it needs the
			// stale ids to decide which rows to carry), so a pending
			// all-dirty poison is absorbed here rather than forcing a
			// second rebuild next round.
			a.rebuildFull(ov, cl)
			a.stats.FullRebuilds++
			return
		}
		a.stats.ChurnRefreshes++
		cntAggChurnSplice.Inc()
		// Membership is current; fall through to drain load deltas.
	}
	a.cl = cl
	a.changed = false
	enumerable := cl.DrainDirty(a.onDirty)
	a.cl = nil
	if !enumerable {
		a.rebuildLoads(cl)
		a.stats.FullRebuilds++
		return
	}
	a.stats.IncRefreshes++
	cntAggInc.Inc()
	if a.changed {
		// Invalidate materialized rows; At refills on demand. When every
		// delta was net zero the old rows are still exact, so the epoch
		// (and with it the whole read cache) is left alone.
		a.epoch++
	}
}

// RefreshFull recomputes the table entirely from current cluster state,
// ignoring — and never consuming — the dirty set or the churn journal.
// It is the reference path the differential tests compare the
// incremental table against, and the safe choice for any additional
// table sharing a cluster whose dirty channel is already claimed.
func (a *AggTable) RefreshFull(ov *can.Overlay, cl *exec.Cluster) {
	defer tmrAggRefresh.Start()()
	cntAggRefresh.Inc()
	a.stats.Refreshes++
	a.stats.LastDirty = 0
	if a.ov != ov || a.version != ov.Version() {
		a.rebuildTopology(ov)
	}
	a.rebuildLoads(cl)
	a.stats.FullRebuilds++
}

// Objective evaluates Equation 3 for the region beyond node id along
// dim, for CE type c.
func (a *AggTable) Objective(id can.NodeID, dim int, c resource.CEType) float64 {
	l := a.At(id, dim).Load(c)
	return resource.PushObjective(l.SumRequiredCores, l.SumCores)
}
