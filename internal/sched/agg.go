// Package sched implements the matchmaking and load-balancing
// algorithms of Sections II-B and III-B: the heterogeneity-aware
// decentralized scheme (can-het, Algorithm 1), the prior
// heterogeneity-oblivious scheme (can-hom), and the greedy online
// centralized comparator (central).
package sched

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
)

var (
	cntAggRefresh    = perf.NewCounter("sched.agg_refreshes")
	cntAggRebuild    = perf.NewCounter("sched.agg_topology_rebuilds")
	cntAggInc        = perf.NewCounter("sched.agg_incremental_refreshes")
	cntAggDirty      = perf.NewCounter("sched.agg_dirty_nodes")
	cntAggFenUpdates = perf.NewCounter("sched.agg_fenwick_updates")
	tmrAggRefresh    = perf.NewTimer("sched.agg_refresh")
)

// CELoad is the aggregated load information for one CE type in a region
// of the CAN: the inputs to Equation 3.
type CELoad struct {
	SumRequiredCores float64 // cores demanded by running + queued jobs
	SumCores         float64 // cores installed
}

func (a CELoad) add(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores + b.SumRequiredCores, a.SumCores + b.SumCores}
}

func (a CELoad) sub(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores - b.SumRequiredCores, a.SumCores - b.SumCores}
}

// DimAgg is the aggregate over the region beyond a node along one
// dimension (toward higher resource values). ByType is indexed by
// resource.CEType (0 = CPU, then accelerator slots).
type DimAgg struct {
	Nodes  int // all nodes in the region (Equation 4's NumberOfNodes)
	ByType []CELoad
}

// Load returns the aggregate for CE type t (zero when out of range).
func (d DimAgg) Load(t resource.CEType) CELoad {
	if int(t) < len(d.ByType) {
		return d.ByType[t]
	}
	return CELoad{}
}

// AggStats counts the aggregation plane's refresh work, so drivers and
// the metrics plane can show the incremental path operating: how often
// the table fell back to a full recompute, how many dirty nodes each
// delta refresh consumed, and how many Fenwick node updates they cost.
type AggStats struct {
	Refreshes      int64 // Refresh + RefreshFull calls
	FullRebuilds   int64 // refreshes that recomputed every node (first use, churn, all-dirty)
	IncRefreshes   int64 // refreshes served by the delta path
	DirtyDrained   int64 // cumulative dirty-node notifications processed
	FenwickUpdates int64 // cumulative Fenwick tree-node updates applied
	LastDirty      int   // dirty nodes consumed by the most recent refresh
}

// AggTable holds, for every node and dimension, the aggregated load
// information over the outer region. In the real system this data rides
// on heartbeats, one hop per period; the simulator recomputes it exactly
// on the heartbeat cadence, which preserves the staleness the paper's
// scheme lives with (decisions between refreshes use old data).
//
// The table is maintained incrementally (delta-propagating, in the
// spirit of diffusion-based schedulers): the cluster records which
// nodes had a job start, finish or queue change since the last refresh
// (exec.Cluster.DrainDirty), and a steady-state Refresh applies only
// those nodes' load deltas as point updates to per-dimension Fenwick
// (binary-indexed) trees over the cached sorted orders — O(k·d·log n)
// for k dirty nodes instead of the former O(n·d) sweep. The sorted
// orders themselves are keyed on the overlay's membership version and
// rebuilt only after churn, at which point the table falls back to a
// full recompute so correctness never depends on the dirty set
// surviving membership changes.
//
// Per-(node, dimension) results are materialized lazily: Refresh bumps
// an epoch, and At fills a row from the Fenwick trees (one O(log n)
// suffix query) the first time it is read in an epoch. The placement
// walk touches a handful of rows per job, so reads keep their O(1)
// amortized map-lookup profile and a steady-state refresh-plus-reads
// cycle allocates nothing.
//
// All sums are exact: loads are integer-valued float64s, far below the
// 2^53 exactness horizon, so every Fenwick tree node, every delta and
// every total-minus-prefix difference is the exact integer it denotes.
// The accumulation order therefore cannot perturb a single output bit,
// and the incremental table is bit-identical to a from-scratch rebuild
// (the differential tests assert both properties).
type AggTable struct {
	dims   int
	ntypes int

	// Topology cache, valid while ov/version match the overlay.
	ov      *can.Overlay
	version uint64
	nodes   []*can.Node         // ov.Nodes() snapshot
	order   [][]int             // per dim: node indexes sorted by (Zone.Lo[d], ID)
	los     [][]float64         // per dim: the sorted zone starts
	idx     map[can.NodeID]int32 // node ID → index into nodes
	pos     []int32             // dims×n: sorted position of node i along d at [d*n+i]
	cut     []int32             // n×dims: first sorted position at/past node i's zone end

	// Load state, incrementally maintained between full rebuilds.
	loads []CELoad // n×ntypes current per-node loads
	tot   []CELoad // ntypes grid-wide totals
	fen   []CELoad // dims×(n+1)×ntypes Fenwick trees (1-indexed; entry 0 unused)

	// Lazily materialized results. dimAggs[r].ByType points into the
	// byTypes backing; rowEpoch[r] says which epoch filled it.
	epoch    uint64
	rowEpoch []uint64 // n×dims
	dimAggs  []DimAgg // n×dims
	byTypes  []CELoad // n×dims×ntypes

	onDirty func(can.NodeID) // applyDirty, bound once so Refresh allocates no closure
	cl      *exec.Cluster    // the cluster being drained, valid during Refresh only
	changed bool             // a drained delta was nonzero (epoch must advance)

	stats AggStats
}

// NewAggTable creates an empty table for a d-dimensional CAN with CE
// types 0..gpuSlots.
func NewAggTable(dims int, gpuSlots int) *AggTable {
	a := &AggTable{dims: dims, ntypes: gpuSlots + 1, idx: make(map[can.NodeID]int32)}
	a.onDirty = a.applyDirty
	return a
}

// Stats returns cumulative refresh-cost counters (see AggStats).
func (a *AggTable) Stats() AggStats { return a.stats }

// At returns the aggregate beyond node id along dim. Missing entries
// (before the first refresh, or for departed nodes) return an empty
// aggregate.
//
// Aliasing contract: the returned DimAgg.ByType aliases table-owned
// storage that the next Refresh invalidates — the same backing row is
// refilled in place, so a retained DimAgg silently starts showing the
// new epoch's values. Callers must consume the row (or copy it) before
// the next refresh; TestAggAtAliasing pins this contract.
func (a *AggTable) At(id can.NodeID, dim int) DimAgg {
	i, ok := a.idx[id]
	if !ok || dim < 0 || dim >= a.dims {
		return DimAgg{}
	}
	r := int(i)*a.dims + dim
	if a.rowEpoch[r] != a.epoch {
		a.fillRow(r, dim)
	}
	return a.dimAggs[r]
}

// fillRow materializes one (node, dim) aggregate from the Fenwick tree:
// the region's load is the grid total minus the prefix before the
// node's cut position. Totals, tree nodes and the subtraction chain are
// all exact integers, so the result equals a direct suffix sum bit for
// bit.
func (a *AggTable) fillRow(r, dim int) {
	n := len(a.nodes)
	nt := a.ntypes
	row := a.byTypes[r*nt : (r+1)*nt]
	copy(row, a.tot)
	fen := a.fen[dim*(n+1)*nt:]
	for p := int(a.cut[r]); p > 0; p &= p - 1 {
		node := fen[p*nt : (p+1)*nt]
		for t := 0; t < nt; t++ {
			row[t] = row[t].sub(node[t])
		}
	}
	a.rowEpoch[r] = a.epoch
}

// grow returns s resized to n elements, reusing its backing array when
// the capacity allows. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// rebuildTopology re-sorts the per-dimension orders after churn and
// derives everything that depends on membership alone: the id→index
// map, each node's sorted position per dimension, the region cut
// positions (zone.Lo[d] ≥ zone.Hi[d] boundaries) and the per-row result
// backing with its topology-determined Nodes counts. Ties on the
// (tie-prone, float-valued) zone starts break by node ID, the same
// discipline as can/bounded.go, so the permutation is a pure function
// of the overlay state rather than of sort.Slice's unstable internals.
func (a *AggTable) rebuildTopology(ov *can.Overlay) {
	cntAggRebuild.Inc()
	a.ov, a.version = ov, ov.Version()
	a.nodes = ov.Nodes()
	nodes := a.nodes
	n := len(nodes)
	if a.order == nil {
		a.order = make([][]int, a.dims)
		a.los = make([][]float64, a.dims)
	}
	clear(a.idx)
	for i, nd := range nodes {
		a.idx[nd.ID] = int32(i)
	}
	a.pos = grow(a.pos, a.dims*n)
	for d := 0; d < a.dims; d++ {
		idx := grow(a.order[d], n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			lx, ly := nodes[idx[x]].Zone.Lo[d], nodes[idx[y]].Zone.Lo[d]
			if lx != ly {
				return lx < ly
			}
			return nodes[idx[x]].ID < nodes[idx[y]].ID
		})
		los := grow(a.los[d], n)
		pos := a.pos[d*n : (d+1)*n]
		for p, i := range idx {
			los[p] = nodes[i].Zone.Lo[d]
			pos[i] = int32(p)
		}
		a.order[d], a.los[d] = idx, los
	}

	a.cut = grow(a.cut, n*a.dims)
	a.rowEpoch = grow(a.rowEpoch, n*a.dims)
	a.dimAggs = grow(a.dimAggs, n*a.dims)
	a.byTypes = grow(a.byTypes, n*a.dims*a.ntypes)
	for i, nd := range nodes {
		for d := 0; d < a.dims; d++ {
			r := i*a.dims + d
			c := sort.SearchFloat64s(a.los[d], nd.Zone.Hi[d])
			a.cut[r] = int32(c)
			a.dimAggs[r] = DimAgg{Nodes: n - c, ByType: a.byTypes[r*a.ntypes : (r+1)*a.ntypes]}
		}
	}
	// rowEpoch entries (reused or zeroed) all predate the epoch bump in
	// rebuildLoads, so every row reads as stale afterwards.
}

// rebuildLoads recomputes every node's load, the grid totals and the
// per-dimension Fenwick trees from scratch against the cached topology,
// then advances the epoch. O(n·d) — the fallback for first use, churn
// and a non-enumerable dirty set.
func (a *AggTable) rebuildLoads(cl *exec.Cluster) {
	nodes := a.nodes
	n := len(nodes)
	nt := a.ntypes

	a.loads = grow(a.loads, n*nt)
	a.tot = grow(a.tot, nt)
	for t := range a.tot {
		a.tot[t] = CELoad{}
	}
	for i, nd := range nodes {
		row := a.loads[i*nt : (i+1)*nt]
		for t := range row {
			row[t] = CELoad{}
		}
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < nt; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					row[t] = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
		}
		for t := 0; t < nt; t++ {
			a.tot[t] = a.tot[t].add(row[t])
		}
	}

	// Linear Fenwick construction per dimension: seed each tree node
	// with its position's load, then fold every node into its parent.
	a.fen = grow(a.fen, a.dims*(n+1)*nt)
	for d := 0; d < a.dims; d++ {
		fen := a.fen[d*(n+1)*nt : (d+1)*(n+1)*nt]
		for t := 0; t < nt; t++ {
			fen[t] = CELoad{}
		}
		order := a.order[d]
		for p := 1; p <= n; p++ {
			i := order[p-1]
			copy(fen[p*nt:(p+1)*nt], a.loads[i*nt:(i+1)*nt])
		}
		for p := 1; p <= n; p++ {
			if q := p + p&-p; q <= n {
				fq := fen[q*nt : (q+1)*nt]
				fp := fen[p*nt : (p+1)*nt]
				for t := 0; t < nt; t++ {
					fq[t] = fq[t].add(fp[t])
				}
			}
		}
	}
	a.epoch++
}

// applyDirty folds one drained node's load change into the table: the
// delta against the stored load goes to the totals and, per dimension,
// to the Fenwick tree at the node's sorted position — O(d·log n) per
// changed node, nothing at all when the net change is zero.
func (a *AggTable) applyDirty(id can.NodeID) {
	a.stats.LastDirty++
	a.stats.DirtyDrained++
	cntAggDirty.Inc()
	i, ok := a.idx[id]
	if !ok {
		// Not in the cached snapshot: either removed from the cluster
		// ahead of an overlay change (the coming version bump forces a
		// full rebuild) or never part of the overlay.
		return
	}
	n := len(a.nodes)
	nt := a.ntypes
	row := a.loads[int(i)*nt : (int(i)+1)*nt]
	rt := a.cl.Runtime(id)
	for t := 0; t < nt; t++ {
		var nl CELoad
		if rt != nil {
			if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
				nl = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
			}
		}
		if nl == row[t] {
			continue
		}
		d := nl.sub(row[t])
		row[t] = nl
		a.tot[t] = a.tot[t].add(d)
		for dim := 0; dim < a.dims; dim++ {
			fen := a.fen[dim*(n+1)*nt:]
			for p := int(a.pos[dim*n+int(i)]) + 1; p <= n; p += p & -p {
				fen[p*nt+t] = fen[p*nt+t].add(d)
				a.stats.FenwickUpdates++
				cntAggFenUpdates.Inc()
			}
		}
		a.changed = true
	}
}

// Refresh brings the table up to date: for each dimension D, the region
// beyond node N is the set of nodes whose zone starts at or past N's
// zone end (zone.Lo[D] ≥ N.zone.Hi[D]) — the nodes reachable by pushing
// further out along D.
//
// Between churn events the refresh is incremental: it drains the
// cluster's dirty set and point-updates the Fenwick trees, O(k·d·log n)
// for k dirty nodes. On a membership version change — or when the dirty
// set is not enumerable — it falls back to the full O(d·n) rebuild
// (plus O(d·n·log n) re-sorting after churn). Refresh is the dirty
// set's single consumer; a second table over the same cluster must use
// RefreshFull.
func (a *AggTable) Refresh(ov *can.Overlay, cl *exec.Cluster) {
	defer tmrAggRefresh.Start()()
	cntAggRefresh.Inc()
	a.stats.Refreshes++
	a.stats.LastDirty = 0
	if a.ov != ov || a.version != ov.Version() {
		a.rebuildTopology(ov)
		a.rebuildLoads(cl)
		a.stats.FullRebuilds++
		return
	}
	a.cl = cl
	a.changed = false
	enumerable := cl.DrainDirty(a.onDirty)
	a.cl = nil
	if !enumerable {
		a.rebuildLoads(cl)
		a.stats.FullRebuilds++
		return
	}
	a.stats.IncRefreshes++
	cntAggInc.Inc()
	if a.changed {
		// Invalidate materialized rows; At refills on demand. When every
		// delta was net zero the old rows are still exact, so the epoch
		// (and with it the whole read cache) is left alone.
		a.epoch++
	}
}

// RefreshFull recomputes the table entirely from current cluster state,
// ignoring — and never consuming — the dirty set. It is the reference
// path the differential tests compare the incremental table against,
// and the safe choice for any additional table sharing a cluster whose
// dirty channel is already claimed.
func (a *AggTable) RefreshFull(ov *can.Overlay, cl *exec.Cluster) {
	defer tmrAggRefresh.Start()()
	cntAggRefresh.Inc()
	a.stats.Refreshes++
	a.stats.LastDirty = 0
	if a.ov != ov || a.version != ov.Version() {
		a.rebuildTopology(ov)
	}
	a.rebuildLoads(cl)
	a.stats.FullRebuilds++
}

// Objective evaluates Equation 3 for the region beyond node id along
// dim, for CE type c.
func (a *AggTable) Objective(id can.NodeID, dim int, c resource.CEType) float64 {
	l := a.At(id, dim).Load(c)
	return resource.PushObjective(l.SumRequiredCores, l.SumCores)
}
