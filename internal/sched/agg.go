// Package sched implements the matchmaking and load-balancing
// algorithms of Sections II-B and III-B: the heterogeneity-aware
// decentralized scheme (can-het, Algorithm 1), the prior
// heterogeneity-oblivious scheme (can-hom), and the greedy online
// centralized comparator (central).
package sched

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
)

var (
	cntAggRefresh = perf.NewCounter("sched.agg_refreshes")
	cntAggRebuild = perf.NewCounter("sched.agg_topology_rebuilds")
	tmrAggRefresh = perf.NewTimer("sched.agg_refresh")
)

// CELoad is the aggregated load information for one CE type in a region
// of the CAN: the inputs to Equation 3.
type CELoad struct {
	SumRequiredCores float64 // cores demanded by running + queued jobs
	SumCores         float64 // cores installed
}

func (a CELoad) add(b CELoad) CELoad {
	return CELoad{a.SumRequiredCores + b.SumRequiredCores, a.SumCores + b.SumCores}
}

// DimAgg is the aggregate over the region beyond a node along one
// dimension (toward higher resource values). ByType is indexed by
// resource.CEType (0 = CPU, then accelerator slots).
type DimAgg struct {
	Nodes  int // all nodes in the region (Equation 4's NumberOfNodes)
	ByType []CELoad
}

// Load returns the aggregate for CE type t (zero when out of range).
func (d DimAgg) Load(t resource.CEType) CELoad {
	if int(t) < len(d.ByType) {
		return d.ByType[t]
	}
	return CELoad{}
}

// AggTable holds, for every node and dimension, the aggregated load
// information over the outer region. In the real system this data rides
// on heartbeats, one hop per period; the simulator recomputes it exactly
// on the heartbeat cadence, which preserves the staleness the paper's
// scheme lives with (decisions between refreshes use old data).
//
// All per-refresh storage lives in flat backing arrays owned by the
// table and reused across refreshes, so a steady-state Refresh is
// allocation-free; the per-dimension sort orders are additionally cached
// against the overlay's membership version, so they are only recomputed
// after churn. The aggregated sums are exact (integer-valued float64s),
// which makes them independent of summation order — reordering tied
// zone coordinates cannot perturb a single output bit.
type AggTable struct {
	dims   int
	ntypes int
	agg    map[can.NodeID][]DimAgg

	// Topology cache, valid while ov/version match the overlay.
	ov      *can.Overlay
	version uint64
	nodes   []*can.Node // ov.Nodes() snapshot
	order   [][]int     // per dim: node indexes sorted by (Zone.Lo[d], ID)
	los     [][]float64 // per dim: the sorted zone starts

	// Flat per-refresh buffers.
	loads   []CELoad // n×ntypes per-node loads
	suf     []CELoad // dims×(n+1)×ntypes suffix sums; DimAgg.ByType points here
	dimAggs []DimAgg // n×dims backing for the map values
}

// NewAggTable creates an empty table for a d-dimensional CAN with CE
// types 0..gpuSlots.
func NewAggTable(dims int, gpuSlots int) *AggTable {
	return &AggTable{dims: dims, ntypes: gpuSlots + 1, agg: make(map[can.NodeID][]DimAgg)}
}

// At returns the aggregate beyond node id along dim. Missing entries
// (before the first refresh) return an empty aggregate. The returned
// aggregate is valid until the next Refresh, which reuses its storage.
func (a *AggTable) At(id can.NodeID, dim int) DimAgg {
	if rows := a.agg[id]; rows != nil && dim < len(rows) {
		return rows[dim]
	}
	return DimAgg{}
}

// grow returns s resized to n elements, reusing its backing array when
// the capacity allows. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// rebuildTopology re-sorts the per-dimension orders after churn. Ties on
// the (tie-prone, float-valued) zone starts break by node ID, the same
// discipline as can/bounded.go, so the permutation is a pure function of
// the overlay state rather than of sort.Slice's unstable internals.
func (a *AggTable) rebuildTopology(ov *can.Overlay) {
	cntAggRebuild.Inc()
	a.ov, a.version = ov, ov.Version()
	a.nodes = ov.Nodes()
	nodes := a.nodes
	n := len(nodes)
	if a.order == nil {
		a.order = make([][]int, a.dims)
		a.los = make([][]float64, a.dims)
	}
	for d := 0; d < a.dims; d++ {
		idx := grow(a.order[d], n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			lx, ly := nodes[idx[x]].Zone.Lo[d], nodes[idx[y]].Zone.Lo[d]
			if lx != ly {
				return lx < ly
			}
			return nodes[idx[x]].ID < nodes[idx[y]].ID
		})
		los := grow(a.los[d], n)
		for i := range los {
			los[i] = nodes[idx[i]].Zone.Lo[d]
		}
		a.order[d], a.los[d] = idx, los
	}
}

// Refresh recomputes the table: for each dimension D, the region beyond
// node N is the set of nodes whose zone starts at or past N's zone end
// (zone.Lo[D] ≥ N.zone.Hi[D]) — the nodes reachable by pushing further
// out along D. Computed with suffix sums over the cached sorted orders:
// O(d·n) per refresh between churn events, O(d·n log n) after churn.
func (a *AggTable) Refresh(ov *can.Overlay, cl *exec.Cluster) {
	defer tmrAggRefresh.Start()()
	cntAggRefresh.Inc()
	if a.ov != ov || a.version != ov.Version() {
		a.rebuildTopology(ov)
	}
	nodes := a.nodes
	n := len(nodes)
	nt := a.ntypes

	// Per-node loads, gathered once into the flat buffer. The row for
	// node index i is loads[i·nt : (i+1)·nt], indexed by CE type.
	a.loads = grow(a.loads, n*nt)
	for i, nd := range nodes {
		row := a.loads[i*nt : (i+1)*nt]
		for t := range row {
			row[t] = CELoad{}
		}
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < nt; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					row[t] = CELoad{SumRequiredCores: float64(req), SumCores: float64(cores)}
				}
			}
		}
	}

	// Rebind the map values to the (reused) result backing array.
	a.dimAggs = grow(a.dimAggs, n*a.dims)
	clear(a.agg)
	for i, nd := range nodes {
		a.agg[nd.ID] = a.dimAggs[i*a.dims : (i+1)*a.dims]
	}

	a.suf = grow(a.suf, a.dims*(n+1)*nt)
	for d := 0; d < a.dims; d++ {
		order, los := a.order[d], a.los[d]
		// Suffix sums over the sorted order: row i aggregates sorted
		// positions i..n-1; row n is the zero sentinel.
		suf := a.suf[d*(n+1)*nt : (d+1)*(n+1)*nt]
		top := suf[n*nt:]
		for t := range top {
			top[t] = CELoad{}
		}
		for i := n - 1; i >= 0; i-- {
			row := suf[i*nt : (i+1)*nt]
			next := suf[(i+1)*nt : (i+2)*nt]
			load := a.loads[order[i]*nt : (order[i]+1)*nt]
			for t := 0; t < nt; t++ {
				row[t] = next[t].add(load[t])
			}
		}
		for i, nd := range nodes {
			pos := sort.SearchFloat64s(los, nd.Zone.Hi[d])
			a.dimAggs[i*a.dims+d] = DimAgg{Nodes: n - pos, ByType: suf[pos*nt : (pos+1)*nt]}
		}
	}
}

// Objective evaluates Equation 3 for the region beyond node id along
// dim, for CE type c.
func (a *AggTable) Objective(id can.NodeID, dim int, c resource.CEType) float64 {
	l := a.At(id, dim).Load(c)
	return resource.PushObjective(l.SumRequiredCores, l.SumCores)
}
