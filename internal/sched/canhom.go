package sched

import (
	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
)

// CanHom is the prior, heterogeneity-oblivious matchmaker (the can-hom
// baseline of Section V): it still routes and pushes in the same CAN,
// but treats every node as a plain multi-core CPU machine. It looks for
// free nodes only (the acceptable-node notion needs CE awareness),
// ranks nodes by CPU clock and CPU utilization regardless of the job's
// dominant CE, and pushes on CPU-demand aggregates — so GPU queue
// pressure is invisible to it, which is exactly why its decisions
// degrade on heterogeneous workloads.
type CanHom struct {
	ctx   *Context
	Stats Stats
}

// NewCanHom builds the heterogeneity-oblivious baseline.
func NewCanHom(ctx *Context) *CanHom { return &CanHom{ctx: ctx} }

// Name returns the label used in the paper's figures.
func (s *CanHom) Name() string { return "can-hom" }

// Place performs the prior scheme's matchmaking for one job.
func (s *CanHom) Place(j *exec.Job) (can.NodeID, error) {
	c := s.ctx
	c.maybeRefresh()
	c.probeBegin(j)
	entry := c.randomEntry()
	if entry == nil {
		c.probeUnmatched()
		return 0, ErrUnmatchable
	}
	jobPt := c.jobPoint(j.Req)

	path, err := c.route(entry.ID, jobPt)
	if err != nil {
		return 0, err
	}
	s.Stats.RouteHops += len(path) - 1
	c.probeRoute(path)
	cur := path[len(path)-1]

	cur, err = c.boost(cur, j.Req, jobPt, &s.Stats)
	if err != nil {
		if n := c.fallback(j.Req, resource.TypeCPU, &s.Stats); n != nil {
			s.Stats.Placed++
			c.probeMatch(n.ID, "fallback")
			return n.ID, nil
		}
		s.Stats.Unmatchable++
		c.probeUnmatched()
		return 0, ErrUnmatchable
	}

	for hop := 0; hop < maxPushHops; hop++ {
		cands := c.satisfying(cur, j.Req)

		// Free nodes only: the oblivious scheme cannot tell that a busy
		// node still has an idle CE of the right kind.
		free := c.freeBuf[:0]
		for _, n := range cands {
			if rt := c.Cluster.Runtime(n.ID); rt != nil && rt.IsFree() {
				free = append(free, n)
			}
		}
		c.freeBuf = free
		if len(free) > 0 {
			s.Stats.FreePicks++
			s.Stats.Placed++
			id := pickFastest(free, resource.TypeCPU).ID
			c.probeMatch(id, "free")
			return id, nil
		}

		// Push on CPU aggregates regardless of what the job needs.
		var target *can.Outward
		bestObj := 0.0
		outs := c.outwardNeighbors(cur)
		for i := range outs {
			o := &outs[i]
			if o.Node.Caps == nil || !resource.Satisfies(o.Node.Caps, j.Req) {
				continue
			}
			obj := c.Agg.Objective(o.Node.ID, o.Dim, resource.TypeCPU)
			if target == nil || obj < bestObj ||
				(obj == bestObj && o.Node.ID < target.Node.ID) {
				target, bestObj = o, obj
			}
		}

		stop := target == nil
		if !stop {
			p := resource.StopProbability(c.Agg.At(cur.ID, target.Dim).Nodes, c.StoppingFactor)
			stop = c.rnd.Bool(p)
		}
		if stop {
			if len(cands) == 0 {
				break
			}
			s.Stats.ScorePicks++
			s.Stats.Placed++
			id := c.pickMinScore(cands, resource.TypeCPU).ID
			c.probeMatch(id, "score")
			return id, nil
		}

		cur = target.Node
		s.Stats.PushHops++
		c.probePush(cur)
	}

	if cands := c.satisfying(cur, j.Req); len(cands) > 0 {
		s.Stats.ScorePicks++
		s.Stats.Placed++
		id := c.pickMinScore(cands, resource.TypeCPU).ID
		c.probeMatch(id, "score")
		return id, nil
	}
	if n := c.fallback(j.Req, resource.TypeCPU, &s.Stats); n != nil {
		s.Stats.Placed++
		c.probeMatch(n.ID, "fallback")
		return n.ID, nil
	}
	s.Stats.Unmatchable++
	c.probeUnmatched()
	return 0, ErrUnmatchable
}
