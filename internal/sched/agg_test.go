package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

// buildTiedGrid joins nodes on a regular lattice so that many zones
// share identical Lo coordinates in every dimension — the tie-prone
// configuration the sort in rebuildTopology must order deterministically
// by node ID.
func buildTiedGrid(t *testing.T, dims, perDim int) (*can.Overlay, *exec.Cluster, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	var pts []geom.Point
	var walk func(prefix geom.Point)
	walk = func(prefix geom.Point) {
		if len(prefix) == dims {
			pts = append(pts, prefix.Clone())
			return
		}
		for i := 0; i < perDim; i++ {
			walk(append(prefix, (float64(i)+0.5)/float64(perDim)))
		}
	}
	walk(geom.Point{})
	for i, p := range pts {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + i%4}},
			Disk: 100,
		}
		n, err := ov.Join(p, caps)
		if err != nil {
			t.Fatalf("join %v: %v", p, err)
		}
		cl.AddNode(n.ID, caps)
	}
	return ov, cl, eng
}

// bruteAgg recomputes one node's aggregate along one dimension from the
// definition: sum over all nodes whose zone starts at or past this
// node's zone end.
func bruteAgg(ov *can.Overlay, cl *exec.Cluster, id can.NodeID, dim, ntypes int) DimAgg {
	me := ov.Node(id)
	out := DimAgg{ByType: make([]CELoad, ntypes)}
	for _, nd := range ov.Nodes() {
		if nd.Zone.Lo[dim] < me.Zone.Hi[dim] {
			continue
		}
		out.Nodes++
		if rt := cl.Runtime(nd.ID); rt != nil {
			for t := 0; t < ntypes; t++ {
				if req, cores, ok := rt.DemandOn(resource.CEType(t)); ok {
					out.ByType[t] = out.ByType[t].add(CELoad{float64(req), float64(cores)})
				}
			}
		}
	}
	return out
}

// TestAggRefreshTiedZoneCoordinates is the regression test for the
// unstable sort in Refresh: a lattice population has massively tied
// Zone.Lo values in every dimension, and the computed aggregates must
// equal the brute-force definition exactly (not approximately — the
// sums are integer-valued and order-independent).
func TestAggRefreshTiedZoneCoordinates(t *testing.T) {
	const dims, perDim = 3, 3
	ov, cl, _ := buildTiedGrid(t, dims, perDim)
	agg := NewAggTable(dims, 0)
	agg.Refresh(ov, cl)
	for _, nd := range ov.Nodes() {
		for d := 0; d < dims; d++ {
			got := agg.At(nd.ID, d)
			want := bruteAgg(ov, cl, nd.ID, d, 1)
			if got.Nodes != want.Nodes {
				t.Fatalf("node %d dim %d: Nodes = %d, want %d", nd.ID, d, got.Nodes, want.Nodes)
			}
			for ty := 0; ty < 1; ty++ {
				if got.Load(resource.CEType(ty)) != want.ByType[ty] {
					t.Fatalf("node %d dim %d type %d: %+v, want %+v",
						nd.ID, d, ty, got.Load(resource.CEType(ty)), want.ByType[ty])
				}
			}
		}
	}

	// With ties everywhere, the sorted order must still be a pure
	// function of the zone state: (Lo ascending, ID ascending).
	for d := 0; d < dims; d++ {
		order := agg.order[d]
		for i := 1; i < len(order); i++ {
			a, b := agg.nodes[order[i-1]], agg.nodes[order[i]]
			if a.Zone.Lo[d] > b.Zone.Lo[d] ||
				(a.Zone.Lo[d] == b.Zone.Lo[d] && a.ID >= b.ID) {
				t.Fatalf("dim %d: order not (Lo, ID)-sorted at %d: node %d (Lo=%v) before node %d (Lo=%v)",
					d, i, a.ID, a.Zone.Lo[d], b.ID, b.Zone.Lo[d])
			}
		}
	}
}

// TestAggRefreshReuseAcrossChurn verifies the cached topology refreshes
// correctly when membership changes, and that two tables (one warm, one
// cold) agree exactly.
func TestAggRefreshReuseAcrossChurn(t *testing.T) {
	ov, cl, _ := buildTiedGrid(t, 2, 4)
	warm := NewAggTable(2, 0)
	warm.Refresh(ov, cl)
	warm.Refresh(ov, cl) // exercise the reuse path

	// Churn: remove a middle node, then compare warm (incrementally
	// revalidated) against a cold table.
	victim := ov.Nodes()[5].ID
	cl.RemoveNode(victim)
	if _, err := ov.Leave(victim); err != nil {
		t.Fatal(err)
	}
	warm.Refresh(ov, cl)
	cold := NewAggTable(2, 0)
	cold.Refresh(ov, cl)
	for _, nd := range ov.Nodes() {
		for d := 0; d < 2; d++ {
			w, c := warm.At(nd.ID, d), cold.At(nd.ID, d)
			if w.Nodes != c.Nodes || w.Load(0) != c.Load(0) {
				t.Fatalf("node %d dim %d: warm %+v vs cold %+v", nd.ID, d, w, c)
			}
		}
	}
	if warm.At(victim, 0).Nodes != 0 || warm.At(victim, 0).ByType != nil {
		t.Fatalf("departed node still in table: %+v", warm.At(victim, 0))
	}
}

// TestAggRefreshSteadyStateAllocFree pins the tentpole optimization: a
// steady-state refresh (no churn) must not allocate.
func TestAggRefreshSteadyStateAllocFree(t *testing.T) {
	ov, cl, _ := buildTiedGrid(t, 3, 3)
	agg := NewAggTable(3, 0)
	agg.Refresh(ov, cl)
	allocs := testing.AllocsPerRun(10, func() {
		agg.Refresh(ov, cl)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Refresh allocates %.1f objects/op, want 0", allocs)
	}
}
