package sched

import (
	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
)

// Central is the greedy online centralized comparator of Section V-A:
// it sees the complete, instantaneous load state of every node. It
// greedily assigns each job to the most capable node — the fastest free
// node for the job's dominant CE, else the fastest acceptable node,
// else the node minimizing the score function — possibly
// over-provisioning, as the paper notes, to stay comparable to the
// online decentralized schemes.
type Central struct {
	ctx   *Context
	Stats Stats
}

// NewCentral builds the centralized comparator.
func NewCentral(ctx *Context) *Central { return &Central{ctx: ctx} }

// Name returns the label used in the paper's figures.
func (s *Central) Name() string { return "central" }

// Place scans all nodes with perfect information.
func (s *Central) Place(j *exec.Job) (can.NodeID, error) {
	c := s.ctx
	var sat, acceptable, free []*can.Node
	for _, n := range c.Ov.Nodes() {
		if n.Caps == nil || !resource.Satisfies(n.Caps, j.Req) {
			continue
		}
		rt := c.Cluster.Runtime(n.ID)
		if rt == nil {
			continue
		}
		sat = append(sat, n)
		if rt.IsAcceptable(j.Req) {
			acceptable = append(acceptable, n)
			if rt.IsFree() {
				free = append(free, n)
			}
		}
	}
	switch {
	case len(free) > 0:
		s.Stats.FreePicks++
		s.Stats.Placed++
		return pickFastest(free, j.Dominant).ID, nil
	case len(acceptable) > 0:
		s.Stats.AcceptPicks++
		s.Stats.Placed++
		return pickFastest(acceptable, j.Dominant).ID, nil
	case len(sat) > 0:
		s.Stats.ScorePicks++
		s.Stats.Placed++
		return c.pickMinScore(sat, j.Dominant).ID, nil
	default:
		s.Stats.Unmatchable++
		return 0, ErrUnmatchable
	}
}
