package sched

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/perf"
	"hetgrid/internal/resource"
)

var (
	cntCentralRebuilds  = perf.NewCounter("sched.central_index_rebuilds")
	cntCentralSplices   = perf.NewCounter("sched.central_index_splices")
	cntCentralFastPath  = perf.NewCounter("sched.central_fastpath_picks")
	cntCentralFullScans = perf.NewCounter("sched.central_full_scans")
)

// Central is the greedy online centralized comparator of Section V-A:
// it sees the complete, instantaneous load state of every node. It
// greedily assigns each job to the most capable node — the fastest free
// node for the job's dominant CE, else the fastest acceptable node,
// else the node minimizing the score function — possibly
// over-provisioning, as the paper notes, to stay comparable to the
// online decentralized schemes.
//
// Placement is served from an incremental candidate index instead of a
// full population scan per job: the cluster notifies the index on every
// queue/idleness transition, and the overlay's membership version keys
// the static capability ranking. The index changes only how candidates
// are enumerated — the chosen node, and therefore every simulation
// output byte, is identical to the full scan (the selection rules are
// order-independent argmax/argmin with ID tie-breaks).
type Central struct {
	ctx   *Context
	Stats Stats
	idx   *centralIndex
}

// NewCentral builds the centralized comparator and attaches its
// candidate index to the cluster's load-change feed.
func NewCentral(ctx *Context) *Central {
	return &Central{ctx: ctx, idx: newCentralIndex(ctx.Ov, ctx.Cluster)}
}

// Name returns the label used in the paper's figures.
func (s *Central) Name() string { return "central" }

// Place assigns a job with perfect information, without rescanning all
// nodes: free and acceptable candidates come from the incrementally
// maintained idle / empty-queue sets, ranked by the static per-CE-type
// clock order; only the last-resort score pick walks the population.
func (s *Central) Place(j *exec.Job) (can.NodeID, error) {
	ix := s.idx
	ix.ensure()
	s.ctx.probeBegin(j)
	if id, ok := ix.bestFree(j.Req, j.Dominant); ok {
		cntCentralFastPath.Inc()
		s.Stats.FreePicks++
		s.Stats.Placed++
		s.ctx.probeMatch(id, "free")
		return id, nil
	}
	if id, ok := ix.bestAcceptable(j.Req, j.Dominant); ok {
		cntCentralFastPath.Inc()
		s.Stats.AcceptPicks++
		s.Stats.Placed++
		s.ctx.probeMatch(id, "accept")
		return id, nil
	}
	cntCentralFullScans.Inc()
	sat := ix.satisfying(j.Req)
	if len(sat) > 0 {
		s.Stats.ScorePicks++
		s.Stats.Placed++
		id := s.ctx.pickMinScore(sat, j.Dominant).ID
		s.ctx.probeMatch(id, "score")
		return id, nil
	}
	s.Stats.Unmatchable++
	s.ctx.probeUnmatched()
	return 0, ErrUnmatchable
}

// centralIndex maintains the comparator's candidate sets:
//
//   - idle: nodes with no running or queued jobs (the paper's free
//     nodes), maintained by cluster load notifications;
//   - emptyQ: nodes with an empty FIFO queue (the superset that can
//     contain acceptable nodes), maintained the same way;
//   - ranked: per CE type, all capable nodes ordered by (clock desc,
//     ID asc) — exactly pickFastest's preference order — cached against
//     the overlay's membership version.
type centralIndex struct {
	ov *can.Overlay
	cl *exec.Cluster

	valid   bool
	version uint64
	nodes   []*can.Node // ov.Nodes() snapshot, ID ascending
	ranked  map[resource.CEType][]*can.Node

	idle    map[can.NodeID]*exec.Runtime
	emptyQ  map[can.NodeID]*exec.Runtime
	scratch []*can.Node

	// memFail doubles as the membership drain's discard switch (set
	// before draining into an index that needs a full rebuild anyway)
	// and its failure flag (set when an event cannot be resolved against
	// the ranked lists, forcing the rebuild fallback).
	memFail bool
}

func newCentralIndex(ov *can.Overlay, cl *exec.Cluster) *centralIndex {
	ix := &centralIndex{
		ov:     ov,
		cl:     cl,
		ranked: make(map[resource.CEType][]*can.Node),
		idle:   make(map[can.NodeID]*exec.Runtime),
		emptyQ: make(map[can.NodeID]*exec.Runtime),
	}
	cl.SetLoadObserver(ix.observe)
	for _, rt := range cl.Runtimes() {
		ix.observe(rt, false)
	}
	return ix
}

// observe is the cluster's load-change notification: refile the node in
// the idle and empty-queue sets.
func (ix *centralIndex) observe(r *exec.Runtime, removed bool) {
	if removed {
		delete(ix.idle, r.ID)
		delete(ix.emptyQ, r.ID)
		return
	}
	if r.IsFree() {
		ix.idle[r.ID] = r
	} else {
		delete(ix.idle, r.ID)
	}
	if r.QueueLen() == 0 {
		ix.emptyQ[r.ID] = r
	} else {
		delete(ix.emptyQ, r.ID)
	}
}

// ensure revalidates the membership-keyed caches after churn. A valid
// index consumes the cluster's membership delta log and splices each
// added/removed node into or out of the ranked lists by binary search
// — O(Δ·(log n + n_move)) for Δ events instead of the former
// O(n log n) re-sort per churn event. The (clock desc, ID asc) key is
// a total order, so the spliced lists are the identical permutation a
// full re-sort would produce, and every placement decision is
// byte-for-byte unchanged. An event that cannot be resolved (a
// non-enumerable log, an overlay/cluster membership divergence, a
// duplicate insert) falls back to the full rebuild.
func (ix *centralIndex) ensure() {
	if ix.valid && ix.version == ix.ov.Version() {
		return
	}
	// Consume the log either way so it cannot overflow; when the index
	// is invalid the events are discarded and the rebuild below starts
	// from scratch.
	ix.memFail = !ix.valid
	enumerable := ix.cl.DrainMembership(ix.applyMembership)
	if ix.valid && enumerable && !ix.memFail {
		cntCentralSplices.Inc()
		ix.nodes = ix.ov.Nodes()
		ix.version = ix.ov.Version()
		return
	}
	cntCentralRebuilds.Inc()
	ix.nodes = ix.ov.Nodes()
	ix.version = ix.ov.Version()
	ix.valid = true
	for t := range ix.ranked {
		ix.ranked[t] = ix.ranked[t][:0]
	}
	for _, n := range ix.nodes {
		if n.Caps == nil {
			continue
		}
		for _, ce := range n.Caps.CEs {
			ix.ranked[ce.Type] = append(ix.ranked[ce.Type], n)
		}
	}
	for t, list := range ix.ranked {
		ty := t
		sort.Slice(list, func(i, j int) bool {
			ci, cj := list[i].Caps.CE(ty).Clock, list[j].Caps.CE(ty).Clock
			if ci != cj {
				return ci > cj
			}
			return list[i].ID < list[j].ID
		})
	}
}

// applyMembership folds one cluster membership event into the ranked
// lists. In discard mode (memFail set before the drain) events are
// dropped; after a resolution failure the flag stops further splicing
// and the caller rebuilds.
func (ix *centralIndex) applyMembership(ev exec.MembershipEvent) {
	if ix.memFail {
		return
	}
	if ev.Removed {
		if !ix.rankedRemove(ev.Runtime) {
			ix.memFail = true
		}
		return
	}
	n := ix.ov.Node(ev.Runtime.ID)
	if n == nil {
		// The node joined the cluster but is no longer in the overlay
		// (it also left within this window, or the memberships diverged)
		// — only the rebuild can reconcile that.
		ix.memFail = true
		return
	}
	if !ix.rankedInsert(n) {
		ix.memFail = true
	}
}

// rankedInsert files a node into every ranked list its capabilities
// belong to, at its (clock desc, ID asc) position. It reports failure
// on a duplicate entry.
func (ix *centralIndex) rankedInsert(n *can.Node) bool {
	if n.Caps == nil {
		return true
	}
	for _, ce := range n.Caps.CEs {
		ty, clock := ce.Type, ce.Clock
		list := ix.ranked[ty]
		p := sort.Search(len(list), func(k int) bool {
			ck := list[k].Caps.CE(ty).Clock
			if ck != clock {
				return ck < clock
			}
			return list[k].ID >= n.ID
		})
		if p < len(list) && list[p].ID == n.ID {
			return false
		}
		list = append(list, nil)
		copy(list[p+1:], list[p:])
		list[p] = n
		ix.ranked[ty] = list
	}
	return true
}

// rankedRemove deletes a departed runtime's entries, located by binary
// search on its retained Caps (the key the entries were filed under —
// capabilities are immutable for a node's lifetime). It reports failure
// when an expected entry is missing.
func (ix *centralIndex) rankedRemove(rt *exec.Runtime) bool {
	if rt.Caps == nil {
		return true
	}
	for _, ce := range rt.Caps.CEs {
		ty, clock := ce.Type, ce.Clock
		list := ix.ranked[ty]
		p := sort.Search(len(list), func(k int) bool {
			ck := list[k].Caps.CE(ty).Clock
			if ck != clock {
				return ck < clock
			}
			return list[k].ID >= rt.ID
		})
		if p >= len(list) || list[p].ID != rt.ID {
			return false
		}
		copy(list[p:], list[p+1:])
		list[len(list)-1] = nil
		ix.ranked[ty] = list[:len(list)-1]
	}
	return true
}

// bestFree returns the fastest idle node (dominant-CE clock, ties to
// the lowest ID) that statically satisfies the job: the same node
// pickFastest would select from the full free list.
func (ix *centralIndex) bestFree(req resource.JobReq, dom resource.CEType) (can.NodeID, bool) {
	ranked := ix.ranked[dom]
	if len(ix.idle) == 0 || len(ranked) == 0 {
		return 0, false
	}
	if len(ix.idle)*8 > len(ranked) {
		// Densely idle grid: the first ranked node that is idle and
		// satisfying is the argmax.
		for _, n := range ranked {
			if _, ok := ix.idle[n.ID]; ok && resource.Satisfies(n.Caps, req) {
				return n.ID, true
			}
		}
		return 0, false
	}
	// Sparsely idle grid: argmax over the small idle set.
	var bestID can.NodeID
	bestClock := -1.0
	found := false
	for id, rt := range ix.idle {
		if !resource.Satisfies(rt.Caps, req) {
			continue
		}
		clock := 0.0
		if ce := rt.Caps.CE(dom); ce != nil {
			clock = ce.Clock
		}
		if !found || clock > bestClock || (clock == bestClock && id < bestID) {
			bestID, bestClock, found = id, clock, true
		}
	}
	return bestID, found
}

// bestAcceptable returns the fastest node where the job would start
// immediately (empty queue, every required CE available), matching
// pickFastest over the full acceptable list.
func (ix *centralIndex) bestAcceptable(req resource.JobReq, dom resource.CEType) (can.NodeID, bool) {
	ranked := ix.ranked[dom]
	if len(ix.emptyQ) == 0 || len(ranked) == 0 {
		return 0, false
	}
	if len(ix.emptyQ)*8 > len(ranked) {
		for _, n := range ranked {
			if rt, ok := ix.emptyQ[n.ID]; ok && rt.IsAcceptable(req) {
				return n.ID, true
			}
		}
		return 0, false
	}
	var bestID can.NodeID
	bestClock := -1.0
	found := false
	for id, rt := range ix.emptyQ {
		if !rt.IsAcceptable(req) {
			continue
		}
		clock := 0.0
		if ce := rt.Caps.CE(dom); ce != nil {
			clock = ce.Clock
		}
		if !found || clock > bestClock || (clock == bestClock && id < bestID) {
			bestID, bestClock, found = id, clock, true
		}
	}
	return bestID, found
}

// satisfying collects every node that could ever run the job (the
// score-pick candidate set), reusing the scratch slice.
func (ix *centralIndex) satisfying(req resource.JobReq) []*can.Node {
	ix.scratch = ix.scratch[:0]
	for _, n := range ix.nodes {
		if n.Caps == nil || !resource.Satisfies(n.Caps, req) {
			continue
		}
		if ix.cl.Runtime(n.ID) == nil {
			continue
		}
		ix.scratch = append(ix.scratch, n)
	}
	return ix.scratch
}
