package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// batchWorld is the shared scaffolding for the batch-splice tests: an
// overlay/cluster pair with helpers that keep the two membership views
// in lockstep while a seeded stream picks join points and victims.
type batchWorld struct {
	tb  testing.TB
	eng *sim.Engine
	ov  *can.Overlay
	cl  *exec.Cluster
	s   *rng.Stream
	job exec.JobID
}

func newBatchWorld(tb testing.TB, dims int, seed int64, label string) *batchWorld {
	eng := sim.New()
	return &batchWorld{
		tb:  tb,
		eng: eng,
		ov:  can.NewOverlay(dims),
		cl:  exec.NewCluster(eng, exec.DefaultConfig()),
		s:   rng.NewSplit(seed, label),
		job: 1,
	}
}

func (w *batchWorld) join() {
	w.tb.Helper()
	caps := &resource.NodeCaps{
		CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + w.s.Intn(4)}},
		Disk: 100,
	}
	for try := 0; try < 8; try++ {
		p := make(geom.Point, w.ov.Dims())
		for d := range p {
			p[d] = w.s.Float64()
		}
		if n, err := w.ov.Join(p, caps); err == nil {
			w.cl.AddNode(n.ID, caps)
			return
		}
	}
	w.tb.Fatal("could not place a join")
}

func (w *batchWorld) leave() {
	w.tb.Helper()
	nodes := w.ov.Nodes()
	victim := nodes[w.s.Intn(len(nodes))].ID
	if _, err := w.ov.Leave(victim); err != nil {
		w.tb.Fatalf("leave(%d): %v", victim, err)
	}
	w.cl.RemoveNode(victim)
}

func (w *batchWorld) submit() {
	nodes := w.ov.Nodes()
	j := &exec.Job{
		ID:           w.job,
		Req:          cpuReq(1 + w.s.Intn(2)),
		Dominant:     resource.TypeCPU,
		BaseDuration: sim.Duration(1+w.s.Intn(8)) * 10 * sim.Second,
	}
	if err := w.cl.Submit(j, nodes[w.s.Intn(len(nodes))].ID); err == nil {
		w.job++
	}
}

// TestChurnBatchSpliceDifferential drives refresh windows whose churn
// backlog lands well beyond maxSpliceEvents — mixed joins, leaves and
// load changes, including join-then-leave of the same node inside one
// window — and compares the batch compact+merge result bit-for-bit
// against the full recompute after every poll. The per-event storm
// tests never reach this path (their windows stay under the per-event
// threshold), so this is the batch path's differential coverage.
func TestChurnBatchSpliceDifferential(t *testing.T) {
	const dims = 2
	w := newBatchWorld(t, dims, 17, "batch-splice")
	for i := 0; i < 40; i++ {
		w.join()
	}
	for i := 0; i < 60; i++ {
		w.submit()
	}
	inc := NewAggTable(dims, 0)
	ref := NewAggTable(dims, 0)
	inc.Refresh(w.ov, w.cl)

	const polls = 4
	for poll := 0; poll < polls; poll++ {
		before := w.ov.Version()
		for w.ov.Version()-before < uint64(maxSpliceEvents)+150 {
			switch {
			case w.ov.Len() > 30 && w.s.Bool(0.45):
				w.leave()
			default:
				w.join()
			}
			if w.s.Bool(0.3) {
				w.submit()
			}
		}
		w.eng.RunUntil(w.eng.Now().Add(20 * sim.Second))
		inc.Refresh(w.ov, w.cl)
		ref.RefreshFull(w.ov, w.cl)
		compareAggTables(t, w.ov, inc, ref, dims)
		if err := w.ov.Validate(); err != nil {
			t.Fatalf("poll %d: %v", poll, err)
		}
	}
	st := inc.Stats()
	if st.ChurnBatches != polls {
		t.Fatalf("stats %+v: want every poll to take the batch-splice path (%d batches)", st, polls)
	}
	if st.FullRebuilds != 1 {
		t.Fatalf("stats %+v: batch backlogs fell back to full rebuilds", st)
	}
}

// TestChurnStorm100k is the satellite regression for the adaptive
// journal/splice limits: a 100,000-node grid under steady churn, polled
// at heartbeat cadence. Each polling interval accrues ~1,500 membership
// events — beyond both the old fixed journal capacity (1,024) and the
// old splice ceiling (256), so the pre-adaptive code degraded to a full
// O(d·n·log n) rebuild on every poll. With capacity scaling as n/2
// (65,536 here) and the batch compact+merge path, every poll must
// absorb its backlog incrementally: exactly one full rebuild (the first
// use), zero thereafter. The final table is checked bit-for-bit against
// a from-scratch reference.
func TestChurnStorm100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node storm skipped in -short mode")
	}
	const (
		dims          = 2
		population    = 100_000
		polls         = 3
		eventsPerPoll = 1_500
	)
	w := newBatchWorld(t, dims, 23, "storm-100k")
	for i := 0; i < population; i++ {
		w.join()
	}
	if got := w.ov.JournalCap(); got < population/2 {
		t.Fatalf("journal capacity %d did not scale with population %d", got, population)
	}
	for i := 0; i < 500; i++ {
		w.submit()
	}

	inc := NewAggTable(dims, 0)
	inc.Refresh(w.ov, w.cl)

	for poll := 0; poll < polls; poll++ {
		for i := 0; i < eventsPerPoll; i++ {
			if w.s.Bool(0.5) {
				w.leave()
			} else {
				w.join()
			}
		}
		w.eng.RunUntil(w.eng.Now().Add(30 * sim.Second))
		inc.Refresh(w.ov, w.cl)
		if st := inc.Stats(); st.FullRebuilds != 1 {
			t.Fatalf("poll %d: stats %+v — a heartbeat-cadence poll fell back to a full rebuild", poll, st)
		}
	}
	st := inc.Stats()
	if st.ChurnBatches != polls {
		t.Fatalf("stats %+v: want %d batch splices", st, polls)
	}
	if st.ChurnEvents < polls*eventsPerPoll {
		t.Fatalf("stats %+v: batches absorbed fewer events than injected", st)
	}
	ref := NewAggTable(dims, 0)
	ref.RefreshFull(w.ov, w.cl)
	compareAggTables(t, w.ov, inc, ref, dims)
}
