package sched

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// TestRebuildDeltaCarriesLoads pins the carry-over full rebuild: when
// the churn journal cannot cover a membership gap, the fallback must
// still skip the DemandOn queries for survivors the cluster did not
// mark dirty (carrying their stored rows bit-for-bit), re-query the
// dirtied ones, and fall back to the all-queries sweep when the dirty
// set is poisoned. Every arm is compared against the full-recompute
// reference, so a stale carried row cannot slip through.
func TestRebuildDeltaCarriesLoads(t *testing.T) {
	const dims = 2
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	s := rng.NewSplit(11, "agg-carry")
	var ids []can.NodeID
	addOne := func() {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 4}},
			Disk: 100,
		}
		for try := 0; try < 8; try++ {
			p := geom.Point{s.Float64(), s.Float64()}
			if n, err := ov.Join(p, caps); err == nil {
				cl.AddNode(n.ID, caps)
				ids = append(ids, n.ID)
				return
			}
		}
		t.Fatal("could not place a new node")
	}
	for i := 0; i < 24; i++ {
		addOne()
	}
	inc := NewAggTable(dims, 0)
	ref := NewAggTable(dims, 0)
	check := func() {
		t.Helper()
		inc.Refresh(ov, cl)
		ref.RefreshFull(ov, cl)
		compareAggTables(t, ov, inc, ref, dims)
	}
	check() // first use: nothing to carry from
	if got := inc.Stats(); got.FullRebuilds != 1 || got.CarriedLoads != 0 {
		t.Fatalf("first refresh: %+v, want one rebuild with no carried rows", got)
	}

	// Dirty two survivors' loads, then overflow the journal so the next
	// refresh must rebuild. The untouched survivors' rows must be
	// carried; the loaded ones re-queried (the reference compare catches
	// a stale carry).
	for k := 0; k < 2; k++ {
		j := &exec.Job{
			ID:           exec.JobID(k + 1),
			Req:          cpuReq(2),
			Dominant:     resource.TypeCPU,
			BaseDuration: 100 * sim.Second,
		}
		if err := cl.Submit(j, ids[k]); err != nil {
			t.Fatal(err)
		}
	}
	survivors := len(ids)
	for i := 0; i <= ov.JournalCap(); i++ {
		addOne()
	}
	check()
	st := inc.Stats()
	if st.FullRebuilds != 2 {
		t.Fatalf("journal overflow: %+v, want a second full rebuild", st)
	}
	if want := int64(survivors - 2); st.CarriedLoads != want {
		t.Fatalf("carried %d rows, want exactly the %d untouched survivors", st.CarriedLoads, want)
	}

	// A poisoned dirty set makes every stored row suspect: the rebuild
	// must re-query everything and carry nothing.
	carried := st.CarriedLoads
	for i := 0; i <= ov.JournalCap(); i++ {
		addOne()
	}
	cl.MarkAllDirty()
	check()
	st = inc.Stats()
	if st.FullRebuilds != 3 || st.CarriedLoads != carried {
		t.Fatalf("poisoned rebuild: %+v, want no new carried rows", st)
	}
}
