package sched

import (
	"math"
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// exactInt fails the test when v is not an exact integer — the property
// the whole incremental design leans on: integer-valued float64 sums
// make Fenwick accumulation order incapable of perturbing output bits.
func exactInt(tb testing.TB, what string, v float64) {
	tb.Helper()
	if math.Trunc(v) != v {
		tb.Fatalf("%s = %v is not an exact integer", what, v)
	}
}

// compareAggTables asserts the incrementally maintained table equals
// the from-scratch reference bit for bit, for every node and dimension.
func compareAggTables(tb testing.TB, ov *can.Overlay, inc, ref *AggTable, dims int) {
	tb.Helper()
	for _, nd := range ov.Nodes() {
		for d := 0; d < dims; d++ {
			gi, gr := inc.At(nd.ID, d), ref.At(nd.ID, d)
			if gi.Nodes != gr.Nodes {
				tb.Fatalf("node %d dim %d: Nodes = %d, want %d", nd.ID, d, gi.Nodes, gr.Nodes)
			}
			if len(gi.ByType) != len(gr.ByType) {
				tb.Fatalf("node %d dim %d: %d types, want %d", nd.ID, d, len(gi.ByType), len(gr.ByType))
			}
			for t := range gi.ByType {
				if gi.ByType[t] != gr.ByType[t] {
					tb.Fatalf("node %d dim %d type %d: incremental %+v, full %+v",
						nd.ID, d, t, gi.ByType[t], gr.ByType[t])
				}
				exactInt(tb, "SumRequiredCores", gi.ByType[t].SumRequiredCores)
				exactInt(tb, "SumCores", gi.ByType[t].SumCores)
			}
		}
	}
}

// runAggScript interprets a byte script as an interleaving of job
// submissions, time advances (job finishes), departures and joins on a
// small grid, refreshing an incremental table and a full-recompute
// reference after every operation and asserting exact equality — the
// Validate()-after-mutation discipline applied to the aggregation
// plane. The same interpreter backs the differential test (random
// scripts) and the fuzz target (adversarial scripts).
func runAggScript(tb testing.TB, data []byte) {
	const dims = 2
	eng := sim.New()
	ov := can.NewOverlay(dims)
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	for i := 0; i < 9; i++ {
		caps := &resource.NodeCaps{
			CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + i%4}},
			Disk: 100,
		}
		p := geom.Point{(float64(i%3) + 0.5) / 3, (float64(i/3) + 0.5) / 3}
		n, err := ov.Join(p, caps)
		if err != nil {
			tb.Fatalf("seed join %v: %v", p, err)
		}
		cl.AddNode(n.ID, caps)
	}

	inc := NewAggTable(dims, 0)
	ref := NewAggTable(dims, 0)
	nextJob := exec.JobID(1)
	for k, op := range data {
		nodes := ov.Nodes()
		switch op % 4 {
		case 0: // submit a job somewhere (may exceed the node: skipped)
			j := &exec.Job{
				ID:           nextJob,
				Req:          cpuReq(1 + int(op>>4)%3),
				Dominant:     resource.TypeCPU,
				BaseDuration: sim.Duration(1+int(op>>2)%8) * 10 * sim.Second,
			}
			if err := cl.Submit(j, nodes[int(op>>2)%len(nodes)].ID); err == nil {
				nextJob++
			}
		case 1: // let time pass: running jobs finish, queues drain
			eng.RunUntil(eng.Now().Add(sim.Duration(1+int(op>>2)) * 5 * sim.Second))
		case 2: // departure (keep a minimum population)
			if len(nodes) > 4 {
				victim := nodes[int(op>>2)%len(nodes)].ID
				if _, err := ov.Leave(victim); err == nil {
					cl.RemoveNode(victim) // orphans dropped: load must vanish
				}
			}
		case 3: // join at a script-chosen point
			caps := &resource.NodeCaps{
				CEs:  []resource.CE{{Type: resource.TypeCPU, Clock: 1, Cores: 1 + k%4}},
				Disk: 100,
			}
			p := geom.Point{
				(float64(op>>2&7) + 0.37) / 8,
				(float64(op>>5&7) + 0.61) / 8,
			}
			if n, err := ov.Join(p, caps); err == nil {
				cl.AddNode(n.ID, caps)
			}
		}
		inc.Refresh(ov, cl)
		ref.RefreshFull(ov, cl)
		compareAggTables(tb, ov, inc, ref, dims)
	}
}

// TestAggIncrementalDifferential drives randomized interleavings of job
// start/finish and join/leave events through the script interpreter:
// after every step the incremental table must equal a from-scratch
// recompute exactly.
func TestAggIncrementalDifferential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r := rng.NewSplit(seed, "agg-differential")
		data := make([]byte, 160)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		runAggScript(t, data)
	}
}

// FuzzAggIncremental lets the fuzzer search for an operation
// interleaving where the incremental table diverges from the full
// recompute. Seed corpus in testdata/fuzz/FuzzAggIncremental.
func FuzzAggIncremental(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x0e, 0x93, 0x27, 0xfc, 0x58, 0x05, 0xb2, 0x6a, 0x11, 0xd7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		runAggScript(t, data)
	})
}

// TestAggAtAliasing pins the documented At aliasing contract: the
// returned DimAgg.ByType aliases table-owned storage, so the next
// Refresh clobbers a retained row in place. A caller holding a row
// across refreshes observes the new epoch's values, not a snapshot.
func TestAggAtAliasing(t *testing.T) {
	ov, cl, _ := buildTiedGrid(t, 2, 3)
	agg := NewAggTable(2, 0)
	agg.Refresh(ov, cl)

	// Find an (observer, target) pair where the target sits in the
	// observer's outer region along dim 0, so loading the target moves
	// the observer's aggregate.
	var obs, tgt can.NodeID
	nodes := ov.Nodes()
search:
	for _, o := range nodes {
		for _, c := range nodes {
			if c.Zone.Lo[0] >= o.Zone.Hi[0] {
				obs, tgt = o.ID, c.ID
				break search
			}
		}
	}
	if obs == tgt {
		t.Fatal("lattice yielded no observer/target pair")
	}

	row := agg.At(obs, 0)
	if row.ByType == nil {
		t.Fatal("observer row not materialized")
	}
	before := row.Load(0)

	j := &exec.Job{ID: 1, Req: cpuReq(1), Dominant: resource.TypeCPU, BaseDuration: 1000 * sim.Second}
	if err := cl.Submit(j, tgt); err != nil {
		t.Fatal(err)
	}
	agg.Refresh(ov, cl)
	fresh := agg.At(obs, 0)

	if &row.ByType[0] != &fresh.ByType[0] {
		t.Fatalf("At no longer aliases table storage across Refresh — update the documented contract")
	}
	if row.Load(0) == before {
		t.Fatalf("retained row survived Refresh unchanged (%+v); aliasing contract expects in-place clobber", before)
	}
	if fresh.Load(0).SumRequiredCores != before.SumRequiredCores+1 {
		t.Fatalf("aggregate did not absorb the new job: %+v -> %+v", before, fresh.Load(0))
	}
}
