// Package stats provides the small statistics toolkit used by the
// experiment harnesses: samples with quantiles and CDF evaluation, time
// series, and plain-text table rendering for the figure regenerators.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations. The insertion order of the
// observations is preserved: order statistics (Min/Max/Quantile/CDF)
// are computed on a lazily maintained sorted shadow copy, never by
// sorting the observations in place.
type Sample struct {
	vs     []float64 // observations, insertion order
	sorted []float64 // shadow copy of vs, ascending; nil when stale
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vs = append(s.vs, v)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vs {
		sum += v
	}
	return sum / float64(len(s.vs))
}

// Min and Max return the extremes (0 for an empty sample).
func (s *Sample) Min() float64 {
	vs := s.sort()
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	vs := s.sort()
	if len(vs) == 0 {
		return 0
	}
	return vs[len(vs)-1]
}

// sort returns the observations in ascending order without disturbing
// their insertion order, reusing the shadow copy until the next Add.
func (s *Sample) sort() []float64 {
	if s.sorted == nil && len(s.vs) > 0 {
		s.sorted = append(make([]float64, 0, len(s.vs)), s.vs...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by linear interpolation.
func (s *Sample) Quantile(p float64) float64 {
	vs := s.sort()
	n := len(vs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return vs[0]
	}
	if p >= 1 {
		return vs[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return vs[n-1]
	}
	return vs[lo]*(1-frac) + vs[lo+1]*frac
}

// CDF returns the fraction of observations ≤ x.
func (s *Sample) CDF(x float64) float64 {
	vs := s.sort()
	if len(vs) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(vs), func(i int) bool { return vs[i] > x })
	return float64(i) / float64(len(vs))
}

// CDFSeries evaluates the CDF on a grid of x values (as percentages,
// matching the paper's plots).
func (s *Sample) CDFSeries(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * s.CDF(x)
	}
	return out
}

// Values returns a sorted copy of the observations.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.sort()...)
}

// Observations returns the observations in insertion order. The slice
// is the sample's own storage; callers must not mutate it.
func (s *Sample) Observations() []float64 { return s.vs }

// Grid builds n+1 evenly spaced values from 0 to max inclusive.
func Grid(max float64, n int) []float64 {
	out := make([]float64, n+1)
	for i := range out {
		out[i] = max * float64(i) / float64(n)
	}
	return out
}

// Point is one (time, value) pair of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Mean returns the mean of the values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Table renders aligned plain-text tables for the figure regenerators.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	io.WriteString(w, b.String())
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
