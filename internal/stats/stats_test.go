package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample(vs ...float64) *Sample {
	s := &Sample{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

func TestSampleBasics(t *testing.T) {
	s := sample(3, 1, 2)
	if s.N() != 3 || s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("basics wrong: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	s := &Sample{}
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 || s.CDF(10) != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

func TestQuantile(t *testing.T) {
	s := sample(0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	if got := s.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.25); got != 25 {
		t.Fatalf("q.25 = %v (linear interpolation)", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	s := &Sample{}
	for i := 0; i < 100; i++ {
		s.Add(float64((i * 7919) % 1000))
	}
	f := func(a, b uint8) bool {
		p, q := float64(a)/255, float64(b)/255
		if p > q {
			p, q = q, p
		}
		return s.Quantile(p) <= s.Quantile(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	s := sample(1, 2, 2, 3)
	cases := map[float64]float64{0: 0, 1: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 99: 1}
	for x, want := range cases {
		if got := s.CDF(x); got != want {
			t.Fatalf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	s := &Sample{}
	for i := 0; i < 200; i++ {
		s.Add(math.Mod(float64(i)*37.7, 500))
	}
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return s.CDF(x) <= s.CDF(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSeriesPercent(t *testing.T) {
	s := sample(0, 0, 0, 100)
	got := s.CDFSeries([]float64{0, 100})
	if got[0] != 75 || got[1] != 100 {
		t.Fatalf("CDFSeries = %v", got)
	}
}

func TestAddAfterSortIsSeen(t *testing.T) {
	s := sample(5)
	_ = s.Max() // forces sort
	s.Add(10)
	if s.Max() != 10 {
		t.Fatal("Add after sort not reflected")
	}
}

func TestValuesCopy(t *testing.T) {
	s := sample(2, 1)
	v := s.Values()
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("Values = %v", v)
	}
	v[0] = 99
	if s.Values()[0] != 1 {
		t.Fatal("Values does not copy")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(100, 4)
	want := []float64{0, 25, 50, 75, 100}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Grid = %v", g)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	if s.Mean() != 15 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if (&Series{}).Mean() != 0 {
		t.Fatal("empty series mean should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.0)
	tab.AddRow("b", 2.5)
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1") {
		t.Fatalf("row wrong: %q", lines[2])
	}
	// Integral floats print without decimals; fractional with two.
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("float formatting wrong: %q", lines[3])
	}
	// Columns align: 'value' column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.Contains(lines[2][idx:], "1") {
		t.Fatal("columns misaligned")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); g > 1e-9 {
		t.Fatalf("even distribution gini = %v, want 0", g)
	}
	// All mass on one of four nodes: gini = (n-1)/n = 0.75.
	if g := Gini([]float64{0, 0, 0, 8}); math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
	// More even is lower.
	if Gini([]float64{1, 2, 3, 4}) >= Gini([]float64{0, 0, 1, 9}) {
		t.Fatal("gini ordering wrong")
	}
	// Negative values clamp rather than corrupt the statistic.
	if g := Gini([]float64{-5, 5, 5, 5}); g < 0 || g > 1 {
		t.Fatalf("gini with negatives out of range: %v", g)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{3, 3, 3}); cv != 0 {
		t.Fatalf("cv of constant = %v", cv)
	}
	// Values 2 and 4: mean 3, stddev 1 (population), cv = 1/3.
	if cv := CoefficientOfVariation([]float64{2, 4}); math.Abs(cv-1.0/3) > 1e-9 {
		t.Fatalf("cv = %v, want 1/3", cv)
	}
	if CoefficientOfVariation(nil) != 0 || CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cv should be 0")
	}
}

func TestMaxOverMean(t *testing.T) {
	if m := MaxOverMean([]float64{2, 2, 2}); m != 1 {
		t.Fatalf("even max/mean = %v", m)
	}
	if m := MaxOverMean([]float64{1, 1, 4}); m != 2 {
		t.Fatalf("max/mean = %v, want 2", m)
	}
	if MaxOverMean(nil) != 0 || MaxOverMean([]float64{0}) != 0 {
		t.Fatal("degenerate max/mean should be 0")
	}
}

// TestQuantileKeepsInsertionOrder guards against the order-statistics
// queries sorting the observation buffer in place: quantile, CDF, and
// extreme queries interleaved with iteration must always see the
// observations in the order they were added.
func TestQuantileKeepsInsertionOrder(t *testing.T) {
	inserted := []float64{9, 2, 7, 1, 8, 3, 6, 0, 5, 4}
	var s Sample
	check := func(when string) {
		got := s.Observations()
		if len(got) != len(inserted[:len(got)]) {
			t.Fatalf("%s: %d observations, want %d", when, len(got), len(inserted))
		}
		for i, v := range got {
			if v != inserted[i] {
				t.Fatalf("%s: observation %d = %v, want %v (insertion order destroyed)",
					when, i, v, inserted[i])
			}
		}
	}
	for i, v := range inserted {
		s.Add(v)
		// Interleave every flavor of sorted query with iteration.
		switch i % 4 {
		case 0:
			s.Quantile(0.5)
		case 1:
			s.Min()
			s.Max()
		case 2:
			s.CDF(float64(i))
		case 3:
			s.Values()
		}
		check("during inserts")
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("Quantile(1) = %v, want 9", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
	check("after queries")

	// The sorted views must still be correct and refreshed by new adds.
	want := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	vs := s.Values()
	for i, v := range vs {
		if v != want[i] {
			t.Fatalf("Values()[%d] = %v, want %v", i, v, want[i])
		}
	}
	s.Add(-1)
	if got := s.Min(); got != -1 {
		t.Fatalf("Min after Add = %v, want -1", got)
	}
	if got := s.Observations()[len(s.Observations())-1]; got != -1 {
		t.Fatalf("last observation = %v, want -1", got)
	}
}
