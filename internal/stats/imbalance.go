package stats

import (
	"math"
	"sort"
)

// Load-balance quality metrics beyond wait time: how evenly work spread
// across nodes. The paper argues balance through wait-time CDFs; these
// give the complementary per-node view used in the load-balancing
// literature.

// Gini returns the Gini coefficient of the values (0 = perfectly even,
// →1 = concentrated on one node). Negative values are clamped to 0;
// an empty or all-zero input returns 0.
func Gini(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	vs := make([]float64, len(values))
	for i, v := range values {
		if v > 0 {
			vs[i] = v
		}
	}
	sort.Float64s(vs)
	n := float64(len(vs))
	var cum, total float64
	for i, v := range vs {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// CoefficientOfVariation returns stddev/mean of the values (0 when the
// mean is 0).
func CoefficientOfVariation(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(values))) / mean
}

// MaxOverMean returns max/mean of the values — the classic imbalance
// factor (1 = perfectly even). Returns 0 when the mean is 0.
func MaxOverMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, max float64
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	return max / mean
}
