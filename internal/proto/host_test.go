package proto

import (
	"testing"

	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

// buildTriangle creates the fixed 3-node topology used by several
// protocol tests: A owns the left half, B the lower right quarter, C
// the upper right quarter.
func buildTriangle(t *testing.T, scheme Scheme) (*Sim, *Host, *Host, *Host) {
	t.Helper()
	cfg := fastConfig(scheme)
	s := NewSim(2, cfg)
	a, err := s.Join(geom.Point{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Join(geom.Point{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Join(geom.Point{0.75, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.RunUntil(sim.Time(2 * cfg.HeartbeatPeriod))
	return s, s.Host(a.ID), s.Host(b.ID), s.Host(c.ID)
}

func TestHostAccessors(t *testing.T) {
	_, ha, _, _ := buildTriangle(t, Vanilla)
	if ha.ID() != 0 {
		t.Fatalf("ID = %d", ha.ID())
	}
	if !ha.Zone().Valid() {
		t.Fatal("invalid zone")
	}
	if ha.ViewSize() == 0 {
		t.Fatal("empty view after heartbeats")
	}
}

func TestSelfRecordAdvertisesOwnZone(t *testing.T) {
	_, ha, _, _ := buildTriangle(t, Vanilla)
	rec := ha.selfRecord()
	if rec.ID != ha.id || !rec.Zone.Equal(ha.zone) {
		t.Fatal("self record wrong")
	}
	// Zones are immutable by convention: adoptZone replaces the host
	// zone rather than mutating it, so a previously issued record must
	// keep the old geometry while the refreshed record carries the new.
	old := ha.zone
	z := ha.zone.Clone()
	z.Hi[0] = z.Lo[0] + (z.Hi[0]-z.Lo[0])/2
	ha.adoptZone(z)
	if !rec.Zone.Equal(old) {
		t.Fatal("issued self record changed retroactively")
	}
	if got := ha.selfRecord(); !got.Zone.Equal(z) {
		t.Fatal("self record not refreshed by adoptZone")
	}
}

func TestIntegrateSenderDropsNonAbutting(t *testing.T) {
	s, ha, hb, _ := buildTriangle(t, Vanilla)
	// Forge a record from B claiming a zone far from A.
	far := Record{ID: hb.id, Zone: zone2(0.9, 0.9, 0.95, 0.95)}
	ha.integrateSender(s.Eng.Now(), far)
	if ha.Knows(hb.id) {
		t.Fatal("record with non-abutting zone kept in view")
	}
}

func TestReceiveFullSavesTable(t *testing.T) {
	s, ha, hb, hc := buildTriangle(t, Vanilla)
	_ = hc
	if ha.lastTables[hb.id] == nil {
		t.Fatal("vanilla receiver did not retain the sender's table")
	}
	st := ha.lastTables[hb.id]
	if !st.zone.Equal(hb.zone) {
		t.Fatal("retained zone wrong")
	}
	if st.at > s.Eng.Now() {
		t.Fatal("retained timestamp in the future")
	}
}

func TestCompactOnlyTakerGetsTables(t *testing.T) {
	s, ha, hb, hc := buildTriangle(t, Compact)
	// Exactly the takeover targets should hold retained tables.
	for _, h := range []*Host{ha, hb, hc} {
		for other, st := range h.lastTables {
			if st == nil {
				continue
			}
			plan, ok := s.Ov.Takeover(other)
			if !ok {
				t.Fatalf("no plan for %d", other)
			}
			if plan.Taker.ID != h.id {
				t.Fatalf("host %d holds %d's table but is not its taker (taker=%d)",
					h.id, other, plan.Taker.ID)
			}
		}
	}
}

func TestAnnounceRemovesGoneAndAddsOwner(t *testing.T) {
	s, ha, hb, hc := buildTriangle(t, Vanilla)
	now := s.Eng.Now()
	// Tell A that B is gone and C now owns the whole right half.
	grown := Record{ID: hc.id, Zone: zone2(0.5, 0, 1, 1)}
	ha.receiveAnnounce(now, hb.id, grown)
	if ha.Knows(hb.id) {
		t.Fatal("announced-gone node still in view")
	}
	z, ok := ha.view.zoneOf(hc.id)
	if !ok || !z.Equal(grown.Zone) {
		t.Fatal("announced owner not updated")
	}
	// The gone node is tombstoned: stale indirect records cannot bring
	// it back.
	ha.view.indirect(Record{ID: hb.id, Zone: zone2(0.5, 0, 1, 0.5)}, now, now)
	if ha.Knows(hb.id) {
		t.Fatal("tombstone failed after announce")
	}
}

func TestAnnounceAboutSelfIgnored(t *testing.T) {
	s, ha, _, _ := buildTriangle(t, Vanilla)
	before := ha.ViewSize()
	ha.receiveAnnounce(s.Eng.Now(), -1, ha.selfRecord())
	if ha.ViewSize() != before || ha.Knows(ha.id) {
		t.Fatal("host added itself to its own view")
	}
}

func TestDeadHostIgnoresTraffic(t *testing.T) {
	s, ha, hb, _ := buildTriangle(t, Vanilla)
	ha.alive = false
	before := hb.ViewSize()
	ha.receiveFull(s.Eng.Now(), hb.selfRecord(), nil, false)
	ha.receiveCompact(s.Eng.Now(), hb.selfRecord(), false)
	ha.receiveAnnounce(s.Eng.Now(), -1, hb.selfRecord())
	ha.receiveRequest(s.Eng.Now(), hb.selfRecord())
	_ = before
	// No panic and no outbound reply is the contract; the request
	// handler must not have sent a reply from a dead node.
	if got := s.Net.Node(ha.id).MsgsSent; got > 0 {
		// Heartbeats before death also count; just ensure the request
		// did not add a reply after death by re-checking.
		after := s.Net.Node(ha.id).MsgsSent
		if after != got {
			t.Fatal("dead host sent a reply")
		}
	}
}

func TestAdoptZoneFiltersView(t *testing.T) {
	_, ha, hb, hc := buildTriangle(t, Vanilla)
	if !ha.Knows(hb.id) || !ha.Knows(hc.id) {
		t.Fatal("setup: A should know both")
	}
	// Shrink A to the top-left quarter: B (bottom right) no longer
	// abuts, C (top right) still does.
	ha.adoptZone(zone2(0, 0.5, 0.5, 1))
	if ha.Knows(hb.id) {
		t.Fatal("non-abutting neighbor survived adoptZone")
	}
	if !ha.Knows(hc.id) {
		t.Fatal("still-abutting neighbor dropped by adoptZone")
	}
}

func TestAbsorbKeepsOnlyAbutting(t *testing.T) {
	s, ha, hb, hc := buildTriangle(t, Vanilla)
	ha.view.remove(hb.id)
	ha.view.remove(hc.id)
	recs := []Record{
		{ID: hb.id, Zone: hb.zone.Clone()},            // abuts
		{ID: hc.id, Zone: zone2(0.9, 0.9, 0.95, 1.0)}, // does not abut
		{ID: ha.id, Zone: ha.zone.Clone()},            // self: skipped
	}
	ha.absorb(s.Eng.Now(), recs)
	if !ha.Knows(hb.id) {
		t.Fatal("abutting record not absorbed")
	}
	if ha.Knows(hc.id) || ha.Knows(ha.id) {
		t.Fatal("non-abutting or self record absorbed")
	}
}

func TestRequestThrottling(t *testing.T) {
	// Behavioral check: under identical high churn, an adaptive run
	// with a tight request throttle must move at most as many messages
	// as one allowed to request every tick. (A direct hole cannot be
	// held open in a tiny topology: the take-over channel is a
	// guaranteed contact and heals it, which is itself correct.)
	run := func(gapPeriods float64) int64 {
		cfg := fastConfig(Adaptive)
		cfg.RequestMinGapPeriods = gapPeriods
		cfg.Seed = 5
		s := NewSim(5, cfg)
		cc := DefaultChurnConfig(50, 3*sim.Second)
		cc.JoinGap = 100 * sim.Millisecond
		cc.Seed = 5
		d := NewChurnDriver(s, cc)
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(20*cfg.HeartbeatPeriod))
		return s.Net.Total().MsgsSent
	}
	throttled := run(10)
	eager := run(0.01)
	if throttled > eager {
		t.Fatalf("throttled run sent more messages (%d) than eager run (%d)", throttled, eager)
	}
	if eager == throttled {
		t.Fatal("request gap had no effect under high churn")
	}
}

func TestHeartbeatStopsAfterDeath(t *testing.T) {
	s, ha, _, _ := buildTriangle(t, Vanilla)
	s.Eng.Cancel(ha.tick)
	ha.alive = false
	sent := s.Net.Node(ha.id).MsgsSent
	s.Eng.RunUntil(s.Eng.Now() + sim.Time(5*fastConfig(Vanilla).HeartbeatPeriod))
	if got := s.Net.Node(ha.id).MsgsSent; got != sent {
		t.Fatalf("dead host kept sending: %d -> %d", sent, got)
	}
}
