package proto

import (
	"fmt"
	"slices"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/netsim"
	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

// Batched admission (Config.BatchedAdmission, DESIGN.md §14).
//
// The strict sharded mode runs every join, leave and failure on the
// global control plane, quiescing all shards per event — correct, and
// byte-identical to the serial Sim, but it serializes exactly the
// workload the paper cares about: churn storms. Batched admission keeps
// churn events on the serial batch plane but splits each one into a
// cheap serial *prep* and a deferred *completion*:
//
//   - Prep (serial, at the batch event): the ground-truth mutation —
//     Ov.Join/Ov.Leave, shard assignment, host creation or kill, the
//     RNG draw for the heartbeat phase. Everything whose order defines
//     the run.
//   - Completion (deferred): the protocol-state fan-out — view seeding,
//     table handoffs, join introductions. Completions are queued per
//     owning shard and executed by the worker pool at the end of the
//     drain, shards in parallel, each shard's queue in its own batch
//     order.
//
// Deferral is sound only while completions on different shards cannot
// touch the same state and a later prep cannot observe (or destroy)
// state a queued completion still needs. Three rules enforce that:
//
//   - Conflict rule: a join whose touch set — the newcomer, the
//     splitting owner, and every discovered neighbor — spans more than
//     one shard is a cross-shard admission: the queue is flushed and the
//     completion runs inline, serially, in its batch slot. Same for the
//     takeover side: executeTakeover flushes the queue before mutating.
//   - Reference rule: a leave or fail of a node referenced by any queued
//     completion flushes the queue first (pendRefs tracks the union of
//     queued touch sets). Otherwise killing the host could cancel a
//     heartbeat the queued completion has yet to wire up, or a queued
//     view-seed could resurrect a dead neighbor.
//   - Read rule: every oracle or telemetry reader of protocol state
//     (BrokenLinks, MeanViewSize, Host, per-shard facets) flushes before
//     reading, as do Run/RunUntil (covering direct admissions made
//     between drains).
//
// Determinism: the queue execution order within a shard is its batch
// order, and across shards completions are independent by the conflict
// rule, so the observable state after a flush equals running every
// completion serially in batch order. Preps, flush points and the batch
// order itself are functions of (seed, config, S) only — the sharded
// engine drains the batch plane identically for every worker count — so
// reports are byte-identical across W and, for the membership plane
// (which never reads window positions), across S as well. Protocol
// side-effects are quantized to window barriers, so batched runs are
// NOT byte-identical to strict or serial runs; the differential
// contract against the serial Sim is exact membership-history and
// RNG-stream equality (TestBatchedSeedStreamContract).

// noopMsg is the pooled zero-state Deliverable behind the batched join
// path's accounting-only messages (handoff ack, discovery query/reply).
// The serial path sends these as empty closures; at a barrier the
// closure variant would route through the batch plane and force
// ordering obligations for messages that, by construction, do nothing —
// the envelope variant just counts and returns.
type noopMsg struct{}

func (noopMsg) Deliver(sim.Time) {}

// joinNodeBatched admits a node on the batch plane: ground truth and
// RNG draws at prep, protocol fan-out queued to the owning shard (or
// run inline when the touch set crosses shards).
func (ss *ShardedSim) joinNodeBatched(p geom.Point, caps *resource.NodeCaps) (*can.Node, error) {
	owner := ss.Ov.Owner(p)
	node, err := ss.Ov.Join(p, caps)
	if err != nil {
		return nil, err
	}
	sh := ss.shardOfPoint(p)
	ss.nodeShard[node.ID] = sh
	s := ss.shards[sh]
	now := ss.churnNow()

	// Host at prep: membership readers (AliveHosts, HostIDs, the
	// transport's liveness check) see the newcomer immediately, exactly
	// as in serial — only the view fan-out is deferred. The heartbeat
	// phase is drawn here too, keeping the shared phase stream in strict
	// join order (the seed-stream contract, DESIGN.md §14).
	h := newHost(s, node.ID, node.Zone)
	s.hosts[node.ID] = h
	delay := sim.Duration(s.phase.Float64() * float64(s.Cfg.HeartbeatPeriod))
	h.scheduleFirstTickAt(now.Add(delay))
	if owner == nil {
		return node, nil
	}

	// Capture the completion's inputs at prep. Zones are immutable by
	// convention (replaced, never mutated in place), so holding the
	// owner's post-split zone value stays correct even if the owner
	// splits again before the flush — and the discovered-neighbor zones
	// are cloned here exactly where the serial path clones them.
	ownerID := owner.ID
	ownerZone := owner.Zone
	single := ss.shardID(ownerID) == sh
	var nbrs []Record
	for _, nbID := range ss.Ov.BoundedNeighborIDs(node.ID, s.Cfg.MaxPerFace) {
		nb := ss.Ov.Node(nbID)
		if nb == nil {
			continue
		}
		nbrs = append(nbrs, Record{ID: nbID, Zone: nb.Zone.Clone()})
		if ss.shardID(nbID) != sh {
			single = false
		}
	}
	completion := func() { s.completeJoinBatched(now, h, ownerID, ownerZone, nbrs) }

	if !single || !ss.SE.InBatchDrain() {
		// Cross-shard admission, or a control-plane caller (a scenario
		// event, a direct API join): serialize in this slot. Deferral is
		// only sound from a batch drain, whose own flush hook runs the
		// queue at the right barrier — a control-plane caller has no
		// later drain promised before the windows move past the admission
		// instant, so its completion's sends would land in the past.
		// RowOrdered keeps the emission class identical to the queued
		// path's — whether a join runs inline or deferred is a property
		// of the partition and the calling plane, and must not leak into
		// the flush sort.
		ss.flushPending()
		ss.SE.RowOrdered(completion)
		return node, nil
	}
	ss.pendGroups[sh] = append(ss.pendGroups[sh], completion)
	ss.pendCount++
	ss.pendRefs[node.ID] = struct{}{}
	ss.pendRefs[ownerID] = struct{}{}
	for _, nb := range nbrs {
		ss.pendRefs[nb.ID] = struct{}{}
	}
	return node, nil
}

// completeJoinBatched is completeJoin's deferred half: the same view
// seeding, accounting messages and join introductions, with every
// transmission pinned to the admission instant (the shard clock lags it
// at a barrier) and the no-op acks sent as pooled envelopes.
func (s *Sim) completeJoinBatched(now sim.Time, h *Host, ownerID can.NodeID, ownerZone geom.Zone, nbrs []Record) {
	oh := s.hostOf(ownerID)
	dims := s.Ov.Dims()

	// Snapshot the owner's pre-split table (announce loop needs it after
	// the view mutates). Pools and scratch are shard-local: a queued
	// completion runs on its shard's worker, an inline one on the batch
	// plane with workers parked.
	ids := s.replyIDs[:0]
	for id := range oh.view.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	s.replyIDs = ids
	preRecs := oh.view.recordsOfInto(s.recScratch[:0], ids)
	s.recScratch = preRecs

	oh.adoptZone(ownerZone)
	oh.view.direct(h.selfRecord(), now)

	initial := append(s.introScratch[:0], oh.selfRecord())
	for _, rec := range preRecs {
		if _, _, ok := h.zone.Abuts(rec.Zone); ok {
			initial = append(initial, rec)
		}
	}
	s.introScratch = initial
	for _, rec := range initial {
		h.view.direct(rec, now)
	}
	s.Net.SendMsgAt(now, ownerID, h.id, FullMessageBytes(dims, len(initial)), netsim.KindFull, noopMsg{})

	// Per-face discovery against the candidate set captured at prep;
	// the has() filter mirrors the serial path (owner and abutting
	// preRecs are already in the view).
	for _, nb := range nbrs {
		if h.view.has(nb.ID) {
			continue
		}
		s.Net.SendMsgAt(now, h.id, nb.ID, RequestBytes(dims), netsim.KindRequest, noopMsg{})
		s.Net.SendMsgAt(now, nb.ID, h.id, AnnounceBytes(dims), netsim.KindAnnounce, noopMsg{})
		h.view.direct(nb, now)
		if nh := s.hostOf(nb.ID); nh != nil && nh.alive {
			nh.view.direct(h.selfRecord(), now)
		}
	}

	newbie := h.selfRecord()
	splitter := oh.selfRecord()
	for _, rec := range preRecs {
		s.sendJoinIntroAt(now, ownerID, rec.ID, splitter, newbie)
	}
}

// leaveBatched removes a node gracefully on the batch plane: ground
// truth at prep, the handoff message deferred to the leaver's shard.
func (ss *ShardedSim) leaveBatched(id can.NodeID) error {
	if _, ok := ss.pendRefs[id]; ok {
		ss.flushPending() // reference rule
	}
	sh := ss.shardID(id)
	s := ss.shards[sh]
	h := s.hosts[id]
	if h == nil {
		return fmt.Errorf("proto: leave of unknown node %d", id)
	}
	now := ss.churnNow()
	plan, hasPlan := ss.Ov.Takeover(id)

	h.alive = false
	s.Eng.Cancel(h.tick)
	delete(s.hosts, id)
	goneZone := h.zone.Clone()

	if _, err := ss.Ov.Leave(id); err != nil {
		return err
	}
	if !hasPlan {
		return nil // last node
	}
	takerID := plan.Taker.ID
	mergedID := can.NodeID(-1)
	if plan.Merged != nil {
		mergedID = plan.Merged.ID
	}
	// The handoff table is built at send time like the serial path, but
	// send time is deferred to the flush: the reference rule guarantees
	// no queued completion mutates h.view in between (h is dead — only
	// a pre-prep queued touch could, and that flushed above), so the
	// payload is identical either way. The delivery closure routes back
	// through the batch plane (netsim.SendAt) and runs executeTakeover
	// at the barrier containing now + latency.
	send := func() {
		table := s.replyTable(now, h.view)
		s.Net.SendAt(now, id, takerID, FullMessageBytes(s.Ov.Dims(), len(table)), netsim.KindFull, func(now2 sim.Time) {
			taker := s.hostOf(takerID)
			if taker == nil || !taker.alive {
				return
			}
			s.executeTakeover(now2, taker, id, goneZone, table, mergedID)
		})
	}
	if !ss.SE.InBatchDrain() {
		// Control-plane caller: no later drain is promised before the
		// windows pass now, so the handoff must transmit in this slot
		// (same reasoning as the join path's inline case).
		ss.flushPending()
		ss.SE.RowOrdered(send)
		return nil
	}
	ss.pendGroups[sh] = append(ss.pendGroups[sh], send)
	ss.pendCount++
	return nil
}

// failBatched removes a node silently on the batch plane. The serial
// Fail body is reused verbatim — its prep is already pure ground truth
// and its timeout continuation already rides ctl(), which is the batch
// plane here — after honoring the reference rule.
func (ss *ShardedSim) failBatched(id can.NodeID) error {
	if _, ok := ss.pendRefs[id]; ok {
		ss.flushPending()
	}
	return ss.simOf(id).Fail(id)
}

// churnNow returns the admission instant of a batched churn call: the
// batch clock when churn rides the batch plane (the churn driver), the
// global clock when a control-plane handler calls churn directly (the
// scenario engine does). RunBefore leaves an empty engine's clock
// behind, so the batch clock alone can lag a global-phase caller by
// arbitrary virtual time — whichever clock is ahead is the caller's.
func (ss *ShardedSim) churnNow() sim.Time {
	now := ss.SE.Batch().Now()
	if g := ss.SE.Global().Now(); g > now {
		now = g
	}
	return now
}

// flushPending executes every queued completion, shards in parallel,
// each shard's queue in batch order. Runs on the batch plane (drain
// hook, conflict/reference flushes) or on a quiesced engine (oracle
// readers); both have the worker pool at a barrier.
func (ss *ShardedSim) flushPending() {
	if ss.pendCount == 0 {
		return
	}
	ss.pendCount = 0
	clear(ss.pendRefs)
	ss.SE.ParallelShards(func(sh int) {
		g := ss.pendGroups[sh]
		for i, f := range g {
			f()
			g[i] = nil
		}
		ss.pendGroups[sh] = g[:0]
	})
}
