package proto

import (
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// testView builds a view holding records for the given ids.
func testView(ids ...can.NodeID) *view {
	v := newView()
	for _, id := range ids {
		v.entries[id] = &entry{rec: Record{ID: id}}
	}
	return v
}

// TestReplyTableRetention: buffers requested within one latency window
// of each other must be distinct (the earlier payload is still aliased
// by an in-flight fullMsg); once strictly past busyUntil the buffer is
// reused.
func TestReplyTableRetention(t *testing.T) {
	s := NewSim(2, DefaultConfig(Adaptive)) // 100ms latency
	v := testView(3, 1, 2)

	lat := sim.Time(s.Net.Latency())
	t0 := sim.Time(1000)
	a := s.replyTable(t0, v)
	b := s.replyTable(t0, v)       // same instant: a still busy
	c := s.replyTable(t0+lat, v)   // now == busyUntil: still busy (seq hazard)
	d := s.replyTable(t0+lat+1, v) // strictly past: reuse allowed
	if &a[0] == &b[0] || &a[0] == &c[0] {
		t.Fatal("reply buffer reused while still in flight")
	}
	if &d[0] != &a[0] {
		t.Fatal("reply buffer not reused after the latency window")
	}
	if live := len(s.replyPool) - s.replyHead; live != 3 {
		t.Fatalf("pool grew to %d live buffers, want 3", live)
	}
}

// TestReplyTableOrder: pooled replies must preserve the ascending-id
// order view.records() produces, regardless of map iteration order.
func TestReplyTableOrder(t *testing.T) {
	s := NewSim(2, DefaultConfig(Adaptive))
	v := testView(9, 4, 7, 1)
	for trial := 0; trial < 20; trial++ {
		recs := s.replyTable(sim.Time(trial)*sim.Time(sim.Second), v)
		want := []can.NodeID{1, 4, 7, 9}
		if len(recs) != len(want) {
			t.Fatalf("len = %d, want %d", len(recs), len(want))
		}
		for i, id := range want {
			if recs[i].ID != id {
				t.Fatalf("trial %d: recs[%d].ID = %d, want %d", trial, i, recs[i].ID, id)
			}
		}
	}
}

// TestReplyTableSteadyStateAllocs: after warmup, building a reply from
// the pool must not allocate.
func TestReplyTableSteadyStateAllocs(t *testing.T) {
	s := NewSim(2, DefaultConfig(Adaptive))
	v := testView(1, 2, 3, 4, 5, 6, 7, 8)
	now := sim.Time(0)
	step := sim.Time(s.Net.Latency()) + 1
	for i := 0; i < 4; i++ {
		now += step
		s.replyTable(now, v)
	}
	avg := testing.AllocsPerRun(100, func() {
		now += step
		s.replyTable(now, v)
	})
	if avg != 0 {
		t.Fatalf("allocs per reply = %v, want 0", avg)
	}
}
