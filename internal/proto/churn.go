package proto

import (
	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// ChurnConfig drives the membership scenario of Section V-B: n nodes
// join sequentially, then join and leave events occur with equal
// probability so the population hovers around n. The gap between events
// relative to the heartbeat period selects the regime: gaps longer than
// a period mean no simultaneous events (no lasting broken links); gaps
// shorter than a period are the high-churn regime of Figure 7.
type ChurnConfig struct {
	InitialNodes int
	// JoinGap spaces the initial sequential joins.
	JoinGap sim.Duration
	// MeanEventGap is the mean of the exponential gap between churn
	// events after the initial stage. Zero disables churn.
	MeanEventGap sim.Duration
	// MinEventGap floors the gap between events. The paper's
	// no-simultaneous-events regime needs gaps longer than the full
	// repair transient (heartbeat timeout plus announcement
	// propagation), not merely a long mean: an exponential gap puts
	// substantial mass near zero.
	MinEventGap sim.Duration
	// FailFraction is the fraction of departures that are silent
	// failures rather than graceful leaves.
	FailFraction float64
	// MinNodes guards the population floor: below it every event is a
	// join.
	MinNodes int
	Seed     int64
}

// DefaultChurnConfig returns a scenario with n initial nodes and the
// given mean event gap.
func DefaultChurnConfig(n int, gap sim.Duration) ChurnConfig {
	return ChurnConfig{
		InitialNodes: n,
		JoinGap:      500 * sim.Millisecond,
		MeanEventGap: gap,
		FailFraction: 0.5,
		MinNodes:     8,
		Seed:         1,
	}
}

// ChurnSim is the surface the churn driver needs from a protocol
// simulation: membership operations plus two hooks — ctl() for the
// engine churn belongs on (the serial engine, the sharded control
// plane, or the batch plane under batched admission) and dims() for
// drawing join points. Both *Sim and *ShardedSim implement it; external
// drivers (scenario engines) program against it so one driver covers
// every engine.
type ChurnSim interface {
	JoinNode(p geom.Point, caps *resource.NodeCaps) (*can.Node, error)
	LeaveVoluntary(id can.NodeID) error
	Fail(id can.NodeID) error
	HostIDs() []can.NodeID
	AliveHosts() int
	dims() int
	ctl() *sim.Engine
}

// ChurnDriver injects joins, voluntary leaves and failures into a
// protocol simulation.
type ChurnDriver struct {
	s       ChurnSim
	cfg     ChurnConfig
	points  *rng.Stream
	events  *rng.Stream
	stopped bool

	// ChurnStart is the time the initial joins complete and random
	// churn begins.
	ChurnStart sim.Time
	Joins      int
	Leaves     int
	Fails      int

	// OnJoin, when non-nil, is called after each successful join with
	// the admitted host's id. Incremental consumers (aggregation tables,
	// candidate indexes) hang their membership tracking here instead of
	// polling the population.
	OnJoin func(id can.NodeID)
	// OnLeave, when non-nil, is called after each successful departure
	// with the departed host's id; failed reports a silent failure (the
	// repair transient runs) rather than a graceful leave.
	OnLeave func(id can.NodeID, failed bool)
	// JoinPoint, when non-nil, supplies the overlay point and node
	// capabilities for each join instead of the driver's own point
	// stream — scenario engines use it to couple churn-admitted nodes
	// to a heterogeneous fleet. When nil the driver draws uniform
	// points and joins capability-less hosts, exactly as before.
	JoinPoint func() (geom.Point, *resource.NodeCaps)
}

// NewChurnDriver prepares a driver over any protocol simulation; Start
// schedules its events.
func NewChurnDriver(s ChurnSim, cfg ChurnConfig) *ChurnDriver {
	return newChurnDriver(s, cfg)
}

// NewShardedChurnDriver prepares a driver over a sharded simulation.
// Churn runs on the control plane (or, under batched admission, the
// batch plane), so the event sequence for a given (cfg, S) is one
// deterministic stream regardless of worker count.
func NewShardedChurnDriver(ss *ShardedSim, cfg ChurnConfig) *ChurnDriver {
	return newChurnDriver(ss, cfg)
}

func newChurnDriver(s ChurnSim, cfg ChurnConfig) *ChurnDriver {
	return &ChurnDriver{
		s:      s,
		cfg:    cfg,
		points: rng.NewSplit(cfg.Seed, "churn.points"),
		events: rng.NewSplit(cfg.Seed, "churn.events"),
	}
}

// Start schedules the initial sequential joins and, if MeanEventGap is
// positive, the subsequent churn process. Scheduling is relative to the
// engine's current time, so a driver can be started mid-scenario (at
// time zero this is identical to the original absolute schedule).
func (d *ChurnDriver) Start() {
	eng := d.s.ctl()
	base := eng.Now()
	for i := 0; i < d.cfg.InitialNodes; i++ {
		at := base + sim.Time(int64(i)*int64(d.cfg.JoinGap))
		eng.At(at, func(sim.Time) { d.join() })
	}
	d.ChurnStart = base + sim.Time(int64(d.cfg.InitialNodes)*int64(d.cfg.JoinGap))
	if d.cfg.MeanEventGap > 0 {
		eng.At(d.ChurnStart, d.churnEvent)
	}
}

// Stop halts further churn events (already scheduled protocol activity
// continues).
func (d *ChurnDriver) Stop() { d.stopped = true }

func (d *ChurnDriver) randomPoint() geom.Point {
	p := make(geom.Point, d.s.dims())
	for i := range p {
		p[i] = d.points.Float64() * 0.999999
	}
	return p
}

func (d *ChurnDriver) join() {
	for try := 0; try < 4; try++ {
		var (
			p    geom.Point
			caps *resource.NodeCaps
		)
		if d.JoinPoint != nil {
			p, caps = d.JoinPoint()
		} else {
			p = d.randomPoint()
		}
		if n, err := d.s.JoinNode(p, caps); err == nil {
			d.Joins++
			if d.OnJoin != nil {
				d.OnJoin(n.ID)
			}
			return
		}
	}
}

func (d *ChurnDriver) depart() {
	ids := d.s.HostIDs()
	if len(ids) == 0 {
		return
	}
	id := ids[d.events.Intn(len(ids))]
	if d.events.Bool(d.cfg.FailFraction) {
		if d.s.Fail(id) == nil {
			d.Fails++
			if d.OnLeave != nil {
				d.OnLeave(id, true)
			}
		}
	} else {
		if d.s.LeaveVoluntary(id) == nil {
			d.Leaves++
			if d.OnLeave != nil {
				d.OnLeave(id, false)
			}
		}
	}
}

func (d *ChurnDriver) churnEvent(sim.Time) {
	if d.stopped {
		return
	}
	if d.s.AliveHosts() <= d.cfg.MinNodes || d.events.Bool(0.5) {
		d.join()
	} else {
		d.depart()
	}
	gap := sim.FromSeconds(d.events.Exp(d.cfg.MeanEventGap.Seconds()))
	if gap < d.cfg.MinEventGap {
		gap = d.cfg.MinEventGap
	}
	if gap < sim.Millisecond {
		gap = sim.Millisecond
	}
	d.s.ctl().After(gap, d.churnEvent)
}

// SamplePoint is one broken-link measurement.
type SamplePoint struct {
	At      sim.Time
	Missing int
	Stale   int
	Nodes   int
}

// linkOracle is the surface SampleBrokenLinks needs; both *Sim and
// *ShardedSim provide it. The sweep reads every host's view, so under a
// sharded simulation it runs on the control plane (shards quiesced).
type linkOracle interface {
	BrokenLinks() (missing, stale int)
	AliveHosts() int
	ctl() *sim.Engine
}

// SampleBrokenLinks installs a periodic oracle measurement from start
// until the engine stops, appending to the returned slice.
func SampleBrokenLinks(s linkOracle, start sim.Time, every sim.Duration, out *[]SamplePoint) {
	eng := s.ctl()
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		missing, stale := s.BrokenLinks()
		*out = append(*out, SamplePoint{At: now, Missing: missing, Stale: stale, Nodes: s.AliveHosts()})
		eng.After(every, tick)
	}
	eng.At(start, tick)
}
