package proto

import (
	"fmt"
	"strings"
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/netsim"
	"hetgrid/internal/sim"
)

// shardedBatteryConfig is the scenario shared by every run in the
// determinism battery: initial joins, then mixed join/leave/fail churn
// with heartbeats, measured by the broken-link oracle and the traffic
// counters.
func shardedBatteryConfig(scheme Scheme, seed int64) (Config, ChurnConfig) {
	cfg := DefaultConfig(scheme)
	cfg.HeartbeatPeriod = 2 * sim.Second
	cfg.Seed = seed
	churn := DefaultChurnConfig(48, 300*sim.Millisecond)
	churn.JoinGap = 50 * sim.Millisecond
	churn.Seed = seed
	return cfg, churn
}

// batterySim is what the report generator needs from either simulation
// flavor.
type batterySim interface {
	linkOracle
	HostIDs() []can.NodeID
	MeanViewSize() float64
}

// shardedBatteryReport renders every observable the experiment drivers
// consume — population, oracle counts, per-kind traffic, per-node
// traffic digest — into one comparable string.
func shardedBatteryReport(s batterySim, total, window netsim.Counters, kind func(netsim.Kind) netsim.Counters, d *ChurnDriver, samples []SamplePoint) string {
	var b strings.Builder
	ids := s.HostIDs()
	missing, stale := s.BrokenLinks()
	fmt.Fprintf(&b, "alive=%d mean_view=%.6f missing=%d stale=%d\n", s.AliveHosts(), s.MeanViewSize(), missing, stale)
	fmt.Fprintf(&b, "churn joins=%d leaves=%d fails=%d start=%d\n", d.Joins, d.Leaves, d.Fails, d.ChurnStart)
	fmt.Fprintf(&b, "total=%+v window=%+v\n", total, window)
	for _, k := range netsim.AllKinds {
		fmt.Fprintf(&b, "kind[%s]=%+v\n", k, kind(k))
	}
	var sent, recv int64
	for _, id := range ids {
		c := nodeCounters(s, id)
		sent += c.MsgsSent + int64(id)*c.BytesSent
		recv += c.MsgsRecv + int64(id)*c.BytesRecv
	}
	fmt.Fprintf(&b, "nodes=%d per_node_digest sent=%x recv=%x\n", len(ids), sent, recv)
	for _, sp := range samples {
		fmt.Fprintf(&b, "sample at=%d missing=%d stale=%d nodes=%d\n", sp.At, sp.Missing, sp.Stale, sp.Nodes)
	}
	return b.String()
}

func nodeCounters(s batterySim, id can.NodeID) netsim.Counters {
	switch v := s.(type) {
	case *Sim:
		return v.Net.Node(id)
	case *ShardedSim:
		return v.Net.Node(id)
	}
	panic("unknown sim flavor")
}

func runSerialBattery(scheme Scheme, seed int64, horizon sim.Time) string {
	cfg, churnCfg := shardedBatteryConfig(scheme, seed)
	s := NewSim(3, cfg)
	d := NewChurnDriver(s, churnCfg)
	var samples []SamplePoint
	SampleBrokenLinks(s, 5*sim.Time(sim.Second), 5*sim.Duration(sim.Second), &samples)
	d.Start()
	s.Eng.RunUntil(horizon)
	return shardedBatteryReport(s, s.Net.Total(), s.Net.Window(), s.Net.KindTotal, d, samples)
}

func runShardedBattery(t *testing.T, scheme Scheme, seed int64, shards, workers int, horizon sim.Time) string {
	t.Helper()
	cfg, churnCfg := shardedBatteryConfig(scheme, seed)
	ss := NewShardedSim(shards, workers, 3, cfg)
	defer ss.Close()
	d := NewShardedChurnDriver(ss, churnCfg)
	var samples []SamplePoint
	SampleBrokenLinks(ss, 5*sim.Time(sim.Second), 5*sim.Duration(sim.Second), &samples)
	d.Start()
	ss.RunUntil(horizon)
	return shardedBatteryReport(ss, ss.Net.Total(), ss.Net.Window(), ss.Net.KindTotal, d, samples)
}

// TestShardedSimDeterminism is the protocol-level determinism battery:
// for each heartbeat scheme and seed, the full observable report must
// be byte-identical across every (S, W) combination of the sharded
// engine — S=1 vs S=N and W=1 vs W=N alike. The serial engine is a
// slightly different model at the tie-break level (a control-plane
// delivery and a shard-queue delivery landing on one host at the same
// instant order globally-first under sharding, but by schedule sequence
// serially), so it is compared on the membership observables, which the
// tie order cannot affect, rather than byte-for-byte.
func TestShardedSimDeterminism(t *testing.T) {
	const horizon = 40 * sim.Time(sim.Second)
	combos := [][2]int{{2, 1}, {2, 2}, {4, 1}, {4, 3}, {8, 2}}
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		for _, seed := range []int64{1, 7} {
			want := runShardedBattery(t, scheme, seed, 1, 1, horizon)
			if !strings.Contains(want, "joins=") || strings.Contains(want, "alive=0 ") {
				t.Fatalf("%v/seed=%d: degenerate battery:\n%s", scheme, seed, want)
			}
			for _, c := range combos {
				got := runShardedBattery(t, scheme, seed, c[0], c[1], horizon)
				if got != want {
					t.Fatalf("%v/seed=%d: S=%d W=%d diverged from S=1:\n--- S=1\n%s\n--- S=%d W=%d\n%s",
						scheme, seed, c[0], c[1], want, c[0], c[1], got)
				}
			}
			// Churn runs on the control plane off the same seed streams in
			// both flavors, so membership history (and the heartbeat phase
			// draws behind mean view size) must agree with serial exactly.
			serial := runSerialBattery(scheme, seed, horizon)
			if serialHead(serial) != serialHead(want) {
				t.Fatalf("%v/seed=%d: sharded membership diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
					scheme, seed, serial, want)
			}
		}
	}
}

// serialHead extracts the membership lines (alive/view/churn) that the
// serial and sharded models must share verbatim.
func serialHead(report string) string {
	lines := strings.SplitN(report, "\n", 3)
	return strings.Join(lines[:2], "\n")
}

// TestShardedSimCrossShardTraffic guards against a degenerate battery:
// at S=4 the slice partition must actually split the population so the
// run exercises cross-shard heartbeat routing.
func TestShardedSimCrossShardTraffic(t *testing.T) {
	cfg, churnCfg := shardedBatteryConfig(Compact, 1)
	ss := NewShardedSim(4, 2, 3, cfg)
	defer ss.Close()
	d := NewShardedChurnDriver(ss, churnCfg)
	d.Start()
	ss.RunUntil(20 * sim.Time(sim.Second))
	populated := 0
	for i := 0; i < ss.Shards(); i++ {
		if len(ss.Shard(i).hosts) > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d of 4 shards populated — battery is not exercising cross-shard traffic", populated)
	}
	if _, ok := d.s.(*ShardedSim); !ok {
		t.Fatalf("driver not bound to the sharded sim")
	}
}
