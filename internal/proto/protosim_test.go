package proto

import (
	"testing"

	canpkg "hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

// fastConfig shrinks protocol timescales so tests run quickly while
// preserving all ratios (timeout/period etc.).
func fastConfig(scheme Scheme) Config {
	cfg := DefaultConfig(scheme)
	cfg.HeartbeatPeriod = 10 * sim.Second
	cfg.Latency = 50 * sim.Millisecond
	return cfg
}

func TestMessageSizes(t *testing.T) {
	d := 11
	rec := RecordBytes(d)
	if rec != 16+4*11 {
		t.Fatalf("RecordBytes(11) = %d", rec)
	}
	if FullMessageBytes(d, 10) != headerBytes+11*rec {
		t.Fatal("FullMessageBytes wrong")
	}
	if CompactMessageBytes(d) >= FullMessageBytes(d, 5) {
		t.Fatal("compact message must be smaller than a 5-record full message")
	}
	// Compact stays near-constant in d; a full message with O(d)
	// records grows linearly, so per-node volume (messages × size) is
	// O(d²) for vanilla and near-O(d) for compact. Check the trend
	// between d=5 (≈10 neighbors) and d=14 (≈28 neighbors).
	fullGrowth := float64(FullMessageBytes(14, 28)) / float64(FullMessageBytes(5, 10))
	compactGrowth := float64(CompactMessageBytes(14)) / float64(CompactMessageBytes(5))
	if fullGrowth < 2*compactGrowth {
		t.Fatalf("full growth %.2f should far exceed compact growth %.2f", fullGrowth, compactGrowth)
	}
}

func TestSchemeString(t *testing.T) {
	if Vanilla.String() != "vanilla" || Compact.String() != "compact" || Adaptive.String() != "adaptive" {
		t.Fatal("scheme names wrong")
	}
}

func TestJoinBuildsConsistentViews(t *testing.T) {
	s := NewSim(3, fastConfig(Vanilla))
	d := NewChurnDriver(s, ChurnConfig{InitialNodes: 30, JoinGap: 200 * sim.Millisecond, Seed: 3})
	d.Start()
	s.Eng.RunUntil(d.ChurnStart + sim.Time(2*sim.Second))
	if s.AliveHosts() != 30 {
		t.Fatalf("alive hosts = %d, want 30", s.AliveHosts())
	}
	missing, stale := s.BrokenLinks()
	if missing != 0 || stale != 0 {
		t.Fatalf("after sequential joins: missing=%d stale=%d, want 0/0", missing, stale)
	}
}

func TestNoChurnStaysClean(t *testing.T) {
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		s := NewSim(5, fastConfig(scheme))
		d := NewChurnDriver(s, ChurnConfig{InitialNodes: 40, JoinGap: 100 * sim.Millisecond, Seed: 4})
		d.Start()
		// Run many heartbeat periods with no events at all.
		s.Eng.RunUntil(d.ChurnStart + sim.Time(20*fastConfig(scheme).HeartbeatPeriod))
		missing, stale := s.BrokenLinks()
		if missing != 0 || stale != 0 {
			t.Errorf("%v: missing=%d stale=%d after quiet run, want 0/0", scheme, missing, stale)
		}
	}
}

func TestVoluntaryLeaveRepairsWithinTimeout(t *testing.T) {
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		cfg := fastConfig(scheme)
		s := NewSim(3, cfg)
		d := NewChurnDriver(s, ChurnConfig{InitialNodes: 25, JoinGap: 100 * sim.Millisecond, Seed: 5})
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(2*cfg.HeartbeatPeriod))

		// One graceful leave, then quiet.
		victim := s.hostIDs()[7]
		if err := s.LeaveVoluntary(victim); err != nil {
			t.Fatal(err)
		}
		s.Eng.RunUntil(s.Eng.Now() + sim.Time(6*cfg.HeartbeatPeriod))
		missing, _ := s.BrokenLinks()
		if missing != 0 {
			t.Errorf("%v: %d broken links after an isolated voluntary leave", scheme, missing)
		}
	}
}

func TestFailureRepairsAfterTimeout(t *testing.T) {
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		cfg := fastConfig(scheme)
		s := NewSim(3, cfg)
		d := NewChurnDriver(s, ChurnConfig{InitialNodes: 25, JoinGap: 100 * sim.Millisecond, Seed: 6})
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(3*cfg.HeartbeatPeriod))

		victim := s.hostIDs()[3]
		if err := s.Fail(victim); err != nil {
			t.Fatal(err)
		}
		// Immediately after the failure the take-over has not executed;
		// the new adjacencies around the vacated zone are still unknown.
		s.Eng.RunUntil(s.Eng.Now() + sim.Time(8*cfg.HeartbeatPeriod))
		missing, _ := s.BrokenLinks()
		if missing != 0 {
			t.Errorf("%v: %d broken links remain after isolated failure + quiet period", scheme, missing)
		}
	}
}

func TestLeaveOfUnknownNodeErrors(t *testing.T) {
	s := NewSim(2, fastConfig(Vanilla))
	if err := s.LeaveVoluntary(99); err == nil {
		t.Fatal("leave of unknown node did not error")
	}
	if err := s.Fail(99); err == nil {
		t.Fatal("fail of unknown node did not error")
	}
}

func TestLastNodeLeaves(t *testing.T) {
	s := NewSim(2, fastConfig(Vanilla))
	n, err := s.Join(geom.Point{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LeaveVoluntary(n.ID); err != nil {
		t.Fatal(err)
	}
	if s.AliveHosts() != 0 || s.Ov.Len() != 0 {
		t.Fatal("last leave did not empty the system")
	}
}

// runChurn executes a standard churn scenario and returns the mean
// missing-link count over the sampled tail of the run.
func runChurn(t *testing.T, scheme Scheme, dims, nodes int, gap sim.Duration, seed int64, horizon sim.Duration) float64 {
	t.Helper()
	cfg := fastConfig(scheme)
	cfg.Seed = seed
	s := NewSim(dims, cfg)
	cc := DefaultChurnConfig(nodes, gap)
	cc.JoinGap = 100 * sim.Millisecond
	cc.Seed = seed
	d := NewChurnDriver(s, cc)
	d.Start()
	var samples []SamplePoint
	SampleBrokenLinks(s, d.ChurnStart+sim.Time(5*cfg.HeartbeatPeriod), 2*cfg.HeartbeatPeriod, &samples)
	s.Eng.RunUntil(d.ChurnStart.Add(horizon))
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	sum := 0.0
	for _, sp := range samples {
		sum += float64(sp.Missing)
	}
	return sum / float64(len(samples))
}

func TestSlowChurnSettlesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("churn simulation")
	}
	// Events spaced beyond the full repair transient (timeout +
	// announcement propagation): failures create transient blind
	// windows, but once churn stops every scheme must repair completely
	// — the paper's no-simultaneous-events regime.
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		cfg := fastConfig(scheme)
		cfg.Seed = 7
		s := NewSim(5, cfg)
		cc := DefaultChurnConfig(40, 60*sim.Second)
		cc.MinEventGap = 5 * cfg.HeartbeatPeriod
		cc.JoinGap = 100 * sim.Millisecond
		cc.Seed = 7
		d := NewChurnDriver(s, cc)
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(60*cfg.HeartbeatPeriod))
		d.Stop()
		s.Eng.RunUntil(s.Eng.Now() + sim.Time(10*cfg.HeartbeatPeriod))
		missing, _ := s.BrokenLinks()
		// Compact is allowed a small persistent floor: under bounded
		// tracking it has no gossip channel, so a zone change can leave
		// a handful of never-discovered links — exactly the weakness
		// the paper attributes to it. Vanilla and adaptive must settle
		// completely clean.
		limit := 0
		if scheme == Compact {
			limit = 4
		}
		if missing > limit {
			t.Errorf("%v: %d broken links persist after slow churn settles, want ≤ %d", scheme, missing, limit)
		}
	}
}

func TestHighChurnSchemeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("churn simulation")
	}
	// High churn: several events per heartbeat period. The paper's
	// Figure 7 ordering: vanilla most resilient, compact worst,
	// adaptive close to vanilla.
	gap := 2 * sim.Second // period is 10 s
	horizon := 80 * fastConfig(Vanilla).HeartbeatPeriod
	vanilla := runChurn(t, Vanilla, 5, 60, gap, 8, horizon)
	compact := runChurn(t, Compact, 5, 60, gap, 8, horizon)
	adaptive := runChurn(t, Adaptive, 5, 60, gap, 8, horizon)
	t.Logf("mean missing links: vanilla=%.2f compact=%.2f adaptive=%.2f", vanilla, compact, adaptive)
	if compact <= vanilla {
		t.Errorf("compact (%.2f) should have more broken links than vanilla (%.2f)", compact, vanilla)
	}
	if adaptive >= compact {
		t.Errorf("adaptive (%.2f) should repair better than compact (%.2f)", adaptive, compact)
	}
}

func TestMessageVolumeOrdering(t *testing.T) {
	// At steady state with no churn, vanilla must move far more bytes
	// than compact; adaptive must be close to compact. Message counts
	// must be nearly identical.
	type res struct{ msgs, bytes int64 }
	results := make(map[Scheme]res)
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		cfg := fastConfig(scheme)
		s := NewSim(8, cfg)
		d := NewChurnDriver(s, ChurnConfig{InitialNodes: 50, JoinGap: 100 * sim.Millisecond, Seed: 9})
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(3*cfg.HeartbeatPeriod))
		s.Net.ResetWindow()
		s.Eng.RunUntil(s.Eng.Now() + sim.Time(10*cfg.HeartbeatPeriod))
		w := s.Net.Window()
		results[scheme] = res{w.MsgsSent, w.BytesSent}
	}
	v, c, a := results[Vanilla], results[Compact], results[Adaptive]
	t.Logf("bytes: vanilla=%d compact=%d adaptive=%d", v.bytes, c.bytes, a.bytes)
	if v.bytes < 2*c.bytes {
		t.Errorf("vanilla bytes (%d) should dwarf compact bytes (%d)", v.bytes, c.bytes)
	}
	if a.bytes > 2*c.bytes {
		t.Errorf("adaptive bytes (%d) should be close to compact (%d)", a.bytes, c.bytes)
	}
	ratio := float64(v.msgs) / float64(c.msgs)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("message counts should be nearly equal: vanilla=%d compact=%d", v.msgs, c.msgs)
	}
}

func TestVanillaRedundancyRepairsThirdPartyLinks(t *testing.T) {
	// Figure 2 scenario: A learns about a node it is missing from a
	// common neighbor's full heartbeat. Build a tiny fixed topology:
	// left half A, right split into B (bottom) and C (top). Remove C
	// from A's view by hand; a vanilla heartbeat from B (which knows C)
	// must restore it.
	cfg := fastConfig(Vanilla)
	s := NewSim(2, cfg)
	a, err := s.Join(geom.Point{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Join(geom.Point{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Join(geom.Point{0.75, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	s.Eng.RunUntil(sim.Time(2 * cfg.HeartbeatPeriod))
	ha := s.Host(a.ID)
	if !ha.Knows(c.ID) {
		t.Fatal("setup: A should know C")
	}
	ha.view.remove(c.ID)
	if _, _, ok := a.Zone.Abuts(c.Zone); !ok {
		t.Skip("topology did not come out as A|B,C; skip")
	}
	if !s.Host(b.ID).Knows(c.ID) {
		t.Fatal("setup: B should know C")
	}
	s.Eng.RunUntil(s.Eng.Now() + sim.Time(2*cfg.HeartbeatPeriod))
	if !ha.Knows(c.ID) {
		t.Fatal("vanilla redundancy did not repair A's missing link to C")
	}
}

// severablePair finds an adjacent pair (x, y) whose mutual knowledge,
// once erased, cannot come back through compact's take-over channels:
// neither is the other's take-over target, and no node that full-updates
// x (i.e. has x as its take-over target) knows y, and vice versa.
func severablePair(s *Sim) (x, y *Host, ok bool) {
	takerOf := make(map[int64][]int64) // taker id -> senders
	for _, id := range s.hostIDs() {
		if plan, ok := s.Ov.Takeover(id); ok {
			t := int64(plan.Taker.ID)
			takerOf[t] = append(takerOf[t], int64(id))
		}
	}
	clean := func(a, b *Host) bool {
		if plan, ok := s.Ov.Takeover(a.id); ok && plan.Taker.ID == b.id {
			return false
		}
		for _, src := range takerOf[int64(a.id)] {
			if h := s.Host(canID(src)); h != nil && h.Knows(b.id) {
				return false
			}
		}
		return true
	}
	for _, idA := range s.hostIDs() {
		ha := s.Host(idA)
		for _, idB := range s.Ov.NeighborIDs(idA) {
			hb := s.Host(idB)
			if hb == nil || !ha.Knows(idB) || !hb.Knows(idA) {
				continue
			}
			if clean(ha, hb) && clean(hb, ha) {
				return ha, hb, true
			}
		}
	}
	return nil, nil, false
}

func canID(v int64) (id canpkg.NodeID) { return canpkg.NodeID(v) }

func TestCompactDoesNotRepairThirdPartyLinks(t *testing.T) {
	cfg := fastConfig(Compact)
	s := NewSim(3, cfg)
	d := NewChurnDriver(s, ChurnConfig{InitialNodes: 40, JoinGap: 100 * sim.Millisecond, Seed: 11})
	d.Start()
	s.Eng.RunUntil(d.ChurnStart + sim.Time(3*cfg.HeartbeatPeriod))
	hx, hy, ok := severablePair(s)
	if !ok {
		t.Skip("no severable pair in this topology")
	}
	// Erase mutual knowledge (no tombstones: the nodes simply never
	// learned about each other). Compact heartbeats carry no
	// third-party records, so nothing restores the link.
	hx.view.remove(hy.id)
	hy.view.remove(hx.id)
	s.Eng.RunUntil(s.Eng.Now() + sim.Time(5*cfg.HeartbeatPeriod))
	if hx.Knows(hy.id) || hy.Knows(hx.id) {
		t.Fatal("compact heartbeats should not repair third-party links")
	}
	missing, _ := s.BrokenLinks()
	if missing == 0 {
		t.Fatal("expected persistent broken links under compact")
	}
}

func TestVanillaRepairsSeveredPair(t *testing.T) {
	// The same surgery under vanilla heals within a couple of periods
	// through redundant neighbor info from common neighbors.
	cfg := fastConfig(Vanilla)
	s := NewSim(3, cfg)
	d := NewChurnDriver(s, ChurnConfig{InitialNodes: 40, JoinGap: 100 * sim.Millisecond, Seed: 11})
	d.Start()
	s.Eng.RunUntil(d.ChurnStart + sim.Time(3*cfg.HeartbeatPeriod))
	hx, hy, ok := severablePair(s)
	if !ok {
		t.Skip("no severable pair in this topology")
	}
	hx.view.remove(hy.id)
	hy.view.remove(hx.id)
	s.Eng.RunUntil(s.Eng.Now() + sim.Time(3*cfg.HeartbeatPeriod))
	if !hx.Knows(hy.id) || !hy.Knows(hx.id) {
		t.Fatal("vanilla redundancy did not repair the severed pair")
	}
}

func TestAdaptiveRequestRepairsBrokenLink(t *testing.T) {
	cfg := fastConfig(Adaptive)
	s := NewSim(2, cfg)
	a, _ := s.Join(geom.Point{0.25, 0.5})
	s.Join(geom.Point{0.75, 0.25})
	c, _ := s.Join(geom.Point{0.75, 0.75})
	s.Eng.RunUntil(sim.Time(2 * cfg.HeartbeatPeriod))
	ha := s.Host(a.ID)
	hc := s.Host(c.ID)
	if !ha.Knows(c.ID) || !hc.Knows(a.ID) {
		t.Fatal("setup: A and C should know each other")
	}
	// Sever both directions with short tombstones: adaptive detection
	// must notice the uncovered faces and repair via full-update
	// requests to the common neighbor B.
	ha.view.bury(c.ID, s.Eng.Now().Add(cfg.HeartbeatPeriod/2))
	hc.view.bury(a.ID, s.Eng.Now().Add(cfg.HeartbeatPeriod/2))
	s.Eng.RunUntil(s.Eng.Now() + sim.Time(6*cfg.HeartbeatPeriod))
	if !ha.Knows(c.ID) || !hc.Knows(a.ID) {
		t.Fatal("adaptive full-update did not repair the broken link")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int, int) {
		cfg := fastConfig(Adaptive)
		cfg.Seed = 42
		s := NewSim(5, cfg)
		cc := DefaultChurnConfig(30, 5*sim.Second)
		cc.Seed = 42
		d := NewChurnDriver(s, cc)
		d.Start()
		s.Eng.RunUntil(d.ChurnStart + sim.Time(20*cfg.HeartbeatPeriod))
		missing, stale := s.BrokenLinks()
		return s.Net.Total().BytesSent, missing, stale
	}
	b1, m1, s1 := run()
	b2, m2, s2 := run()
	if b1 != b2 || m1 != m2 || s1 != s2 {
		t.Fatalf("runs with identical seeds diverged: (%d,%d,%d) vs (%d,%d,%d)", b1, m1, s1, b2, m2, s2)
	}
}

func TestChurnDriverCounters(t *testing.T) {
	cfg := fastConfig(Vanilla)
	s := NewSim(3, cfg)
	cc := DefaultChurnConfig(20, 1*sim.Second)
	cc.JoinGap = 50 * sim.Millisecond
	d := NewChurnDriver(s, cc)
	d.Start()
	s.Eng.RunUntil(d.ChurnStart + sim.Time(60*sim.Second))
	if d.Joins < 20 {
		t.Fatalf("joins = %d, want ≥ 20 (initial population)", d.Joins)
	}
	if d.Leaves+d.Fails == 0 {
		t.Fatal("no departures under churn")
	}
	// Population stays near the initial size under 50/50 churn.
	if s.AliveHosts() < 10 || s.AliveHosts() > 40 {
		t.Fatalf("population drifted to %d", s.AliveHosts())
	}
	d.Stop()
	fired := s.Eng.Fired()
	_ = fired
}
