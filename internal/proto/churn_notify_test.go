package proto

import (
	"testing"

	canpkg "hetgrid/internal/can"
	"hetgrid/internal/sim"
)

// TestChurnNotificationsMatchJournal runs protocol-driven churn — the
// initial sequential joins, then random joins, graceful leaves and
// silent failures — and cross-checks three views of membership that
// must never disagree: the driver's OnJoin/OnLeave notifications, the
// overlay's churn journal replayed from version zero, and the
// ground-truth host table. This pins the notification hooks to the
// same delta protocol the schedulers' incremental consumers rely on.
func TestChurnNotificationsMatchJournal(t *testing.T) {
	s := NewSim(2, fastConfig(Compact))
	cfg := DefaultChurnConfig(40, 2*sim.Second)
	cfg.Seed = 9
	d := NewChurnDriver(s, cfg)

	notified := make(map[canpkg.NodeID]struct{})
	joins, leaves, fails := 0, 0, 0
	d.OnJoin = func(id canpkg.NodeID) {
		if _, dup := notified[id]; dup {
			t.Fatalf("OnJoin(%d) for a host already notified as present", id)
		}
		notified[id] = struct{}{}
		joins++
	}
	d.OnLeave = func(id canpkg.NodeID, failed bool) {
		if _, ok := notified[id]; !ok {
			t.Fatalf("OnLeave(%d) without a prior OnJoin", id)
		}
		delete(notified, id)
		if failed {
			fails++
		} else {
			leaves++
		}
	}

	d.Start()
	s.Eng.RunUntil(d.ChurnStart + sim.Time(4*sim.Minute))
	d.Stop()

	if joins != d.Joins || leaves != d.Leaves || fails != d.Fails {
		t.Fatalf("hook counts (%d/%d/%d) disagree with driver counters (%d/%d/%d)",
			joins, leaves, fails, d.Joins, d.Leaves, d.Fails)
	}
	if d.Leaves == 0 || d.Fails == 0 {
		t.Fatalf("scenario exercised no %s; lengthen the run",
			map[bool]string{true: "graceful leaves", false: "failures"}[d.Leaves == 0])
	}
	if len(notified) != s.AliveHosts() {
		t.Fatalf("hooks track %d hosts, ground truth has %d", len(notified), s.AliveHosts())
	}
	for _, id := range s.hostIDs() {
		if _, ok := notified[id]; !ok {
			t.Fatalf("alive host %d missing from hook-tracked membership", id)
		}
	}

	// The overlay journal, replayed from the beginning, must land on the
	// same membership the hooks accumulated.
	have := make(map[canpkg.NodeID]struct{})
	if !s.Ov.ChurnSince(0, func(ev canpkg.ChurnEvent) {
		if ev.Left != canpkg.NoneID {
			delete(have, ev.Left)
		}
		if ev.Joined != canpkg.NoneID {
			have[ev.Joined] = struct{}{}
		}
	}) {
		t.Fatal("journal gap: the scenario outgrew the retained window; shrink it")
	}
	if len(have) != len(notified) {
		t.Fatalf("journal replay has %d hosts, hooks have %d", len(have), len(notified))
	}
	for id := range notified {
		if _, ok := have[id]; !ok {
			t.Fatalf("host %d notified but absent from journal replay", id)
		}
	}
}
