package proto

import (
	"fmt"
	"strings"
	"testing"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

func runBatchedBattery(t *testing.T, scheme Scheme, seed int64, shards, workers int, horizon sim.Time) string {
	t.Helper()
	cfg, churnCfg := shardedBatteryConfig(scheme, seed)
	cfg.BatchedAdmission = true
	ss := NewShardedSim(shards, workers, 3, cfg)
	defer ss.Close()
	d := NewShardedChurnDriver(ss, churnCfg)
	var samples []SamplePoint
	SampleBrokenLinks(ss, 5*sim.Time(sim.Second), 5*sim.Duration(sim.Second), &samples)
	d.Start()
	ss.RunUntil(horizon)
	return shardedBatteryReport(ss, ss.Net.Total(), ss.Net.Window(), ss.Net.KindTotal, d, samples)
}

// TestBatchedAdmissionDeterminism is the tentpole's contract: with
// churn running on the batch plane — joins, leaves and fails prepared
// serially but completed by the worker pool at window barriers — the
// full observable report must be byte-identical across every (S, W).
// The battery's JoinGap (50 ms) sits below the latency (100 ms), so
// windows routinely carry several admissions, including joins splitting
// a zone admitted earlier in the same window.
func TestBatchedAdmissionDeterminism(t *testing.T) {
	const horizon = 40 * sim.Time(sim.Second)
	combos := [][2]int{{2, 1}, {2, 2}, {4, 1}, {4, 3}, {8, 2}}
	for _, scheme := range []Scheme{Vanilla, Compact, Adaptive} {
		for _, seed := range []int64{1, 7} {
			want := runBatchedBattery(t, scheme, seed, 1, 1, horizon)
			if !strings.Contains(want, "joins=") || strings.Contains(want, "alive=0 ") {
				t.Fatalf("%v/seed=%d: degenerate battery:\n%s", scheme, seed, want)
			}
			for _, c := range combos {
				got := runBatchedBattery(t, scheme, seed, c[0], c[1], horizon)
				if got != want {
					t.Fatalf("%v/seed=%d: batched S=%d W=%d diverged from S=1:\n--- S=1\n%s\n--- S=%d W=%d\n%s",
						scheme, seed, c[0], c[1], want, c[0], c[1], got)
				}
			}
		}
	}
}

// membershipDigest renders the membership-plane observables batched
// admission must share exactly with the serial Sim: population, churn
// counters, the live id set and every live node's ground-truth zone.
// (Protocol-side state — views, traffic — is allowed to differ: batched
// completions are quantized to window barriers.)
type membershipSim interface {
	ChurnSim
	Overlay() *can.Overlay
}

func membershipDigest(s membershipSim, d *ChurnDriver) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alive=%d joins=%d leaves=%d fails=%d start=%d\n",
		s.AliveHosts(), d.Joins, d.Leaves, d.Fails, d.ChurnStart)
	for _, id := range s.HostIDs() {
		n := s.Overlay().Node(id)
		fmt.Fprintf(&b, "id=%d zone=%v\n", id, n.Zone)
	}
	return b.String()
}

// TestBatchedSeedStreamContract is the satellite fix's differential
// test: batched admission must consume the same RNG draws in the same
// order as the serial Sim — the heartbeat-phase stream advances once
// per admission in strict join order (drawn at prep, before the
// completion is deferred), and the churn driver's point/event streams
// see identical membership at every decision. Equal membership
// histories AND equal post-run stream positions witness both.
func TestBatchedSeedStreamContract(t *testing.T) {
	const horizon = 30 * sim.Time(sim.Second)
	for _, seed := range []int64{1, 7, 13} {
		cfg, churnCfg := shardedBatteryConfig(Compact, seed)
		s := NewSimOn(sim.New(), 3, cfg)
		sd := NewChurnDriver(s, churnCfg)
		sd.Start()
		s.Eng.RunUntil(horizon)

		cfg.BatchedAdmission = true
		ss := NewShardedSim(4, 2, 3, cfg)
		bd := NewShardedChurnDriver(ss, churnCfg)
		bd.Start()
		ss.RunUntil(horizon)

		serial, batched := membershipDigest(s, sd), membershipDigest(ss, bd)
		if serial != batched {
			t.Fatalf("seed=%d: batched membership history diverged from serial:\n--- serial\n%s\n--- batched\n%s",
				seed, serial, batched)
		}
		// Post-run stream position: the next draw agrees only if both
		// flavors drew exactly as often in the same order.
		if sp, bp := s.phase.Float64(), ss.shards[0].phase.Float64(); sp != bp {
			t.Fatalf("seed=%d: phase stream position diverged: serial next=%v batched next=%v", seed, sp, bp)
		}
		ss.Close()
	}
}

// batchedBoundaryReport runs a hand-scripted admission schedule under
// batched admission and reports the full battery observables.
func batchedBoundaryReport(t *testing.T, shards, workers int, script func(ss *ShardedSim)) string {
	t.Helper()
	cfg := DefaultConfig(Compact)
	cfg.HeartbeatPeriod = 2 * sim.Second
	cfg.BatchedAdmission = true
	ss := NewShardedSim(shards, workers, 2, cfg)
	defer ss.Close()
	script(ss)
	ss.RunUntil(10 * sim.Time(sim.Second))
	d := &ChurnDriver{} // no driver: zero churn counters in the report
	return shardedBatteryReport(ss, ss.Net.Total(), ss.Net.Window(), ss.Net.KindTotal, d, nil)
}

// TestBatchedBatchBoundaryCases pins the three corpus cases from the
// issue: (a) two joins splitting the same zone inside one window —
// the second join's owner is itself a pending completion; (b) a fail
// whose takeover crosses a shard boundary — the handoff falls back to
// the serial path at the barrier; (c) a join landing exactly at a
// window barrier (an admission time that is also a delivery instant).
// Each script must produce byte-identical reports across (S, W).
func TestBatchedBatchBoundaryCases(t *testing.T) {
	L := sim.Time(100 * sim.Millisecond)
	cases := []struct {
		name   string
		script func(ss *ShardedSim)
	}{
		{"two_joins_same_zone_one_window", func(ss *ShardedSim) {
			ctl := ss.ctl()
			ctl.At(0, func(sim.Time) { mustJoin(t, ss, geom.Point{0.1, 0.1}) })
			// Same batch drain, same quadrant: the second split's owner
			// is the first join's still-pending newcomer.
			ctl.At(L, func(sim.Time) { mustJoin(t, ss, geom.Point{0.6, 0.6}) })
			ctl.At(L+sim.Time(20*sim.Millisecond), func(sim.Time) { mustJoin(t, ss, geom.Point{0.65, 0.62}) })
			ctl.At(L+sim.Time(40*sim.Millisecond), func(sim.Time) { mustJoin(t, ss, geom.Point{0.61, 0.68}) })
		}},
		{"cross_shard_takeover", func(ss *ShardedSim) {
			ctl := ss.ctl()
			ctl.At(0, func(sim.Time) { mustJoin(t, ss, geom.Point{0.05, 0.5}) })
			// First split cuts dimension 0: ids 0 and 1 are split-tree
			// siblings living at opposite ends of the keyspace — under
			// S=4 they land on different shards, so failing id 1 makes
			// id 0 the cross-shard taker.
			ctl.At(L, func(sim.Time) { mustJoin(t, ss, geom.Point{0.9, 0.5}) })
			ctl.At(2*L, func(sim.Time) { mustJoin(t, ss, geom.Point{0.3, 0.8}) })
			ctl.At(sim.Time(2*sim.Second), func(sim.Time) {
				if err := ss.Fail(1); err != nil {
					t.Errorf("fail: %v", err)
				}
			})
		}},
		{"mid_window_join_wave_mixed", func(ss *ShardedSim) {
			ctl := ss.ctl()
			ctl.At(0, func(sim.Time) { mustJoin(t, ss, geom.Point{0.5, 0.5}) })
			// A five-join wave at sub-latency spacing — all inside one
			// window, splitting zones admitted moments earlier — then a
			// fail and a leave interleaved with one more join, so queued
			// completions hit both the conflict and the reference rule.
			for k := int64(0); k < 5; k++ {
				at := L + sim.Time(k)*sim.Time(10*sim.Millisecond)
				p := geom.Point{0.1 + 0.18*float64(k), 0.3 + 0.1*float64(k%2)}
				ctl.At(at, func(sim.Time) { mustJoin(t, ss, p) })
			}
			ctl.At(2*L+sim.Time(30*sim.Millisecond), func(sim.Time) {
				if err := ss.Fail(2); err != nil {
					t.Errorf("fail: %v", err)
				}
			})
			ctl.At(3*L, func(sim.Time) { mustJoin(t, ss, geom.Point{0.85, 0.15}) })
			ctl.At(4*L+sim.Time(10*sim.Millisecond), func(sim.Time) {
				if err := ss.LeaveVoluntary(4); err != nil {
					t.Errorf("leave: %v", err)
				}
			})
		}},
		{"join_at_window_barrier", func(ss *ShardedSim) {
			ctl := ss.ctl()
			ctl.At(0, func(sim.Time) { mustJoin(t, ss, geom.Point{0.2, 0.2}) })
			// Heartbeat deliveries pin window edges at multiples of the
			// latency once traffic flows; admissions at exactly k·L land
			// on those barriers.
			for k := int64(1); k <= 4; k++ {
				at := sim.Time(k) * L
				p := geom.Point{0.2 + 0.15*float64(k), 0.7}
				ctl.At(at, func(sim.Time) { mustJoin(t, ss, p) })
			}
			ctl.At(6*L, func(sim.Time) {
				if err := ss.LeaveVoluntary(2); err != nil {
					t.Errorf("leave: %v", err)
				}
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := batchedBoundaryReport(t, 1, 1, tc.script)
			for _, c := range [][2]int{{4, 1}, {4, 2}, {8, 3}} {
				got := batchedBoundaryReport(t, c[0], c[1], tc.script)
				if got != want {
					t.Fatalf("S=%d W=%d diverged from S=1:\n--- S=1\n%s\n--- S=%d W=%d\n%s",
						c[0], c[1], want, c[0], c[1], got)
				}
			}
		})
	}
}

func mustJoin(t *testing.T, ss *ShardedSim, p geom.Point) {
	t.Helper()
	if _, err := ss.Join(p); err != nil {
		t.Errorf("join %v: %v", p, err)
	}
}

// TestBatchedDeferralActuallyDefers guards the tentpole against silent
// degeneration: a same-shard admission must be queued for the barrier
// flush, not executed inline. A later batch event in the same drain
// observes the pending completion.
func TestBatchedDeferralActuallyDefers(t *testing.T) {
	cfg := DefaultConfig(Compact)
	cfg.HeartbeatPeriod = 2 * sim.Second
	cfg.BatchedAdmission = true
	ss := NewShardedSim(4, 2, 2, cfg)
	defer ss.Close()
	ctl := ss.ctl()
	L := sim.Time(100 * sim.Millisecond)
	ctl.At(L, func(sim.Time) { mustJoin(t, ss, geom.Point{0.9, 0.9}) })
	ctl.At(L+1, func(sim.Time) { mustJoin(t, ss, geom.Point{0.8, 0.8}) })
	queued := -1
	ctl.At(L+2, func(sim.Time) { queued = ss.pendCount })
	ss.RunUntil(sim.Time(sim.Second))
	if queued <= 0 {
		t.Fatalf("pendCount = %d mid-drain — no completion was deferred, the parallel path never ran", queued)
	}
}

// TestBatchedCrossShardTakeoverActuallyCrosses guards the corpus case
// above against silently degenerating: at S=4 the fail's taker must
// really live on a different shard than the victim.
func TestBatchedCrossShardTakeoverActuallyCrosses(t *testing.T) {
	cfg := DefaultConfig(Compact)
	cfg.HeartbeatPeriod = 2 * sim.Second
	cfg.BatchedAdmission = true
	ss := NewShardedSim(4, 2, 2, cfg)
	defer ss.Close()
	if _, err := ss.Join(geom.Point{0.05, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Join(geom.Point{0.9, 0.5}); err != nil {
		t.Fatal(err)
	}
	plan, ok := ss.Ov.Takeover(1)
	if !ok {
		t.Fatal("no takeover plan for node 1")
	}
	if ss.shardID(plan.Taker.ID) == ss.shardID(1) {
		t.Fatalf("taker %d and victim 1 share shard %d — case does not cross a boundary",
			plan.Taker.ID, ss.shardID(1))
	}
}
