package proto

import (
	"testing"

	canpkg "hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

func zone2(lox, loy, hix, hiy float64) geom.Zone {
	return geom.Zone{Lo: geom.Point{lox, loy}, Hi: geom.Point{hix, hiy}}
}

func TestViewDirectAddsAndRefreshes(t *testing.T) {
	v := newView()
	r := Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}
	v.direct(r, 100)
	if !v.has(1) {
		t.Fatal("direct record not added")
	}
	if v.entries[1].lastHeard != 100 {
		t.Fatal("lastHeard not set")
	}
	r.Zone = zone2(0, 0, 0.25, 1)
	v.direct(r, 200)
	if z, _ := v.zoneOf(1); !z.Equal(r.Zone) {
		t.Fatal("direct update did not refresh zone")
	}
	if v.entries[1].lastHeard != 200 {
		t.Fatal("lastHeard not refreshed")
	}
}

func TestViewIndirectDoesNotRefreshLiveness(t *testing.T) {
	v := newView()
	r := Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}
	v.direct(r, 100)
	v.indirect(Record{ID: 1, Zone: zone2(0, 0, 0.4, 1)}, 500, 450)
	if v.entries[1].lastHeard != 100 {
		t.Fatal("indirect evidence must not refresh lastHeard")
	}
	if z, _ := v.zoneOf(1); z.Hi[0] != 0.4 {
		t.Fatal("indirect evidence must update the zone")
	}
}

func TestViewIndirectAddsWithGraceTime(t *testing.T) {
	v := newView()
	v.indirect(Record{ID: 2, Zone: zone2(0.5, 0, 1, 1)}, 500, 450)
	if !v.has(2) {
		t.Fatal("indirect record not added")
	}
	if v.entries[2].lastHeard != 450 {
		t.Fatalf("grace lastHeard = %d, want 450", v.entries[2].lastHeard)
	}
}

func TestViewTombstoneBlocksIndirectResurrection(t *testing.T) {
	v := newView()
	v.direct(Record{ID: 3, Zone: zone2(0, 0, 1, 0.5)}, 100)
	v.bury(3, 1000)
	if v.has(3) {
		t.Fatal("bury did not remove the entry")
	}
	v.indirect(Record{ID: 3, Zone: zone2(0, 0, 1, 0.5)}, 500, 400)
	if v.has(3) {
		t.Fatal("tombstoned node resurrected by indirect evidence")
	}
	// Direct evidence overrides the tombstone (the node itself spoke).
	v.direct(Record{ID: 3, Zone: zone2(0, 0, 1, 0.5)}, 600)
	if !v.has(3) {
		t.Fatal("direct evidence must override a tombstone")
	}
}

func TestViewTombstoneExpires(t *testing.T) {
	v := newView()
	v.bury(4, 1000)
	if !v.tombstoned(4, 999) {
		t.Fatal("tombstone should hold before expiry")
	}
	if v.tombstoned(4, 1000) {
		t.Fatal("tombstone should expire at its deadline")
	}
	v.indirect(Record{ID: 4, Zone: zone2(0, 0, 1, 1)}, 1001, 900)
	if !v.has(4) {
		t.Fatal("expired tombstone must allow re-adding")
	}
}

func TestViewExpire(t *testing.T) {
	v := newView()
	v.direct(Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}, 100)
	v.direct(Record{ID: 2, Zone: zone2(0.5, 0, 1, 1)}, 300)
	// Only active entries are liveness-checked.
	v.markRanked([]canpkg.NodeID{1, 2})
	gone := v.expire(200, -1<<60, 999)
	if len(gone) != 1 || gone[0] != 1 {
		t.Fatalf("expire removed %v, want [1]", gone)
	}
	if v.has(1) || !v.has(2) {
		t.Fatal("wrong entries removed")
	}
	if !v.tombstoned(1, 500) {
		t.Fatal("expired entry not tombstoned")
	}
}

func TestViewIDsSorted(t *testing.T) {
	v := newView()
	for _, id := range []canpkg.NodeID{5, 1, 3} {
		v.direct(Record{ID: id, Zone: zone2(0, 0, 1, 1)}, 0)
	}
	ids := v.ids()
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("ids = %v, want sorted", ids)
	}
}

func TestUncoveredFaceDetectsHole(t *testing.T) {
	// Self owns the left half; the right half is split between two
	// neighbors stacked vertically.
	self := zone2(0, 0, 0.5, 1)
	v := newView()
	v.direct(Record{ID: 1, Zone: zone2(0.5, 0, 1, 0.5)}, 0)
	if !v.uncoveredFace(self) {
		t.Fatal("missing upper-right neighbor not detected")
	}
	v.direct(Record{ID: 2, Zone: zone2(0.5, 0.5, 1, 1)}, 0)
	if v.uncoveredFace(self) {
		t.Fatal("fully covered face reported as uncovered")
	}
}

func TestUncoveredFaceIgnoresOuterFaces(t *testing.T) {
	// A node owning the whole space has no inner faces at all.
	v := newView()
	if v.uncoveredFace(zone2(0, 0, 1, 1)) {
		t.Fatal("outer faces of the unit cube must not count as uncovered")
	}
}

func TestUncoveredFaceLowSide(t *testing.T) {
	self := zone2(0.5, 0, 1, 1)
	v := newView()
	if !v.uncoveredFace(self) {
		t.Fatal("uncovered low face not detected")
	}
	v.direct(Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}, 0)
	if v.uncoveredFace(self) {
		t.Fatal("covered low face reported as uncovered")
	}
}

func TestPassiveEntriesSurviveExpiry(t *testing.T) {
	v := newView()
	v.direct(Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}, 100)
	// Not ranked by us, not ranking us: passive cached hint.
	if gone := v.expire(200, -1<<60, 999); len(gone) != 0 {
		t.Fatalf("passive entry expired: %v", gone)
	}
	if !v.has(1) {
		t.Fatal("passive entry removed")
	}
	// Once promoted (ranked), silence kills it.
	v.markRanked([]canpkg.NodeID{1})
	if gone := v.expire(200, -1<<60, 999); len(gone) != 1 {
		t.Fatal("promoted silent entry not expired")
	}
}

func TestReciprocalsTracksRankedBy(t *testing.T) {
	v := newView()
	v.direct(Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}, 100)
	v.direct(Record{ID: 2, Zone: zone2(0.5, 0, 1, 1)}, 100)
	v.rankedBy(1, 150)
	got := v.reciprocals(120)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("reciprocals = %v, want [1]", got)
	}
	if len(v.reciprocals(200)) != 0 {
		t.Fatal("stale ranking counted as reciprocal")
	}
}

func TestRankedRespectsPerFaceCap(t *testing.T) {
	self := zone2(0, 0, 0.5, 1)
	v := newView()
	// Three abutters on the +x face with different overlaps.
	v.direct(Record{ID: 1, Zone: zone2(0.5, 0, 1, 0.6)}, 0)   // overlap 0.6
	v.direct(Record{ID: 2, Zone: zone2(0.5, 0.6, 1, 0.9)}, 0) // overlap 0.3
	v.direct(Record{ID: 3, Zone: zone2(0.5, 0.9, 1, 1)}, 0)   // overlap 0.1
	got := v.ranked(self, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ranked = %v, want [1 2] (top overlaps)", got)
	}
	if got := v.ranked(self, 0); len(got) != 3 {
		t.Fatalf("perFace=0 should return all entries, got %v", got)
	}
	if got := v.ranked(self, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("perFace=1 = %v, want [1]", got)
	}
}

// TestViewExpireDeadlineBoundary pins the exclusive-deadline rule on
// both sides: a record heard exactly at the deadline (timestamped
// precisely timeout ago) survives the tick, and one tick older expires.
// The same edge holds for the passive horizon and for the lastRankedBy
// activity test, so every liveness comparison in expire shares one
// boundary convention.
func TestViewExpireDeadlineBoundary(t *testing.T) {
	const deadline = 1000

	v := newView()
	v.direct(Record{ID: 1, Zone: zone2(0, 0, 0.5, 1)}, deadline)   // exactly at the deadline
	v.direct(Record{ID: 2, Zone: zone2(0.5, 0, 1, 1)}, deadline-1) // one tick older
	v.markRanked([]canpkg.NodeID{1, 2})
	if gone := v.expire(deadline, -1<<60, 9999); len(gone) != 1 || gone[0] != 2 {
		t.Fatalf("expire removed %v, want exactly [2]", gone)
	}
	if !v.has(1) {
		t.Fatal("record heard exactly timeout ago expired; the deadline must be exclusive")
	}
	// The surviving edge record is strictly older on the next tick.
	v.markRanked([]canpkg.NodeID{1})
	if gone := v.expire(deadline+1, -1<<60, 9999); len(gone) != 1 || gone[0] != 1 {
		t.Fatalf("next tick removed %v, want [1]", gone)
	}

	// lastRankedBy == deadline still counts as active (>=): the entry is
	// liveness-checked, not parked as a passive hint.
	v = newView()
	v.direct(Record{ID: 3, Zone: zone2(0, 0, 0.5, 1)}, deadline-1)
	v.entries[3].lastRankedBy = deadline
	if gone := v.expire(deadline, -1<<60, 9999); len(gone) != 1 || gone[0] != 3 {
		t.Fatalf("rankedBy-at-deadline entry not treated as active: gone=%v", gone)
	}

	// Passive horizon shares the convention: at the deadline survives,
	// one older silently drops (no tombstone). The entries are passive
	// because they are unranked in both directions (lastRankedBy zero is
	// older than any positive active deadline).
	v = newView()
	v.direct(Record{ID: 4, Zone: zone2(0, 0, 0.5, 1)}, deadline)
	v.direct(Record{ID: 5, Zone: zone2(0.5, 0, 1, 1)}, deadline-1)
	if gone := v.expire(deadline+1, deadline, 9999); len(gone) != 0 {
		t.Fatalf("passive pruning buried %v", gone)
	}
	if !v.has(4) || v.has(5) {
		t.Fatal("passive horizon boundary off by one")
	}
	if v.tombstoned(5, deadline+1) {
		t.Fatal("passive removal must be silent, not tombstoned")
	}
}

// TestGraceExpiryBoundary ties the half-timeout grace credit to the
// expiry deadline through a real Config: an indirectly learned entry
// admitted at graceTime(now) survives heartbeat ticks for exactly half
// a timeout, then expires — consistently with a direct record heard at
// the same instant.
func TestGraceExpiryBoundary(t *testing.T) {
	cfg := fastConfig(Vanilla)
	s := NewSim(2, cfg)
	a, err := s.Join(geom.Point{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Host(a.ID)

	now := sim.Time(100 * cfg.HeartbeatPeriod)
	grace := h.graceTime(now)
	half := sim.Time(cfg.timeout() / 2)
	if grace != now-half {
		t.Fatalf("graceTime = %d, want now-timeout/2 = %d", grace, now-half)
	}

	check := func(tick sim.Time, wantAlive bool) {
		t.Helper()
		v := newView()
		v.indirect(Record{ID: 9, Zone: zone2(0.5, 0, 1, 1)}, now, grace)
		v.markRanked([]canpkg.NodeID{9})
		v.expire(tick-sim.Time(cfg.timeout()), -1<<60, tick+1)
		if v.has(9) != wantAlive {
			t.Fatalf("graced entry at tick %d: alive=%v, want %v", tick, v.has(9), wantAlive)
		}
	}
	// Deadline exactly at the grace timestamp: survives (exclusive rule).
	check(now+half, true)
	// First strictly later deadline: expires.
	check(now+half+1, false)
}
