package proto

import (
	"runtime"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/netsim"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// ShardedSim runs the maintenance protocol over a sharded engine: the
// CAN keyspace is partitioned into S contiguous slices along dimension
// 0, each owning a per-shard Sim (hosts, message pools, transport facet
// and event queue), executed in parallel under conservative time
// windows bounded by the netsim latency.
//
// The shard count S is a model parameter like the seed: it fixes which
// shard every node lands on and therefore the run's exact event
// interleavings. The worker count W is an execution parameter only —
// reports are byte-identical for every W (see sim.ShardedEngine).
//
// What runs where:
//
//   - Steady-state heartbeat traffic (ticks, full/compact/request/
//     announce deliveries) is shard-local or neighbor-local and runs in
//     parallel windows. CAN neighbors are geometrically adjacent, so
//     with contiguous shard slices the cross-shard fraction is the
//     boundary surface, not the volume.
//   - Churn (join/leave/fail), takeover continuations and oracle sweeps
//     run on the control plane with all shards quiesced: they mutate
//     the shared overlay and hosts across shards.
//
// The protocol requires HeartbeatPeriod > Latency (also what the
// heartbeat double-buffer requires): it keeps every in-flight alias of
// sender-owned buffers at least one full window away from its rebuild.
type ShardedSim struct {
	SE  *sim.ShardedEngine
	Net *netsim.ShardedNet
	Ov  *can.Overlay
	Cfg Config

	shards    []*Sim
	nodeShard map[can.NodeID]int // assigned at join, retained past departure

	// Batched-admission state (Config.BatchedAdmission; see batched.go).
	// pendGroups holds deferred per-shard join/leave completions in batch
	// order; pendRefs is the union of their touch sets (the reference
	// rule's index); pendCount the total queued across shards.
	batched    bool
	pendGroups [][]func()
	pendRefs   map[can.NodeID]struct{}
	pendCount  int
}

// NewShardedSim creates an S-shard protocol simulation of a
// d-dimensional CAN. workers ≤ 0 uses GOMAXPROCS (results do not depend
// on it).
func NewShardedSim(shards, workers, dims int, cfg Config) *ShardedSim {
	if cfg.HeartbeatPeriod <= cfg.Latency {
		panic("proto: sharded simulation requires HeartbeatPeriod > Latency")
	}
	se := sim.NewSharded(shards, cfg.Latency)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	se.SetWorkers(workers)
	snet := netsim.NewSharded(se, cfg.Latency)
	ss := &ShardedSim{
		SE:        se,
		Net:       snet,
		Ov:        can.NewOverlay(dims),
		Cfg:       cfg,
		shards:    make([]*Sim, shards),
		nodeShard: make(map[can.NodeID]int),
	}
	// One phase stream shared by every shard, with the serial Sim's
	// split label. It is drawn from only inside completeJoin — a
	// control-plane procedure, so draws happen in join order, which is
	// fixed by config and seed alone. That makes every host's heartbeat
	// phase independent of S (and of W): a node gets the same phase it
	// would get in any other shard partition of the same run.
	phase := rng.NewSplit(cfg.Seed, "proto.phase")
	for i := range ss.shards {
		ss.shards[i] = &Sim{
			Eng:    se.Shard(i),
			Net:    snet.Facet(i),
			Ov:     ss.Ov,
			Cfg:    cfg,
			hosts:  make(map[can.NodeID]*Host),
			phase:  phase,
			parent: ss,
			shard:  i,
		}
	}
	snet.SetShardOf(ss.shardID)
	snet.SetDeliverable(func(dst can.NodeID) bool {
		h := ss.hostOf(dst)
		return h != nil && h.alive
	})
	if cfg.BatchedAdmission {
		ss.batched = true
		ss.pendGroups = make([][]func(), shards)
		ss.pendRefs = make(map[can.NodeID]struct{})
		snet.SetBatchedDelivery(true)
		// Queued completions must land before the window containing
		// their batch slot runs (ticks and deliveries inside it observe
		// the admitted state), so the engine flushes them as part of
		// every batch drain.
		se.SetAfterBatchDrain(ss.flushPending)
	}
	// Adaptive windows (sim.WindowAdaptive) may only widen while the
	// model holds no deferred barrier work: pending batched-admission
	// completions flush at window barriers, so widening across them
	// would move their flush points. Strict mode never holds any.
	se.SetWindowAdvisor(ss.batchQuiescent)
	return ss
}

// batchQuiescent reports whether the batch plane holds no deferred
// admission completions — the model half of adaptive-window
// eligibility.
func (ss *ShardedSim) batchQuiescent() bool { return ss.pendCount == 0 }

// Shards returns the shard count S.
func (ss *ShardedSim) Shards() int { return len(ss.shards) }

// Shard returns shard i's Sim (tests and telemetry).
func (ss *ShardedSim) Shard(i int) *Sim { return ss.shards[i] }

// Close stops the engine's worker goroutines.
func (ss *ShardedSim) Close() { ss.SE.Close() }

// shardOfPoint maps an overlay point to its shard: S contiguous slices
// of dimension 0. The assignment is made once at join and never
// migrates, so it is a pure function of the join coordinate.
func (ss *ShardedSim) shardOfPoint(p geom.Point) int {
	sh := int(p[0] * float64(len(ss.shards)))
	if sh < 0 {
		sh = 0
	}
	if sh >= len(ss.shards) {
		sh = len(ss.shards) - 1
	}
	return sh
}

// shardID returns the shard owning node id (0 for ids never admitted —
// the facet's liveness check then drops the message, mirroring the
// serial unknown-destination path).
func (ss *ShardedSim) shardID(id can.NodeID) int {
	if sh, ok := ss.nodeShard[id]; ok {
		return sh
	}
	return 0
}

// hostOf returns the live host for id, or nil.
func (ss *ShardedSim) hostOf(id can.NodeID) *Host {
	return ss.shards[ss.shardID(id)].hosts[id]
}

// simOf returns the Sim owning id's shard.
func (ss *ShardedSim) simOf(id can.NodeID) *Sim {
	return ss.shards[ss.shardID(id)]
}

// Host returns the protocol host for a live node, or nil. Under batched
// admission the host's view may have pending completions; they are
// flushed so callers observe settled state.
func (ss *ShardedSim) Host(id can.NodeID) *Host {
	ss.flushPendingIfBatched()
	return ss.hostOf(id)
}

// Overlay returns the shared ground-truth overlay (scenario engines and
// telemetry hang capability lookups off it).
func (ss *ShardedSim) Overlay() *can.Overlay { return ss.Ov }

// flushPendingIfBatched applies the read rule: oracle and telemetry
// readers of protocol state settle the completion queue first. No-op in
// strict mode. Control-plane (or quiesced-engine) use only.
func (ss *ShardedSim) flushPendingIfBatched() {
	if ss.batched {
		ss.flushPending()
	}
}

// AliveHosts returns the number of live protocol hosts across shards.
func (ss *ShardedSim) AliveHosts() int {
	n := 0
	for _, s := range ss.shards {
		n += len(s.hosts)
	}
	return n
}

// HostIDs returns all live host ids in ascending order.
func (ss *ShardedSim) HostIDs() []can.NodeID {
	ids := make([]can.NodeID, 0, ss.AliveHosts())
	for _, s := range ss.shards {
		for id := range s.hosts {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MeanViewSize reports the mean believed-neighbor count across all live
// hosts.
func (ss *ShardedSim) MeanViewSize() float64 {
	ss.flushPendingIfBatched()
	total, hosts := 0, 0
	for _, s := range ss.shards {
		hosts += len(s.hosts)
		for _, h := range s.hosts {
			total += len(h.view.entries)
		}
	}
	if hosts == 0 {
		return 0
	}
	return float64(total) / float64(hosts)
}

// ShardAliveHosts returns shard i's live host count. Control-plane (or
// quiesced-engine) use only — the telemetry facet reader.
func (ss *ShardedSim) ShardAliveHosts(i int) int { return len(ss.shards[i].hosts) }

// ShardViewStats returns shard i's total believed-neighbor entries and
// its live host count, the per-facet numerator and denominator of the
// global mean view size (Σentries/Σhosts == MeanViewSize). Control-plane
// use only.
func (ss *ShardedSim) ShardViewStats(i int) (entries, hosts int) {
	ss.flushPendingIfBatched()
	s := ss.shards[i]
	for _, h := range s.hosts {
		entries += len(h.view.entries)
	}
	return entries, len(s.hosts)
}

// ShardHeartbeatHorizon returns the earliest scheduled heartbeat tick
// among shard i's live hosts — the shard's steady-state event horizon,
// the bound adaptive windows widen toward when nothing else is pending.
// ok is false when the shard has no live host with a scheduled tick.
// Control-plane (or quiesced-engine) use only; under batched admission
// it flushes pending completions first (read rule), since an admitted
// host's first tick is part of its completion.
func (ss *ShardedSim) ShardHeartbeatHorizon(i int) (sim.Time, bool) {
	ss.flushPendingIfBatched()
	var m sim.Time
	ok := false
	for _, h := range ss.shards[i].hosts {
		if t, valid := h.tick.At(); valid && (!ok || t < m) {
			m, ok = t, true
		}
	}
	return m, ok
}

// Join admits a capability-less node at point p (control plane).
func (ss *ShardedSim) Join(p geom.Point) (*can.Node, error) {
	return ss.JoinNode(p, nil)
}

// JoinNode admits a node at point p: the overlay splits, the node is
// assigned its shard (before any message routes by it), and the owning
// shard's Sim runs the protocol side of the admission. Control-plane
// only (batch plane under batched admission).
func (ss *ShardedSim) JoinNode(p geom.Point, caps *resource.NodeCaps) (*can.Node, error) {
	if ss.batched {
		return ss.joinNodeBatched(p, caps)
	}
	owner := ss.Ov.Owner(p)
	node, err := ss.Ov.Join(p, caps)
	if err != nil {
		return nil, err
	}
	sh := ss.shardOfPoint(p)
	ss.nodeShard[node.ID] = sh
	return ss.shards[sh].completeJoin(node, owner), nil
}

// LeaveVoluntary removes a node gracefully (control plane; batch plane
// under batched admission).
func (ss *ShardedSim) LeaveVoluntary(id can.NodeID) error {
	if ss.batched {
		return ss.leaveBatched(id)
	}
	return ss.simOf(id).LeaveVoluntary(id)
}

// Fail removes a node silently (control plane); the takeover
// continuation is scheduled on the churn engine (control or batch).
func (ss *ShardedSim) Fail(id can.NodeID) error {
	if ss.batched {
		return ss.failBatched(id)
	}
	return ss.simOf(id).Fail(id)
}

// BrokenLinks runs the Figure 7 oracle sweep, shards in parallel: after
// a serial cache-warm pass every input (overlay views, host views, the
// shard map) is read-only, each worker sweeps only nodes of shards it
// owns, and the partial sums merge in shard order — so the count equals
// the serial sweep's exactly. Control-plane (or quiesced-engine) use
// only.
func (ss *ShardedSim) BrokenLinks() (missing, stale int) {
	ss.flushPendingIfBatched()
	nodes := ss.Ov.Nodes()
	ss.Ov.WarmViews()
	perFace := ss.Cfg.MaxPerFace
	type part struct{ missing, stale int }
	parts := make([]part, len(ss.shards))
	ss.SE.ParallelShards(func(sh int) {
		s := ss.shards[sh]
		var miss, st int
		for _, n := range nodes {
			if ss.shardID(n.ID) != sh {
				continue
			}
			h := s.hosts[n.ID]
			nbrs := ss.Ov.BoundedNeighborIDs(n.ID, perFace)
			if h == nil {
				miss += len(nbrs)
				continue
			}
			for _, nbID := range nbrs {
				nb := ss.Ov.Node(nbID)
				z, ok := h.view.zoneOf(nbID)
				switch {
				case !ok:
					miss++
				case !z.Equal(nb.Zone):
					st++
				}
			}
		}
		parts[sh] = part{miss, st}
	})
	for _, p := range parts {
		missing += p.missing
		stale += p.stale
	}
	return missing, stale
}

// ctl implements the churn-driver hook: churn belongs on the control
// plane, or the batch plane under batched admission.
func (ss *ShardedSim) ctl() *sim.Engine {
	if ss.batched {
		return ss.SE.Batch()
	}
	return ss.SE.Global()
}

// dims implements the churn-driver hook.
func (ss *ShardedSim) dims() int { return ss.Ov.Dims() }

// Run drains every event queue. Completions queued by direct admissions
// made between drains settle first.
func (ss *ShardedSim) Run() {
	ss.flushPendingIfBatched()
	ss.SE.Run()
}

// RunUntil fires events with time ≤ deadline and aligns all clocks to
// it.
func (ss *ShardedSim) RunUntil(deadline sim.Time) {
	ss.flushPendingIfBatched()
	ss.SE.RunUntil(deadline)
}
