// Package proto implements the CAN maintenance protocols of Section IV:
// vanilla heartbeats (full neighbor tables to every neighbor), compact
// heartbeats (full tables only to the split-history-predetermined
// take-over node, aggregated load summaries to everyone else), and
// adaptive heartbeats (compact plus an on-demand full-update request
// when a node detects a broken link on one of its zone edges).
//
// The package separates ground truth from knowledge. The can.Overlay
// records who actually owns which zone at every instant; each live node
// additionally runs a Host holding its local view — the neighbor table
// it has learned through the protocol. Views lag reality when joins,
// leaves and failures overlap within a heartbeat period; the oracle in
// Sim.BrokenLinks measures exactly that lag, which is the quantity
// plotted in Figure 7. Message counts and volumes flow through netsim
// and produce Figure 8.
package proto

import (
	"fmt"

	"hetgrid/internal/sim"
)

// Scheme selects the heartbeat protocol.
type Scheme int

const (
	// Vanilla sends the sender's complete neighbor table to every
	// neighbor in every heartbeat: O(d²) expected volume per node.
	Vanilla Scheme = iota
	// Compact sends the complete table only to the sender's take-over
	// node; other neighbors receive the sender's own record plus
	// per-dimension aggregated load: O(d) expected volume.
	Compact
	// Adaptive is Compact plus broken-link detection: a node that finds
	// one of its zone faces uncovered by known neighbors broadcasts a
	// full-update request, and each neighbor replies with its complete
	// table.
	Adaptive
)

// String returns the scheme name used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Vanilla:
		return "vanilla"
	case Compact:
		return "compact"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config holds protocol parameters.
type Config struct {
	Scheme Scheme
	// HeartbeatPeriod is the interval between a node's heartbeat rounds.
	HeartbeatPeriod sim.Duration
	// TimeoutPeriods is the number of heartbeat periods of silence after
	// which a neighbor is presumed dead (and after which the take-over
	// node for a failed node executes the take-over).
	TimeoutPeriods float64
	// TombstonePeriods is how long a removed neighbor is remembered so
	// that stale third-party records cannot resurrect it.
	TombstonePeriods float64
	// Latency is the one-way message latency.
	Latency sim.Duration
	// RequestMinGapPeriods throttles adaptive full-update requests: a
	// host issues at most one request per this many periods.
	RequestMinGapPeriods float64
	// PassiveTTLPeriods bounds how long a passive cached record (a
	// neighbor hint that is neither ranked by us nor ranking us) is
	// retained without any refresh. Stale hints are pure noise — and
	// without a TTL, views grow monotonically under churn.
	PassiveTTLPeriods float64
	// MaxPerFace bounds the tracked neighbor set: per face (dimension ×
	// direction) a node actively maintains at most this many abutters,
	// chosen by largest shared-face measure. This is what keeps
	// per-node state and messaging O(d) — the premise of the paper's
	// Section IV-A cost analysis — in regimes (n ≪ 2^d) where raw
	// face-sharing adjacency would approach all-pairs. Nodes still
	// heartbeat anyone who recently heartbeated them (reciprocal
	// links), so asymmetric rankings cannot silently go stale. Zero
	// disables the bound (full adjacency tracking).
	MaxPerFace int
	// Seed drives heartbeat phase offsets.
	Seed int64
	// BatchedAdmission moves churn off the sharded control plane: joins,
	// leaves and failures issued against a ShardedSim are prepared on the
	// batch plane (overlay mutation, shard assignment, RNG draws) and
	// their protocol-state completions are queued per owning shard, then
	// executed by the worker pool at the next window barrier; only
	// cross-shard admissions fall back to inline serial execution. The
	// batched mode keeps the (S, W)-invariance contract — same seed ⇒
	// byte-identical reports for any shard partition and worker count —
	// but quantizes protocol side-effects to window barriers, so its
	// outputs may differ from the strict (default) mode, which remains
	// byte-identical to the serial Sim. Ignored by the serial Sim.
	// See DESIGN.md §14.
	BatchedAdmission bool
}

// DefaultConfig returns the parameters used in the evaluation: 60 s
// heartbeats, 2.5-period timeout, 100 ms latency.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme:               scheme,
		HeartbeatPeriod:      60 * sim.Second,
		TimeoutPeriods:       2.5,
		TombstonePeriods:     3,
		Latency:              100 * sim.Millisecond,
		RequestMinGapPeriods: 1,
		PassiveTTLPeriods:    25,
		MaxPerFace:           2,
		Seed:                 1,
	}
}

func (c Config) passiveTTL() sim.Duration {
	return sim.Duration(float64(c.HeartbeatPeriod) * c.PassiveTTLPeriods)
}

func (c Config) timeout() sim.Duration {
	return sim.Duration(float64(c.HeartbeatPeriod) * c.TimeoutPeriods)
}

func (c Config) tombstoneTTL() sim.Duration {
	return sim.Duration(float64(c.HeartbeatPeriod) * c.TombstonePeriods)
}

func (c Config) requestMinGap() sim.Duration {
	return sim.Duration(float64(c.HeartbeatPeriod) * c.RequestMinGapPeriods)
}

// Wire format sizing (Section IV-A's cost model). A neighbor record
// carries a node id, a load digest, and its zone corners quantized to 2
// bytes per bound per dimension — the compact encoding a production
// implementation ships (full-precision coordinates only matter
// locally). A record is therefore nearly constant-size, so a full table
// of O(d) neighbors costs O(d) bytes and a vanilla node's volume per
// minute is O(d)·O(d) = O(d²), while a compact heartbeat — one record
// plus a fixed-size aggregated-load digest — keeps per-node volume
// close to O(d), matching the paper's analysis.
const (
	headerBytes     = 32
	recordFixed     = 16 // id + load digest
	recordPerDim    = 4  // quantized zone corners (2×2 bytes)
	aggFixed        = 32 // aggregated-load digest header
	aggPerDim       = 2  // quantized per-dimension aggregate
	requestOverhead = 8
)

// RecordBytes is the wire size of one neighbor record in d dimensions.
func RecordBytes(d int) int { return recordFixed + recordPerDim*d }

// FullMessageBytes is the wire size of a heartbeat carrying the
// sender's record plus n neighbor records.
func FullMessageBytes(d, n int) int { return headerBytes + (n+1)*RecordBytes(d) }

// CompactMessageBytes is the wire size of a compact heartbeat: the
// sender's record plus the aggregated-load digest.
func CompactMessageBytes(d int) int { return headerBytes + RecordBytes(d) + aggFixed + aggPerDim*d }

// AnnounceBytes is the wire size of a take-over or join announcement
// (two records: the subject and the new owner).
func AnnounceBytes(d int) int { return headerBytes + 2*RecordBytes(d) }

// RequestBytes is the wire size of a full-update request.
func RequestBytes(d int) int { return headerBytes + RecordBytes(d) + requestOverhead }
