package proto

import (
	"strings"
	"testing"

	"hetgrid/internal/geom"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// massJoinReport grows an overlay by n direct strict-mode admissions
// (no churn driver, no batching) and returns the full battery report.
// Mass join is the densest source of same-instant cross-row mail: every
// completion fans intro messages out *on behalf of the splitting owner*
// through the newcomer's shard facet, so equal-(at,key) entries land in
// different mailbox rows depending on the partition.
func massJoinReport(t *testing.T, shards, workers, n int, horizon sim.Time) string {
	t.Helper()
	cfg := DefaultConfig(Compact)
	cfg.HeartbeatPeriod = 10 * sim.Second
	cfg.Seed = 1
	ss := NewShardedSim(shards, workers, 3, cfg)
	defer ss.Close()
	pts := rng.NewSplit(1, "massjoin")
	for i := 0; i < n; i++ {
		p := geom.Point{pts.Float64(), pts.Float64(), pts.Float64()}
		if _, err := ss.JoinNode(p, nil); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	ss.RunUntil(horizon)
	d := &ChurnDriver{}
	return shardedBatteryReport(ss, ss.Net.Total(), ss.Net.Window(), ss.Net.KindTotal, d, nil)
}

// TestMassJoinShardInvariance pins the serial-phase emission-order
// contract (sim.ShardedEngine's sub key, DESIGN.md §14): posts made
// from serial context must flush in emission order — the serial
// engine's same-instant seq tie-break — not in source-row order, which
// is partition-dependent. Before the fix, S=4 diverged from S=1 at the
// first join fan-out delivery instant (t = latency).
func TestMassJoinShardInvariance(t *testing.T) {
	want := massJoinReport(t, 1, 1, 60, 60*sim.Time(sim.Second))
	for _, c := range [][2]int{{4, 1}, {4, 2}} {
		got := massJoinReport(t, c[0], c[1], 60, 60*sim.Time(sim.Second))
		if got != want {
			wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
			for i := range wl {
				if i >= len(gl) || wl[i] != gl[i] {
					t.Fatalf("S=%d W=%d diverged at line %d:\nS=1: %s\nS=%d: %s", c[0], c[1], i, wl[i], c[0], gl[i])
				}
			}
			t.Fatalf("S=%d W=%d diverged (length)", c[0], c[1])
		}
	}
}
