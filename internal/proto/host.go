package proto

import (
	"slices"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/perf"
	"hetgrid/internal/sim"
)

var cntHeartbeatTicks = perf.NewCounter("proto.heartbeat_ticks")

// Host is the protocol state machine of one live node. It owns the
// node's believed zone, its neighbor view, and the retained copies of
// neighbors' tables used for take-over notification.
type Host struct {
	id   can.NodeID
	zone geom.Zone // the zone this node believes it owns
	view *view
	s    *Sim

	// lastTables holds the most recent full neighbor table received
	// from each node. Under Vanilla every heartbeat refreshes these;
	// under Compact/Adaptive only full messages addressed to this node
	// as a take-over target (or full-update replies) do.
	lastTables map[can.NodeID]*savedTable

	lastRequest sim.Time // last adaptive full-update request
	tick        sim.EventID
	alive       bool

	// selfRec is the host's advertised record, rebuilt only when the
	// zone changes. Zones are immutable by convention (always replaced
	// via Clone, never mutated in place), so sharing it with receivers
	// is safe and saves the two point clones per tick selfRecord used
	// to cost.
	selfRec Record

	// targetsBuf is the per-round heartbeat target list (ranked ∪
	// reciprocals), rebuilt into the same backing array every tick.
	targetsBuf []can.NodeID

	// tableBuf double-buffers the advertised table: messages sent this
	// round alias one buffer while it is in flight, and the other is
	// rebuilt next round. Safe while the network latency is below the
	// heartbeat period (onTick falls back to allocating otherwise).
	tableBuf  [2][]Record
	tableFlip int
}

func newHost(s *Sim, id can.NodeID, zone geom.Zone) *Host {
	h := &Host{
		id:          id,
		zone:        zone.Clone(),
		view:        newView(),
		s:           s,
		lastTables:  make(map[can.NodeID]*savedTable),
		lastRequest: -1 << 60,
		alive:       true,
	}
	h.selfRec = Record{ID: id, Zone: h.zone}
	return h
}

// ID returns the host's node id.
func (h *Host) ID() can.NodeID { return h.id }

// Zone returns the zone the host believes it owns.
func (h *Host) Zone() geom.Zone { return h.zone }

// Knows reports whether the host's view contains the given node.
func (h *Host) Knows(id can.NodeID) bool { return h.view.has(id) }

// ViewSize returns the number of believed neighbors.
func (h *Host) ViewSize() int { return len(h.view.entries) }

// selfRecord is the record the host advertises about itself. The zone
// is shared, not cloned: zones are never mutated in place.
func (h *Host) selfRecord() Record { return h.selfRec }

// scheduleFirstTick starts the heartbeat loop with a random phase in
// [0, period) so the population's heartbeats interleave.
func (h *Host) scheduleFirstTick(phase sim.Duration) {
	h.tick = h.s.Eng.AfterCall(phase, h)
}

// scheduleFirstTickAt is scheduleFirstTick with an absolute instant, for
// batched-admission code running at a window barrier: the shard clock
// there lags the logical admission time by a partition-dependent
// amount, so the tick must be pinned to admission time + phase rather
// than measured from the clock.
func (h *Host) scheduleFirstTickAt(at sim.Time) {
	h.tick = h.s.Eng.AtCall(at, h)
}

// Call fires the heartbeat tick; Host is its own sim.Caller so the
// periodic reschedule does not allocate a closure per round.
func (h *Host) Call(now sim.Time) { h.onTick(now) }

func (h *Host) onTick(now sim.Time) {
	if !h.alive {
		return
	}
	cntHeartbeatTicks.Inc()
	cfg := &h.s.Cfg

	// 1. Expire neighbors that have gone silent. A silent disappearance
	// (no take-over announcement explained it) is itself a broken-link
	// signal for the adaptive scheme. Deadlines are exclusive (see
	// view.expire): a record heard exactly timeout ago survives this
	// tick, matching the half-timeout grace rule for indirect entries.
	passiveDeadline := now - sim.Time(cfg.passiveTTL())
	if cfg.PassiveTTLPeriods <= 0 {
		passiveDeadline = -1 << 60 // no passive expiry
	}
	expired := h.view.expire(now-sim.Time(cfg.timeout()), passiveDeadline, now.Add(cfg.tombstoneTTL()))
	// Retained third-party tables from senders we no longer hear are
	// equally stale; prune them on the same horizon.
	for id, st := range h.lastTables {
		if st.at < passiveDeadline {
			delete(h.lastTables, id)
		}
	}

	// 2. Send heartbeats to the tracked neighbor set: the per-face
	// top-overlap abutters plus reciprocal links (anyone who recently
	// heartbeated us). Under bounded tracking this is what keeps both
	// the send list and the advertised table O(d).
	takerID := can.NodeID(-1)
	if plan, ok := h.s.Ov.Takeover(h.id); ok {
		takerID = plan.Taker.ID
	}
	d := h.s.Ov.Dims()
	self := h.selfRecord()
	ranked := h.view.ranked(h.zone, cfg.MaxPerFace)
	h.view.markRanked(ranked)
	reciprocalSince := now - sim.Time(float64(cfg.HeartbeatPeriod)*1.5)
	targets := mergeSortedIDs(h.targetsBuf[:0], ranked, h.view.reciprocals(reciprocalSince))
	h.targetsBuf = targets

	// Messages sent below alias table until they deliver; the double
	// buffer hands them a round's exclusive ownership, which is enough
	// while latency stays under the heartbeat period.
	var table []Record
	if sim.Duration(cfg.Latency) < cfg.HeartbeatPeriod {
		buf := h.tableBuf[h.tableFlip][:0]
		h.tableFlip ^= 1
		table = h.view.recordsOfInto(buf, targets)
		h.tableBuf[h.tableFlip^1] = table
	} else {
		table = h.view.recordsOf(targets)
	}

	// ranked and targets are both ascending, so ranked membership is a
	// single merged walk rather than a per-round set.
	ri := 0
	isRanked := func(nb can.NodeID) bool {
		for ri < len(ranked) && ranked[ri] < nb {
			ri++
		}
		return ri < len(ranked) && ranked[ri] == nb
	}

	switch cfg.Scheme {
	case Vanilla:
		for _, nb := range targets {
			h.s.sendFull(h.id, nb, self, table, isRanked(nb))
		}
	case Compact, Adaptive:
		sentToTaker := false
		for _, nb := range targets {
			if nb == takerID {
				h.s.sendFull(h.id, nb, self, table, isRanked(nb))
				sentToTaker = true
			} else {
				h.s.sendCompact(h.id, nb, self, d, isRanked(nb))
			}
		}
		// The take-over node is determined by split history and is
		// normally a neighbor; when take-over duty has migrated deeper
		// into the sibling subtree it may not be, and the full update
		// is sent as an extra message.
		if !sentToTaker && takerID >= 0 {
			_, found := slices.BinarySearch(ranked, takerID)
			h.s.sendFull(h.id, takerID, self, table, found)
		}
	}

	// 3. Adaptive broken-link detection: if a face of our zone has lost
	// its known abutters (or, under unbounded tracking, is not fully
	// covered), ask everyone (including the take-over target, our one
	// guaranteed contact) for their tables.
	if cfg.Scheme == Adaptive &&
		now.Sub(h.lastRequest) >= cfg.requestMinGap() &&
		(len(expired) > 0 || h.detectBrokenLink()) {
		h.lastRequest = now
		asked := false
		for _, nb := range targets {
			h.s.sendRequest(h.id, nb, self)
			if nb == takerID {
				asked = true
			}
		}
		if !asked && takerID >= 0 {
			h.s.sendRequest(h.id, takerID, self)
		}
	}

	// 4. Next round.
	h.tick = h.s.Eng.AfterCall(cfg.HeartbeatPeriod, h)
}

// mergeSortedIDs appends the sorted, deduplicated union of two ascending
// id lists into dst — the allocation-free unionIDs for the tick path.
func mergeSortedIDs(dst, a, b []can.NodeID) []can.NodeID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// detectBrokenLink is the adaptive scheme's local test: under bounded
// tracking, some inner face with no known abutter; under unbounded
// tracking, some inner face not fully covered by known zones.
func (h *Host) detectBrokenLink() bool {
	if h.s.Cfg.MaxPerFace > 0 {
		return h.view.emptyFace(h.zone)
	}
	return h.view.uncoveredFace(h.zone)
}

// graceTime is the liveness credit granted to indirectly learned
// entries: half a timeout from now, so they expire soon unless the node
// confirms itself directly. The credit interacts with expiry through
// the same strict-deadline rule as direct records: a graced entry's
// lastHeard of now − timeout/2 keeps it alive through every tick whose
// deadline is ≤ that instant (half a timeout of slack), and the first
// strictly later deadline removes it.
func (h *Host) graceTime(now sim.Time) sim.Time {
	return now - sim.Time(h.s.Cfg.timeout()/2)
}

// receiveFull handles a heartbeat (or full-update reply) carrying the
// sender's complete table. ranked reports whether the sender declared
// that it ranks this node in its bounded tracked set.
func (h *Host) receiveFull(now sim.Time, from Record, table []Record, ranked bool) {
	if !h.alive {
		return
	}
	// Direct evidence about the sender.
	h.integrateSender(now, from)
	if ranked {
		h.view.rankedBy(from.ID, now)
	}
	// Retain the table for take-over duty in a receiver-owned copy: the
	// sender's slice is a double-buffered scratch it will overwrite, so
	// the retained records must live in this host's own buffer (reused
	// across refreshes from the same sender). The zone is aliased, not
	// cloned — zones are immutable by convention.
	st := h.lastTables[from.ID]
	if st == nil {
		st = &savedTable{}
		h.lastTables[from.ID] = st
	}
	st.zone = from.Zone
	st.recs = append(st.recs[:0], table...)
	st.at = now
	// Redundant neighbor information repairs broken links (Figure 2):
	// any record whose zone abuts ours is a neighbor we may be missing.
	// Records already in the view with an unchanged zone need no
	// geometry test — this is the steady-state fast path.
	for _, rec := range table {
		if rec.ID == h.id {
			continue
		}
		if e := h.view.entries[rec.ID]; e != nil && e.rec.Zone.Equal(rec.Zone) {
			continue
		}
		if _, _, ok := h.zone.Abuts(rec.Zone); ok {
			h.view.indirect(rec, now, h.graceTime(now))
		}
	}
}

// receiveCompact handles a compact heartbeat: sender record plus
// aggregated load only.
func (h *Host) receiveCompact(now sim.Time, from Record, ranked bool) {
	if !h.alive {
		return
	}
	h.integrateSender(now, from)
	if ranked {
		h.view.rankedBy(from.ID, now)
	}
}

// integrateSender applies first-hand evidence about a message's sender.
func (h *Host) integrateSender(now sim.Time, from Record) {
	if _, _, ok := h.zone.Abuts(from.Zone); ok {
		h.view.direct(from, now)
	} else if h.view.has(from.ID) {
		// The sender's zone no longer touches ours: drop it.
		h.view.remove(from.ID)
	}
}

// receiveAnnounce handles a take-over or join announcement: gone (if
// ≥ 0) has departed and owner now covers the affected region.
func (h *Host) receiveAnnounce(now sim.Time, gone can.NodeID, owner Record) {
	if !h.alive {
		return
	}
	if gone >= 0 {
		h.view.bury(gone, now.Add(h.s.Cfg.tombstoneTTL()))
		delete(h.lastTables, gone)
	}
	if owner.ID == h.id {
		return
	}
	if _, _, ok := h.zone.Abuts(owner.Zone); ok {
		h.view.direct(owner, now)
	} else if h.view.has(owner.ID) {
		h.view.remove(owner.ID)
	}
}

// receiveRequest answers an adaptive full-update request with this
// host's complete table.
func (h *Host) receiveRequest(now sim.Time, from Record) {
	if !h.alive {
		return
	}
	h.integrateSender(now, from)
	h.s.sendFull(h.id, from.ID, h.selfRecord(), h.s.replyTable(now, h.view), false)
}

// adoptZone switches the host to a new zone (join split, take-over or
// merge) and filters the view down to records that still abut it.
func (h *Host) adoptZone(z geom.Zone) {
	h.zone = z.Clone()
	h.selfRec = Record{ID: h.id, Zone: h.zone}
	// A pure filter is order-independent, so iterate the map directly
	// (deleting during range is defined) instead of materializing a
	// sorted id list — adoptZone runs on every join and take-over.
	for id, e := range h.view.entries {
		if _, _, ok := h.zone.Abuts(e.rec.Zone); !ok {
			delete(h.view.entries, id)
		}
	}
}

// absorb merges foreign records (for example a departed neighbor's
// table) into the view, keeping those that abut the current zone.
func (h *Host) absorb(now sim.Time, recs []Record) {
	for _, rec := range recs {
		if rec.ID == h.id {
			continue
		}
		if _, _, ok := h.zone.Abuts(rec.Zone); ok {
			h.view.indirect(rec, now, h.graceTime(now))
		}
	}
}
