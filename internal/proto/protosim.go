package proto

import (
	"fmt"
	"slices"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/netsim"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// Sim couples the ground-truth overlay with per-node protocol hosts and
// a simulated network. Drivers call Join, LeaveVoluntary and Fail to
// generate churn; the protocol machinery (heartbeats, take-over
// announcements, repairs) runs through the event engine.
type Sim struct {
	Eng *sim.Engine
	Net *netsim.Net
	Ov  *can.Overlay
	Cfg Config

	hosts map[can.NodeID]*Host
	phase *rng.Stream

	// Recycled heartbeat-plane messages (see the send helpers below).
	fullPool    []*fullMsg
	compactPool []*compactMsg
	requestPool []*requestMsg

	// Recycled on-demand reply tables: a FIFO queue ordered by
	// busyUntil, with replyHead marking the consumed prefix (see
	// replyTable below).
	replyPool []*replyBuf
	replyHead int
	replyIDs  []can.NodeID // sorted-id scratch shared across replies

	// Recycled churn-path messages and scratch. The pools mirror the
	// heartbeat-plane message pools; the scratch slices are consumed
	// synchronously within a single join/takeover procedure (views store
	// Records by value, so nothing retains the backing arrays).
	announcePool []*announceMsg
	introPool    []*introMsg
	unionScratch []can.NodeID
	recScratch   []Record
	introScratch []Record

	// Sharded-simulation identity: parent is non-nil when this Sim is
	// one shard of a ShardedSim (sharing the overlay and a facet
	// transport), and shard is its index. All cross-shard indirection
	// (host lookup, message rebinding, control-plane scheduling) hangs
	// off these two fields; both are nil/zero for a serial Sim, and
	// every helper below degenerates to the serial behavior.
	parent *ShardedSim
	shard  int
}

// NewSim creates a protocol simulation over a d-dimensional CAN with
// its own event engine.
func NewSim(dims int, cfg Config) *Sim {
	return NewSimOn(sim.New(), dims, cfg)
}

// NewSimOn creates a protocol simulation on an existing engine, so the
// protocol plane can share virtual time with an execution plane (the
// scenario engine drives both off one clock).
func NewSimOn(eng *sim.Engine, dims int, cfg Config) *Sim {
	s := &Sim{
		Eng:   eng,
		Net:   netsim.New(eng, cfg.Latency),
		Ov:    can.NewOverlay(dims),
		Cfg:   cfg,
		hosts: make(map[can.NodeID]*Host),
		phase: rng.NewSplit(cfg.Seed, "proto.phase"),
	}
	s.Net.SetDeliverable(func(dst can.NodeID) bool {
		h := s.hosts[dst]
		return h != nil && h.alive
	})
	return s
}

// Host returns the protocol host for a live node, or nil.
func (s *Sim) Host(id can.NodeID) *Host { return s.hosts[id] }

// Overlay returns the ground-truth overlay (the engine-agnostic
// accessor scenario drivers use; ShardedSim has the same method).
func (s *Sim) Overlay() *can.Overlay { return s.Ov }

// hostOf resolves a live host across shard boundaries: the serial Sim's
// own map, or the owning shard's map under a ShardedSim. Safe for
// concurrent reads during parallel windows (the maps are written only
// in control phases).
func (s *Sim) hostOf(id can.NodeID) *Host {
	if s.parent != nil {
		return s.parent.hostOf(id)
	}
	return s.hosts[id]
}

// simOf resolves the Sim owning a node's shard (self when serial).
// Pooled messages are rebound to simOf(dst) at send time so delivery
// looks up the destination's host map and recycles into the
// destination's pool — state owned by the destination shard's worker.
func (s *Sim) simOf(id can.NodeID) *Sim {
	if s.parent != nil {
		return s.parent.simOf(id)
	}
	return s
}

// ctl returns the engine churn continuations belong on: the serial
// engine itself, or the sharded control/batch plane — takeover
// procedures mutate hosts across shards and read the overlay, so they
// must run with every shard quiesced (at a one-event quiesce on the
// control plane, or a window barrier on the batch plane).
func (s *Sim) ctl() *sim.Engine {
	if s.parent != nil {
		return s.parent.ctl()
	}
	return s.Eng
}

// dims returns the overlay dimensionality (churn-driver hook).
func (s *Sim) dims() int { return s.Ov.Dims() }

// AliveHosts returns the number of live protocol hosts.
func (s *Sim) AliveHosts() int { return len(s.hosts) }

// hostIDs returns live host ids in ascending order.
func (s *Sim) hostIDs() []can.NodeID {
	ids := make([]can.NodeID, 0, len(s.hosts))
	for id := range s.hosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HostIDs returns the live host ids in ascending order — the stable
// iteration order external drivers (fault injectors, scenario victim
// selection) need for deterministic runs.
func (s *Sim) HostIDs() []can.NodeID { return s.hostIDs() }

// Join admits a node at point p: the ground-truth overlay splits the
// zone, the splitting owner hands the newcomer the relevant slice of its
// neighbor table, and the owner announces the change to its former
// neighborhood (so that a join with no concurrent events leaves no
// broken links).
func (s *Sim) Join(p geom.Point) (*can.Node, error) {
	return s.JoinNode(p, nil)
}

// JoinNode is Join with node capabilities attached to the overlay
// record, for drivers that couple the protocol plane to an execution
// plane and need the heterogeneity-aware placement inputs populated.
func (s *Sim) JoinNode(p geom.Point, caps *resource.NodeCaps) (*can.Node, error) {
	owner := s.Ov.Owner(p)
	node, err := s.Ov.Join(p, caps)
	if err != nil {
		return nil, err
	}
	return s.completeJoin(node, owner), nil
}

// completeJoin runs the protocol side of an admission after the overlay
// split: host creation, the owner's table handoff, per-face discovery
// and the join announcements. Split out from JoinNode so a ShardedSim
// can register the node's shard between the overlay join and the first
// message (the transport routes by that assignment).
func (s *Sim) completeJoin(node *can.Node, owner *can.Node) *can.Node {
	now := s.Eng.Now()
	h := newHost(s, node.ID, node.Zone)
	s.hosts[node.ID] = h

	if owner == nil {
		// First node: owns everything, knows no one.
		h.scheduleFirstTick(sim.Duration(s.phase.Float64() * float64(s.Cfg.HeartbeatPeriod)))
		return node
	}

	oh := s.hostOf(owner.ID)
	// Snapshot the owner's pre-split table into scratch (the announce
	// loop below still needs it after the view mutates; Records are
	// stored by value everywhere, so the backing array is reusable).
	ids := s.replyIDs[:0]
	for id := range oh.view.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	s.replyIDs = ids
	preRecs := oh.view.recordsOfInto(s.recScratch[:0], ids)
	s.recScratch = preRecs

	// The splitter knows its own new zone and its new neighbor.
	oh.adoptZone(owner.Zone)
	oh.view.direct(h.selfRecord(), now)

	// Hand the newcomer the owner's record plus the slice of the
	// owner's table abutting the new zone (one full-style message).
	initial := append(s.introScratch[:0], oh.selfRecord())
	for _, rec := range preRecs {
		if _, _, ok := node.Zone.Abuts(rec.Zone); ok {
			initial = append(initial, rec)
		}
	}
	s.introScratch = initial
	for _, rec := range initial {
		h.view.direct(rec, now)
	}
	s.Net.Send(owner.ID, node.ID, FullMessageBytes(s.Ov.Dims(), len(initial)), netsim.KindFull, func(sim.Time) {})

	// Per-face neighbor discovery: a joining CAN node contacts the
	// owner of each face of its new zone (routing a short query along
	// that face), so it starts life knowing its tracked set — the
	// invariant the bounded-neighbor protocol maintains thereafter. The
	// splitter's bounded table alone cannot provide this. We account
	// one query and one reply per discovered neighbor and materialize
	// the result from ground truth (the routed lookup is exact at join
	// time).
	for _, nbID := range s.Ov.BoundedNeighborIDs(node.ID, s.Cfg.MaxPerFace) {
		nb := s.Ov.Node(nbID)
		if nb == nil || h.view.has(nbID) {
			continue
		}
		s.Net.Send(node.ID, nbID, RequestBytes(s.Ov.Dims()), netsim.KindRequest, func(sim.Time) {})
		s.Net.Send(nbID, node.ID, AnnounceBytes(s.Ov.Dims()), netsim.KindAnnounce, func(sim.Time) {})
		h.view.direct(Record{ID: nbID, Zone: nb.Zone.Clone()}, now)
		// The discovered neighbor learns the newcomer symmetrically.
		if nh := s.hostOf(nbID); nh != nil && nh.alive {
			nh.view.direct(h.selfRecord(), now)
		}
	}

	// Announce the split to the owner's former neighborhood.
	newbie := h.selfRecord()
	splitter := oh.selfRecord()
	for _, rec := range preRecs {
		s.sendJoinIntro(owner.ID, rec.ID, splitter, newbie)
	}

	h.scheduleFirstTick(sim.Duration(s.phase.Float64() * float64(s.Cfg.HeartbeatPeriod)))
	return node
}

// LeaveVoluntary removes a node gracefully: it hands its zone and full
// neighbor table to its predetermined take-over node before departing.
func (s *Sim) LeaveVoluntary(id can.NodeID) error {
	h := s.hosts[id]
	if h == nil {
		return fmt.Errorf("proto: leave of unknown node %d", id)
	}
	now := s.Eng.Now()
	plan, hasPlan := s.Ov.Takeover(id)
	// The handoff payload lives in a pooled reply buffer: it is aliased
	// only by the in-flight message below and consumed (by-value absorbs
	// and id copies) at delivery, exactly the replyBuf retention window.
	table := s.replyTable(now, h.view)

	h.alive = false
	s.Eng.Cancel(h.tick)
	delete(s.hosts, id)
	goneZone := h.zone.Clone()

	if _, err := s.Ov.Leave(id); err != nil {
		return err
	}
	if !hasPlan {
		return nil // last node
	}
	takerID := plan.Taker.ID
	mergedID := can.NodeID(-1)
	if plan.Merged != nil {
		mergedID = plan.Merged.ID
	}
	// Handoff message: the departing node's record plus its table.
	s.Net.Send(id, takerID, FullMessageBytes(s.Ov.Dims(), len(table)), netsim.KindFull, func(now sim.Time) {
		taker := s.hostOf(takerID)
		if taker == nil || !taker.alive {
			return
		}
		s.executeTakeover(now, taker, id, goneZone, table, mergedID)
	})
	return nil
}

// Fail removes a node silently. The ground truth reassigns its zone
// immediately (take-over duty is predetermined), but protocol-side the
// take-over node only acts after the liveness timeout, using whatever
// copy of the failed node's table it retained from past heartbeats —
// under Compact that copy exists because take-over targets receive full
// tables; under Vanilla everyone has one; a missing or stale copy is
// precisely what produces lasting broken links.
func (s *Sim) Fail(id can.NodeID) error {
	h := s.hosts[id]
	if h == nil {
		return fmt.Errorf("proto: fail of unknown node %d", id)
	}
	plan, hasPlan := s.Ov.Takeover(id)
	h.alive = false
	s.Eng.Cancel(h.tick)
	delete(s.hosts, id)
	goneZone := h.zone.Clone()

	if _, err := s.Ov.Leave(id); err != nil {
		return err
	}
	if !hasPlan {
		return nil
	}
	takerID := plan.Taker.ID
	mergedID := can.NodeID(-1)
	if plan.Merged != nil {
		mergedID = plan.Merged.ID
	}
	// The timeout continuation mutates the taker (possibly in another
	// shard) and reads the overlay, so it runs on the control plane. The
	// instant anchors to the caller's clock, not the control engine's: an
	// idle control engine's clock lags a global-phase caller arbitrarily
	// (RunBefore never advances an empty queue), and After on it would
	// schedule the takeover deep in the past.
	now := s.Eng.Now()
	if c := s.ctl().Now(); c > now {
		now = c
	}
	s.ctl().At(now.Add(s.Cfg.timeout()), func(now sim.Time) {
		taker := s.hostOf(takerID)
		if taker == nil || !taker.alive {
			return
		}
		var recs []Record
		if st := taker.lastTables[id]; st != nil {
			recs = st.recs
		}
		s.executeTakeover(now, taker, id, goneZone, recs, mergedID)
	})
	return nil
}

// executeTakeover is the take-over node's local procedure: reorganize
// zones per the predetermined plan and announce the new ownership to
// every node believed affected — the union of the taker's own view and
// the departed node's (possibly stale) table. Nodes missing from that
// union are exactly the broken links the heartbeat schemes then do or
// do not repair.
func (s *Sim) executeTakeover(now sim.Time, taker *Host, gone can.NodeID, goneZone geom.Zone, goneTable []Record, mergedID can.NodeID) {
	// Under batched admission this runs at a window barrier, where
	// earlier batch events in the same drain may have queued per-shard
	// join completions. The takeover mutates the taker's (and possibly
	// the merge partner's) view and reads overlay state those
	// completions are about to touch, so the queue executes first —
	// preserving the one logical batch order the determinism contract
	// is stated in. A no-op in strict and serial modes.
	//
	// All message sends below pin their transmission instant to the
	// handler's `now` rather than the facet clock: identical in serial
	// and strict modes (the clocks agree at handler time), and required
	// at a barrier, where shard clocks lag by a partition-dependent
	// amount.
	s.flushBatched()
	delete(taker.lastTables, gone)
	taker.view.bury(gone, now.Add(s.Cfg.tombstoneTTL()))

	// When the taker comes from deeper in the sibling subtree, it first
	// hands its current zone to its pair partner, which merges.
	if mergedID >= 0 {
		if mh := s.hostOf(mergedID); mh != nil && mh.alive {
			recs := s.replyTable(now, taker.view) // pooled: consumed at delivery
			size := FullMessageBytes(s.Ov.Dims(), len(recs))
			if s.parent != nil && s.parent.batched {
				// Batched mode: the delivery must run at a batch barrier —
				// it flushes queued completions before touching the merge
				// partner — so it stays a closure on the batch plane.
				s.Net.SendAt(now, taker.id, mergedID, size, netsim.KindFull, func(now2 sim.Time) {
					s.flushBatched()
					deliverMergeHandoff(s.simOf(mergedID), now2, mergedID, recs)
				})
			} else {
				// Serial and strict modes: an envelope, so the delivery
				// interleaves with same-instant announce arrivals at the
				// merge partner in emission order — the serial engine's
				// tie-break — rather than jumping the queue on the global
				// plane. The delivery only touches the partner's own state,
				// so it is safe inside the partner's shard window.
				s.Net.SendMsgAt(now, taker.id, mergedID, size, netsim.KindFull,
					&mergeMsg{s: s.simOf(mergedID), dst: mergedID, recs: recs})
			}
		}
	}

	gt := s.Ov.Node(taker.id)
	if gt == nil {
		return
	}
	targets := s.unionTargets(taker.view, goneTable)
	taker.adoptZone(gt.Zone)
	taker.absorb(now, goneTable)

	self := taker.selfRecord()
	for _, t := range targets {
		if t == taker.id || t == gone {
			continue
		}
		s.sendAnnounceAt(now, taker.id, t, gone, self)
	}
}

// flushBatched executes any queued batched-admission completions before
// a churn continuation touches protocol state; no-op outside batched
// mode.
func (s *Sim) flushBatched() {
	if s.parent != nil && s.parent.batched {
		s.parent.flushPending()
	}
}

// unionTargets merges a view's believed-neighbor ids with a record
// list's ids into a sorted, deduplicated scratch slice — the
// announcement fan-out of a take-over. The result is valid until the
// next call; callers finish iterating before anything else can run one.
func (s *Sim) unionTargets(v *view, recs []Record) []can.NodeID {
	ids := s.unionScratch[:0]
	for id := range v.entries {
		ids = append(ids, id)
	}
	for _, r := range recs {
		ids = append(ids, r.ID)
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	s.unionScratch = ids
	return ids
}

// Message send helpers. Payloads are captured by value at send time.
// The per-round paths (full, compact, request) travel as pooled message
// structs through Net.SendMsg, so a steady-state heartbeat round
// allocates no closures; the churn-path messages (announce, join intro,
// handoffs) keep plain closures — they are rare and often capture
// freshly built tables anyway.

// replyBuf is one reusable table for adaptive receiveRequest replies.
//
// Retention analysis (mirrors the heartbeat tableBuf double buffer): a
// reply's record slice is aliased by its in-flight fullMsg from send
// until delivery, i.e. for exactly one network latency. At delivery,
// receiveFull copies the table into the receiver-owned savedTable and
// fullMsg.table is nilled, so nothing references the buffer afterwards.
// Unlike the heartbeat path, replies are demand-driven — several can be
// in flight at once — so instead of two alternating buffers we keep a
// pool stamped with busyUntil = send time + latency. A buffer is
// reusable only when strictly now > busyUntil: at now == busyUntil the
// event queue's seq ordering may run an incoming request BEFORE an
// in-flight reply delivery at the same timestamp, and rebuilding the
// buffer then would corrupt the not-yet-delivered payload.
type replyBuf struct {
	recs      []Record
	busyUntil sim.Time
}

// replyTable builds the full-table payload for an on-demand reply into
// a pooled buffer, preserving the ascending-id record order that
// view.records() produces so reply payloads are byte-for-byte the same
// as before pooling. The pool grows to the peak number of replies in
// flight within one latency window and is reused thereafter.
func (s *Sim) replyTable(now sim.Time, v *view) []Record {
	// The pool is a FIFO queue: virtual time never decreases and the
	// latency is constant, so buffers are enqueued with non-decreasing
	// busyUntil and the head is always the earliest to free. One head
	// check per call replaces a free-slot scan that went quadratic in
	// bursts — a synchronized heartbeat round issues all its replies
	// inside one latency window, while every buffer is still busy.
	var buf *replyBuf
	if s.replyHead < len(s.replyPool) && now > s.replyPool[s.replyHead].busyUntil {
		buf = s.replyPool[s.replyHead]
		s.replyHead++
		// Compact once the consumed prefix outgrows the live tail;
		// each compaction copies at most as many entries as were
		// consumed since the last one, so the queue stays amortized
		// O(1) and the backing array stops growing at the peak number
		// of replies in flight within one latency window.
		if s.replyHead*2 >= len(s.replyPool) {
			n := copy(s.replyPool, s.replyPool[s.replyHead:])
			s.replyPool = s.replyPool[:n]
			s.replyHead = 0
		}
	} else {
		buf = &replyBuf{}
	}
	ids := s.replyIDs[:0]
	for id := range v.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids) // generic sort: no reflect, no allocation
	s.replyIDs = ids
	buf.recs = v.recordsOfInto(buf.recs[:0], ids)
	// Serial retention is exactly one latency (the delivery instant,
	// with the strict > reuse check covering same-instant ordering).
	// Sharded retention is two: the delivery may execute on another
	// shard's worker anywhere inside the window containing it, and
	// windows span up to one latency — retiring the buffer a full
	// window after delivery keeps the rebuild in a strictly later
	// window, whose barrier orders it after the read.
	retain := s.Net.Latency()
	if s.parent != nil {
		retain *= 2
	}
	buf.busyUntil = now.Add(retain)
	s.replyPool = append(s.replyPool, buf)
	return buf.recs
}

// MeanViewSize reports the mean believed-neighbor count across live
// hosts (0 with no hosts). Order-independent, so it is safe as a
// telemetry gauge.
func (s *Sim) MeanViewSize() float64 {
	if len(s.hosts) == 0 {
		return 0
	}
	total := 0
	for _, h := range s.hosts {
		total += len(h.view.entries)
	}
	return float64(total) / float64(len(s.hosts))
}

type fullMsg struct {
	s      *Sim
	self   Record
	table  []Record
	ranked bool
	dst    can.NodeID
}

func (m *fullMsg) Deliver(now sim.Time) {
	s, dst, self, table, ranked := m.s, m.dst, m.self, m.table, m.ranked
	m.table = nil
	s.fullPool = append(s.fullPool, m)
	if h := s.hosts[dst]; h != nil {
		h.receiveFull(now, self, table, ranked)
	}
}

func (s *Sim) sendFull(src, dst can.NodeID, self Record, table []Record, ranked bool) {
	var m *fullMsg
	if k := len(s.fullPool); k > 0 {
		m = s.fullPool[k-1]
		s.fullPool[k-1] = nil
		s.fullPool = s.fullPool[:k-1]
	} else {
		m = &fullMsg{}
	}
	// Rebind to the destination's Sim: delivery then reads the right
	// host map and recycles into the right pool (each pool has a single
	// writer — its own shard's worker). Serial: simOf(dst) == s.
	m.s = s.simOf(dst)
	m.self, m.table, m.ranked, m.dst = self, table, ranked, dst
	s.Net.SendMsg(src, dst, FullMessageBytes(s.Ov.Dims(), len(table)), netsim.KindFull, m)
}

type compactMsg struct {
	s      *Sim
	self   Record
	ranked bool
	dst    can.NodeID
}

func (m *compactMsg) Deliver(now sim.Time) {
	s, dst, self, ranked := m.s, m.dst, m.self, m.ranked
	s.compactPool = append(s.compactPool, m)
	if h := s.hosts[dst]; h != nil {
		h.receiveCompact(now, self, ranked)
	}
}

func (s *Sim) sendCompact(src, dst can.NodeID, self Record, dims int, ranked bool) {
	var m *compactMsg
	if k := len(s.compactPool); k > 0 {
		m = s.compactPool[k-1]
		s.compactPool[k-1] = nil
		s.compactPool = s.compactPool[:k-1]
	} else {
		m = &compactMsg{}
	}
	m.s = s.simOf(dst)
	m.self, m.ranked, m.dst = self, ranked, dst
	s.Net.SendMsg(src, dst, CompactMessageBytes(dims), netsim.KindCompact, m)
}

type requestMsg struct {
	s    *Sim
	self Record
	dst  can.NodeID
}

func (m *requestMsg) Deliver(now sim.Time) {
	s, dst, self := m.s, m.dst, m.self
	s.requestPool = append(s.requestPool, m)
	if h := s.hosts[dst]; h != nil {
		h.receiveRequest(now, self)
	}
}

// deliverMergeHandoff applies a merge handoff at the taker's pair
// partner: adopt the merged ground-truth zone, absorb the taker's
// table, and announce the new ownership to everyone either side
// believed affected. s must be the partner's own sim, so scratch and
// pools stay shard-local whichever worker delivers.
func deliverMergeHandoff(s *Sim, now sim.Time, dst can.NodeID, recs []Record) {
	m := s.hostOf(dst)
	gm := s.Ov.Node(dst)
	if m == nil || !m.alive || gm == nil {
		return
	}
	targets := s.unionTargets(m.view, recs)
	m.adoptZone(gm.Zone)
	m.absorb(now, recs)
	self := m.selfRecord()
	for _, t := range targets {
		if t != m.id {
			s.sendAnnounceAt(now, m.id, t, -1, self)
		}
	}
}

// mergeMsg is a merge handoff in flight (serial and strict modes; the
// batched path rides the batch plane as a closure — see
// executeTakeover). Merges are rare churn events, so it is not pooled.
type mergeMsg struct {
	s    *Sim // the partner's sim
	dst  can.NodeID
	recs []Record
}

func (m *mergeMsg) Deliver(now sim.Time) {
	deliverMergeHandoff(m.s, now, m.dst, m.recs)
}

// announceMsg is a pooled take-over/merge announcement (the churn-path
// analogue of the heartbeat message pools: the struct recycles itself
// on delivery, so announcement storms under churn allocate nothing
// steady-state).
type announceMsg struct {
	s     *Sim
	dst   can.NodeID
	gone  can.NodeID
	owner Record
}

func (m *announceMsg) Deliver(now sim.Time) {
	s, dst, gone, owner := m.s, m.dst, m.gone, m.owner
	s.announcePool = append(s.announcePool, m)
	if h := s.hosts[dst]; h != nil {
		h.receiveAnnounce(now, gone, owner)
	}
}

func (s *Sim) sendAnnounce(src, dst can.NodeID, gone can.NodeID, owner Record) {
	s.sendAnnounceAt(s.Eng.Now(), src, dst, gone, owner)
}

// sendAnnounceAt is sendAnnounce with an explicit transmission time, for
// barrier-context churn code whose facet clock lags the logical instant
// (see netsim.SendMsgAt). With now == s.Eng.Now() it is sendAnnounce.
func (s *Sim) sendAnnounceAt(now sim.Time, src, dst can.NodeID, gone can.NodeID, owner Record) {
	var m *announceMsg
	if k := len(s.announcePool); k > 0 {
		m = s.announcePool[k-1]
		s.announcePool[k-1] = nil
		s.announcePool = s.announcePool[:k-1]
	} else {
		m = &announceMsg{}
	}
	m.s = s.simOf(dst)
	m.dst, m.gone, m.owner = dst, gone, owner
	s.Net.SendMsgAt(now, src, dst, AnnounceBytes(s.Ov.Dims()), netsim.KindAnnounce, m)
}

// introMsg is a pooled join introduction: one wire message carrying the
// splitter's shrunk zone and the newcomer's record.
type introMsg struct {
	s        *Sim
	dst      can.NodeID
	splitter Record
	newbie   Record
}

func (m *introMsg) Deliver(now sim.Time) {
	s, dst, splitter, newbie := m.s, m.dst, m.splitter, m.newbie
	s.introPool = append(s.introPool, m)
	if h := s.hosts[dst]; h != nil {
		h.receiveAnnounce(now, -1, splitter)
		h.receiveAnnounce(now, -1, newbie)
	}
}

func (s *Sim) sendJoinIntro(src, dst can.NodeID, splitter, newbie Record) {
	s.sendJoinIntroAt(s.Eng.Now(), src, dst, splitter, newbie)
}

// sendJoinIntroAt is sendJoinIntro with an explicit transmission time,
// for batched join completions running at a window barrier.
func (s *Sim) sendJoinIntroAt(now sim.Time, src, dst can.NodeID, splitter, newbie Record) {
	var m *introMsg
	if k := len(s.introPool); k > 0 {
		m = s.introPool[k-1]
		s.introPool[k-1] = nil
		s.introPool = s.introPool[:k-1]
	} else {
		m = &introMsg{}
	}
	m.s = s.simOf(dst)
	m.dst, m.splitter, m.newbie = dst, splitter, newbie
	s.Net.SendMsgAt(now, src, dst, AnnounceBytes(s.Ov.Dims()), netsim.KindAnnounce, m)
}

func (s *Sim) sendRequest(src, dst can.NodeID, self Record) {
	var m *requestMsg
	if k := len(s.requestPool); k > 0 {
		m = s.requestPool[k-1]
		s.requestPool[k-1] = nil
		s.requestPool = s.requestPool[:k-1]
	} else {
		m = &requestMsg{}
	}
	m.s = s.simOf(dst)
	m.self, m.dst = self, dst
	s.Net.SendMsg(src, dst, RequestBytes(s.Ov.Dims()), netsim.KindRequest, m)
}

// BrokenLinks counts, across all live nodes, ground-truth neighbor
// relationships missing from the owner's view (the quantity plotted in
// Figure 7) and, separately, relationships present but with an
// out-of-date zone. Under bounded tracking (MaxPerFace > 0) the ground
// truth is the bounded per-face set a correct node would maintain;
// otherwise it is full face-sharing adjacency.
func (s *Sim) BrokenLinks() (missing, stale int) {
	perFace := s.Cfg.MaxPerFace
	for _, n := range s.Ov.Nodes() {
		h := s.hostOf(n.ID)
		nbrs := s.Ov.BoundedNeighborIDs(n.ID, perFace)
		if h == nil {
			missing += len(nbrs)
			continue
		}
		for _, nbID := range nbrs {
			nb := s.Ov.Node(nbID)
			z, ok := h.view.zoneOf(nbID)
			switch {
			case !ok:
				missing++
			case !z.Equal(nb.Zone):
				stale++
			}
		}
	}
	return missing, stale
}
