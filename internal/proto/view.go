package proto

import (
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

// Record is what one node knows about another: identity and zone. It is
// the unit of heartbeat payloads.
type Record struct {
	ID   can.NodeID
	Zone geom.Zone
}

// entry is a view slot for one believed neighbor.
//
// Entries are either active — we rank the node in our bounded tracked
// set, or it ranks us (reciprocal), so heartbeats flow and liveness is
// monitored — or passive: cached records learned from tables,
// announcements and joins. Passive entries cost no messages and are not
// liveness-checked; they serve as ranking candidates so that a face
// whose active neighbor disappears can promote a replacement, and they
// are dropped when contradicted (announce, zone change) or when a
// promotion goes unanswered.
type entry struct {
	rec        Record
	lastHeard  sim.Time
	lastDirect sim.Time // last first-hand message from the node itself
	// lastRankedBy is the last time the node itself told us it ranks us
	// in its bounded tracked set. Reciprocal heartbeats flow only to
	// peers that actively rank us; otherwise unranked pairs would keep
	// each other alive forever and the per-face bound would be void.
	lastRankedBy sim.Time
	// rankedByUs marks entries we ranked at the last heartbeat round.
	rankedByUs bool
}

// view is a node's local neighbor table plus the tombstones that stop
// stale third-party records from resurrecting known-dead nodes.
type view struct {
	entries    map[can.NodeID]*entry
	tombstones map[can.NodeID]sim.Time // expiry time
}

func newView() *view {
	return &view{
		entries:    make(map[can.NodeID]*entry),
		tombstones: make(map[can.NodeID]sim.Time),
	}
}

// ids returns the believed-neighbor ids in ascending order, for
// deterministic iteration.
func (v *view) ids() []can.NodeID {
	out := make([]can.NodeID, 0, len(v.entries))
	for id := range v.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// records returns the view contents sorted by id.
func (v *view) records() []Record {
	return v.recordsOf(v.ids())
}

// recordsOf returns the records for the given ids (skipping any that
// are no longer present).
func (v *view) recordsOf(ids []can.NodeID) []Record {
	recs := make([]Record, 0, len(ids))
	for _, id := range ids {
		if e := v.entries[id]; e != nil {
			recs = append(recs, e.rec)
		}
	}
	return recs
}

func (v *view) has(id can.NodeID) bool { return v.entries[id] != nil }

func (v *view) zoneOf(id can.NodeID) (geom.Zone, bool) {
	if e := v.entries[id]; e != nil {
		return e.rec.Zone, true
	}
	return geom.Zone{}, false
}

func (v *view) tombstoned(id can.NodeID, now sim.Time) bool {
	exp, ok := v.tombstones[id]
	if !ok {
		return false
	}
	if now >= exp {
		delete(v.tombstones, id)
		return false
	}
	return true
}

func (v *view) bury(id can.NodeID, until sim.Time) {
	delete(v.entries, id)
	v.tombstones[id] = until
}

func (v *view) remove(id can.NodeID) { delete(v.entries, id) }

// direct records first-hand evidence (a message from the node itself):
// it refreshes lastHeard, lastDirect and the zone.
func (v *view) direct(rec Record, now sim.Time) {
	delete(v.tombstones, rec.ID)
	if e := v.entries[rec.ID]; e != nil {
		e.rec = rec
		e.lastHeard = now
		e.lastDirect = now
		return
	}
	v.entries[rec.ID] = &entry{rec: rec, lastHeard: now, lastDirect: now}
}

// indirect records third-party evidence (a record inside somebody
// else's table). It may add a missing entry or correct a zone, but does
// not refresh liveness: an indirectly learned node must confirm itself
// with a direct message before the timeout or it expires again. This
// prevents two stale tables from keeping a dead node alive forever.
// graceTime is the lastHeard assigned to newly added entries.
func (v *view) indirect(rec Record, now, graceTime sim.Time) {
	if v.tombstoned(rec.ID, now) {
		return
	}
	if e := v.entries[rec.ID]; e != nil {
		e.rec.Zone = rec.Zone
		return
	}
	v.entries[rec.ID] = &entry{rec: rec, lastHeard: graceTime}
}

// expire removes active entries (ranked by us at the previous round, or
// recently ranking us) that have gone silent past the deadline, and
// buries them. Passive entries are cached hints, not monitored links;
// they persist until contradicted, promoted, or older than the (much
// longer) passive deadline — without that TTL, views grow monotonically
// under churn as dead hints accumulate. Passive removals are silent (no
// tombstone, no broken-link signal). Returns the removed active ids in
// ascending order.
func (v *view) expire(deadline, passiveDeadline, buryUntil sim.Time) []can.NodeID {
	var gone, stale []can.NodeID
	for id, e := range v.entries {
		active := e.rankedByUs || e.lastRankedBy >= deadline
		switch {
		case active && e.lastHeard < deadline:
			gone = append(gone, id)
		case !active && e.lastHeard < passiveDeadline:
			stale = append(stale, id)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	for _, id := range gone {
		v.bury(id, buryUntil)
	}
	for _, id := range stale {
		delete(v.entries, id)
	}
	return gone
}

// markRanked records which entries we ranked this round (the liveness
// expectation used by the next round's expiry).
func (v *view) markRanked(ids []can.NodeID) {
	for _, e := range v.entries {
		e.rankedByUs = false
	}
	for _, id := range ids {
		if e := v.entries[id]; e != nil {
			e.rankedByUs = true
		}
	}
}

// uncoveredFace reports whether some face of selfZone that lies strictly
// inside the unit space is not fully covered by the believed neighbors'
// zones — the locally detectable signature of a broken link
// (Section IV-C). Coverage is tested by comparing the face area against
// the summed overlap areas of abutting view zones; current (disjoint)
// zones make this exact, while overlapping stale records can mask a hole
// until they expire.
func (v *view) uncoveredFace(selfZone geom.Zone) bool {
	d := selfZone.Dims()
	for dim := 0; dim < d; dim++ {
		for _, side := range []int{-1, +1} {
			// Outer faces of the unit cube have no neighbors.
			if side < 0 && selfZone.Lo[dim] <= 0 {
				continue
			}
			if side > 0 && selfZone.Hi[dim] >= 1 {
				continue
			}
			need := selfZone.FaceArea(dim)
			got := 0.0
			for _, e := range v.entries {
				adim, adir, ok := selfZone.Abuts(e.rec.Zone)
				if ok && adim == dim && adir == side {
					got += selfZone.FaceOverlap(e.rec.Zone, dim)
				}
			}
			if got < need*(1-1e-9) {
				return true
			}
		}
	}
	return false
}

// ranked returns the bounded neighbor set the node actively ranks: for
// each face of selfZone, the up-to-perFace view entries with the
// largest shared-face measure (ties toward lower id). perFace ≤ 0
// returns every entry. The result is sorted by id.
func (v *view) ranked(selfZone geom.Zone, perFace int) []can.NodeID {
	if perFace <= 0 {
		return v.ids()
	}
	type scored struct {
		id      can.NodeID
		overlap float64
	}
	buckets := make(map[[2]int][]scored)
	for id, e := range v.entries {
		dim, dir, ok := selfZone.Abuts(e.rec.Zone)
		if !ok {
			continue
		}
		key := [2]int{dim, dir}
		buckets[key] = append(buckets[key], scored{id, selfZone.FaceOverlap(e.rec.Zone, dim)})
	}
	keep := make(map[can.NodeID]struct{})
	for _, bucket := range buckets {
		sort.Slice(bucket, func(i, j int) bool {
			if bucket[i].overlap != bucket[j].overlap {
				return bucket[i].overlap > bucket[j].overlap
			}
			return bucket[i].id < bucket[j].id
		})
		if len(bucket) > perFace {
			bucket = bucket[:perFace]
		}
		for _, s := range bucket {
			keep[s.id] = struct{}{}
		}
	}
	out := make([]can.NodeID, 0, len(keep))
	for id := range keep {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reciprocals returns the entries whose owners told us — since the
// given time — that they rank us in their tracked set. We keep
// heartbeating them so asymmetric rankings stay alive in both
// directions, without unranked pairs sustaining each other forever.
func (v *view) reciprocals(since sim.Time) []can.NodeID {
	var out []can.NodeID
	for id, e := range v.entries {
		if e.lastRankedBy >= since {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rankedBy records that the node itself declared it ranks us.
func (v *view) rankedBy(id can.NodeID, now sim.Time) {
	if e := v.entries[id]; e != nil {
		e.lastRankedBy = now
	}
}

// emptyFace reports whether some inner face of selfZone has no abutting
// view entry at all — the broken-link signature under bounded tracking,
// where full face coverage is not expected.
func (v *view) emptyFace(selfZone geom.Zone) bool {
	d := selfZone.Dims()
	covered := make(map[[2]int]bool)
	for _, e := range v.entries {
		if dim, dir, ok := selfZone.Abuts(e.rec.Zone); ok {
			covered[[2]int{dim, dir}] = true
		}
	}
	for dim := 0; dim < d; dim++ {
		if selfZone.Lo[dim] > 0 && !covered[[2]int{dim, -1}] {
			return true
		}
		if selfZone.Hi[dim] < 1 && !covered[[2]int{dim, +1}] {
			return true
		}
	}
	return false
}

// savedTable is a retained copy of another node's full neighbor table,
// kept so a take-over node can notify the departed node's neighborhood.
type savedTable struct {
	zone geom.Zone
	recs []Record
	at   sim.Time
}
