package proto

import (
	"slices"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/sim"
)

// Record is what one node knows about another: identity and zone. It is
// the unit of heartbeat payloads.
type Record struct {
	ID   can.NodeID
	Zone geom.Zone
}

// entry is a view slot for one believed neighbor.
//
// Entries are either active — we rank the node in our bounded tracked
// set, or it ranks us (reciprocal), so heartbeats flow and liveness is
// monitored — or passive: cached records learned from tables,
// announcements and joins. Passive entries cost no messages and are not
// liveness-checked; they serve as ranking candidates so that a face
// whose active neighbor disappears can promote a replacement, and they
// are dropped when contradicted (announce, zone change) or when a
// promotion goes unanswered.
type entry struct {
	rec        Record
	lastHeard  sim.Time
	lastDirect sim.Time // last first-hand message from the node itself
	// lastRankedBy is the last time the node itself told us it ranks us
	// in its bounded tracked set. Reciprocal heartbeats flow only to
	// peers that actively rank us; otherwise unranked pairs would keep
	// each other alive forever and the per-face bound would be void.
	lastRankedBy sim.Time
	// rankedByUs marks entries we ranked at the last heartbeat round.
	rankedByUs bool
}

// view is a node's local neighbor table plus the tombstones that stop
// stale third-party records from resurrecting known-dead nodes.
//
// The *Buf fields are per-view scratch reused by the once-per-round
// computations (expire, ranked, reciprocals): each heartbeat tick runs
// them once and consumes the results within the tick, so recycling the
// backing arrays makes the steady-state round allocation-free. The
// slices they return are valid only until the same method runs again.
type view struct {
	entries    map[can.NodeID]*entry
	tombstones map[can.NodeID]sim.Time // expiry time

	goneBuf   []can.NodeID
	staleBuf  []can.NodeID
	rankedBuf []can.NodeID
	recipBuf  []can.NodeID
	scoredBuf []faceScored
}

// faceScored is one (face, candidate) pair during bounded ranking.
type faceScored struct {
	dim, dir int
	id       can.NodeID
	overlap  float64
}

func newView() *view {
	return &view{
		entries:    make(map[can.NodeID]*entry),
		tombstones: make(map[can.NodeID]sim.Time),
	}
}

// ids returns the believed-neighbor ids in ascending order, for
// deterministic iteration.
func (v *view) ids() []can.NodeID {
	out := make([]can.NodeID, 0, len(v.entries))
	for id := range v.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// records returns the view contents sorted by id.
func (v *view) records() []Record {
	return v.recordsOf(v.ids())
}

// recordsOf returns the records for the given ids (skipping any that
// are no longer present).
func (v *view) recordsOf(ids []can.NodeID) []Record {
	return v.recordsOfInto(make([]Record, 0, len(ids)), ids)
}

// recordsOfInto is recordsOf appending into a caller-owned buffer.
func (v *view) recordsOfInto(recs []Record, ids []can.NodeID) []Record {
	for _, id := range ids {
		if e := v.entries[id]; e != nil {
			recs = append(recs, e.rec)
		}
	}
	return recs
}

func (v *view) has(id can.NodeID) bool { return v.entries[id] != nil }

func (v *view) zoneOf(id can.NodeID) (geom.Zone, bool) {
	if e := v.entries[id]; e != nil {
		return e.rec.Zone, true
	}
	return geom.Zone{}, false
}

func (v *view) tombstoned(id can.NodeID, now sim.Time) bool {
	exp, ok := v.tombstones[id]
	if !ok {
		return false
	}
	if now >= exp {
		delete(v.tombstones, id)
		return false
	}
	return true
}

func (v *view) bury(id can.NodeID, until sim.Time) {
	delete(v.entries, id)
	v.tombstones[id] = until
}

func (v *view) remove(id can.NodeID) { delete(v.entries, id) }

// direct records first-hand evidence (a message from the node itself):
// it refreshes lastHeard, lastDirect and the zone.
func (v *view) direct(rec Record, now sim.Time) {
	delete(v.tombstones, rec.ID)
	if e := v.entries[rec.ID]; e != nil {
		e.rec = rec
		e.lastHeard = now
		e.lastDirect = now
		return
	}
	v.entries[rec.ID] = &entry{rec: rec, lastHeard: now, lastDirect: now}
}

// indirect records third-party evidence (a record inside somebody
// else's table). It may add a missing entry or correct a zone, but does
// not refresh liveness: an indirectly learned node must confirm itself
// with a direct message before the timeout or it expires again. This
// prevents two stale tables from keeping a dead node alive forever.
// graceTime is the lastHeard assigned to newly added entries.
func (v *view) indirect(rec Record, now, graceTime sim.Time) {
	if v.tombstoned(rec.ID, now) {
		return
	}
	if e := v.entries[rec.ID]; e != nil {
		e.rec.Zone = rec.Zone
		return
	}
	v.entries[rec.ID] = &entry{rec: rec, lastHeard: graceTime}
}

// expire removes active entries (ranked by us at the previous round, or
// recently ranking us) that have gone silent past the deadline, and
// buries them. Passive entries are cached hints, not monitored links;
// they persist until contradicted, promoted, or older than the (much
// longer) passive deadline — without that TTL, views grow monotonically
// under churn as dead hints accumulate. Passive removals are silent (no
// tombstone, no broken-link signal). Returns the removed active ids in
// ascending order.
//
// Boundary rule: every deadline comparison is strict. An entry whose
// lastHeard equals the deadline exactly — a record timestamped
// precisely timeout ago — is still live this round and expires only
// once it is strictly older; symmetrically, lastRankedBy == deadline
// still counts as "recently ranking us" (>=) and keeps the entry
// active. The same convention makes the half-timeout grace horizon
// consistent: an entry admitted at graceTime (lastHeard = now −
// timeout/2) survives ticks whose deadline has not passed that instant,
// and expires on the first tick where it is strictly older — the
// deadline-exact record and the grace-exact record behave identically.
func (v *view) expire(deadline, passiveDeadline, buryUntil sim.Time) []can.NodeID {
	gone, stale := v.goneBuf[:0], v.staleBuf[:0]
	for id, e := range v.entries {
		active := e.rankedByUs || e.lastRankedBy >= deadline
		switch {
		case active && e.lastHeard < deadline:
			gone = append(gone, id)
		case !active && e.lastHeard < passiveDeadline:
			stale = append(stale, id)
		}
	}
	slices.Sort(gone)
	for _, id := range gone {
		v.bury(id, buryUntil)
	}
	for _, id := range stale {
		delete(v.entries, id)
	}
	v.goneBuf, v.staleBuf = gone, stale
	return gone
}

// markRanked records which entries we ranked this round (the liveness
// expectation used by the next round's expiry).
func (v *view) markRanked(ids []can.NodeID) {
	for _, e := range v.entries {
		e.rankedByUs = false
	}
	for _, id := range ids {
		if e := v.entries[id]; e != nil {
			e.rankedByUs = true
		}
	}
}

// uncoveredFace reports whether some face of selfZone that lies strictly
// inside the unit space is not fully covered by the believed neighbors'
// zones — the locally detectable signature of a broken link
// (Section IV-C). Coverage is tested by comparing the face area against
// the summed overlap areas of abutting view zones; current (disjoint)
// zones make this exact, while overlapping stale records can mask a hole
// until they expire.
func (v *view) uncoveredFace(selfZone geom.Zone) bool {
	d := selfZone.Dims()
	for dim := 0; dim < d; dim++ {
		for _, side := range []int{-1, +1} {
			// Outer faces of the unit cube have no neighbors.
			if side < 0 && selfZone.Lo[dim] <= 0 {
				continue
			}
			if side > 0 && selfZone.Hi[dim] >= 1 {
				continue
			}
			need := selfZone.FaceArea(dim)
			got := 0.0
			for _, e := range v.entries {
				adim, adir, ok := selfZone.Abuts(e.rec.Zone)
				if ok && adim == dim && adir == side {
					got += selfZone.FaceOverlap(e.rec.Zone, dim)
				}
			}
			if got < need*(1-1e-9) {
				return true
			}
		}
	}
	return false
}

// ranked returns the bounded neighbor set the node actively ranks: for
// each face of selfZone, the up-to-perFace view entries with the
// largest shared-face measure (ties toward lower id). perFace ≤ 0
// returns every entry. The result is sorted by id.
func (v *view) ranked(selfZone geom.Zone, perFace int) []can.NodeID {
	if perFace <= 0 {
		return v.ids()
	}
	// Scratch-based equivalent of per-face bucketing: score every
	// abutting entry, sort by (face, overlap desc, id asc), then take the
	// first perFace of each face group. A zone abuts on exactly one face,
	// so no entry can be selected twice and the result needs only the
	// final id sort.
	scored := v.scoredBuf[:0]
	for id, e := range v.entries {
		dim, dir, ok := selfZone.Abuts(e.rec.Zone)
		if !ok {
			continue
		}
		scored = append(scored, faceScored{dim, dir, id, selfZone.FaceOverlap(e.rec.Zone, dim)})
	}
	v.scoredBuf = scored
	slices.SortFunc(scored, func(a, b faceScored) int {
		switch {
		case a.dim != b.dim:
			return a.dim - b.dim
		case a.dir != b.dir:
			return a.dir - b.dir
		case a.overlap != b.overlap:
			if a.overlap > b.overlap {
				return -1
			}
			return 1
		default:
			return int(a.id - b.id)
		}
	})
	out := v.rankedBuf[:0]
	taken := 0
	for i, s := range scored {
		if i > 0 && (s.dim != scored[i-1].dim || s.dir != scored[i-1].dir) {
			taken = 0
		}
		if taken < perFace {
			out = append(out, s.id)
			taken++
		}
	}
	slices.Sort(out)
	v.rankedBuf = out
	return out
}

// reciprocals returns the entries whose owners told us — since the
// given time — that they rank us in their tracked set. We keep
// heartbeating them so asymmetric rankings stay alive in both
// directions, without unranked pairs sustaining each other forever.
func (v *view) reciprocals(since sim.Time) []can.NodeID {
	out := v.recipBuf[:0]
	for id, e := range v.entries {
		if e.lastRankedBy >= since {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	v.recipBuf = out
	return out
}

// rankedBy records that the node itself declared it ranks us.
func (v *view) rankedBy(id can.NodeID, now sim.Time) {
	if e := v.entries[id]; e != nil {
		e.lastRankedBy = now
	}
}

// emptyFace reports whether some inner face of selfZone has no abutting
// view entry at all — the broken-link signature under bounded tracking,
// where full face coverage is not expected.
func (v *view) emptyFace(selfZone geom.Zone) bool {
	d := selfZone.Dims()
	// Per-direction coverage bitmasks (one bit per dimension; the space
	// never has anywhere near 64 dimensions). This runs on every adaptive
	// heartbeat tick, so it must not allocate.
	var covLo, covHi uint64
	for _, e := range v.entries {
		if dim, dir, ok := selfZone.Abuts(e.rec.Zone); ok {
			if dir < 0 {
				covLo |= 1 << dim
			} else {
				covHi |= 1 << dim
			}
		}
	}
	for dim := 0; dim < d; dim++ {
		if selfZone.Lo[dim] > 0 && covLo&(1<<dim) == 0 {
			return true
		}
		if selfZone.Hi[dim] < 1 && covHi&(1<<dim) == 0 {
			return true
		}
	}
	return false
}

// savedTable is a retained copy of another node's full neighbor table,
// kept so a take-over node can notify the departed node's neighborhood.
type savedTable struct {
	zone geom.Zone
	recs []Record
	at   sim.Time
}
