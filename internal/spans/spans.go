// Package spans turns scheduler placement probes into trace events: a
// job's submit, the CAN routing walk, the pushing hops, and the final
// dominant-CE match become one causal tree keyed by the job id, with
// Depth giving each step's nesting under the submit. cmd/traceview
// renders the tree.
package spans

import (
	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/sim"
	"hetgrid/internal/trace"
)

// Causal depths of span events under a job's submit (depth 0).
const (
	DepthRoute = 1
	DepthPush  = 2
	DepthMatch = 3
)

// Probe implements sched.Probe, recording placement spans into a trace
// recorder. It is telemetry-only: it reads the engine clock and the
// arguments it is handed, and mutates nothing.
type Probe struct {
	eng *sim.Engine
	rec trace.Recorder
	job int64 // job currently being placed
}

// New builds a probe recording into rec with timestamps from eng.
func New(eng *sim.Engine, rec trace.Recorder) *Probe {
	return &Probe{eng: eng, rec: rec, job: -1}
}

// PlaceBegin opens the span for j.
func (p *Probe) PlaceBegin(j *exec.Job) { p.job = int64(j.ID) }

// RoutePath records one place.route event per routing hop (the entry
// node itself is not a hop). Value carries the hop index.
func (p *Probe) RoutePath(path []*can.Node) {
	t := p.eng.Now().Seconds()
	for i := 1; i < len(path); i++ {
		p.rec.Record(trace.Event{
			T: t, Kind: trace.PlaceRoute,
			Node: int64(path[i].ID), Job: p.job,
			Value: float64(i), Depth: DepthRoute,
		})
	}
}

// PushHop records one place.push event.
func (p *Probe) PushHop(n *can.Node) {
	p.rec.Record(trace.Event{
		T: p.eng.Now().Seconds(), Kind: trace.PlacePush,
		Node: int64(n.ID), Job: p.job, Depth: DepthPush,
	})
}

// Match closes the span with the chosen node; Detail is the pick kind
// ("free", "accept", "score", "fallback").
func (p *Probe) Match(node can.NodeID, kind string) {
	p.rec.Record(trace.Event{
		T: p.eng.Now().Seconds(), Kind: trace.PlaceMatch,
		Node: int64(node), Job: p.job, Depth: DepthMatch, Detail: kind,
	})
	p.job = -1
}

// Unmatched closes the span with no placement.
func (p *Probe) Unmatched() {
	p.rec.Record(trace.Event{
		T: p.eng.Now().Seconds(), Kind: trace.PlaceMatch,
		Node: -1, Job: p.job, Depth: DepthMatch, Detail: "unmatched",
	})
	p.job = -1
}
