package experiments

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hetgrid/internal/stats"
)

// ErrCanceled is returned (wrapped) by a run that halted because a
// lower-indexed sibling in the same parallel sweep failed first.
var ErrCanceled = errors.New("experiments: canceled by earlier failure")

// CancelFlag propagates first-error cancellation into in-flight runs.
// It records the lowest index that failed so far; only work items with
// a HIGHER index observe cancellation. Lower-indexed items always run
// to completion, which is what keeps the reported error deterministic:
// the minimum index destined to fail can never be canceled (that would
// require an even lower failure), so it always records its own error
// and the ascending scan reports it regardless of goroutine timing.
type CancelFlag struct {
	low atomic.Int64 // lowest failing index; MaxInt64 = none
}

func newCancelFlag() *CancelFlag {
	c := &CancelFlag{}
	c.low.Store(math.MaxInt64)
	return c
}

// fail records a genuine failure at index i.
func (c *CancelFlag) fail(i int) {
	for {
		cur := c.low.Load()
		if int64(i) >= cur || c.low.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

// CanceledFor reports whether work item i should halt: some item with a
// lower index has already failed. Safe on a nil flag (never canceled).
func (c *CancelFlag) CanceledFor(i int) bool {
	return c != nil && int64(i) > c.low.Load()
}

// Each simulation is single-threaded for determinism, but independent
// runs parallelize perfectly. ParallelMap fans a set of configurations
// out over a worker pool and collects results in input order, so sweeps
// (Figure 8's 36 cells, the ablation grids, seed replications) use all
// cores while producing byte-identical output.

// ParallelMap runs f over every index in [0, n) using up to workers
// goroutines (NumCPU when workers ≤ 0) and returns the results in input
// order.
func ParallelMap[T any](n, workers int, f func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// ParallelMapErr is ParallelMap for fallible work: it runs f over every
// index in [0, n) and returns the results in input order together with
// the error of the lowest failing index, or nil.
//
// Unlike running ParallelMap to completion and scanning afterwards, a
// failure cancels the sweep: indices not yet handed to a worker when
// the first error lands are never started. The reported error is still
// deterministic — indices are dispatched in ascending order, and after
// the pool drains the slots are scanned ascending, so the lowest
// failing index among those that ran wins regardless of goroutine
// timing, and every index below it was dispatched before cancellation
// could take effect.
func ParallelMapErr[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	return ParallelMapErrCancel(n, workers, func(i int, _ *CancelFlag) (T, error) {
		return f(i)
	})
}

// ParallelMapErrCancel extends ParallelMapErr with in-flight
// cancellation: f receives the sweep's CancelFlag and may poll
// cancel.CanceledFor(i) to abandon work early (for example by wiring it
// into LBConfig.Cancel, which RunLoadBalance checks at every event
// boundary). A run that halts this way should return an error wrapping
// ErrCanceled; such errors are recorded but never reported as the
// sweep's outcome — the ascending scan skips them, so the result is
// still the lowest genuinely failing index, unchanged by scheduling
// (see CancelFlag for why that index can never itself be canceled).
func ParallelMapErrCancel[T any](n, workers int, f func(i int, cancel *CancelFlag) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	cancel := newCancelFlag()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i, cancel)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				v, err := f(i, cancel)
				if err != nil {
					errs[i] = err
					if !errors.Is(err, ErrCanceled) {
						cancel.fail(i)
					}
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var firstCanceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCanceled) {
			if firstCanceled == nil {
				firstCanceled = err
			}
			continue
		}
		return out, err
	}
	// Defensive: only canceled errors recorded (should be impossible —
	// cancellation implies a lower genuine failure).
	return out, firstCanceled
}

// Replication summarizes one metric across seed replicas.
type Replication struct {
	Seeds  []int64
	Means  []float64 // per-seed metric values
	Mean   float64   // grand mean
	StdDev float64   // sample standard deviation across seeds
}

// ReplicateLB runs the same load-balancing configuration under n
// consecutive seeds in parallel and summarizes the metric extracted by
// pick (for example, mean wait time). A failing replica cancels the
// remaining seeds — including ones already simulating, which halt at
// their next event boundary; the returned error is always the lowest
// failing seed's, independent of scheduling.
func ReplicateLB(cfg LBConfig, n int, pick func(*LBResult) float64) (Replication, error) {
	results, err := ParallelMapErrCancel(n, 0, func(i int, cancel *CancelFlag) (float64, error) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		c.Cancel = func() bool { return cancel.CanceledFor(i) }
		res, err := RunLoadBalance(c)
		if err != nil {
			return 0, err
		}
		return pick(res), nil
	})
	if err != nil {
		return Replication{}, err
	}
	rep := Replication{}
	var sample stats.Sample
	for i, v := range results {
		rep.Seeds = append(rep.Seeds, cfg.Seed+int64(i))
		rep.Means = append(rep.Means, v)
		sample.Add(v)
	}
	rep.Mean = sample.Mean()
	rep.StdDev = stddev(rep.Means, rep.Mean)
	return rep, nil
}

func stddev(vs []float64, mean float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(vs)-1))
}
