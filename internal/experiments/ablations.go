package experiments

import (
	"fmt"
	"io"

	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
	"hetgrid/internal/stats"
)

// The ablations probe design choices the paper states but does not
// sweep: the stopping factor SF (Equation 4), the virtual dimension's
// load-spreading role (Section II-B), aggregated-load staleness (the
// heartbeat refresh period), the contention coefficient, the graceful
// vs silent departure mix, and the extension to concurrent-kernel GPUs
// the paper anticipates. Each produces one table.

// ablationLB runs one can-het configuration and returns its result.
func ablationLB(scale Scale, seed int64, tweak func(*LBConfig)) (*LBResult, error) {
	cfg := DefaultLBConfig(CanHet)
	cfg.Nodes = scale.nodes(cfg.Nodes)
	cfg.Jobs = scale.jobs(cfg.Jobs)
	cfg.MeanInterArrival = sim.Duration(float64(cfg.MeanInterArrival) / float64(scale))
	cfg.Seed = seed
	tweak(&cfg)
	return RunLoadBalance(cfg)
}

func lbRow(tab *stats.Table, label string, r *LBResult) {
	tab.AddRow(label,
		fmt.Sprintf("%.0f", r.WaitTimes.Mean()),
		fmt.Sprintf("%.0f", r.WaitTimes.Quantile(0.9)),
		fmt.Sprintf("%.0f", r.WaitTimes.Quantile(0.99)),
		fmt.Sprintf("%.1f%%", 100*r.WaitTimes.CDF(0)),
		r.Sched.PushHops,
		r.Failed)
}

// AblationStoppingFactor sweeps Equation 4's SF: low factors push jobs
// far (more hops, better spreading), high factors stop early.
func AblationStoppingFactor(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: stopping factor SF (Equation 4), can-het")
	tab := stats.NewTable("SF", "mean(s)", "p90(s)", "p99(s)", "zero-wait", "push-hops", "failed")
	for _, sf := range []float64{0.5, 1, 2, 4, 8} {
		r, err := ablationLB(scale, seed, func(cfg *LBConfig) { cfg.StoppingFactor = sf })
		if err != nil {
			return err
		}
		lbRow(tab, fmt.Sprintf("%.1f", sf), r)
	}
	tab.Fprint(w)
	return nil
}

// AblationVirtualDimension compares routing with and without the
// virtual dimension's random job coordinate.
func AblationVirtualDimension(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: virtual-dimension load spreading, can-het")
	tab := stats.NewTable("virtual", "mean(s)", "p90(s)", "p99(s)", "zero-wait", "push-hops", "failed")
	for _, off := range []bool{false, true} {
		r, err := ablationLB(scale, seed, func(cfg *LBConfig) { cfg.DisableVirtualSpread = off })
		if err != nil {
			return err
		}
		label := "random"
		if off {
			label = "disabled"
		}
		lbRow(tab, label, r)
	}
	tab.Fprint(w)
	return nil
}

// AblationStaleness sweeps the aggregated-load refresh period: longer
// periods mean staler Equation 3 inputs.
func AblationStaleness(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: aggregated-load staleness (refresh period), can-het")
	tab := stats.NewTable("period(s)", "mean(s)", "p90(s)", "p99(s)", "zero-wait", "push-hops", "failed")
	for _, p := range []sim.Duration{15 * sim.Second, 60 * sim.Second, 240 * sim.Second, 960 * sim.Second} {
		r, err := ablationLB(scale, seed, func(cfg *LBConfig) { cfg.RefreshPeriod = p })
		if err != nil {
			return err
		}
		lbRow(tab, fmt.Sprintf("%.0f", p.Seconds()), r)
	}
	tab.Fprint(w)
	return nil
}

// AblationContention sweeps the CPU contention coefficient gamma.
func AblationContention(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: contention coefficient gamma, can-het")
	tab := stats.NewTable("gamma", "mean(s)", "p90(s)", "p99(s)", "zero-wait", "push-hops", "failed")
	for _, g := range []float64{0, 0.3, 0.6, 1.0} {
		r, err := ablationLB(scale, seed, func(cfg *LBConfig) { cfg.Gamma = g })
		if err != nil {
			return err
		}
		lbRow(tab, fmt.Sprintf("%.1f", g), r)
	}
	tab.Fprint(w)
	return nil
}

// AblationConcurrentGPUs compares the evaluation's dedicated GPUs with
// the concurrent-kernel GPUs the paper anticipates, under each
// decentralized scheme.
func AblationConcurrentGPUs(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Extension: dedicated vs concurrent-kernel GPUs")
	tab := stats.NewTable("scheme", "GPUs", "mean(s)", "p90(s)", "p99(s)", "zero-wait", "push-hops", "failed")
	for _, scheme := range []SchemeName{CanHet, CanHom} {
		for _, conc := range []bool{false, true} {
			cfg := DefaultLBConfig(scheme)
			cfg.Nodes = scale.nodes(cfg.Nodes)
			cfg.Jobs = scale.jobs(cfg.Jobs)
			cfg.MeanInterArrival = sim.Duration(float64(cfg.MeanInterArrival) / float64(scale))
			cfg.Seed = seed
			cfg.ConcurrentGPUs = conc
			r, err := RunLoadBalance(cfg)
			if err != nil {
				return err
			}
			label := "dedicated"
			if conc {
				label = "concurrent"
			}
			tab.AddRow(string(scheme), label,
				fmt.Sprintf("%.0f", r.WaitTimes.Mean()),
				fmt.Sprintf("%.0f", r.WaitTimes.Quantile(0.9)),
				fmt.Sprintf("%.0f", r.WaitTimes.Quantile(0.99)),
				fmt.Sprintf("%.1f%%", 100*r.WaitTimes.CDF(0)),
				r.Sched.PushHops,
				r.Failed)
		}
	}
	tab.Fprint(w)
	return nil
}

// AblationNeighborBound compares bounded per-face neighbor tracking
// (the default, DESIGN.md §3) against full face-sharing adjacency: the
// maintenance cost of the unbounded CAN in the evaluation's n ≪ 2^d
// regime is what motivates the bound.
func AblationNeighborBound(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: bounded vs full neighbor tracking (vanilla, 11-dim CAN)")
	tab := stats.NewTable("tracking", "msgs/node/min", "KB/node/min", "avg-gt-neighbors")
	for _, bound := range []int{1, 2, -1} {
		cfg := DefaultScalabilityConfig(proto.Vanilla, 11, scale.nodes(1000))
		cfg.Warmup = scale.dur(cfg.Warmup)
		cfg.Measure = scale.dur(cfg.Measure)
		cfg.Seed = seed
		cfg.MaxPerFace = bound
		r := RunScalability(cfg)
		label := fmt.Sprintf("per-face %d", bound)
		if bound < 0 {
			label = "full adjacency"
		}
		tab.AddRow(label,
			fmt.Sprintf("%.1f", r.MsgsPerNodeMin),
			fmt.Sprintf("%.1f", r.KBytesPerNodeMin),
			fmt.Sprintf("%.1f", r.AvgNeighbors))
	}
	tab.Fprint(w)
	return nil
}

// AblationFailureFraction sweeps the graceful-leave vs silent-failure
// mix under high churn and reports mean broken links per scheme.
func AblationFailureFraction(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Ablation: silent-failure fraction under high churn (mean broken links)")
	tab := stats.NewTable("fail-fraction", "vanilla", "compact", "adaptive")
	for _, ff := range []float64{0, 0.5, 1} {
		row := []any{fmt.Sprintf("%.0f%%", ff*100)}
		for _, scheme := range MaintSchemes {
			cfg := DefaultResilienceConfig(scheme)
			cfg.Nodes = scale.nodes(cfg.Nodes)
			cfg.Horizon = scale.dur(cfg.Horizon)
			cfg.SampleEvery = scale.dur(cfg.SampleEvery)
			cfg.FailFraction = ff
			cfg.Seed = seed
			row = append(row, fmt.Sprintf("%.1f", RunResilience(cfg).MeanBroken()))
		}
		tab.AddRow(row...)
	}
	tab.Fprint(w)
	return nil
}

// Ablations runs the full suite.
func Ablations(w io.Writer, scale Scale, seed int64) error {
	for _, f := range []func(io.Writer, Scale, int64) error{
		AblationStoppingFactor,
		AblationVirtualDimension,
		AblationStaleness,
		AblationContention,
		AblationConcurrentGPUs,
		AblationNeighborBound,
		AblationFailureFraction,
		AblationChurnLB,
	} {
		if err := f(w, scale, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
