package experiments

import "hetgrid/internal/sim"

// ScaleXXXLNodes is the population of the million-node scaling
// configuration: three orders of magnitude past the paper's 1000-node
// evaluation, the regime the sharded simulation core exists for. At
// this size even O(log n) per-event work adds up, so the configuration
// exercises — and the `make bench-xxxl` smoke enforces — the end-to-end
// composition of every incremental path at once: delta-maintained
// snapshots, journal-spliced aggregation orders, candidate-index
// splices and the carry-over load rebuild.
const ScaleXXXLNodes = 1000000

// ScaleXXXLLBConfig returns the 1,000,000-node load-balance
// configuration behind `make bench-xxxl`. It is DefaultLBConfig
// stretched to ScaleXXXLNodes with the arrival rate scaled by the same
// population factor (MeanInterArrival 3 s → 3 ms), keeping the per-node
// arrival density at the evaluation's operating point. Jobs stays at
// the caller's discretion, as with ScaleXXLLBConfig.
func ScaleXXXLLBConfig(scheme SchemeName) LBConfig {
	cfg := DefaultLBConfig(scheme)
	cfg.Nodes = ScaleXXXLNodes
	cfg.MeanInterArrival = 3 * sim.Millisecond
	return cfg
}
