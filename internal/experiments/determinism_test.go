package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"hetgrid/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden determinism files")

// goldenScale keeps the golden runs fast while exercising every figure
// driver end to end (populations and horizons clamp to the driver
// minimums at this scale).
const goldenScale = Scale(0.04)

// renderAllFigures regenerates every figure at the golden scale into one
// byte stream. This is the paper's entire evaluation surface: any
// optimization that changes a scheduling decision, an aggregate, or a
// protocol message anywhere shows up here.
func renderAllFigures(tb testing.TB, mc *MetricsCollector) []byte {
	var buf bytes.Buffer
	if _, err := Figure5(&buf, goldenScale, 1, mc); err != nil {
		tb.Fatalf("Figure5: %v", err)
	}
	if _, err := Figure6(&buf, goldenScale, 1, mc); err != nil {
		tb.Fatalf("Figure6: %v", err)
	}
	if _, err := Figure7(&buf, goldenScale, 1, mc); err != nil {
		tb.Fatalf("Figure7: %v", err)
	}
	if _, err := Figure8(&buf, goldenScale, 1, mc); err != nil {
		tb.Fatalf("Figure8: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenFigureDeterminism locks in DESIGN.md §3's guarantee (same
// seed ⇒ byte-identical output) against the committed golden: the file
// was rendered by the pre-optimization seed tree, so a passing run
// proves the hot-path optimizations did not change a single output byte.
// Regenerate deliberately with: go test ./internal/experiments -run
// Golden -update
func TestGoldenFigureDeterminism(t *testing.T) {
	got := renderAllFigures(t, nil)
	path := filepath.Join("testdata", "golden_figures.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("figure output diverged from golden %s:\n%s", path, firstDiff(got, want))
	}
}

// TestGoldenRunTwice guards against hidden global state: two renders in
// the same process must agree byte for byte.
func TestGoldenRunTwice(t *testing.T) {
	a := renderAllFigures(t, nil)
	b := renderAllFigures(t, nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("two in-process renders differ:\n%s", firstDiff(a, b))
	}
}

// TestCrossWorkerDeterminism is the safety net for every parallel sweep:
// a small Figure 5 and Figure 8 style configuration fanned out through
// ParallelMap must render byte-identically with workers=1 and
// workers=NumCPU.
func TestCrossWorkerDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer

		// Figure 5 style cells: scheme × inter-arrival grid.
		type lbCell struct {
			scheme SchemeName
			ia     sim.Duration
		}
		var lbCells []lbCell
		for _, scheme := range LBSchemes {
			for _, ia := range []sim.Duration{40 * sim.Second, 80 * sim.Second} {
				lbCells = append(lbCells, lbCell{scheme, ia})
			}
		}
		lbResults := ParallelMap(len(lbCells), workers, func(i int) *LBResult {
			c := lbCells[i]
			cfg := DefaultLBConfig(c.scheme)
			cfg.Nodes = 40
			cfg.Jobs = 200
			cfg.MeanInterArrival = c.ia
			cfg.Seed = 11
			res, err := RunLoadBalance(cfg)
			if err != nil {
				panic(err)
			}
			return res
		})
		for i, r := range lbResults {
			fmt.Fprintf(&buf, "lb[%d] %s ia=%v placed=%d failed=%d mean=%.6f p99=%.6f gini=%.6f sched=%v\n",
				i, lbCells[i].scheme, lbCells[i].ia, r.Placed, r.Failed,
				r.WaitTimes.Mean(), r.WaitTimes.Quantile(0.99), r.Imbalance.Gini, r.Sched)
		}

		// Figure 8 style cells: scheme × dims grid.
		type scCell struct {
			scheme int
			dims   int
		}
		var scCells []scCell
		for si := range MaintSchemes {
			for _, dims := range []int{5, 11} {
				scCells = append(scCells, scCell{si, dims})
			}
		}
		scResults := ParallelMap(len(scCells), workers, func(i int) *ScalabilityResult {
			c := scCells[i]
			cfg := DefaultScalabilityConfig(MaintSchemes[c.scheme], c.dims, 40)
			cfg.Warmup = 2 * sim.Minute
			cfg.Measure = 4 * sim.Minute
			cfg.Seed = 11
			return RunScalability(cfg)
		})
		for i, r := range scResults {
			fmt.Fprintf(&buf, "sc[%d] %s dims=%d msgs=%.6f kb=%.6f\n",
				i, MaintSchemes[scCells[i].scheme], scCells[i].dims,
				r.MsgsPerNodeMin, r.KBytesPerNodeMin)
		}
		return buf.Bytes()
	}

	serial := render(1)
	parallel := render(runtime.NumCPU())
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=%d renders differ:\n%s",
			runtime.NumCPU(), firstDiff(serial, parallel))
	}
}

// firstDiff renders the first divergent region of two byte streams.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	end := func(s []byte) int {
		if i+80 < len(s) {
			return i + 80
		}
		return len(s)
	}
	return fmt.Sprintf("lengths %d vs %d, first difference at byte %d:\n got: %q\nwant: %q",
		len(a), len(b), i, a[lo:end(a)], b[lo:end(b)])
}
