package experiments

import (
	"fmt"
	"io"

	"hetgrid/internal/metrics"
	"hetgrid/internal/proto"
)

// FigureSharded runs one adaptive Figure 8 cell on the sharded
// simulation core with telemetry attached — the smoke-test driver for
// the sharded telemetry plane (`figures -fig sharded`). Shards and
// workers follow GOMAXPROCS; by the engine's determinism contract and
// the plane's barrier-merged sampling, neither the printed cell nor the
// exported stream depends on that choice, so the output is a pure
// function of (scale, seed).
func FigureSharded(w io.Writer, scale Scale, seed int64, m *metrics.Plane) (*ScalabilityResult, error) {
	cfg := DefaultScalabilityConfig(proto.Adaptive, 5, scale.nodes(1000))
	cfg.Warmup = scale.dur(cfg.Warmup)
	cfg.Measure = scale.dur(cfg.Measure)
	cfg.Seed = seed
	cfg.Metrics = m
	res := RunScalabilitySharded(cfg, 0, 0)
	// The figure text never mentions telemetry: output stays
	// byte-identical with the plane on or off, like every other figure.
	fmt.Fprintf(w, "sharded core: %s\n", res)
	return res, nil
}
