package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hetgrid/internal/sim"
)

func TestParallelMapPreservesOrder(t *testing.T) {
	got := ParallelMap(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestParallelMapRunsAll(t *testing.T) {
	var count int64
	ParallelMap(250, 0, func(i int) struct{} {
		atomic.AddInt64(&count, 1)
		return struct{}{}
	})
	if count != 250 {
		t.Fatalf("ran %d of 250", count)
	}
}

func TestParallelMapEmptyAndSingle(t *testing.T) {
	if out := ParallelMap(0, 4, func(int) int { return 1 }); len(out) != 0 {
		t.Fatal("empty map produced output")
	}
	if out := ParallelMap(1, 4, func(int) int { return 7 }); out[0] != 7 {
		t.Fatal("single-element map wrong")
	}
}

func TestParallelMapMatchesSerial(t *testing.T) {
	serial := ParallelMap(20, 1, func(i int) int { return 3*i + 1 })
	parallel := ParallelMap(20, 6, func(i int) int { return 3*i + 1 })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("parallel result differs from serial")
		}
	}
}

func TestReplicateLB(t *testing.T) {
	cfg := DefaultLBConfig(CanHet)
	cfg.Nodes = 60
	cfg.Jobs = 300
	cfg.MeanInterArrival = 30 * sim.Second
	cfg.Seed = 10
	rep, err := ReplicateLB(cfg, 4, func(r *LBResult) float64 { return r.WaitTimes.Mean() })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Means) != 4 || len(rep.Seeds) != 4 {
		t.Fatalf("replication shape: %+v", rep)
	}
	if rep.Seeds[0] != 10 || rep.Seeds[3] != 13 {
		t.Fatalf("seeds: %v", rep.Seeds)
	}
	if rep.StdDev < 0 {
		t.Fatal("negative stddev")
	}
	// Different seeds should give (slightly) different means.
	same := true
	for _, m := range rep.Means[1:] {
		if m != rep.Means[0] {
			same = false
		}
	}
	if same {
		t.Fatal("all replicas identical across seeds; seeding broken")
	}
	// The grand mean is the mean of the per-seed means.
	sum := 0.0
	for _, m := range rep.Means {
		sum += m
	}
	if diff := rep.Mean - sum/4; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("grand mean mismatch: %v vs %v", rep.Mean, sum/4)
	}
}

func TestReplicateLBPropagatesErrors(t *testing.T) {
	cfg := DefaultLBConfig("bogus")
	cfg.Nodes = 30
	cfg.Jobs = 200
	if _, err := ReplicateLB(cfg, 2, func(r *LBResult) float64 { return 0 }); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestStddev(t *testing.T) {
	if stddev([]float64{5}, 5) != 0 {
		t.Fatal("single-value stddev should be 0")
	}
	got := stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 5)
	// Sample stddev of this classic set is ≈2.138.
	if got < 2.13 || got > 2.15 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestParallelMapErrSuccess(t *testing.T) {
	for _, workers := range []int{1, 6} {
		got, err := ParallelMapErr(30, workers, func(i int) (int, error) { return i * 2, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d index %d: got %d", workers, i, v)
			}
		}
	}
}

// TestParallelMapErrFirstErrorDeterministic checks that when several
// indices fail, the reported error is always the lowest failing index's,
// regardless of worker count or goroutine scheduling.
func TestParallelMapErrFirstErrorDeterministic(t *testing.T) {
	failAt := map[int]bool{7: true, 11: true, 23: true}
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 20; rep++ {
			_, err := ParallelMapErr(40, workers, func(i int) (int, error) {
				if failAt[i] {
					return 0, fmt.Errorf("fail-%d", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "fail-7" {
				t.Fatalf("workers=%d: err = %v, want fail-7", workers, err)
			}
		}
	}
}

// TestParallelMapErrCancelsAfterFailure checks both cancellation
// behaviors: the serial path stops exactly at the failure, and the
// parallel path stops dispatching new indices once a failure has been
// observed (indices already handed out may still run).
func TestParallelMapErrCancelsAfterFailure(t *testing.T) {
	// Serial: nothing past the failing index runs.
	var serialRan int64
	_, err := ParallelMapErr(100, 1, func(i int) (int, error) {
		atomic.AddInt64(&serialRan, 1)
		if i == 4 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("serial err = %v", err)
	}
	if serialRan != 5 {
		t.Fatalf("serial ran %d calls, want 5 (indices 0..4)", serialRan)
	}

	// Parallel: with a failure at index 0 and workers blocked until it
	// lands, the vast majority of the sweep must never start.
	var parallelRan int64
	_, err = ParallelMapErr(10_000, 2, func(i int) (int, error) {
		atomic.AddInt64(&parallelRan, 1)
		if i == 0 {
			return 0, fmt.Errorf("early")
		}
		return i, nil
	})
	if err == nil || err.Error() != "early" {
		t.Fatalf("parallel err = %v", err)
	}
	if ran := atomic.LoadInt64(&parallelRan); ran == 10_000 {
		t.Fatalf("parallel ran the full sweep (%d calls) despite an index-0 failure", ran)
	}
}

func TestParallelMapErrEmpty(t *testing.T) {
	out, err := ParallelMapErr(0, 4, func(int) (int, error) { return 0, fmt.Errorf("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: out=%v err=%v", out, err)
	}
}

func TestCancelFlagOnlyHaltsHigherIndices(t *testing.T) {
	c := newCancelFlag()
	for _, i := range []int{0, 3, 9} {
		if c.CanceledFor(i) {
			t.Fatalf("fresh flag cancels index %d", i)
		}
	}
	c.fail(3)
	if c.CanceledFor(2) || c.CanceledFor(3) {
		t.Fatal("failure at 3 must not cancel indices ≤ 3 (determinism)")
	}
	if !c.CanceledFor(4) {
		t.Fatal("failure at 3 must cancel index 4")
	}
	c.fail(7) // higher failure must not raise the low-water mark
	if c.CanceledFor(3) {
		t.Fatal("later higher-index failure moved the mark up")
	}
	var nilFlag *CancelFlag
	if nilFlag.CanceledFor(0) {
		t.Fatal("nil flag canceled")
	}
}

// TestRunLoadBalanceCancel checks the event-boundary cancellation in the
// simulation loop itself: a run whose Cancel predicate trips partway
// through stops with ErrCanceled instead of simulating its horizon.
func TestRunLoadBalanceCancel(t *testing.T) {
	polls := 0
	cfg := DefaultLBConfig(CanHet)
	cfg.Nodes = 40
	cfg.Jobs = 500
	cfg.Cancel = func() bool { polls++; return polls > 100 }
	res, err := RunLoadBalance(cfg)
	if res != nil || err == nil {
		t.Fatalf("canceled run returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if polls != 101 {
		t.Fatalf("run continued past the cancellation poll (%d polls)", polls)
	}
}

// TestSlowReplicaObservesCancellation drives the full chain: replica 0
// fails (only after replica 1 is simulating), the sweep's flag flips,
// and the in-flight replica 1 aborts at an event boundary with
// ErrCanceled — while the sweep still reports replica 0's genuine error.
func TestSlowReplicaObservesCancellation(t *testing.T) {
	boom := fmt.Errorf("boom")
	started := make(chan struct{})
	var slowErr error
	_, err := ParallelMapErrCancel(2, 2, func(i int, cancel *CancelFlag) (int, error) {
		if i == 0 {
			<-started // replica 1 is inside its simulation loop
			return 0, boom
		}
		cfg := DefaultLBConfig(CanHet)
		cfg.Nodes = 60
		cfg.Jobs = 200_000 // far longer than replica 0's turnaround
		signaled := false
		cfg.Cancel = func() bool {
			if !signaled {
				signaled = true
				close(started)
			}
			return cancel.CanceledFor(i)
		}
		_, runErr := RunLoadBalance(cfg)
		slowErr = runErr
		if runErr == nil {
			return 0, fmt.Errorf("slow replica ran to completion without observing cancellation")
		}
		return 0, runErr
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want the genuine failure (boom)", err)
	}
	if !errors.Is(slowErr, ErrCanceled) {
		t.Fatalf("slow replica error = %v, want ErrCanceled", slowErr)
	}
}
