package experiments

import (
	"sync/atomic"
	"testing"

	"hetgrid/internal/sim"
)

func TestParallelMapPreservesOrder(t *testing.T) {
	got := ParallelMap(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestParallelMapRunsAll(t *testing.T) {
	var count int64
	ParallelMap(250, 0, func(i int) struct{} {
		atomic.AddInt64(&count, 1)
		return struct{}{}
	})
	if count != 250 {
		t.Fatalf("ran %d of 250", count)
	}
}

func TestParallelMapEmptyAndSingle(t *testing.T) {
	if out := ParallelMap(0, 4, func(int) int { return 1 }); len(out) != 0 {
		t.Fatal("empty map produced output")
	}
	if out := ParallelMap(1, 4, func(int) int { return 7 }); out[0] != 7 {
		t.Fatal("single-element map wrong")
	}
}

func TestParallelMapMatchesSerial(t *testing.T) {
	serial := ParallelMap(20, 1, func(i int) int { return 3*i + 1 })
	parallel := ParallelMap(20, 6, func(i int) int { return 3*i + 1 })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("parallel result differs from serial")
		}
	}
}

func TestReplicateLB(t *testing.T) {
	cfg := DefaultLBConfig(CanHet)
	cfg.Nodes = 60
	cfg.Jobs = 300
	cfg.MeanInterArrival = 30 * sim.Second
	cfg.Seed = 10
	rep, err := ReplicateLB(cfg, 4, func(r *LBResult) float64 { return r.WaitTimes.Mean() })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Means) != 4 || len(rep.Seeds) != 4 {
		t.Fatalf("replication shape: %+v", rep)
	}
	if rep.Seeds[0] != 10 || rep.Seeds[3] != 13 {
		t.Fatalf("seeds: %v", rep.Seeds)
	}
	if rep.StdDev < 0 {
		t.Fatal("negative stddev")
	}
	// Different seeds should give (slightly) different means.
	same := true
	for _, m := range rep.Means[1:] {
		if m != rep.Means[0] {
			same = false
		}
	}
	if same {
		t.Fatal("all replicas identical across seeds; seeding broken")
	}
	// The grand mean is the mean of the per-seed means.
	sum := 0.0
	for _, m := range rep.Means {
		sum += m
	}
	if diff := rep.Mean - sum/4; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("grand mean mismatch: %v vs %v", rep.Mean, sum/4)
	}
}

func TestReplicateLBPropagatesErrors(t *testing.T) {
	cfg := DefaultLBConfig("bogus")
	cfg.Nodes = 30
	cfg.Jobs = 200
	if _, err := ReplicateLB(cfg, 2, func(r *LBResult) float64 { return 0 }); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestStddev(t *testing.T) {
	if stddev([]float64{5}, 5) != 0 {
		t.Fatal("single-value stddev should be 0")
	}
	got := stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 5)
	// Sample stddev of this classic set is ≈2.138.
	if got < 2.13 || got > 2.15 {
		t.Fatalf("stddev = %v", got)
	}
}
