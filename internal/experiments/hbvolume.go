package experiments

import (
	"fmt"
	"io"
	"math"

	"hetgrid/internal/metrics"
	"hetgrid/internal/netsim"
	"hetgrid/internal/proto"
	"hetgrid/internal/stats"
)

// HBDims is the dimension axis of the heartbeat-volume figure. The
// paper's Section IV claim is asymptotic in d, so the axis doubles d
// rather than stepping linearly like Figure 8.
var HBDims = []int{2, 4, 8, 16}

// FigureHB measures the heartbeat-volume claim directly: per-node
// per-minute message counts and byte volume for vanilla vs compact vs
// adaptive heartbeats across CAN dimensionality, with a per-message-
// kind breakdown and least-squares log-log growth exponents. Vanilla
// sends each neighbor a full table whose size is itself proportional
// to the neighbor count, so its volume grows ~quadratically in the
// (dimension-driven) neighbor count; compact and adaptive send
// fixed-size digests, so they stay near-linear — the figure reports
// both as measured transport data, not wire-size arithmetic.
func FigureHB(w io.Writer, scale Scale, seed int64, mc *MetricsCollector) ([]*ScalabilityResult, error) {
	type cell struct {
		scheme proto.Scheme
		dims   int
	}
	var cells []cell
	for _, scheme := range MaintSchemes {
		for _, dims := range HBDims {
			cells = append(cells, cell{scheme, dims})
		}
	}
	nodes := scale.nodes(1000)
	planes := make([]*metrics.Plane, len(cells))
	for i, c := range cells {
		planes[i] = mc.Plane(fmt.Sprintf("fighb-%s-d%d", c.scheme, c.dims))
	}
	results := ParallelMap(len(cells), 0, func(i int) *ScalabilityResult {
		c := cells[i]
		cfg := DefaultScalabilityConfig(c.scheme, c.dims, nodes)
		cfg.Warmup = scale.dur(cfg.Warmup)
		cfg.Measure = scale.dur(cfg.Measure)
		cfg.Seed = seed
		cfg.Metrics = planes[i]
		return RunScalability(cfg)
	})
	byKey := make(map[string]*ScalabilityResult, len(cells))
	for i, c := range cells {
		byKey[fmt.Sprintf("%s-%d", c.scheme, c.dims)] = results[i]
	}
	at := func(scheme proto.Scheme, dims int) *ScalabilityResult {
		return byKey[fmt.Sprintf("%s-%d", scheme, dims)]
	}

	fmt.Fprintf(w, "Figure HB: measured heartbeat cost per node per minute vs dimensionality (n=%d)\n", nodes)
	for _, sub := range []struct {
		title string
		pick  func(*ScalabilityResult) float64
	}{
		{"Figure HB(a): messages per node per minute", func(r *ScalabilityResult) float64 { return r.MsgsPerNodeMin }},
		{"Figure HB(b): message volume per node per minute (KB)", func(r *ScalabilityResult) float64 { return r.KBytesPerNodeMin }},
	} {
		fmt.Fprintln(w, sub.title)
		headers := []string{"dims"}
		for _, scheme := range MaintSchemes {
			headers = append(headers, scheme.String())
		}
		headers = append(headers, "neighbors")
		tab := stats.NewTable(headers...)
		for _, dims := range HBDims {
			row := []any{dims}
			for _, scheme := range MaintSchemes {
				row = append(row, fmt.Sprintf("%.1f", sub.pick(at(scheme, dims))))
			}
			row = append(row, fmt.Sprintf("%.1f", at(proto.Vanilla, dims).AvgNeighbors))
			tab.AddRow(row...)
		}
		tab.Fprint(w)
		fmt.Fprintln(w)
	}

	// Per-kind breakdown: where each scheme's volume actually goes.
	fmt.Fprintln(w, "Figure HB(c): volume breakdown by message kind (KB/node/min)")
	kinds := []netsim.Kind{netsim.KindFull, netsim.KindCompact, netsim.KindRequest, netsim.KindAnnounce}
	headers := []string{"scheme-dims"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	tab := stats.NewTable(headers...)
	for _, scheme := range MaintSchemes {
		for _, dims := range HBDims {
			r := at(scheme, dims)
			row := []any{fmt.Sprintf("%s-%d", scheme, dims)}
			for _, k := range kinds {
				row = append(row, fmt.Sprintf("%.2f", r.ByKind[k].KBytesPerNodeMin))
			}
			tab.AddRow(row...)
		}
	}
	tab.Fprint(w)
	fmt.Fprintln(w)

	// Growth exponents: slope of log(volume) against log(d). The claim
	// is vanilla super-linear (toward the neighbor-count square) and
	// compact/adaptive sub-quadratic, near-linear.
	fmt.Fprintln(w, "# growth exponents (least-squares slope of log y vs log d)")
	for _, sub := range []struct {
		name string
		pick func(*ScalabilityResult) float64
	}{
		{"msgs", func(r *ScalabilityResult) float64 { return r.MsgsPerNodeMin }},
		{"KB", func(r *ScalabilityResult) float64 { return r.KBytesPerNodeMin }},
	} {
		for _, scheme := range MaintSchemes {
			xs := make([]float64, 0, len(HBDims))
			ys := make([]float64, 0, len(HBDims))
			for _, dims := range HBDims {
				xs = append(xs, float64(dims))
				ys = append(ys, sub.pick(at(scheme, dims)))
			}
			fmt.Fprintf(w, "# %-4s %-8s exponent=%.2f\n", sub.name, scheme, fitLogLog(xs, ys))
		}
	}
	return results, nil
}

// fitLogLog returns the least-squares slope of log(y) against log(x):
// the growth exponent b of y ≈ a·x^b. Points with non-positive values
// are skipped; fewer than two usable points yield 0.
func fitLogLog(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return 0
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (float64(n)*sxy - sx*sy) / den
}
