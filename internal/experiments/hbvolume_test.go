package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
)

// TestGoldenHBVolume locks the heartbeat-volume figure to a golden
// byte stream (same determinism contract as the other figures).
// Regenerate with: go test ./internal/experiments -run GoldenHB -update
func TestGoldenHBVolume(t *testing.T) {
	var buf bytes.Buffer
	if _, err := FigureHB(&buf, goldenScale, 1, nil); err != nil {
		t.Fatalf("FigureHB: %v", err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "golden_hbvolume.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HB figure diverged from golden %s:\n%s", path, firstDiff(got, want))
	}
}

// TestMetricsByteIdentity is the telemetry plane's central contract:
// attaching metrics to every simulation of a figure must not change a
// single output byte, while the collector itself must actually have
// sampled something.
func TestMetricsByteIdentity(t *testing.T) {
	var plain bytes.Buffer
	if _, err := FigureHB(&plain, goldenScale, 1, nil); err != nil {
		t.Fatalf("FigureHB without metrics: %v", err)
	}
	mc := &MetricsCollector{Interval: 30 * sim.Second}
	var metered bytes.Buffer
	if _, err := FigureHB(&metered, goldenScale, 1, mc); err != nil {
		t.Fatalf("FigureHB with metrics: %v", err)
	}
	if !bytes.Equal(plain.Bytes(), metered.Bytes()) {
		t.Fatalf("metrics changed figure output:\n%s", firstDiff(metered.Bytes(), plain.Bytes()))
	}
	if mc.Len() == 0 {
		t.Fatal("collector sampled nothing — the byte-identity check proved nothing")
	}
}

// TestMetricsByteIdentityLB repeats the contract on the scheduling
// side: a load-balancing run with gauges, scheduler counters, and
// placement-span tracing attached must report identical results.
func TestMetricsByteIdentityLB(t *testing.T) {
	base := func(mc *MetricsCollector) *LBResult {
		cfg := DefaultLBConfig(CanHet)
		cfg.Nodes = 40
		cfg.Jobs = 200
		cfg.MeanInterArrival = 40 * sim.Second
		cfg.Seed = 7
		cfg.Metrics = mc.Plane("lb")
		res, err := RunLoadBalance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := base(nil)
	mc := &MetricsCollector{Interval: 120 * sim.Second}
	metered := base(mc)
	if plain.Sched != metered.Sched || plain.Placed != metered.Placed ||
		plain.Makespan != metered.Makespan ||
		plain.WaitTimes.Mean() != metered.WaitTimes.Mean() ||
		plain.Imbalance != metered.Imbalance {
		t.Fatalf("metrics changed LB results:\nplain:   %+v sched=%v\nmetered: %+v sched=%v",
			plain.Imbalance, plain.Sched, metered.Imbalance, metered.Sched)
	}
	if mc.Len() == 0 {
		t.Fatal("collector sampled nothing")
	}
}

// TestSamplerParallelDeterminism: the collector's JSONL export must be
// byte-identical whether the sweep's cells run serially or across all
// cores (the sampler reads only its own run's state and export order
// is label-sorted).
func TestSamplerParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		mc := &MetricsCollector{Interval: 60 * sim.Second}
		type cell struct {
			scheme proto.Scheme
			dims   int
		}
		var cells []cell
		for _, scheme := range MaintSchemes {
			for _, dims := range []int{2, 8} {
				cells = append(cells, cell{scheme, dims})
			}
		}
		planes := make([]*ScalabilityConfig, len(cells))
		for i, c := range cells {
			cfg := DefaultScalabilityConfig(c.scheme, c.dims, 40)
			cfg.Warmup = 2 * sim.Minute
			cfg.Measure = 4 * sim.Minute
			cfg.Seed = 11
			cfg.Metrics = mc.Plane("cell-" + fig8Key(c.scheme, 40, c.dims))
			planes[i] = &cfg
		}
		ParallelMap(len(cells), workers, func(i int) *ScalabilityResult {
			return RunScalability(*planes[i])
		})
		var buf bytes.Buffer
		if err := mc.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(runtime.NumCPU())
	if len(serial) == 0 {
		t.Fatal("no telemetry exported")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=%d telemetry differ:\n%s",
			runtime.NumCPU(), firstDiff(serial, parallel))
	}
}

// TestHBVolumeGrowthSeparation checks the paper's Section IV claim on
// measured data at a moderate population: vanilla heartbeat volume
// grows clearly faster in d than compact's, which stays sub-quadratic.
func TestHBVolumeGrowthSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	exponent := func(scheme proto.Scheme) float64 {
		xs := make([]float64, 0, len(HBDims))
		ys := make([]float64, 0, len(HBDims))
		for _, dims := range HBDims {
			cfg := DefaultScalabilityConfig(scheme, dims, 300)
			cfg.Warmup = 2 * sim.Minute
			cfg.Measure = 6 * sim.Minute
			cfg.Seed = 1
			r := RunScalability(cfg)
			xs = append(xs, float64(dims))
			ys = append(ys, r.KBytesPerNodeMin)
		}
		return fitLogLog(xs, ys)
	}
	van := exponent(proto.Vanilla)
	com := exponent(proto.Compact)
	if van <= com+0.3 {
		t.Errorf("vanilla exponent %.2f not clearly above compact %.2f", van, com)
	}
	if com >= 2 {
		t.Errorf("compact exponent %.2f is not sub-quadratic", com)
	}
	if van <= 1.2 {
		t.Errorf("vanilla exponent %.2f does not show super-linear growth", van)
	}
}
