package experiments

import (
	"fmt"
	"io"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
	"hetgrid/internal/spans"
	"hetgrid/internal/stats"
	"hetgrid/internal/workload"
)

// The paper evaluates the two planes separately: load balancing on a
// static population (Figures 5–6) and membership maintenance without
// jobs (Figures 7–8). This extension runs them together: nodes fail and
// join while the job stream flows, failed nodes' jobs are re-matched
// (running work restarts from scratch, as a desktop grid restarts
// preempted work), and the cost shows up as extra waiting.

// ChurnLBConfig parameterizes a load-balancing run under churn.
type ChurnLBConfig struct {
	LB LBConfig
	// MeanFailGap is the mean time between node failures (exponential).
	// Each failure is paired with a join of a fresh node, keeping the
	// population stationary. Zero disables churn.
	MeanFailGap sim.Duration
}

// ChurnLBResult extends the load-balancing outcome with churn effects.
type ChurnLBResult struct {
	*LBResult
	Fails    int
	Joins    int
	Requeued int // jobs displaced by a failure and re-matched
	Lost     int // displaced jobs no remaining node could satisfy
}

// RunChurnLB executes a load-balancing run with node failures.
func RunChurnLB(cfg ChurnLBConfig) (*ChurnLBResult, error) {
	lb := cfg.LB
	eng := sim.New()
	space := resource.NewSpace(lb.GPUSlots)
	ov := can.NewOverlay(space.Dims())
	cluster := exec.NewCluster(eng, exec.Config{Gamma: lb.Gamma})

	ngen := workload.NewNodeGen(space, rng.Split(lb.Seed, "nodes"))
	ngen.ConcurrentGPUs = lb.ConcurrentGPUs
	redraw := rng.NewSplit(lb.Seed, "virtual-redraw")
	join := func() error {
		caps := ngen.One()
		for try := 0; ; try++ {
			node, err := ov.Join(space.NodePoint(caps), caps)
			if err == nil {
				cluster.AddNode(node.ID, caps)
				return nil
			}
			if try >= 8 {
				return err
			}
			caps.Virtual = redraw.Float64() * 0.999999
		}
	}
	for i := 0; i < lb.Nodes; i++ {
		if err := join(); err != nil {
			return nil, fmt.Errorf("experiments: initial join %d: %w", i, err)
		}
	}

	ctx := sched.NewContext(eng, ov, cluster, space, lb.Seed)
	ctx.StoppingFactor = lb.StoppingFactor
	ctx.RefreshPeriod = lb.RefreshPeriod
	ctx.DisableVirtualSpread = lb.DisableVirtualSpread
	var scheduler sched.Scheduler
	switch lb.Scheme {
	case CanHet:
		scheduler = sched.NewCanHet(ctx)
	case CanHom:
		scheduler = sched.NewCanHom(ctx)
	case Central:
		scheduler = sched.NewCentral(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", lb.Scheme)
	}
	if lb.Trace != nil {
		ctx.Probe = spans.New(eng, lb.Trace)
	}
	if m := lb.Metrics; m != nil {
		m.Attach(eng)
		metricsreg.RegisterGridGauges(m, ov, cluster, ctx.Agg, space.Dims(), lb.GPUSlots)
		if st := sched.StatsOf(scheduler); st != nil {
			metricsreg.RegisterSchedCounters(m, st)
		}
		metricsreg.RegisterClusterCounters(m, cluster)
		m.Poke()
	}

	jgen := workload.NewJobGen(space, rng.Split(lb.Seed, "jobs"))
	jgen.ConstraintRatio = lb.ConstraintRatio
	jgen.MeanInterArrival = lb.MeanInterArrival
	jgen.GPUJobFraction = lb.GPUJobFraction

	res := &ChurnLBResult{LBResult: &LBResult{Config: lb, WaitTimes: &stats.Sample{}}}
	churnRnd := rng.NewSplit(lb.Seed, "churnlb")
	remaining := lb.Jobs
	inFlight := 0

	// Node failure process: fail a random node, re-match its jobs, and
	// admit a replacement. Stops once the job stream has drained so the
	// run terminates.
	jobsDone := false
	var failEvent func(now sim.Time)
	failEvent = func(now sim.Time) {
		if jobsDone {
			return
		}
		nodes := ov.Nodes()
		if len(nodes) > 2 {
			victim := nodes[churnRnd.Intn(len(nodes))]
			// Overlay departure first: a rejected Leave must not strand
			// the victim's jobs outside the cluster's books.
			if _, err := ov.Leave(victim.ID); err == nil {
				orphans := cluster.RemoveNode(victim.ID)
				res.Fails++
				for _, j := range orphans {
					node, perr := scheduler.Place(j)
					if perr != nil {
						res.Lost++
						inFlight-- // will never finish
						continue
					}
					if cluster.Submit(j, node) != nil {
						res.Lost++
						inFlight--
						continue
					}
					res.Requeued++
				}
				if join() == nil {
					res.Joins++
				}
			}
		}
		eng.After(sim.FromSeconds(churnRnd.Exp(cfg.MeanFailGap.Seconds())), failEvent)
	}

	var arrive func(now sim.Time)
	arrive = func(now sim.Time) {
		if remaining == 0 {
			return
		}
		remaining--
		j, gap := jgen.Next()
		j.Submitted = now
		node, err := scheduler.Place(j)
		if err != nil {
			res.Failed++
		} else if err := cluster.Submit(j, node); err != nil {
			res.Failed++
		} else {
			res.Placed++
			inFlight++
		}
		if remaining > 0 {
			eng.After(gap, arrive)
		}
	}
	var lastFinish sim.Time
	cluster.OnFinish = func(j *exec.Job) {
		res.WaitTimes.Add(j.WaitTime().Seconds())
		lastFinish = eng.Now()
		inFlight--
		if remaining == 0 && inFlight == 0 {
			jobsDone = true // stops the failure process; engine drains
		}
	}
	eng.At(0, arrive)
	if cfg.MeanFailGap > 0 {
		eng.After(sim.FromSeconds(churnRnd.Exp(cfg.MeanFailGap.Seconds())), failEvent)
	}
	eng.Run()

	// Last completion, not eng.Now(): telemetry events may outlive the
	// final finish (see RunLoadBalance).
	res.Makespan = sim.Duration(lastFinish)
	return res, nil
}

// AblationChurnLB sweeps the node-failure rate under a flowing job
// stream: the cost of churn shows up as restarts (requeued work) and
// longer waits, and can-het's advantage over can-hom persists.
func AblationChurnLB(w io.Writer, scale Scale, seed int64) error {
	fmt.Fprintln(w, "Extension: load balancing under node churn (mean wait seconds)")
	tab := stats.NewTable("mean-fail-gap", "scheme", "mean(s)", "p99(s)", "requeued", "lost", "fails")
	for _, gap := range []sim.Duration{0, 600 * sim.Second, 120 * sim.Second} {
		for _, scheme := range []SchemeName{CanHet, CanHom} {
			lb := DefaultLBConfig(scheme)
			lb.Nodes = scale.nodes(lb.Nodes)
			lb.Jobs = scale.jobs(lb.Jobs)
			lb.MeanInterArrival = sim.Duration(float64(lb.MeanInterArrival) / float64(scale))
			lb.Seed = seed
			r, err := RunChurnLB(ChurnLBConfig{LB: lb, MeanFailGap: gap})
			if err != nil {
				return err
			}
			label := "none"
			if gap > 0 {
				label = fmt.Sprintf("%.0fs", gap.Seconds())
			}
			tab.AddRow(label, string(scheme),
				fmt.Sprintf("%.0f", r.WaitTimes.Mean()),
				fmt.Sprintf("%.0f", r.WaitTimes.Quantile(0.99)),
				r.Requeued, r.Lost, r.Fails)
		}
	}
	tab.Fprint(w)
	return nil
}
