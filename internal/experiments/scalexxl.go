package experiments

import "hetgrid/internal/sim"

// ScaleXXLNodes is the population of the churn-regime scaling
// configuration: two orders of magnitude past the paper's 1000-node
// evaluation. At this size any O(n) response to a single membership
// event dominates the run, so the configuration exists to exercise —
// and the `make bench-xxl` smoke to enforce — the O(Δ) churn path:
// delta-maintained snapshots, journal-spliced aggregation orders and
// binary-search candidate-index splices.
const ScaleXXLNodes = 100000

// ScaleXXLLBConfig returns the 100,000-node load-balance configuration
// behind `make bench-xxl`. It is DefaultLBConfig stretched to
// ScaleXXLNodes with the arrival rate scaled by the same population
// factor (MeanInterArrival 3 s → 30 ms), keeping the per-node arrival
// density at the evaluation's operating point. Jobs stays at the
// caller's discretion: the bench smoke lowers it so one full run fits
// a CI budget while still pushing every placement and aggregation
// structure to six-figure population.
func ScaleXXLLBConfig(scheme SchemeName) LBConfig {
	cfg := DefaultLBConfig(scheme)
	cfg.Nodes = ScaleXXLNodes
	cfg.MeanInterArrival = 30 * sim.Millisecond
	return cfg
}
