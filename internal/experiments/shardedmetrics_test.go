package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hetgrid/internal/metrics"
	"hetgrid/internal/sim"
)

// shardedStream runs one sharded Figure 8 cell with a telemetry plane
// attached and returns the exported JSONL stream plus the rendered cell.
func shardedStream(t *testing.T, cfg ScalabilityConfig, shards, workers int) (stream []byte, cell string) {
	t.Helper()
	m := metrics.New(2*sim.Second, 0)
	cfg.Metrics = m
	res := RunScalabilitySharded(cfg, shards, workers)
	var b bytes.Buffer
	if err := m.WriteJSONL(&b, "cell"); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if m.Samples() == 0 || m.Len() == 0 {
		t.Fatalf("S=%d W=%d: plane took %d samples, retained %d points", shards, workers, m.Samples(), m.Len())
	}
	return b.Bytes(), renderScalabilityResult(res)
}

// TestShardedTelemetryDeterminism pins the tentpole contract of the
// sharded telemetry plane: with per-shard facets merged at window
// barriers, the exported stream is a pure model property — the same
// seed produces a byte-identical stream for (S=1,W=1), (S=4,W=1) and
// (S=4,W=4) — and attaching the plane leaves the cell's figures
// byte-identical to a metrics-off run.
func TestShardedTelemetryDeterminism(t *testing.T) {
	cfg := shardedScaleTestConfig()

	off := renderScalabilityResult(RunScalabilitySharded(cfg, 1, 1))
	wantStream, wantCell := shardedStream(t, cfg, 1, 1)
	if wantCell != off {
		t.Fatalf("metrics-on diverged from metrics-off:\n--- off\n%s\n--- on\n%s", off, wantCell)
	}
	for _, series := range []string{"proto.alive_hosts", "proto.mean_view", "net.msgs_sent", "net.full.msgs_sent"} {
		if !bytes.Contains(wantStream, []byte(`"series":"`+series+`"`)) {
			t.Fatalf("stream lacks series %s", series)
		}
	}

	for _, c := range [][2]int{{4, 1}, {4, 4}} {
		gotStream, gotCell := shardedStream(t, cfg, c[0], c[1])
		if gotCell != wantCell {
			t.Errorf("S=%d W=%d cell diverged from S=1:\n--- S=1\n%s\n--- S=%d W=%d\n%s",
				c[0], c[1], wantCell, c[0], c[1], gotCell)
		}
		if !bytes.Equal(gotStream, wantStream) {
			t.Errorf("S=%d W=%d stream diverged from S=1: %s",
				c[0], c[1], firstDiff(wantStream, gotStream))
		}
	}
}

// TestShardedTelemetryMatchesSerialNames pins series parity: a sharded
// registration exports exactly the series, in exactly the order, of the
// serial registration — so downstream consumers never care which core
// produced a stream.
func TestShardedTelemetryMatchesSerialNames(t *testing.T) {
	cfg := shardedScaleTestConfig()

	serial := metrics.New(2*sim.Second, 0)
	scfg := cfg
	scfg.Metrics = serial
	RunScalability(scfg)

	sharded := metrics.New(2*sim.Second, 0)
	mcfg := cfg
	mcfg.Metrics = sharded
	RunScalabilitySharded(mcfg, 4, 2)

	var a, b []string
	for _, s := range serial.Series() {
		a = append(a, s.Name)
	}
	for _, s := range sharded.Series() {
		b = append(b, s.Name)
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("series mismatch:\nserial:  %v\nsharded: %v", a, b)
	}
}

// FuzzShardedTelemetry fuzzes the telemetry determinism contract the
// way FuzzShardedDeterminism fuzzes the engine's: for arbitrary seeds,
// the merged stream must be byte-identical across shard partitions and
// worker counts.
func FuzzShardedTelemetry(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(42))
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := DefaultScalabilityConfig(MaintSchemes[int(uint64(seed)%3)], 2, 24)
		cfg.HeartbeatPeriod = 1 * sim.Second
		cfg.MeanEventGap = 400 * sim.Millisecond
		cfg.Warmup = 1 * sim.Second
		cfg.Measure = 4 * sim.Second
		cfg.Seed = seed

		run := func(shards, workers int) []byte {
			m := metrics.New(sim.Second, 0)
			c := cfg
			c.Metrics = m
			RunScalabilitySharded(c, shards, workers)
			var b bytes.Buffer
			if err := m.WriteJSONL(&b, ""); err != nil {
				t.Fatalf("WriteJSONL: %v", err)
			}
			return b.Bytes()
		}
		want := run(1, 1)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty stream", seed)
		}
		for _, c := range [][2]int{{3, 1}, {3, 2}, {4, 4}} {
			if got := run(c[0], c[1]); !bytes.Equal(got, want) {
				t.Fatalf("seed %d: S=%d W=%d stream diverged: %s",
					seed, c[0], c[1], firstDiff(want, got))
			}
		}
	})
}
