package experiments

import (
	"strings"
	"testing"

	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
)

// smallLB returns a quick configuration preserving the paper's shape
// parameters.
func smallLB(scheme SchemeName, seed int64) LBConfig {
	cfg := DefaultLBConfig(scheme)
	cfg.Nodes = 120
	cfg.Jobs = 1200
	cfg.MeanInterArrival = 25 * sim.Second
	cfg.Seed = seed
	return cfg
}

func TestRunLoadBalanceCompletes(t *testing.T) {
	for _, scheme := range LBSchemes {
		res, err := RunLoadBalance(smallLB(scheme, 1))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Placed+res.Failed != 1200 {
			t.Fatalf("%s: placed %d + failed %d != 1200", scheme, res.Placed, res.Failed)
		}
		if res.WaitTimes.N() != res.Placed {
			t.Fatalf("%s: %d waits for %d placed jobs", scheme, res.WaitTimes.N(), res.Placed)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan", scheme)
		}
	}
}

func TestRunLoadBalanceRejectsUnknownScheme(t *testing.T) {
	cfg := smallLB("nonsense", 1)
	if _, err := RunLoadBalance(cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestSchemeOrderingUnderLoad is the paper's headline claim (Figures 5
// and 6): can-het tracks central and beats can-hom, with the gap most
// visible in the CDF tail.
func TestSchemeOrderingUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	means := map[SchemeName]float64{}
	p95 := map[SchemeName]float64{}
	for _, scheme := range LBSchemes {
		cfg := smallLB(scheme, 3)
		cfg.MeanInterArrival = 18 * sim.Second // load the system
		res, err := RunLoadBalance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		means[scheme] = res.WaitTimes.Mean()
		p95[scheme] = res.WaitTimes.Quantile(0.95)
	}
	t.Logf("means: %v  p95: %v", means, p95)
	if means[CanHom] <= means[CanHet] {
		t.Errorf("can-hom mean %.0f should exceed can-het %.0f", means[CanHom], means[CanHet])
	}
	if means[CanHet] > 6*means[Central]+60 {
		t.Errorf("can-het mean %.0f too far from central %.0f", means[CanHet], means[Central])
	}
}

func TestConstraintRatioMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	// Lower constraint ratios make matchmaking easier: can-het's mean
	// wait should not grow as the ratio drops (Figure 6's trend).
	var prev float64 = -1
	for _, q := range []float64{0.8, 0.4} {
		cfg := smallLB(CanHet, 5)
		cfg.ConstraintRatio = q
		res, err := RunLoadBalance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.WaitTimes.Mean() > prev*1.5+30 {
			t.Errorf("wait grew when constraints relaxed: %.0f -> %.0f", prev, res.WaitTimes.Mean())
		}
		prev = res.WaitTimes.Mean()
	}
}

func TestRunResilienceProducesSamples(t *testing.T) {
	cfg := DefaultResilienceConfig(proto.Compact)
	cfg.Nodes = 60
	cfg.HeartbeatPeriod = 10 * sim.Second
	cfg.MeanEventGap = 3 * sim.Second
	cfg.Horizon = 600 * sim.Second
	cfg.SampleEvery = 50 * sim.Second
	res := RunResilience(cfg)
	if len(res.Samples) < 10 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	if res.Joins == 0 || res.Fails+res.Leaves == 0 {
		t.Fatal("no churn recorded")
	}
	if res.MeanBroken() < 0 {
		t.Fatal("negative mean broken links")
	}
}

func TestRunScalabilityMeasuresCosts(t *testing.T) {
	cfg := DefaultScalabilityConfig(proto.Vanilla, 8, 60)
	cfg.HeartbeatPeriod = 10 * sim.Second
	cfg.Warmup = 60 * sim.Second
	cfg.Measure = 120 * sim.Second
	res := RunScalability(cfg)
	if res.MsgsPerNodeMin <= 0 || res.KBytesPerNodeMin <= 0 {
		t.Fatalf("no cost measured: %+v", res)
	}
	if res.AvgNeighbors <= 0 {
		t.Fatal("no neighbor statistics")
	}
}

func TestScalabilityVolumeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	run := func(scheme proto.Scheme, dims int) *ScalabilityResult {
		// Enough nodes that the per-face neighbor structure is not
		// saturated by the population's split depth.
		cfg := DefaultScalabilityConfig(scheme, dims, 250)
		cfg.HeartbeatPeriod = 10 * sim.Second
		cfg.Warmup = 60 * sim.Second
		cfg.Measure = 200 * sim.Second
		return RunScalability(cfg)
	}
	van5, van14 := run(proto.Vanilla, 5), run(proto.Vanilla, 14)
	com5, com14 := run(proto.Compact, 5), run(proto.Compact, 14)
	// Figure 8(b): vanilla volume grows much faster with d than compact.
	vanGrowth := van14.KBytesPerNodeMin / van5.KBytesPerNodeMin
	comGrowth := com14.KBytesPerNodeMin / com5.KBytesPerNodeMin
	t.Logf("volume growth 5→14 dims: vanilla %.2f×, compact %.2f×", vanGrowth, comGrowth)
	if vanGrowth < 1.5*comGrowth {
		t.Errorf("vanilla growth %.2f should far exceed compact growth %.2f", vanGrowth, comGrowth)
	}
	// Figure 8(a): message counts are scheme-insensitive.
	r := van14.MsgsPerNodeMin / com14.MsgsPerNodeMin
	if r < 0.8 || r > 1.3 {
		t.Errorf("message counts diverge across schemes: %.2f", r)
	}
}

func TestScaleHelpers(t *testing.T) {
	s := Scale(0.1)
	if s.nodes(1000) != 100 {
		t.Fatalf("nodes scaling wrong: %d", s.nodes(1000))
	}
	if s.nodes(10) != 20 {
		t.Fatal("node floor not applied")
	}
	if s.jobs(100) != 200 {
		t.Fatal("job floor not applied")
	}
	if s.dur(10*sim.Second) != sim.Minute {
		t.Fatal("duration floor not applied")
	}
}

func TestFigureRunnersRenderTables(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	var b strings.Builder
	if _, err := Figure5(&b, 0.03, 2, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 5(a)", "can-het", "can-hom", "central", "wait<=s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure5 output missing %q", want)
		}
	}
	b.Reset()
	if _, err := Figure7(&b, 0.03, 2, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vanilla") || !strings.Contains(b.String(), "time(s)") {
		t.Fatal("Figure7 output malformed")
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	var b strings.Builder
	if err := AblationVirtualDimension(&b, 0.02, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") || !strings.Contains(b.String(), "random") {
		t.Fatalf("virtual ablation output malformed:\n%s", b.String())
	}
	b.Reset()
	if err := AblationConcurrentGPUs(&b, 0.02, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "concurrent") {
		t.Fatal("GPU ablation output malformed")
	}
	b.Reset()
	if err := AblationFailureFraction(&b, 0.02, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fail-fraction") {
		t.Fatal("failure ablation output malformed")
	}
}

func TestRunChurnLBNoChurnMatchesPlain(t *testing.T) {
	lb := smallLB(CanHet, 7)
	plain, err := RunLoadBalance(lb)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := RunChurnLB(ChurnLBConfig{LB: lb})
	if err != nil {
		t.Fatal(err)
	}
	if churned.WaitTimes.Mean() != plain.WaitTimes.Mean() {
		t.Fatalf("zero-churn run diverges from plain run: %v vs %v",
			churned.WaitTimes.Mean(), plain.WaitTimes.Mean())
	}
	if churned.Fails != 0 || churned.Requeued != 0 {
		t.Fatal("churn counters nonzero without churn")
	}
}

func TestRunChurnLBWithFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run")
	}
	lb := smallLB(CanHet, 8)
	res, err := RunChurnLB(ChurnLBConfig{LB: lb, MeanFailGap: 200 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fails == 0 {
		t.Fatal("no failures injected")
	}
	// Every placed job either finished or was lost to a failure.
	if res.WaitTimes.N()+res.Lost != res.Placed {
		t.Fatalf("accounting: finished %d + lost %d != placed %d",
			res.WaitTimes.N(), res.Lost, res.Placed)
	}
	if res.Joins == 0 {
		t.Fatal("replacement joins missing")
	}
}

func TestScalabilityMaxPerFaceOverride(t *testing.T) {
	base := DefaultScalabilityConfig(proto.Vanilla, 8, 60)
	base.HeartbeatPeriod = 10 * sim.Second
	base.Warmup = 60 * sim.Second
	base.Measure = 120 * sim.Second

	bounded := base
	bounded.MaxPerFace = 1
	full := base
	full.MaxPerFace = -1

	rb := RunScalability(bounded)
	rf := RunScalability(full)
	if rf.MsgsPerNodeMin <= rb.MsgsPerNodeMin {
		t.Fatalf("full adjacency (%.1f msgs) should cost more than per-face 1 (%.1f)",
			rf.MsgsPerNodeMin, rb.MsgsPerNodeMin)
	}
}

func TestImbalanceComputed(t *testing.T) {
	res, err := RunLoadBalance(smallLB(CanHet, 9))
	if err != nil {
		t.Fatal(err)
	}
	im := res.Imbalance
	if im.Gini < 0 || im.Gini > 1 {
		t.Fatalf("gini out of range: %v", im.Gini)
	}
	if im.MaxOverMean < 1 {
		t.Fatalf("max/mean below 1: %v", im.MaxOverMean)
	}
	if im.CV < 0 {
		t.Fatalf("negative CV: %v", im.CV)
	}
}
