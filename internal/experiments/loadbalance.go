// Package experiments contains one driver per figure in the paper's
// evaluation (Section V): the load-balancing comparisons of Figures 5
// and 6, the failure-resilience run of Figure 7, and the scalability
// sweep of Figure 8. Each driver returns structured results plus a
// plain-text rendering of the same rows/series the paper plots.
package experiments

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
	"hetgrid/internal/spans"
	"hetgrid/internal/stats"
	"hetgrid/internal/trace"
	"hetgrid/internal/workload"
)

// SchemeName selects a matchmaking scheme for load-balancing runs.
type SchemeName string

// The three matchmakers compared in Figures 5 and 6.
const (
	CanHet  SchemeName = "can-het"
	CanHom  SchemeName = "can-hom"
	Central SchemeName = "central"
)

// LBSchemes lists the schemes in the order the figures present them.
var LBSchemes = []SchemeName{CanHet, CanHom, Central}

// LBConfig parameterizes one load-balancing simulation.
type LBConfig struct {
	Scheme           SchemeName
	Nodes            int
	Jobs             int
	GPUSlots         int // 2 → the 11-dimensional CAN of the evaluation
	MeanInterArrival sim.Duration
	ConstraintRatio  float64
	GPUJobFraction   float64
	StoppingFactor   float64
	Gamma            float64
	RefreshPeriod    sim.Duration
	Seed             int64
	// DisableVirtualSpread disables the virtual dimension's random job
	// coordinate (ablation): jobs then route with virtual coordinate 0.
	DisableVirtualSpread bool
	// ConcurrentGPUs generates accelerators that run multiple
	// simultaneous jobs — the paper's anticipated future GPUs — instead
	// of dedicated ones (extension experiment).
	ConcurrentGPUs bool
	// Cancel, when non-nil, is polled at every event boundary of the
	// simulation loop; once it returns true the run stops and reports an
	// error wrapping ErrCanceled. ReplicateLB wires this to the sweep's
	// CancelFlag so a failing replica halts its in-flight siblings.
	Cancel func() bool
	// Metrics, when non-nil, is attached to the run's engine and samples
	// the standard grid gauge/counter set on the virtual clock.
	// Telemetry-only: results are byte-identical with or without it.
	Metrics *metrics.Plane
	// Trace, when non-nil, receives job lifecycle events and placement
	// spans (place.route / place.push / place.match).
	Trace trace.Recorder
}

// DefaultLBConfig returns the evaluation's setup: 1000 nodes, 20000
// jobs, 11-dimensional CAN, constraint ratio 0.8, 3 s inter-arrival.
func DefaultLBConfig(scheme SchemeName) LBConfig {
	return LBConfig{
		Scheme:           scheme,
		Nodes:            1000,
		Jobs:             20000,
		GPUSlots:         2,
		MeanInterArrival: 3 * sim.Second,
		ConstraintRatio:  0.8,
		GPUJobFraction:   0.4,
		StoppingFactor:   2,
		Gamma:            0.3,
		RefreshPeriod:    60 * sim.Second,
		Seed:             1,
	}
}

// LBResult holds the outcome of one load-balancing run.
type LBResult struct {
	Config    LBConfig
	WaitTimes *stats.Sample // seconds, one per completed job
	Placed    int
	Failed    int // jobs no node could satisfy
	Makespan  sim.Duration
	Sched     sched.Stats
	// Imbalance summarizes how evenly completed work (busy
	// core-seconds) spread across nodes.
	Imbalance Imbalance
}

// Imbalance captures load-distribution quality across nodes.
type Imbalance struct {
	Gini        float64 // 0 = even, →1 = concentrated
	CV          float64 // coefficient of variation
	MaxOverMean float64 // classic imbalance factor (1 = even)
}

// RunLoadBalance executes one configuration to completion: it builds
// the grid, streams the job arrivals through the chosen matchmaker, and
// runs until every placed job has finished.
func RunLoadBalance(cfg LBConfig) (*LBResult, error) {
	eng := sim.New()
	space := resource.NewSpace(cfg.GPUSlots)
	ov := can.NewOverlay(space.Dims())
	cluster := exec.NewCluster(eng, exec.Config{Gamma: cfg.Gamma})

	// Population.
	ngen := workload.NewNodeGen(space, rng.Split(cfg.Seed, "nodes"))
	ngen.ConcurrentGPUs = cfg.ConcurrentGPUs
	redraw := rng.NewSplit(cfg.Seed, "virtual-redraw")
	for i := 0; i < cfg.Nodes; i++ {
		caps := ngen.One()
		var node *can.Node
		var err error
		for try := 0; ; try++ {
			node, err = ov.Join(space.NodePoint(caps), caps)
			if err == nil {
				break
			}
			if try >= 8 {
				return nil, fmt.Errorf("experiments: join node %d: %w", i, err)
			}
			caps.Virtual = redraw.Float64() * 0.999999
		}
		cluster.AddNode(node.ID, caps)
	}

	// Scheduler.
	ctx := sched.NewContext(eng, ov, cluster, space, cfg.Seed)
	ctx.StoppingFactor = cfg.StoppingFactor
	ctx.RefreshPeriod = cfg.RefreshPeriod
	ctx.DisableVirtualSpread = cfg.DisableVirtualSpread
	var scheduler sched.Scheduler
	switch cfg.Scheme {
	case CanHet:
		scheduler = sched.NewCanHet(ctx)
	case CanHom:
		scheduler = sched.NewCanHom(ctx)
	case Central:
		scheduler = sched.NewCentral(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", cfg.Scheme)
	}
	if cfg.Trace != nil {
		ctx.Probe = spans.New(eng, cfg.Trace)
	}
	if m := cfg.Metrics; m != nil {
		m.Attach(eng)
		metricsreg.RegisterGridGauges(m, ov, cluster, ctx.Agg, space.Dims(), cfg.GPUSlots)
		if st := sched.StatsOf(scheduler); st != nil {
			metricsreg.RegisterSchedCounters(m, st)
		}
		metricsreg.RegisterClusterCounters(m, cluster)
		m.Poke()
	}

	// Job stream.
	jgen := workload.NewJobGen(space, rng.Split(cfg.Seed, "jobs"))
	jgen.ConstraintRatio = cfg.ConstraintRatio
	jgen.MeanInterArrival = cfg.MeanInterArrival
	jgen.GPUJobFraction = cfg.GPUJobFraction

	res := &LBResult{Config: cfg, WaitTimes: &stats.Sample{}}
	remaining := cfg.Jobs
	var arrive func(now sim.Time)
	arrive = func(now sim.Time) {
		if remaining == 0 {
			return
		}
		remaining--
		j, gap := jgen.Next()
		j.Submitted = now
		if cfg.Trace != nil {
			cfg.Trace.Record(trace.Event{T: now.Seconds(), Kind: trace.JobSubmit, Node: -1, Job: int64(j.ID)})
		}
		node, err := scheduler.Place(j)
		if err != nil {
			res.Failed++
		} else if err := cluster.Submit(j, node); err != nil {
			res.Failed++
		} else {
			res.Placed++
		}
		if remaining > 0 {
			eng.After(gap, arrive)
		}
	}
	if cfg.Trace != nil {
		cluster.OnStart = func(j *exec.Job) {
			cfg.Trace.Record(trace.Event{
				T: eng.Now().Seconds(), Kind: trace.JobStart,
				Node: int64(j.RunNode), Job: int64(j.ID),
				Value: j.WaitTime().Seconds(),
			})
		}
	}
	var lastFinish sim.Time
	cluster.OnFinish = func(j *exec.Job) {
		res.WaitTimes.Add(j.WaitTime().Seconds())
		lastFinish = eng.Now()
		if cfg.Trace != nil {
			cfg.Trace.Record(trace.Event{
				T: eng.Now().Seconds(), Kind: trace.JobFinish,
				Node: int64(j.RunNode), Job: int64(j.ID),
				Value: j.WaitTime().Seconds(),
			})
		}
	}
	eng.At(0, arrive)
	if cfg.Cancel == nil {
		eng.Run()
	} else {
		// Stepped run: the cancellation flag is polled between events, so
		// a canceled replica halts at the next event boundary instead of
		// simulating its full horizon.
		for {
			if cfg.Cancel() {
				return nil, fmt.Errorf("experiments: load-balance run (scheme %s, seed %d): %w",
					cfg.Scheme, cfg.Seed, ErrCanceled)
			}
			if !eng.Step() {
				break
			}
		}
	}

	// Makespan is the last job completion, not the drained-queue clock:
	// telemetry sampling appends aligned events past the last finish, and
	// eng.Now() would make the reported makespan depend on whether a
	// sampler was attached.
	res.Makespan = sim.Duration(lastFinish)
	var work []float64
	for _, n := range ov.Nodes() {
		if rt := cluster.Runtime(n.ID); rt != nil {
			work = append(work, rt.BusyCoreSeconds())
		}
	}
	res.Imbalance = Imbalance{
		Gini:        stats.Gini(work),
		CV:          stats.CoefficientOfVariation(work),
		MaxOverMean: stats.MaxOverMean(work),
	}
	switch s := scheduler.(type) {
	case *sched.CanHet:
		res.Sched = s.Stats
	case *sched.CanHom:
		res.Sched = s.Stats
	case *sched.Central:
		res.Sched = s.Stats
	}
	if res.WaitTimes.N() != res.Placed {
		return nil, fmt.Errorf("experiments: %d jobs placed but %d finished", res.Placed, res.WaitTimes.N())
	}
	return res, nil
}
