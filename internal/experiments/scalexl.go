package experiments

import "hetgrid/internal/sim"

// ScaleXLNodes is the population of the extra-large scaling
// configuration: an order of magnitude past the paper's 1000-node
// evaluation, the regime the incremental aggregation plane targets.
const ScaleXLNodes = 10000

// ScaleXLLBConfig returns the 10,000-node load-balance configuration
// used by the `make bench-xl` smoke run and the scale benchmarks. It is
// DefaultLBConfig stretched to ScaleXLNodes with the arrival rate
// scaled by the same factor (MeanInterArrival 3 s → 300 ms), so the
// per-node arrival density — and with it queue depths and wait-time
// behavior — matches the evaluation's operating point rather than an
// idle grid. Jobs stays at the caller's discretion: the default 20000
// exercises steady state; reduced-iteration smoke runs lower it.
func ScaleXLLBConfig(scheme SchemeName) LBConfig {
	cfg := DefaultLBConfig(scheme)
	cfg.Nodes = ScaleXLNodes
	cfg.MeanInterArrival = 300 * sim.Millisecond
	return cfg
}
