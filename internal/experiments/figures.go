package experiments

import (
	"fmt"
	"io"

	"hetgrid/internal/metrics"
	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
	"hetgrid/internal/stats"
)

// Scale shrinks an experiment proportionally so the same code path
// serves the paper-sized regeneration (Scale = 1), quick CLI runs and
// the benchmark suite. Node counts, job counts and horizons multiply by
// Scale; all parameters that shape the result (dimensions, ratios,
// periods) stay fixed.
type Scale float64

func (s Scale) nodes(n int) int {
	v := int(float64(n) * float64(s))
	if v < 20 {
		v = 20
	}
	return v
}

func (s Scale) jobs(n int) int {
	v := int(float64(n) * float64(s))
	if v < 200 {
		v = 200
	}
	return v
}

func (s Scale) dur(d sim.Duration) sim.Duration {
	v := sim.Duration(float64(d) * float64(s))
	if v < sim.Minute {
		v = sim.Minute
	}
	return v
}

// waitGrid is the X axis of Figures 5 and 6: job wait time from 0 to
// 50000 s.
func waitGrid() []float64 { return stats.Grid(50000, 10) }

// Figure5 regenerates Figure 5: CDFs of job wait time for can-het,
// can-hom and central, varying the mean job inter-arrival time (2 s,
// 3 s, 4 s at full scale). Returns the per-subfigure results keyed in
// presentation order.
func Figure5(w io.Writer, scale Scale, seed int64, mc *MetricsCollector) ([][]*LBResult, error) {
	arrivals := []sim.Duration{2 * sim.Second, 3 * sim.Second, 4 * sim.Second}
	var all [][]*LBResult
	for i, ia := range arrivals {
		// Shrinking the population while holding arrival rate constant
		// would overload the grid; scale the arrival gap inversely.
		scaledIA := sim.Duration(float64(ia) / float64(scale))
		fmt.Fprintf(w, "Figure 5(%c): CDF of job wait time, inter-arrival %v s (scaled %v ms)\n",
			'a'+i, ia.Seconds(), int64(scaledIA))
		results, err := runLBSet(w, scale, seed, fmt.Sprintf("fig5%c", 'a'+i), mc, func(cfg *LBConfig) {
			cfg.MeanInterArrival = scaledIA
		})
		if err != nil {
			return nil, err
		}
		all = append(all, results)
		fmt.Fprintln(w)
	}
	return all, nil
}

// Figure6 regenerates Figure 6: CDFs of job wait time varying the job
// constraint ratio (80%, 60%, 40%) at the 3 s inter-arrival point.
func Figure6(w io.Writer, scale Scale, seed int64, mc *MetricsCollector) ([][]*LBResult, error) {
	ratios := []float64{0.8, 0.6, 0.4}
	var all [][]*LBResult
	for i, q := range ratios {
		fmt.Fprintf(w, "Figure 6(%c): CDF of job wait time, job constraint ratio %.0f%%\n", 'a'+i, q*100)
		results, err := runLBSet(w, scale, seed, fmt.Sprintf("fig6%c", 'a'+i), mc, func(cfg *LBConfig) {
			cfg.ConstraintRatio = q
			cfg.MeanInterArrival = sim.Duration(float64(3*sim.Second) / float64(scale))
		})
		if err != nil {
			return nil, err
		}
		all = append(all, results)
		fmt.Fprintln(w)
	}
	return all, nil
}

// runLBSet runs the three schemes on one configuration and prints the
// wait-time CDF table (percent of jobs with wait ≤ x, the paper's Y
// axis starting at 80%).
func runLBSet(w io.Writer, scale Scale, seed int64, label string, mc *MetricsCollector, tweak func(*LBConfig)) ([]*LBResult, error) {
	grid := waitGrid()
	tab := stats.NewTable(append([]string{"wait<=s"}, schemeNames()...)...)
	var results []*LBResult
	series := make([][]float64, 0, len(LBSchemes))
	for _, scheme := range LBSchemes {
		cfg := DefaultLBConfig(scheme)
		cfg.Nodes = scale.nodes(cfg.Nodes)
		cfg.Jobs = scale.jobs(cfg.Jobs)
		cfg.Seed = seed
		tweak(&cfg)
		cfg.Metrics = mc.Plane(fmt.Sprintf("%s-%s", label, scheme))
		res, err := RunLoadBalance(cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		series = append(series, res.WaitTimes.CDFSeries(grid))
	}
	for gi, x := range grid {
		row := make([]any, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.0f", x))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f%%", s[gi]))
		}
		tab.AddRow(row...)
	}
	tab.Fprint(w)
	for _, r := range results {
		fmt.Fprintf(w, "# %-8s mean=%.0fs p90=%.0fs p99=%.0fs max=%.0fs placed=%d failed=%d gini=%.3f\n",
			r.Config.Scheme, r.WaitTimes.Mean(), r.WaitTimes.Quantile(0.9),
			r.WaitTimes.Quantile(0.99), r.WaitTimes.Max(), r.Placed, r.Failed,
			r.Imbalance.Gini)
	}
	return results, nil
}

func schemeNames() []string {
	out := make([]string, len(LBSchemes))
	for i, s := range LBSchemes {
		out[i] = string(s)
	}
	return out
}

// Figure7 regenerates Figure 7: broken links over time under high churn
// in the 11-dimensional CAN, for the three heartbeat schemes.
func Figure7(w io.Writer, scale Scale, seed int64, mc *MetricsCollector) ([]*ResilienceResult, error) {
	fmt.Fprintln(w, "Figure 7: broken links over time under high churn (11-dim CAN)")
	var results []*ResilienceResult
	for _, scheme := range MaintSchemes {
		cfg := DefaultResilienceConfig(scheme)
		cfg.Nodes = scale.nodes(cfg.Nodes)
		cfg.Horizon = scale.dur(cfg.Horizon)
		cfg.SampleEvery = scale.dur(cfg.SampleEvery)
		cfg.Seed = seed
		cfg.Metrics = mc.Plane(fmt.Sprintf("fig7-%s", scheme))
		results = append(results, RunResilience(cfg))
	}
	tab := stats.NewTable("time(s)", "vanilla", "compact", "adaptive")
	n := len(results[0].Samples)
	for i := 0; i < n; i++ {
		row := []any{fmt.Sprintf("%.0f", results[0].Samples[i].At.Seconds())}
		for _, r := range results {
			if i < len(r.Samples) {
				row = append(row, r.Samples[i].Missing)
			} else {
				row = append(row, "-")
			}
		}
		tab.AddRow(row...)
	}
	tab.Fprint(w)
	for _, r := range results {
		fmt.Fprintf(w, "# %-8s mean broken=%.1f (joins=%d leaves=%d fails=%d)\n",
			r.Config.Scheme, r.MeanBroken(), r.Joins, r.Leaves, r.Fails)
	}
	return results, nil
}

// Figure8Dims and Figure8Nodes are the paper's sweep axes.
var (
	Figure8Dims  = []int{5, 8, 11, 14}
	Figure8Nodes = []int{500, 1000, 2000}
)

// Figure8 regenerates Figure 8: average heartbeat cost per node per
// minute versus CAN dimensionality, for each scheme and population
// size. Sub-figure (a) is message count, (b) is message volume in KB.
func Figure8(w io.Writer, scale Scale, seed int64, mc *MetricsCollector) (map[string]*ScalabilityResult, error) {
	type cell struct {
		scheme proto.Scheme
		nodes  int
		dims   int
	}
	var cells []cell
	for _, scheme := range MaintSchemes {
		for _, nodes := range Figure8Nodes {
			for _, dims := range Figure8Dims {
				cells = append(cells, cell{scheme, nodes, dims})
			}
		}
	}
	// The 36 cells are independent simulations: fan out over all cores.
	// Each cell gets its own plane up front so plane identity does not
	// depend on worker scheduling.
	planes := make([]*metrics.Plane, len(cells))
	for i, c := range cells {
		planes[i] = mc.Plane("fig8-" + fig8Key(c.scheme, c.nodes, c.dims))
	}
	runs := ParallelMap(len(cells), 0, func(i int) *ScalabilityResult {
		c := cells[i]
		cfg := DefaultScalabilityConfig(c.scheme, c.dims, scale.nodes(c.nodes))
		cfg.Warmup = scale.dur(cfg.Warmup)
		cfg.Measure = scale.dur(cfg.Measure)
		cfg.Seed = seed
		cfg.Metrics = planes[i]
		return RunScalability(cfg)
	})
	results := make(map[string]*ScalabilityResult, len(cells))
	for i, c := range cells {
		results[fig8Key(c.scheme, c.nodes, c.dims)] = runs[i]
	}
	for _, sub := range []struct {
		title string
		pick  func(*ScalabilityResult) float64
	}{
		{"Figure 8(a): messages per node per minute", func(r *ScalabilityResult) float64 { return r.MsgsPerNodeMin }},
		{"Figure 8(b): message volume per node per minute (KB)", func(r *ScalabilityResult) float64 { return r.KBytesPerNodeMin }},
	} {
		fmt.Fprintln(w, sub.title)
		headers := []string{"dims"}
		for _, scheme := range MaintSchemes {
			for _, nodes := range Figure8Nodes {
				headers = append(headers, fmt.Sprintf("%s-%d", scheme, nodes))
			}
		}
		tab := stats.NewTable(headers...)
		for _, dims := range Figure8Dims {
			row := []any{dims}
			for _, scheme := range MaintSchemes {
				for _, nodes := range Figure8Nodes {
					row = append(row, fmt.Sprintf("%.1f", sub.pick(results[fig8Key(scheme, nodes, dims)])))
				}
			}
			tab.AddRow(row...)
		}
		tab.Fprint(w)
		fmt.Fprintln(w)
	}
	return results, nil
}

func fig8Key(scheme proto.Scheme, nodes, dims int) string {
	return fmt.Sprintf("%s-%d-%d", scheme, nodes, dims)
}
