package experiments

import (
	"fmt"
	"runtime"

	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/netsim"
	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
)

// MaintSchemes lists the heartbeat schemes in figure order.
var MaintSchemes = []proto.Scheme{proto.Vanilla, proto.Compact, proto.Adaptive}

// ResilienceConfig parameterizes the Figure 7 run: broken links over
// time under high churn (events faster than the heartbeat period).
type ResilienceConfig struct {
	Scheme          proto.Scheme
	Nodes           int
	Dims            int
	HeartbeatPeriod sim.Duration
	// MeanEventGap controls churn intensity; the high-churn regime uses
	// a gap well under the heartbeat period.
	MeanEventGap sim.Duration
	FailFraction float64
	// Horizon is how long to run after the initial joins.
	Horizon sim.Duration
	// SampleEvery sets the broken-link sampling cadence.
	SampleEvery sim.Duration
	Seed        int64
	// Metrics, when non-nil, samples protocol health and per-kind
	// traffic on the run's virtual clock (telemetry-only).
	Metrics *metrics.Plane
}

// DefaultResilienceConfig mirrors the paper's Figure 7 setup: the
// 11-dimensional CAN with 1000 nodes under high churn, run past 30000
// simulated seconds.
func DefaultResilienceConfig(scheme proto.Scheme) ResilienceConfig {
	return ResilienceConfig{
		Scheme:          scheme,
		Nodes:           1000,
		Dims:            11,
		HeartbeatPeriod: 60 * sim.Second,
		MeanEventGap:    15 * sim.Second,
		FailFraction:    0.5,
		Horizon:         30000 * sim.Second,
		SampleEvery:     500 * sim.Second,
		Seed:            1,
	}
}

// ResilienceResult is one Figure 7 series.
type ResilienceResult struct {
	Config  ResilienceConfig
	Samples []proto.SamplePoint
	Joins   int
	Leaves  int
	Fails   int
}

// MeanBroken returns the time-averaged missing-link count over the
// sampled run.
func (r *ResilienceResult) MeanBroken() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += float64(s.Missing)
	}
	return sum / float64(len(r.Samples))
}

// RunResilience executes one Figure 7 configuration.
func RunResilience(cfg ResilienceConfig) *ResilienceResult {
	pcfg := proto.DefaultConfig(cfg.Scheme)
	pcfg.HeartbeatPeriod = cfg.HeartbeatPeriod
	pcfg.Seed = cfg.Seed
	s := proto.NewSim(cfg.Dims, pcfg)

	cc := proto.DefaultChurnConfig(cfg.Nodes, cfg.MeanEventGap)
	cc.FailFraction = cfg.FailFraction
	cc.Seed = cfg.Seed
	d := proto.NewChurnDriver(s, cc)
	d.Start()
	attachProtoMetrics(cfg.Metrics, s)

	res := &ResilienceResult{Config: cfg}
	proto.SampleBrokenLinks(s, d.ChurnStart, cfg.SampleEvery, &res.Samples)
	s.Eng.RunUntil(d.ChurnStart.Add(cfg.Horizon))
	res.Joins, res.Leaves, res.Fails = d.Joins, d.Leaves, d.Fails
	return res
}

// ScalabilityConfig parameterizes one cell of the Figure 8 sweep:
// steady-state maintenance cost for a scheme × dimension × population.
type ScalabilityConfig struct {
	Scheme          proto.Scheme
	Nodes           int
	Dims            int
	HeartbeatPeriod sim.Duration
	// MeanEventGap drives the equilibrium join/leave process during the
	// measurement (the paper's second stage).
	MeanEventGap sim.Duration
	FailFraction float64
	// Warmup runs after the initial joins before measuring; Measure is
	// the measurement window length.
	Warmup  sim.Duration
	Measure sim.Duration
	// MaxPerFace overrides the protocol's tracked-neighbor bound when
	// positive; negative disables the bound (full adjacency tracking);
	// zero keeps the default.
	MaxPerFace int
	Seed       int64
	// Metrics, when non-nil, samples protocol health and per-kind
	// traffic on the run's virtual clock (telemetry-only).
	Metrics *metrics.Plane
}

// DefaultScalabilityConfig returns one Figure 8 cell.
func DefaultScalabilityConfig(scheme proto.Scheme, dims, nodes int) ScalabilityConfig {
	return ScalabilityConfig{
		Scheme:          scheme,
		Nodes:           nodes,
		Dims:            dims,
		HeartbeatPeriod: 60 * sim.Second,
		MeanEventGap:    90 * sim.Second,
		FailFraction:    0.5,
		Warmup:          5 * 60 * sim.Second,
		Measure:         20 * 60 * sim.Second,
		Seed:            1,
	}
}

// ScalabilityResult is one Figure 8 cell: average messages and volume
// per node per minute, in aggregate and split by message kind (indexed
// by netsim.Kind).
type ScalabilityResult struct {
	Config           ScalabilityConfig
	MsgsPerNodeMin   float64
	KBytesPerNodeMin float64
	AvgNeighbors     float64
	ByKind           map[netsim.Kind]KindRate
}

// KindRate is one message kind's measured steady-state cost.
type KindRate struct {
	MsgsPerNodeMin   float64
	KBytesPerNodeMin float64
}

// RunScalability executes one Figure 8 cell.
func RunScalability(cfg ScalabilityConfig) *ScalabilityResult {
	pcfg := proto.DefaultConfig(cfg.Scheme)
	pcfg.HeartbeatPeriod = cfg.HeartbeatPeriod
	if cfg.MaxPerFace > 0 {
		pcfg.MaxPerFace = cfg.MaxPerFace
	} else if cfg.MaxPerFace < 0 {
		pcfg.MaxPerFace = 0
	}
	pcfg.Seed = cfg.Seed
	s := proto.NewSim(cfg.Dims, pcfg)

	cc := proto.DefaultChurnConfig(cfg.Nodes, cfg.MeanEventGap)
	cc.FailFraction = cfg.FailFraction
	cc.Seed = cfg.Seed
	d := proto.NewChurnDriver(s, cc)
	d.Start()
	attachProtoMetrics(cfg.Metrics, s)

	s.Eng.RunUntil(d.ChurnStart.Add(cfg.Warmup))
	s.Net.ResetWindow()
	start := s.Eng.Now()
	s.Eng.RunUntil(start.Add(cfg.Measure))

	return summarizeScalability(cfg, s.Ov.AvgNeighbors(), s.AliveHosts(), s.Net.Window(), s.Net.KindWindow)
}

// summarizeScalability folds one measured window into the per-node
// per-minute rates a Figure 8 cell reports, shared by the serial and
// sharded drivers so the two produce comparable (and, for an identical
// event history, identical) results.
func summarizeScalability(cfg ScalabilityConfig, avgNeighbors float64, alive int, w netsim.Counters, kindWindow func(netsim.Kind) netsim.Counters) *ScalabilityResult {
	minutes := cfg.Measure.Minutes()
	nodes := float64(alive)
	res := &ScalabilityResult{Config: cfg, AvgNeighbors: avgNeighbors}
	if nodes > 0 && minutes > 0 {
		res.MsgsPerNodeMin = float64(w.MsgsSent) / nodes / minutes
		res.KBytesPerNodeMin = float64(w.BytesSent) / 1024 / nodes / minutes
		res.ByKind = make(map[netsim.Kind]KindRate, len(netsim.AllKinds))
		for _, k := range netsim.AllKinds {
			kw := kindWindow(k)
			res.ByKind[k] = KindRate{
				MsgsPerNodeMin:   float64(kw.MsgsSent) / nodes / minutes,
				KBytesPerNodeMin: float64(kw.BytesSent) / 1024 / nodes / minutes,
			}
		}
	}
	return res
}

// RunScalabilitySharded executes one Figure 8 cell on the sharded
// simulation core: the same protocol, churn process and measurement
// window as RunScalability, with the keyspace partitioned into shards
// whose heartbeat phases execute on workers worker goroutines under
// the conservative time-window protocol. The sharded engine's
// determinism contract makes the result a pure function of the
// configuration — independent of both shards and workers — so drivers
// can pick the parallelism that fits the machine without perturbing
// the figures (shards and workers ≤ 0 select GOMAXPROCS).
//
// cfg.Metrics, when non-nil, samples the run through per-shard metric
// facets merged at window barriers (metrics.ShardedPlane): the sampler
// runs on the serial control plane with all shards quiesced, so the
// exported stream is byte-identical for any (shards, workers) pair and
// the cell's figures are byte-identical to a metrics-off run.
func RunScalabilitySharded(cfg ScalabilityConfig, shards, workers int) *ScalabilityResult {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	pcfg := proto.DefaultConfig(cfg.Scheme)
	pcfg.HeartbeatPeriod = cfg.HeartbeatPeriod
	if cfg.MaxPerFace > 0 {
		pcfg.MaxPerFace = cfg.MaxPerFace
	} else if cfg.MaxPerFace < 0 {
		pcfg.MaxPerFace = 0
	}
	pcfg.Seed = cfg.Seed
	ss := proto.NewShardedSim(shards, workers, cfg.Dims, pcfg)
	defer ss.Close()

	cc := proto.DefaultChurnConfig(cfg.Nodes, cfg.MeanEventGap)
	cc.FailFraction = cfg.FailFraction
	cc.Seed = cfg.Seed
	d := proto.NewShardedChurnDriver(ss, cc)
	d.Start()
	attachShardedProtoMetrics(cfg.Metrics, ss)

	ss.RunUntil(d.ChurnStart.Add(cfg.Warmup))
	ss.Net.ResetWindow()
	start := ss.SE.Now()
	ss.RunUntil(start.Add(cfg.Measure))

	return summarizeScalability(cfg, ss.Ov.AvgNeighbors(), ss.AliveHosts(), ss.Net.Window(), ss.Net.KindWindow)
}

// attachProtoMetrics wires a maintenance run's plane: protocol health
// gauges plus per-kind transport counters.
func attachProtoMetrics(m *metrics.Plane, s *proto.Sim) {
	if m == nil {
		return
	}
	m.Attach(s.Eng)
	metricsreg.RegisterProtoGauges(m, s)
	metricsreg.RegisterNetCounters(m, s.Net, "net")
	m.Poke()
}

// attachShardedProtoMetrics wires the same series as attachProtoMetrics
// against a sharded run: the plane samples on the control plane at
// window barriers, reading per-shard facets merged in stable shard
// order (metrics.ShardedPlane).
func attachShardedProtoMetrics(m *metrics.Plane, ss *proto.ShardedSim) {
	if m == nil {
		return
	}
	m.Attach(ss.SE)
	sp := metrics.NewShardedPlane(m, ss.Shards())
	metricsreg.RegisterShardedProtoGauges(sp, ss)
	metricsreg.RegisterShardedNetCounters(sp, ss.Net, "net")
	m.Poke()
}

func (r *ScalabilityResult) String() string {
	return fmt.Sprintf("%s d=%d n=%d: %.1f msgs/node/min, %.1f KB/node/min",
		r.Config.Scheme, r.Config.Dims, r.Config.Nodes, r.MsgsPerNodeMin, r.KBytesPerNodeMin)
}
