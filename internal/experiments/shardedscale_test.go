package experiments

import (
	"fmt"
	"strings"
	"testing"

	"hetgrid/internal/netsim"
	"hetgrid/internal/proto"
	"hetgrid/internal/sim"
)

// shardedScaleTestConfig is a reduced Figure 8 cell sized for the unit
// suite: enough population and churn to exercise cross-shard heartbeat
// traffic, small enough to run several (shards, workers) combinations.
func shardedScaleTestConfig() ScalabilityConfig {
	cfg := DefaultScalabilityConfig(proto.Adaptive, 3, 48)
	cfg.HeartbeatPeriod = 2 * sim.Second
	cfg.MeanEventGap = 500 * sim.Millisecond
	cfg.Warmup = 2 * sim.Second
	cfg.Measure = 10 * sim.Second
	return cfg
}

// renderScalabilityResult flattens a cell into a comparable string
// (maps don't compare with ==; kinds render in AllKinds order).
func renderScalabilityResult(r *ScalabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%v kb=%v nbrs=%v\n", r.MsgsPerNodeMin, r.KBytesPerNodeMin, r.AvgNeighbors)
	for _, k := range netsim.AllKinds {
		fmt.Fprintf(&b, "kind[%s]=%v\n", k, r.ByKind[k])
	}
	return b.String()
}

// TestRunScalabilityShardedDeterminism pins the experiment-level
// consequence of the engine's determinism contract: a sharded Figure 8
// cell is a pure function of its configuration, identical across every
// shard count and worker count.
func TestRunScalabilityShardedDeterminism(t *testing.T) {
	cfg := shardedScaleTestConfig()
	want := renderScalabilityResult(RunScalabilitySharded(cfg, 1, 1))
	if !strings.Contains(want, "kind[full]") || strings.Contains(want, "msgs=0 ") {
		t.Fatalf("degenerate cell:\n%s", want)
	}
	for _, c := range [][2]int{{2, 2}, {4, 1}, {4, 3}} {
		got := renderScalabilityResult(RunScalabilitySharded(cfg, c[0], c[1]))
		if got != want {
			t.Fatalf("S=%d W=%d diverged from S=1:\n--- S=1\n%s\n--- S=%d W=%d\n%s",
				c[0], c[1], want, c[0], c[1], got)
		}
	}
}
