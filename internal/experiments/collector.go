package experiments

import (
	"io"
	"sort"
	"sync"

	"hetgrid/internal/metrics"
	"hetgrid/internal/sim"
)

// MetricsCollector hands out one metrics plane per experiment run and
// exports them all as a single labeled JSONL stream. A nil collector is
// valid everywhere and hands out nil planes, so figure drivers thread
// one unconditionally. Plane creation is mutex-guarded (figure sweeps
// run cells via ParallelMap); each plane itself is used only by its
// run's single-threaded engine.
type MetricsCollector struct {
	// Interval is the sampling cadence handed to every plane (0 means
	// the metrics package default of 60 virtual seconds).
	Interval sim.Duration
	// MaxPoints bounds each series ring (0 means the package default).
	MaxPoints int

	mu     sync.Mutex
	planes []labeledPlane
}

type labeledPlane struct {
	label string
	plane *metrics.Plane
}

// Plane creates, registers, and returns a fresh plane labeled for one
// run. Returns nil on a nil collector.
func (mc *MetricsCollector) Plane(label string) *metrics.Plane {
	if mc == nil {
		return nil
	}
	p := metrics.New(mc.Interval, mc.MaxPoints)
	mc.mu.Lock()
	mc.planes = append(mc.planes, labeledPlane{label: label, plane: p})
	mc.mu.Unlock()
	return p
}

// Len returns the total number of retained points across all planes.
func (mc *MetricsCollector) Len() int {
	if mc == nil {
		return 0
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	n := 0
	for _, lp := range mc.planes {
		n += lp.plane.Len()
	}
	return n
}

// WriteJSONL exports every plane's series, planes ordered by label so
// the stream is independent of sweep scheduling order.
func (mc *MetricsCollector) WriteJSONL(w io.Writer) error {
	if mc == nil {
		return nil
	}
	mc.mu.Lock()
	planes := append([]labeledPlane(nil), mc.planes...)
	mc.mu.Unlock()
	sort.SliceStable(planes, func(i, j int) bool { return planes[i].label < planes[j].label })
	for _, lp := range planes {
		if err := lp.plane.WriteJSONL(w, lp.label); err != nil {
			return err
		}
	}
	return nil
}
