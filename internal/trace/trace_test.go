package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{T: 0, Kind: NodeJoin, Node: 1, Job: -1},
		{T: 1.5, Kind: JobSubmit, Node: 1, Job: 10},
		{T: 1.5, Kind: JobStart, Node: 1, Job: 10, Value: 0},
		{T: 61.25, Kind: JobFinish, Node: 1, Job: 10, Value: 0},
	}
}

func TestBufferRecordsInOrder(t *testing.T) {
	var b Buffer
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	evs := b.Events()
	if evs[0].Kind != NodeJoin || evs[3].Kind != JobFinish {
		t.Fatal("order not preserved")
	}
	// Events returns a copy.
	evs[0].Kind = "tampered"
	if b.Events()[0].Kind != NodeJoin {
		t.Fatal("Events does not copy")
	}
}

func TestBufferByKindAndKinds(t *testing.T) {
	var b Buffer
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	if got := b.ByKind(JobStart); len(got) != 1 || got[0].Job != 10 {
		t.Fatalf("ByKind = %v", got)
	}
	kinds := b.Kinds()
	if len(kinds) != 4 {
		t.Fatalf("Kinds = %v", kinds)
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatal("Kinds not sorted")
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var b Buffer
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	var out bytes.Buffer
	if err := b.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 4 {
		t.Fatalf("JSONL has %d lines", got)
	}
	back, err := ReadJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	for i, e := range back {
		if e != b.Events()[i] {
			t.Fatalf("event %d mutated in round trip: %+v vs %+v", i, e, b.Events()[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"t":1}{"bad`)); err == nil {
		t.Fatal("truncated input did not error")
	}
}

func TestCSVExport(t *testing.T) {
	var b Buffer
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	var out bytes.Buffer
	if err := b.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4", len(lines))
	}
	if lines[0] != "t,kind,node,job,value,depth,detail" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "job.finish") {
		t.Fatalf("last row = %q", lines[4])
	}
}

func TestJSONLRecorderStreams(t *testing.T) {
	var out bytes.Buffer
	r := NewJSONLRecorder(&out)
	for _, e := range sampleEvents() {
		r.Record(e)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	back, err := ReadJSONL(&out)
	if err != nil || len(back) != 4 {
		t.Fatalf("streaming round trip: %v, %d events", err, len(back))
	}
}

func TestMultiFanout(t *testing.T) {
	var a, b Buffer
	m := Multi(&a, &b)
	m.Record(Event{Kind: Sample, Value: 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("Multi did not fan out")
	}
}
