// Package trace records structured simulation events for offline
// analysis. Simulations stay deterministic and fast by default — no
// recorder installed means zero work — and a study that needs job
// lifecycle timelines or churn logs attaches a Recorder and gets JSONL
// or CSV with the standard library only.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind labels an event class.
type Kind string

// The event kinds emitted by the simulators.
const (
	JobSubmit  Kind = "job.submit"
	JobPlace   Kind = "job.place"
	JobStart   Kind = "job.start"
	JobFinish  Kind = "job.finish"
	JobRequeue Kind = "job.requeue"
	JobLost    Kind = "job.lost"
	NodeJoin   Kind = "node.join"
	NodeLeave  Kind = "node.leave"
	NodeFail   Kind = "node.fail"
	Sample     Kind = "sample"

	// Placement-span kinds: the causal steps between a job's submit and
	// its start/requeue. Node is the overlay node reached at that step,
	// Depth its causal depth under the submit, and Detail a kind-specific
	// tag (the match strategy, e.g. "free"/"accept"/"score").
	PlaceRoute Kind = "place.route"
	PlacePush  Kind = "place.push"
	PlaceMatch Kind = "place.match"
)

// Event is one recorded occurrence. Node and Job are -1 when not
// applicable; Value carries a kind-specific number (wait seconds,
// broken-link count, ...). Depth nests placement-span events under
// their job's submit; Detail carries a short kind-specific tag.
type Event struct {
	T      float64 `json:"t"` // virtual seconds
	Kind   Kind    `json:"kind"`
	Node   int64   `json:"node,omitempty"`
	Job    int64   `json:"job,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Depth  int     `json:"depth,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Recorder consumes events.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory recorder with query helpers. It is safe for
// concurrent use (parallel experiment runners may share one).
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a copy of the recorded events in record order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// ByKind returns the recorded events of one kind, in record order.
func (b *Buffer) ByKind(k Kind) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Kinds returns the distinct kinds recorded, sorted.
func (b *Buffer) Kinds() []Kind {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := map[Kind]struct{}{}
	for _, e := range b.events {
		set[e.Kind] = struct{}{}
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteJSONL streams the buffer as one JSON object per line.
func (b *Buffer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range b.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV streams the buffer as CSV with a header row.
func (b *Buffer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "kind", "node", "job", "value", "depth", "detail"}); err != nil {
		return err
	}
	for _, e := range b.Events() {
		rec := []string{
			strconv.FormatFloat(e.T, 'f', 3, 64),
			string(e.Kind),
			strconv.FormatInt(e.Node, 10),
			strconv.FormatInt(e.Job, 10),
			strconv.FormatFloat(e.Value, 'f', 3, 64),
			strconv.Itoa(e.Depth),
			e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSONLRecorder writes each event immediately as a JSON line.
type JSONLRecorder struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLRecorder wraps a writer.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	return &JSONLRecorder{enc: json.NewEncoder(w)}
}

// Record encodes the event; the first encoding error sticks.
func (r *JSONLRecorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = r.enc.Encode(e)
	}
}

// Err returns the first encoding error, if any.
func (r *JSONLRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Multi fans events out to several recorders.
func Multi(rs ...Recorder) Recorder { return multi(rs) }

type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// ReadJSONL parses a JSONL stream back into events (for tools that
// post-process recorded traces).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return out, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}
