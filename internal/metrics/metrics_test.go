package metrics

import (
	"bytes"
	"strings"
	"testing"

	"hetgrid/internal/sim"
)

// TestRingWrap fills a series past capacity and checks the retained
// window is the most recent points in chronological order.
func TestRingWrap(t *testing.T) {
	s := &Series{Name: "x", pts: make([]Point, 0, 4)}
	for i := 0; i < 10; i++ {
		s.record(Point{T: float64(i), Node: -1, V: float64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	got := s.Points()
	for i, p := range got {
		want := float64(6 + i)
		if p.T != want || p.V != want {
			t.Fatalf("point %d = %+v, want T=V=%v", i, p, want)
		}
	}
}

// TestCounterDelta checks counters export per-interval deltas with the
// baseline taken at Attach.
func TestCounterDelta(t *testing.T) {
	eng := sim.New()
	var total int64 = 100 // pre-Attach activity must not appear
	p := New(10*sim.Second, 0)
	p.RegisterCounter("c", func() int64 { return total })
	p.Attach(eng)

	total += 7
	p.SampleNow()
	total += 5
	p.SampleNow()
	p.SampleNow()

	pts := p.SeriesByName("c").Points()
	want := []float64{7, 5, 0}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, w := range want {
		if pts[i].V != w || pts[i].Node != -1 {
			t.Fatalf("point %d = %+v, want V=%v Node=-1", i, pts[i], w)
		}
	}
}

// nopCaller keeps the engine queue non-empty without doing anything.
type nopCaller struct{}

func (nopCaller) Call(sim.Time) {}

// TestDormancy: the sampler ticks while other events are pending, then
// goes dormant when it would be the only event left, so Run() drains.
// Poke re-arms it on an interval boundary.
func TestDormancy(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 0)
	p.RegisterGauge("g", func(k *Sink) { k.Emit(0, 1) })
	p.Attach(eng)

	// Work pending until t=35s: the sampler ticks at t=10,20,30, and at
	// the t=40 tick it finds the queue otherwise empty, so it samples
	// once more and disarms.
	eng.AfterCall(35*sim.Second, nopCaller{})
	p.Poke()
	eng.Run() // must terminate

	if got := p.Samples(); got != 4 {
		t.Fatalf("samples = %d, want 4 (t=10,20,30,40)", got)
	}
	if p.armed {
		t.Fatal("sampler still armed after drain")
	}

	// Re-poke at t=40s: next aligned boundary is t=50s.
	eng.AfterCall(1*sim.Second, nopCaller{})
	p.Poke()
	eng.Run()
	if got := p.Samples(); got != 5 {
		t.Fatalf("samples after re-poke = %d, want 5", got)
	}
	pts := p.SeriesByName("g").Points()
	if last := pts[len(pts)-1]; last.T != 50 {
		t.Fatalf("last sample at t=%v, want 50", last.T)
	}
}

// TestPokeIdempotent: double-Poke must not double-schedule.
func TestPokeIdempotent(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 0)
	p.Attach(eng)
	p.Poke()
	p.Poke()
	if got := eng.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
}

// TestExportFormats checks JSONL and CSV shapes and ordering.
func TestExportFormats(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 0)
	p.RegisterGauge("g", func(k *Sink) {
		k.Emit(1, 2.5)
		k.Emit(2, 3)
	})
	var c int64
	p.RegisterCounter("c", func() int64 { return c })
	p.Attach(eng)
	c = 4
	p.SampleNow()

	var jb bytes.Buffer
	if err := p.WriteJSONL(&jb, "run1"); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"run":"run1","series":"g","t":0,"node":1,"v":2.5}
{"run":"run1","series":"g","t":0,"node":2,"v":3}
{"run":"run1","series":"c","t":0,"node":-1,"v":4}
`
	if jb.String() != wantJSON {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", jb.String(), wantJSON)
	}

	var cb bytes.Buffer
	if err := p.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if lines[0] != "series,t,node,v" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4", len(lines))
	}
	if lines[1] != "g,0.000,1,2.5" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

// TestSamplingAllocs: a steady-state sampling pass over pre-warmed
// rings must not allocate.
func TestSamplingAllocs(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 64)
	p.RegisterGauge("g", func(k *Sink) {
		for n := int64(0); n < 16; n++ {
			k.Emit(n, float64(n))
		}
	})
	var c int64
	p.RegisterCounter("c", func() int64 { c++; return c })
	p.Attach(eng)
	// Warm the rings to full so record() never appends.
	for i := 0; i < 8; i++ {
		p.SampleNow()
	}
	avg := testing.AllocsPerRun(100, func() { p.SampleNow() })
	if avg != 0 {
		t.Fatalf("allocs per sampling pass = %v, want 0", avg)
	}
}
