package metrics

import (
	"bytes"
	"strings"
	"testing"

	"hetgrid/internal/sim"
)

// TestShardedMergeMath pins the three reductions: sum gauges add facet
// values, ratio gauges divide global sums (not average per-shard
// ratios), and sum counters export the per-interval delta of the
// shard-summed total with baselines captured at registration.
func TestShardedMergeMath(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 0)
	p.Attach(eng)
	sp := NewShardedPlane(p, 3)

	vals := []float64{1, 2, 3}
	nums := []float64{10, 0, 2}
	dens := []float64{4, 0, 1}
	counts := []int64{100, 200, 300} // pre-registration activity must not appear
	sp.RegisterSumGauge("g", func(sh int) float64 { return vals[sh] })
	sp.RegisterRatioGauge("r", func(sh int) (float64, float64) { return nums[sh], dens[sh] })
	sp.RegisterSumCounter("c", func(sh int) int64 { return counts[sh] })

	p.SampleNow()
	counts[0] += 7
	counts[2] += 5
	vals[1] = 20
	p.SampleNow()

	check := func(name string, want []float64) {
		t.Helper()
		pts := p.SeriesByName(name).Points()
		if len(pts) != len(want) {
			t.Fatalf("%s: got %d points, want %d", name, len(pts), len(want))
		}
		for i, w := range want {
			if pts[i].V != w || pts[i].Node != -1 {
				t.Fatalf("%s point %d = %+v, want V=%v Node=-1", name, i, pts[i], w)
			}
		}
	}
	check("g", []float64{6, 24})
	check("r", []float64{12.0 / 5.0, 12.0 / 5.0})
	check("c", []float64{0, 12})

	// Facet series carry the per-shard view: Node = shard index, and a
	// shard with an empty denominator reports ratio 0.
	fpts := sp.FacetSeries("r").Points()
	wantFacet := []Point{
		{T: 0, Node: 0, V: 2.5}, {T: 0, Node: 1, V: 0}, {T: 0, Node: 2, V: 2},
		{T: 0, Node: 0, V: 2.5}, {T: 0, Node: 1, V: 0}, {T: 0, Node: 2, V: 2},
	}
	if len(fpts) != len(wantFacet) {
		t.Fatalf("facet r: got %d points, want %d", len(fpts), len(wantFacet))
	}
	for i, w := range wantFacet {
		if fpts[i] != w {
			t.Fatalf("facet r point %d = %+v, want %+v", i, fpts[i], w)
		}
	}
	cpts := sp.FacetSeries("c").Points()
	wantC := []float64{0, 0, 0, 7, 0, 5}
	for i, w := range wantC {
		if cpts[i].V != w {
			t.Fatalf("facet c point %d = %+v, want V=%v", i, cpts[i], w)
		}
	}
}

// TestShardedFacetsExcludedFromExport: the wrapped plane's canonical
// export carries only the merged (partition-independent) series; the
// S-dependent facet streams come out solely via WriteFacetJSONL.
func TestShardedFacetsExcludedFromExport(t *testing.T) {
	eng := sim.New()
	p := New(10*sim.Second, 0)
	p.Attach(eng)
	sp := NewShardedPlane(p, 2)
	sp.RegisterSumGauge("g", func(sh int) float64 { return float64(sh + 1) })
	p.SampleNow()

	var merged bytes.Buffer
	if err := p.WriteJSONL(&merged, ""); err != nil {
		t.Fatal(err)
	}
	if got, want := merged.String(), `{"series":"g","t":0,"node":-1,"v":3}`+"\n"; got != want {
		t.Fatalf("merged export:\n%s\nwant:\n%s", got, want)
	}

	var facets bytes.Buffer
	if err := sp.WriteFacetJSONL(&facets, "f"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(facets.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("facet export has %d lines, want 2:\n%s", len(lines), facets.String())
	}
	for sh, want := range []string{
		`{"run":"f","series":"g","t":0,"node":0,"v":1}`,
		`{"run":"f","series":"g","t":0,"node":1,"v":2}`,
	} {
		if lines[sh] != want {
			t.Fatalf("facet line %d = %s, want %s", sh, lines[sh], want)
		}
	}
}

// TestShardedPlaneOnShardedEngine runs the plane against a real
// ShardedEngine: the sampler lives on the serial control plane, ticks
// at window barriers while shard work is pending, observes shard-local
// mutations made inside parallel windows, and goes dormant so Run()
// drains.
func TestShardedPlaneOnShardedEngine(t *testing.T) {
	se := sim.NewSharded(3, 100*sim.Millisecond)
	defer se.Close()
	se.SetWorkers(3)

	counts := make([]int64, 3)
	for sh := 0; sh < 3; sh++ {
		sh := sh
		se.Shard(sh).AfterCall(5*sim.Second, callerFunc(func(sim.Time) {
			counts[sh] += int64(sh + 1)
		}))
		se.Shard(sh).AfterCall(15*sim.Second, callerFunc(func(sim.Time) {
			counts[sh] += 10 * int64(sh+1)
		}))
	}

	p := New(10*sim.Second, 0)
	p.Attach(se)
	sp := NewShardedPlane(p, 3)
	sp.RegisterSumCounter("c", func(sh int) int64 { return counts[sh] })
	p.Poke()
	se.Run() // must terminate: the sampler disarms once shards drain

	// t=10: deltas 1+2+3; t=20: 10+20+30; the sampler found the queues
	// empty at t=20 and went dormant.
	pts := p.SeriesByName("c").Points()
	want := []float64{6, 60}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(pts), len(want), pts)
	}
	for i, w := range want {
		if pts[i].V != w {
			t.Fatalf("point %d = %+v, want V=%v", i, pts[i], w)
		}
	}
	if p.armed {
		t.Fatal("sampler still armed after drain")
	}
}

// callerFunc adapts a func to sim.Caller for shard-local test events.
type callerFunc func(sim.Time)

func (f callerFunc) Call(now sim.Time) { f(now) }
