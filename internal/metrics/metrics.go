// Package metrics is the deterministic telemetry plane of the
// simulator: a virtual-clock-driven sampler that snapshots registered
// per-node gauges and cumulative counters into ring-buffered time
// series, exportable as JSONL or CSV.
//
// The plane is strictly read-only with respect to the simulation.
// Gauge and counter callbacks must observe state without mutating it,
// draw no randomness, and trigger no lazy recomputation that feeds
// back into scheduling or protocol decisions — under that contract a
// run with metrics enabled produces byte-identical figure output to a
// run with metrics disabled (the sampler's events interleave into the
// engine's queue, but the relative order of all other events is
// preserved, and nothing the sampler reads changes behavior).
//
// Unlike internal/perf's process-global counters, a Plane is instance
// scoped: parallel experiment sweeps attach one plane per simulation
// engine, so concurrent cells never share telemetry state and a sweep
// samples identically at any worker count.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"hetgrid/internal/sim"
)

// DefaultMaxPoints bounds each series' ring buffer when the caller does
// not choose a capacity.
const DefaultMaxPoints = 1 << 14

// Point is one sample: virtual time in seconds, the node it describes
// (-1 for plane-wide scalars), and the value.
type Point struct {
	T    float64
	Node int64
	V    float64
}

// Series is a named ring buffer of points. Once the ring is full the
// oldest points are overwritten, so steady-state sampling allocates
// nothing and memory stays bounded regardless of horizon.
type Series struct {
	Name string
	pts  []Point // ring storage, capacity fixed at registration
	head int     // next overwrite position once full
	full bool
}

func (s *Series) record(p Point) {
	if !s.full {
		s.pts = append(s.pts, p)
		if len(s.pts) == cap(s.pts) {
			s.full = true
		}
		return
	}
	s.pts[s.head] = p
	s.head++
	if s.head == len(s.pts) {
		s.head = 0
	}
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Last returns the most recently recorded point, if any.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	i := len(s.pts) - 1
	if s.full {
		i = s.head - 1
		if i < 0 {
			i = len(s.pts) - 1
		}
	}
	return s.pts[i], true
}

// Points returns the retained points in chronological order (a copy).
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.pts))
	if s.full {
		out = append(out, s.pts[s.head:]...)
		return append(out, s.pts[:s.head]...)
	}
	return append(out, s.pts...)
}

// each visits the retained points in chronological order.
func (s *Series) each(f func(Point) error) error {
	if s.full {
		for _, p := range s.pts[s.head:] {
			if err := f(p); err != nil {
				return err
			}
		}
		for _, p := range s.pts[:s.head] {
			if err := f(p); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range s.pts {
		if err := f(p); err != nil {
			return err
		}
	}
	return nil
}

// Sink receives gauge emissions during one sampling pass. It is reused
// across passes so emitting costs no allocation.
type Sink struct {
	s *Series
	t float64
}

// Emit records one per-node value at the current sample time.
func (k *Sink) Emit(node int64, v float64) {
	k.s.record(Point{T: k.t, Node: node, V: v})
}

// GaugeFunc reports instantaneous per-node values by calling
// sink.Emit once per node (or once with node -1 for a scalar). It must
// emit in a deterministic order and must not mutate simulation state.
type GaugeFunc func(sink *Sink)

// CounterFunc reports a cumulative count. The plane converts it to a
// per-interval delta (the first interval is measured from Attach).
type CounterFunc func() int64

// Engine is the scheduling surface a plane samples on: the serial
// sim.Engine, or a sim.ShardedEngine — whose AtCall/AfterCall schedule
// on the serial control plane, so every sampling pass runs at a window
// barrier with all shards quiesced and all clocks aligned. Pending
// must count every queue (a sharded engine includes shard queues and
// unflushed mailboxes), so dormancy decisions are a pure model
// property, independent of the shard partition and the worker count.
type Engine interface {
	Now() sim.Time
	Pending() int
	AtCall(at sim.Time, c sim.Caller) sim.EventID
	AfterCall(d sim.Duration, c sim.Caller) sim.EventID
}

type gaugeReg struct {
	series *Series
	fn     GaugeFunc
}

type counterReg struct {
	series *Series
	fn     CounterFunc
	last   int64
}

// Plane is one simulation's telemetry plane. Register gauges and
// counters, Attach it to the engine, and it samples every interval
// while the simulation has work pending. A Plane is single-threaded,
// like the engine it watches.
type Plane struct {
	eng      Engine
	interval sim.Duration
	maxPts   int

	series   []*Series
	gauges   []gaugeReg
	counters []counterReg

	// Auxiliary registrations: sampled on every pass like the canonical
	// ones, but excluded from Series/WriteJSONL/WriteCSV. They hold
	// diagnostics whose values legitimately depend on execution knobs —
	// window policy, shard count — and so must never enter the canonical
	// stream, whose contract is byte-identity across those knobs.
	auxSeries   []*Series
	auxGauges   []gaugeReg
	auxCounters []counterReg

	sink    Sink
	armed   bool // a sampler event is currently scheduled
	stopped bool // Stop called: ignore pending events, refuse re-arming
	samples int
}

// New creates a plane sampling at the given interval. maxPoints bounds
// each series' ring (0 means DefaultMaxPoints).
func New(interval sim.Duration, maxPoints int) *Plane {
	if interval <= 0 {
		interval = 60 * sim.Second
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	return &Plane{interval: interval, maxPts: maxPoints}
}

// Interval returns the sampling cadence.
func (p *Plane) Interval() sim.Duration { return p.interval }

func (p *Plane) newSeries(name string) *Series {
	s := &Series{Name: name, pts: make([]Point, 0, p.maxPts)}
	p.series = append(p.series, s)
	return s
}

// RegisterGauge adds a named gauge. Registration order is export order,
// so callers must register deterministically.
func (p *Plane) RegisterGauge(name string, fn GaugeFunc) {
	p.gauges = append(p.gauges, gaugeReg{series: p.newSeries(name), fn: fn})
}

// RegisterCounter adds a named cumulative counter source; the plane
// records the per-interval delta at each sample (node -1).
func (p *Plane) RegisterCounter(name string, fn CounterFunc) {
	p.counters = append(p.counters, counterReg{series: p.newSeries(name), fn: fn})
}

func (p *Plane) newAuxSeries(name string) *Series {
	s := &Series{Name: name, pts: make([]Point, 0, p.maxPts)}
	p.auxSeries = append(p.auxSeries, s)
	return s
}

// RegisterAuxGauge adds a gauge to the auxiliary stream: sampled on the
// same passes as canonical series but kept out of Series, WriteJSONL
// and WriteCSV — export it via AuxSeries/WriteAuxJSONL. Use it for
// diagnostics that depend on execution knobs (window policy, worker
// count) and therefore must not perturb the byte-compared canonical
// stream.
func (p *Plane) RegisterAuxGauge(name string, fn GaugeFunc) {
	p.auxGauges = append(p.auxGauges, gaugeReg{series: p.newAuxSeries(name), fn: fn})
}

// RegisterAuxCounter adds a cumulative counter source to the auxiliary
// stream; per-interval deltas, node -1, same exclusion rules as
// RegisterAuxGauge.
func (p *Plane) RegisterAuxCounter(name string, fn CounterFunc) {
	p.auxCounters = append(p.auxCounters, counterReg{series: p.newAuxSeries(name), fn: fn})
}

// Attach binds the plane to an engine and initializes counter baselines
// so the first sample reports only post-Attach activity. It does not
// schedule a sampler event: call Poke to arm it (this keeps an attached
// but idle plane from pinning the event queue open).
func (p *Plane) Attach(eng Engine) {
	p.eng = eng
	for i := range p.counters {
		p.counters[i].last = p.counters[i].fn()
	}
	for i := range p.auxCounters {
		p.auxCounters[i].last = p.auxCounters[i].fn()
	}
}

// Stop permanently silences the plane: pending and future sampler
// events become no-ops and Poke stops re-arming. Recorded points are
// kept and stay exportable.
func (p *Plane) Stop() { p.stopped = true }

// Poke arms the sampler if it is attached and dormant. Drivers call it
// whenever new work enters the simulation; the sampler re-disarms
// itself when it finds the event queue otherwise empty, so a draining
// Run() terminates instead of ticking forever.
func (p *Plane) Poke() {
	if p.eng == nil || p.armed || p.stopped {
		return
	}
	p.armed = true
	now := p.eng.Now()
	// Align samples to interval boundaries so the sample times are a
	// function of the interval alone, not of when work arrived.
	next := now - now%sim.Time(p.interval) + sim.Time(p.interval)
	p.eng.AtCall(next, p)
}

// Call fires one sampling pass. Plane is its own sim.Caller so the
// periodic reschedule allocates nothing.
func (p *Plane) Call(now sim.Time) {
	if p.stopped {
		p.armed = false
		return
	}
	p.sampleAt(now)
	// Dormancy: if the sampler's own event was the last one, rearming
	// would keep the queue non-empty forever and Run() would never
	// drain. Go dormant instead; Poke re-arms on new work.
	if p.eng.Pending() == 0 {
		p.armed = false
		return
	}
	p.eng.AfterCall(p.interval, p)
}

// SampleNow takes one sampling pass at the engine's current time,
// outside the periodic schedule (benchmarks and smoke tests).
func (p *Plane) SampleNow() {
	if p.eng != nil {
		p.sampleAt(p.eng.Now())
	}
}

func (p *Plane) sampleAt(now sim.Time) {
	p.samples++
	t := now.Seconds()
	for i := range p.gauges {
		g := &p.gauges[i]
		p.sink.s, p.sink.t = g.series, t
		g.fn(&p.sink)
	}
	for i := range p.counters {
		c := &p.counters[i]
		cur := c.fn()
		c.series.record(Point{T: t, Node: -1, V: float64(cur - c.last)})
		c.last = cur
	}
	for i := range p.auxGauges {
		g := &p.auxGauges[i]
		p.sink.s, p.sink.t = g.series, t
		g.fn(&p.sink)
	}
	for i := range p.auxCounters {
		c := &p.auxCounters[i]
		cur := c.fn()
		c.series.record(Point{T: t, Node: -1, V: float64(cur - c.last)})
		c.last = cur
	}
}

// Samples returns the number of sampling passes taken.
func (p *Plane) Samples() int { return p.samples }

// Len returns the total number of retained points across all series.
func (p *Plane) Len() int {
	n := 0
	for _, s := range p.series {
		n += s.Len()
	}
	return n
}

// Series returns the plane's series in registration order.
func (p *Plane) Series() []*Series { return p.series }

// SeriesByName returns the named series, or nil.
func (p *Plane) SeriesByName(name string) *Series {
	for _, s := range p.series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AuxSeries returns the auxiliary series in registration order. They
// never appear in Series or the canonical exports.
func (p *Plane) AuxSeries() []*Series { return p.auxSeries }

// AuxSeriesByName returns the named auxiliary series, or nil.
func (p *Plane) AuxSeriesByName(name string) *Series {
	for _, s := range p.auxSeries {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// exportPoint is the JSONL line schema.
type exportPoint struct {
	Run    string  `json:"run,omitempty"`
	Series string  `json:"series"`
	T      float64 `json:"t"`
	Node   int64   `json:"node"`
	V      float64 `json:"v"`
}

// WriteJSONL exports every series (registration order, chronological
// points) as one JSON object per line. A non-empty run label is stamped
// on every line so collected multi-run streams stay attributable.
func (p *Plane) WriteJSONL(w io.Writer, run string) error {
	return writeSeriesJSONL(w, run, p.series)
}

// WriteAuxJSONL exports the auxiliary series in the same line schema as
// WriteJSONL, to a separate stream — auxiliary values depend on
// execution knobs, so they must never interleave into the canonical
// byte-compared export.
func (p *Plane) WriteAuxJSONL(w io.Writer, run string) error {
	return writeSeriesJSONL(w, run, p.auxSeries)
}

func writeSeriesJSONL(w io.Writer, run string, series []*Series) error {
	enc := json.NewEncoder(w)
	for _, s := range series {
		name := s.Name
		if err := s.each(func(pt Point) error {
			return enc.Encode(exportPoint{Run: run, Series: name, T: pt.T, Node: pt.Node, V: pt.V})
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports every series as CSV with a header row.
func (p *Plane) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t", "node", "v"}); err != nil {
		return err
	}
	for _, s := range p.series {
		name := s.Name
		if err := s.each(func(pt Point) error {
			return cw.Write([]string{
				name,
				strconv.FormatFloat(pt.T, 'f', 3, 64),
				strconv.FormatInt(pt.Node, 10),
				strconv.FormatFloat(pt.V, 'g', -1, 64),
			})
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
