package metrics

import "io"

// ShardedPlane adapts per-shard metric facets to an ordinary Plane.
//
// A sharded simulation keeps its observable state in per-shard facets
// (host maps, transport counters) that workers mutate with zero
// cross-shard sharing inside a parallel window. The plane's sampler is
// a control-plane actor (Plane.Attach on a sim.ShardedEngine schedules
// it on the serial global engine), so every sampling pass runs at a
// window barrier: all shards quiesced, all clocks aligned. At that
// instant a ShardedPlane registration reads each facet in ascending
// shard order and reduces the values into one merged sample.
//
// Two streams come out of a sampling pass:
//
//   - The merged series, recorded on the wrapped Plane under the same
//     names and export schema the serial registration uses. Because
//     sample times, dormancy decisions and the reductions (integer
//     sums, global ratios) are partition-independent, the merged
//     stream is a pure model property: same seed ⇒ byte-identical
//     JSONL for any shard count S and worker count W.
//   - Per-shard facet series (point Node = shard index), kept outside
//     the Plane's canonical export because their values are inherently
//     S-dependent. They exist for skew diagnostics: FacetSeries and
//     WriteFacetJSONL expose them explicitly.
//
// Register sharded sources only after Plane.Attach: counter baselines
// are captured at registration, mirroring how Attach baselines serial
// counters.
type ShardedPlane struct {
	p      *Plane
	shards int
	facets []*Series
}

// NewShardedPlane wraps a plane for an S-shard simulation. The plane
// should already be attached to the sharded engine.
func NewShardedPlane(p *Plane, shards int) *ShardedPlane {
	if shards < 1 {
		panic("metrics: sharded plane needs at least one shard")
	}
	return &ShardedPlane{p: p, shards: shards}
}

// Shards returns the facet count S.
func (sp *ShardedPlane) Shards() int { return sp.shards }

// Plane returns the wrapped plane carrying the merged series.
func (sp *ShardedPlane) Plane() *Plane { return sp.p }

func (sp *ShardedPlane) newFacet(name string) *Series {
	s := &Series{Name: name, pts: make([]Point, 0, sp.p.maxPts)}
	sp.facets = append(sp.facets, s)
	return s
}

// RegisterSumGauge registers a gauge whose merged value is the sum of
// fn over shards (emitted with node -1, like a serial scalar gauge).
// fn(shard) runs at barriers only and must not mutate simulation state.
func (sp *ShardedPlane) RegisterSumGauge(name string, fn func(shard int) float64) {
	facet := sp.newFacet(name)
	sp.p.RegisterGauge(name, func(k *Sink) {
		sum := 0.0
		for sh := 0; sh < sp.shards; sh++ {
			v := fn(sh)
			facet.record(Point{T: k.t, Node: int64(sh), V: v})
			sum += v
		}
		k.Emit(-1, sum)
	})
}

// RegisterRatioGauge registers a gauge whose merged value is
// Σnum/Σden over shards (0 when Σden is 0) — the global mean of a
// per-entity quantity, e.g. mean view size over all hosts. The facet
// series records each shard's own ratio.
func (sp *ShardedPlane) RegisterRatioGauge(name string, fn func(shard int) (num, den float64)) {
	facet := sp.newFacet(name)
	sp.p.RegisterGauge(name, func(k *Sink) {
		var nums, dens float64
		for sh := 0; sh < sp.shards; sh++ {
			num, den := fn(sh)
			fv := 0.0
			if den != 0 {
				fv = num / den
			}
			facet.record(Point{T: k.t, Node: int64(sh), V: fv})
			nums += num
			dens += den
		}
		if dens == 0 {
			k.Emit(-1, 0)
			return
		}
		k.Emit(-1, nums/dens)
	})
}

// RegisterSumCounter registers a cumulative counter summed over shards.
// The merged series records the per-interval delta of the sum at node
// -1 — the exact export semantics of a serial Plane counter — and the
// facet series records each shard's own delta. Baselines are captured
// here, so register after the simulation's setup traffic if that
// traffic should not count.
func (sp *ShardedPlane) RegisterSumCounter(name string, fn func(shard int) int64) {
	facet := sp.newFacet(name)
	last := make([]int64, sp.shards)
	for sh := range last {
		last[sh] = fn(sh)
	}
	sp.p.RegisterGauge(name, func(k *Sink) {
		var sum int64
		for sh := 0; sh < sp.shards; sh++ {
			cur := fn(sh)
			d := cur - last[sh]
			last[sh] = cur
			facet.record(Point{T: k.t, Node: int64(sh), V: float64(d)})
			sum += d
		}
		k.Emit(-1, float64(sum))
	})
}

// FacetSeries returns the per-shard series for a registered name (point
// Node is the shard index), or nil. Facet series are diagnostics: they
// are excluded from the wrapped plane's export because their contents
// depend on the shard partition.
func (sp *ShardedPlane) FacetSeries(name string) *Series {
	for _, s := range sp.facets {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteFacetJSONL exports every per-shard facet series (node = shard
// index) in registration order, stamped with the run label.
func (sp *ShardedPlane) WriteFacetJSONL(w io.Writer, run string) error {
	return writeSeriesJSONL(w, run, sp.facets)
}
