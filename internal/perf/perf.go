// Package perf is the process-wide performance instrumentation registry
// for the simulation core: named monotonic counters (events processed,
// messages sent, score evaluations, aggregation refreshes, …) and gated
// timers, plus a CPU-profile helper for the command-line drivers.
//
// Counters are always on: they are single atomic adds, cheap enough for
// the hottest paths, and safe under the parallel experiment sweeps.
// Timers call the wall clock, so they are disabled unless a driver opts
// in with SetEnabled(true) (the -perfstats flag).
//
// Instrumentation is telemetry only — it never feeds back into
// simulation state, so the determinism guarantee of DESIGN.md §3 (same
// seed ⇒ byte-identical output) is unaffected by whether it is enabled.
package perf

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonic counter. Create with NewCounter at
// package init; Add/Inc are safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Timer accumulates wall-clock durations of a named operation. Start
// is a no-op (returning a no-op stop) while the registry is disabled.
type Timer struct {
	name  string
	ns    atomic.Int64
	count atomic.Int64
}

var (
	mu       sync.Mutex
	counters = map[string]*Counter{}
	timers   = map[string]*Timer{}
	enabled  atomic.Bool
)

// NewCounter registers (or retrieves) the counter with the given name.
// Names are dotted paths, e.g. "sim.events_fired".
func NewCounter(name string) *Counter {
	mu.Lock()
	defer mu.Unlock()
	if c := counters[name]; c != nil {
		return c
	}
	c := &Counter{name: name}
	counters[name] = c
	return c
}

// NewTimer registers (or retrieves) the timer with the given name.
func NewTimer(name string) *Timer {
	mu.Lock()
	defer mu.Unlock()
	if t := timers[name]; t != nil {
		return t
	}
	t := &Timer{name: name}
	timers[name] = t
	return t
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

var noopStop = func() {}

// Start begins one timed operation and returns the function that ends
// it. When the registry is disabled both ends are no-ops.
func (t *Timer) Start() func() {
	if !enabled.Load() {
		return noopStop
	}
	begin := time.Now()
	return func() {
		t.ns.Add(int64(time.Since(begin)))
		t.count.Add(1)
	}
}

// Total returns the accumulated duration and the number of timed
// operations.
func (t *Timer) Total() (time.Duration, int64) {
	return time.Duration(t.ns.Load()), t.count.Load()
}

// SetEnabled turns timers on or off. Counters are unaffected (always
// on).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether timers are active.
func Enabled() bool { return enabled.Load() }

// Reset zeroes every registered counter and timer (for tests and for
// per-phase reporting in drivers).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, t := range timers {
		t.ns.Store(0)
		t.count.Store(0)
	}
}

// Stat is one registry entry in a Snapshot.
type Stat struct {
	Name  string
	Count int64         // counter value, or timed-operation count
	Total time.Duration // zero for counters
}

// Snapshot returns all registered entries sorted by name. Counters come
// back with Total == 0; timers carry both the op count and total time.
func Snapshot() []Stat {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Stat, 0, len(counters)+len(timers))
	for _, c := range counters {
		out = append(out, Stat{Name: c.name, Count: c.v.Load()})
	}
	for _, t := range timers {
		out = append(out, Stat{Name: t.name, Count: t.count.Load(), Total: time.Duration(t.ns.Load())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fprint renders the registry as an aligned two/three column report,
// skipping zero entries.
func Fprint(w io.Writer) {
	stats := Snapshot()
	width := 0
	for _, s := range stats {
		if s.Count != 0 && len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range stats {
		if s.Count == 0 {
			continue
		}
		if s.Total > 0 {
			per := time.Duration(int64(s.Total) / s.Count)
			fmt.Fprintf(w, "%-*s  %12d  total=%v avg=%v\n", width, s.Name, s.Count, s.Total, per)
		} else {
			fmt.Fprintf(w, "%-*s  %12d\n", width, s.Name, s.Count)
		}
	}
}

// Instrument wires the standard driver flags in one call: cpuProfile
// (the -pprof flag; empty disables profiling) starts a CPU profile, and
// stats (the -perfstats flag) enables timers now and prints the registry
// report to stderr at stop. The returned stop function is safe to defer
// unconditionally.
func Instrument(cpuProfile string, stats bool) (stop func(), err error) {
	var stopProfile func() error
	if cpuProfile != "" {
		stopProfile, err = StartCPUProfile(cpuProfile)
		if err != nil {
			return nil, err
		}
	}
	SetEnabled(stats)
	return func() {
		if stopProfile != nil {
			if err := stopProfile(); err != nil {
				fmt.Fprintln(os.Stderr, "perf: stopping cpu profile:", err)
			}
		}
		if stats {
			fmt.Fprintln(os.Stderr, "--- perf counters ---")
			Fprint(os.Stderr)
		}
	}, nil
}

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function. Drivers wire this to a -pprof flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
