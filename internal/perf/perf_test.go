package perf

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterRegistryIdempotent(t *testing.T) {
	a := NewCounter("test.reg")
	b := NewCounter("test.reg")
	if a != b {
		t.Fatal("NewCounter with the same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test.concurrent")
	c.v.Store(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTimerGating(t *testing.T) {
	tm := NewTimer("test.timer")
	SetEnabled(false)
	tm.Start()()
	if _, n := tm.Total(); n != 0 {
		t.Fatalf("disabled timer recorded %d ops", n)
	}
	SetEnabled(true)
	defer SetEnabled(false)
	tm.Start()()
	d, n := tm.Total()
	if n != 1 || d < 0 {
		t.Fatalf("enabled timer recorded n=%d d=%v", n, d)
	}
}

func TestSnapshotSortedAndPrint(t *testing.T) {
	NewCounter("test.b").Inc()
	NewCounter("test.a").Inc()
	stats := Snapshot()
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Name > stats[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", stats[i-1].Name, stats[i].Name)
		}
	}
	var b strings.Builder
	Fprint(&b)
	if !strings.Contains(b.String(), "test.a") {
		t.Fatalf("report missing counter:\n%s", b.String())
	}
}
