// Package resource models heterogeneous computing elements (CEs), node
// capabilities, and job resource requirements, following Section III of
// the paper.
//
// A node contains one or more CEs: always a CPU (a non-dedicated CE,
// which can run several jobs at once on separate cores, with contention)
// and optionally accelerators such as GPUs (dedicated CEs, which run at
// most one job at a time). Each CE type occupies a fixed group of CAN
// dimensions, so the resource vectors of nodes and jobs map to points in
// the CAN coordinate space (see Space).
package resource

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CEType identifies a class of computing element. Type 0 is always the
// CPU; types 1..N are accelerator types (distinct GPU architectures in
// the paper's evaluation), each with its own group of CAN dimensions.
type CEType int

// TypeCPU is the CE type of the (single) CPU in every node.
const TypeCPU CEType = 0

// String returns "cpu" for the CPU and "gpuK" for accelerator type K.
func (t CEType) String() string {
	if t == TypeCPU {
		return "cpu"
	}
	return fmt.Sprintf("gpu%d", int(t))
}

// CE describes one computing element of a node.
//
// Dedicated CEs run at most one job at a time — the GPUs of the paper's
// evaluation ("current GPUs can run only a single job at a time").
// Non-dedicated CEs run several jobs on separate cores with contention:
// every CPU, and optionally accelerators modeling the concurrent-kernel
// GPUs the paper anticipates ("the next version of Nvidia GPUs will run
// multiple simultaneous jobs").
type CE struct {
	Type      CEType
	Dedicated bool    // true: runs at most one job at a time (GPU-like)
	Clock     float64 // clock speed relative to the nominal clock (1.0)
	Cores     int     // number of cores in the CE
	Memory    float64 // memory dedicated to this CE, in GB
}

// NodeCaps is the static capability vector of a grid node.
type NodeCaps struct {
	CEs     []CE    // CEs[0] is the CPU; accelerators follow, sorted by Type
	Disk    float64 // available disk space in GB (node-level resource)
	Virtual float64 // random coordinate in [0,1) for the virtual dimension
}

// CE returns the node's CE of the given type, or nil if the node has
// none.
func (n *NodeCaps) CE(t CEType) *CE {
	for i := range n.CEs {
		if n.CEs[i].Type == t {
			return &n.CEs[i]
		}
	}
	return nil
}

// CPU returns the node's CPU CE. Every well-formed node has one.
func (n *NodeCaps) CPU() *CE { return n.CE(TypeCPU) }

// Validate checks structural invariants: a CPU in slot 0, accelerators
// sorted by type with no duplicates, positive clocks and core counts.
func (n *NodeCaps) Validate() error {
	if len(n.CEs) == 0 {
		return fmt.Errorf("node has no CEs")
	}
	if n.CEs[0].Type != TypeCPU {
		return fmt.Errorf("CEs[0] has type %v, want cpu", n.CEs[0].Type)
	}
	if n.CEs[0].Dedicated {
		return fmt.Errorf("CPU must be non-dedicated")
	}
	prev := CEType(-1)
	for i, ce := range n.CEs {
		if ce.Type <= prev {
			return fmt.Errorf("CEs[%d]: type %v out of order or duplicated", i, ce.Type)
		}
		prev = ce.Type
		if ce.Clock <= 0 {
			return fmt.Errorf("CEs[%d] (%v): clock %v must be positive", i, ce.Type, ce.Clock)
		}
		if ce.Cores <= 0 {
			return fmt.Errorf("CEs[%d] (%v): cores %d must be positive", i, ce.Type, ce.Cores)
		}
		if ce.Memory < 0 {
			return fmt.Errorf("CEs[%d] (%v): negative memory", i, ce.Type)
		}
	}
	if n.Disk < 0 {
		return fmt.Errorf("negative disk")
	}
	if n.Virtual < 0 || n.Virtual >= 1 {
		return fmt.Errorf("virtual coordinate %v outside [0,1)", n.Virtual)
	}
	return nil
}

func (n *NodeCaps) String() string {
	var b strings.Builder
	for i, ce := range n.CEs {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%v(%.1fx,%dc,%.0fGB)", ce.Type, ce.Clock, ce.Cores, ce.Memory)
	}
	fmt.Fprintf(&b, " disk=%.0fGB", n.Disk)
	return b.String()
}

// CEReq is a job's requirement on one CE type. Zero fields mean "any
// amount is acceptable" (the paper's omitted requirement).
type CEReq struct {
	Clock  float64 // minimum clock speed, relative to nominal
	Memory float64 // minimum CE memory in GB
	Cores  int     // cores the job occupies on this CE (≥1 once specified)
}

// JobReq is a job's full requirement vector.
type JobReq struct {
	CE   map[CEType]CEReq // requirements per CE type; absent type = not needed
	Disk float64          // minimum disk space in GB; 0 = unspecified
}

// Clone returns a deep copy of r.
func (r JobReq) Clone() JobReq {
	c := JobReq{Disk: r.Disk}
	if r.CE != nil {
		c.CE = make(map[CEType]CEReq, len(r.CE))
		for t, q := range r.CE {
			c.CE[t] = q
		}
	}
	return c
}

// Types returns the CE types the job requires, sorted ascending.
func (r JobReq) Types() []CEType {
	ts := make([]CEType, 0, len(r.CE))
	for t := range r.CE {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// CoresOn returns the number of cores the job occupies on CE type t: the
// specified requirement, but at least 1 for any required CE (a job that
// names a CE uses at least one of its cores).
func (r JobReq) CoresOn(t CEType) int {
	q, ok := r.CE[t]
	if !ok {
		return 0
	}
	if q.Cores < 1 {
		return 1
	}
	return q.Cores
}

// Satisfies reports whether node n can ever run a job with requirements
// r: every required CE type exists on the node with sufficient clock,
// memory and cores, and the node has sufficient disk. Availability (idle
// vs busy) is a separate, dynamic question answered by the exec package.
func Satisfies(n *NodeCaps, r JobReq) bool {
	if n.Disk < r.Disk {
		return false
	}
	for t, q := range r.CE {
		ce := n.CE(t)
		if ce == nil {
			return false
		}
		if ce.Clock < q.Clock || ce.Memory < q.Memory || ce.Cores < r.CoresOn(t) {
			return false
		}
	}
	return true
}

// DominantCE returns the job's dominant CE type: among the required CE
// types, the one demanding the most secondary resources (Section
// III-B's rule, applied literally: the sum of the requested memory in
// GB and core count). Raw amounts — not normalized fractions — are
// compared, so a many-core GPU demand dominates a single CPU control
// thread, matching the paper's CUDA example. Ties go to the higher CE
// type so an accelerator wins over the CPU. A job with no CE
// requirement defaults to the CPU.
func DominantCE(r JobReq) CEType {
	if len(r.CE) == 0 {
		return TypeCPU
	}
	best := CEType(-1)
	bestScore := -1.0
	for _, t := range r.Types() {
		q := r.CE[t]
		score := q.Memory + float64(r.CoresOn(t))
		if score > bestScore || (score == bestScore && t > best) {
			best, bestScore = t, score
		}
	}
	return best
}

// Norms holds the reference maxima used to normalize resource amounts —
// both for dominant-CE selection and for mapping values into [0,1) CAN
// coordinates.
type Norms struct {
	CPUClock  float64
	Memory    float64 // main memory
	Disk      float64
	CPUCores  int
	GPUClock  float64
	GPUMemory float64
	GPUCores  int
}

// DefaultNorms are reference maxima matching the synthetic workload
// catalogs in the workload package.
func DefaultNorms() Norms {
	return Norms{
		CPUClock:  4.0,
		Memory:    16,
		Disk:      1000,
		CPUCores:  8,
		GPUClock:  2.0,
		GPUMemory: 6,
		GPUCores:  512,
	}
}

// ScoreDedicated is Equation 1: the score of a dedicated CE is its job
// queue size (running + queued jobs) divided by its clock speed. Lower
// is better.
func ScoreDedicated(queueSize int, clock float64) float64 {
	return float64(queueSize) / clock
}

// ScoreNonDedicated is Equation 2: the score of a non-dedicated CE is
// its core utilization (required cores of running and waiting jobs over
// the CE's core count) divided by its clock speed. Lower is better.
func ScoreNonDedicated(requiredCores, cores int, clock float64) float64 {
	return float64(requiredCores) / float64(cores) / clock
}

// PushObjective is Equation 3: the objective for pushing toward neighbor
// N along a dimension, for the job's dominant CE type C —
// SumOfRequiredCores / NumberOfCores² over the aggregated load
// information beyond N. Lower means a less-loaded, better-provisioned
// region. A region with no cores of type C is useless for the job, so
// the objective is +Inf there (returned as a very large finite value to
// keep comparisons total).
func PushObjective(sumRequiredCores float64, numberOfCores float64) float64 {
	if numberOfCores <= 0 {
		return 1e18
	}
	return sumRequiredCores / (numberOfCores * numberOfCores)
}

// StopProbability is Equation 4: the probability that the push stops at
// the current node, 1/(1+nodesBeyond)^SF, where nodesBeyond is the
// number of nodes in the aggregated load information along the chosen
// target dimension and sf is the stopping factor.
func StopProbability(nodesBeyond int, sf float64) float64 {
	if nodesBeyond < 0 {
		nodesBeyond = 0
	}
	return math.Pow(1.0/(1.0+float64(nodesBeyond)), sf)
}
