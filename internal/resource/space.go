package resource

import (
	"fmt"

	"hetgrid/internal/geom"
)

// Space defines the CAN dimension layout for a grid with a given number
// of accelerator type slots, and maps node capabilities and job
// requirements to CAN coordinates.
//
// Layout (Section III-A): 4 CPU/node dimensions (clock, memory, disk,
// cores), then 3 dimensions per accelerator slot (clock, memory, cores),
// then one virtual dimension. GPUSlots of 0, 1, 2 and 3 give the 5-, 8-,
// 11- and 14-dimensional CANs of the evaluation.
type Space struct {
	GPUSlots int   // number of accelerator type slots (CE types 1..GPUSlots)
	Norms    Norms // per-resource normalization maxima
}

// NewSpace returns a Space with the given accelerator slots and the
// default norms.
func NewSpace(gpuSlots int) *Space {
	if gpuSlots < 0 {
		panic("resource: negative GPU slots")
	}
	return &Space{GPUSlots: gpuSlots, Norms: DefaultNorms()}
}

// Dims returns the CAN dimensionality: 4 + 3·GPUSlots + 1.
func (s *Space) Dims() int { return 4 + 3*s.GPUSlots + 1 }

// VirtualDim returns the index of the virtual dimension (the last one).
func (s *Space) VirtualDim() int { return s.Dims() - 1 }

// ceBase returns the first dimension index of CE type t's group.
func (s *Space) ceBase(t CEType) int {
	if t == TypeCPU {
		return 0
	}
	return 4 + 3*(int(t)-1)
}

// DimName returns a human-readable name for dimension i.
func (s *Space) DimName(i int) string {
	switch {
	case i == 0:
		return "cpu.clock"
	case i == 1:
		return "memory"
	case i == 2:
		return "disk"
	case i == 3:
		return "cpu.cores"
	case i == s.VirtualDim():
		return "virtual"
	default:
		slot := (i-4)/3 + 1
		switch (i - 4) % 3 {
		case 0:
			return fmt.Sprintf("gpu%d.clock", slot)
		case 1:
			return fmt.Sprintf("gpu%d.mem", slot)
		default:
			return fmt.Sprintf("gpu%d.cores", slot)
		}
	}
}

// DimCEType returns the CE type whose resource group contains dimension
// i, and false for the virtual dimension.
func (s *Space) DimCEType(i int) (CEType, bool) {
	switch {
	case i < 0 || i >= s.Dims():
		panic(fmt.Sprintf("resource: dimension %d out of range", i))
	case i == s.VirtualDim():
		return 0, false
	case i < 4:
		return TypeCPU, true
	default:
		return CEType((i-4)/3 + 1), true
	}
}

// normCoord maps a resource amount to a CAN coordinate in [0, maxCoord]
// using the reference maximum. The mapping is strictly monotone on
// [0, max], so capability comparisons are preserved. Values above the
// reference maximum saturate.
const maxCoord = 0.999999

func normCoord(v, max float64) float64 {
	if max <= 0 || v <= 0 {
		return 0
	}
	c := v / max * maxCoord
	if c > maxCoord {
		c = maxCoord
	}
	return c
}

// NodePoint maps a node's capabilities to its CAN coordinate. Nodes
// lacking an accelerator type sit at the origin of that type's
// dimensions, so only jobs that leave those requirements unspecified can
// route to them.
func (s *Space) NodePoint(n *NodeCaps) geom.Point {
	p := make(geom.Point, s.Dims())
	cpu := n.CPU()
	p[0] = normCoord(cpu.Clock, s.Norms.CPUClock)
	p[1] = normCoord(cpu.Memory, s.Norms.Memory)
	p[2] = normCoord(n.Disk, s.Norms.Disk)
	p[3] = normCoord(float64(cpu.Cores), float64(s.Norms.CPUCores))
	for slot := 1; slot <= s.GPUSlots; slot++ {
		ce := n.CE(CEType(slot))
		if ce == nil {
			continue
		}
		base := s.ceBase(CEType(slot))
		p[base] = normCoord(ce.Clock, s.Norms.GPUClock)
		p[base+1] = normCoord(ce.Memory, s.Norms.GPUMemory)
		p[base+2] = normCoord(float64(ce.Cores), float64(s.Norms.GPUCores))
	}
	p[s.VirtualDim()] = n.Virtual
	return p
}

// JobPoint maps a job's requirements to the CAN coordinate it is routed
// to. Unspecified requirements map to 0 ("any amount acceptable").
// virtual is the random virtual-dimension value assigned to the job to
// spread placements across equivalent nodes.
func (s *Space) JobPoint(r JobReq, virtual float64) geom.Point {
	return s.JobPointInto(make(geom.Point, s.Dims()), r, virtual)
}

// JobPointInto is JobPoint writing into a caller-supplied point of
// length Dims(), so a scheduler placing jobs in a loop can reuse one
// buffer. The point is zeroed first: JobPoint only writes the
// dimensions the request names.
func (s *Space) JobPointInto(p geom.Point, r JobReq, virtual float64) geom.Point {
	for i := range p {
		p[i] = 0
	}
	if q, ok := r.CE[TypeCPU]; ok {
		p[0] = normCoord(q.Clock, s.Norms.CPUClock)
		p[1] = normCoord(q.Memory, s.Norms.Memory)
		p[3] = normCoord(float64(r.CoresOn(TypeCPU)), float64(s.Norms.CPUCores))
	}
	p[2] = normCoord(r.Disk, s.Norms.Disk)
	for slot := 1; slot <= s.GPUSlots; slot++ {
		q, ok := r.CE[CEType(slot)]
		if !ok {
			continue
		}
		base := s.ceBase(CEType(slot))
		p[base] = normCoord(q.Clock, s.Norms.GPUClock)
		p[base+1] = normCoord(q.Memory, s.Norms.GPUMemory)
		p[base+2] = normCoord(float64(r.CoresOn(CEType(slot))), float64(s.Norms.GPUCores))
	}
	if virtual < 0 {
		virtual = 0
	}
	if virtual > maxCoord {
		virtual = maxCoord
	}
	p[s.VirtualDim()] = virtual
	return p
}
