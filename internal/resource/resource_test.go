package resource

import (
	"math"
	"testing"
	"testing/quick"
)

// testNode builds a node with a 4-core 2.0x CPU, 8 GB RAM, 500 GB disk,
// and the given extra accelerators.
func testNode(gpus ...CE) *NodeCaps {
	n := &NodeCaps{
		CEs:     append([]CE{{Type: TypeCPU, Clock: 2.0, Cores: 4, Memory: 8}}, gpus...),
		Disk:    500,
		Virtual: 0.5,
	}
	return n
}

func gpu(t CEType, clock float64, cores int, mem float64) CE {
	return CE{Type: t, Dedicated: true, Clock: clock, Cores: cores, Memory: mem}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	n := testNode(gpu(1, 1.2, 240, 4))
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadNodes(t *testing.T) {
	cases := []struct {
		name string
		node NodeCaps
	}{
		{"no CEs", NodeCaps{}},
		{"first not CPU", NodeCaps{CEs: []CE{{Type: 1, Dedicated: true, Clock: 1, Cores: 1}}}},
		{"dedicated CPU", NodeCaps{CEs: []CE{{Type: TypeCPU, Dedicated: true, Clock: 1, Cores: 1}}}},
		{"zero clock", NodeCaps{CEs: []CE{{Type: TypeCPU, Clock: 0, Cores: 1}}}},
		{"zero cores", NodeCaps{CEs: []CE{{Type: TypeCPU, Clock: 1, Cores: 0}}}},
		{"duplicate type", NodeCaps{CEs: []CE{
			{Type: TypeCPU, Clock: 1, Cores: 1},
			{Type: 1, Dedicated: true, Clock: 1, Cores: 1},
			{Type: 1, Dedicated: true, Clock: 1, Cores: 1}}}},
		{"out of order", NodeCaps{CEs: []CE{
			{Type: TypeCPU, Clock: 1, Cores: 1},
			{Type: 2, Dedicated: true, Clock: 1, Cores: 1},
			{Type: 1, Dedicated: true, Clock: 1, Cores: 1}}}},
		{"negative disk", NodeCaps{CEs: []CE{{Type: TypeCPU, Clock: 1, Cores: 1}}, Disk: -1}},
		{"virtual out of range", NodeCaps{CEs: []CE{{Type: TypeCPU, Clock: 1, Cores: 1}}, Virtual: 1}},
	}
	for _, c := range cases {
		if err := c.node.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid node", c.name)
		}
	}
}

func TestValidateAcceptsConcurrentGPU(t *testing.T) {
	// The paper's anticipated concurrent-kernel GPUs: a non-dedicated
	// accelerator is legal and shares cores like a CPU.
	n := NodeCaps{CEs: []CE{
		{Type: TypeCPU, Clock: 1, Cores: 2, Memory: 4},
		{Type: 1, Dedicated: false, Clock: 1.2, Cores: 240, Memory: 4},
	}, Disk: 100}
	if err := n.Validate(); err != nil {
		t.Fatalf("concurrent GPU rejected: %v", err)
	}
}

func TestCELookup(t *testing.T) {
	n := testNode(gpu(2, 1.0, 128, 2))
	if n.CPU() == nil || n.CPU().Type != TypeCPU {
		t.Fatal("CPU lookup failed")
	}
	if n.CE(2) == nil || n.CE(2).Cores != 128 {
		t.Fatal("GPU lookup failed")
	}
	if n.CE(1) != nil {
		t.Fatal("lookup of absent CE type returned non-nil")
	}
}

func TestSatisfiesCPUOnly(t *testing.T) {
	n := testNode()
	ok := JobReq{CE: map[CEType]CEReq{TypeCPU: {Clock: 1.5, Memory: 4, Cores: 2}}}
	if !Satisfies(n, ok) {
		t.Fatal("satisfiable requirement rejected")
	}
	tooFast := JobReq{CE: map[CEType]CEReq{TypeCPU: {Clock: 2.5}}}
	if Satisfies(n, tooFast) {
		t.Fatal("clock requirement above capability accepted")
	}
	tooManyCores := JobReq{CE: map[CEType]CEReq{TypeCPU: {Cores: 8}}}
	if Satisfies(n, tooManyCores) {
		t.Fatal("core requirement above capability accepted")
	}
	tooMuchMem := JobReq{CE: map[CEType]CEReq{TypeCPU: {Memory: 16}}}
	if Satisfies(n, tooMuchMem) {
		t.Fatal("memory requirement above capability accepted")
	}
}

func TestSatisfiesDisk(t *testing.T) {
	n := testNode()
	if !Satisfies(n, JobReq{Disk: 500}) {
		t.Fatal("exact disk requirement rejected")
	}
	if Satisfies(n, JobReq{Disk: 501}) {
		t.Fatal("excess disk requirement accepted")
	}
}

func TestSatisfiesMissingGPU(t *testing.T) {
	n := testNode() // no GPU
	req := JobReq{CE: map[CEType]CEReq{1: {Clock: 0.5}}}
	if Satisfies(n, req) {
		t.Fatal("node without the required CE type accepted")
	}
	withGPU := testNode(gpu(1, 1.0, 240, 4))
	if !Satisfies(withGPU, req) {
		t.Fatal("node with the required CE type rejected")
	}
}

func TestSatisfiesEmptyRequirementMatchesAnything(t *testing.T) {
	if !Satisfies(testNode(), JobReq{}) {
		t.Fatal("empty requirement must match any node")
	}
}

func TestCoresOnDefaultsToOne(t *testing.T) {
	r := JobReq{CE: map[CEType]CEReq{TypeCPU: {Clock: 1.0}}}
	if r.CoresOn(TypeCPU) != 1 {
		t.Fatal("a required CE must occupy at least one core")
	}
	if r.CoresOn(1) != 0 {
		t.Fatal("an unrequired CE must occupy zero cores")
	}
	r2 := JobReq{CE: map[CEType]CEReq{TypeCPU: {Cores: 3}}}
	if r2.CoresOn(TypeCPU) != 3 {
		t.Fatal("explicit core requirement ignored")
	}
}

func TestDominantCECUDAExample(t *testing.T) {
	// The paper's CUDA example: the job needs a CPU (1 core, control
	// thread) and a GPU (many cores, most of the memory demand). The
	// GPU must dominate.
	r := JobReq{CE: map[CEType]CEReq{
		TypeCPU: {Cores: 1, Memory: 1},
		1:       {Cores: 128, Memory: 2},
	}}
	if got := DominantCE(r); got != 1 {
		t.Fatalf("DominantCE = %v, want gpu1", got)
	}
}

func TestDominantCECPUHeavyJob(t *testing.T) {
	r := JobReq{CE: map[CEType]CEReq{
		TypeCPU: {Cores: 8, Memory: 16},
		1:       {Cores: 1, Memory: 0.1},
	}}
	if got := DominantCE(r); got != TypeCPU {
		t.Fatalf("DominantCE = %v, want cpu", got)
	}
}

func TestDominantCEDefaultsToCPU(t *testing.T) {
	if got := DominantCE(JobReq{}); got != TypeCPU {
		t.Fatalf("DominantCE of empty req = %v, want cpu", got)
	}
}

func TestDominantCETieGoesToAccelerator(t *testing.T) {
	// Equal absolute demand on both CEs: the accelerator wins.
	r := JobReq{CE: map[CEType]CEReq{
		TypeCPU: {Cores: 4, Memory: 2},
		1:       {Cores: 4, Memory: 2},
	}}
	if got := DominantCE(r); got != 1 {
		t.Fatalf("DominantCE tie = %v, want gpu1", got)
	}
}

func TestScoreDedicated(t *testing.T) {
	if got := ScoreDedicated(4, 2.0); got != 2.0 {
		t.Fatalf("ScoreDedicated(4, 2.0) = %v, want 2", got)
	}
	// Faster clock gives lower (better) score for equal queues.
	if ScoreDedicated(3, 2.0) >= ScoreDedicated(3, 1.0) {
		t.Fatal("dedicated score must prefer faster clocks")
	}
}

func TestScoreNonDedicated(t *testing.T) {
	// 4 required cores on an 8-core 2.0x CPU: utilization 0.5, score 0.25.
	if got := ScoreNonDedicated(4, 8, 2.0); got != 0.25 {
		t.Fatalf("ScoreNonDedicated = %v, want 0.25", got)
	}
	if ScoreNonDedicated(4, 8, 2.0) >= ScoreNonDedicated(4, 4, 2.0) {
		t.Fatal("more cores must lower the utilization score")
	}
}

func TestPushObjective(t *testing.T) {
	// Equation 3: SumRequiredCores / NumberOfCores².
	if got := PushObjective(8, 4); got != 0.5 {
		t.Fatalf("PushObjective(8,4) = %v, want 0.5", got)
	}
	if got := PushObjective(5, 0); got < 1e17 {
		t.Fatalf("PushObjective with zero cores = %v, want huge", got)
	}
	// A region with more cores and less demand scores lower.
	if PushObjective(2, 16) >= PushObjective(8, 4) {
		t.Fatal("push objective ordering wrong")
	}
}

func TestStopProbability(t *testing.T) {
	if got := StopProbability(0, 2); got != 1 {
		t.Fatalf("StopProbability(0,2) = %v, want 1 (nowhere further to go)", got)
	}
	if got := StopProbability(3, 2); math.Abs(got-1.0/16) > 1e-12 {
		t.Fatalf("StopProbability(3,2) = %v, want 1/16", got)
	}
	if got := StopProbability(-5, 2); got != 1 {
		t.Fatalf("negative count must clamp to 0, got %v", got)
	}
	// Property: more nodes beyond means lower stop probability.
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return StopProbability(y, 2) <= StopProbability(x, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJobReqClone(t *testing.T) {
	r := JobReq{CE: map[CEType]CEReq{TypeCPU: {Cores: 2}}, Disk: 10}
	c := r.Clone()
	c.CE[TypeCPU] = CEReq{Cores: 9}
	if r.CE[TypeCPU].Cores != 2 {
		t.Fatal("Clone shares the CE map")
	}
}

func TestTypesSorted(t *testing.T) {
	r := JobReq{CE: map[CEType]CEReq{2: {}, TypeCPU: {}, 1: {}}}
	ts := r.Types()
	if len(ts) != 3 || ts[0] != 0 || ts[1] != 1 || ts[2] != 2 {
		t.Fatalf("Types = %v, want [0 1 2]", ts)
	}
}

func TestCETypeString(t *testing.T) {
	if TypeCPU.String() != "cpu" || CEType(2).String() != "gpu2" {
		t.Fatal("CEType.String wrong")
	}
}
