package resource

import (
	"testing"
	"testing/quick"
)

func TestSpaceDims(t *testing.T) {
	// The evaluation's 5-, 8-, 11- and 14-dimensional CANs correspond to
	// 0, 1, 2 and 3 accelerator slots.
	for slots, want := range map[int]int{0: 5, 1: 8, 2: 11, 3: 14} {
		if got := NewSpace(slots).Dims(); got != want {
			t.Errorf("Dims(%d slots) = %d, want %d", slots, got, want)
		}
	}
}

func TestVirtualDimIsLast(t *testing.T) {
	s := NewSpace(2)
	if s.VirtualDim() != 10 {
		t.Fatalf("VirtualDim = %d, want 10", s.VirtualDim())
	}
	if s.DimName(s.VirtualDim()) != "virtual" {
		t.Fatal("virtual dim name wrong")
	}
}

func TestDimNames(t *testing.T) {
	s := NewSpace(2)
	want := []string{
		"cpu.clock", "memory", "disk", "cpu.cores",
		"gpu1.clock", "gpu1.mem", "gpu1.cores",
		"gpu2.clock", "gpu2.mem", "gpu2.cores",
		"virtual",
	}
	for i, w := range want {
		if got := s.DimName(i); got != w {
			t.Errorf("DimName(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestDimCEType(t *testing.T) {
	s := NewSpace(2)
	for i := 0; i < 4; i++ {
		if ty, ok := s.DimCEType(i); !ok || ty != TypeCPU {
			t.Errorf("dim %d: type %v ok %v, want cpu", i, ty, ok)
		}
	}
	for i := 4; i < 7; i++ {
		if ty, ok := s.DimCEType(i); !ok || ty != 1 {
			t.Errorf("dim %d: type %v ok %v, want gpu1", i, ty, ok)
		}
	}
	for i := 7; i < 10; i++ {
		if ty, ok := s.DimCEType(i); !ok || ty != 2 {
			t.Errorf("dim %d: type %v ok %v, want gpu2", i, ty, ok)
		}
	}
	if _, ok := s.DimCEType(10); ok {
		t.Error("virtual dim must report no CE type")
	}
}

func TestNodePointInUnitSpace(t *testing.T) {
	s := NewSpace(2)
	n := testNode(gpu(1, 1.2, 240, 4), gpu(2, 1.5, 448, 6))
	p := s.NodePoint(n)
	if len(p) != s.Dims() {
		t.Fatalf("point has %d dims, want %d", len(p), s.Dims())
	}
	for i, v := range p {
		if v < 0 || v >= 1 {
			t.Fatalf("coordinate %d = %v outside [0,1)", i, v)
		}
	}
}

func TestNodePointMissingGPUAtOrigin(t *testing.T) {
	s := NewSpace(2)
	p := s.NodePoint(testNode()) // no GPUs
	for i := 4; i < 10; i++ {
		if p[i] != 0 {
			t.Fatalf("GPU dim %d = %v for GPU-less node, want 0", i, p[i])
		}
	}
}

func TestNodePointSaturatesAboveNorms(t *testing.T) {
	s := NewSpace(0)
	n := testNode()
	n.CEs[0].Clock = 100 // way above the reference max
	p := s.NodePoint(n)
	if p[0] >= 1 {
		t.Fatalf("saturated coordinate %v must stay below 1", p[0])
	}
}

func TestJobPointUnspecifiedIsZero(t *testing.T) {
	s := NewSpace(1)
	p := s.JobPoint(JobReq{}, 0.25)
	for i := 0; i < s.Dims()-1; i++ {
		if p[i] != 0 {
			t.Fatalf("dim %d = %v for empty requirement, want 0", i, p[i])
		}
	}
	if p[s.VirtualDim()] != 0.25 {
		t.Fatal("virtual coordinate not applied")
	}
}

func TestJobPointVirtualClamped(t *testing.T) {
	s := NewSpace(0)
	if v := s.JobPoint(JobReq{}, 1.5)[s.VirtualDim()]; v >= 1 {
		t.Fatalf("virtual coordinate %v not clamped below 1", v)
	}
	if v := s.JobPoint(JobReq{}, -0.5)[s.VirtualDim()]; v != 0 {
		t.Fatalf("negative virtual coordinate %v not clamped to 0", v)
	}
}

// The central consistency property tying the space to matchmaking: a
// node's point dominates a job's point (ignoring the virtual dimension)
// if and only if the node statically satisfies the job.
func TestDominationMatchesSatisfies(t *testing.T) {
	s := NewSpace(2)
	f := func(clockR, memR, coreR, gclockR, gmemR, gcoreR uint8, hasGPU bool) bool {
		n := testNode()
		if hasGPU {
			n.CEs = append(n.CEs, gpu(1, 1.2, 240, 4))
		}
		req := JobReq{CE: map[CEType]CEReq{
			TypeCPU: {
				Clock:  float64(clockR) / 64, // 0..4
				Memory: float64(memR) / 16,   // 0..16
				Cores:  int(coreR)%9 + 0,     // 0..8
			},
		}}
		if gclockR%2 == 0 {
			req.CE[1] = CEReq{
				Clock:  float64(gclockR) / 128,
				Memory: float64(gmemR) / 42,
				Cores:  int(gcoreR) * 2,
			}
		}
		nodePt := s.NodePoint(n)
		jobPt := s.JobPoint(req, 0)
		// Compare ignoring the virtual dimension.
		vd := s.VirtualDim()
		dom := true
		for i := range nodePt {
			if i == vd {
				continue
			}
			if nodePt[i] < jobPt[i] {
				dom = false
				break
			}
		}
		return dom == Satisfies(n, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCoordMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a)/1000, float64(b)/1000
		if x > y {
			x, y = y, x
		}
		return normCoord(x, 10) <= normCoord(y, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimCETypePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DimCEType out of range did not panic")
		}
	}()
	NewSpace(0).DimCEType(99)
}

func TestNewSpacePanicsOnNegativeSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpace(-1) did not panic")
		}
	}()
	NewSpace(-1)
}
