// Package workload synthesizes the evaluation's grid population and job
// stream (Section V-A): heterogeneous nodes with 1/2/4/8-core CPUs and
// up to several distinct GPU types; Poisson job arrivals with a
// configurable mean inter-arrival time; base runtimes uniform between
// 0.5 and 1.5 hours; and a job constraint ratio giving the probability
// that each resource requirement of a job is actually specified.
//
// The paper does not publish its exact catalogs, so the distributions
// here are seeded reconstructions with the stated qualitative shape: a
// high percentage of nodes and jobs have relatively low capabilities
// and requirements, a low percentage have high ones.
package workload

import (
	"hetgrid/internal/exec"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

// NodeGen generates heterogeneous node capability vectors.
type NodeGen struct {
	space *resource.Space
	rnd   *rng.Stream

	// ConcurrentGPUs generates accelerators that run multiple
	// simultaneous jobs (non-dedicated) — the future GPUs the paper
	// anticipates — instead of the evaluation's dedicated ones.
	ConcurrentGPUs bool

	cpuClock *rng.Discrete
	cores    *rng.Discrete
	memory   *rng.Discrete
	disk     *rng.Discrete
	gpuCount *rng.Discrete
	gpuClock *rng.Discrete
	gpuMem   *rng.Discrete
	gpuCores *rng.Discrete
}

// NewNodeGen builds a node generator for the space's accelerator slots.
func NewNodeGen(space *resource.Space, seed int64) *NodeGen {
	return &NodeGen{
		space: space,
		rnd:   rng.NewSplit(seed, "workload.nodes"),
		// Skewed-low catalogs: most machines are modest desktops.
		cpuClock: rng.NewDiscrete(
			[]float64{1.0, 1.4, 1.8, 2.2, 2.6, 3.0, 3.4},
			[]float64{22, 20, 18, 14, 12, 8, 6}),
		cores: rng.NewDiscrete(
			[]float64{1, 2, 4, 8},
			[]float64{30, 35, 25, 10}),
		memory: rng.NewDiscrete(
			[]float64{1, 2, 4, 8, 16},
			[]float64{15, 30, 30, 17, 8}),
		disk: rng.NewDiscrete(
			[]float64{40, 80, 160, 320, 640, 1000},
			[]float64{20, 25, 25, 15, 10, 5}),
		gpuCount: rng.NewDiscrete(
			[]float64{0, 1, 2},
			[]float64{45, 35, 20}),
		gpuClock: rng.NewDiscrete(
			[]float64{0.6, 0.9, 1.2, 1.5},
			[]float64{35, 30, 22, 13}),
		gpuMem: rng.NewDiscrete(
			[]float64{0.5, 1, 2, 4},
			[]float64{30, 30, 25, 15}),
		gpuCores: rng.NewDiscrete(
			[]float64{64, 128, 240, 448},
			[]float64{30, 30, 25, 15}),
	}
}

// Generate produces n node capability vectors.
func (g *NodeGen) Generate(n int) []*resource.NodeCaps {
	out := make([]*resource.NodeCaps, n)
	for i := range out {
		out[i] = g.One()
	}
	return out
}

// One produces a single node.
func (g *NodeGen) One() *resource.NodeCaps {
	caps := &resource.NodeCaps{
		CEs: []resource.CE{{
			Type:   resource.TypeCPU,
			Clock:  g.cpuClock.Sample(g.rnd),
			Cores:  int(g.cores.Sample(g.rnd)),
			Memory: g.memory.Sample(g.rnd),
		}},
		Disk:    g.disk.Sample(g.rnd),
		Virtual: g.rnd.Float64() * 0.999999,
	}
	slots := g.space.GPUSlots
	want := int(g.gpuCount.Sample(g.rnd))
	if want > slots {
		want = slots
	}
	if want > 0 {
		// Pick distinct accelerator types (slots) for the node's GPUs.
		perm := g.rnd.Perm(slots)
		chosen := append([]int(nil), perm[:want]...)
		// CEs must be sorted by type.
		for i := 0; i < len(chosen); i++ {
			for j := i + 1; j < len(chosen); j++ {
				if chosen[j] < chosen[i] {
					chosen[i], chosen[j] = chosen[j], chosen[i]
				}
			}
		}
		for _, slot := range chosen {
			caps.CEs = append(caps.CEs, resource.CE{
				Type:      resource.CEType(slot + 1),
				Dedicated: !g.ConcurrentGPUs,
				Clock:     g.gpuClock.Sample(g.rnd),
				Cores:     int(g.gpuCores.Sample(g.rnd)),
				Memory:    g.gpuMem.Sample(g.rnd),
			})
		}
	}
	return caps
}

// JobGen generates the job stream.
type JobGen struct {
	space *resource.Space
	rnd   *rng.Stream

	// ConstraintRatio is the probability that each resource type a job
	// cares about is actually specified in its requirements (Section
	// V-A). Lower ratios make jobs easier to match.
	ConstraintRatio float64
	// MeanInterArrival is the mean of the Poisson arrival process.
	MeanInterArrival sim.Duration
	// GPUJobFraction is the fraction of jobs whose dominant CE is an
	// accelerator (when the space has accelerator slots).
	GPUJobFraction float64
	// MinRuntime and MaxRuntime bound the uniform base-duration draw.
	MinRuntime, MaxRuntime sim.Duration

	nextID exec.JobID

	cpuClockReq *rng.Discrete
	cpuMemReq   *rng.Discrete
	cpuCoreReq  *rng.Discrete
	diskReq     *rng.Discrete
	gpuClockReq *rng.Discrete
	gpuMemReq   *rng.Discrete
	gpuCoreReq  *rng.Discrete
}

// NewJobGen builds a job generator with the evaluation's defaults:
// constraint ratio 0.8, 3-second mean inter-arrival, 40% GPU jobs,
// runtimes uniform in [0.5 h, 1.5 h].
func NewJobGen(space *resource.Space, seed int64) *JobGen {
	return &JobGen{
		space:            space,
		rnd:              rng.NewSplit(seed, "workload.jobs"),
		ConstraintRatio:  0.8,
		MeanInterArrival: 3 * sim.Second,
		GPUJobFraction:   0.4,
		MinRuntime:       sim.Duration(0.5 * float64(sim.Hour)),
		MaxRuntime:       sim.Duration(1.5 * float64(sim.Hour)),
		nextID:           1,
		// Requirement catalogs, skewed low so that most jobs match many
		// nodes and a few match only the most capable.
		cpuClockReq: rng.NewDiscrete(
			[]float64{0.8, 1.0, 1.4, 1.8, 2.2},
			[]float64{35, 25, 20, 12, 8}),
		cpuMemReq: rng.NewDiscrete(
			[]float64{0.5, 1, 2, 4, 8},
			[]float64{30, 30, 20, 13, 7}),
		cpuCoreReq: rng.NewDiscrete(
			[]float64{1, 2, 4, 8},
			[]float64{55, 25, 15, 5}),
		diskReq: rng.NewDiscrete(
			[]float64{10, 20, 40, 100, 200},
			[]float64{40, 25, 20, 10, 5}),
		gpuClockReq: rng.NewDiscrete(
			[]float64{0.5, 0.6, 0.9, 1.2},
			[]float64{35, 30, 22, 13}),
		gpuMemReq: rng.NewDiscrete(
			[]float64{0.25, 0.5, 1, 2},
			[]float64{30, 30, 25, 15}),
		gpuCoreReq: rng.NewDiscrete(
			[]float64{32, 64, 128, 240},
			[]float64{30, 30, 25, 15}),
	}
}

// keep applies the constraint ratio to one requirement value.
func (g *JobGen) keep(v float64) float64 {
	if g.rnd.Bool(g.ConstraintRatio) {
		return v
	}
	return 0
}

// Next generates the next job and the gap until the following arrival.
func (g *JobGen) Next() (*exec.Job, sim.Duration) {
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{}}

	gpuJob := g.space.GPUSlots > 0 && g.rnd.Bool(g.GPUJobFraction)

	cpu := resource.CEReq{
		Clock:  g.keep(g.cpuClockReq.Sample(g.rnd)),
		Memory: g.keep(g.cpuMemReq.Sample(g.rnd)),
		Cores:  int(g.keep(g.cpuCoreReq.Sample(g.rnd))),
	}
	if gpuJob {
		// A CUDA-style job: the CPU hosts a control thread only.
		cpu = resource.CEReq{Clock: g.keep(0.8), Memory: g.keep(0.5), Cores: 1}
		slot := 1 + g.rnd.Intn(g.space.GPUSlots)
		gq := resource.CEReq{
			Clock:  g.keep(g.gpuClockReq.Sample(g.rnd)),
			Memory: g.keep(g.gpuMemReq.Sample(g.rnd)),
			Cores:  int(g.keep(g.gpuCoreReq.Sample(g.rnd))),
		}
		if gq != (resource.CEReq{}) {
			req.CE[resource.CEType(slot)] = gq
		}
	}
	if cpu != (resource.CEReq{}) {
		req.CE[resource.TypeCPU] = cpu
	}
	req.Disk = g.keep(g.diskReq.Sample(g.rnd))
	if len(req.CE) == 0 {
		// Everything was dropped by the constraint ratio: the job still
		// needs somewhere to run.
		req.CE[resource.TypeCPU] = resource.CEReq{Cores: 1}
	}

	base := sim.Duration(g.rnd.Uniform(float64(g.MinRuntime), float64(g.MaxRuntime)))
	j := &exec.Job{
		ID:           g.nextID,
		Req:          req,
		Dominant:     resource.DominantCE(req),
		BaseDuration: base,
	}
	g.nextID++
	gap := sim.FromSeconds(g.rnd.Exp(g.MeanInterArrival.Seconds()))
	return j, gap
}
