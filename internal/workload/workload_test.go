package workload

import (
	"testing"

	"hetgrid/internal/resource"
	"hetgrid/internal/sim"
)

func TestNodeGenProducesValidNodes(t *testing.T) {
	space := resource.NewSpace(2)
	g := NewNodeGen(space, 1)
	for i, caps := range g.Generate(500) {
		if err := caps.Validate(); err != nil {
			t.Fatalf("node %d invalid: %v (%v)", i, err, caps)
		}
	}
}

func TestNodeGenPopulationShape(t *testing.T) {
	space := resource.NewSpace(2)
	g := NewNodeGen(space, 2)
	nodes := g.Generate(2000)
	gpus := 0
	lowClock := 0
	coreCounts := map[int]int{}
	for _, n := range nodes {
		if len(n.CEs) > 1 {
			gpus++
		}
		if n.CPU().Clock <= 1.8 {
			lowClock++
		}
		coreCounts[n.CPU().Cores]++
	}
	// Roughly 55% of nodes carry at least one GPU (the catalog's 35%+20%).
	frac := float64(gpus) / float64(len(nodes))
	if frac < 0.45 || frac > 0.65 {
		t.Fatalf("GPU-bearing fraction = %.2f", frac)
	}
	// Skewed low: a majority of CPUs at or below 1.8x clock.
	if float64(lowClock)/float64(len(nodes)) < 0.5 {
		t.Fatalf("low-clock fraction = %.2f; population should be skewed low", float64(lowClock)/float64(len(nodes)))
	}
	// All four core counts appear.
	for _, c := range []int{1, 2, 4, 8} {
		if coreCounts[c] == 0 {
			t.Fatalf("no %d-core nodes in 2000 draws", c)
		}
	}
}

func TestNodeGenRespectsSlotLimit(t *testing.T) {
	space := resource.NewSpace(1) // only one accelerator slot
	g := NewNodeGen(space, 3)
	for _, n := range g.Generate(300) {
		if len(n.CEs) > 2 {
			t.Fatalf("node has %d CEs with only 1 slot", len(n.CEs))
		}
		for _, ce := range n.CEs[1:] {
			if ce.Type != 1 {
				t.Fatalf("GPU in slot %v with 1 slot configured", ce.Type)
			}
		}
	}
}

func TestNodeGenZeroSlots(t *testing.T) {
	space := resource.NewSpace(0)
	g := NewNodeGen(space, 4)
	for _, n := range g.Generate(100) {
		if len(n.CEs) != 1 {
			t.Fatal("GPU generated with zero slots")
		}
	}
}

func TestNodeGenDeterministic(t *testing.T) {
	space := resource.NewSpace(2)
	a := NewNodeGen(space, 7).Generate(50)
	b := NewNodeGen(space, 7).Generate(50)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("node %d differs across identically seeded generators", i)
		}
	}
}

func TestJobGenValidJobs(t *testing.T) {
	space := resource.NewSpace(2)
	g := NewJobGen(space, 1)
	seenIDs := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		j, gap := g.Next()
		if seenIDs[int64(j.ID)] {
			t.Fatal("duplicate job id")
		}
		seenIDs[int64(j.ID)] = true
		if gap < 0 {
			t.Fatal("negative inter-arrival gap")
		}
		if len(j.Req.CE) == 0 {
			t.Fatal("job requires no CE at all")
		}
		if j.BaseDuration < g.MinRuntime || j.BaseDuration > g.MaxRuntime {
			t.Fatalf("duration %v outside [%v, %v]", j.BaseDuration, g.MinRuntime, g.MaxRuntime)
		}
		if _, ok := j.Req.CE[j.Dominant]; !ok {
			t.Fatalf("dominant CE %v not among requirements %v", j.Dominant, j.Req.Types())
		}
	}
}

func TestJobGenGPUFraction(t *testing.T) {
	space := resource.NewSpace(2)
	g := NewJobGen(space, 2)
	g.ConstraintRatio = 1 // keep everything so GPU jobs stay GPU jobs
	gpu := 0
	const n = 5000
	for i := 0; i < n; i++ {
		j, _ := g.Next()
		if j.Dominant != resource.TypeCPU {
			gpu++
		}
	}
	frac := float64(gpu) / n
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("GPU-dominant fraction = %.2f, want ≈0.40", frac)
	}
}

func TestJobGenNoGPUJobsWithoutSlots(t *testing.T) {
	space := resource.NewSpace(0)
	g := NewJobGen(space, 3)
	for i := 0; i < 200; i++ {
		j, _ := g.Next()
		if j.Dominant != resource.TypeCPU {
			t.Fatal("GPU job generated in a CPU-only space")
		}
	}
}

func TestConstraintRatioControlsSpecification(t *testing.T) {
	space := resource.NewSpace(2)
	count := func(q float64, seed int64) int {
		g := NewJobGen(space, seed)
		g.ConstraintRatio = q
		specified := 0
		for i := 0; i < 2000; i++ {
			j, _ := g.Next()
			for _, r := range j.Req.CE {
				if r.Clock > 0 {
					specified++
				}
				if r.Memory > 0 {
					specified++
				}
				if r.Cores > 0 {
					specified++
				}
			}
			if j.Req.Disk > 0 {
				specified++
			}
		}
		return specified
	}
	high := count(0.9, 4)
	low := count(0.3, 4)
	if high <= low {
		t.Fatalf("specified requirements: ratio 0.9 → %d, ratio 0.3 → %d; should increase with ratio", high, low)
	}
}

func TestJobGenArrivalMean(t *testing.T) {
	space := resource.NewSpace(1)
	g := NewJobGen(space, 5)
	g.MeanInterArrival = 4 * sim.Second
	total := sim.Duration(0)
	const n = 20000
	for i := 0; i < n; i++ {
		_, gap := g.Next()
		total += gap
	}
	mean := total.Seconds() / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("mean inter-arrival = %.2fs, want ≈4", mean)
	}
}

func TestJobGenMostJobsMatchable(t *testing.T) {
	// Consistency of the two catalogs: on a reasonable population, the
	// vast majority of generated jobs must be satisfiable somewhere.
	space := resource.NewSpace(2)
	nodes := NewNodeGen(space, 6).Generate(300)
	g := NewJobGen(space, 6)
	unmatchable := 0
	const n = 2000
	for i := 0; i < n; i++ {
		j, _ := g.Next()
		ok := false
		for _, caps := range nodes {
			if resource.Satisfies(caps, j.Req) {
				ok = true
				break
			}
		}
		if !ok {
			unmatchable++
		}
	}
	if frac := float64(unmatchable) / n; frac > 0.05 {
		t.Fatalf("unmatchable fraction = %.3f, want ≤ 0.05", frac)
	}
}
