// Package metricsreg wires the simulator's subsystems into a metrics
// plane. internal/metrics itself depends only on the event engine;
// this package owns the gauge and counter definitions so that every
// driver (the public Grid API, the experiment runners, the CLIs)
// registers the same series under the same names.
//
// All gauges honor the telemetry-only contract: they read overlay,
// cluster, aggregation and transport state without perturbing results,
// and iterate nodes in the overlay's sorted snapshot order so exports
// are deterministic. The aggregation gauges may fill a lazily
// materialized AggTable row on first read in an epoch; that is pure
// value memoization — the fill computes exactly what any later reader
// would compute — so attaching metrics still cannot change a run's
// outputs (the byte-identity determinism tests cover this).
package metricsreg

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/metrics"
	"hetgrid/internal/netsim"
	"hetgrid/internal/proto"
	"hetgrid/internal/resource"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
)

// RegisterGridGauges registers the per-node gauges of a scheduling
// grid: queue depth, running jobs, per-CE-type utilization, neighbor
// count, and the per-dimension aggregated view (region node count and
// dominant-load fraction) the pushing walk steers by. agg may be nil
// when the caller has no aggregation table (central scheduler).
func RegisterGridGauges(p *metrics.Plane, ov *can.Overlay, cl *exec.Cluster, agg *sched.AggTable, dims, gpuSlots int) {
	p.RegisterGauge("node.queue", func(k *metrics.Sink) {
		for _, n := range ov.Nodes() {
			if rt := cl.Runtime(n.ID); rt != nil {
				k.Emit(int64(n.ID), float64(rt.QueueLen()))
			}
		}
	})
	p.RegisterGauge("node.running", func(k *metrics.Sink) {
		for _, n := range ov.Nodes() {
			if rt := cl.Runtime(n.ID); rt != nil {
				k.Emit(int64(n.ID), float64(rt.RunningJobs()))
			}
		}
	})
	for t := resource.CEType(0); int(t) <= gpuSlots; t++ {
		ct := t
		p.RegisterGauge("node.util."+ct.String(), func(k *metrics.Sink) {
			for _, n := range ov.Nodes() {
				rt := cl.Runtime(n.ID)
				if rt == nil {
					continue
				}
				if u, ok := rt.UtilizationOn(ct); ok {
					k.Emit(int64(n.ID), u)
				}
			}
		})
	}
	p.RegisterGauge("node.neighbors", func(k *metrics.Sink) {
		for _, n := range ov.Nodes() {
			k.Emit(int64(n.ID), float64(len(ov.NeighborView(n.ID))))
		}
	})
	if agg == nil {
		return
	}
	// Aggregation refresh-cost series: cumulative counters from
	// AggTable.Stats (the plane emits per-interval deltas), showing the
	// incremental plane at work — how many dirty nodes each interval
	// drained, the Fenwick updates they cost, and how often the table
	// fell back to a full rebuild.
	p.RegisterCounter("agg.refreshes", func() int64 { return agg.Stats().Refreshes })
	p.RegisterCounter("agg.incremental_refreshes", func() int64 { return agg.Stats().IncRefreshes })
	p.RegisterCounter("agg.full_rebuilds", func() int64 { return agg.Stats().FullRebuilds })
	p.RegisterCounter("agg.dirty_drained", func() int64 { return agg.Stats().DirtyDrained })
	p.RegisterCounter("agg.fenwick_updates", func() int64 { return agg.Stats().FenwickUpdates })
	p.RegisterCounter("agg.churn_splice_refreshes", func() int64 { return agg.Stats().ChurnRefreshes })
	p.RegisterCounter("agg.churn_events", func() int64 { return agg.Stats().ChurnEvents })
	p.RegisterGauge("agg.last_dirty", func(k *metrics.Sink) {
		k.Emit(-1, float64(agg.Stats().LastDirty))
	})
	for d := 0; d < dims; d++ {
		dim := d
		p.RegisterGauge(fmt.Sprintf("node.aggnodes.d%d", dim), func(k *metrics.Sink) {
			for _, n := range ov.Nodes() {
				k.Emit(int64(n.ID), float64(agg.At(n.ID, dim).Nodes))
			}
		})
		p.RegisterGauge(fmt.Sprintf("node.aggload.d%d", dim), func(k *metrics.Sink) {
			for _, n := range ov.Nodes() {
				var req, cores float64
				da := agg.At(n.ID, dim)
				for t := range da.ByType {
					l := da.Load(resource.CEType(t))
					req += l.SumRequiredCores
					cores += l.SumCores
				}
				if cores > 0 {
					k.Emit(int64(n.ID), req/cores)
				} else {
					k.Emit(int64(n.ID), 0)
				}
			}
		})
	}
}

// RegisterSchedCounters registers the matchmaking activity counters
// (per-interval deltas of the scheduler's cumulative Stats).
func RegisterSchedCounters(p *metrics.Plane, st *sched.Stats) {
	p.RegisterCounter("sched.placed", func() int64 { return int64(st.Placed) })
	p.RegisterCounter("sched.route_hops", func() int64 { return int64(st.RouteHops) })
	p.RegisterCounter("sched.push_hops", func() int64 { return int64(st.PushHops) })
	p.RegisterCounter("sched.free_picks", func() int64 { return int64(st.FreePicks) })
	p.RegisterCounter("sched.accept_picks", func() int64 { return int64(st.AcceptPicks) })
	p.RegisterCounter("sched.score_picks", func() int64 { return int64(st.ScorePicks) })
	p.RegisterCounter("sched.fallbacks", func() int64 { return int64(st.Fallbacks) })
	p.RegisterCounter("sched.unmatchable", func() int64 { return int64(st.Unmatchable) })
}

// RegisterClusterCounters registers job throughput counters.
func RegisterClusterCounters(p *metrics.Plane, cl *exec.Cluster) {
	p.RegisterCounter("jobs.submitted", func() int64 { return int64(cl.Submitted()) })
	p.RegisterCounter("jobs.finished", func() int64 { return int64(cl.Finished()) })
}

// NetReader is the transport-counter surface RegisterNetCounters
// reads. Both *netsim.Net and *netsim.ShardedNet (whose totals are the
// stable shard-order sum over facets) satisfy it, so serial and sharded
// drivers register identical series.
type NetReader interface {
	Total() netsim.Counters
	KindTotal(netsim.Kind) netsim.Counters
}

// RegisterNetCounters registers transport volume counters split by
// message kind, plus the aggregate. prefix namespaces the series (e.g.
// "net" → "net.full.msgs_sent").
func RegisterNetCounters(p *metrics.Plane, net NetReader, prefix string) {
	p.RegisterCounter(prefix+".msgs_sent", func() int64 { return net.Total().MsgsSent })
	p.RegisterCounter(prefix+".bytes_sent", func() int64 { return net.Total().BytesSent })
	p.RegisterCounter(prefix+".msgs_recv", func() int64 { return net.Total().MsgsRecv })
	p.RegisterCounter(prefix+".bytes_recv", func() int64 { return net.Total().BytesRecv })
	for _, k := range netsim.AllKinds {
		kind := k
		p.RegisterCounter(fmt.Sprintf("%s.%s.msgs_sent", prefix, kind), func() int64 {
			return net.KindTotal(kind).MsgsSent
		})
		p.RegisterCounter(fmt.Sprintf("%s.%s.bytes_sent", prefix, kind), func() int64 {
			return net.KindTotal(kind).BytesSent
		})
	}
}

// ProtoHealth is the protocol-health surface RegisterProtoGauges
// reads: *proto.Sim and *proto.ShardedSim (shard-order sums) both
// satisfy it.
type ProtoHealth interface {
	AliveHosts() int
	MeanViewSize() float64
}

// RegisterProtoGauges registers maintenance-protocol health gauges.
func RegisterProtoGauges(p *metrics.Plane, s ProtoHealth) {
	p.RegisterGauge("proto.alive_hosts", func(k *metrics.Sink) {
		k.Emit(-1, float64(s.AliveHosts()))
	})
	p.RegisterGauge("proto.mean_view", func(k *metrics.Sink) {
		k.Emit(-1, s.MeanViewSize())
	})
}

// RegisterShardedProtoGauges registers the protocol health gauges of a
// sharded simulation, reading per-shard facets and merging in stable
// shard order. Series names and export semantics match
// RegisterProtoGauges exactly, so the merged stream of a sharded run is
// comparable (and, for the same event history, identical) to a serial
// run's.
func RegisterShardedProtoGauges(sp *metrics.ShardedPlane, ss *proto.ShardedSim) {
	sp.RegisterSumGauge("proto.alive_hosts", func(sh int) float64 {
		return float64(ss.ShardAliveHosts(sh))
	})
	sp.RegisterRatioGauge("proto.mean_view", func(sh int) (num, den float64) {
		entries, hosts := ss.ShardViewStats(sh)
		return float64(entries), float64(hosts)
	})
}

// RegisterShardedNetCounters registers transport volume counters over a
// sharded transport's facets: the same series names, order and
// per-interval-delta semantics as RegisterNetCounters, with each value
// the stable shard-order sum of the per-facet counters.
func RegisterShardedNetCounters(sp *metrics.ShardedPlane, sn *netsim.ShardedNet, prefix string) {
	sp.RegisterSumCounter(prefix+".msgs_sent", func(sh int) int64 { return sn.Facet(sh).Total().MsgsSent })
	sp.RegisterSumCounter(prefix+".bytes_sent", func(sh int) int64 { return sn.Facet(sh).Total().BytesSent })
	sp.RegisterSumCounter(prefix+".msgs_recv", func(sh int) int64 { return sn.Facet(sh).Total().MsgsRecv })
	sp.RegisterSumCounter(prefix+".bytes_recv", func(sh int) int64 { return sn.Facet(sh).Total().BytesRecv })
	for _, k := range netsim.AllKinds {
		kind := k
		sp.RegisterSumCounter(fmt.Sprintf("%s.%s.msgs_sent", prefix, kind), func(sh int) int64 {
			return sn.Facet(sh).KindTotal(kind).MsgsSent
		})
		sp.RegisterSumCounter(fmt.Sprintf("%s.%s.bytes_sent", prefix, kind), func(sh int) int64 {
			return sn.Facet(sh).KindTotal(kind).BytesSent
		})
	}
}

// RegisterWindowAux registers the sharded engine's window-policy
// diagnostics as auxiliary series — sampled alongside the canonical
// stream but exported separately (Plane.WriteAuxJSONL), because their
// values depend on the window policy and shard count, execution knobs
// the canonical byte-compared stream must never reflect:
//
//	sim.windows      barrier groups entered per interval (the cost the
//	                 adaptive policy collapses)
//	sim.hops         lookahead-grained windows executed per interval
//	                 (policy-invariant in steady state: the hop grid
//	                 replicates the fixed window grid)
//	sim.quiesces     control-phase single-event quiesces per interval
//	sim.window_span  mean virtual-time span per barrier group over the
//	                 run so far, in seconds — the widening factor
func RegisterWindowAux(p *metrics.Plane, se *sim.ShardedEngine) {
	p.RegisterAuxCounter("sim.windows", func() int64 { return se.WindowStats().Windows })
	p.RegisterAuxCounter("sim.hops", func() int64 { return se.WindowStats().Hops })
	p.RegisterAuxCounter("sim.quiesces", func() int64 { return se.WindowStats().Quiesces })
	p.RegisterAuxGauge("sim.window_span", func(k *metrics.Sink) {
		ws := se.WindowStats()
		if ws.Windows == 0 {
			k.Emit(-1, 0)
			return
		}
		k.Emit(-1, ws.SpanSum.Seconds()/float64(ws.Windows))
	})
}
