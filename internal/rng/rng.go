// Package rng provides deterministic, seed-splittable random number
// generation and the distributions used by the workload and churn
// generators.
//
// All randomness in a simulation flows from one root seed. Independent
// components derive their own streams with Split, which hashes the root
// seed with a label, so adding a new consumer never perturbs the draws
// seen by existing consumers.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Split derives a child seed from seed and a label. The derivation is
// stable across runs and platforms (FNV-1a over the label mixed with the
// seed), so streams keyed by the same label always coincide.
func Split(seed int64, label string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := range buf {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// Stream is a deterministic random stream with the distribution helpers
// the simulator needs.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// NewSplit returns a stream seeded with Split(seed, label).
func NewSplit(seed int64, label string) *Stream {
	return New(Split(seed, label))
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp requires mean > 0")
	}
	return s.r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Weighted selects an index from weights with probability proportional
// to the weight. It panics if weights is empty or sums to a non-positive
// value. Negative weights are treated as zero.
func (s *Stream) Weighted(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Weighted requires at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Weighted requires a positive total weight")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SkewedLow returns a value in [0, 1) biased toward 0: the CDF is
// x^(1/shape) for shape ≥ 1, so larger shapes concentrate more mass near
// zero. shape = 1 is uniform. This models the paper's observation that a
// high percentage of grid nodes and jobs have relatively low resource
// capabilities and requirements.
func (s *Stream) SkewedLow(shape float64) float64 {
	if shape < 1 {
		shape = 1
	}
	return math.Pow(s.r.Float64(), shape)
}

// Discrete is a fixed discrete distribution over float64 values.
type Discrete struct {
	values  []float64
	weights []float64
}

// NewDiscrete builds a discrete distribution. values and weights must
// have equal, non-zero length.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic("rng: NewDiscrete requires matching non-empty values and weights")
	}
	v := append([]float64(nil), values...)
	w := append([]float64(nil), weights...)
	return &Discrete{values: v, weights: w}
}

// Sample draws one value from the distribution using stream s.
func (d *Discrete) Sample(s *Stream) float64 {
	return d.values[s.Weighted(d.weights)]
}

// Values returns a copy of the distribution's support, sorted ascending.
func (d *Discrete) Values() []float64 {
	v := append([]float64(nil), d.values...)
	sort.Float64s(v)
	return v
}

// Max returns the largest value in the support.
func (d *Discrete) Max() float64 {
	m := d.values[0]
	for _, v := range d.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
