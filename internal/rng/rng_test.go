package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitIsDeterministic(t *testing.T) {
	a := Split(42, "workload")
	b := Split(42, "workload")
	if a != b {
		t.Fatalf("Split not deterministic: %d vs %d", a, b)
	}
}

func TestSplitSeparatesLabels(t *testing.T) {
	if Split(42, "workload") == Split(42, "churn") {
		t.Fatal("different labels produced the same seed")
	}
}

func TestSplitSeparatesSeeds(t *testing.T) {
	if Split(1, "x") == Split(2, "x") {
		t.Fatal("different seeds produced the same child seed")
	}
}

func TestStreamsWithSameSeedCoincide(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ≈3.0", mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(4)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestWeightedProportions(t *testing.T) {
	s := New(5)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Weighted(weights)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d: frequency %v, want ≈%v", i, got, want)
		}
	}
}

func TestWeightedSkipsNonPositive(t *testing.T) {
	s := New(6)
	weights := []float64{0, -1, 5, 0}
	for i := 0; i < 1000; i++ {
		if got := s.Weighted(weights); got != 2 {
			t.Fatalf("Weighted selected index %d with zero weight", got)
		}
	}
}

func TestWeightedPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weighted(nil) did not panic")
		}
	}()
	New(1).Weighted(nil)
}

func TestWeightedPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weighted(all zero) did not panic")
		}
	}()
	New(1).Weighted([]float64{0, 0})
}

func TestSkewedLowRangeProperty(t *testing.T) {
	s := New(7)
	f := func(shapeRaw uint8) bool {
		shape := 1 + float64(shapeRaw)/16
		v := s.SkewedLow(shape)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedLowBiasesTowardZero(t *testing.T) {
	s := New(8)
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if s.SkewedLow(3) < 0.125 {
			below++
		}
	}
	// CDF(x) = x^(1/3): P(v < 0.125) = 0.5.
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("P(SkewedLow(3) < 0.125) = %v, want ≈0.5", frac)
	}
}

func TestSkewedLowShapeOneIsUniform(t *testing.T) {
	s := New(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.SkewedLow(1)
	}
	if math.Abs(sum/n-0.5) > 0.01 {
		t.Fatalf("SkewedLow(1) mean = %v, want ≈0.5", sum/n)
	}
}

func TestSkewedLowClampsShapeBelowOne(t *testing.T) {
	a := New(10)
	b := New(10)
	for i := 0; i < 100; i++ {
		if a.SkewedLow(0.2) != b.SkewedLow(1) {
			t.Fatal("shape < 1 not clamped to 1")
		}
	}
}

func TestDiscreteSampleOnlyFromSupport(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 4}, []float64{1, 1, 1})
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := d.Sample(s)
		if v != 1 && v != 2 && v != 4 {
			t.Fatalf("sample %v outside support", v)
		}
	}
}

func TestDiscreteMax(t *testing.T) {
	d := NewDiscrete([]float64{3, 9, 1}, []float64{1, 1, 1})
	if d.Max() != 9 {
		t.Fatalf("Max = %v, want 9", d.Max())
	}
}

func TestDiscreteValuesSortedCopy(t *testing.T) {
	d := NewDiscrete([]float64{3, 1, 2}, []float64{1, 1, 1})
	v := d.Values()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Values = %v, want sorted", v)
	}
	v[0] = 99
	if d.Values()[0] != 1 {
		t.Fatal("Values does not return a copy")
	}
}

func TestNewDiscretePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	NewDiscrete([]float64{1}, []float64{1, 2})
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestNewSplitMatchesManualSplit(t *testing.T) {
	a := NewSplit(99, "foo")
	b := New(Split(99, "foo"))
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewSplit differs from New(Split(...))")
		}
	}
}
