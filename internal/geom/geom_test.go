package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(vs ...float64) Point { return Point(vs) }

func TestPointDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{pt(0.5, 0.5), pt(0.5, 0.5), true},
		{pt(0.6, 0.5), pt(0.5, 0.5), true},
		{pt(0.4, 0.9), pt(0.5, 0.5), false},
		{pt(0.5), pt(0.5, 0.5), false}, // dimension mismatch
	}
	for i, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("case %d: Dominates = %v, want %v", i, got, c.want)
		}
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := pt(0.1, 0.2)
	q := p.Clone()
	q[0] = 0.9
	if p[0] != 0.1 {
		t.Fatal("Clone shares storage")
	}
}

func TestUnitZone(t *testing.T) {
	z := UnitZone(3)
	if !z.Valid() || z.Dims() != 3 || z.Volume() != 1 {
		t.Fatalf("UnitZone(3) = %v", z)
	}
	if !z.Contains(pt(0, 0, 0)) {
		t.Fatal("unit zone must contain the origin")
	}
	if z.Contains(pt(1, 0, 0)) {
		t.Fatal("unit zone is half-open: must not contain coordinate 1")
	}
	if !z.Contains(pt(0.999999, 0.5, 0)) {
		t.Fatal("unit zone must contain points just under 1")
	}
}

func TestSplitPartitionsZone(t *testing.T) {
	z := UnitZone(2)
	lo, hi := z.Split(0, 0.3)
	if lo.Hi[0] != 0.3 || hi.Lo[0] != 0.3 {
		t.Fatalf("split halves wrong: %v / %v", lo, hi)
	}
	if v := lo.Volume() + hi.Volume(); v != 1 {
		t.Fatalf("split volumes sum to %v, want 1", v)
	}
	if !lo.Contains(pt(0.29, 0.5)) || lo.Contains(pt(0.3, 0.5)) {
		t.Fatal("half-open boundary wrong on low half")
	}
	if !hi.Contains(pt(0.3, 0.5)) {
		t.Fatal("high half must contain the plane")
	}
}

func TestSplitPanicsOutsideExtent(t *testing.T) {
	z := UnitZone(2)
	for _, plane := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split at %v did not panic", plane)
				}
			}()
			z.Split(0, plane)
		}()
	}
}

func TestSplitPanicsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split with bad dim did not panic")
		}
	}()
	UnitZone(2).Split(2, 0.5)
}

func TestMergeRoundTrip(t *testing.T) {
	z := UnitZone(3)
	lo, hi := z.Split(1, 0.4)
	m, ok := lo.Merge(hi)
	if !ok || !m.Equal(z) {
		t.Fatalf("Merge(lo,hi) = %v, %v; want original zone", m, ok)
	}
	m2, ok2 := hi.Merge(lo)
	if !ok2 || !m2.Equal(z) {
		t.Fatalf("Merge is not symmetric: %v, %v", m2, ok2)
	}
}

func TestMergeRejectsNonSiblings(t *testing.T) {
	z := UnitZone(2)
	lo, hi := z.Split(0, 0.5)
	loA, _ := lo.Split(1, 0.5)
	if _, ok := loA.Merge(hi); ok {
		t.Fatal("merged zones that do not form a box")
	}
	// Disjoint, non-touching zones.
	a := Zone{Lo: pt(0, 0), Hi: pt(0.2, 0.2)}
	b := Zone{Lo: pt(0.5, 0.5), Hi: pt(0.7, 0.7)}
	if _, ok := a.Merge(b); ok {
		t.Fatal("merged disjoint zones")
	}
	// Identical zones.
	if _, ok := a.Merge(a); ok {
		t.Fatal("merged identical zones")
	}
}

func TestAbuts(t *testing.T) {
	//  A | B   over [0,1)²: A=[0,.5)x[0,1), B=[.5,1)x[0,1)
	a := Zone{Lo: pt(0, 0), Hi: pt(0.5, 1)}
	b := Zone{Lo: pt(0.5, 0), Hi: pt(1, 1)}
	dim, dir, ok := a.Abuts(b)
	if !ok || dim != 0 || dir != +1 {
		t.Fatalf("Abuts(a,b) = %d,%d,%v; want 0,+1,true", dim, dir, ok)
	}
	dim, dir, ok = b.Abuts(a)
	if !ok || dim != 0 || dir != -1 {
		t.Fatalf("Abuts(b,a) = %d,%d,%v; want 0,-1,true", dim, dir, ok)
	}
}

func TestAbutsRejectsCornerContact(t *testing.T) {
	a := Zone{Lo: pt(0, 0), Hi: pt(0.5, 0.5)}
	b := Zone{Lo: pt(0.5, 0.5), Hi: pt(1, 1)}
	if _, _, ok := a.Abuts(b); ok {
		t.Fatal("corner contact must not count as abutment")
	}
}

func TestAbutsRejectsEdgeOnlyContactIn3D(t *testing.T) {
	// Two boxes in 3D sharing only a 1-dimensional edge.
	a := Zone{Lo: pt(0, 0, 0), Hi: pt(0.5, 0.5, 1)}
	b := Zone{Lo: pt(0.5, 0.5, 0), Hi: pt(1, 1, 1)}
	if _, _, ok := a.Abuts(b); ok {
		t.Fatal("edge contact must not count as abutment")
	}
}

func TestAbutsRejectsOverlapsAndGaps(t *testing.T) {
	a := Zone{Lo: pt(0, 0), Hi: pt(0.6, 1)}
	b := Zone{Lo: pt(0.5, 0), Hi: pt(1, 1)} // overlaps a
	if _, _, ok := a.Abuts(b); ok {
		t.Fatal("overlapping zones must not abut")
	}
	c := Zone{Lo: pt(0.7, 0), Hi: pt(1, 1)} // gap from a
	if _, _, ok := a.Abuts(c); ok {
		t.Fatal("separated zones must not abut")
	}
}

func TestAbutsPartialFace(t *testing.T) {
	a := Zone{Lo: pt(0, 0), Hi: pt(0.5, 1)}
	b := Zone{Lo: pt(0.5, 0.25), Hi: pt(1, 0.75)}
	dim, dir, ok := a.Abuts(b)
	if !ok || dim != 0 || dir != +1 {
		t.Fatalf("partial-face abutment not detected: %d,%d,%v", dim, dir, ok)
	}
	if got := a.FaceOverlap(b, 0); got != 0.5 {
		t.Fatalf("FaceOverlap = %v, want 0.5", got)
	}
}

func TestOverlaps(t *testing.T) {
	a := Zone{Lo: pt(0, 0), Hi: pt(0.5, 0.5)}
	b := Zone{Lo: pt(0.4, 0.4), Hi: pt(1, 1)}
	c := Zone{Lo: pt(0.5, 0), Hi: pt(1, 0.5)}
	if !a.Overlaps(b) {
		t.Fatal("overlapping zones not detected")
	}
	if a.Overlaps(c) {
		t.Fatal("face-touching zones must not overlap (half-open)")
	}
}

func TestFaceArea(t *testing.T) {
	z := Zone{Lo: pt(0, 0, 0), Hi: pt(0.5, 0.25, 1)}
	if got := z.FaceArea(0); got != 0.25 {
		t.Fatalf("FaceArea(0) = %v, want 0.25", got)
	}
	if got := z.FaceArea(2); got != 0.125 {
		t.Fatalf("FaceArea(2) = %v, want 0.125", got)
	}
}

func TestCenterInsideZone(t *testing.T) {
	z := Zone{Lo: pt(0.2, 0.4), Hi: pt(0.6, 0.5)}
	c := z.Center()
	if !z.Contains(c) {
		t.Fatalf("center %v outside zone %v", c, z)
	}
}

func TestValid(t *testing.T) {
	if (Zone{}).Valid() {
		t.Fatal("zero zone must be invalid")
	}
	if (Zone{Lo: pt(0, 0), Hi: pt(0, 1)}).Valid() {
		t.Fatal("zero-extent zone must be invalid")
	}
	if (Zone{Lo: pt(0), Hi: pt(1, 1)}).Valid() {
		t.Fatal("mismatched dims must be invalid")
	}
}

// Property: splitting any zone at any interior plane yields two valid
// zones that abut along the split dimension, merge back to the original,
// and partition its volume.
func TestSplitMergeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(rawDim uint8, rawPlane uint16) bool {
		d := 2 + int(rawDim)%5
		z := UnitZone(d)
		// Shrink to a random sub-zone to test non-unit extents.
		for i := 0; i < d; i++ {
			lo := r.Float64() * 0.4
			hi := 0.6 + r.Float64()*0.4
			z.Lo[i], z.Hi[i] = lo, hi
		}
		dim := int(rawDim) % d
		frac := 0.001 + (float64(rawPlane)/65535.0)*0.998
		plane := z.Lo[dim] + frac*z.Width(dim)
		if !(z.Lo[dim] < plane && plane < z.Hi[dim]) {
			return true // degenerate rounding; skip
		}
		lo, hi := z.Split(dim, plane)
		if !lo.Valid() || !hi.Valid() {
			return false
		}
		gotDim, dir, ok := lo.Abuts(hi)
		if !ok || gotDim != dim || dir != +1 {
			return false
		}
		m, ok := lo.Merge(hi)
		if !ok || !m.Equal(z) {
			return false
		}
		return abs(lo.Volume()+hi.Volume()-z.Volume()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
