// Package geom provides points and axis-aligned hyper-rectangular zones
// in the d-dimensional CAN coordinate space.
//
// The CAN space is the half-open unit hypercube [0,1)^d. A zone is a
// half-open box [Lo, Hi) per dimension; half-open intervals make zone
// unions exact: splitting a zone at a plane yields two zones whose union
// is the original and whose intersection is empty.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in the d-dimensional CAN space. Coordinates lie in
// [0, 1).
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Dims returns the dimensionality of p.
func (p Point) Dims() int { return len(p) }

// Equal reports whether p and q are identical. Slices sharing the same
// backing array are equal without inspecting elements — the common case
// on the heartbeat plane, where records alias zone geometry instead of
// cloning it.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	if len(p) > 0 && &p[0] == &q[0] {
		return true
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether p ≥ q component-wise. In the CAN a node at p
// satisfies a job at q exactly when p dominates q (the node offers at
// least the required amount of every resource).
func (p Point) Dominates(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] < q[i] {
			return false
		}
	}
	return true
}

func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%.4f", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Zone is a half-open axis-aligned box: dimension i spans [Lo[i], Hi[i]).
type Zone struct {
	Lo, Hi Point
}

// UnitZone returns the whole space [0,1)^d.
func UnitZone(d int) Zone {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return Zone{Lo: lo, Hi: hi}
}

// Clone returns a deep copy of z.
func (z Zone) Clone() Zone { return Zone{Lo: z.Lo.Clone(), Hi: z.Hi.Clone()} }

// Dims returns the dimensionality of z.
func (z Zone) Dims() int { return len(z.Lo) }

// Valid reports whether z has matching dimensions and positive extent in
// every dimension.
func (z Zone) Valid() bool {
	if len(z.Lo) == 0 || len(z.Lo) != len(z.Hi) {
		return false
	}
	for i := range z.Lo {
		if !(z.Lo[i] < z.Hi[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside z (half-open test).
func (z Zone) Contains(p Point) bool {
	if len(p) != len(z.Lo) {
		return false
	}
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports whether z and w cover exactly the same box.
func (z Zone) Equal(w Zone) bool { return z.Lo.Equal(w.Lo) && z.Hi.Equal(w.Hi) }

// Width returns the extent of z along dimension dim.
func (z Zone) Width(dim int) float64 { return z.Hi[dim] - z.Lo[dim] }

// Volume returns the product of widths over all dimensions.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= z.Width(i)
	}
	return v
}

// Center returns the midpoint of z.
func (z Zone) Center() Point {
	c := make(Point, len(z.Lo))
	for i := range c {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// Split cuts z at plane along dimension dim and returns the low and high
// halves. It panics if the plane does not lie strictly inside the zone's
// extent in that dimension, which would produce an empty zone.
func (z Zone) Split(dim int, plane float64) (low, high Zone) {
	if dim < 0 || dim >= len(z.Lo) {
		panic(fmt.Sprintf("geom: split dimension %d out of range for %d dims", dim, len(z.Lo)))
	}
	if !(z.Lo[dim] < plane && plane < z.Hi[dim]) {
		panic(fmt.Sprintf("geom: split plane %v outside zone extent [%v,%v)", plane, z.Lo[dim], z.Hi[dim]))
	}
	low = z.Clone()
	high = z.Clone()
	low.Hi[dim] = plane
	high.Lo[dim] = plane
	return low, high
}

// Merge returns the union of z and w when they are siblings: identical
// in every dimension except one, where they share a face. ok is false
// when the union is not a box.
func (z Zone) Merge(w Zone) (Zone, bool) {
	if len(z.Lo) != len(w.Lo) {
		return Zone{}, false
	}
	diff := -1
	for i := range z.Lo {
		if z.Lo[i] == w.Lo[i] && z.Hi[i] == w.Hi[i] {
			continue
		}
		if diff >= 0 {
			return Zone{}, false
		}
		diff = i
	}
	if diff < 0 {
		return Zone{}, false // identical zones: nothing to merge
	}
	m := z.Clone()
	switch {
	case z.Hi[diff] == w.Lo[diff]:
		m.Hi[diff] = w.Hi[diff]
	case w.Hi[diff] == z.Lo[diff]:
		m.Lo[diff] = w.Lo[diff]
	default:
		return Zone{}, false
	}
	return m, true
}

// Overlaps reports whether z and w share interior volume.
func (z Zone) Overlaps(w Zone) bool {
	if len(z.Lo) != len(w.Lo) {
		return false
	}
	for i := range z.Lo {
		if z.Hi[i] <= w.Lo[i] || w.Hi[i] <= z.Lo[i] {
			return false
		}
	}
	return true
}

// Abuts reports whether z and w are CAN neighbors: they share a
// (d-1)-dimensional face, i.e. they touch along exactly one dimension
// and overlap with positive extent in every other dimension. If so, dim
// is the touching dimension and dir is +1 when w lies on z's high side,
// -1 when on the low side.
func (z Zone) Abuts(w Zone) (dim, dir int, ok bool) {
	if len(z.Lo) != len(w.Lo) {
		return 0, 0, false
	}
	dim, dir = -1, 0
	for i := range z.Lo {
		switch {
		case z.Hi[i] == w.Lo[i]:
			if dim >= 0 {
				return 0, 0, false // touches along two dimensions: corner contact
			}
			dim, dir = i, +1
		case w.Hi[i] == z.Lo[i]:
			if dim >= 0 {
				return 0, 0, false
			}
			dim, dir = i, -1
		case z.Hi[i] <= w.Lo[i] || w.Hi[i] <= z.Lo[i]:
			return 0, 0, false // disjoint with a gap in dimension i
		}
	}
	if dim < 0 {
		return 0, 0, false // overlapping zones are not neighbors
	}
	// Every non-touching dimension reached neither equality nor the gap
	// case, so z.Hi > w.Lo and w.Hi > z.Lo there: the shared face has
	// positive (d-1)-dimensional extent by construction.
	return dim, dir, true
}

// FaceOverlap returns the (d-1)-dimensional measure of the shared face
// between z and w along dimension dim, assuming they abut along dim. It
// is 0 when they do not overlap in some other dimension.
func (z Zone) FaceOverlap(w Zone, dim int) float64 {
	area := 1.0
	for i := range z.Lo {
		if i == dim {
			continue
		}
		ext := math.Min(z.Hi[i], w.Hi[i]) - math.Max(z.Lo[i], w.Lo[i])
		if ext <= 0 {
			return 0
		}
		area *= ext
	}
	return area
}

// FaceArea returns the (d-1)-dimensional measure of z's face orthogonal
// to dim.
func (z Zone) FaceArea(dim int) float64 {
	area := 1.0
	for i := range z.Lo {
		if i == dim {
			continue
		}
		area *= z.Width(i)
	}
	return area
}

func (z Zone) String() string {
	return fmt.Sprintf("[%v .. %v)", z.Lo, z.Hi)
}
