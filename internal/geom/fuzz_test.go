package geom

import "testing"

// FuzzSplitMerge checks that splitting any zone at any interior plane
// and merging the halves reproduces the original zone, and that the
// halves abut exactly once.
func FuzzSplitMerge(f *testing.F) {
	f.Add(0.3, 0.7, uint8(0), 0.5)
	f.Add(0.0, 1.0, uint8(1), 0.25)
	f.Add(0.1, 0.9, uint8(2), 0.8)
	f.Fuzz(func(t *testing.T, lo, hi float64, dimRaw uint8, frac float64) {
		if !(lo >= 0 && lo < hi && hi <= 1) || frac <= 0 || frac >= 1 {
			t.Skip()
		}
		const d = 3
		z := UnitZone(d)
		dim := int(dimRaw) % d
		z.Lo[dim], z.Hi[dim] = lo, hi
		plane := lo + frac*(hi-lo)
		if !(lo < plane && plane < hi) {
			t.Skip() // rounding degeneracy
		}
		low, high := z.Split(dim, plane)
		if !low.Valid() || !high.Valid() {
			t.Fatalf("invalid halves: %v / %v", low, high)
		}
		gotDim, dir, ok := low.Abuts(high)
		if !ok || gotDim != dim || dir != +1 {
			t.Fatalf("halves do not abut along the split dim: %d %d %v", gotDim, dir, ok)
		}
		m, ok := low.Merge(high)
		if !ok || !m.Equal(z) {
			t.Fatalf("merge did not reproduce the zone: %v vs %v", m, z)
		}
		// Containment is exclusive between the halves.
		p := z.Center()
		if low.Contains(p) == high.Contains(p) {
			t.Fatalf("center contained by both or neither half")
		}
	})
}

// FuzzAbutsSymmetry checks that abutment detection is symmetric with
// mirrored direction and never reports self-abutment.
func FuzzAbutsSymmetry(f *testing.F) {
	f.Add(0.0, 0.5, 0.5, 1.0, 0.0, 1.0, 0.0, 1.0)
	f.Add(0.2, 0.4, 0.4, 0.9, 0.1, 0.5, 0.3, 0.8)
	f.Fuzz(func(t *testing.T, alo0, ahi0, blo0, bhi0, alo1, ahi1, blo1, bhi1 float64) {
		ok := func(lo, hi float64) bool { return lo >= 0 && lo < hi && hi <= 1 }
		if !ok(alo0, ahi0) || !ok(blo0, bhi0) || !ok(alo1, ahi1) || !ok(blo1, bhi1) {
			t.Skip()
		}
		a := Zone{Lo: Point{alo0, alo1}, Hi: Point{ahi0, ahi1}}
		b := Zone{Lo: Point{blo0, blo1}, Hi: Point{bhi0, bhi1}}
		dimAB, dirAB, okAB := a.Abuts(b)
		dimBA, dirBA, okBA := b.Abuts(a)
		if okAB != okBA {
			t.Fatalf("asymmetric abutment: %v vs %v", okAB, okBA)
		}
		if okAB && (dimAB != dimBA || dirAB != -dirBA) {
			t.Fatalf("mirrored result wrong: (%d,%d) vs (%d,%d)", dimAB, dirAB, dimBA, dirBA)
		}
		if _, _, self := a.Abuts(a); self {
			t.Fatal("zone abuts itself")
		}
	})
}
