package sim

import (
	"fmt"
	"strings"
	"testing"
)

// splitmix64 is the per-event op generator of the synthetic workloads:
// every decision is a pure function of (seed, actor, event index), so
// what a run does is independent of how same-instant events interleave.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardTestActor is a self-rescheduling Caller that logs every firing
// into its shard's log, posts cross-shard mail, occasionally posts a
// global event, and exercises Cancel by scheduling a decoy each round
// and cancelling it the next.
type shardTestActor struct {
	se      *ShardedEngine
	shard   int
	id      int
	k       int
	state   uint64
	horizon Time
	logs    *[][]string
	decoy   EventID
}

// shardTestMsg logs into the DESTINATION shard's log: it executes on
// that shard's worker, and each shard log must have a single writer.
type shardTestMsg struct {
	logs    *[][]string
	dst     int
	src, id int
	payload uint64
}

func (m *shardTestMsg) Call(now Time) {
	(*m.logs)[m.dst] = append((*m.logs)[m.dst], fmt.Sprintf("t=%d msg src=%d.%d payload=%x", now, m.src, m.id, m.payload))
}

func (a *shardTestActor) Call(now Time) {
	r := splitmix64(uint64(a.shard)<<32 ^ uint64(a.id)<<16 ^ uint64(a.k))
	a.state = splitmix64(a.state ^ r)
	log := &(*a.logs)[a.shard]
	*log = append(*log, fmt.Sprintf("t=%d actor=%d.%d k=%d state=%x", now, a.shard, a.id, a.k, a.state))
	a.k++

	if a.decoy.Valid() {
		a.se.Shard(a.shard).Cancel(a.decoy)
	}
	if now >= a.horizon {
		return
	}
	eng := a.se.Shard(a.shard)
	// Self event with a sub-lookahead delay (intra-shard, lock-free);
	// the decoy's delay is always longer, so the next firing reliably
	// cancels it before it can go off.
	eng.AfterCall(Duration(1+r%7), a)
	a.decoy = eng.After(Duration(9+r%11), func(Time) {
		*log = append(*log, fmt.Sprintf("t? decoy %d.%d leaked", a.shard, a.id))
	})
	// Cross-shard mail carrying exactly one lookahead, keyed by the
	// sending actor's identity.
	key := uint64(a.shard<<8 | a.id)
	dst := int(r>>8) % a.se.Shards()
	a.se.Post(a.shard, dst, now.Add(a.se.Lookahead()), key, &shardTestMsg{
		logs: a.logs, dst: dst, src: a.shard, id: a.id, payload: r,
	})
	if r%5 == 0 {
		src, id, k := a.shard, a.id, a.k
		a.se.PostGlobal(a.shard, now.Add(a.se.Lookahead()), key, func(gnow Time) {
			*log = append(*log, fmt.Sprintf("t=%d global from=%d.%d k=%d", gnow, src, id, k))
		})
	}
}

// runShardTestWorkload runs the synthetic workload at the given shard
// and worker counts and returns the per-shard logs joined in shard
// order plus the merged engine stats — the run's "report".
func runShardTestWorkload(t *testing.T, shards, workers int, seed uint64, horizon Time) string {
	t.Helper()
	se := NewSharded(shards, 10)
	se.SetWorkers(workers)
	defer se.Close()

	logs := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		for id := 0; id < 2; id++ {
			a := &shardTestActor{
				se: se, shard: sh, id: id,
				state:   splitmix64(seed ^ uint64(sh*31+id)),
				horizon: horizon,
				logs:    &logs,
			}
			se.Shard(sh).AtCall(Time(1+int64(splitmix64(seed^uint64(sh<<8|id))%5)), a)
		}
	}
	se.Run()

	var b strings.Builder
	for sh, l := range logs {
		fmt.Fprintf(&b, "== shard %d (%d events)\n", sh, len(l))
		for _, line := range l {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	st := se.Stats()
	fmt.Fprintf(&b, "stats scheduled=%d fired=%d cancelled=%d pooled=%d pending=%d now=%d\n",
		st.Scheduled, st.Fired, st.Cancelled, st.Pooled, se.Pending(), se.Now())
	return b.String()
}

// TestShardedWorkerInvariance is the core determinism contract: at a
// fixed shard count S, the run's full event log is byte-identical for
// every worker count W.
func TestShardedWorkerInvariance(t *testing.T) {
	const shards = 5
	want := runShardTestWorkload(t, shards, 1, 42, 200)
	if !strings.Contains(want, "msg src=") {
		t.Fatalf("workload produced no cross-shard traffic:\n%s", want)
	}
	if strings.Contains(want, "leaked") {
		t.Fatalf("cancelled decoy fired:\n%s", want)
	}
	for _, w := range []int{2, 3, shards} {
		got := runShardTestWorkload(t, shards, w, 42, 200)
		if got != want {
			t.Fatalf("W=%d diverged from W=1 at S=%d:\n--- W=1\n%s\n--- W=%d\n%s", w, shards, want, w, got)
		}
	}
}

// TestShardedCrossShardTieOrder pins the tie-break rule across shard
// boundaries: same-timestamp arrivals at one shard fire in mailbox
// flush order — (src shard ascending, emission order) — and a global
// event at the same instant fires before any of them. The order must
// not depend on the worker count.
func TestShardedCrossShardTieOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		se := NewSharded(4, 10)
		se.SetWorkers(workers)
		var log []string
		for src := 0; src < 4; src++ {
			src := src
			se.Shard(src).At(0, func(now Time) {
				for k := 0; k < 2; k++ {
					k := k
					se.Post(src, 0, now.Add(se.Lookahead()), uint64(src), callerFunc(func(at Time) {
						log = append(log, fmt.Sprintf("t=%d src=%d k=%d", at, src, k))
					}))
				}
			})
		}
		se.Shard(0).At(0, func(now Time) {
			se.PostGlobal(0, now.Add(se.Lookahead()), 0, func(at Time) {
				log = append(log, fmt.Sprintf("t=%d global", at))
			})
		})
		se.Run()
		se.Close()

		want := []string{
			"t=10 global",
			"t=10 src=0 k=0", "t=10 src=0 k=1",
			"t=10 src=1 k=0", "t=10 src=1 k=1",
			"t=10 src=2 k=0", "t=10 src=2 k=1",
			"t=10 src=3 k=0", "t=10 src=3 k=1",
		}
		if len(log) != len(want) {
			t.Fatalf("W=%d: got %d events, want %d: %v", workers, len(log), len(want), log)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("W=%d: event %d = %q, want %q (full: %v)", workers, i, log[i], want[i], log)
			}
		}
	}
}

type callerFunc func(Time)

func (f callerFunc) Call(now Time) { f(now) }

// TestShardedPostBelowWindowPanics enforces the conservative-execution
// invariant: a cross-shard post that carries less than one lookahead
// (landing inside the current window) must panic rather than silently
// violate causality.
func TestShardedPostBelowWindowPanics(t *testing.T) {
	se := NewSharded(2, 10)
	defer se.Close()
	se.Shard(0).At(5, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("Post below the window bound did not panic")
			}
		}()
		se.Post(0, 1, now.Add(1), 0, callerFunc(func(Time) {}))
	})
	se.Run()
}

// TestShardedRunUntil checks deadline semantics: events at the deadline
// fire, events beyond it stay queued, and every clock ends aligned.
func TestShardedRunUntil(t *testing.T) {
	se := NewSharded(3, 10)
	defer se.Close()
	var fired []string
	se.Shard(1).At(50, func(now Time) { fired = append(fired, fmt.Sprintf("at50 t=%d", now)) })
	se.Shard(2).At(51, func(now Time) { fired = append(fired, fmt.Sprintf("at51 t=%d", now)) })
	se.Global().At(50, func(now Time) { fired = append(fired, fmt.Sprintf("g50 t=%d", now)) })
	se.RunUntil(50)
	if want := []string{"g50 t=50", "at50 t=50"}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if se.Pending() != 1 {
		t.Fatalf("pending = %d, want the t=51 event queued", se.Pending())
	}
	if se.Now() != 50 {
		t.Fatalf("Now = %d, want 50", se.Now())
	}
	for i := 0; i < se.Shards(); i++ {
		if got := se.Shard(i).Now(); got != 50 {
			t.Fatalf("shard %d clock = %d, want 50", i, got)
		}
	}
	se.RunUntil(60)
	if len(fired) != 3 || fired[2] != "at51 t=51" {
		t.Fatalf("second RunUntil fired %v", fired)
	}
}

// TestEngineScopedStats guards the satellite bugfix: two engines in one
// process keep independent event accounting (the package-level perf
// counters aggregate process-wide by design, but Stats must not).
func TestEngineScopedStats(t *testing.T) {
	e1, e2 := New(), New()
	for i := 0; i < 3; i++ {
		e1.At(Time(i), func(Time) {})
	}
	id := e2.At(7, func(Time) {})
	e2.Cancel(id)
	e1.Run()
	s1, s2 := e1.Stats(), e2.Stats()
	if s1.Scheduled != 3 || s1.Fired != 3 || s1.Cancelled != 0 {
		t.Fatalf("e1 stats = %+v, want 3 scheduled / 3 fired / 0 cancelled", s1)
	}
	if s2.Scheduled != 1 || s2.Fired != 0 || s2.Cancelled != 1 {
		t.Fatalf("e2 stats = %+v, want 1 scheduled / 0 fired / 1 cancelled", s2)
	}
}

// fuzzActor is the FuzzShardedDeterminism workload: a population of
// actors dealt round-robin onto however many shards the run uses — an
// active set scheduled at t≈0 plus a dormant reserve activated mid-run
// by join-wave events. Every op is a pure function of (seed, actor,
// event index) and every actor→actor message carries exactly one
// lookahead, so the aggregate report below is invariant across BOTH
// the worker count and the shard count. Cross-actor effects use two
// accumulators: `inbox` is commutative (different shard counts
// legitimately interleave same-instant events of DIFFERENT actors
// differently), while `chain` is order-sensitive — one actor's
// mailbox deliveries fire in (at, key, sub) order by contract, so
// hash-chaining them pins the delivery order itself, which is what
// the serial-emission sub key exists to keep partition-independent.
type fuzzActor struct {
	se      *ShardedEngine
	shards  int
	id      int
	actors  int
	k       int
	horizon Time
	period  Duration // 0: dense sub-lookahead self-delays; else a steady-state tick period

	events uint64 // own firings
	inbox  uint64 // commutative hash-sum of received (time, payload)
	chain  uint64 // order-sensitive hash-chain of mailbox deliveries
	last   Time
}

type fuzzMsg struct {
	dst     *fuzzActor
	payload uint64
}

func (m *fuzzMsg) Call(now Time) {
	m.dst.inbox += splitmix64(uint64(now) ^ m.payload)
	m.dst.chain = splitmix64(m.dst.chain ^ m.payload ^ uint64(now))
	if now > m.dst.last {
		m.dst.last = now
	}
}

func (a *fuzzActor) Call(now Time) {
	a.events++
	if now > a.last {
		a.last = now
	}
	r := splitmix64(uint64(a.id)<<40 ^ uint64(a.k)<<8 ^ 0xfa27)
	a.k++
	if now >= a.horizon {
		return
	}
	myShard := a.id % a.shards
	// Self event: a dense sub-lookahead delay, or — when the run carries
	// a heartbeat-like period — a steady-state gap of several lookaheads,
	// the regime the adaptive window policy widens across.
	if a.period > 0 {
		a.se.Shard(myShard).AfterCall(a.period+Duration(r%9), a)
	} else {
		a.se.Shard(myShard).AfterCall(Duration(1+r%9), a)
	}
	// Message to a derived peer, carrying exactly one lookahead so the
	// send is legal at every shard count (self-sends included).
	if r%3 != 0 {
		dst := int(r>>16) % a.actors
		a.se.Post(myShard, dst%a.shards, now.Add(a.se.Lookahead()), uint64(a.id), &fuzzMsg{payload: r, dst: fuzzPeers[dst]})
	}
	// Occasional global event bumping a shared control counter.
	if r%7 == 0 {
		a.se.PostGlobal(myShard, now.Add(a.se.Lookahead()), uint64(a.id), func(gnow Time) {
			fuzzGlobal += splitmix64(uint64(gnow) ^ r)
		})
	}
	// Occasional batch event: runs at a window barrier and hoists an
	// effect back to its own instant on a target's shard — the shape of
	// batched admission (a completion installing state the window about
	// to run must observe). Both the barrier-side counter and the
	// hoisted in-window delivery must stay (S, W)-invariant.
	if r%11 == 0 {
		dst := int(r>>24) % a.actors
		a.se.PostBatch(myShard, now.Add(a.se.Lookahead()), uint64(a.id), func(bnow Time) {
			fuzzGlobal += splitmix64(uint64(bnow) ^ r ^ 0xb47c)
			a.se.Shard(dst%a.shards).AtCall(bnow, &fuzzMsg{payload: splitmix64(r), dst: fuzzPeers[dst]})
		})
	}
	// Mid-window join wave: wake a reserve actor by posting its first
	// firing through the mailbox. Activation needs no coordination —
	// the actor is its own Caller, and a double activation just splits
	// it into two deterministic self-event chains — and the arrival at
	// now + L typically lands mid-window on the destination shard.
	if r%5 == 1 {
		w := int(r>>12) % a.actors
		a.se.Post(myShard, w%a.shards, now.Add(a.se.Lookahead()), uint64(a.id), fuzzPeers[w])
	}
	// Serial fan-out with a shared key: a control-phase handler sending
	// on behalf of this actor through two different shard facets, the
	// shape of join introductions. Equal (at, key) entries land in
	// different mailbox rows, so only the emission-order sub key keeps
	// their flush order — and the receivers' chains — off the partition.
	if r%13 == 5 {
		d1, d2 := int(r>>20)%a.actors, int(r>>28)%a.actors
		a.se.PostGlobal(myShard, now.Add(a.se.Lookahead()), uint64(a.id), func(gnow Time) {
			at := gnow.Add(a.se.Lookahead())
			a.se.Post(d1%a.shards, d1%a.shards, at, uint64(a.id), &fuzzMsg{payload: splitmix64(r ^ 0x5e41), dst: fuzzPeers[d1]})
			a.se.Post(d2%a.shards, d2%a.shards, at, uint64(a.id), &fuzzMsg{payload: splitmix64(r ^ 0x5e42), dst: fuzzPeers[d2]})
		})
	}
}

// fuzzPeers / fuzzGlobal are per-run scratch for the fuzz workload
// (reset before each run; tests in this package run serially).
var (
	fuzzPeers  []*fuzzActor
	fuzzGlobal uint64
)

// runFuzzWorkload runs the workload and returns its report plus the
// engine's window counters. The report must be a pure model property —
// identical for every (W, policy) at fixed S, and for every S when the
// model is partition-independent — while the counters are expected to
// differ by policy (that is the policy's point) and so stay out of the
// report.
func runFuzzWorkload(shards, workers, actors int, seed uint64, horizon Time, period Duration, policy WindowPolicy) (string, WindowStats) {
	se := NewSharded(shards, 10)
	se.SetWorkers(workers)
	se.SetWindowPolicy(policy)
	defer se.Close()

	// Population = active set + a dormant reserve. Reserve actors are
	// never scheduled here: they fire only if a join-wave event wakes
	// them (possibly more than once), or sit dark absorbing messages.
	total := actors + 1 + actors/2
	fuzzPeers = make([]*fuzzActor, total)
	fuzzGlobal = 0
	for i := range fuzzPeers {
		fuzzPeers[i] = &fuzzActor{
			se: se, shards: shards, id: i, actors: total, horizon: horizon, period: period,
		}
	}
	for i := 0; i < actors; i++ {
		se.Shard(i%shards).AtCall(Time(1+int64(splitmix64(seed^uint64(i))%13)), fuzzPeers[i])
	}
	// Bound the run one period past the actors' horizon: a bounded run
	// gives the adaptive policy a finite widen target even when no
	// global event is pending — the steady-state regime — while every
	// workload event still fires (self-delays never exceed period+8).
	se.RunUntil(horizon.Add(period + 20))

	var b strings.Builder
	for i, a := range fuzzPeers {
		fmt.Fprintf(&b, "actor=%d events=%d inbox=%x chain=%x last=%d\n", i, a.events, a.inbox, a.chain, a.last)
	}
	fmt.Fprintf(&b, "global=%x now=%d pending=%d\n", fuzzGlobal, se.Now(), se.Pending())
	return b.String(), se.WindowStats()
}

// FuzzShardedDeterminism drives a random actor workload (derived from
// the fuzz input) at S ∈ {1, 2, 4, 8} with W ∈ {1, S}, under both
// window policies, and requires byte-identical reports across every
// combination. The period input sets the workload's self-delay regime
// as a multiple of the lookahead (0 = dense sub-lookahead churn, the
// legacy shape; higher ratios give heartbeat-like steady states the
// adaptive policy actually widens across).
func FuzzShardedDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(12), uint8(0))
	f.Add(uint64(31337), uint8(3), uint8(0))
	// Batch-plane corpus: seeds chosen to produce dense r%11 batch
	// events — several in one window, batch events colliding with
	// window barriers, and barrier-hoisted deliveries racing shard
	// events at the same instant.
	f.Add(uint64(0xba7c4), uint8(15), uint8(0))
	f.Add(uint64(0x9e3779b9), uint8(11), uint8(0))
	// Churn corpus: seeds dense in join waves (r%5) and serial fan-outs
	// (r%13) — reserve wake-ups mid-window, double activations, and
	// equal-(at, key) cross-row emissions whose chain ordering only the
	// serial sub key keeps partition-independent.
	f.Add(uint64(0x7e57ab1e), uint8(9), uint8(0))
	f.Add(uint64(0xc0ffee11), uint8(14), uint8(0))
	f.Add(uint64(0x1234fedc), uint8(7), uint8(0))
	// Window-policy corpus: heartbeat-like periods (period/lookahead
	// ratios 2–7) that open wide windows and pin the widen/fall-back
	// boundaries — global events (r%7) landing exactly at widened hop
	// ends, join waves (r%5) waking reserves inside a wide window, and
	// batch events (r%11) forcing mid-steady-state fallbacks.
	f.Add(uint64(0x5ead57a7e), uint8(6), uint8(3))
	f.Add(uint64(0x7e4b0a7d), uint8(10), uint8(7))
	f.Add(uint64(0xadab7), uint8(13), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nactors, period uint8) {
		actors := 1 + int(nactors%16)
		horizon := Time(60 + splitmix64(seed)%140)
		per := Duration(period%8) * 10 // multiples of the lookahead
		want, _ := runFuzzWorkload(1, 1, actors, seed, horizon, per, WindowFixed)
		for _, s := range []int{1, 2, 4, 8} {
			for _, w := range []int{1, s} {
				for _, pol := range []WindowPolicy{WindowFixed, WindowAdaptive} {
					if s == 1 && w == 1 && pol == WindowFixed {
						continue // the baseline itself
					}
					got, _ := runFuzzWorkload(s, w, actors, seed, horizon, per, pol)
					if got != want {
						t.Fatalf("S=%d W=%d window=%v diverged from S=1 W=1 fixed (seed=%#x actors=%d period=%d):\n--- baseline\n%s\n--- S=%d W=%d %v\n%s",
							s, w, pol, seed, actors, per, want, s, w, pol, got)
					}
				}
			}
		}
	})
}
