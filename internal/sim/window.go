package sim

// Adaptive conservative windows. The fixed policy bounds every window
// by one lookahead past its start, which on a heartbeat steady state
// costs a full barrier — flush, dispatch, wait — per delivery hop. The
// adaptive policy notices when the serial planes are quiescent and
// opens one *wide* window spanning many hops: the barrier bookkeeping
// (outer-loop recomputation, batch drains, dormancy checks, stats) is
// paid once per wide window, while execution inside it proceeds as
// lookahead-grained hops whose grid replicates the fixed policy's
// window grid exactly.
//
// # Why hops, not one giant window
//
// Widening the *execution* bound directly to the next heartbeat
// deadline would be unsound: at scale, some shard event inside the
// span emits mail that arrives less than a full span later (a tick at
// t sends mail due t+L, with t+L far below the deadline), so a single
// window body would have to deliver mid-window — exactly what the
// conservative invariant forbids (Post panics). Instead the wide
// window keeps the lookahead-grained hop structure internally and
// widens only what the hop grid is allowed to span before control
// returns to the serial planes. Each hop flushes the previous hop's
// mail and runs shard events strictly before the hop bound, so every
// delivery happens at the same instant, in the same per-destination
// flush batch, and with the same sort position as under the fixed
// policy — which is what makes fixed and adaptive runs byte-identical
// (DESIGN.md §15 gives the argument; TestCorpusWindowPolicyParity and
// the fuzz battery enforce it).
//
// # Eligibility
//
// A wide window opens only when widening provably cannot change what
// the serial planes observe:
//
//   - no pending batch events (a batch event bounds its own window:
//     its effects hoist to that window's start), and no model-held
//     deferred work — the window advisor, wired by proto to batched
//     admission's pending-completion count, vetoes widening;
//   - a finite horizon exists: the next global event (clipped by the
//     run deadline) — hops never cross it;
//   - the horizon is more than one lookahead away (otherwise the fixed
//     bound already reaches it and there is nothing to widen).
//
// Mid-flight, the first hop that buffers mail for the global or batch
// plane ends the wide window: the arrival must be scheduled before the
// next window bound is chosen, exactly as a barrier flush would have
// done under the fixed policy.

// WindowPolicy selects how the sharded engine bounds its conservative
// time windows. It is an execution parameter like the worker count W:
// a run's output is byte-identical under either policy.
type WindowPolicy uint8

const (
	// WindowFixed bounds every window by one lookahead past its start —
	// the PR-7 behavior, one barrier per delivery hop.
	WindowFixed WindowPolicy = iota
	// WindowAdaptive widens eligible windows toward the next
	// serial-plane horizon, executed as lookahead-grained hops.
	WindowAdaptive
)

// String returns the spec/CLI spelling of the policy.
func (p WindowPolicy) String() string {
	if p == WindowAdaptive {
		return "adaptive"
	}
	return "fixed"
}

// ParseWindowPolicy maps the spec/CLI spelling to a policy; the empty
// string is the fixed default. ok is false for any other spelling.
func ParseWindowPolicy(s string) (WindowPolicy, bool) {
	switch s {
	case "", "fixed":
		return WindowFixed, true
	case "adaptive":
		return WindowAdaptive, true
	}
	return WindowFixed, false
}

// WindowStats counts the engine's synchronization structure. Windows is
// the barrier count — the serial sections paid at the outer loop — and
// Hops the conservative windows executed inside them; under the fixed
// policy the two are equal, and their ratio is the adaptive policy's
// win. The counters are observational: they depend on the policy (that
// is the point) and must never feed back into model state.
type WindowStats struct {
	Windows   int64    // barrier groups: fixed windows + wide windows
	Hops      int64    // lookahead-grained windows executed (fixed: == Windows)
	Widened   int64    // wide windows opened by the adaptive policy
	Fallbacks int64    // adaptive windows denied eligibility (ran fixed)
	Quiesces  int64    // control-phase single-event quiesces
	SpanSum   Duration // total virtual-time span of all windows
}

// WindowPolicy returns the active policy.
func (se *ShardedEngine) WindowPolicy() WindowPolicy { return se.policy }

// SetWindowPolicy selects the window policy. Like SetWorkers it is an
// execution knob — output never depends on it — but unlike SetWorkers
// it may be changed between runs (never during one).
func (se *ShardedEngine) SetWindowPolicy(p WindowPolicy) { se.policy = p }

// SetWindowAdvisor installs the model's quiescence oracle: adaptive
// widening is vetoed while it returns false. Models holding deferred
// barrier work that the engine cannot see — batched admission's
// pending completion queues — must wire this, or widening could skip
// the barriers that flush them. Called on the caller goroutine at
// window placement; it must be cheap and must not mutate state.
func (se *ShardedEngine) SetWindowAdvisor(f func() bool) { se.advisor = f }

// SetWindowObserver installs a hook called on the caller goroutine for
// every executed window hop, with the hop's start and exclusive end.
// Test instrumentation; nil disables.
func (se *ShardedEngine) SetWindowObserver(f func(start, end Time)) { se.onWindow = f }

// WindowStats returns the synchronization counters accumulated so far.
func (se *ShardedEngine) WindowStats() WindowStats { return se.wstats }

// MailNext reports the earliest buffered (posted but not yet flushed)
// arrival time from shard src's row to shard dst, with ok false when
// the row is empty. Barrier/caller-goroutine use only — mailbox rows
// are worker-owned during windows.
func (se *ShardedEngine) MailNext(src, dst int) (Time, bool) {
	i := src*(len(se.shards)+2) + dst
	if len(se.mail[i]) == 0 {
		return 0, false
	}
	return se.rowMin[i], true
}

// serialMailPending reports whether any row holds mail for the global
// or batch plane. Caller goroutine, between hops.
func (se *ShardedEngine) serialMailPending() bool {
	S := len(se.shards)
	for src := 0; src < S; src++ {
		base := src * (S + 2)
		if len(se.mail[base+S]) > 0 || len(se.mail[base+S+1]) > 0 {
			return true
		}
	}
	return false
}

// nextHopStart returns the earliest pending shard instant: the minimum
// over shard queues and buffered shard-to-shard mail. This is exactly
// the window start the fixed policy's outer loop would compute after
// flushing — mail not yet flushed here is mail the fixed loop would
// have flushed before taking queue minima.
func (se *ShardedEngine) nextHopStart() (Time, bool) {
	m, ok := se.minShardNext()
	S := len(se.shards)
	for src := 0; src < S; src++ {
		base := src * (S + 2)
		for dst := 0; dst < S; dst++ {
			if len(se.mail[base+dst]) == 0 {
				continue
			}
			if t := se.rowMin[base+dst]; !ok || t < m {
				m, ok = t, true
			}
		}
	}
	return m, ok
}

// tryWideWindow opens one wide window from start when the engine is in
// a widenable steady state, returning false (and counting a fallback)
// otherwise. g/okg is the next global event, b-pending is okb; the
// caller has already ruled out the control phase (start < g or no g).
func (se *ShardedEngine) tryWideWindow(start, g Time, okg, okb bool, deadline Time, bounded bool) bool {
	// A pending batch event must bound its own window — its hoisted
	// effects land at that window's start — and a model holding deferred
	// barrier work (batched admission completions) vetoes via the
	// advisor: both fall back to the fixed bound.
	if okb || (se.advisor != nil && !se.advisor()) {
		se.wstats.Fallbacks++
		return false
	}
	// The horizon is the next serial-plane instant hops may not cross:
	// the next global event, clipped by the run deadline. An unbounded
	// run with no global event has no finite horizon to widen toward.
	horizon, ok := g, okg
	if bounded && (!ok || deadline+1 < horizon) {
		horizon, ok = deadline+1, true
	}
	if !ok || horizon <= start.Add(se.look) {
		// Nothing to widen: the fixed bound already reaches the horizon.
		se.wstats.Fallbacks++
		return false
	}

	if se.hopBuf == nil {
		se.hopBuf = make([][]mailEntry, len(se.shards))
		se.mailAlt = make([][]mailEntry, len(se.mail))
		se.rowMinAlt = make([]Time, len(se.rowMin))
	}
	prev := se.rowOrdered
	se.rowOrdered = true
	hopStart, last := start, start
	flush := false // the outer loop flushed all mail before this window
	for {
		end := hopStart.Add(se.look)
		if end > horizon {
			end = horizon
		}
		se.windowEnd = end
		se.wstats.Hops++
		if se.onWindow != nil {
			se.onWindow(hopStart, end)
		}
		se.runHop(end, flush)
		flush = true
		last = end
		// Mail for a serial plane ends the wide window: its arrival must
		// be scheduled before the next window bound is chosen, exactly
		// as the fixed policy's barrier flush would have done.
		if se.serialMailPending() {
			break
		}
		m, okm := se.nextHopStart()
		if !okm || m >= horizon {
			break
		}
		hopStart = m
	}
	se.rowOrdered = prev
	se.wstats.Windows++
	se.wstats.Widened++
	se.wstats.SpanSum += last.Sub(start)
	return true
}

// runHop executes one lookahead-grained hop of a wide window: flush the
// previous hop's shard-destination mail (when flush is set), then run
// every shard's events strictly before end — one worker dispatch for
// both. Race freedom comes from generation double-buffering: the caller
// swaps the mailbox generations first, so workers flush frozen rows of
// the previous generation while the shards they run post into the
// current one. Each destination's flush and execution stay on the one
// worker that owns the shard, so flushed events landing inside the hop
// fire in it; the flush batch is the complete previous hop's mail for
// that destination, gathered and sorted exactly as a barrier flush
// would — which keeps destination seq assignment identical to the
// fixed policy's.
func (se *ShardedEngine) runHop(end Time, flush bool) {
	if flush {
		se.mail, se.mailAlt = se.mailAlt, se.mail
		se.rowMin, se.rowMinAlt = se.rowMinAlt, se.rowMin
	}
	if se.workers == 1 {
		se.hopWorker(0, end, flush)
		return
	}
	se.wg.Add(se.workers - 1)
	for k := 1; k < se.workers; k++ {
		se.work[k] <- workItem{end: end, flush: flush}
	}
	se.hopWorker(0, end, flush)
	se.wg.Wait()
}

// hopWorker is worker k's share of a hop: for every owned shard, flush
// its mail column from the frozen previous generation, then run its
// events before end.
func (se *ShardedEngine) hopWorker(k int, end Time, flush bool) {
	for i := k; i < len(se.shards); i += se.workers {
		if flush {
			se.hopBuf[i] = se.flushDstFrom(se.mailAlt, i, se.hopBuf[i])
		}
		se.shards[i].RunBefore(end)
	}
}
