package sim

import (
	"fmt"
	"sort"
	"sync"
)

// ShardedEngine runs S per-shard Engines plus one serial control-plane
// Engine under conservative (Chandy–Misra style) time-window
// synchronization, on up to W worker goroutines.
//
// # Model
//
// The shard count S is a model parameter, fixed by configuration like a
// seed: it determines which engine every event lands on and therefore
// the exact event interleavings of a run. The worker count W is purely
// an execution parameter. A run's output is a function of (config,
// seed, S) and byte-identical for every W — the determinism contract —
// because nothing observable depends on how shards are dealt to
// workers:
//
//   - Intra-shard order is the per-shard engine's (time, seq) heap
//     order, assigned and consumed by one goroutine at a time.
//   - Cross-shard sends are buffered in per-(src,dst) mailboxes, each
//     written only by the goroutine executing src, and flushed at
//     window barriers sorted by (arrival time, sender key, per-sender
//     emission order) — so destination-side seq assignment (the
//     tie-break among same-time arrivals) is identical regardless of W,
//     and, when the key identifies the logical sender rather than its
//     shard, regardless of S as well (see Post).
//   - Control-plane (global) events run with every shard quiesced, on
//     the single caller goroutine, in the global engine's own
//     (time, seq) order. Ties between a global event and shard events
//     at the same instant resolve global-first.
//
// # Windows and lookahead
//
// Every cross-shard interaction carries at least the lookahead L (the
// fixed netsim latency): a message sent at time t arrives at t+L. Let m
// be the earliest pending shard event and g the earliest pending global
// event. All shard events in [m, end) with end = min(m+L, g) are safe
// to execute in parallel: any cross-shard message that could influence
// an event at t < end would have to have been sent at t−L < m, i.e. by
// an event that already executed, and its arrival is already flushed
// into the destination queue. Mail posted during the window has arrival
// ≥ window start + L ≥ end, so it lands in a strictly later window —
// which also means the barrier's happens-before edge covers everything
// the sender wrote before sending. Post enforces the invariant.
//
// # The batch plane
//
// Some control work does not need the one-event-per-barrier quiesce of
// the global engine: churn admissions, for example, only need to run
// serially in deterministic order — they do not need every shard
// advanced to their exact instant. The batch engine holds such events.
// At each barrier, every batch event strictly below the window bound
// fires in (time, seq) order on the caller goroutine, BEFORE the
// window's shard events execute. A batch event at time tb therefore
// runs "hoisted" to its window's start: shard events in [start, tb)
// observe its effects. That hoisting is deterministic — the drain set
// and order are functions of partition-independent queue minima — so
// output remains byte-identical for any (S, W); it is, however, a
// coarser interleaving than the global plane's, which is why the batch
// plane is opt-in per model (see proto's batched-admission mode).
// Unlike mailbox posts, a batch handler's effects may target any time
// ≥ tb (first heartbeat ticks, say) rather than ≥ tb+L: the effects
// are installed before the window body runs, so events landing inside
// the window still fire in it, exactly as if they had been scheduled
// there all along. Ties with a global event at the same instant
// resolve batch-first (admissions precede samplers).
type ShardedEngine struct {
	shards []*Engine
	global *Engine
	batch  *Engine
	look   Duration

	// mail[src*(S+2)+dst] buffers cross-shard sends; column S is the
	// global engine and column S+1 the batch engine. Row block src is
	// written only by the goroutine executing shard src (or the serial
	// control phase). rowMin[i] caches the earliest arrival buffered in
	// row i, valid while the row is non-empty. flushBuf is barrier-local
	// scratch for the per-destination merge sort.
	mail     [][]mailEntry
	rowMin   []Time
	flushBuf []mailEntry

	// Wide-window state (see window.go). mailAlt/rowMinAlt is the second
	// mailbox generation: inside a wide window the caller swaps the
	// generations each hop, so workers flush the frozen previous hop's
	// rows while the shards they run post into the current ones. hopBuf
	// holds per-destination flush scratch (hopBuf[i] is owned by the
	// worker that owns shard i).
	mailAlt   [][]mailEntry
	rowMinAlt []Time
	hopBuf    [][]mailEntry

	policy   WindowPolicy
	advisor  func() bool
	onWindow func(start, end Time)
	wstats   WindowStats

	windowEnd Time // exclusive bound of the current/last window

	// rowOrdered is true while posts must be ordered by (key, own mailbox
	// row) rather than by a global emission counter: window bodies,
	// ParallelShards fan-outs, batch drains and RowOrdered scopes. It is
	// written only by the caller goroutine at barriers; workers observe
	// it through the channel-send happens-before edge. serialSub counts
	// serially-ordered posts (it is touched only when rowOrdered is
	// false, i.e. on the caller goroutine) and tie-breaks equal-(at, key)
	// mail across source rows; see windowSub.
	rowOrdered bool
	serialSub  uint64

	// afterBatch, when set, runs on the caller goroutine after every
	// batch drain that fired at least one event — the hook where a model
	// flushes work the drained events queued (per-shard completion
	// groups, dispatched via ParallelShards). inBatchDrain is true while
	// a drain's handlers are on the stack (see InBatchDrain).
	afterBatch   func()
	inBatchDrain bool

	workers int
	started bool
	work    []chan workItem
	wg      sync.WaitGroup
}

// workItem is one barrier dispatch to a worker: a window sweep (fn nil,
// run shard events before end), a wide-window hop (flush set: flush the
// owned mail columns from the frozen generation first), or a per-shard
// task fan-out (fn non-nil, called once per owned shard). A small
// struct keeps the hot window path allocation-free.
type workItem struct {
	end   Time
	flush bool
	fn    func(shard int)
}

type mailEntry struct {
	at  Time
	key uint64 // sender identity; orders same-instant deliveries
	sub uint64 // serial emission counter, or windowSub for window sends
	c   Caller
	h   Handler
}

// windowSub is the sub-key stamped on row-ordered posts (window bodies,
// ParallelShards fan-outs, batch drains, RowOrdered scopes). Global-
// phase and pre-run posts get an increasing counter instead, so at
// equal (at, key) a global-phase emission always precedes a row-ordered
// one — the order those phases themselves run in — and two global-phase
// emissions order by the serial schedule even when they were buffered
// into different source rows (a control event may send on behalf of
// node X through any shard's facet, so equal keys do NOT imply one
// row). Row-ordered posts deliberately carry no counter: a model may
// defer such an emission and replay it at a later barrier (batched
// completions do), and its sort key must not depend on when the replay
// happens.
const windowSub = ^uint64(0)

// NewSharded creates a sharded engine with the given shard count and
// lookahead (the minimum virtual-time distance every cross-shard send
// must cover — the netsim latency). Workers defaults to 1; SetWorkers
// raises it.
func NewSharded(shards int, lookahead Duration) *ShardedEngine {
	if shards < 1 {
		panic("sim: sharded engine needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: sharded engine needs positive lookahead")
	}
	se := &ShardedEngine{
		shards:  make([]*Engine, shards),
		global:  New(),
		batch:   New(),
		look:    lookahead,
		mail:    make([][]mailEntry, shards*(shards+2)),
		rowMin:  make([]Time, shards*(shards+2)),
		workers: 1,
	}
	for i := range se.shards {
		se.shards[i] = New()
	}
	return se
}

// Shards returns the shard count S.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i's engine. Outside a Run/RunUntil call it may be
// used freely; during one it must only be touched by the goroutine
// currently executing shard i or by global-phase handlers.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Global returns the serial control-plane engine. Events scheduled on
// it (churn, takeover continuations, measurement sweeps) run with every
// shard quiesced and advanced to the event's time, so they may touch
// any shard's state.
func (se *ShardedEngine) Global() *Engine { return se.global }

// Batch returns the batch control engine: serial events drained in
// (time, seq) order at window barriers rather than one per quiesce (see
// the batch-plane section of the type comment). Schedule on it before
// the engine runs or from control/batch-phase handlers; batch handlers
// run with the batch engine's own clock at the event's time, while
// shard clocks sit at or before the window start.
func (se *ShardedEngine) Batch() *Engine { return se.batch }

// SetAfterBatchDrain installs the hook that runs after every batch
// drain that fired at least one event, on the caller goroutine, before
// the window body executes. Models use it to flush per-shard work the
// drained events queued — typically via ParallelShards.
func (se *ShardedEngine) SetAfterBatchDrain(f func()) { se.afterBatch = f }

// Lookahead returns the conservative lookahead L.
func (se *ShardedEngine) Lookahead() Duration { return se.look }

// Workers returns the worker-goroutine count W.
func (se *ShardedEngine) Workers() int { return se.workers }

// SetWorkers sets the worker count, clamped to [1, S]. It must be
// called before the first Run/RunUntil; W never affects results, only
// wall-clock time.
func (se *ShardedEngine) SetWorkers(w int) {
	if se.started {
		panic("sim: SetWorkers after the sharded engine started running")
	}
	if w < 1 {
		w = 1
	}
	if w > len(se.shards) {
		w = len(se.shards)
	}
	se.workers = w
}

// Now returns the control-plane clock (all clocks agree at barriers and
// after Run/RunUntil returns).
func (se *ShardedEngine) Now() Time { return se.global.Now() }

// Pending returns the total number of scheduled events across all
// queues (including unflushed mail).
func (se *ShardedEngine) Pending() int {
	n := se.global.Pending() + se.batch.Pending()
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	for _, row := range se.mail {
		n += len(row)
	}
	return n
}

// AtCall schedules c.Call(at) on the serial control plane: the event
// fires with every shard quiesced and advanced to at, so the callee may
// read any shard's state. It must be called before the engine runs or
// from a control-phase handler (never from parallel-window code — shard
// events reach the control plane through PostGlobal). This is what lets
// a control-plane actor with an ordinary engine dependency — the
// telemetry sampler — run unchanged on the sharded core.
func (se *ShardedEngine) AtCall(at Time, c Caller) EventID {
	return se.global.AtCall(at, c)
}

// AfterCall schedules c.Call on the control plane d after the
// control-plane clock. Same calling rules as AtCall.
func (se *ShardedEngine) AfterCall(d Duration, c Caller) EventID {
	return se.global.AfterCall(d, c)
}

// Stats returns the deterministic merge of every engine's Stats, in
// shard order then the global engine.
func (se *ShardedEngine) Stats() Stats {
	var s Stats
	for _, sh := range se.shards {
		s.add(sh.Stats())
	}
	s.add(se.global.Stats())
	s.add(se.batch.Stats())
	return s
}

// Post buffers a message event: c.Call fires at time at on shard dst
// (src == dst is allowed and routes through the same mailbox — a model
// whose every message takes the mailbox path gets delivery order that
// is independent of the shard partition). It must be called from the
// goroutine currently executing shard src (workers own disjoint src
// rows) or from a global-phase handler.
//
// key identifies the logical sender (e.g. the sending node's id) and
// must be a partition-independent property of the model: same-instant
// deliveries at a destination fire in (key, per-sender emission) order,
// which is what makes a run's tie-breaks — and therefore its output — a
// function of (config, seed) alone rather than of which shard each
// sender happens to live on.
//
// Posting below the current window bound panics — it would mean a
// cross-shard message carried less than one lookahead, breaking the
// conservative execution invariant.
func (se *ShardedEngine) Post(src, dst int, at Time, key uint64, c Caller) {
	if at < se.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %d below window bound %d (message carried less than one lookahead)", at, se.windowEnd))
	}
	i := src*(len(se.shards)+2) + dst
	se.postRow(i, mailEntry{at: at, key: key, sub: se.emitSub(), c: c})
}

// postRow appends an entry to mail row i, maintaining the row's cached
// earliest-arrival bound (the adaptive window policy reads it between
// hops; see nextHopStart).
func (se *ShardedEngine) postRow(i int, m mailEntry) {
	if len(se.mail[i]) == 0 || m.at < se.rowMin[i] {
		se.rowMin[i] = m.at
	}
	se.mail[i] = append(se.mail[i], m)
}

// emitSub stamps a post's tie-break sub-key. Row-ordered posts come
// from the sender's own row and keep their row order (windowSub + the
// stable flush sort); global-phase posts take a global counter so that
// equal-(at, key) entries emitted through different shard facets — as
// control-phase code sending on behalf of arbitrary nodes does — still
// order by the serial schedule, independent of the partition.
func (se *ShardedEngine) emitSub() uint64 {
	if se.rowOrdered {
		return windowSub
	}
	se.serialSub++
	return se.serialSub
}

// RowOrdered runs fn with posts classed as row-ordered (windowSub), the
// same class ParallelShards and batch drains use. A model calls it when
// executing, inline and serially, work that on another shard layout
// would run as a deferred per-shard fan-out — batched admission's
// cross-shard completions — so the emission class, and with it the
// flush sort, cannot depend on the partition. Caller goroutine only.
func (se *ShardedEngine) RowOrdered(fn func()) {
	prev := se.rowOrdered
	se.rowOrdered = true
	fn()
	se.rowOrdered = prev
}

// PostGlobal buffers a handler for the serial control plane: h fires at
// time at on the global engine, with every shard quiesced. Same calling
// rules, key semantics and window-bound invariant as Post.
func (se *ShardedEngine) PostGlobal(src int, at Time, key uint64, h Handler) {
	if at < se.windowEnd {
		panic(fmt.Sprintf("sim: global post at %d below window bound %d (message carried less than one lookahead)", at, se.windowEnd))
	}
	S := len(se.shards)
	i := src*(S+2) + S
	se.postRow(i, mailEntry{at: at, key: key, sub: se.emitSub(), h: h})
}

// PostBatch buffers a handler for the batch control plane: h fires at
// time at on the batch engine, drained serially at the barrier of the
// window containing at. Same calling rules, key semantics and
// window-bound invariant as Post. This is how worker-local code hands
// serial continuations (cross-shard takeovers, handoff deliveries) to
// the batch plane without racing on its queue.
func (se *ShardedEngine) PostBatch(src int, at Time, key uint64, h Handler) {
	if at < se.windowEnd {
		panic(fmt.Sprintf("sim: batch post at %d below window bound %d (message carried less than one lookahead)", at, se.windowEnd))
	}
	S := len(se.shards)
	i := src*(S+2) + S + 1
	se.postRow(i, mailEntry{at: at, key: key, sub: se.emitSub(), h: h})
}

// flushMail drains every mailbox into its destination queue. Each
// destination's entries are gathered across source rows (ascending) and
// stable-sorted by (arrival time, sender key, sub): window-context
// entries with equal keys come from one sender's single row (a worker
// only sends as nodes it owns), so the stable sort preserves their
// emission order; serial-context entries may share a key across rows —
// control code sends on behalf of arbitrary nodes through whichever
// shard facet is handy — and their sub counter restores the serial
// emission order the single-shard engine would have used. Destination
// seq assignment — the same-time tie-break — is therefore a pure
// function of the model: independent of worker scheduling, and of the
// shard partition itself whenever keys identify logical senders.
//
// Window boundaries are themselves partition-independent (the window
// bound is a min over every pending shard event, however the shards are
// drawn), so the interleaving of flushed arrivals with locally
// scheduled events is too: everything scheduled during window k
// precedes everything flushed at barrier k.
func (se *ShardedEngine) flushMail() {
	S := len(se.shards)
	for dst := 0; dst <= S+1; dst++ {
		se.flushBuf = se.flushDstFrom(se.mail, dst, se.flushBuf)
	}
}

// flushDstFrom drains destination dst's column of the given mailbox
// generation into its engine and returns the (emptied) scratch buffer
// for reuse. Distinct destinations touch disjoint rows and engines, so
// wide-window hops may call it concurrently for different dst values
// with per-destination buffers.
func (se *ShardedEngine) flushDstFrom(mail [][]mailEntry, dst int, scratch []mailEntry) []mailEntry {
	S := len(se.shards)
	buf := scratch[:0]
	for src := 0; src < S; src++ {
		i := src*(S+2) + dst
		row := mail[i]
		if len(row) == 0 {
			continue
		}
		buf = append(buf, row...)
		clear(row)
		mail[i] = row[:0]
	}
	if len(buf) == 0 {
		return buf
	}
	sort.SliceStable(buf, func(i, j int) bool {
		a, b := &buf[i], &buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		aw, bw := a.sub == windowSub, b.sub == windowSub
		if aw != bw {
			// Mixed: the serial phases at instant t run before the
			// window containing t, so their emissions precede.
			return bw
		}
		if !aw {
			// Both serial-context: pure emission order — exactly the
			// serial engine's same-instant seq tie-break, whatever rows
			// the emissions were buffered into.
			return a.sub < b.sub
		}
		// Both window-context: sender key, then row order (stable) —
		// equal keys come from one worker's row.
		return a.key < b.key
	})
	eng := se.global
	switch {
	case dst < S:
		eng = se.shards[dst]
	case dst == S+1:
		eng = se.batch
	}
	for _, m := range buf {
		if m.c != nil {
			eng.AtCall(m.at, m.c)
		} else {
			eng.At(m.at, m.h)
		}
	}
	clear(buf)
	return buf[:0]
}

// minShardNext returns the earliest pending event time across shards.
func (se *ShardedEngine) minShardNext() (Time, bool) {
	var m Time
	ok := false
	for _, sh := range se.shards {
		if t, has := sh.NextAt(); has && (!ok || t < m) {
			m, ok = t, true
		}
	}
	return m, ok
}

// Run fires events until every queue (and mailbox) drains.
func (se *ShardedEngine) Run() { se.run(0, false) }

// RunUntil fires events with time ≤ deadline, then advances every clock
// to the deadline. Events beyond the deadline remain queued.
func (se *ShardedEngine) RunUntil(deadline Time) { se.run(deadline, true) }

func (se *ShardedEngine) run(deadline Time, bounded bool) {
	se.ensureWorkers()
	for {
		se.flushMail()
		m, okm := se.minShardNext()
		g, okg := se.global.NextAt()
		b, okb := se.batch.NextAt()
		if !okm && !okg && !okb {
			break
		}
		// The window start is the earliest pending shard or batch event:
		// batch events drain at their window's barrier, so they bound
		// window placement exactly like shard work does.
		start, oks := m, okm
		if okb && (!oks || b < start) {
			start, oks = b, true
		}
		if okg && (!oks || g <= start) {
			// Control phase: the earliest work is a global event. Ties
			// with shard or batch events resolve global-last here only
			// when g > start; at g == start the global event still wins
			// over shard events but batch events at exactly g fire
			// first (batch-before-global). Quiesce and align every
			// shard clock so the handler sees one consistent instant,
			// then fire exactly one event — it may schedule shard
			// events, post mail, or enqueue more global events, so
			// everything is recomputed next iteration.
			if bounded && g > deadline {
				break
			}
			for _, sh := range se.shards {
				sh.AdvanceTo(g)
			}
			se.drainBatch(g + 1)
			se.global.Step()
			se.wstats.Quiesces++
			continue
		}
		if bounded && start > deadline {
			break
		}
		if se.policy == WindowAdaptive && se.tryWideWindow(start, g, okg, okb, deadline, bounded) {
			continue
		}
		end := start.Add(se.look)
		if okg && g < end {
			end = g
		}
		if bounded && deadline+1 < end {
			end = deadline + 1
		}
		se.windowEnd = end
		se.wstats.Windows++
		se.wstats.Hops++
		se.wstats.SpanSum += end.Sub(start)
		if se.onWindow != nil {
			se.onWindow(start, end)
		}
		// Drain batch events below the bound BEFORE the window body:
		// their effects may target times inside [start, end), and
		// installing them first means those events fire in this window
		// exactly as if they had been scheduled there all along.
		se.drainBatch(end)
		se.runWindow(end)
	}
	if bounded {
		for _, sh := range se.shards {
			sh.AdvanceTo(deadline)
		}
		se.batch.AdvanceTo(deadline)
		se.global.AdvanceTo(deadline)
	}
}

// drainBatch fires every batch event strictly before bound in
// (time, seq) order on the caller goroutine, then runs the afterBatch
// flush hook if anything fired. Handlers may schedule more batch events
// below the bound; the drain cascades over those too.
func (se *ShardedEngine) drainBatch(bound Time) {
	// Batch handlers' posts are row-ordered: a batched model's emissions
	// must sort identically whether they happen at the handler (inline
	// completions), at the drain's fan-out hook, or at a later read-rule
	// flush — classing any of them serially would key the sort to flush
	// timing, which the partition influences.
	prev := se.rowOrdered
	se.rowOrdered = true
	se.inBatchDrain = true
	fired := se.batch.RunBefore(bound) > 0
	se.inBatchDrain = false
	se.rowOrdered = prev
	if fired && se.afterBatch != nil {
		se.afterBatch()
	}
}

// InBatchDrain reports whether a batch-plane event handler is on the
// stack. Models use it to tell batch-plane churn — whose deferred
// completions are guaranteed a flush at this drain's own hook — from
// control-plane callers, which have no later drain promised before the
// windows move past the admission instant and must complete inline.
func (se *ShardedEngine) InBatchDrain() bool { return se.inBatchDrain }

// runWindow executes every shard's events strictly before end. With one
// worker (or one active shard) it runs inline; otherwise shards are
// dealt round-robin to the persistent workers and the caller acts as
// worker 0. The deal is static, but since each shard's execution and
// each mailbox row are self-contained, the partition cannot influence
// results.
func (se *ShardedEngine) runWindow(end Time) {
	se.rowOrdered = true
	defer func() { se.rowOrdered = false }()
	active, last := 0, -1
	for i, sh := range se.shards {
		if t, ok := sh.NextAt(); ok && t < end {
			active++
			last = i
		}
	}
	switch {
	case active == 0:
		return
	case active == 1:
		se.shards[last].RunBefore(end)
		return
	case se.workers == 1:
		for _, sh := range se.shards {
			sh.RunBefore(end)
		}
		return
	}
	se.wg.Add(se.workers - 1)
	for k := 1; k < se.workers; k++ {
		se.work[k] <- workItem{end: end}
	}
	se.runWorker(0, end)
	se.wg.Wait()
}

func (se *ShardedEngine) runWorker(k int, end Time) {
	for i := k; i < len(se.shards); i += se.workers {
		se.shards[i].RunBefore(end)
	}
}

// ParallelShards calls fn once per shard, dealing shards to the worker
// pool exactly as runWindow does: worker k owns shards k, k+W, ... and
// the caller acts as worker 0, so fn may touch shard i's engine, state
// and mailbox row when called with i. It must only be called at a
// barrier (from control- or batch-phase code, or the afterBatch hook),
// never from inside a window. Which worker runs which shard can never
// affect results for the same reason the window deal cannot: per-shard
// work is self-contained and mail merges deterministically.
func (se *ShardedEngine) ParallelShards(fn func(shard int)) {
	// Posts from fn are row-ordered (each call sends only as shard i's
	// nodes, from shard i's row) — flagged here even on the inline paths
	// so the sub-key is identical for every W. Save/restore rather than
	// reset: a batch drain (already row-ordered) may fan out mid-drain.
	prev := se.rowOrdered
	se.rowOrdered = true
	defer func() { se.rowOrdered = prev }()
	if se.workers == 1 || !se.started {
		for i := range se.shards {
			fn(i)
		}
		return
	}
	se.wg.Add(se.workers - 1)
	for k := 1; k < se.workers; k++ {
		se.work[k] <- workItem{fn: fn}
	}
	for i := 0; i < len(se.shards); i += se.workers {
		fn(i)
	}
	se.wg.Wait()
}

// ensureWorkers lazily starts the W−1 persistent worker goroutines (the
// caller is worker 0). Channel send/receive and the barrier WaitGroup
// provide the happens-before edges: workers see all mail flushed before
// a window, and the caller sees all shard state after it.
func (se *ShardedEngine) ensureWorkers() {
	if se.started {
		return
	}
	se.started = true
	if se.workers <= 1 {
		return
	}
	se.work = make([]chan workItem, se.workers)
	for k := 1; k < se.workers; k++ {
		ch := make(chan workItem)
		se.work[k] = ch
		go func(k int, ch chan workItem) {
			for it := range ch {
				switch {
				case it.fn != nil:
					for i := k; i < len(se.shards); i += se.workers {
						it.fn(i)
					}
				case it.flush:
					se.hopWorker(k, it.end, true)
				default:
					se.runWorker(k, it.end)
				}
				se.wg.Done()
			}
		}(k, ch)
	}
}

// Close stops the worker goroutines. The engine remains usable with a
// single worker afterwards; Close is idempotent and safe on an engine
// that never ran.
func (se *ShardedEngine) Close() {
	for k := 1; k < len(se.work); k++ {
		if se.work[k] != nil {
			close(se.work[k])
			se.work[k] = nil
		}
	}
	se.work = nil
	se.workers = 1
}
