package sim

import (
	"fmt"
	"sort"
	"sync"
)

// ShardedEngine runs S per-shard Engines plus one serial control-plane
// Engine under conservative (Chandy–Misra style) time-window
// synchronization, on up to W worker goroutines.
//
// # Model
//
// The shard count S is a model parameter, fixed by configuration like a
// seed: it determines which engine every event lands on and therefore
// the exact event interleavings of a run. The worker count W is purely
// an execution parameter. A run's output is a function of (config,
// seed, S) and byte-identical for every W — the determinism contract —
// because nothing observable depends on how shards are dealt to
// workers:
//
//   - Intra-shard order is the per-shard engine's (time, seq) heap
//     order, assigned and consumed by one goroutine at a time.
//   - Cross-shard sends are buffered in per-(src,dst) mailboxes, each
//     written only by the goroutine executing src, and flushed at
//     window barriers sorted by (arrival time, sender key, per-sender
//     emission order) — so destination-side seq assignment (the
//     tie-break among same-time arrivals) is identical regardless of W,
//     and, when the key identifies the logical sender rather than its
//     shard, regardless of S as well (see Post).
//   - Control-plane (global) events run with every shard quiesced, on
//     the single caller goroutine, in the global engine's own
//     (time, seq) order. Ties between a global event and shard events
//     at the same instant resolve global-first.
//
// # Windows and lookahead
//
// Every cross-shard interaction carries at least the lookahead L (the
// fixed netsim latency): a message sent at time t arrives at t+L. Let m
// be the earliest pending shard event and g the earliest pending global
// event. All shard events in [m, end) with end = min(m+L, g) are safe
// to execute in parallel: any cross-shard message that could influence
// an event at t < end would have to have been sent at t−L < m, i.e. by
// an event that already executed, and its arrival is already flushed
// into the destination queue. Mail posted during the window has arrival
// ≥ window start + L ≥ end, so it lands in a strictly later window —
// which also means the barrier's happens-before edge covers everything
// the sender wrote before sending. Post enforces the invariant.
type ShardedEngine struct {
	shards []*Engine
	global *Engine
	look   Duration

	// mail[src*(S+1)+dst] buffers cross-shard sends; column S is the
	// global engine. Row block src is written only by the goroutine
	// executing shard src (or the serial control phase). flushBuf is
	// barrier-local scratch for the per-destination merge sort.
	mail     [][]mailEntry
	flushBuf []mailEntry

	windowEnd Time // exclusive bound of the current/last window

	workers int
	started bool
	work    []chan Time
	wg      sync.WaitGroup
}

type mailEntry struct {
	at  Time
	key uint64 // sender identity; orders same-instant deliveries
	c   Caller
	h   Handler
}

// NewSharded creates a sharded engine with the given shard count and
// lookahead (the minimum virtual-time distance every cross-shard send
// must cover — the netsim latency). Workers defaults to 1; SetWorkers
// raises it.
func NewSharded(shards int, lookahead Duration) *ShardedEngine {
	if shards < 1 {
		panic("sim: sharded engine needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: sharded engine needs positive lookahead")
	}
	se := &ShardedEngine{
		shards:  make([]*Engine, shards),
		global:  New(),
		look:    lookahead,
		mail:    make([][]mailEntry, shards*(shards+1)),
		workers: 1,
	}
	for i := range se.shards {
		se.shards[i] = New()
	}
	return se
}

// Shards returns the shard count S.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i's engine. Outside a Run/RunUntil call it may be
// used freely; during one it must only be touched by the goroutine
// currently executing shard i or by global-phase handlers.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Global returns the serial control-plane engine. Events scheduled on
// it (churn, takeover continuations, measurement sweeps) run with every
// shard quiesced and advanced to the event's time, so they may touch
// any shard's state.
func (se *ShardedEngine) Global() *Engine { return se.global }

// Lookahead returns the conservative lookahead L.
func (se *ShardedEngine) Lookahead() Duration { return se.look }

// Workers returns the worker-goroutine count W.
func (se *ShardedEngine) Workers() int { return se.workers }

// SetWorkers sets the worker count, clamped to [1, S]. It must be
// called before the first Run/RunUntil; W never affects results, only
// wall-clock time.
func (se *ShardedEngine) SetWorkers(w int) {
	if se.started {
		panic("sim: SetWorkers after the sharded engine started running")
	}
	if w < 1 {
		w = 1
	}
	if w > len(se.shards) {
		w = len(se.shards)
	}
	se.workers = w
}

// Now returns the control-plane clock (all clocks agree at barriers and
// after Run/RunUntil returns).
func (se *ShardedEngine) Now() Time { return se.global.Now() }

// Pending returns the total number of scheduled events across all
// queues (including unflushed mail).
func (se *ShardedEngine) Pending() int {
	n := se.global.Pending()
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	for _, row := range se.mail {
		n += len(row)
	}
	return n
}

// AtCall schedules c.Call(at) on the serial control plane: the event
// fires with every shard quiesced and advanced to at, so the callee may
// read any shard's state. It must be called before the engine runs or
// from a control-phase handler (never from parallel-window code — shard
// events reach the control plane through PostGlobal). This is what lets
// a control-plane actor with an ordinary engine dependency — the
// telemetry sampler — run unchanged on the sharded core.
func (se *ShardedEngine) AtCall(at Time, c Caller) EventID {
	return se.global.AtCall(at, c)
}

// AfterCall schedules c.Call on the control plane d after the
// control-plane clock. Same calling rules as AtCall.
func (se *ShardedEngine) AfterCall(d Duration, c Caller) EventID {
	return se.global.AfterCall(d, c)
}

// Stats returns the deterministic merge of every engine's Stats, in
// shard order then the global engine.
func (se *ShardedEngine) Stats() Stats {
	var s Stats
	for _, sh := range se.shards {
		s.add(sh.Stats())
	}
	s.add(se.global.Stats())
	return s
}

// Post buffers a message event: c.Call fires at time at on shard dst
// (src == dst is allowed and routes through the same mailbox — a model
// whose every message takes the mailbox path gets delivery order that
// is independent of the shard partition). It must be called from the
// goroutine currently executing shard src (workers own disjoint src
// rows) or from a global-phase handler.
//
// key identifies the logical sender (e.g. the sending node's id) and
// must be a partition-independent property of the model: same-instant
// deliveries at a destination fire in (key, per-sender emission) order,
// which is what makes a run's tie-breaks — and therefore its output — a
// function of (config, seed) alone rather than of which shard each
// sender happens to live on.
//
// Posting below the current window bound panics — it would mean a
// cross-shard message carried less than one lookahead, breaking the
// conservative execution invariant.
func (se *ShardedEngine) Post(src, dst int, at Time, key uint64, c Caller) {
	if at < se.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %d below window bound %d (message carried less than one lookahead)", at, se.windowEnd))
	}
	i := src*(len(se.shards)+1) + dst
	se.mail[i] = append(se.mail[i], mailEntry{at: at, key: key, c: c})
}

// PostGlobal buffers a handler for the serial control plane: h fires at
// time at on the global engine, with every shard quiesced. Same calling
// rules, key semantics and window-bound invariant as Post.
func (se *ShardedEngine) PostGlobal(src int, at Time, key uint64, h Handler) {
	if at < se.windowEnd {
		panic(fmt.Sprintf("sim: global post at %d below window bound %d (message carried less than one lookahead)", at, se.windowEnd))
	}
	S := len(se.shards)
	i := src*(S+1) + S
	se.mail[i] = append(se.mail[i], mailEntry{at: at, key: key, h: h})
}

// flushMail drains every mailbox into its destination queue. Each
// destination's entries are gathered across source rows (ascending) and
// stable-sorted by (arrival time, sender key): equal keys come from one
// sender's single row, so the stable sort preserves its emission order.
// Destination seq assignment — the same-time tie-break — is therefore a
// pure function of the model: independent of worker scheduling, and of
// the shard partition itself whenever keys identify logical senders.
//
// Window boundaries are themselves partition-independent (the window
// bound is a min over every pending shard event, however the shards are
// drawn), so the interleaving of flushed arrivals with locally
// scheduled events is too: everything scheduled during window k
// precedes everything flushed at barrier k.
func (se *ShardedEngine) flushMail() {
	S := len(se.shards)
	for dst := 0; dst <= S; dst++ {
		buf := se.flushBuf[:0]
		for src := 0; src < S; src++ {
			i := src*(S+1) + dst
			row := se.mail[i]
			if len(row) == 0 {
				continue
			}
			buf = append(buf, row...)
			clear(row)
			se.mail[i] = row[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(i, j int) bool {
			if buf[i].at != buf[j].at {
				return buf[i].at < buf[j].at
			}
			return buf[i].key < buf[j].key
		})
		eng := se.global
		if dst < S {
			eng = se.shards[dst]
		}
		for _, m := range buf {
			if m.c != nil {
				eng.AtCall(m.at, m.c)
			} else {
				eng.At(m.at, m.h)
			}
		}
		clear(buf)
		se.flushBuf = buf[:0]
	}
}

// minShardNext returns the earliest pending event time across shards.
func (se *ShardedEngine) minShardNext() (Time, bool) {
	var m Time
	ok := false
	for _, sh := range se.shards {
		if t, has := sh.NextAt(); has && (!ok || t < m) {
			m, ok = t, true
		}
	}
	return m, ok
}

// Run fires events until every queue (and mailbox) drains.
func (se *ShardedEngine) Run() { se.run(0, false) }

// RunUntil fires events with time ≤ deadline, then advances every clock
// to the deadline. Events beyond the deadline remain queued.
func (se *ShardedEngine) RunUntil(deadline Time) { se.run(deadline, true) }

func (se *ShardedEngine) run(deadline Time, bounded bool) {
	se.ensureWorkers()
	for {
		se.flushMail()
		m, okm := se.minShardNext()
		g, okg := se.global.NextAt()
		if !okm && !okg {
			break
		}
		if okg && (!okm || g <= m) {
			// Control phase: the earliest work is a global event. Ties
			// with shard events resolve global-first (g == m). Quiesce
			// and align every shard clock so the handler sees one
			// consistent instant, then fire exactly one event — it may
			// schedule shard events, post mail, or enqueue more global
			// events, so everything is recomputed next iteration.
			if bounded && g > deadline {
				break
			}
			for _, sh := range se.shards {
				sh.AdvanceTo(g)
			}
			se.global.Step()
			continue
		}
		if bounded && m > deadline {
			break
		}
		end := m.Add(se.look)
		if okg && g < end {
			end = g
		}
		if bounded && deadline+1 < end {
			end = deadline + 1
		}
		se.windowEnd = end
		se.runWindow(end)
	}
	if bounded {
		for _, sh := range se.shards {
			sh.AdvanceTo(deadline)
		}
		se.global.AdvanceTo(deadline)
	}
}

// runWindow executes every shard's events strictly before end. With one
// worker (or one active shard) it runs inline; otherwise shards are
// dealt round-robin to the persistent workers and the caller acts as
// worker 0. The deal is static, but since each shard's execution and
// each mailbox row are self-contained, the partition cannot influence
// results.
func (se *ShardedEngine) runWindow(end Time) {
	active, last := 0, -1
	for i, sh := range se.shards {
		if t, ok := sh.NextAt(); ok && t < end {
			active++
			last = i
		}
	}
	switch {
	case active == 0:
		return
	case active == 1:
		se.shards[last].RunBefore(end)
		return
	case se.workers == 1:
		for _, sh := range se.shards {
			sh.RunBefore(end)
		}
		return
	}
	se.wg.Add(se.workers - 1)
	for k := 1; k < se.workers; k++ {
		se.work[k] <- end
	}
	se.runWorker(0, end)
	se.wg.Wait()
}

func (se *ShardedEngine) runWorker(k int, end Time) {
	for i := k; i < len(se.shards); i += se.workers {
		se.shards[i].RunBefore(end)
	}
}

// ensureWorkers lazily starts the W−1 persistent worker goroutines (the
// caller is worker 0). Channel send/receive and the barrier WaitGroup
// provide the happens-before edges: workers see all mail flushed before
// a window, and the caller sees all shard state after it.
func (se *ShardedEngine) ensureWorkers() {
	if se.started {
		return
	}
	se.started = true
	if se.workers <= 1 {
		return
	}
	se.work = make([]chan Time, se.workers)
	for k := 1; k < se.workers; k++ {
		ch := make(chan Time)
		se.work[k] = ch
		go func(k int, ch chan Time) {
			for end := range ch {
				se.runWorker(k, end)
				se.wg.Done()
			}
		}(k, ch)
	}
}

// Close stops the worker goroutines. The engine remains usable with a
// single worker afterwards; Close is idempotent and safe on an engine
// that never ran.
func (se *ShardedEngine) Close() {
	for k := 1; k < len(se.work); k++ {
		if se.work[k] != nil {
			close(se.work[k])
			se.work[k] = nil
		}
	}
	se.work = nil
	se.workers = 1
}
