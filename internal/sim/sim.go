// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, so a run is fully deterministic given deterministic event
// handlers. Time is kept in integer Ticks (milliseconds) to avoid
// floating-point ordering hazards.
package sim

import (
	"container/heap"
	"fmt"

	"hetgrid/internal/perf"
)

// Registry instrumentation for the engine hot path (telemetry only;
// never feeds back into simulation state). These are process-wide
// atomics: with several engines in one process (scenario tests, the
// sharded core's per-shard engines) they aggregate across all of them.
// Per-engine accounting lives in Engine.Stats, which each engine owns
// exclusively — the registry totals are for -perfstats style telemetry
// only and must never be read back as one engine's count.
var (
	cntScheduled = perf.NewCounter("sim.events_scheduled")
	cntFired     = perf.NewCounter("sim.events_fired")
	cntCancelled = perf.NewCounter("sim.events_cancelled")
	cntPooled    = perf.NewCounter("sim.events_pooled")
)

// Stats is one engine's lifetime event-queue accounting. Unlike the
// process-wide perf registry counters (which sum over every engine in
// the process), a Stats value is scoped to a single engine, so two
// engines running in one process — or one process' worth of shard
// engines — never cross-contaminate each other's counts.
type Stats struct {
	Scheduled uint64
	Fired     uint64
	Cancelled uint64
	Pooled    uint64
}

// add accumulates other into s (the deterministic shard-merge).
func (s *Stats) add(o Stats) {
	s.Scheduled += o.Scheduled
	s.Fired += o.Fired
	s.Cancelled += o.Cancelled
	s.Pooled += o.Pooled
}

// Time is a point in virtual time, measured in Ticks since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in Ticks.
type Duration int64

// Common durations, mirroring the time package at millisecond resolution.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes reports d as a floating-point number of minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// FromSeconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest tick.
func FromSeconds(s float64) Duration {
	if s < 0 {
		return 0
	}
	return Duration(s*float64(Second) + 0.5)
}

// Seconds reports t as a floating-point number of seconds since the
// start of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's time and may schedule further events.
type Handler func(now Time)

// Caller is the allocation-free counterpart of Handler: a long-lived
// object whose Call method fires when the event does. Scheduling a
// method value (eng.After(d, h.onTick)) allocates a closure per event;
// scheduling the object itself via AtCall/AfterCall does not, which is
// what keeps periodic machinery (heartbeat ticks, message deliveries)
// off the allocator.
type Caller interface {
	Call(now Time)
}

type event struct {
	at      Time
	seq     uint64 // insertion order; breaks time ties deterministically
	gen     uint64 // recycle generation; invalidates stale EventIDs
	handler Handler
	caller  Caller // fires instead of handler when non-nil
	index   int    // heap index, -1 when cancelled or popped
}

// EventID identifies a scheduled event so that it can be cancelled.
// The zero EventID is invalid. Fired and cancelled events return to an
// engine-local pool; the generation stamp keeps a retained EventID from
// ever touching the event's next incarnation.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the id refers to an event that was scheduled and
// has not yet fired or been cancelled.
func (id EventID) Valid() bool {
	return id.ev != nil && id.ev.gen == id.gen && id.ev.index >= 0
}

// At returns the scheduled time of the event the id refers to, with
// ok false when the event has already fired, been cancelled, or was
// never scheduled. Like Cancel, it must only be called by code allowed
// to touch the owning engine (the event horizon of a shard is shard
// state).
func (id EventID) At() (Time, bool) {
	if !id.Valid() {
		return 0, false
	}
	return id.ev.at, true
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is ready
// to use. Engine is not safe for concurrent use; the simulation model is
// single-threaded by design so that runs are reproducible.
type Engine struct {
	now     Time
	queue   eventQueue
	pool    []*event // recycled events; bounded by peak queue length
	nextSeq uint64
	fired   uint64
	stopped bool
	stats   Stats
}

// New returns a new engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Stats returns this engine's own event accounting (see Stats).
func (e *Engine) Stats() Stats { return e.stats }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules h to run at absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, h Handler) EventID {
	if h == nil {
		panic("sim: nil handler")
	}
	return e.schedule(at, h, nil)
}

// AtCall schedules c.Call to run at absolute time at. Unlike At with a
// method value, it allocates nothing beyond the pooled event.
func (e *Engine) AtCall(at Time, c Caller) EventID {
	if c == nil {
		panic("sim: nil caller")
	}
	return e.schedule(at, nil, c)
}

// AfterCall schedules c.Call to run d ticks from now (negative d is 0).
func (e *Engine) AfterCall(d Duration, c Caller) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtCall(e.now.Add(d), c)
}

func (e *Engine) schedule(at Time, h Handler, c Caller) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		ev.at, ev.handler, ev.caller = at, h, c
	} else {
		ev = &event{at: at, handler: h, caller: c}
	}
	ev.seq = e.nextSeq
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.stats.Scheduled++
	cntScheduled.Inc()
	return EventID{ev: ev, gen: ev.gen}
}

// recycle returns a popped or cancelled event to the pool. Bumping the
// generation first invalidates every EventID still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.handler = nil // release the closure promptly
	ev.caller = nil
	e.pool = append(e.pool, ev)
	e.stats.Pooled++
	cntPooled.Inc()
}

// After schedules h to run d ticks from now. Negative d is treated as 0.
func (e *Engine) After(d Duration, h Handler) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), h)
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending. Cancelling an already-fired or already-cancelled event
// is a no-op.
func (e *Engine) Cancel(id EventID) bool {
	if !id.Valid() {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	id.ev.index = -1
	e.recycle(id.ev)
	e.stats.Cancelled++
	cntCancelled.Inc()
	return true
}

// Stop makes the current Run call return after the in-flight handler
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.fired++
	e.stats.Fired++
	cntFired.Inc()
	// Capture the handler, then recycle before invoking it: the handler
	// may schedule new events, which are welcome to reuse this slot.
	h, c := ev.handler, ev.caller
	e.recycle(ev)
	if c != nil {
		c.Call(e.now)
	} else {
		h(e.now)
	}
	return true
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// NextAt reports the time of the earliest pending event, or ok=false
// when the queue is empty. It is the lookahead probe of the sharded
// engine's window computation.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// RunBefore fires every pending event with time strictly before end, in
// (time, seq) order, and reports how many fired. Events at or beyond
// end stay queued and the clock is left at the last fired event (it is
// not advanced to end). This is the per-shard body of one conservative
// time window: end is chosen so that no event below it can still be
// influenced from outside the shard.
func (e *Engine) RunBefore(end Time) int {
	fired := 0
	for len(e.queue) > 0 && e.queue[0].at < end {
		e.Step()
		fired++
	}
	return fired
}

// AdvanceTo moves the clock forward to t without firing anything.
// Advancing past a pending event panics — it would silently reorder
// causality — and a t at or before the current clock is a no-op.
func (e *Engine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic(fmt.Sprintf("sim: advancing clock to %d past pending event at %d", t, e.queue[0].at))
	}
	e.now = t
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline (if it is later than the last event). Events scheduled
// beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
