package sim

import (
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire in schedule order)", i, v, i)
		}
	}
}

func TestHandlerSeesEventTime(t *testing.T) {
	e := New()
	e.At(42, func(now Time) {
		if now != 42 {
			t.Errorf("handler now = %d, want 42", now)
		}
		if e.Now() != 42 {
			t.Errorf("engine Now() = %d, want 42", e.Now())
		}
	})
	e.Run()
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(100, func(Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := New()
	fired := false
	e.At(10, func(Time) {
		e.After(-5, func(now Time) {
			fired = true
			if now != 10 {
				t.Errorf("fired at %d, want 10", now)
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before Now did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.At(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.At(10, func(Time) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var order []int
	e.At(1, func(Time) { order = append(order, 1) })
	id := e.At(2, func(Time) { order = append(order, 2) })
	e.At(3, func(Time) { order = append(order, 3) })
	e.Cancel(id)
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := New()
	id := e.At(1, func(Time) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %d, want 25 (clock advances to deadline)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := New()
	fired := false
	e.At(25, func(Time) { fired = true })
	e.RunUntil(25)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

func TestHandlerSchedulingSameTimeRunsAfter(t *testing.T) {
	e := New()
	var order []string
	e.At(10, func(Time) {
		order = append(order, "a")
		e.At(10, func(Time) { order = append(order, "c") })
	})
	e.At(10, func(Time) { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if Second != 1000 {
		t.Fatalf("Second = %d ticks, want 1000", Second)
	}
	if (90 * Second).Minutes() != 1.5 {
		t.Fatalf("90s = %v minutes, want 1.5", (90 * Second).Minutes())
	}
	if FromSeconds(2.5) != 2500 {
		t.Fatalf("FromSeconds(2.5) = %d, want 2500", FromSeconds(2.5))
	}
	if FromSeconds(-1) != 0 {
		t.Fatalf("FromSeconds(-1) = %d, want 0", FromSeconds(-1))
	}
	if Time(4500).Seconds() != 4.5 {
		t.Fatalf("Time(4500).Seconds() = %v, want 4.5", Time(4500).Seconds())
	}
	if Time(100).Add(50) != 150 {
		t.Fatalf("Add broken")
	}
	if Time(150).Sub(100) != 50 {
		t.Fatalf("Sub broken")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestManyEventsStressOrdering(t *testing.T) {
	e := New()
	// Schedule events at pseudo-random times and verify they fire in
	// nondecreasing time order.
	seed := uint64(12345)
	next := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed >> 33 }
	var last Time = -1
	for i := 0; i < 5000; i++ {
		at := Time(next() % 100000)
		e.At(at, func(now Time) {
			if now < last {
				t.Fatalf("event at %d fired after %d", now, last)
			}
			last = now
		})
	}
	e.Run()
	if e.Fired() != 5000 {
		t.Fatalf("Fired() = %d, want 5000", e.Fired())
	}
}

func TestEventPoolReusesSlots(t *testing.T) {
	e := New()
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			e.After(Duration(i), func(Time) {})
		}
		e.Run()
	}
	// After the first round drains, every later round should be served
	// from the pool: the pool holds the peak event population.
	if len(e.pool) != 100 {
		t.Fatalf("pool size = %d, want 100", len(e.pool))
	}
}

func TestStaleEventIDCannotCancelRecycledEvent(t *testing.T) {
	e := New()
	id := e.After(1, func(Time) {})
	e.Run() // fires and recycles the event
	if id.Valid() {
		t.Fatal("fired event's id still valid")
	}
	// The recycled slot now backs a fresh event; the stale id must not
	// touch it.
	id2 := e.After(1, func(Time) {})
	if id2.ev != id.ev {
		t.Fatalf("expected pooled slot reuse (test premise); got fresh allocation")
	}
	if e.Cancel(id) {
		t.Fatal("stale id cancelled the recycled event")
	}
	if !id2.Valid() {
		t.Fatal("fresh event invalidated by stale cancel")
	}
	fired := false
	e.queue[id2.ev.index].handler = func(Time) { fired = true }
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

func TestCancelRecyclesAndKeepsOrdering(t *testing.T) {
	e := New()
	var order []int
	a := e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	if !e.Cancel(a) {
		t.Fatal("cancel failed")
	}
	if e.Cancel(a) {
		t.Fatal("double cancel succeeded")
	}
	// The cancelled slot is reused for a later event.
	e.At(5, func(Time) { order = append(order, 0) })
	e.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("order = %v, want [0 2]", order)
	}
}
