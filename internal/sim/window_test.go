package sim

import (
	"fmt"
	"testing"
)

// hopRecorder captures every executed window hop via SetWindowObserver.
type hopRecorder struct {
	starts, ends []Time
}

func (r *hopRecorder) record(start, end Time) {
	r.starts = append(r.starts, start)
	r.ends = append(r.ends, end)
}

// periodicActor is the heartbeat steady-state workload: every actor
// ticks on a shared period, posts one cross-shard message carrying
// exactly one lookahead, and goes back to sleep. No global or batch
// events — the regime the adaptive policy collapses to one wide window
// per run segment. Ticks log into the actor's own shard log and
// deliveries into the destination shard's, so every log has a single
// writer at any worker count.
type periodicActor struct {
	se     *ShardedEngine
	shard  int
	id     int
	period Duration
	until  Time
	logs   *[][]string
}

func (a *periodicActor) Call(now Time) {
	(*a.logs)[a.shard] = append((*a.logs)[a.shard], fmt.Sprintf("t=%d tick %d.%d", now, a.shard, a.id))
	if now >= a.until {
		return
	}
	a.se.Shard(a.shard).AfterCall(a.period, a)
	dst := (a.shard + 1) % a.se.Shards()
	src, id, logs := a.shard, a.id, a.logs
	a.se.Post(a.shard, dst, now.Add(a.se.Lookahead()), uint64(a.id), callerFunc(func(at Time) {
		(*logs)[dst] = append((*logs)[dst], fmt.Sprintf("t=%d mail %d.%d->%d", at, src, id, dst))
	}))
}

// runPeriodic runs the steady-state workload under the given policy and
// returns the per-shard logs merged in shard order plus the window
// counters.
func runPeriodic(t *testing.T, policy WindowPolicy, workers int, rec *hopRecorder) ([]string, WindowStats) {
	t.Helper()
	const shards = 4
	se := NewSharded(shards, 10)
	se.SetWorkers(workers)
	se.SetWindowPolicy(policy)
	if rec != nil {
		se.SetWindowObserver(rec.record)
	}
	defer se.Close()

	logs := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		a := &periodicActor{se: se, shard: sh, id: sh, period: 500, until: 5000, logs: &logs}
		se.Shard(sh).AtCall(7, a)
	}
	se.RunUntil(6000)

	var merged []string
	for _, l := range logs {
		merged = append(merged, l...)
	}
	return merged, se.WindowStats()
}

// TestAdaptiveHopInvariants pins the window math: hop ends are monotone
// non-decreasing across the whole run, every hop spans at most one
// lookahead past its start (the adaptive policy never exceeds the
// earliest shard horizon plus L), and every hop is non-empty in time.
func TestAdaptiveHopInvariants(t *testing.T) {
	for _, pol := range []WindowPolicy{WindowFixed, WindowAdaptive} {
		rec := &hopRecorder{}
		_, _ = runPeriodic(t, pol, 2, rec)
		if len(rec.ends) == 0 {
			t.Fatalf("%v: no hops recorded", pol)
		}
		for i := range rec.ends {
			if rec.ends[i] <= rec.starts[i] {
				t.Fatalf("%v: hop %d empty: [%d, %d)", pol, i, rec.starts[i], rec.ends[i])
			}
			if rec.ends[i] > rec.starts[i].Add(10) {
				t.Fatalf("%v: hop %d spans more than one lookahead: [%d, %d)", pol, i, rec.starts[i], rec.ends[i])
			}
			if i > 0 && rec.ends[i] < rec.ends[i-1] {
				t.Fatalf("%v: hop ends not monotone: end[%d]=%d < end[%d]=%d", pol, i, rec.ends[i], i-1, rec.ends[i-1])
			}
		}
	}
}

// TestAdaptiveSteadyStateWidens is the policy's raison d'être: on a
// pure heartbeat steady state the barrier count collapses — by the
// period/lookahead ratio — while the event log stays byte-identical,
// at one worker and at the full worker count.
func TestAdaptiveSteadyStateWidens(t *testing.T) {
	wantLog, fixed := runPeriodic(t, WindowFixed, 1, nil)
	if len(wantLog) == 0 {
		t.Fatal("steady-state workload produced no events")
	}
	for _, workers := range []int{1, 4} {
		gotLog, adaptive := runPeriodic(t, WindowAdaptive, workers, nil)
		if fmt.Sprint(gotLog) != fmt.Sprint(wantLog) {
			t.Fatalf("W=%d: adaptive log diverged from fixed:\n--- fixed\n%v\n--- adaptive\n%v", workers, wantLog, gotLog)
		}
		if adaptive.Hops != fixed.Windows {
			t.Errorf("W=%d: adaptive executed %d hops, fixed %d windows — the hop grid must replicate the fixed grid", workers, adaptive.Hops, fixed.Windows)
		}
		if adaptive.Widened == 0 {
			t.Fatalf("W=%d: steady state opened no wide windows: %+v", workers, adaptive)
		}
		if fixed.Windows < 10*adaptive.Windows {
			t.Errorf("W=%d: barrier count reduced only %d -> %d (want >= 10x)", workers, fixed.Windows, adaptive.Windows)
		}
	}
}

// TestAdaptiveBarrierCountNeverMore is the ordering property: for
// identical runs, the adaptive policy's barrier count is never more
// than the fixed policy's — fallbacks cost exactly a fixed window —
// across the fuzz workload's regimes.
func TestAdaptiveBarrierCountNeverMore(t *testing.T) {
	for _, per := range []Duration{0, 20, 50, 70} {
		for _, seed := range []uint64{1, 42, 0xdeadbeef} {
			want, fixed := runFuzzWorkload(4, 2, 9, seed, 150, per, WindowFixed)
			got, adaptive := runFuzzWorkload(4, 2, 9, seed, 150, per, WindowAdaptive)
			if got != want {
				t.Fatalf("seed=%#x period=%d: adaptive diverged:\n--- fixed\n%s\n--- adaptive\n%s", seed, per, want, got)
			}
			if adaptive.Windows > fixed.Windows {
				t.Errorf("seed=%#x period=%d: adaptive barrier count %d > fixed %d", seed, per, adaptive.Windows, fixed.Windows)
			}
			if fixed.Hops != fixed.Windows {
				t.Errorf("seed=%#x period=%d: fixed policy hops %d != windows %d", seed, per, fixed.Hops, fixed.Windows)
			}
		}
	}
}

// TestAdaptiveFallsBackOnBatchWork: while batch events are pending, the
// policy must use fixed windows (a batch event bounds its own window),
// and a model advisor reporting held work vetoes widening outright.
func TestAdaptiveFallsBackOnBatchWork(t *testing.T) {
	run := func(advisor func() bool, batchEvery Duration) WindowStats {
		se := NewSharded(2, 10)
		se.SetWindowPolicy(WindowAdaptive)
		if advisor != nil {
			se.SetWindowAdvisor(advisor)
		}
		defer se.Close()
		logs := make([][]string, 2)
		for sh := 0; sh < 2; sh++ {
			a := &periodicActor{se: se, shard: sh, id: sh, period: 300, until: 2000, logs: &logs}
			se.Shard(sh).AtCall(5, a)
		}
		if batchEvery > 0 {
			// Reschedules past the run deadline so the batch plane is
			// non-empty at every window placement.
			var tick func(Time)
			tick = func(now Time) {
				if now < 2600 {
					se.Batch().After(batchEvery, tick)
				}
			}
			se.Batch().After(batchEvery, tick)
		}
		se.RunUntil(2500)
		return se.WindowStats()
	}

	// Saturating batch plane: a batch event pending at every placement.
	st := run(nil, 40)
	if st.Widened != 0 {
		t.Errorf("batch-saturated run widened %d windows (want 0): %+v", st.Widened, st)
	}
	if st.Fallbacks == 0 {
		t.Errorf("batch-saturated run recorded no fallbacks: %+v", st)
	}

	// Advisor veto: the model says it holds deferred barrier work.
	st = run(func() bool { return false }, 0)
	if st.Widened != 0 {
		t.Errorf("advisor-vetoed run widened %d windows (want 0): %+v", st.Widened, st)
	}
	if st.Fallbacks == 0 {
		t.Errorf("advisor-vetoed run recorded no fallbacks: %+v", st)
	}

	// Consenting advisor on the same workload: widening resumes.
	st = run(func() bool { return true }, 0)
	if st.Widened == 0 {
		t.Errorf("consenting advisor opened no wide windows: %+v", st)
	}
}

// TestAdaptiveBoundaryCases pins the widen/fall-back boundary with
// deterministic constructions: a global event arriving exactly at a
// widened hop end, a global event exactly one lookahead from the window
// start (horizon == fixed bound: nothing to widen), and a run deadline
// coinciding with the window bound. Each case must match the fixed
// policy byte for byte.
func TestAdaptiveBoundaryCases(t *testing.T) {
	type runFn func(se *ShardedEngine, log *[]string)
	cases := []struct {
		name string
		fn   runFn
	}{
		{"global_at_hop_end", func(se *ShardedEngine, log *[]string) {
			// Periodic shard events up to t=200; a global event at exactly
			// t=50 — a widened hop end (hops land on multiples of 10 from
			// start 0). The wide window must stop at 50, quiesce, and
			// resume. Single worker, so one shared log is single-writer.
			logs := make([][]string, 2)
			for sh := 0; sh < 2; sh++ {
				a := &periodicActor{se: se, shard: sh, id: sh, period: 40, until: 200, logs: &logs}
				se.Shard(sh).AtCall(0, a)
			}
			se.Global().At(50, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d global", now))
			})
			se.RunUntil(300)
			for _, l := range logs {
				*log = append(*log, l...)
			}
		}},
		{"horizon_equals_fixed_bound", func(se *ShardedEngine, log *[]string) {
			// The next global event is exactly start+L away: eligibility
			// must fall back (nothing to widen) and the global event must
			// still chop the window exactly as under the fixed policy.
			se.Shard(0).At(100, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d shard", now))
			})
			se.Global().At(110, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d global", now))
			})
			se.RunUntil(200)
		}},
		{"deadline_equals_window_bound", func(se *ShardedEngine, log *[]string) {
			// Heartbeat deadline == window bound: the run deadline lands
			// exactly one lookahead past the only pending event. Events at
			// the deadline fire; events beyond stay queued.
			se.Shard(1).At(90, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d at90", now))
			})
			se.Shard(0).At(100, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d at100", now))
			})
			se.Shard(0).At(101, func(now Time) {
				*log = append(*log, fmt.Sprintf("t=%d at101", now))
			})
			se.RunUntil(100)
			se.RunUntil(150)
		}},
	}
	for _, tc := range cases {
		var want []string
		for i, pol := range []WindowPolicy{WindowFixed, WindowAdaptive} {
			se := NewSharded(2, 10)
			se.SetWindowPolicy(pol)
			var log []string
			tc.fn(se, &log)
			se.Close()
			if i == 0 {
				want = log
				continue
			}
			if fmt.Sprint(log) != fmt.Sprint(want) {
				t.Errorf("%s: adaptive diverged from fixed:\n--- fixed\n%v\n--- adaptive\n%v", tc.name, want, log)
			}
		}
	}
}

// TestMailNext pins the earliest-undelivered accessor netsim exposes
// per shard pair.
func TestMailNext(t *testing.T) {
	se := NewSharded(2, 10)
	defer se.Close()
	if _, ok := se.MailNext(0, 1); ok {
		t.Fatal("MailNext reported mail on an empty row")
	}
	se.Post(0, 1, 30, 1, callerFunc(func(Time) {}))
	se.Post(0, 1, 20, 2, callerFunc(func(Time) {}))
	if at, ok := se.MailNext(0, 1); !ok || at != 20 {
		t.Fatalf("MailNext = %d, %v; want 20, true", at, ok)
	}
	if _, ok := se.MailNext(1, 0); ok {
		t.Fatal("MailNext reported mail on the reverse row")
	}
	se.Run()
	if _, ok := se.MailNext(0, 1); ok {
		t.Fatal("MailNext reported mail after the run drained it")
	}
}
