package scenario

// The scenario's telemetry plane and what reads it: per-event metric
// snapshots (the report's timeline) and `at:`-timed checkpoint
// assertions. Every world carries a plane — whether or not the caller
// exports the stream — so the report is identical with telemetry
// export on or off, and checkpoints always have series to read. The
// plane samples on the scenario's single engine and obeys the
// telemetry-only contract, so attaching it cannot change a run's
// outcome.

import (
	"fmt"

	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/netsim"
	"hetgrid/internal/sim"
)

// defaultSampleInterval is the scenario plane's sampling cadence when
// the driver does not choose one (`hetgridsim run -metrics-interval`).
// The interval shapes only the exported stream: timeline snapshots and
// checkpoint values come from forced sampling passes at event and
// checkpoint instants, so the report never depends on it.
const defaultSampleInterval = 60 * sim.Second

// telemetrySeries lists the series every scenario world registers, in
// registration (= export) order. It is the vocabulary `checkpoints:`
// may reference; spec validation rejects anything else.
func telemetrySeries() []string {
	names := []string{
		"proto.alive_hosts", "proto.mean_view",
		"jobs.submitted", "jobs.finished",
		"net.msgs_sent", "net.bytes_sent", "net.msgs_recv", "net.bytes_recv",
	}
	for _, k := range netsim.AllKinds {
		names = append(names, fmt.Sprintf("net.%s.msgs_sent", k), fmt.Sprintf("net.%s.bytes_sent", k))
	}
	return names
}

func validSeries(name string) bool {
	for _, s := range telemetrySeries() {
		if s == name {
			return true
		}
	}
	return false
}

// counterSeries reports whether a scenario series is counter-backed
// (per-interval deltas in the stream; checkpoints read the cumulative
// sum) rather than a gauge (checkpoints read the latest sample).
func counterSeries(name string) bool {
	return name != "proto.alive_hosts" && name != "proto.mean_view"
}

// attachTelemetry builds and arms the world's plane. Registration
// order is fixed — it is the export order and the contract behind
// byte-identical streams across runs.
func (w *World) attachTelemetry(interval sim.Duration) {
	if interval <= 0 {
		interval = defaultSampleInterval
	}
	w.plane = metrics.New(interval, 0)
	if w.ssim != nil {
		// Attach the sharded engine, not its global plane: sampling still
		// runs on the control plane, but dormancy decisions must see every
		// queue — heartbeats live on shard engines, and a plane attached
		// to the global engine alone would doze off once the last global
		// event (job, checkpoint) fires, truncating the exported stream.
		w.plane.Attach(w.ssim.SE)
	} else {
		w.plane.Attach(w.eng)
	}
	metricsreg.RegisterProtoGauges(w.plane, w.psim)
	metricsreg.RegisterClusterCounters(w.plane, w.cluster)
	metricsreg.RegisterNetCounters(w.plane, w.pnet, "net")
	if w.ssim != nil {
		// Aux stream only: window-policy counters are policy-dependent by
		// design, so they are excluded from the canonical byte-compared
		// export (see metrics.Plane aux series).
		metricsreg.RegisterWindowAux(w.plane, w.ssim.SE)
	}
	w.plane.Poke()
}

// snapshot takes a forced sampling pass and appends one timeline row:
// the injected event (or checkpoint) plus the grid health and job
// ledger at that instant. Rows render with fixed precision so reports
// stay byte-stable.
func (w *World) snapshot(now sim.Time, label string) {
	w.plane.SampleNow()
	queued, running := w.cluster.Totals()
	w.timeline = append(w.timeline, fmt.Sprintf(
		"t=%-8s %s: alive=%d mean_view=%.2f submitted=%d finished=%d queued=%d running=%d lost=%d",
		fmtDur(sim.Duration(now)), label,
		w.psim.AliveHosts(), w.psim.MeanViewSize(),
		w.cluster.Submitted(), w.cluster.Finished(), queued, running, w.lost))
}

// scheduleCheckpoint arms one `at:`-timed assertion. Checkpoints are
// scheduled after all events, so a checkpoint sharing an instant with
// an event observes the event's consequences.
func (w *World) scheduleCheckpoint(cp *Checkpoint, idx int) {
	w.eng.At(sim.Time(cp.At), func(sim.Time) {
		w.evalCheckpoint(cp, idx)
	})
}

func (w *World) evalCheckpoint(cp *Checkpoint, idx int) {
	s := w.plane.SeriesByName(cp.Series)
	if s == nil {
		w.violate("checkpoints[%d]: series %s not registered", idx, cp.Series)
		return
	}
	w.plane.SampleNow()
	var v float64
	if counterSeries(cp.Series) {
		// Cumulative since scenario start: the sum of recorded deltas,
		// closed out by the sampling pass above — independent of the
		// sampling interval.
		for _, p := range s.Points() {
			v += p.V
		}
	} else if last, ok := s.Last(); ok {
		v = last.V
	}
	w.timeline = append(w.timeline, fmt.Sprintf(
		"t=%-8s checkpoint %s=%s", fmtDur(cp.At), cp.Series, fmtMetric(v)))
	if cp.HasMin && v < cp.Min {
		w.violate("checkpoints[%d]: %s = %s below min %s at %s",
			idx, cp.Series, fmtMetric(v), fmtMetric(cp.Min), fmtDur(cp.At))
	}
	if cp.HasMax && v > cp.Max {
		w.violate("checkpoints[%d]: %s = %s above max %s at %s",
			idx, cp.Series, fmtMetric(v), fmtMetric(cp.Max), fmtDur(cp.At))
	}
}
