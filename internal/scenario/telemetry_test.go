package scenario

import (
	"bytes"
	"strings"
	"testing"

	"hetgrid/internal/sim"
)

const checkpointScenario = `
name: checkpointed
seed: 7
duration: 10m

grid:
  nodes: 24
  heartbeat: 10s

workload:
  jobs: 40
  mean_gap: 2s
  min_run: 20s
  max_run: 1m

events:
  - at: 1m
    fail_nodes: 2

checkpoints:
  - at: 2m
    series: proto.alive_hosts
    min: 10
    max: 24
  - at: 9m
    series: jobs.finished
    min: 1
`

// TestScenarioCheckpointsPass: a satisfiable checkpoint battery holds,
// and both event snapshots and checkpoint evaluations appear in the
// report's timeline.
func TestScenarioCheckpointsPass(t *testing.T) {
	res := mustRun(t, checkpointScenario)
	if !res.Passed() {
		t.Fatalf("checkpointed scenario failed:\n%s", res.Report)
	}
	for _, want := range []string{
		"timeline:",
		"fail_nodes(2): alive=22",
		"checkpoint proto.alive_hosts=22",
		"checkpoint jobs.finished=",
	} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report lacks %q:\n%s", want, res.Report)
		}
	}
}

// TestScenarioCheckpointViolation: an unsatisfiable checkpoint flips
// the report to FAIL with a bound-style violation, without aborting
// the run.
func TestScenarioCheckpointViolation(t *testing.T) {
	res := mustRun(t, strings.Replace(checkpointScenario, "min: 10", "min: 1000", 1))
	if res.Passed() {
		t.Fatal("impossible checkpoint passed")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want 1", res.Violations)
	}
	want := "checkpoints[0]: proto.alive_hosts = 22 below min 1000 at 2m0s"
	if res.Violations[0] != want {
		t.Fatalf("violation = %q, want %q", res.Violations[0], want)
	}
	if !strings.Contains(res.Report, "FAIL (1 violations)") {
		t.Errorf("report lacks FAIL banner:\n%s", res.Report)
	}
}

// TestScenarioCheckpointValidation: unknown series and empty bounds are
// load-time errors, so a corpus lint catches them before any run.
func TestScenarioCheckpointValidation(t *testing.T) {
	if _, err := Load(strings.Replace(checkpointScenario, "series: proto.alive_hosts", "series: bogus", 1)); err == nil || !strings.Contains(err.Error(), `unknown series "bogus"`) {
		t.Errorf("unknown series: err = %v", err)
	}
	noBounds := strings.Replace(checkpointScenario, "    min: 10\n    max: 24\n", "", 1)
	if _, err := Load(noBounds); err == nil || !strings.Contains(err.Error(), "neither min nor max") {
		t.Errorf("missing bounds: err = %v", err)
	}
}

// TestScenarioTelemetryDeterministic pins the export-side contract:
// the sampled stream is byte-identical across runs, and the report is
// byte-identical whatever the sampling interval — timeline snapshots
// and checkpoints use forced passes at event instants, so the cadence
// shapes only the exported stream.
func TestScenarioTelemetryDeterministic(t *testing.T) {
	stream := func(interval sim.Duration) (string, string) {
		res, err := RunSampled(mustLoad(t, checkpointScenario), interval)
		if err != nil {
			t.Fatalf("RunSampled: %v", err)
		}
		var b bytes.Buffer
		if err := res.Telemetry.WriteJSONL(&b, "cp"); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return b.String(), res.Report
	}

	s1, r1 := stream(30 * sim.Second)
	s2, r2 := stream(30 * sim.Second)
	if s1 != s2 {
		t.Fatal("telemetry streams differ between identical runs")
	}
	if r1 != r2 {
		t.Fatal("reports differ between identical runs")
	}
	for _, series := range telemetrySeries() {
		if !strings.Contains(s1, `"series":"`+series+`"`) {
			t.Errorf("stream lacks series %s", series)
		}
	}

	s3, r3 := stream(2 * sim.Minute)
	if r3 != r1 {
		t.Fatalf("report depends on the sampling interval:\n--- 30s\n%s\n--- 2m\n%s", r1, r3)
	}
	if s3 == s1 {
		t.Fatal("sampling interval had no effect on the exported stream")
	}
}
