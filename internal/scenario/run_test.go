package scenario

import (
	"strings"
	"testing"
)

const smokeScenario = `
name: smoke
seed: 7
duration: 20m

grid:
  nodes: 32
  racks: 4
  gpu_slots: 2
  protocol: compact
  heartbeat: 10s
  scheduler: can-het

workload:
  jobs: 80
  mean_gap: 2s
  gpu_fraction: 0.3
  min_run: 30s
  max_run: 3m

events:
  - at: 1m
    fail_nodes: 3
  - at: 2m
    burst: {jobs: 40}
  - at: 3m
    partition: {rack: 1}
  - at: 4m
    heal: all
  - at: 5m
    join_wave: {nodes: 6, gap: 1s}
  - at: 6m
    fail_rack: 2

assert:
  jobs_accounted: true
  zone_cover: true
  no_orphans: true
  all_jobs_finished: true
  max_lost: 10
  min_finished: 100
`

func mustLoad(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return spec
}

func mustRun(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Run(mustLoad(t, src))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestScenarioSmoke exercises every event kind in one timeline and
// requires the full assertion battery to hold.
func TestScenarioSmoke(t *testing.T) {
	res := mustRun(t, smokeScenario)
	if !res.Passed() {
		t.Fatalf("scenario failed:\n%s", res.Report)
	}
	if res.Metrics["fails"] != 3+8 { // 3 singles + rack 2 of a 32/4 fleet
		t.Errorf("fails = %v, want 11", res.Metrics["fails"])
	}
	if got := res.Metrics["placed"] + res.Metrics["place_failed"]; got != 120 {
		t.Errorf("placed+place_failed = %v, want 120 (80 stream + 40 burst)", got)
	}
	if res.Metrics["link_drops"] == 0 {
		t.Error("partition dropped no messages")
	}
	if got := res.Metrics["finished"] + res.Metrics["queued"] + res.Metrics["running"]; got != res.Metrics["submitted"] {
		t.Errorf("conservation: submitted %v != finished+queued+running %v", res.Metrics["submitted"], got)
	}
}

// TestScenarioDeterministic runs the same spec twice and requires
// byte-identical reports — the contract the CI corpus depends on.
func TestScenarioDeterministic(t *testing.T) {
	a := mustRun(t, smokeScenario)
	b := mustRun(t, smokeScenario)
	if a.Report != b.Report {
		t.Fatalf("reports differ between runs:\n--- first\n%s\n--- second\n%s", a.Report, b.Report)
	}
}

// TestScenarioSeedSensitivity: a different seed must change the
// timeline (otherwise the seed is not actually wired through).
func TestScenarioSeedSensitivity(t *testing.T) {
	a := mustRun(t, smokeScenario)
	b := mustRun(t, strings.Replace(smokeScenario, "seed: 7", "seed: 8", 1))
	if a.Report == b.Report {
		t.Fatal("seed change produced an identical report")
	}
}

// TestScenarioChurn drives sustained churn through the protocol driver
// and requires conservation plus plane agreement afterwards.
func TestScenarioChurn(t *testing.T) {
	res := mustRun(t, `
name: churn
seed: 11
duration: 12m
grid:
  nodes: 24
  heartbeat: 10s
workload:
  jobs: 60
  mean_gap: 2s
  min_run: 20s
  max_run: 2m
events:
  - at: 30s
    churn: {mean_gap: 3s, fail_fraction: 0.5, until: 5m}
assert:
  jobs_accounted: true
  zone_cover: true
  no_orphans: true
`)
	if !res.Passed() {
		t.Fatalf("churn scenario failed:\n%s", res.Report)
	}
	if res.Metrics["joins"] <= 24 {
		t.Errorf("joins = %v, want > 24 (churn admitted nobody)", res.Metrics["joins"])
	}
	if res.Metrics["fails"]+res.Metrics["leaves"] == 0 {
		t.Error("churn departed nobody")
	}
}

// TestScenarioViolationsReported: a failing assertion must surface in
// Violations and flip the report to FAIL, not abort the run.
func TestScenarioViolationsReported(t *testing.T) {
	res := mustRun(t, `
name: impossible
seed: 1
duration: 2m
grid:
  nodes: 8
workload:
  jobs: 5
  mean_gap: 1s
  min_run: 10s
  max_run: 20s
assert:
  min_finished: 99999
  bounds:
    - metric: lost
      max: -1
`)
	if res.Passed() {
		t.Fatal("impossible assertions passed")
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %v, want 2", res.Violations)
	}
	if !strings.Contains(res.Report, "FAIL (2 violations)") {
		t.Errorf("report lacks FAIL banner:\n%s", res.Report)
	}
}
