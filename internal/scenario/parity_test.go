package scenario

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"hetgrid/internal/sim"
)

// parityInterval keeps the exported stream dense enough to catch
// sampling divergence (dormancy bugs truncate streams, not reports).
const parityInterval = 30 * sim.Second

func runCorpusWith(t *testing.T, path, engine string, shards, workers int) (report, stream string) {
	return runCorpusPolicy(t, path, engine, shards, workers, "", "")
}

func runCorpusPolicy(t *testing.T, path, engine string, shards, workers int, window, admission string) (report, stream string) {
	t.Helper()
	spec, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = engine
	spec.Shards = shards
	spec.Workers = workers
	spec.Window = window
	spec.Admission = admission
	res, err := RunSampled(spec, parityInterval)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteJSONL(&buf, spec.Name); err != nil {
		t.Fatal(err)
	}
	return res.Report, buf.String()
}

// TestCorpusEngineParity is the sharded scenario engine's acceptance
// contract as a test: every shipped scenario must produce a report AND
// a sampled telemetry stream byte-identical to the serial engine's
// under `engine: sharded` for (S, W) ∈ {(1,1), (4,1), (4, max)} — the
// sharded core is a pure wall-clock substitution, never an accuracy
// trade. Serial-vs-strict parity rests on the mailbox emission-order
// contract (sim.ShardedEngine's sub key, DESIGN.md §14); S=1 vs S=4
// additionally exercises cross-row gather and window placement.
func TestCorpusEngineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity runs the corpus four times per scenario")
	}
	paths, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("found %d corpus scenarios, want at least 6", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			wantReport, wantStream := runCorpusWith(t, path, "serial", 0, 0)
			combos := [][2]int{{1, 1}, {4, 1}, {4, runtime.GOMAXPROCS(0)}}
			for _, c := range combos {
				gotReport, gotStream := runCorpusWith(t, path, "sharded", c[0], c[1])
				if gotReport != wantReport {
					t.Fatalf("S=%d W=%d report diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
						c[0], c[1], wantReport, gotReport)
				}
				if gotStream != wantStream {
					t.Fatalf("S=%d W=%d telemetry stream diverged from serial (reports identical)", c[0], c[1])
				}
			}
		})
	}
}

// TestCorpusWindowPolicyParity is the adaptive window policy's
// acceptance contract as a test: over the whole shipped corpus, the
// sharded engine under `window: adaptive` must produce a report AND a
// sampled telemetry stream byte-identical to `window: fixed` — and,
// under strict admission, byte-identical to the serial engine — for
// (S, W) ∈ {(1,1), (4,1), (4, max)}. Widening a window is a wall-clock
// optimization only; the hop grid replicates the fixed window grid
// exactly (DESIGN.md §15), so no policy, shard count or worker count
// may shift a single delivery.
//
// Batched admission is a separate output class: batched output
// intentionally differs from serial (protocol side-effects are
// quantized to window barriers), and its protocol-side state is a
// function of (config, seed, S) — same-instant deliveries order by
// sender key through the mailbox but by emission order when
// shard-local, so S shifts view contents (the membership plane alone
// is S-invariant; see internal/proto/batched.go). What batched runs
// MUST be invariant under is W and the window policy: for each S, the
// batched sharded-fixed-(S,1) run is the baseline and every other
// (W, policy) combination must match it byte for byte.
func TestCorpusWindowPolicyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("window-policy parity runs the corpus thirteen times per scenario")
	}
	paths, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("found %d corpus scenarios, want at least 6", len(paths))
	}
	combos := [][2]int{{1, 1}, {4, 1}, {4, runtime.GOMAXPROCS(0)}}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			// Strict admission: serial is the ground truth for every
			// (S, W, policy) combination.
			wantReport, wantStream := runCorpusWith(t, path, "serial", 0, 0)
			for _, window := range []string{"fixed", "adaptive"} {
				for _, c := range combos {
					gotReport, gotStream := runCorpusPolicy(t, path, "sharded", c[0], c[1], window, "strict")
					if gotReport != wantReport {
						t.Fatalf("window=%s S=%d W=%d report diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
							window, c[0], c[1], wantReport, gotReport)
					}
					if gotStream != wantStream {
						t.Fatalf("window=%s S=%d W=%d telemetry stream diverged from serial (reports identical)",
							window, c[0], c[1])
					}
				}
			}
			// Batched admission: per shard count, the fixed-window W=1 run
			// is the baseline; every other (W, policy) combination must
			// match it.
			for _, S := range []int{1, 4} {
				baseReport, baseStream := runCorpusPolicy(t, path, "sharded", S, 1, "fixed", "batched")
				for _, window := range []string{"fixed", "adaptive"} {
					for _, W := range []int{1, runtime.GOMAXPROCS(0)} {
						if window == "fixed" && W == 1 {
							continue // the baseline itself
						}
						gotReport, gotStream := runCorpusPolicy(t, path, "sharded", S, W, window, "batched")
						if gotReport != baseReport {
							t.Fatalf("batched window=%s S=%d W=%d report diverged from batched fixed-W1 baseline:\n--- baseline\n%s\n--- got\n%s",
								window, S, W, baseReport, gotReport)
						}
						if gotStream != baseStream {
							t.Fatalf("batched window=%s S=%d W=%d telemetry stream diverged from batched fixed-W1 baseline (reports identical)",
								window, S, W)
						}
					}
				}
			}
		})
	}
}
