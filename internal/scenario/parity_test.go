package scenario

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"hetgrid/internal/sim"
)

// parityInterval keeps the exported stream dense enough to catch
// sampling divergence (dormancy bugs truncate streams, not reports).
const parityInterval = 30 * sim.Second

func runCorpusWith(t *testing.T, path, engine string, shards, workers int) (report, stream string) {
	t.Helper()
	spec, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = engine
	spec.Shards = shards
	spec.Workers = workers
	res, err := RunSampled(spec, parityInterval)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteJSONL(&buf, spec.Name); err != nil {
		t.Fatal(err)
	}
	return res.Report, buf.String()
}

// TestCorpusEngineParity is the sharded scenario engine's acceptance
// contract as a test: every shipped scenario must produce a report AND
// a sampled telemetry stream byte-identical to the serial engine's
// under `engine: sharded` for (S, W) ∈ {(1,1), (4,1), (4, max)} — the
// sharded core is a pure wall-clock substitution, never an accuracy
// trade. Serial-vs-strict parity rests on the mailbox emission-order
// contract (sim.ShardedEngine's sub key, DESIGN.md §14); S=1 vs S=4
// additionally exercises cross-row gather and window placement.
func TestCorpusEngineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity runs the corpus four times per scenario")
	}
	paths, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("found %d corpus scenarios, want at least 6", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			wantReport, wantStream := runCorpusWith(t, path, "serial", 0, 0)
			combos := [][2]int{{1, 1}, {4, 1}, {4, runtime.GOMAXPROCS(0)}}
			for _, c := range combos {
				gotReport, gotStream := runCorpusWith(t, path, "sharded", c[0], c[1])
				if gotReport != wantReport {
					t.Fatalf("S=%d W=%d report diverged from serial:\n--- serial\n%s\n--- sharded\n%s",
						c[0], c[1], wantReport, gotReport)
				}
				if gotStream != wantStream {
					t.Fatalf("S=%d W=%d telemetry stream diverged from serial (reports identical)", c[0], c[1])
				}
			}
		})
	}
}
