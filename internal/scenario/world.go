package scenario

// The execution engine behind a scenario: one virtual clock drives the
// protocol plane (heartbeats, failures, repairs via proto.Sim), the
// execution plane (job queues via exec.Cluster + a sched placement
// scheme) and the fault plane (netsim link faults). Everything is
// deterministic per seed — victim selection, join points and workload
// all draw from labeled rng splits, and same-time events fire in file
// order through the engine's sequence numbers — so a scenario's report
// is byte-identical across runs.

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/netsim"
	"hetgrid/internal/proto"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
	"hetgrid/internal/stats"
	"hetgrid/internal/workload"
)

// protoPlane is the protocol-simulation surface a world drives. Both
// engines satisfy it: *proto.Sim (serial) and *proto.ShardedSim
// (`engine: sharded` — churn on the control plane, heartbeats in
// parallel conservative windows).
type protoPlane interface {
	proto.ChurnSim
	Overlay() *can.Overlay
	MeanViewSize() float64
	BrokenLinks() (missing, stale int)
}

// protoNet is the transport surface a world needs: fault injection for
// the partition plane and drop accounting for the report. *netsim.Net
// and *netsim.ShardedNet both satisfy it.
type protoNet interface {
	metricsreg.NetReader
	SetLinkFault(f func(src, dst can.NodeID) bool)
	LinkDrops() int64
}

// World is the live state of one scenario run.
type World struct {
	spec    *Spec
	eng     *sim.Engine // event/checkpoint/workload plane (global plane when sharded)
	space   *resource.Space
	psim    protoPlane
	pnet    protoNet
	ssim    *proto.ShardedSim // non-nil iff spec.Engine == "sharded"
	cluster *exec.Cluster
	sched   sched.Scheduler
	part    *netsim.Partition

	ngen    *workload.NodeGen
	jgen    *workload.JobGen
	redraw  *rng.Stream // virtual-coordinate redraws on duplicate join points
	victims *rng.Stream // fault-injection victim selection

	rack     map[can.NodeID]int
	nextRack int

	// Telemetry: always attached (see telemetry.go), so the report's
	// timeline and the checkpoint assertions exist whether or not the
	// driver exports the stream.
	plane    *metrics.Plane
	timeline []string

	// Ledger: every job and node transition the scenario caused.
	placed      int
	placeFailed int
	requeued    int
	lost        int
	fails       int
	leaves      int
	joins       int
	waits       *stats.Sample

	violations []string
}

// NewWorld builds the grid, fleet and workload for a spec. The engine
// is positioned at time zero with the initial fleet joined and the job
// stream scheduled; Run executes the timeline.
func NewWorld(spec *Spec) (*World, error) { return newWorld(spec, 0) }

func newWorld(spec *Spec, sampleEvery sim.Duration) (*World, error) {
	space := resource.NewSpace(spec.Grid.GPUSlots)

	pcfg := proto.DefaultConfig(protoScheme(spec.Grid.Protocol))
	pcfg.HeartbeatPeriod = spec.Grid.Heartbeat
	pcfg.Seed = spec.Seed

	// Engine selection. The sharded core runs heartbeat traffic in
	// parallel conservative windows; churn, events, checkpoints, the
	// workload stream and telemetry all stay on its global control
	// plane, which quiesces the shards before every firing — the same
	// total order a serial engine gives them. Strict (non-batched)
	// admission keeps reports byte-identical to the serial engine.
	var (
		eng   *sim.Engine
		psim  protoPlane
		pnet  protoNet
		ssim  *proto.ShardedSim
	)
	if spec.Sharded() {
		if pcfg.HeartbeatPeriod <= pcfg.Latency {
			return nil, fmt.Errorf("scenario %s: engine sharded requires grid.heartbeat > %s", spec.Name, fmtDur(pcfg.Latency))
		}
		pcfg.BatchedAdmission = spec.BatchedAdmission()
		ssim = proto.NewShardedSim(spec.ShardCount(), spec.Workers, space.Dims(), pcfg)
		if spec.AdaptiveWindows() {
			ssim.SE.SetWindowPolicy(sim.WindowAdaptive)
		}
		eng = ssim.SE.Global()
		psim, pnet = ssim, ssim.Net
	} else {
		eng = sim.New()
		s := proto.NewSimOn(eng, space.Dims(), pcfg)
		psim, pnet = s, s.Net
	}

	w := &World{
		spec:    spec,
		eng:     eng,
		space:   space,
		psim:    psim,
		pnet:    pnet,
		ssim:    ssim,
		cluster: exec.NewCluster(eng, exec.DefaultConfig()),
		part:    netsim.NewPartition(),
		ngen:    workload.NewNodeGen(space, rng.Split(spec.Seed, "scenario.nodes")),
		redraw:  rng.NewSplit(spec.Seed, "scenario.redraw"),
		victims: rng.NewSplit(spec.Seed, "scenario.victims"),
		rack:    make(map[can.NodeID]int),
		waits:   &stats.Sample{},
	}
	w.pnet.SetLinkFault(w.part.Blocked)

	ctx := sched.NewContext(eng, w.psim.Overlay(), w.cluster, space, spec.Seed)
	ctx.RefreshPeriod = spec.Grid.Refresh
	switch spec.Grid.Scheduler {
	case "can-het":
		w.sched = sched.NewCanHet(ctx)
	case "can-hom":
		w.sched = sched.NewCanHom(ctx)
	case "central":
		w.sched = sched.NewCentral(ctx)
	default:
		return nil, fmt.Errorf("scenario %s: unknown scheduler %q", spec.Name, spec.Grid.Scheduler)
	}

	w.cluster.OnFinish = func(j *exec.Job) {
		w.waits.Add(j.WaitTime().Seconds())
	}
	w.attachTelemetry(sampleEvery)

	for i := 0; i < spec.Grid.Nodes; i++ {
		if _, err := w.admit(w.ngen.One()); err != nil {
			return nil, fmt.Errorf("scenario %s: initial join %d: %w", spec.Name, i, err)
		}
	}

	if spec.Workload.Jobs > 0 {
		w.jgen = workload.NewJobGen(space, rng.Split(spec.Seed, "scenario.jobs"))
		w.jgen.MeanInterArrival = spec.Workload.MeanGap
		w.jgen.GPUJobFraction = spec.Workload.GPUFraction
		w.jgen.ConstraintRatio = spec.Workload.ConstraintRatio
		w.jgen.MinRuntime = spec.Workload.MinRun
		w.jgen.MaxRuntime = spec.Workload.MaxRun
		remaining := spec.Workload.Jobs
		var arrive func(now sim.Time)
		arrive = func(now sim.Time) {
			if remaining == 0 {
				return
			}
			remaining--
			_, gap := w.submitNext(now)
			if remaining > 0 {
				eng.After(gap, arrive)
			}
		}
		eng.At(0, arrive)
	}

	for i := range spec.Events {
		w.scheduleEvent(&spec.Events[i], i)
	}
	// Checkpoints schedule after events so a checkpoint sharing an
	// instant with an event fires second and observes its consequences.
	for i := range spec.Checkpoints {
		w.scheduleCheckpoint(&spec.Checkpoints[i], i)
	}
	return w, nil
}

// admit joins one node to both planes and assigns its rack.
func (w *World) admit(caps *resource.NodeCaps) (*can.Node, error) {
	for try := 0; ; try++ {
		node, err := w.psim.JoinNode(w.space.NodePoint(caps), caps)
		if err == nil {
			w.track(node.ID, caps)
			return node, nil
		}
		if err != can.ErrDuplicatePoint || try >= 8 {
			return nil, err
		}
		caps.Virtual = w.redraw.Float64() * 0.999999
	}
}

// track registers an admitted node with the execution plane and the
// rack map. Racks are assigned round-robin in admission order, so a
// rack is a stable correlated-failure domain of the fleet.
func (w *World) track(id can.NodeID, caps *resource.NodeCaps) {
	w.cluster.AddNode(id, caps)
	w.rack[id] = w.nextRack
	w.nextRack = (w.nextRack + 1) % w.spec.Grid.Racks
	w.joins++
}

// submitNext draws the next workload job and places it.
func (w *World) submitNext(now sim.Time) (*exec.Job, sim.Duration) {
	j, gap := w.jgen.Next()
	j.Submitted = now
	w.place(j)
	return j, gap
}

func (w *World) place(j *exec.Job) {
	node, err := w.sched.Place(j)
	if err != nil {
		w.placeFailed++
		return
	}
	if err := w.cluster.Submit(j, node); err != nil {
		w.placeFailed++
		return
	}
	w.placed++
}

// requeue re-matches jobs displaced by an injected failure. Jobs no
// remaining node can satisfy are counted lost — never silently dropped.
func (w *World) requeue(orphans []*exec.Job) {
	for _, j := range orphans {
		node, err := w.sched.Place(j)
		if err != nil {
			w.lost++
			continue
		}
		if err := w.cluster.Submit(j, node); err != nil {
			w.lost++
			continue
		}
		w.requeued++
	}
}

// failNode injects one silent node failure: the protocol plane loses
// the host (repair runs after the liveness timeout), the execution
// plane drains its jobs, and the orphans are re-matched. The job
// conservation invariant is asserted immediately — a failure path that
// drops work is a scenario violation, not a silent statistic.
func (w *World) failNode(id can.NodeID) {
	// Overlay/protocol departure first, runtime drain second: the
	// ordering that cannot strand drained jobs on an overlay error.
	if err := w.psim.Fail(id); err != nil {
		w.violate("fail_node %d: %v", id, err)
		return
	}
	w.fails++
	delete(w.rack, id)
	w.requeue(w.cluster.RemoveNode(id))
	w.checkConservation(fmt.Sprintf("after fail of node %d", id))
}

func (w *World) checkConservation(when string) {
	if err := w.cluster.CheckConservation(); err != nil {
		w.violate("%s: %v", when, err)
	}
}

func (w *World) violate(format string, args ...any) {
	w.violations = append(w.violations, fmt.Sprintf(format, args...))
}

// aliveIDs returns the live host ids in ascending order.
func (w *World) aliveIDs() []can.NodeID { return w.psim.HostIDs() }

// pickVictims draws k distinct random victims from the live set,
// deterministically from the victim stream.
func (w *World) pickVictims(k int) []can.NodeID {
	ids := w.aliveIDs()
	if k > len(ids) {
		k = len(ids)
	}
	// Partial Fisher–Yates over the sorted id list.
	for i := 0; i < k; i++ {
		j := i + w.victims.Intn(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids[:k]
}

// rackMembers returns the live members of one rack in ascending order.
func (w *World) rackMembers(rack int) []can.NodeID {
	var out []can.NodeID
	for _, id := range w.aliveIDs() {
		if w.rack[id] == rack {
			out = append(out, id)
		}
	}
	return out
}

func protoScheme(name string) proto.Scheme {
	switch name {
	case "vanilla":
		return proto.Vanilla
	case "adaptive":
		return proto.Adaptive
	default:
		return proto.Compact
	}
}

// Run executes the timeline to the horizon, evaluates the assertions
// and renders the deterministic report. It returns the result even when
// assertions fail; Violations is non-empty in that case.
func Run(spec *Spec) (*Result, error) { return RunSampled(spec, 0) }

// RunSampled is Run with an explicit telemetry sampling interval
// (0 = the 60 s default). The interval shapes only the exported
// stream (Result.Telemetry); the report — timeline rows, checkpoint
// values, metrics — is byte-identical for every interval.
func RunSampled(spec *Spec, sampleEvery sim.Duration) (*Result, error) {
	w, err := newWorld(spec, sampleEvery)
	if err != nil {
		return nil, err
	}
	if w.ssim != nil {
		// The sharded run loop drains all planes — global events fire
		// with every shard quiesced — and the pool shuts down before the
		// end-state sweep reads protocol state.
		w.ssim.RunUntil(sim.Time(spec.Duration))
		w.ssim.Close()
	} else {
		w.eng.RunUntil(sim.Time(spec.Duration))
	}
	w.assertEndState()
	return w.result(), nil
}
