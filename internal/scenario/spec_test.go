package scenario

import (
	"strings"
	"testing"

	"hetgrid/internal/sim"
)

func TestLoadFullDocument(t *testing.T) {
	spec := mustLoad(t, smokeScenario)
	if spec.Name != "smoke" || spec.Seed != 7 || spec.Duration != 20*sim.Minute {
		t.Errorf("header = %q/%d/%v", spec.Name, spec.Seed, spec.Duration)
	}
	if spec.Grid.Nodes != 32 || spec.Grid.Racks != 4 || spec.Grid.GPUSlots != 2 {
		t.Errorf("grid = %+v", spec.Grid)
	}
	if spec.Grid.Heartbeat != 10*sim.Second || spec.Grid.Refresh != 10*sim.Second {
		t.Errorf("heartbeat/refresh = %v/%v (refresh should default to heartbeat)", spec.Grid.Heartbeat, spec.Grid.Refresh)
	}
	if spec.Workload.Jobs != 80 || spec.Workload.GPUFraction != 0.3 {
		t.Errorf("workload = %+v", spec.Workload)
	}
	if len(spec.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(spec.Events))
	}
	kinds := make([]string, len(spec.Events))
	for i, ev := range spec.Events {
		kinds[i] = ev.Kind
	}
	want := []string{"fail_nodes", "burst", "partition", "heal", "join_wave", "fail_rack"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if spec.Events[2].Rack != 1 || spec.Events[4].Count != 6 || spec.Events[4].Gap != sim.Second {
		t.Errorf("event payloads decoded wrong: %+v", spec.Events)
	}
	if !spec.Assert.JobsAccounted || spec.Assert.MaxLost != 10 || spec.Assert.MinFinished != 100 {
		t.Errorf("assert = %+v", spec.Assert)
	}
}

func TestLoadDefaults(t *testing.T) {
	spec := mustLoad(t, "name: minimal\nduration: 1m\ngrid:\n  nodes: 4\n")
	if spec.Seed != 1 || spec.Grid.Protocol != "compact" || spec.Grid.Scheduler != "can-het" {
		t.Errorf("defaults = seed %d, protocol %q, scheduler %q", spec.Seed, spec.Grid.Protocol, spec.Grid.Scheduler)
	}
	if spec.Grid.Heartbeat != 10*sim.Second || spec.Grid.Racks != 1 {
		t.Errorf("defaults = heartbeat %v, racks %d", spec.Grid.Heartbeat, spec.Grid.Racks)
	}
	if spec.Assert.MaxLost != -1 || spec.Assert.MaxBrokenLinks != -1 {
		t.Errorf("assert defaults should be unchecked: %+v", spec.Assert)
	}
}

func TestLoadErrors(t *testing.T) {
	valid := "name: x\nduration: 1m\ngrid:\n  nodes: 4\n"
	cases := []struct {
		name, src, want string
	}{
		{"missing name", "duration: 1m\ngrid:\n  nodes: 4\n", "name is required"},
		{"missing duration", "name: x\ngrid:\n  nodes: 4\n", "duration must be positive"},
		{"no nodes", "name: x\nduration: 1m\ngrid:\n  nodes: 0\n", "grid.nodes"},
		{"unknown top field", valid + "bogus: 1\n", `unknown field "bogus"`},
		{"unknown grid field", "name: x\nduration: 1m\ngrid:\n  nodes: 4\n  cores: 8\n", `unknown field "cores"`},
		{"bad duration", "name: x\nduration: fast\ngrid:\n  nodes: 4\n", "not a duration"},
		{"bad protocol", "name: x\nduration: 1m\ngrid:\n  nodes: 4\n  protocol: quantum\n", "unknown protocol"},
		{"bad scheduler", "name: x\nduration: 1m\ngrid:\n  nodes: 4\n  scheduler: oracle\n", "unknown scheduler"},
		{"unknown event kind", valid + "events:\n  - at: 1s\n    reboot: 3\n", `unknown field "reboot"`},
		{"two kinds", valid + "events:\n  - at: 1s\n    fail_nodes: 1\n    heal: all\n", "both"},
		{"no kind", valid + "events:\n  - at: 1s\n", "no event kind"},
		{"event past horizon", valid + "events:\n  - at: 2m\n    fail_nodes: 1\n", "outside the horizon"},
		{"zero count", valid + "events:\n  - at: 1s\n    fail_nodes: 0\n", "count must be positive"},
		{"rack range", valid + "events:\n  - at: 1s\n    fail_rack: 5\n", "out of range"},
		{"partition empty", valid + "events:\n  - at: 1s\n    partition: {}\n", "rack or fraction"},
		{"heal syntax", valid + "events:\n  - at: 1s\n    heal: some\n", "heal: all"},
		{"churn no gap", valid + "events:\n  - at: 1s\n    churn: {fail_fraction: 0.5}\n", "positive mean_gap"},
		{"bound unknown metric", valid + "assert:\n  bounds:\n    - metric: happiness\n      max: 1\n", "unknown metric"},
		{"bound no limits", valid + "assert:\n  bounds:\n    - metric: lost\n", "neither min nor max"},
		{"bad bool", valid + "assert:\n  zone_cover: maybe\n", "not a boolean"},
		{"bad int", "name: x\nduration: 1m\ngrid:\n  nodes: many\n", "not an integer"},
		{"unknown engine", "name: x\nduration: 1m\nengine: quantum\ngrid:\n  nodes: 4\n", "unknown engine"},
		{"shards without sharded", "name: x\nduration: 1m\nshards: 4\ngrid:\n  nodes: 4\n", "require `engine: sharded`"},
		{"workers without sharded", "name: x\nduration: 1m\nengine: serial\nworkers: 2\ngrid:\n  nodes: 4\n", "require `engine: sharded`"},
		{"negative shards", "name: x\nduration: 1m\nengine: sharded\nshards: -1\ngrid:\n  nodes: 4\n", "shards must be non-negative"},
		{"unknown window", "name: x\nduration: 1m\nengine: sharded\nwindow: elastic\ngrid:\n  nodes: 4\n", "unknown window policy"},
		{"unknown admission", "name: x\nduration: 1m\nengine: sharded\nadmission: eager\ngrid:\n  nodes: 4\n", "unknown admission mode"},
		{"window without sharded", "name: x\nduration: 1m\nwindow: adaptive\ngrid:\n  nodes: 4\n", "require `engine: sharded`"},
		{"admission without sharded", "name: x\nduration: 1m\nengine: serial\nadmission: batched\ngrid:\n  nodes: 4\n", "require `engine: sharded`"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestLoadEngineKeys(t *testing.T) {
	spec := mustLoad(t, "name: x\nduration: 1m\nengine: sharded\nshards: 8\nworkers: 3\ngrid:\n  nodes: 4\n")
	if !spec.Sharded() || spec.Shards != 8 || spec.Workers != 3 {
		t.Errorf("engine keys = %q/%d/%d, want sharded/8/3", spec.Engine, spec.Shards, spec.Workers)
	}
	if spec.ShardCount() != 8 {
		t.Errorf("ShardCount() = %d, want 8", spec.ShardCount())
	}
	// Defaults: serial engine, S defaults to 4 once sharded is selected.
	spec = mustLoad(t, "name: x\nduration: 1m\ngrid:\n  nodes: 4\n")
	if spec.Sharded() || spec.Engine != "serial" {
		t.Errorf("default engine = %q, want serial", spec.Engine)
	}
	spec = mustLoad(t, "name: x\nduration: 1m\nengine: sharded\ngrid:\n  nodes: 4\n")
	if spec.ShardCount() != 4 || spec.Workers != 0 {
		t.Errorf("sharded defaults = S=%d W=%d, want S=4 W=0 (GOMAXPROCS)", spec.ShardCount(), spec.Workers)
	}
	if spec.AdaptiveWindows() || spec.BatchedAdmission() {
		t.Errorf("defaults = window %q admission %q, want fixed/strict", spec.Window, spec.Admission)
	}
	spec = mustLoad(t, "name: x\nduration: 1m\nengine: sharded\nwindow: adaptive\nadmission: batched\ngrid:\n  nodes: 4\n")
	if !spec.AdaptiveWindows() || !spec.BatchedAdmission() {
		t.Errorf("window/admission keys = %q/%q, want adaptive/batched", spec.Window, spec.Admission)
	}
	// The explicit defaults spell out the same policies.
	spec = mustLoad(t, "name: x\nduration: 1m\nengine: sharded\nwindow: fixed\nadmission: strict\ngrid:\n  nodes: 4\n")
	if spec.AdaptiveWindows() || spec.BatchedAdmission() {
		t.Errorf("explicit defaults = window %q admission %q, want fixed/strict", spec.Window, spec.Admission)
	}
}

func TestBoundsVocabularyMatchesReport(t *testing.T) {
	// Every name validate() accepts must actually appear in the metric
	// map, or a bound would silently compare against zero.
	w := &World{}
	for _, name := range knownMetrics() {
		if !validMetric(name) {
			t.Errorf("knownMetrics lists %q but validMetric rejects it", name)
		}
	}
	_ = w
	res := mustRun(t, "name: tiny\nseed: 3\nduration: 30s\ngrid:\n  nodes: 4\n")
	for _, name := range knownMetrics() {
		if _, ok := res.Metrics[name]; !ok {
			t.Errorf("metric %q validates in bounds but is absent from the report map", name)
		}
	}
	for name := range res.Metrics {
		if !validMetric(name) {
			t.Errorf("report emits %q but bounds cannot reference it", name)
		}
	}
}
