package scenario

// End-state assertions, evaluated once the engine reaches the horizon.
// Each failed assertion appends a violation; the run still produces a
// full report so a failing scenario shows every broken contract at
// once, not just the first.

import "hetgrid/internal/can"

func (w *World) assertEndState() {
	a := &w.spec.Assert

	if a.JobsAccounted {
		w.checkConservation("at the horizon")
	}
	if a.AllJobsFinished {
		if queued, running := w.cluster.Totals(); queued+running != 0 {
			w.violate("all_jobs_finished: %d queued and %d running at the horizon", queued, running)
		}
	}
	if a.ZoneCover {
		if err := w.psim.Overlay().Validate(); err != nil {
			w.violate("zone_cover: overlay invariants: %v", err)
		} else if err := w.psim.Overlay().CheckZoneCover(); err != nil {
			w.violate("zone_cover: %v", err)
		}
	}
	if a.NoOrphans {
		w.assertNoOrphans()
	}
	if a.MaxLost >= 0 && w.lost > a.MaxLost {
		w.violate("max_lost: %d jobs lost, ceiling %d", w.lost, a.MaxLost)
	}
	if a.MinFinished > 0 {
		if finished := w.cluster.Finished(); finished < a.MinFinished {
			w.violate("min_finished: %d jobs finished, floor %d", finished, a.MinFinished)
		}
	}
	if a.MaxBrokenLinks >= 0 {
		if missing, _ := w.psim.BrokenLinks(); missing > a.MaxBrokenLinks {
			w.violate("max_broken_links: %d missing links, ceiling %d", missing, a.MaxBrokenLinks)
		}
	}
	if len(a.Bounds) > 0 {
		m := w.metrics()
		for _, b := range a.Bounds {
			v := m[b.Metric]
			if b.HasMin && v < b.Min {
				w.violate("bounds: %s = %s below min %s", b.Metric, fmtMetric(v), fmtMetric(b.Min))
			}
			if b.HasMax && v > b.Max {
				w.violate("bounds: %s = %s above max %s", b.Metric, fmtMetric(v), fmtMetric(b.Max))
			}
		}
	}
}

// assertNoOrphans checks that the execution plane and the overlay agree
// on membership: every runtime corresponds to a live overlay node and
// vice versa. A mismatch means a failure path tore down one plane but
// not the other.
func (w *World) assertNoOrphans() {
	overlay := make(map[can.NodeID]bool)
	for _, id := range w.psim.HostIDs() {
		overlay[id] = true
	}
	for _, r := range w.cluster.Runtimes() {
		if !overlay[r.ID] {
			w.violate("no_orphans: runtime %d has no live overlay node", r.ID)
		}
		delete(overlay, r.ID)
	}
	for _, id := range w.psim.HostIDs() {
		if overlay[id] {
			w.violate("no_orphans: overlay node %d has no runtime", id)
		}
	}
}
