package scenario

import (
	"path/filepath"
	"testing"
)

// TestCorpus runs every shipped example scenario and requires its
// assertion battery to pass and its report to be reproducible. This is
// the same gate CI runs through `make scenario-smoke`.
func TestCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus runs take a few seconds each")
	}
	paths, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("found %d corpus scenarios, want at least 6", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			spec, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed() {
				t.Fatalf("scenario failed:\n%s", res.Report)
			}
			spec2, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := Run(spec2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report != res2.Report {
				t.Fatalf("report not reproducible:\n--- first\n%s\n--- second\n%s", res.Report, res2.Report)
			}
		})
	}
}
