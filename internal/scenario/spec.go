package scenario

// The declarative schema: a scenario file defines the grid and fleet, a
// workload, a timeline of injected faults and load events, and the
// end-state assertions the run must satisfy. Load parses and validates
// a file without running anything, so `hetgridsim validate` can check a
// corpus cheaply.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"hetgrid/internal/sim"
)

// Spec is a fully decoded scenario.
type Spec struct {
	Name        string
	Seed        int64
	Duration    sim.Duration // run horizon (virtual time)
	Engine      string       // serial (default) | sharded
	Shards      int          // sharded engine: shard count (0 = default 4)
	Workers     int          // sharded engine: worker goroutines (0 = GOMAXPROCS)
	Window      string       // sharded engine: window policy — fixed (default) | adaptive
	Admission   string       // sharded engine: admission mode — strict (default) | batched
	Grid        GridSpec
	Workload    WorkloadSpec
	Events      []Event
	Checkpoints []Checkpoint
	Assert      AssertSpec
}

// Sharded reports whether the spec selects the sharded parallel core.
func (s *Spec) Sharded() bool { return s.Engine == "sharded" }

// ShardCount resolves the effective shard count S.
func (s *Spec) ShardCount() int {
	if s.Shards > 0 {
		return s.Shards
	}
	return 4
}

// AdaptiveWindows reports whether the spec selects the adaptive window
// policy on the sharded core.
func (s *Spec) AdaptiveWindows() bool { return s.Window == "adaptive" }

// BatchedAdmission reports whether the spec selects batched admission
// on the sharded core.
func (s *Spec) BatchedAdmission() bool { return s.Admission == "batched" }

// GridSpec describes the fleet and the maintenance protocol.
type GridSpec struct {
	Nodes     int
	Racks     int          // correlated-failure domains, round-robin by join order
	GPUSlots  int          // accelerator slot count of the resource space
	Protocol  string       // vanilla | compact | adaptive
	Heartbeat sim.Duration // protocol heartbeat period
	Scheduler string       // can-het | can-hom | central
	Refresh   sim.Duration // aggregation refresh cadence (default: heartbeat)
}

// WorkloadSpec describes the background job stream started at time 0.
type WorkloadSpec struct {
	Jobs            int
	MeanGap         sim.Duration // Poisson arrival mean
	GPUFraction     float64
	ConstraintRatio float64
	MinRun, MaxRun  sim.Duration // uniform nominal-runtime range
}

// Event is one timed scenario event. Kind selects which of the
// remaining fields are meaningful.
type Event struct {
	At   sim.Duration
	Kind string // fail_nodes | fail_rack | partition | heal | burst | join_wave | churn

	Count        int          // fail_nodes victims, burst jobs, join_wave nodes
	Rack         int          // fail_rack, partition{rack}
	Fraction     float64      // partition{fraction}
	Gap          sim.Duration // join_wave spacing, churn mean event gap
	FailFraction float64      // churn: silent-failure share of departures
	Until        sim.Duration // churn: stop time (0 = run to horizon)
}

// Checkpoint is an `at:`-timed mid-run assertion over one sampled
// telemetry series: the world forces a sampling pass at the instant and
// bounds the observed value. Gauge series (proto.*) check the sampled
// instantaneous value; counter series (jobs.*, net.*) check the
// cumulative total since the scenario started, so the check never
// depends on the sampling interval. A checkpoint firing at the same
// instant as an event evaluates after it — it observes the event's
// consequences.
type Checkpoint struct {
	At       sim.Duration
	Series   string
	Min, Max float64
	HasMin   bool
	HasMax   bool
}

// Bound is a numeric assertion over one report metric.
type Bound struct {
	Metric   string
	Min, Max float64
	HasMin   bool
	HasMax   bool
}

// AssertSpec is the end-state contract checked after the horizon.
type AssertSpec struct {
	JobsAccounted   bool // submitted == finished + queued + running (conservation)
	AllJobsFinished bool // queues and run sets drained
	ZoneCover       bool // overlay invariants + exact zone cover
	NoOrphans       bool // cluster membership == overlay membership
	MaxLost         int  // ceiling on jobs lost to failures (-1 = unchecked)
	MinFinished     int  // floor on finished jobs (0 = unchecked)
	MaxBrokenLinks  int  // ceiling on missing neighbor links at the horizon (-1 = unchecked)
	Bounds          []Bound
}

var eventKinds = map[string]bool{
	"fail_nodes": true, "fail_rack": true, "partition": true,
	"heal": true, "burst": true, "join_wave": true, "churn": true,
}

// LoadFile reads and decodes one scenario file.
func LoadFile(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Load(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Load decodes a scenario document and validates it.
func Load(src string) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	top := d.mapping(root, "scenario")

	spec := &Spec{
		Name:     d.str(top, "name", ""),
		Seed:     d.int64(top, "seed", 1),
		Duration: d.dur(top, "duration", 0),
		Engine:   d.str(top, "engine", "serial"),
		Shards:   d.count(top, "shards", 0),
		Workers:  d.count(top, "workers", 0),
		Window:   d.str(top, "window", ""),
		Admission: d.str(top, "admission", ""),
	}

	g := d.mapping(top["grid"], "grid")
	spec.Grid = GridSpec{
		Nodes:     d.count(g, "nodes", 0),
		Racks:     d.count(g, "racks", 1),
		GPUSlots:  d.count(g, "gpu_slots", 0),
		Protocol:  d.str(g, "protocol", "compact"),
		Heartbeat: d.dur(g, "heartbeat", 10*sim.Second),
		Scheduler: d.str(g, "scheduler", "can-het"),
	}
	spec.Grid.Refresh = d.dur(g, "refresh", spec.Grid.Heartbeat)

	if wv, ok := top["workload"]; ok {
		w := d.mapping(wv, "workload")
		spec.Workload = WorkloadSpec{
			Jobs:            d.count(w, "jobs", 0),
			MeanGap:         d.dur(w, "mean_gap", 3*sim.Second),
			GPUFraction:     d.float(w, "gpu_fraction", 0.4),
			ConstraintRatio: d.float(w, "constraint_ratio", 0.8),
			MinRun:          d.dur(w, "min_run", 2*sim.Minute),
			MaxRun:          d.dur(w, "max_run", 10*sim.Minute),
		}
		d.rejectUnknown(w, "workload", "jobs", "mean_gap", "gpu_fraction", "constraint_ratio", "min_run", "max_run")
	}

	if evs, ok := top["events"]; ok {
		seq, isSeq := evs.([]any)
		if !isSeq {
			d.fail("events: expected a sequence")
		}
		for i, item := range seq {
			spec.Events = append(spec.Events, d.event(item, i))
		}
	}

	if cv, ok := top["checkpoints"]; ok {
		seq, isSeq := cv.([]any)
		if !isSeq {
			d.fail("checkpoints: expected a sequence")
		}
		for i, item := range seq {
			spec.Checkpoints = append(spec.Checkpoints, d.checkpoint(item, i))
		}
	}

	spec.Assert = AssertSpec{MaxLost: -1, MaxBrokenLinks: -1}
	if av, ok := top["assert"]; ok {
		a := d.mapping(av, "assert")
		spec.Assert.JobsAccounted = d.boolean(a, "jobs_accounted", false)
		spec.Assert.AllJobsFinished = d.boolean(a, "all_jobs_finished", false)
		spec.Assert.ZoneCover = d.boolean(a, "zone_cover", false)
		spec.Assert.NoOrphans = d.boolean(a, "no_orphans", false)
		spec.Assert.MaxLost = d.count(a, "max_lost", -1)
		spec.Assert.MinFinished = d.count(a, "min_finished", 0)
		spec.Assert.MaxBrokenLinks = d.count(a, "max_broken_links", -1)
		if bv, ok := a["bounds"]; ok {
			seq, isSeq := bv.([]any)
			if !isSeq {
				d.fail("assert.bounds: expected a sequence")
			}
			for i, item := range seq {
				spec.Assert.Bounds = append(spec.Assert.Bounds, d.bound(item, i))
			}
		}
		d.rejectUnknown(a, "assert", "jobs_accounted", "all_jobs_finished", "zone_cover",
			"no_orphans", "max_lost", "min_finished", "max_broken_links", "bounds")
	}

	d.rejectUnknown(top, "scenario", "name", "seed", "duration", "engine", "shards", "workers", "window", "admission", "grid", "workload", "events", "checkpoints", "assert")
	d.rejectUnknown(g, "grid", "nodes", "racks", "gpu_slots", "protocol", "heartbeat", "scheduler", "refresh")

	if d.err != nil {
		return nil, d.err
	}
	return spec, spec.validate()
}

func (s *Spec) validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: name is required")
	case s.Duration <= 0:
		return fmt.Errorf("scenario %s: duration must be positive", s.Name)
	case s.Grid.Nodes < 1:
		return fmt.Errorf("scenario %s: grid.nodes must be at least 1", s.Name)
	case s.Grid.Racks < 1:
		return fmt.Errorf("scenario %s: grid.racks must be at least 1", s.Name)
	}
	switch s.Engine {
	case "", "serial", "sharded":
	default:
		return fmt.Errorf("scenario %s: unknown engine %q (serial or sharded)", s.Name, s.Engine)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario %s: shards must be non-negative", s.Name)
	}
	if s.Workers < 0 {
		return fmt.Errorf("scenario %s: workers must be non-negative", s.Name)
	}
	if (s.Shards > 0 || s.Workers > 0) && !s.Sharded() {
		return fmt.Errorf("scenario %s: shards/workers require `engine: sharded`", s.Name)
	}
	switch s.Window {
	case "", "fixed", "adaptive":
	default:
		return fmt.Errorf("scenario %s: unknown window policy %q (fixed or adaptive)", s.Name, s.Window)
	}
	switch s.Admission {
	case "", "strict", "batched":
	default:
		return fmt.Errorf("scenario %s: unknown admission mode %q (strict or batched)", s.Name, s.Admission)
	}
	if (s.Window != "" || s.Admission != "") && !s.Sharded() {
		return fmt.Errorf("scenario %s: window/admission require `engine: sharded`", s.Name)
	}
	switch s.Grid.Protocol {
	case "vanilla", "compact", "adaptive":
	default:
		return fmt.Errorf("scenario %s: unknown protocol %q", s.Name, s.Grid.Protocol)
	}
	switch s.Grid.Scheduler {
	case "can-het", "can-hom", "central":
	default:
		return fmt.Errorf("scenario %s: unknown scheduler %q", s.Name, s.Grid.Scheduler)
	}
	for i, ev := range s.Events {
		if !eventKinds[ev.Kind] {
			return fmt.Errorf("scenario %s: events[%d]: unknown kind %q", s.Name, i, ev.Kind)
		}
		if ev.At < 0 || ev.At > s.Duration {
			return fmt.Errorf("scenario %s: events[%d] (%s): at %s outside the horizon", s.Name, i, ev.Kind, fmtDur(ev.At))
		}
		switch ev.Kind {
		case "fail_nodes", "burst", "join_wave":
			if ev.Count < 1 {
				return fmt.Errorf("scenario %s: events[%d] (%s): count must be positive", s.Name, i, ev.Kind)
			}
		case "fail_rack":
			if ev.Rack < 0 || ev.Rack >= s.Grid.Racks {
				return fmt.Errorf("scenario %s: events[%d]: rack %d out of range [0,%d)", s.Name, i, ev.Rack, s.Grid.Racks)
			}
		case "partition":
			if ev.Rack < 0 && (ev.Fraction <= 0 || ev.Fraction >= 1) {
				return fmt.Errorf("scenario %s: events[%d]: partition needs rack or fraction in (0,1)", s.Name, i)
			}
		case "churn":
			if ev.Gap <= 0 {
				return fmt.Errorf("scenario %s: events[%d]: churn needs a positive mean_gap", s.Name, i)
			}
		}
	}
	for i, cp := range s.Checkpoints {
		if !validSeries(cp.Series) {
			return fmt.Errorf("scenario %s: checkpoints[%d]: unknown series %q (known: %v)", s.Name, i, cp.Series, telemetrySeries())
		}
		if cp.At <= 0 || cp.At > s.Duration {
			return fmt.Errorf("scenario %s: checkpoints[%d] (%s): at %s outside the horizon", s.Name, i, cp.Series, fmtDur(cp.At))
		}
		if !cp.HasMin && !cp.HasMax {
			return fmt.Errorf("scenario %s: checkpoints[%d]: %s has neither min nor max", s.Name, i, cp.Series)
		}
	}
	for _, b := range s.Assert.Bounds {
		if !validMetric(b.Metric) {
			return fmt.Errorf("scenario %s: assert.bounds: unknown metric %q (known: %v)", s.Name, b.Metric, knownMetrics())
		}
		if !b.HasMin && !b.HasMax {
			return fmt.Errorf("scenario %s: assert.bounds: %s has neither min nor max", s.Name, b.Metric)
		}
	}
	return nil
}

// decoder accumulates the first decode error while letting the happy
// path read fields without per-call error plumbing.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

func (d *decoder) mapping(v any, what string) map[string]any {
	if v == nil {
		return map[string]any{}
	}
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("%s: expected a mapping", what)
		return map[string]any{}
	}
	return m
}

func (d *decoder) rejectUnknown(m map[string]any, what string, known ...string) {
	allowed := make(map[string]bool, len(known))
	for _, k := range known {
		allowed[k] = true
	}
	var bad []string
	for k := range m {
		if !allowed[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		d.fail("%s: unknown field %q (known: %v)", what, bad[0], known)
	}
}

func (d *decoder) scalar(m map[string]any, key string) (string, bool) {
	v, ok := m[key]
	if !ok || v == nil {
		return "", false
	}
	s, isStr := v.(string)
	if !isStr {
		d.fail("%s: expected a scalar", key)
		return "", false
	}
	return s, true
}

func (d *decoder) str(m map[string]any, key, def string) string {
	if s, ok := d.scalar(m, key); ok {
		return s
	}
	return def
}

func (d *decoder) int64(m map[string]any, key string, def int64) int64 {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.fail("%s: %q is not an integer", key, s)
		return def
	}
	return n
}

func (d *decoder) count(m map[string]any, key string, def int) int {
	return int(d.int64(m, key, int64(def)))
}

func (d *decoder) float(m map[string]any, key string, def float64) float64 {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("%s: %q is not a number", key, s)
		return def
	}
	return f
}

func (d *decoder) boolean(m map[string]any, key string, def bool) bool {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	switch s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	d.fail("%s: %q is not a boolean", key, s)
	return def
}

// dur parses durations in Go syntax ("10s", "5m", "1h30m", "200ms") at
// the engine's millisecond resolution.
func (d *decoder) dur(m map[string]any, key string, def sim.Duration) sim.Duration {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	td, err := time.ParseDuration(s)
	if err != nil || td < 0 {
		d.fail("%s: %q is not a duration", key, s)
		return def
	}
	return sim.Duration(td.Milliseconds()) * sim.Millisecond
}

func (d *decoder) event(item any, i int) Event {
	m := d.mapping(item, fmt.Sprintf("events[%d]", i))
	ev := Event{At: d.dur(m, "at", 0), Rack: -1}
	for _, kind := range []string{"fail_nodes", "fail_rack", "partition", "heal", "burst", "join_wave", "churn"} {
		if _, ok := m[kind]; !ok {
			continue
		}
		if ev.Kind != "" {
			d.fail("events[%d]: both %q and %q given", i, ev.Kind, kind)
			continue
		}
		ev.Kind = kind
		switch kind {
		case "fail_nodes":
			ev.Count = d.count(m, kind, 0)
		case "fail_rack":
			ev.Rack = d.count(m, kind, -1)
		case "heal":
			if s, _ := d.scalar(m, kind); s != "all" {
				d.fail("events[%d]: heal must be `heal: all`", i)
			}
		case "partition":
			p := d.mapping(m[kind], "partition")
			ev.Rack = d.count(p, "rack", -1)
			ev.Fraction = d.float(p, "fraction", 0)
			d.rejectUnknown(p, "partition", "rack", "fraction")
		case "burst":
			b := d.mapping(m[kind], "burst")
			ev.Count = d.count(b, "jobs", 0)
			d.rejectUnknown(b, "burst", "jobs")
		case "join_wave":
			w := d.mapping(m[kind], "join_wave")
			ev.Count = d.count(w, "nodes", 0)
			ev.Gap = d.dur(w, "gap", 500*sim.Millisecond)
			d.rejectUnknown(w, "join_wave", "nodes", "gap")
		case "churn":
			c := d.mapping(m[kind], "churn")
			ev.Gap = d.dur(c, "mean_gap", 0)
			ev.FailFraction = d.float(c, "fail_fraction", 0.5)
			ev.Until = d.dur(c, "until", 0)
			d.rejectUnknown(c, "churn", "mean_gap", "fail_fraction", "until")
		}
		delete(m, kind)
	}
	// Unknown-field first: `reboot: 3` should read as an unknown field,
	// not as a missing kind.
	d.rejectUnknown(m, fmt.Sprintf("events[%d]", i), "at")
	if ev.Kind == "" {
		d.fail("events[%d]: no event kind given", i)
	}
	return ev
}

func (d *decoder) checkpoint(item any, i int) Checkpoint {
	m := d.mapping(item, fmt.Sprintf("checkpoints[%d]", i))
	cp := Checkpoint{At: d.dur(m, "at", 0), Series: d.str(m, "series", "")}
	if _, ok := m["min"]; ok {
		cp.Min, cp.HasMin = d.float(m, "min", 0), true
	}
	if _, ok := m["max"]; ok {
		cp.Max, cp.HasMax = d.float(m, "max", 0), true
	}
	d.rejectUnknown(m, fmt.Sprintf("checkpoints[%d]", i), "at", "series", "min", "max")
	return cp
}

func (d *decoder) bound(item any, i int) Bound {
	m := d.mapping(item, fmt.Sprintf("assert.bounds[%d]", i))
	b := Bound{Metric: d.str(m, "metric", "")}
	if _, ok := m["min"]; ok {
		b.Min, b.HasMin = d.float(m, "min", 0), true
	}
	if _, ok := m["max"]; ok {
		b.Max, b.HasMax = d.float(m, "max", 0), true
	}
	d.rejectUnknown(m, fmt.Sprintf("assert.bounds[%d]", i), "metric", "min", "max")
	return b
}

func fmtDur(d sim.Duration) string {
	return (time.Duration(d) * time.Millisecond).String()
}
