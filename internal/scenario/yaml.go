package scenario

// A hand-written parser for the YAML subset scenario files use. The
// module is dependency-free by policy, so rather than importing a YAML
// library this accepts the fragment the corpus actually needs:
//
//   - block mappings (`key: value`, `key:` + indented block)
//   - block sequences (`- value`, `- key: value` with aligned
//     continuation lines, `-` + indented block)
//   - one-level flow collections (`{a: 1, b: 2}`, `[a, b]`)
//   - comments (`#` to end of line) and blank lines
//   - single- or double-quoted scalars
//
// Anchors, aliases, multi-line scalars, nested flow collections and
// tabs are rejected with positioned errors. Scalars stay strings here;
// the decode layer interprets numbers, booleans and durations, so type
// errors carry schema context rather than parser context.

import (
	"fmt"
	"strings"
)

// yline is one significant (non-blank, non-comment) source line.
type yline struct {
	indent int
	text   string
	n      int // 1-based source line number
}

func lexYAML(src string) ([]yline, error) {
	var out []yline
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range line {
			if r == '\t' {
				return nil, fmt.Errorf("line %d: tab indentation is not supported", i+1)
			}
			if r != ' ' {
				break
			}
			indent++
		}
		out = append(out, yline{indent: indent, text: trimmed, n: i + 1})
	}
	return out, nil
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			return line[:i]
		}
	}
	return line
}

// parseYAML parses a document into nested map[string]any / []any /
// string values.
func parseYAML(src string) (any, error) {
	lines, err := lexYAML(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	pos := 0
	v, err := parseBlock(lines, &pos, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("line %d: unexpected de-indent to column %d", lines[pos].n, lines[pos].indent)
	}
	return v, nil
}

func parseBlock(lines []yline, pos *int, indent int) (any, error) {
	if strings.HasPrefix(lines[*pos].text, "- ") || lines[*pos].text == "-" {
		return parseSequence(lines, pos, indent)
	}
	return parseMapping(lines, pos, indent)
}

func parseMapping(lines []yline, pos *int, indent int) (any, error) {
	m := make(map[string]any)
	for *pos < len(lines) {
		ln := lines[*pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indent", ln.n)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, fmt.Errorf("line %d: sequence item in a mapping block", ln.n)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", ln.n, key)
		}
		*pos++
		if rest != "" {
			v, err := parseScalar(rest, ln.n)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// `key:` with nothing after — a nested block or an empty value.
		if *pos < len(lines) && lines[*pos].indent > indent {
			v, err := parseBlock(lines, pos, lines[*pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func parseSequence(lines []yline, pos *int, indent int) (any, error) {
	var s []any
	for *pos < len(lines) {
		ln := lines[*pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indent", ln.n)
		}
		switch {
		case ln.text == "-":
			*pos++
			if *pos >= len(lines) || lines[*pos].indent <= indent {
				s = append(s, nil)
				continue
			}
			v, err := parseBlock(lines, pos, lines[*pos].indent)
			if err != nil {
				return nil, err
			}
			s = append(s, v)
		case strings.HasPrefix(ln.text, "- "):
			content := strings.TrimSpace(ln.text[2:])
			if isMappingStart(content) {
				// `- key: value`: the item is a mapping whose first entry
				// sits on the dash line. Re-file the content two columns
				// deeper (the canonical alignment of `- key: value`
				// continuations) and parse a mapping block there.
				lines[*pos] = yline{indent: indent + 2, text: content, n: ln.n}
				v, err := parseMapping(lines, pos, indent+2)
				if err != nil {
					return nil, err
				}
				s = append(s, v)
			} else {
				v, err := parseScalar(content, ln.n)
				if err != nil {
					return nil, err
				}
				s = append(s, v)
				*pos++
			}
		default:
			return nil, fmt.Errorf("line %d: mapping entry in a sequence block", ln.n)
		}
	}
	return s, nil
}

// isMappingStart reports whether a sequence item's inline content opens
// a mapping (`key: value` or `key:`) rather than being a plain scalar.
func isMappingStart(content string) bool {
	if strings.HasPrefix(content, "{") || strings.HasPrefix(content, "[") {
		return false
	}
	_, _, err := splitKey(yline{text: content})
	return err == nil
}

// splitKey separates `key: rest` (or trailing `key:`), unquoting the
// key. The colon must be followed by a space or end the line, so
// scalars containing colons (URLs, times) are not mistaken for keys.
func splitKey(ln yline) (key, rest string, err error) {
	text := ln.text
	for i := 0; i < len(text); i++ {
		if text[i] != ':' {
			continue
		}
		if i+1 < len(text) && text[i+1] != ' ' {
			continue
		}
		key = strings.TrimSpace(text[:i])
		if key == "" || strings.ContainsAny(key, "{}[],\"'") {
			break
		}
		return key, strings.TrimSpace(text[i+1:]), nil
	}
	return "", "", fmt.Errorf("line %d: expected `key: value`, got %q", ln.n, text)
}

// parseScalar interprets an inline value: a quoted or plain string, or
// a one-level flow collection.
func parseScalar(s string, lineNo int) (any, error) {
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("line %d: unterminated flow mapping %q", lineNo, s)
		}
		m := make(map[string]any)
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if part == "" {
				continue
			}
			key, rest, err := splitKey(yline{text: part, n: lineNo})
			if err != nil {
				return nil, err
			}
			if strings.ContainsAny(rest, "{}[]") {
				return nil, fmt.Errorf("line %d: nested flow collections are not supported", lineNo)
			}
			m[key] = unquote(rest)
		}
		return m, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow sequence %q", lineNo, s)
		}
		var out []any
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if part == "" {
				continue
			}
			if strings.ContainsAny(part, "{}[]") {
				return nil, fmt.Errorf("line %d: nested flow collections are not supported", lineNo)
			}
			out = append(out, unquote(part))
		}
		return out, nil
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("line %d: YAML %q syntax is not supported", lineNo, s[:1])
	default:
		return unquote(s), nil
	}
}

func splitFlow(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
