package scenario

// Timed fault and load injection. Events are scheduled at world-build
// time in file order; the engine's sequence numbers preserve that order
// for events sharing a timestamp, so a scenario file is a total order
// of what happens.

import (
	"fmt"

	"hetgrid/internal/can"
	"hetgrid/internal/geom"
	"hetgrid/internal/proto"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
)

func (w *World) scheduleEvent(ev *Event, idx int) {
	at := sim.Time(ev.At)
	switch ev.Kind {
	case "fail_nodes":
		w.eng.At(at, func(now sim.Time) {
			for _, id := range w.pickVictims(ev.Count) {
				w.failNode(id)
			}
			w.snapshot(now, fmt.Sprintf("fail_nodes(%d)", ev.Count))
		})
	case "fail_rack":
		// A correlated failure: every live member of the rack fails at
		// once — the grid sees the simultaneous-events regime the paper's
		// high-churn analysis is about, plus the orphan re-match burst.
		w.eng.At(at, func(now sim.Time) {
			for _, id := range w.rackMembers(ev.Rack) {
				w.failNode(id)
			}
			w.snapshot(now, fmt.Sprintf("fail_rack(%d)", ev.Rack))
		})
	case "partition":
		w.eng.At(at, func(now sim.Time) {
			if ev.Rack >= 0 {
				w.part.Isolate(w.rackMembers(ev.Rack)...)
			} else {
				n := int(float64(len(w.aliveIDs()))*ev.Fraction + 0.5)
				w.part.Isolate(w.pickVictims(n)...)
			}
			w.snapshot(now, "partition")
		})
	case "heal":
		w.eng.At(at, func(now sim.Time) {
			w.part.HealAll()
			w.snapshot(now, "heal")
		})
	case "burst":
		// A flash crowd: Count jobs arrive back-to-back from the shared
		// workload generator (shared so job ids stay unique), all at the
		// event instant.
		w.eng.At(at, func(now sim.Time) {
			if w.jgen == nil {
				w.violate("events[%d]: burst without a workload section", idx)
				return
			}
			for i := 0; i < ev.Count; i++ {
				w.submitNext(now)
			}
			w.snapshot(now, fmt.Sprintf("burst(%d)", ev.Count))
		})
	case "join_wave":
		w.eng.At(at, func(now sim.Time) {
			for i := 0; i < ev.Count; i++ {
				w.eng.After(sim.Duration(i)*ev.Gap, func(sim.Time) {
					if _, err := w.admit(w.ngen.One()); err != nil {
						w.violate("events[%d]: join_wave admission: %v", idx, err)
					}
				})
			}
			w.snapshot(now, fmt.Sprintf("join_wave(%d)", ev.Count))
		})
	case "churn":
		// Sustained background churn through the protocol driver: joins
		// come from the scenario fleet generator, departures split
		// between silent failures and graceful leaves, and every
		// execution-plane consequence (orphan re-match, conservation)
		// rides the driver's hooks.
		d := proto.NewChurnDriver(w.psim, proto.ChurnConfig{
			MeanEventGap: ev.Gap,
			FailFraction: ev.FailFraction,
			MinNodes:     minChurnPopulation(w.spec.Grid.Nodes),
			Seed:         rng.Split(w.spec.Seed, fmt.Sprintf("scenario.churn.%d", idx)),
		})
		d.JoinPoint = func() (geom.Point, *resource.NodeCaps) {
			caps := w.ngen.One()
			return w.space.NodePoint(caps), caps
		}
		d.OnJoin = func(id can.NodeID) {
			w.track(id, w.psim.Overlay().Node(id).Caps)
		}
		d.OnLeave = func(id can.NodeID, failed bool) {
			if failed {
				w.fails++
			} else {
				w.leaves++
			}
			delete(w.rack, id)
			w.requeue(w.cluster.RemoveNode(id))
			w.checkConservation(fmt.Sprintf("after churn departure of node %d", id))
		}
		w.eng.At(at, func(now sim.Time) {
			d.Start()
			w.snapshot(now, "churn_start")
		})
		if ev.Until > 0 {
			w.eng.At(sim.Time(ev.Until), func(now sim.Time) {
				d.Stop()
				w.snapshot(now, "churn_stop")
			})
		}
	}
}

// minChurnPopulation floors the churn driver's population so sustained
// churn hovers around the fleet size rather than draining it.
func minChurnPopulation(fleet int) int {
	if fleet/2 > 4 {
		return fleet / 2
	}
	return 4
}
