package scenario

// The result of a scenario run: a flat metric map for bound assertions
// and a deterministic plain-text report. Rendering is fully ordered —
// metrics in a fixed declaration order, violations in occurrence order,
// floats at fixed precision — so two runs of the same spec and seed
// produce byte-identical reports.

import (
	"fmt"
	"math"
	"strings"

	"hetgrid/internal/metrics"
)

// Result is the outcome of one scenario run.
type Result struct {
	Spec       *Spec
	Metrics    map[string]float64
	Timeline   []string // per-event metric snapshots + checkpoint rows, in firing order
	Violations []string // empty iff every assertion held
	Report     string   // deterministic plain-text rendering

	// Telemetry is the run's sampled plane (always attached; see
	// telemetry.go). Drivers may export it — the stream is as
	// deterministic as the report.
	Telemetry *metrics.Plane
}

// Passed reports whether every assertion held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// metricNames fixes the report order and the vocabulary `assert.bounds`
// may reference. Adding a metric here is the single change needed to
// expose it to bound assertions.
var metricNames = []string{
	"submitted",      // jobs entering the system (arrivals + bursts)
	"placed",         // first-time placements that succeeded
	"place_failed",   // first-time placements no node could satisfy
	"finished",       // jobs that ran to completion
	"queued",         // jobs still waiting at the horizon
	"running",        // jobs still executing at the horizon
	"requeued",       // orphans re-matched after an injected failure
	"lost",           // orphans no remaining node could satisfy
	"fails",          // silent node failures injected
	"leaves",         // graceful departures (churn)
	"joins",          // nodes admitted (initial fleet + waves + churn)
	"nodes",          // live hosts at the horizon
	"link_drops",     // messages dropped by partitions
	"broken_missing", // oracle: missing neighbor links at the horizon
	"broken_stale",   // oracle: stale neighbor links at the horizon
	"mean_wait_s",    // mean job wait, seconds (finished jobs)
	"max_wait_s",     // max job wait, seconds (finished jobs)
}

func validMetric(name string) bool {
	for _, m := range metricNames {
		if m == name {
			return true
		}
	}
	return false
}

func knownMetrics() []string { return metricNames }

// metrics snapshots the world's ledger as the flat metric map.
func (w *World) metrics() map[string]float64 {
	queued, running := w.cluster.Totals()
	missing, stale := w.psim.BrokenLinks()
	return map[string]float64{
		"submitted":      float64(w.cluster.Submitted()),
		"placed":         float64(w.placed),
		"place_failed":   float64(w.placeFailed),
		"finished":       float64(w.cluster.Finished()),
		"queued":         float64(queued),
		"running":        float64(running),
		"requeued":       float64(w.requeued),
		"lost":           float64(w.lost),
		"fails":          float64(w.fails),
		"leaves":         float64(w.leaves),
		"joins":          float64(w.joins),
		"nodes":          float64(w.psim.AliveHosts()),
		"link_drops":     float64(w.pnet.LinkDrops()),
		"broken_missing": float64(missing),
		"broken_stale":   float64(stale),
		"mean_wait_s":    w.waits.Mean(),
		"max_wait_s":     w.waits.Max(),
	}
}

func (w *World) result() *Result {
	r := &Result{
		Spec:       w.spec,
		Metrics:    w.metrics(),
		Timeline:   append([]string(nil), w.timeline...),
		Violations: append([]string(nil), w.violations...),
		Telemetry:  w.plane,
	}
	r.Report = renderReport(r)
	return r
}

func renderReport(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d, horizon %s)\n", r.Spec.Name, r.Spec.Seed, fmtDur(r.Spec.Duration))
	for _, name := range metricNames {
		fmt.Fprintf(&b, "  %-14s %s\n", name, fmtMetric(r.Metrics[name]))
	}
	if len(r.Timeline) > 0 {
		b.WriteString("timeline:\n")
		for _, row := range r.Timeline {
			fmt.Fprintf(&b, "  %s\n", row)
		}
	}
	if r.Passed() {
		b.WriteString("PASS\n")
	} else {
		fmt.Fprintf(&b, "FAIL (%d violations)\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  ! %s\n", v)
		}
	}
	return b.String()
}

// fmtMetric renders counts without a fraction and continuous metrics at
// two decimals — fixed precision keeps the report byte-stable.
func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
