package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	got, err := parseYAML(`
# a comment
name: demo   # trailing comment
quoted: "a: b # not a comment"
empty:
grid:
  nodes: 10
  nested:
    deep: yes
list:
  - plain
  - key: v1
    other: v2
  - {a: 1, b: 2}
flow: [x, y, z]
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":   "demo",
		"quoted": "a: b # not a comment",
		"empty":  nil,
		"grid": map[string]any{
			"nodes":  "10",
			"nested": map[string]any{"deep": "yes"},
		},
		"list": []any{
			"plain",
			map[string]any{"key": "v1", "other": "v2"},
			map[string]any{"a": "1", "b": "2"},
		},
		"flow": []any{"x", "y", "z"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLSequenceOfBlocks(t *testing.T) {
	got, err := parseYAML(`
events:
  - at: 1m
    fail_nodes: 3
  - at: 2m
    burst: {jobs: 40}
`)
	if err != nil {
		t.Fatal(err)
	}
	evs := got.(map[string]any)["events"].([]any)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].(map[string]any)["fail_nodes"] != "3" {
		t.Errorf("event 0 = %#v", evs[0])
	}
	if b := evs[1].(map[string]any)["burst"].(map[string]any); b["jobs"] != "40" {
		t.Errorf("event 1 burst = %#v", b)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "a:\n\tb: 1", "tab indentation"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
		{"bad indent", "a: 1\n  b: 2", "unexpected indent"},
		{"seq in map", "a: 1\n- b", "sequence item in a mapping"},
		{"map in seq", "x:\n  - a\n  b: 1", "mapping entry in a sequence"},
		{"unterminated flow map", "a: {x: 1", "unterminated flow mapping"},
		{"unterminated flow seq", "a: [1, 2", "unterminated flow sequence"},
		{"nested flow", "a: {x: [1]}", "nested flow"},
		{"anchor", "a: &x 1", "not supported"},
		{"block scalar", "a: |", "not supported"},
		{"no key", "just a scalar line", "expected `key: value`"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	got, err := parseYAML("# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := got.(map[string]any); !ok || len(m) != 0 {
		t.Fatalf("got %#v, want empty mapping", got)
	}
}
