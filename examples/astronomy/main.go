// Astronomy campaign: the paper's conclusion mentions a testbed built
// with the Maryland Astronomy department. This example models that kind
// of campaign: image-calibration jobs (CPU-bound, modest memory),
// N-body simulation jobs (CUDA-style, GPU dominant) and spectral
// fitting (multi-core, memory hungry), submitted to a shared
// departmental desktop grid overnight.
//
//	go run ./examples/astronomy
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

type jobKind struct {
	name string
	spec hetgrid.JobSpec
	n    int

	handles   []*hetgrid.JobHandle
	unmatched int
}

func main() {
	grid, err := hetgrid.New(hetgrid.Options{GPUSlots: 2, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	// The department's machines: many modest desktops, a few GPU
	// workstations, one beefy reduction server.
	if _, err := grid.AddRandomNodes(120); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := grid.AddNode(hetgrid.NodeSpec{
			CPU:    hetgrid.CPUSpec{Clock: 2.6, Cores: 8, MemoryGB: 16},
			GPUs:   []hetgrid.GPUSpec{{Slot: 1, Clock: 1.4, Cores: 448, MemoryGB: 6}},
			DiskGB: 1000,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := grid.AddNode(hetgrid.NodeSpec{
		CPU:    hetgrid.CPUSpec{Clock: 3.4, Cores: 8, MemoryGB: 16},
		DiskGB: 1000,
	}); err != nil {
		log.Fatal(err)
	}

	campaign := []*jobKind{
		{name: "calibrate", n: 120, spec: hetgrid.JobSpec{
			CPU:           &hetgrid.CEReqSpec{Clock: 1.0, Cores: 2, MemoryGB: 2},
			DiskGB:        40,
			DurationHours: 0.6,
		}},
		{name: "nbody-gpu", n: 40, spec: hetgrid.JobSpec{
			CPU:           &hetgrid.CEReqSpec{Cores: 1},
			GPU:           &hetgrid.CEReqSpec{Clock: 1.0, Cores: 240, MemoryGB: 2},
			GPUSlot:       1,
			DurationHours: 1.2,
		}},
		{name: "spectral-fit", n: 30, spec: hetgrid.JobSpec{
			CPU:           &hetgrid.CEReqSpec{Clock: 1.8, Cores: 4, MemoryGB: 8},
			DurationHours: 0.9,
		}},
	}

	// Interleave submissions through the night, one every 45 s.
	for remaining := true; remaining; {
		remaining = false
		for _, k := range campaign {
			if len(k.handles)+k.unmatched >= k.n {
				continue
			}
			remaining = true
			if h, err := grid.Submit(k.spec); err != nil {
				k.unmatched++
			} else {
				k.handles = append(k.handles, h)
			}
			grid.RunFor(45)
		}
	}
	grid.Run() // finish the campaign

	fmt.Printf("overnight campaign on a %d-node departmental grid (%s matchmaker):\n\n",
		grid.Nodes(), grid.SchedulerName())
	fmt.Printf("  %-12s %6s %12s %12s %12s\n", "kind", "jobs", "mean wait", "max wait", "unmatchable")
	for _, k := range campaign {
		var sum, max float64
		for _, h := range k.handles {
			w := h.WaitSeconds()
			sum += w
			if w > max {
				max = w
			}
		}
		mean := 0.0
		if len(k.handles) > 0 {
			mean = sum / float64(len(k.handles))
		}
		fmt.Printf("  %-12s %6d %11.0fs %11.0fs %12d\n", k.name, len(k.handles), mean, max, k.unmatched)
	}

	st := grid.Stats()
	fmt.Printf("\ngrid-wide: %d jobs finished, %.0f%% started instantly, mean wait %.0fs, campaign took %.1f h\n",
		st.Finished, 100*st.ZeroWaitShare, st.MeanWaitSec, grid.NowSeconds()/3600)
}
