// GPU cluster: the scenario from the paper's introduction — a desktop
// grid where some machines carry CUDA-capable GPUs and a stream of
// mixed CPU/GPU jobs arrives. Compares the heterogeneity-aware
// matchmaker (can-het) against the prior heterogeneity-oblivious one
// (can-hom) and the centralized upper bound, on identical workloads.
//
//	go run ./examples/gpucluster
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

const (
	nodes   = 200
	jobs    = 2000
	gapSecs = 15.0 // mean inter-arrival
)

func runScheme(scheme hetgrid.Scheme) hetgrid.GridStats {
	grid, err := hetgrid.New(hetgrid.Options{GPUSlots: 2, Scheme: scheme, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Identical population per scheme: same seed drives the generator.
	if _, err := grid.AddRandomNodes(nodes); err != nil {
		log.Fatal(err)
	}

	// Identical job stream per scheme. Roughly 40% CUDA-style GPU jobs
	// (the GPU dominates), 60% CPU jobs, arrivals ~15 s apart.
	unmatched := 0
	for i := 0; i < jobs; i++ {
		spec := hetgrid.JobSpec{
			CPU:           &hetgrid.CEReqSpec{Clock: 0.8, Cores: 1 + i%2},
			DurationHours: 0.5 + float64(i%5)*0.25,
		}
		if i%5 < 2 {
			spec.CPU = &hetgrid.CEReqSpec{Cores: 1}
			spec.GPU = &hetgrid.CEReqSpec{Clock: 0.6, Cores: 64 << (i % 2)}
			spec.GPUSlot = 1 + i%2
		}
		if _, err := grid.Submit(spec); err != nil {
			unmatched++
		}
		grid.RunFor(gapSecs)
	}
	grid.Run()
	if unmatched > 0 {
		fmt.Printf("  (%s: %d jobs unmatchable)\n", scheme, unmatched)
	}
	return grid.Stats()
}

func main() {
	fmt.Printf("mixed CPU/GPU workload: %d nodes, %d jobs, one every %.0fs\n\n", nodes, jobs, gapSecs)
	fmt.Printf("%-10s %12s %12s %12s %14s\n", "scheme", "mean wait", "p90 wait", "p99 wait", "zero-wait")
	for _, scheme := range []hetgrid.Scheme{hetgrid.SchemeCanHet, hetgrid.SchemeCanHom, hetgrid.SchemeCentral} {
		st := runScheme(scheme)
		fmt.Printf("%-10s %11.0fs %11.0fs %11.0fs %13.1f%%\n",
			scheme, st.MeanWaitSec, st.P90WaitSec, st.P99WaitSec, 100*st.ZeroWaitShare)
	}
	fmt.Println("\nThe heterogeneity-aware scheme tracks the centralized matchmaker;")
	fmt.Println("the GPU-blind baseline parks GPU jobs behind busy accelerators.")
}
