// Quickstart: build a small heterogeneous P2P grid, submit a handful of
// jobs, and watch where the decentralized matchmaker puts them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

func main() {
	// A grid whose CAN can express two distinct GPU types (the paper's
	// 11-dimensional configuration).
	grid, err := hetgrid.New(hetgrid.Options{GPUSlots: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// A few hand-specified desktops...
	workstation := hetgrid.NodeSpec{
		CPU:    hetgrid.CPUSpec{Clock: 3.0, Cores: 8, MemoryGB: 16},
		GPUs:   []hetgrid.GPUSpec{{Slot: 1, Clock: 1.4, Cores: 448, MemoryGB: 6}},
		DiskGB: 500,
	}
	laptop := hetgrid.NodeSpec{
		CPU:    hetgrid.CPUSpec{Clock: 1.8, Cores: 2, MemoryGB: 4},
		DiskGB: 120,
	}
	if _, err := grid.AddNode(workstation); err != nil {
		log.Fatal(err)
	}
	if _, err := grid.AddNode(laptop); err != nil {
		log.Fatal(err)
	}
	// ...plus a synthetic population like the paper's evaluation uses.
	if _, err := grid.AddRandomNodes(48); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid up: %d nodes in a %d-dimensional CAN, matchmaker %s\n\n",
		grid.Nodes(), grid.Dims(), grid.SchedulerName())

	// Submit a mixed batch: CPU number-crunching and CUDA-style GPU
	// jobs. The matchmaker routes each job through the CAN and pushes
	// it toward an under-loaded node for its dominant CE.
	var handles []*hetgrid.JobHandle
	for i := 0; i < 12; i++ {
		spec := hetgrid.JobSpec{
			CPU:           &hetgrid.CEReqSpec{Clock: 1.0, Cores: 2},
			DurationHours: 1,
		}
		if i%3 == 0 {
			// GPU job: one CPU control core plus an accelerator.
			spec = hetgrid.JobSpec{
				CPU:           &hetgrid.CEReqSpec{Cores: 1},
				GPU:           &hetgrid.CEReqSpec{Clock: 0.8, Cores: 128},
				GPUSlot:       1,
				DurationHours: 1,
			}
		}
		h, err := grid.Submit(spec)
		if err != nil {
			log.Printf("job %d unmatchable: %v", i, err)
			continue
		}
		handles = append(handles, h)
		grid.RunFor(60) // jobs arrive a minute apart
	}

	grid.Run() // drain

	fmt.Println("job outcomes:")
	for _, h := range handles {
		fmt.Printf("  job %2d  dominant=%-5s node=%-3d wait=%6.0fs  turnaround=%6.0fs\n",
			h.ID(), h.DominantCE(), h.RunNode(), h.WaitSeconds(), h.TurnaroundSeconds())
	}

	st := grid.Stats()
	fmt.Printf("\nsummary: %d/%d finished, mean wait %.0fs, %.0f%% started instantly\n",
		st.Finished, st.Submitted, st.MeanWaitSec, 100*st.ZeroWaitShare)
}
