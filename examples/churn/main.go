// Churn resilience: the maintenance plane of the paper (Section IV).
// Runs the three heartbeat schemes — vanilla, compact, adaptive — over
// an 11-dimensional CAN under high churn (events faster than the
// heartbeat period) and reports broken links and traffic, reproducing
// the trade-off of Figures 7 and 8 interactively.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"hetgrid"
)

func main() {
	const (
		nodes       = 300
		heartbeat   = 30.0 // seconds
		eventGap    = 8.0  // mean seconds between churn events: high churn
		horizonSecs = 4000.0
		sampleEvery = 400.0
	)
	fmt.Printf("high churn: %d nodes, heartbeat %.0fs, one join/leave every ~%.0fs\n\n",
		nodes, heartbeat, eventGap)

	for _, scheme := range []hetgrid.HeartbeatScheme{
		hetgrid.HeartbeatVanilla, hetgrid.HeartbeatCompact, hetgrid.HeartbeatAdaptive,
	} {
		m, err := hetgrid.NewMaintenance(hetgrid.MaintenanceOptions{
			Dims:             11,
			Scheme:           scheme,
			HeartbeatSeconds: heartbeat,
			Seed:             3,
		}, nodes, eventGap)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", scheme)
		fmt.Printf("  %10s %8s %8s %8s\n", "time(s)", "alive", "broken", "stale")
		var totalBroken, samples int
		for t := sampleEvery; t <= horizonSecs; t += sampleEvery {
			m.RunForSeconds(sampleEvery)
			missing, stale := m.BrokenLinks()
			totalBroken += missing
			samples++
			fmt.Printf("  %10.0f %8d %8d %8d\n", m.NowSeconds(), m.AliveNodes(), missing, stale)
		}
		joins, leaves, fails := m.Churn()
		tr := m.TotalTraffic()
		fmt.Printf("  mean broken links: %.1f  (joins=%d leaves=%d fails=%d)\n",
			float64(totalBroken)/float64(samples), joins, leaves, fails)
		fmt.Printf("  traffic: %d messages, %.1f MB total\n\n",
			tr.Messages, float64(tr.Bytes)/1e6)
	}
	fmt.Println("vanilla repairs best but moves the most bytes; compact is cheap but")
	fmt.Println("brittle; adaptive recovers vanilla's resilience at compact's cost.")
}
