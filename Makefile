# hetgrid build/verify harness.
#
#   make verify   — everything the CI gate runs: build, vet, race tests,
#                   and a short benchmark pass that regenerates
#                   BENCH_2.json against the BENCH_1.json baseline and
#                   fails on >15% ns/op regressions.

GO ?= go
BENCHTMP ?= /tmp/hetgrid_bench

.PHONY: all build vet test race bench verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_2.json: the figure drivers run at 3 iterations
# (each iteration is a full reduced-scale experiment); the hot-path
# micro-benchmarks run at 1000 so the overlay caches' one-time build
# cost amortizes out and ns/op reflects the steady state (the pre-cache
# baselines are iteration-count-independent, so the comparison is
# unaffected). Each suite runs 3 times (-count 3) and benchjson keeps
# the fastest run per benchmark — the low-noise estimator — before
# embedding BENCH_1.json entries as baselines; the gate then fails the
# build when any entry still regresses >15% ns/op.
bench:
	$(GO) test -run '^$$' -bench 'Fig5InterArrival|Fig8Messages|HeartbeatRound|WorkloadGen' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_figs.txt
	$(GO) test -run '^$$' -bench 'Placement|PlaceSteadyState|AggRefresh' \
		-benchmem -benchtime 1000x -count 3 . | tee $(BENCHTMP)_hot.txt
	cat $(BENCHTMP)_figs.txt $(BENCHTMP)_hot.txt > $(BENCHTMP)_all.txt
	$(GO) run ./cmd/benchjson -parse $(BENCHTMP)_all.txt -pr 2 -prev BENCH_1.json -gate 15 -out BENCH_2.json

verify: build vet race bench
