# hetgrid build/verify harness.
#
#   make verify   — everything the CI gate runs: build, vet, race tests,
#                   a short benchmark pass that regenerates BENCH_10.json
#                   against the BENCH_9.json baseline and fails on >15%
#                   ns/op or allocs/op regressions, the 10k-node ScaleXL,
#                   100k-node ScaleXXL and 1M-node ScaleXXXL smoke runs,
#                   and telemetry smoke runs that exercise the
#                   metrics/trace exports — including the sharded
#                   telemetry plane, the scenario metric checkpoints and
#                   the fixed-vs-adaptive window-policy byte comparison.

GO ?= go
BENCHTMP ?= /tmp/hetgrid_bench
ARTIFACTS ?= artifacts

.PHONY: all build vet test race bench bench-xl bench-xxl bench-xxxl metrics-smoke scenario-smoke verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_10.json: the figure drivers run at 3 iterations
# (each iteration is a full reduced-scale experiment); the hot-path
# micro-benchmarks run at 1000 so the overlay caches' one-time build
# cost amortizes out and ns/op reflects the steady state (the pre-cache
# baselines are iteration-count-independent, so the comparison is
# unaffected). Each suite repeats (-count; 10 for the millisecond-cheap
# hot suite, 5 for the figure drivers) and benchjson keeps the fastest
# run per benchmark — the low-noise estimator (external interference
# only ever adds time, so min-of-N converges on the true cost as N
# grows; 3 was not enough on busy shared runners) — before
# embedding BENCH_7.json entries as baselines; the gate then fails the
# build when any entry regresses >15% ns/op, or grows its allocs/op by
# more than 15% and at least one whole allocation (so the zero-alloc
# hot paths fail on any new allocation). The microsecond-scale hot
# suite runs first, while the machine is coolest; the 10k-node
# incremental-aggregation and churn-storm suites run at 100 iterations
# (their all-dirty / full-rebuild cases cost milliseconds each). The
# figure-driver and aggregation suites each run as TWO separate go
# test processes: their run-to-run variance is process-level, not
# iteration-level (the same binary has measured Fig8 vanilla/dims=11
# at 112 ms in one process and 145–180 ms across all -count repeats of
# another — heap layout and host frequency state stick for a process
# lifetime), so min-of-N only converges when the N samples come from
# independent processes. The sharded-engine suite runs as two processes
# for the same reason; its entries carry the runner's GOMAXPROCS in the
# JSON, and the gate only compares them against baselines measured at
# the same parallelism (see cmd/benchjson). The sharded telemetry
# overhead pair (metrics=off / metrics=on over the identical heartbeat
# workload) also runs as two processes; its gated entries keep the
# plane's barrier-merge cost from creeping. The batched-admission churn
# pair (ChurnStormSharded W=1 / W=max) runs the same way: it prices
# churn prep, barrier flushes and parallel completions, and gating it
# keeps the serial ChurnStorm entry honest — batching must not creep
# back into the serial path. The window-policy pair
# (ShardedHeartbeatAdaptive, window=fixed / window=adaptive over the
# identical heartbeat steady state) joins the two-process suites: its
# fixed entry keeps the policy dispatch from taxing the fixed path and
# its adaptive entry prices the wide-window machinery; the anchored
# regex keeps the ungated 100k smoke variant out of the gate.
bench:
	$(GO) test -run '^$$' -bench 'Placement|PlaceSteadyState|AggRefresh$$' \
		-benchmem -benchtime 1000x -count 10 . | tee $(BENCHTMP)_hot.txt
	$(GO) test -run '^$$' -bench 'AggRefreshIncremental|ChurnStorm$$' \
		-benchmem -benchtime 100x -count 3 . | tee $(BENCHTMP)_agg1.txt
	$(GO) test -run '^$$' -bench 'AggRefreshIncremental|ChurnStorm$$' \
		-benchmem -benchtime 100x -count 3 . | tee $(BENCHTMP)_agg2.txt
	$(GO) test -run '^$$' -bench 'ShardedEngine' \
		-benchmem -benchtime 100x -count 3 . | tee $(BENCHTMP)_shard1.txt
	$(GO) test -run '^$$' -bench 'ShardedEngine' \
		-benchmem -benchtime 100x -count 3 . | tee $(BENCHTMP)_shard2.txt
	$(GO) test -run '^$$' -bench 'ShardedHeartbeatMetricsOverhead' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_tele1.txt
	$(GO) test -run '^$$' -bench 'ShardedHeartbeatMetricsOverhead' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_tele2.txt
	$(GO) test -run '^$$' -bench 'ChurnStormSharded$$' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_batch1.txt
	$(GO) test -run '^$$' -bench 'ChurnStormSharded$$' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_batch2.txt
	$(GO) test -run '^$$' -bench 'ShardedHeartbeatAdaptive$$' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_win1.txt
	$(GO) test -run '^$$' -bench 'ShardedHeartbeatAdaptive$$' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_win2.txt
	$(GO) test -run '^$$' -bench 'Fig5InterArrival|Fig8Messages|HeartbeatRound|ChurnRound|WorkloadGen' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_figs1.txt
	$(GO) test -run '^$$' -bench 'Fig5InterArrival|Fig8Messages|HeartbeatRound|ChurnRound|WorkloadGen' \
		-benchmem -benchtime 3x -count 3 . | tee $(BENCHTMP)_figs2.txt
	cat $(BENCHTMP)_figs1.txt $(BENCHTMP)_figs2.txt \
		$(BENCHTMP)_agg1.txt $(BENCHTMP)_agg2.txt \
		$(BENCHTMP)_shard1.txt $(BENCHTMP)_shard2.txt \
		$(BENCHTMP)_tele1.txt $(BENCHTMP)_tele2.txt \
		$(BENCHTMP)_batch1.txt $(BENCHTMP)_batch2.txt \
		$(BENCHTMP)_win1.txt $(BENCHTMP)_win2.txt $(BENCHTMP)_hot.txt > $(BENCHTMP)_all.txt
	$(GO) run ./cmd/benchjson -parse $(BENCHTMP)_all.txt -pr 10 -prev BENCH_9.json -gate 15 -out BENCH_10.json

# bench-xl is the extra-large smoke: one full 10,000-node load-balance
# run (reduced job count), proving the incremental aggregation plane
# holds up an order of magnitude past the paper's evaluation. Kept out
# of the BENCH_*.json gate — a single iteration is too noisy to gate,
# and the incremental suite above already gates the underlying costs.
bench-xl:
	$(GO) test -run '^$$' -bench 'ScaleXLLoadBalance' \
		-benchtime 1x -count 1 -timeout 20m . | tee $(BENCHTMP)_xl.txt

# bench-xxl is the churn-regime smoke two orders past the paper's
# evaluation: one full 100,000-node load-balance run, the
# 100k-population churn-storm comparison (journal splice vs full
# rebuild), and two sharded-core speedup pairs over identical 100k-node
# workloads at one worker and at GOMAXPROCS — pure heartbeats
# (ShardedHeartbeat100k) and heartbeats under sustained batched-
# admission churn (ChurnStormSharded100k); each pair's W=1/W=max ns/op
# ratio in the log is the engine's parallel speedup on this runner.
# The window-policy smoke (ShardedHeartbeatAdaptive100k) runs the same
# 100k heartbeat steady state under the fixed and adaptive policies:
# its fixed/adaptive ns/op ratio is the widening's wall-clock win, and
# it fails outright unless adaptive cuts the barrier count ≥ 10×.
# Ungated like bench-xl — single iterations are too noisy to gate, and
# the 10k ChurnStorm entry in the BENCH_*.json gate already pins the
# splice path's cost — but the run fails outright if the splice path
# stops engaging (the benchmark asserts every refresh spliced) or if
# the churn storm never injects a failure. The generous timeout is
# headroom for slow shared runners.
bench-xxl:
	$(GO) test -run '^$$' -bench 'ScaleXXLLoadBalance|ChurnStormXXL|ShardedHeartbeat100k|ChurnStormSharded100k|ShardedHeartbeatAdaptive100k' \
		-benchtime 1x -count 1 -timeout 60m . | tee $(BENCHTMP)_xxl.txt

# bench-xxxl is the million-node smoke — the regime the sharded core
# exists for: one full ScaleXXXL load-balance run (reduced job count)
# proving that a seven-figure grid completes end to end. Ungated like
# its siblings; the timeout is sized for slow shared runners.
bench-xxxl:
	$(GO) test -run '^$$' -bench 'ScaleXXXLLoadBalance' \
		-benchtime 1x -count 1 -timeout 120m . | tee $(BENCHTMP)_xxxl.txt

# metrics-smoke exercises the whole telemetry plane end to end at tiny
# scale: the measured heartbeat-volume figure with sampled metrics, a
# load-balancing run with metrics + placement-span tracing, the
# traceview span tree over the result, and the sharded core's
# barrier-merged telemetry exported as both JSONL and CSV. Artifacts
# land in $(ARTIFACTS)/ (uploaded by CI).
metrics-smoke: build
	mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/figures -fig hb -scale 0.04 -seed 1 \
		-metrics $(ARTIFACTS)/fighb_metrics.jsonl -out $(ARTIFACTS)/fighb.txt
	$(GO) run ./cmd/hetgridsim -nodes 60 -jobs 300 -arrival 20 \
		-metrics $(ARTIFACTS)/lb_metrics.jsonl -trace $(ARTIFACTS)/lb_trace.jsonl \
		> $(ARTIFACTS)/lb.txt
	$(GO) run ./cmd/traceview -spans -top 5 $(ARTIFACTS)/lb_trace.jsonl \
		> $(ARTIFACTS)/lb_spans.txt
	$(GO) run ./cmd/figures -fig sharded -scale 0.04 -seed 1 -metrics-interval 10 \
		-metrics $(ARTIFACTS)/sharded_metrics.jsonl \
		-metrics-csv $(ARTIFACTS)/sharded_metrics.csv -out $(ARTIFACTS)/sharded.txt
	@test -s $(ARTIFACTS)/fighb_metrics.jsonl || { echo "metrics-smoke: empty figure telemetry"; exit 1; }
	@test -s $(ARTIFACTS)/lb_metrics.jsonl || { echo "metrics-smoke: empty run telemetry"; exit 1; }
	@test -s $(ARTIFACTS)/sharded_metrics.jsonl || { echo "metrics-smoke: empty sharded telemetry"; exit 1; }
	@test -s $(ARTIFACTS)/sharded_metrics.csv || { echo "metrics-smoke: empty sharded CSV telemetry"; exit 1; }
	@grep -q place.match $(ARTIFACTS)/lb_trace.jsonl || { echo "metrics-smoke: no placement spans in trace"; exit 1; }
	@echo "metrics-smoke: ok ($$(wc -l < $(ARTIFACTS)/lb_metrics.jsonl) metric points, $$(wc -l < $(ARTIFACTS)/lb_trace.jsonl) trace events, $$(wc -l < $(ARTIFACTS)/sharded_metrics.jsonl) sharded points)"

# scenario-smoke lints and executes the whole fault-injection corpus
# (examples/scenarios/) through the CLI — churn_storm_sharded runs on
# the sharded parallel core by its own `engine: sharded` key — failing
# on any assertion violation, then re-runs one scenario with telemetry
# export and byte-compares both the reports and the exported streams —
# the determinism contract the engine promises. The sharded engine gets
# the same treatment cross-engine: the churn-storm scenario runs under
# -engine serial, -shards 1 and -shards 4 and all three reports must be
# byte-identical (the engine key buys wall-clock only, never accuracy).
# The window policy gets the same differential treatment: the
# churn-storm scenario runs under -window fixed and -window adaptive
# with telemetry export, and both the reports and the exported streams
# must be byte-identical — widening a window buys wall-clock only,
# never a different history (DESIGN.md §15).
# It also tightens a metric checkpoint past what the run achieves and
# requires the CLI to exit non-zero, proving checkpoints actually gate.
# Reports land in $(ARTIFACTS)/ (uploaded by CI).
scenario-smoke: build
	mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/hetgridsim validate examples/scenarios/*.yaml
	$(GO) run ./cmd/hetgridsim run examples/scenarios/*.yaml \
		| tee $(ARTIFACTS)/scenarios.txt
	$(GO) run ./cmd/hetgridsim run -metrics $(ARTIFACTS)/rack_failure_a.jsonl \
		examples/scenarios/rack_failure.yaml > $(ARTIFACTS)/rack_failure_a.txt
	$(GO) run ./cmd/hetgridsim run -metrics $(ARTIFACTS)/rack_failure_b.jsonl \
		examples/scenarios/rack_failure.yaml > $(ARTIFACTS)/rack_failure_b.txt
	@cmp $(ARTIFACTS)/rack_failure_a.txt $(ARTIFACTS)/rack_failure_b.txt \
		|| { echo "scenario-smoke: report not byte-identical across runs"; exit 1; }
	@cmp $(ARTIFACTS)/rack_failure_a.jsonl $(ARTIFACTS)/rack_failure_b.jsonl \
		|| { echo "scenario-smoke: telemetry not byte-identical across runs"; exit 1; }
	@test -s $(ARTIFACTS)/rack_failure_a.jsonl \
		|| { echo "scenario-smoke: empty scenario telemetry"; exit 1; }
	$(GO) run ./cmd/hetgridsim run -engine serial examples/scenarios/churn_storm_sharded.yaml \
		> $(ARTIFACTS)/churn_storm_serial.txt
	$(GO) run ./cmd/hetgridsim run -engine sharded -shards 1 examples/scenarios/churn_storm_sharded.yaml \
		> $(ARTIFACTS)/churn_storm_s1.txt
	$(GO) run ./cmd/hetgridsim run -engine sharded -shards 4 examples/scenarios/churn_storm_sharded.yaml \
		> $(ARTIFACTS)/churn_storm_s4.txt
	@cmp $(ARTIFACTS)/churn_storm_serial.txt $(ARTIFACTS)/churn_storm_s4.txt \
		|| { echo "scenario-smoke: sharded report not byte-identical to serial"; exit 1; }
	@cmp $(ARTIFACTS)/churn_storm_s1.txt $(ARTIFACTS)/churn_storm_s4.txt \
		|| { echo "scenario-smoke: S=1 and S=4 reports differ"; exit 1; }
	$(GO) run ./cmd/hetgridsim run -window fixed -metrics $(ARTIFACTS)/churn_storm_wfixed.jsonl \
		examples/scenarios/churn_storm_sharded.yaml > $(ARTIFACTS)/churn_storm_wfixed.txt
	$(GO) run ./cmd/hetgridsim run -window adaptive -metrics $(ARTIFACTS)/churn_storm_wadaptive.jsonl \
		examples/scenarios/churn_storm_sharded.yaml > $(ARTIFACTS)/churn_storm_wadaptive.txt
	@cmp $(ARTIFACTS)/churn_storm_wfixed.txt $(ARTIFACTS)/churn_storm_wadaptive.txt \
		|| { echo "scenario-smoke: fixed and adaptive window reports differ"; exit 1; }
	@cmp $(ARTIFACTS)/churn_storm_wfixed.jsonl $(ARTIFACTS)/churn_storm_wadaptive.jsonl \
		|| { echo "scenario-smoke: fixed and adaptive window telemetry differs"; exit 1; }
	@cmp $(ARTIFACTS)/churn_storm_s4.txt $(ARTIFACTS)/churn_storm_wadaptive.txt \
		|| { echo "scenario-smoke: adaptive window report diverged from serial-parity baseline"; exit 1; }
	@sed 's/^    min: 36$$/    min: 40/' examples/scenarios/checkpointed_recovery.yaml \
		> $(ARTIFACTS)/checkpoint_violated.yaml
	@if $(GO) run ./cmd/hetgridsim run $(ARTIFACTS)/checkpoint_violated.yaml \
		> $(ARTIFACTS)/checkpoint_violated.txt 2>&1; then \
		echo "scenario-smoke: violated checkpoint did not fail the run"; exit 1; fi
	@grep -q 'below min 40' $(ARTIFACTS)/checkpoint_violated.txt \
		|| { echo "scenario-smoke: checkpoint violation missing from report"; exit 1; }
	@echo "scenario-smoke: ok ($$(ls examples/scenarios/*.yaml | wc -l) scenarios, engine + window-policy parity, checkpoint gate enforced)"

verify: build vet race bench bench-xl bench-xxl bench-xxxl metrics-smoke scenario-smoke
