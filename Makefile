# hetgrid build/verify harness.
#
#   make verify   — everything the CI gate runs: build, vet, race tests,
#                   and a short benchmark pass that regenerates
#                   BENCH_1.json against the BENCH_0.json baseline.

GO ?= go
BENCHTMP ?= /tmp/hetgrid_bench

.PHONY: all build vet test race bench verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_1.json: the figure drivers run at 3 iterations
# (each iteration is a full reduced-scale experiment), the hot-path
# micro-benchmarks at 30, matching the conditions BENCH_0.json was
# captured under. BENCH_0.json entries are embedded as baselines.
bench:
	$(GO) test -run '^$$' -bench 'Fig5InterArrival|Fig8Messages|HeartbeatRound|WorkloadGen' \
		-benchmem -benchtime 3x . | tee $(BENCHTMP)_figs.txt
	$(GO) test -run '^$$' -bench 'Placement|AggRefresh' \
		-benchmem -benchtime 30x . | tee $(BENCHTMP)_hot.txt
	cat $(BENCHTMP)_figs.txt $(BENCHTMP)_hot.txt > $(BENCHTMP)_all.txt
	$(GO) run ./cmd/benchjson -parse $(BENCHTMP)_all.txt -pr 1 -prev BENCH_0.json -out BENCH_1.json

verify: build vet race bench
