// Package hetgrid is a peer-to-peer desktop grid with support for
// heterogeneous computing elements, reproducing "Supporting Computing
// Element Heterogeneity in P2P Grids" (Lee, Keleher, Sussman — IEEE
// CLUSTER 2011).
//
// The library simulates a fully decentralized desktop grid built on a
// CAN (Content-Addressable Network) DHT whose dimensions are resource
// attributes: nodes advertise capabilities as coordinates, jobs route
// to their requirement coordinates, and load balancing pushes jobs
// toward under-used regions. Nodes may carry multiple computing
// elements (CEs) — non-dedicated multi-core CPUs and dedicated GPUs of
// several types — and the matchmaker places each job by its dominant
// CE, preferring free nodes, then acceptable nodes (able to start the
// job immediately on the CEs it needs), then minimum load score.
//
// Two entry points cover the paper's two planes:
//
//   - Grid simulates matchmaking and job execution (Figures 5–6):
//     create one with New, add nodes, submit jobs, Run, inspect waits.
//   - Maintenance simulates the DHT upkeep protocols under churn
//     (Figures 7–8): vanilla, compact and adaptive heartbeats, broken
//     links, and per-node message costs.
//
// Everything is deterministic given a seed, uses only the standard
// library, and runs on a laptop: the "hardware" is a discrete-event
// simulation, as in the paper's evaluation.
package hetgrid
