package main

// Scenario subcommands:
//
//	hetgridsim run [-metrics out.jsonl] scenario.yaml [more.yaml...]
//	hetgridsim validate scenario.yaml [more.yaml...]
//
// `run` prints each scenario's deterministic report and exits non-zero
// if any assertion fails — the contract the CI corpus gate relies on.
// `-metrics` additionally exports every scenario's sampled telemetry
// stream as JSONL, each line stamped with the scenario name; the
// stream is as deterministic as the report, and the report itself is
// byte-identical with or without the export. `validate` decodes and
// validates without running anything, so a whole corpus can be linted
// cheaply.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetgrid/internal/scenario"
	"hetgrid/internal/sim"
)

// dispatchScenario handles the subcommand forms; it returns false when
// the invocation is the legacy flag mode.
func dispatchScenario(args []string) bool {
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "run":
		os.Exit(runScenarios(args[1:]))
	case "validate":
		os.Exit(validateScenarios(args[1:]))
	}
	return false
}

func runScenarios(args []string) int {
	fs := flag.NewFlagSet("hetgridsim run", flag.ExitOnError)
	metricsPath := fs.String("metrics", "", "write every scenario's sampled telemetry (JSONL, run = scenario name) to this file")
	metricsEvery := fs.Float64("metrics-interval", 60, "telemetry sampling interval in virtual seconds")
	engine := fs.String("engine", "", "override the spec's engine: serial or sharded")
	shards := fs.Int("shards", 0, "override the spec's shard count (implies -engine sharded)")
	workers := fs.Int("workers", 0, "override the spec's worker count, 0 = GOMAXPROCS (implies -engine sharded)")
	window := fs.String("window", "", "override the spec's window policy: fixed or adaptive (implies -engine sharded)")
	admission := fs.String("admission", "", "override the spec's admission mode: strict or batched (implies -engine sharded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *engine {
	case "", "serial", "sharded":
	default:
		fmt.Fprintf(os.Stderr, "hetgridsim run: unknown -engine %q (serial or sharded)\n", *engine)
		return 2
	}
	switch *window {
	case "", "fixed", "adaptive":
	default:
		fmt.Fprintf(os.Stderr, "hetgridsim run: unknown -window %q (fixed or adaptive)\n", *window)
		return 2
	}
	switch *admission {
	case "", "strict", "batched":
	default:
		fmt.Fprintf(os.Stderr, "hetgridsim run: unknown -admission %q (strict or batched)\n", *admission)
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "hetgridsim run: no scenario files given")
		return 2
	}
	var export io.WriteCloser
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			return 1
		}
		export = f
	}
	status := 0
	points := 0
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		spec, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			status = 1
			continue
		}
		// Flag overrides: -shards/-workers select the sharded core even
		// when the spec does not; an explicit -engine always wins. The
		// engines produce byte-identical reports, so an override changes
		// wall-clock behavior only.
		if *shards > 0 || *workers > 0 || *window != "" || *admission != "" {
			spec.Engine = "sharded"
		}
		if *engine != "" {
			spec.Engine = *engine
		}
		if *shards > 0 {
			spec.Shards = *shards
		}
		if *workers > 0 {
			spec.Workers = *workers
		}
		if *window != "" {
			spec.Window = *window
		}
		if *admission != "" {
			spec.Admission = *admission
		}
		res, err := scenario.RunSampled(spec, sim.FromSeconds(*metricsEvery))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			status = 1
			continue
		}
		fmt.Print(res.Report)
		if !res.Passed() {
			status = 1
		}
		if export != nil {
			if err := res.Telemetry.WriteJSONL(export, spec.Name); err != nil {
				fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
				status = 1
			}
			points += res.Telemetry.Len()
		}
	}
	if export != nil {
		if err := export.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			status = 1
		}
		fmt.Fprintf(os.Stderr, "hetgridsim run: wrote %d metric points to %s\n", points, *metricsPath)
	}
	return status
}

func validateScenarios(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "hetgridsim validate: no scenario files given")
		return 2
	}
	status := 0
	for _, path := range paths {
		spec, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim validate:", err)
			status = 1
			continue
		}
		fmt.Printf("ok %s (%s, %d nodes, %d events)\n", path, spec.Name, spec.Grid.Nodes, len(spec.Events))
	}
	return status
}
