package main

// Scenario subcommands:
//
//	hetgridsim run scenario.yaml [more.yaml...]       execute and report
//	hetgridsim validate scenario.yaml [more.yaml...]  parse and check only
//
// `run` prints each scenario's deterministic report and exits non-zero
// if any assertion fails — the contract the CI corpus gate relies on.
// `validate` decodes and validates without running anything, so a whole
// corpus can be linted cheaply.

import (
	"fmt"
	"os"

	"hetgrid/internal/scenario"
)

// dispatchScenario handles the subcommand forms; it returns false when
// the invocation is the legacy flag mode.
func dispatchScenario(args []string) bool {
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "run":
		os.Exit(runScenarios(args[1:]))
	case "validate":
		os.Exit(validateScenarios(args[1:]))
	}
	return false
}

func runScenarios(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "hetgridsim run: no scenario files given")
		return 2
	}
	status := 0
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		spec, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			status = 1
			continue
		}
		res, err := scenario.Run(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim run:", err)
			status = 1
			continue
		}
		fmt.Print(res.Report)
		if !res.Passed() {
			status = 1
		}
	}
	return status
}

func validateScenarios(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "hetgridsim validate: no scenario files given")
		return 2
	}
	status := 0
	for _, path := range paths {
		spec, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim validate:", err)
			status = 1
			continue
		}
		fmt.Printf("ok %s (%s, %d nodes, %d events)\n", path, spec.Name, spec.Grid.Nodes, len(spec.Events))
	}
	return status
}
