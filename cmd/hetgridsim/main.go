// Command hetgridsim runs one load-balancing simulation with custom
// parameters and prints the job wait-time distribution — the quickest
// way to explore the matchmaking schemes outside the fixed figure
// configurations.
//
//	hetgridsim -scheme can-het -nodes 500 -jobs 5000 -arrival 3
//	hetgridsim -scheme can-hom -constraint 0.6 -gpuslots 3
//	hetgridsim -nodes 200 -jobs 2000 -metrics m.jsonl -trace t.jsonl
//
// The `run` and `validate` subcommands execute declarative scenario
// files (fault injection + end-state assertions, see internal/scenario
// and examples/scenarios/); `run` exits non-zero when an assertion
// fails:
//
//	hetgridsim run examples/scenarios/rack_failure.yaml
//	hetgridsim validate examples/scenarios/*.yaml
//
// -metrics samples per-node gauges and scheduler counters on the
// virtual clock and writes them as JSONL; -trace records the job
// lifecycle plus placement spans (route/push/match) for cmd/traceview.
// Both are telemetry-only: the printed results are identical with or
// without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetgrid/internal/experiments"
	"hetgrid/internal/metrics"
	"hetgrid/internal/perf"
	"hetgrid/internal/sim"
	"hetgrid/internal/stats"
	"hetgrid/internal/trace"
)

func main() {
	if dispatchScenario(os.Args[1:]) {
		return
	}
	scheme := flag.String("scheme", "can-het", "matchmaker: can-het, can-hom or central")
	nodes := flag.Int("nodes", 1000, "grid population")
	jobs := flag.Int("jobs", 20000, "jobs to submit")
	arrival := flag.Float64("arrival", 3, "mean job inter-arrival time in seconds")
	constraint := flag.Float64("constraint", 0.8, "job constraint ratio (0..1)")
	gpuslots := flag.Int("gpuslots", 2, "accelerator type slots (0..3 give 5/8/11/14-dim CANs)")
	gpufrac := flag.Float64("gpufrac", 0.4, "fraction of GPU-dominant jobs")
	sf := flag.Float64("sf", 2, "stopping factor (Equation 4)")
	gamma := flag.Float64("gamma", 0.3, "CPU contention coefficient")
	seed := flag.Int64("seed", 1, "random seed")
	seeds := flag.Int("seeds", 1, "replicate over this many consecutive seeds (parallel) and report mean±std")
	metricsPath := flag.String("metrics", "", "write sampled telemetry (JSONL) to this file")
	metricsEvery := flag.Float64("metrics-interval", 60, "telemetry sampling interval in virtual seconds")
	tracePath := flag.String("trace", "", "write the event trace with placement spans (JSONL) to this file")
	pprofPath := flag.String("pprof", "", "write a CPU profile to this file")
	perfStats := flag.Bool("perfstats", false, "enable perf timers and print the counter report to stderr")
	flag.Parse()

	stopPerf, err := perf.Instrument(*pprofPath, *perfStats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetgridsim:", err)
		os.Exit(1)
	}
	defer stopPerf()

	cfg := experiments.LBConfig{
		Scheme:           experiments.SchemeName(*scheme),
		Nodes:            *nodes,
		Jobs:             *jobs,
		GPUSlots:         *gpuslots,
		MeanInterArrival: sim.FromSeconds(*arrival),
		ConstraintRatio:  *constraint,
		GPUJobFraction:   *gpufrac,
		StoppingFactor:   *sf,
		Gamma:            *gamma,
		RefreshPeriod:    60 * sim.Second,
		Seed:             *seed,
	}
	if *seeds > 1 {
		if *metricsPath != "" || *tracePath != "" {
			fmt.Fprintln(os.Stderr, "hetgridsim: -metrics/-trace apply to single runs only; ignored with -seeds > 1")
		}
		rep, err := experiments.ReplicateLB(cfg, *seeds, func(r *experiments.LBResult) float64 {
			return r.WaitTimes.Mean()
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim:", err)
			os.Exit(1)
		}
		fmt.Printf("scheme=%s nodes=%d jobs=%d seeds=%d\n", cfg.Scheme, cfg.Nodes, cfg.Jobs, *seeds)
		fmt.Printf("mean job wait across seeds: %.0fs ± %.0fs (per-seed: %v)\n",
			rep.Mean, rep.StdDev, fmtMeans(rep.Means))
		return
	}

	var plane *metrics.Plane
	if *metricsPath != "" {
		plane = metrics.New(sim.FromSeconds(*metricsEvery), 0)
		cfg.Metrics = plane
	}
	var tbuf *trace.Buffer
	if *tracePath != "" {
		tbuf = &trace.Buffer{}
		cfg.Trace = tbuf
	}

	res, err := experiments.RunLoadBalance(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetgridsim:", err)
		os.Exit(1)
	}
	if plane != nil {
		if err := writeJSONL(*metricsPath, func(w io.Writer) error { return plane.WriteJSONL(w, "") }); err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hetgridsim: wrote %d metric points to %s\n", plane.Len(), *metricsPath)
	}
	if tbuf != nil {
		if err := writeJSONL(*tracePath, tbuf.WriteJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "hetgridsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hetgridsim: wrote %d trace events to %s\n", tbuf.Len(), *tracePath)
	}

	fmt.Printf("scheme=%s nodes=%d jobs=%d dims=%d arrival=%.1fs constraint=%.0f%%\n",
		cfg.Scheme, cfg.Nodes, cfg.Jobs, 4+3*cfg.GPUSlots+1, *arrival, *constraint*100)
	fmt.Printf("placed=%d failed=%d makespan=%.0fs\n", res.Placed, res.Failed, res.Makespan.Seconds())
	fmt.Printf("matchmaking: %v\n\n", res.Sched)

	w := res.WaitTimes
	fmt.Printf("job wait time: mean=%.0fs median=%.0fs p90=%.0fs p99=%.0fs max=%.0fs zero-wait=%.1f%%\n\n",
		w.Mean(), w.Quantile(0.5), w.Quantile(0.9), w.Quantile(0.99), w.Max(), 100*w.CDF(0))

	tab := stats.NewTable("wait<=s", "jobs(%)")
	for _, x := range stats.Grid(50000, 10) {
		tab.AddRow(fmt.Sprintf("%.0f", x), fmt.Sprintf("%.2f", 100*w.CDF(x)))
	}
	tab.Fprint(os.Stdout)
}

func writeJSONL(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fmtMeans(vs []float64) string {
	out := "["
	for i, v := range vs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.0f", v)
	}
	return out + "]"
}
