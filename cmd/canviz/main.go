// Command canviz builds a CAN overlay from the synthetic node
// population and prints its structure: dimension layout, zone volume
// and neighbor-count distributions, a sample routing trace, and the
// take-over relationships that the compact heartbeat scheme relies on.
// Useful for getting a feel for the DHT before reading simulation
// results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hetgrid/internal/can"
	"hetgrid/internal/exec"
	"hetgrid/internal/geom"
	"hetgrid/internal/resource"
	"hetgrid/internal/rng"
	"hetgrid/internal/sim"
	"hetgrid/internal/stats"
	"hetgrid/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 200, "population")
	gpuslots := flag.Int("gpuslots", 2, "accelerator slots")
	seed := flag.Int64("seed", 1, "random seed")
	plot := flag.String("plot", "", "render an ASCII slice of the zone partition over two dimensions, e.g. \"0,10\" (cpu.clock × virtual)")
	flag.Parse()

	space := resource.NewSpace(*gpuslots)
	ov := can.NewOverlay(space.Dims())
	eng := sim.New()
	cl := exec.NewCluster(eng, exec.DefaultConfig())
	gen := workload.NewNodeGen(space, rng.Split(*seed, "nodes"))
	redraw := rng.NewSplit(*seed, "redraw")
	for i := 0; i < *nodes; i++ {
		caps := gen.One()
		n, err := ov.Join(space.NodePoint(caps), caps)
		for err != nil {
			caps.Virtual = redraw.Float64() * 0.999999
			n, err = ov.Join(space.NodePoint(caps), caps)
		}
		cl.AddNode(n.ID, caps)
	}

	fmt.Printf("CAN: %d nodes, %d dimensions\n", ov.Len(), ov.Dims())
	fmt.Println("\ndimension layout:")
	for i := 0; i < space.Dims(); i++ {
		fmt.Printf("  dim %2d: %s\n", i, space.DimName(i))
	}

	st := ov.Stats()
	fmt.Printf("\nneighbors: avg %.1f, max %d\n", st.AvgNeighbors, st.MaxNeighbors)

	var counts []int
	for _, n := range ov.Nodes() {
		counts = append(counts, len(ov.NeighborIDs(n.ID)))
	}
	sort.Ints(counts)
	hist := map[int]int{}
	for _, c := range counts {
		hist[c/5*5]++
	}
	var buckets []int
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	tab := stats.NewTable("neighbors", "nodes")
	for _, b := range buckets {
		tab.AddRow(fmt.Sprintf("%d-%d", b, b+4), hist[b])
	}
	fmt.Println("\nneighbor-count histogram:")
	tab.Fprint(os.Stdout)

	// Routing demo: from the first node to a demanding job coordinate.
	first := ov.Nodes()[0]
	req := resource.JobReq{CE: map[resource.CEType]resource.CEReq{
		resource.TypeCPU: {Clock: 2.2, Cores: 4, Memory: 4},
	}}
	target := space.JobPoint(req, 0.5)
	path, err := ov.Route(first.ID, target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "route:", err)
		os.Exit(1)
	}
	fmt.Printf("\nrouting a 4-core 2.2x-clock job from node %d: %d hops\n", first.ID, len(path)-1)
	for i, hop := range path {
		marker := "   "
		if i == len(path)-1 {
			marker = "-> "
		}
		fmt.Printf("  %s node %-4d caps: %v\n", marker, hop.ID, hop.Caps)
	}

	// Take-over sample.
	fmt.Println("\ntake-over plan sample (first 10 nodes):")
	for i, n := range ov.Nodes() {
		if i >= 10 {
			break
		}
		if plan, ok := ov.Takeover(n.ID); ok {
			if plan.Merged != nil {
				fmt.Printf("  node %-4d -> taker %-4d (pair partner %d merges first)\n", n.ID, plan.Taker.ID, plan.Merged.ID)
			} else {
				fmt.Printf("  node %-4d -> taker %-4d (direct sibling)\n", n.ID, plan.Taker.ID)
			}
		}
	}
	if err := ov.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "overlay invariant violation:", err)
		os.Exit(1)
	}
	fmt.Println("\noverlay invariants: OK")

	if *plot != "" {
		var dx, dy int
		if _, err := fmt.Sscanf(*plot, "%d,%d", &dx, &dy); err != nil ||
			dx < 0 || dy < 0 || dx >= space.Dims() || dy >= space.Dims() || dx == dy {
			fmt.Fprintf(os.Stderr, "canviz: -plot wants two distinct dims in 0..%d\n", space.Dims()-1)
			os.Exit(1)
		}
		fmt.Printf("\nzone slice over %s (x) × %s (y), other coordinates at 0.5:\n\n",
			space.DimName(dx), space.DimName(dy))
		plotSlice(ov, space.Dims(), dx, dy)
	}
}

// plotSlice renders the zone partition restricted to a 2-D slice: each
// character cell shows which node owns the slice point at its center,
// cycling through a letter alphabet per owner.
func plotSlice(ov *can.Overlay, dims, dx, dy int) {
	const w, h = 72, 24
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	owners := map[can.NodeID]byte{}
	next := 0
	probe := make(geom.Point, dims)
	for i := range probe {
		probe[i] = 0.5
	}
	for row := h - 1; row >= 0; row-- {
		line := make([]byte, w)
		for col := 0; col < w; col++ {
			probe[dx] = (float64(col) + 0.5) / w
			probe[dy] = (float64(row) + 0.5) / h
			owner := ov.Owner(probe)
			g, ok := owners[owner.ID]
			if !ok {
				g = glyphs[next%len(glyphs)]
				owners[owner.ID] = g
				next++
			}
			line[col] = g
		}
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("\n%d distinct zones intersect this slice\n", len(owners))
}
