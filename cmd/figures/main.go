// Command figures regenerates the paper's evaluation figures
// (Section V) as plain-text tables: the same series the paper plots.
//
//	figures -fig all            # everything at the paper's scale
//	figures -fig 5 -scale 0.1   # a quick 10%-scale Figure 5
//	figures -fig 8a             # only the message-count sweep
//	figures -fig hb -metrics m.jsonl   # measured heartbeat volume + telemetry
//
// At -scale 1 the runs use the paper's populations (1000–2000 nodes,
// 20000 jobs, 30000 s churn horizons) and take minutes; smaller scales
// shrink populations and horizons while keeping dimensionalities,
// ratios and periods fixed, so the qualitative shapes persist.
//
// -metrics attaches a telemetry plane to every simulation and writes
// the collected time series as labeled JSONL. Telemetry never alters
// results: figure output is byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hetgrid/internal/experiments"
	"hetgrid/internal/metrics"
	"hetgrid/internal/perf"
	"hetgrid/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 8a, 8b, hb, sharded or all")
	scale := flag.Float64("scale", 1.0, "experiment scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "root random seed")
	out := flag.String("out", "", "output file (default stdout)")
	metricsPath := flag.String("metrics", "", "write sampled telemetry (JSONL) to this file")
	metricsCSV := flag.String("metrics-csv", "", "write sampled telemetry (CSV) to this file (-fig sharded only)")
	metricsEvery := flag.Float64("metrics-interval", 60, "telemetry sampling interval in virtual seconds")
	pprofPath := flag.String("pprof", "", "write a CPU profile to this file")
	perfStats := flag.Bool("perfstats", false, "enable perf timers and print the counter report to stderr")
	flag.Parse()

	stopPerf, err := perf.Instrument(*pprofPath, *perfStats)
	if err != nil {
		fatal(err)
	}
	defer stopPerf()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var mc *experiments.MetricsCollector
	if *metricsPath != "" {
		mc = &experiments.MetricsCollector{Interval: sim.FromSeconds(*metricsEvery)}
	}

	s := experiments.Scale(*scale)
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "==== %s (scale %.2f, seed %d) ====\n", name, *scale, *seed)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}

	want := strings.ToLower(*fig)
	if want == "sharded" {
		// The sharded-core cell manages its own plane (one simulation,
		// barrier-merged facets) rather than the per-figure collector.
		runSharded(w, s, *seed, *metricsPath, *metricsCSV, *metricsEvery)
		return
	}
	matched := false
	if want == "all" || want == "5" {
		matched = true
		run("Figure 5", func() error { _, err := experiments.Figure5(w, s, *seed, mc); return err })
	}
	if want == "all" || want == "6" {
		matched = true
		run("Figure 6", func() error { _, err := experiments.Figure6(w, s, *seed, mc); return err })
	}
	if want == "all" || want == "7" {
		matched = true
		run("Figure 7", func() error { _, err := experiments.Figure7(w, s, *seed, mc); return err })
	}
	if want == "all" || want == "8" || want == "8a" || want == "8b" {
		matched = true
		run("Figure 8", func() error { _, err := experiments.Figure8(w, s, *seed, mc); return err })
	}
	if want == "all" || want == "hb" {
		matched = true
		run("Figure HB", func() error { _, err := experiments.FigureHB(w, s, *seed, mc); return err })
	}
	if !matched {
		fatal(fmt.Errorf("unknown -fig %q (want 5, 6, 7, 8, hb, sharded or all)", *fig))
	}

	if mc != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := mc.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d metric points to %s\n", mc.Len(), *metricsPath)
	}
}

// runSharded drives the sharded-telemetry figure: one Figure 8 cell on
// the sharded core, with the merged stream exported as JSONL and/or
// CSV. The figure text and both exports are byte-identical for any
// shard/worker count (and the text for telemetry on/off) — the sharded
// plane's determinism contract.
func runSharded(w io.Writer, s experiments.Scale, seed int64, jsonlPath, csvPath string, every float64) {
	var plane *metrics.Plane
	if jsonlPath != "" || csvPath != "" {
		plane = metrics.New(sim.FromSeconds(every), 0)
	}
	fmt.Fprintf(w, "==== Figure 8 on the sharded core (scale %.2f, seed %d) ====\n", float64(s), seed)
	if _, err := experiments.FigureSharded(w, s, seed, plane); err != nil {
		fatal(err)
	}
	fmt.Fprintln(w)
	if plane == nil {
		return
	}
	if jsonlPath != "" {
		writeExport(jsonlPath, func(f io.Writer) error { return plane.WriteJSONL(f, "sharded") })
	}
	if csvPath != "" {
		writeExport(csvPath, plane.WriteCSV)
	}
	fmt.Fprintf(os.Stderr, "figures: wrote %d metric points (%d series)\n", plane.Len(), len(plane.Series()))
}

func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
