// Command figures regenerates the paper's evaluation figures
// (Section V) as plain-text tables: the same series the paper plots.
//
//	figures -fig all            # everything at the paper's scale
//	figures -fig 5 -scale 0.1   # a quick 10%-scale Figure 5
//	figures -fig 8a             # only the message-count sweep
//
// At -scale 1 the runs use the paper's populations (1000–2000 nodes,
// 20000 jobs, 30000 s churn horizons) and take minutes; smaller scales
// shrink populations and horizons while keeping dimensionalities,
// ratios and periods fixed, so the qualitative shapes persist.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hetgrid/internal/experiments"
	"hetgrid/internal/perf"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 8a, 8b or all")
	scale := flag.Float64("scale", 1.0, "experiment scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "root random seed")
	out := flag.String("out", "", "output file (default stdout)")
	pprofPath := flag.String("pprof", "", "write a CPU profile to this file")
	perfStats := flag.Bool("perfstats", false, "enable perf timers and print the counter report to stderr")
	flag.Parse()

	stopPerf, err := perf.Instrument(*pprofPath, *perfStats)
	if err != nil {
		fatal(err)
	}
	defer stopPerf()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	s := experiments.Scale(*scale)
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "==== %s (scale %.2f, seed %d) ====\n", name, *scale, *seed)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}

	want := strings.ToLower(*fig)
	matched := false
	if want == "all" || want == "5" {
		matched = true
		run("Figure 5", func() error { _, err := experiments.Figure5(w, s, *seed); return err })
	}
	if want == "all" || want == "6" {
		matched = true
		run("Figure 6", func() error { _, err := experiments.Figure6(w, s, *seed); return err })
	}
	if want == "all" || want == "7" {
		matched = true
		run("Figure 7", func() error { _, err := experiments.Figure7(w, s, *seed); return err })
	}
	if want == "all" || want == "8" || want == "8a" || want == "8b" {
		matched = true
		run("Figure 8", func() error { _, err := experiments.Figure8(w, s, *seed); return err })
	}
	if !matched {
		fatal(fmt.Errorf("unknown -fig %q (want 5, 6, 7, 8 or all)", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
