// Command traceview summarizes a simulation trace exported with
// hetgrid's TraceBuffer (JSONL, one event per line): event counts, the
// job wait-time distribution, the busiest nodes, and the churn
// timeline.
//
//	traceview run.jsonl
//	some-simulation | traceview -
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"hetgrid/internal/stats"
	"hetgrid/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceview <trace.jsonl | ->")
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadJSONL(r)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return
	}

	// Event counts.
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	tab := stats.NewTable("event", "count")
	for _, k := range kinds {
		tab.AddRow(string(k), counts[k])
	}
	fmt.Printf("trace: %d events over %.0f virtual seconds\n\n", len(events), events[len(events)-1].T-events[0].T)
	tab.Fprint(os.Stdout)

	// Wait-time distribution from finish events.
	var waits stats.Sample
	perNode := map[int64]int{}
	for _, e := range events {
		if e.Kind == trace.JobFinish {
			waits.Add(e.Value)
			perNode[e.Node]++
		}
	}
	if waits.N() > 0 {
		fmt.Printf("\njob waits (n=%d): mean=%.0fs median=%.0fs p90=%.0fs p99=%.0fs max=%.0fs\n",
			waits.N(), waits.Mean(), waits.Quantile(0.5), waits.Quantile(0.9),
			waits.Quantile(0.99), waits.Max())

		type nodeCount struct {
			node int64
			jobs int
		}
		var nodes []nodeCount
		for n, c := range perNode {
			nodes = append(nodes, nodeCount{n, c})
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].jobs != nodes[j].jobs {
				return nodes[i].jobs > nodes[j].jobs
			}
			return nodes[i].node < nodes[j].node
		})
		fmt.Println("\nbusiest nodes:")
		top := stats.NewTable("node", "jobs finished")
		for i, nc := range nodes {
			if i >= 10 {
				break
			}
			top.AddRow(nc.node, nc.jobs)
		}
		top.Fprint(os.Stdout)

		var work []float64
		for _, nc := range nodes {
			work = append(work, float64(nc.jobs))
		}
		fmt.Printf("\njob-count imbalance across active nodes: gini=%.3f max/mean=%.2f\n",
			stats.Gini(work), stats.MaxOverMean(work))
	}

	// Churn timeline.
	churn := counts[trace.NodeLeave] + counts[trace.NodeFail]
	if churn > 0 {
		fmt.Printf("\nchurn: %d joins, %d departures, %d jobs requeued, %d lost\n",
			counts[trace.NodeJoin], churn, counts[trace.JobRequeue], counts[trace.JobLost])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
