// Command traceview summarizes a simulation trace exported with
// hetgrid's TraceBuffer (JSONL, one event per line): event counts, the
// job wait-time distribution, the busiest nodes, the churn timeline,
// and — when the trace carries placement spans — a causal tree of each
// job's matchmaking walk (submit → routing hops → pushing hops →
// dominant-CE match), indented by span depth.
//
//	traceview run.jsonl
//	traceview -spans -top 5 run.jsonl
//	some-simulation | traceview -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hetgrid/internal/stats"
	"hetgrid/internal/trace"
)

func main() {
	spansFlag := flag.Bool("spans", false, "always print the placement-span section (default: only when span events exist)")
	top := flag.Int("top", 10, "rows in the busiest-nodes table and jobs in the span tree")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceview [-spans] [-top n] <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadJSONL(r)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return
	}

	// The span tree needs the file's causal order (a job's hops share
	// one timestamp), so sort a copy for the flat sections: stable by
	// (time, kind, job) makes the summary independent of how the
	// producer interleaved concurrent streams.
	sorted := append([]trace.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Job < b.Job
	})

	// Event counts.
	counts := map[trace.Kind]int{}
	for _, e := range sorted {
		counts[e.Kind]++
	}
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	tab := stats.NewTable("event", "count")
	for _, k := range kinds {
		tab.AddRow(string(k), counts[k])
	}
	fmt.Printf("trace: %d events over %.0f virtual seconds\n\n", len(sorted), sorted[len(sorted)-1].T-sorted[0].T)
	tab.Fprint(os.Stdout)

	// Wait-time distribution from finish events.
	var waits stats.Sample
	perNode := map[int64]int{}
	for _, e := range sorted {
		if e.Kind == trace.JobFinish {
			waits.Add(e.Value)
			perNode[e.Node]++
		}
	}
	if waits.N() > 0 {
		fmt.Printf("\njob waits (n=%d): mean=%.0fs median=%.0fs p90=%.0fs p99=%.0fs max=%.0fs\n",
			waits.N(), waits.Mean(), waits.Quantile(0.5), waits.Quantile(0.9),
			waits.Quantile(0.99), waits.Max())

		type nodeCount struct {
			node int64
			jobs int
		}
		var nodes []nodeCount
		for n, c := range perNode {
			nodes = append(nodes, nodeCount{n, c})
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].jobs != nodes[j].jobs {
				return nodes[i].jobs > nodes[j].jobs
			}
			return nodes[i].node < nodes[j].node
		})
		fmt.Println("\nbusiest nodes:")
		topTab := stats.NewTable("node", "jobs finished")
		for i, nc := range nodes {
			if i >= *top {
				break
			}
			topTab.AddRow(nc.node, nc.jobs)
		}
		topTab.Fprint(os.Stdout)

		var work []float64
		for _, nc := range nodes {
			work = append(work, float64(nc.jobs))
		}
		fmt.Printf("\njob-count imbalance across active nodes: gini=%.3f max/mean=%.2f\n",
			stats.Gini(work), stats.MaxOverMean(work))
	}

	// Churn timeline.
	churn := counts[trace.NodeLeave] + counts[trace.NodeFail]
	if churn > 0 {
		fmt.Printf("\nchurn: %d joins, %d departures, %d jobs requeued, %d lost\n",
			counts[trace.NodeJoin], churn, counts[trace.JobRequeue], counts[trace.JobLost])
	}

	// Placement spans: one causal tree per job, from the file's record
	// order (events of one placement share a timestamp, so the sorted
	// view cannot reconstruct causality).
	hasSpans := counts[trace.PlaceRoute]+counts[trace.PlacePush]+counts[trace.PlaceMatch] > 0
	if hasSpans || *spansFlag {
		printSpans(events, *top)
	}
}

// printSpans renders the matchmaking walk of the first n spanned jobs
// as an indented tree: submit at depth 0, each place.* event indented
// two spaces per causal depth.
func printSpans(events []trace.Event, n int) {
	type span struct {
		job    int64
		events []trace.Event // file order = causal order
	}
	byJob := map[int64]*span{}
	var order []*span
	spanned := map[int64]bool{}
	for _, e := range events {
		switch e.Kind {
		case trace.PlaceRoute, trace.PlacePush, trace.PlaceMatch:
			spanned[e.Job] = true
		case trace.JobSubmit:
		default:
			continue
		}
		s := byJob[e.Job]
		if s == nil {
			s = &span{job: e.Job}
			byJob[e.Job] = s
			order = append(order, s)
		}
		s.events = append(s.events, e)
	}
	total := 0
	for _, s := range order {
		if spanned[s.job] {
			total++
		}
	}
	fmt.Printf("\nplacement spans: %d jobs with matchmaking detail", total)
	if total > n {
		fmt.Printf(" (showing first %d; -top widens)", n)
	}
	fmt.Println()
	if total == 0 {
		fmt.Println("  (no place.* events in this trace; enable spans in the producer)")
		return
	}
	shown := 0
	for _, s := range order {
		if !spanned[s.job] {
			continue
		}
		if shown >= n {
			break
		}
		shown++
		fmt.Printf("job %d\n", s.job)
		for _, e := range s.events {
			indent := 2 + 2*e.Depth
			fmt.Printf("%*st=%.1fs %s", indent, "", e.T, describe(e))
			fmt.Println()
		}
	}
}

// describe renders one span event as a phrase.
func describe(e trace.Event) string {
	switch e.Kind {
	case trace.JobSubmit:
		if e.Node >= 0 {
			return fmt.Sprintf("submit -> node %d", e.Node)
		}
		return "submit"
	case trace.PlaceRoute:
		return fmt.Sprintf("route hop %.0f -> node %d", e.Value, e.Node)
	case trace.PlacePush:
		return fmt.Sprintf("push -> node %d", e.Node)
	case trace.PlaceMatch:
		if e.Node < 0 {
			return "unmatched"
		}
		return fmt.Sprintf("match node %d (%s)", e.Node, e.Detail)
	default:
		return string(e.Kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
