package main

import (
	"strings"
	"testing"
)

func entry(name string, ns, allocs float64, baseNs, baseAllocs float64) Entry {
	return Entry{
		Name: name, NsOp: ns, AllocsOp: allocs,
		Baseline: &Entry{Name: name, NsOp: baseNs, AllocsOp: baseAllocs},
	}
}

func TestGateNsRegression(t *testing.T) {
	doc := &Doc{Entries: []Entry{entry("Placement", 130000, 5, 100000, 5)}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("want one ns/op regression, got %v", got)
	}
}

func TestGateAllocsRegression(t *testing.T) {
	// ns/op fine, allocs/op up 50%.
	doc := &Doc{Entries: []Entry{entry("AggRefresh", 100000, 6, 100000, 4)}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", got)
	}
}

func TestGateZeroAllocBaseline(t *testing.T) {
	// A zero-alloc hot path gaining a single allocation must fail even
	// though the benchmark sits below the ns/op noise floor.
	doc := &Doc{Entries: []Entry{entry("PlaceSteadyState", 800, 1, 750, 0)}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Fatalf("want the 0→1 alloc step flagged, got %v", got)
	}
	// ...but staying at zero passes regardless of ns jitter below the floor.
	doc = &Doc{Entries: []Entry{entry("PlaceSteadyState", 950, 0, 750, 0)}}
	if got := gateRegressions(doc, 15); len(got) != 0 {
		t.Fatalf("sub-floor zero-alloc entry should pass, got %v", got)
	}
}

func TestGateAllocSlack(t *testing.T) {
	// Fractional alloc growth under one whole allocation is jitter
	// (averaging artifacts across iterations), not a regression.
	doc := &Doc{Entries: []Entry{entry("WorkloadGen", 100000, 3.4, 100000, 3)}}
	if got := gateRegressions(doc, 10); len(got) != 0 {
		t.Fatalf("sub-one-alloc growth should pass, got %v", got)
	}
}

func TestGateNoiseFloorAndNoBaseline(t *testing.T) {
	doc := &Doc{Entries: []Entry{
		// Below gateMinNs: ns regression ignored.
		entry("TinyOp", 900, 2, 500, 2),
		// Low-microsecond baselines sit below the floor too — their
		// session-to-session drift swamps any honest ns/op signal.
		entry("MicroOp", 2400, 2, 1600, 2),
		// No baseline at all: passes.
		{Name: "BrandNew", NsOp: 5e6, AllocsOp: 100},
	}}
	if got := gateRegressions(doc, 15); len(got) != 0 {
		t.Fatalf("want no regressions, got %v", got)
	}
}

func TestGateDriftNormalization(t *testing.T) {
	// Five benchmarks, all ~20% slower (a slower machine), one 60%
	// slower (a real regression). Only the outlier fails.
	doc := &Doc{Entries: []Entry{
		entry("A", 120000, 0, 100000, 0),
		entry("B", 121000, 0, 100000, 0),
		entry("C", 119000, 0, 100000, 0),
		entry("D", 120500, 0, 100000, 0),
		entry("Hot", 160000, 0, 100000, 0),
	}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "Hot") {
		t.Fatalf("want only the outlier flagged, got %v", got)
	}
	if !strings.Contains(got[0], "drift") {
		t.Fatalf("message should report the drift: %v", got)
	}
}

func TestGateDriftClampedOnFasterMachine(t *testing.T) {
	// Machine got 20% faster; one benchmark regressed 20% absolutely.
	// The drift divisor clamps at 1, so the absolute regression is
	// still caught and the merely-flat entries pass.
	doc := &Doc{Entries: []Entry{
		entry("A", 80000, 0, 100000, 0),
		entry("B", 81000, 0, 100000, 0),
		entry("C", 79000, 0, 100000, 0),
		entry("D", 100000, 0, 100000, 0), // flat: passes
		entry("Hot", 120000, 0, 100000, 0),
	}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "Hot") {
		t.Fatalf("want only the absolute regression flagged, got %v", got)
	}
}

func TestGateDriftNeedsQuorum(t *testing.T) {
	// With under four comparable entries the gate stays absolute: two
	// entries both +30% are both flagged, not normalized away.
	doc := &Doc{Entries: []Entry{
		entry("A", 130000, 0, 100000, 0),
		entry("B", 130000, 0, 100000, 0),
	}}
	if got := gateRegressions(doc, 15); len(got) != 2 {
		t.Fatalf("want both flagged without a drift quorum, got %v", got)
	}
}

func TestParseRecordsProcs(t *testing.T) {
	out := `BenchmarkShardedEngine/S=4-8   	     100	   5000000 ns/op
BenchmarkOldStyle   	    1000	    250000 ns/op
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range doc.Entries {
		byName[e.Name] = e
	}
	if e := byName["ShardedEngine/S=4"]; e.Procs != 8 {
		t.Fatalf("suffixed entry procs = %d, want 8 (%+v)", e.Procs, e)
	}
	if e := byName["OldStyle"]; e.Procs != 1 {
		t.Fatalf("unsuffixed entry procs = %d, want 1 (%+v)", e.Procs, e)
	}
}

func TestGateSkipsProcsMismatch(t *testing.T) {
	// The runner's core count changed: a parallel benchmark's ns/op and
	// allocs/op both moved, but neither axis is comparable, so the entry
	// re-baselines instead of failing. A procs-0 baseline (a document
	// predating the field) still gates.
	mismatch := entry("ShardedEngine/S=4", 200000, 900, 100000, 600)
	mismatch.Procs = 4
	mismatch.Baseline.Procs = 8
	legacy := entry("Placement", 130000, 5, 100000, 5)
	legacy.Procs = 4 // baseline predates the procs field (0)
	doc := &Doc{Entries: []Entry{mismatch, legacy}}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "Placement") {
		t.Fatalf("want only the legacy serial entry flagged, got %v", got)
	}
}

func TestParseAndGateEndToEnd(t *testing.T) {
	out := `goos: linux
cpu: Test CPU @ 2.00GHz
BenchmarkPlacement-8   	    1000	    250000 ns/op	     128 B/op	       2 allocs/op
BenchmarkPlacement-8   	    1000	    240000 ns/op	     128 B/op	       2 allocs/op
BenchmarkFig5-8        	       3	 900000000 ns/op	       412 wait-mean-s
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 2 {
		t.Fatalf("entries = %+v", doc.Entries)
	}
	// minByName keeps the faster Placement run.
	var place *Entry
	for i := range doc.Entries {
		if doc.Entries[i].Name == "Placement" {
			place = &doc.Entries[i]
		}
	}
	if place == nil || place.NsOp != 240000 || place.AllocsOp != 2 {
		t.Fatalf("Placement entry = %+v", place)
	}
	place.Baseline = &Entry{Name: "Placement", NsOp: 240000, AllocsOp: 1}
	got := gateRegressions(doc, 15)
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Fatalf("want allocs/op regression from parsed doc, got %v", got)
	}
}
