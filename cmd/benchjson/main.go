// Command benchjson runs the repository's benchmark suite and writes
// the results as a machine-readable JSON document (BENCH_<pr>.json),
// so performance can be tracked as a trajectory across PRs rather than
// eyeballed from `go test -bench` output.
//
//	benchjson -out BENCH_1.json -prev BENCH_0.json
//	benchjson -bench 'Fig5|Placement|AggRefresh' -benchtime 10x
//
// The schema (hetgrid-bench/v1) stores, per benchmark: ns/op, B/op,
// allocs/op, and every custom metric the benchmark reported (wait-time
// means, msgs/node/min, jobs/s, …). When -prev names an earlier
// document, its entries are embedded as each benchmark's baseline, so
// one file carries the before/after pair.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Doc is the top-level BENCH_*.json document.
type Doc struct {
	Schema    string  `json:"schema"`
	PR        int     `json:"pr"`
	Go        string  `json:"go,omitempty"`
	CPU       string  `json:"cpu,omitempty"`
	BenchTime string  `json:"benchtime,omitempty"`
	Entries   []Entry `json:"entries"`
}

// Entry is one benchmark's measurements. Procs is the GOMAXPROCS the
// run executed under (the -N suffix go test appends to every benchmark
// name; 1 when absent): serial benchmarks are unaffected by it, but
// parallel ones (the sharded engine suite) scale with it, so the gate
// only compares entries measured at the same parallelism.
type Entry struct {
	Name     string             `json:"name"`
	Procs    int                `json:"procs,omitempty"`
	Iters    int64              `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BytesOp  float64            `json:"bytes_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Baseline *Entry             `json:"baseline,omitempty"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output JSON file (default stdout)")
	prev := flag.String("prev", "", "earlier BENCH_*.json whose entries become baselines")
	pr := flag.Int("pr", 0, "PR number recorded in the document")
	parseFile := flag.String("parse", "", "parse saved go test -bench output from this file instead of running the suite")
	gate := flag.Float64("gate", 0, "fail (exit 1) when any entry's ns/op regresses more than this percentage against its baseline (0 = off)")
	flag.Parse()

	var doc *Doc
	if *parseFile != "" {
		f, err := os.Open(*parseFile)
		if err != nil {
			fatal(err)
		}
		doc, err = parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *bench, "-benchmem", "-benchtime", *benchtime, *pkg)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		doc, err = parse(io.TeeReader(pipe, os.Stdout))
		if err != nil {
			fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			fatal(fmt.Errorf("go test: %w", err))
		}
	}
	doc.Schema = "hetgrid-bench/v1"
	doc.BenchTime = *benchtime
	doc.PR = *pr

	if *prev != "" {
		if err := embedBaselines(doc, *prev); err != nil {
			fatal(err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}

	if *gate > 0 {
		if regressions := gateRegressions(doc, *gate); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate passed (no entry regressed >%g%% ns/op or allocs/op)\n", *gate)
	}
}

// gateMinNs is the baseline floor below which the gate ignores an
// entry: low-microsecond benchmarks jitter by tens of percent from
// scheduling noise alone, and drift by as much across sessions — the
// same binary has measured the same ~1.5 µs placement entry 50% apart
// in two container sessions (host frequency/turbo state) while its
// 20 µs+ siblings moved single-digit percent, so the fleet-median
// drift correction cannot rescue them. Gating them would make CI
// flaky without protecting anything that matters: the property such
// hot paths actually promise — zero allocations — is gated absolutely
// below.
const gateMinNs = 2500.0

// gateRegressions lists the entries whose ns/op or allocs/op regressed
// more than pct percent against their embedded baseline. Entries
// without a baseline (new benchmarks) pass. The ns/op check skips
// baselines below the noise floor; the allocs/op check does not —
// allocation counts are deterministic, so even a 0→1 step on a
// sub-microsecond benchmark is a real regression (and the hot paths
// this repo gates hold themselves to zero).
//
// Baselines are recorded in earlier sessions on whatever hardware CI
// handed out, so a uniformly slower machine shifts *every* ratio up
// without any code change. The ns/op gate therefore normalizes by the
// median current/baseline ratio across gated entries (the drift): an
// entry fails only when it regresses pct percent beyond the fleet-wide
// drift. The drift divisor is clamped to ≥1 — on a *faster* machine the
// gate stays absolute, so an entry that merely failed to speed up is
// never flagged. Allocation counts are machine-independent and are
// gated absolutely.
func gateRegressions(doc *Doc, pct float64) []string {
	drift := nsDrift(doc)
	var out []string
	for _, e := range doc.Entries {
		if e.Baseline == nil {
			continue
		}
		if !sameProcs(e) {
			// The runner's GOMAXPROCS changed since the baseline session.
			// Parallel benchmarks scale with the worker count (and their
			// per-worker buffers shift allocs/op), so neither axis is
			// comparable; the entry re-baselines this session instead.
			continue
		}
		if e.Baseline.NsOp >= gateMinNs && e.NsOp > 0 {
			limit := e.Baseline.NsOp * drift * (1 + pct/100)
			if e.NsOp > limit {
				out = append(out, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, limit +%g%% over %+.1f%% median drift)",
					e.Name, e.NsOp, e.Baseline.NsOp, 100*(e.NsOp/e.Baseline.NsOp-1), pct, 100*(drift-1)))
			}
		}
		// Allocations: flag growth beyond pct with an absolute slack of
		// one whole allocation, so a zero-alloc baseline fails on any new
		// allocation while integer jitter on alloc-heavy benchmarks
		// (map growth landing differently across -benchtime) passes.
		if e.AllocsOp > e.Baseline.AllocsOp*(1+pct/100) && e.AllocsOp >= e.Baseline.AllocsOp+1 {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (limit +%g%% and ≥1 alloc)",
				e.Name, e.AllocsOp, e.Baseline.AllocsOp, pct))
		}
	}
	return out
}

// nsDrift estimates the environment speed shift between the baseline
// session and this one: the median current/baseline ns/op ratio over
// gated entries, clamped to ≥1 (see gateRegressions). With fewer than
// four comparable entries the median is too easily dominated by a real
// regression, so the gate stays absolute.
func nsDrift(doc *Doc) float64 {
	var ratios []float64
	for _, e := range doc.Entries {
		if e.Baseline == nil || e.Baseline.NsOp < gateMinNs || e.NsOp <= 0 || !sameProcs(e) {
			continue
		}
		ratios = append(ratios, e.NsOp/e.Baseline.NsOp)
	}
	if len(ratios) < 4 {
		return 1
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	m := ratios[mid]
	if len(ratios)%2 == 0 {
		m = (ratios[mid-1] + ratios[mid]) / 2
	}
	if m < 1 {
		return 1
	}
	return m
}

// sameProcs reports whether an entry and its baseline were measured at
// the same GOMAXPROCS. Documents written before the procs field existed
// carry 0, which is treated as matching — those suites were all serial.
func sameProcs(e Entry) bool {
	return e.Baseline == nil || e.Baseline.Procs == 0 || e.Procs == 0 || e.Procs == e.Baseline.Procs
}

// benchLine matches `BenchmarkName-8   30   123 ns/op   45 B/op ...`;
// the -8 suffix is GOMAXPROCS and is captured into Entry.Procs rather
// than discarded, so the gate can tell serial and parallel runs apart.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// parse extracts benchmark entries and environment lines from go test
// output.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			_ = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: strings.TrimPrefix(m[1], "Benchmark"), Iters: iters, Procs: 1}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil && p > 0 {
				e.Procs = p
			}
		}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsOp = val
			case "B/op":
				e.BytesOp = val
			case "allocs/op":
				e.AllocsOp = val
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = val
			}
		}
		doc.Entries = append(doc.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.Entries = minByName(doc.Entries)
	sort.Slice(doc.Entries, func(i, j int) bool { return doc.Entries[i].Name < doc.Entries[j].Name })
	return doc, nil
}

// minByName collapses repeated runs of the same benchmark (go test
// -count N emits one line per run) into the run with the lowest ns/op.
// The minimum is the standard low-noise estimator for CPU-bound
// benchmarks: external interference only ever adds time, so the fastest
// run is the closest to the code's true cost.
func minByName(entries []Entry) []Entry {
	best := make(map[string]int, len(entries))
	out := entries[:0]
	for _, e := range entries {
		if i, ok := best[e.Name]; ok {
			if e.NsOp < out[i].NsOp {
				out[i] = e
			}
			continue
		}
		best[e.Name] = len(out)
		out = append(out, e)
	}
	return out
}

// embedBaselines attaches the matching entry of an earlier document as
// each benchmark's baseline.
func embedBaselines(doc *Doc, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev Doc
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]*Entry, len(prev.Entries))
	for i := range prev.Entries {
		e := &prev.Entries[i]
		e.Baseline = nil // never nest more than one level
		byName[e.Name] = e
	}
	for i := range doc.Entries {
		if base, ok := byName[doc.Entries[i].Name]; ok {
			doc.Entries[i].Baseline = base
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
