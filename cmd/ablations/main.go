// Command ablations sweeps the design choices DESIGN.md calls out —
// stopping factor, virtual dimension, aggregation staleness, contention
// coefficient, failure mix — and runs the concurrent-kernel GPU
// extension experiment.
//
//	ablations                 # everything at 20% scale
//	ablations -scale 1        # paper-sized populations (slow)
//	ablations -only sf        # a single ablation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetgrid/internal/experiments"
	"hetgrid/internal/perf"
)

func main() {
	scale := flag.Float64("scale", 0.2, "experiment scale (1.0 = paper-sized populations)")
	seed := flag.Int64("seed", 1, "root random seed")
	only := flag.String("only", "all", "ablation to run: sf, virtual, staleness, gamma, gpus, bound, failures, churnlb or all")
	out := flag.String("out", "", "output file (default stdout)")
	pprofPath := flag.String("pprof", "", "write a CPU profile to this file")
	perfStats := flag.Bool("perfstats", false, "enable perf timers and print the counter report to stderr")
	flag.Parse()

	stopPerf, err := perf.Instrument(*pprofPath, *perfStats)
	if err != nil {
		fatal(err)
	}
	defer stopPerf()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	s := experiments.Scale(*scale)
	suite := map[string]func(io.Writer, experiments.Scale, int64) error{
		"sf":        experiments.AblationStoppingFactor,
		"virtual":   experiments.AblationVirtualDimension,
		"staleness": experiments.AblationStaleness,
		"gamma":     experiments.AblationContention,
		"gpus":      experiments.AblationConcurrentGPUs,
		"bound":     experiments.AblationNeighborBound,
		"failures":  experiments.AblationFailureFraction,
		"churnlb":   experiments.AblationChurnLB,
	}
	if *only == "all" {
		if err := experiments.Ablations(w, s, *seed); err != nil {
			fatal(err)
		}
		return
	}
	f, ok := suite[*only]
	if !ok {
		fatal(fmt.Errorf("unknown ablation %q", *only))
	}
	if err := f(w, s, *seed); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ablations:", err)
	os.Exit(1)
}
