package hetgrid

import "testing"

func TestRemoveNodeRequeuesJobs(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1, Seed: 21})
	// Two capable nodes; jobs pinned by capacity to wherever placed.
	a, err := g.AddNode(basicNode())
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddNode(basicNode())
	if err != nil {
		t.Fatal(err)
	}
	// Fill both nodes with work; queue extra jobs.
	var hs []*JobHandle
	for i := 0; i < 8; i++ {
		h, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 2}, DurationHours: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// Find a node that actually holds jobs.
	victim := a
	held := 0
	for _, h := range hs {
		if h.RunNode() == a {
			held++
		}
	}
	if held == 0 {
		victim = b
	}

	requeued, lost, err := g.RemoveNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 1 {
		t.Fatalf("nodes = %d after removal", g.Nodes())
	}
	if len(requeued)+len(lost) == 0 {
		t.Fatal("no jobs were displaced from a loaded node")
	}
	for _, h := range requeued {
		if h.RunNode() == victim {
			t.Fatal("requeued job still assigned to the removed node")
		}
	}
	g.Run()
	st := g.Stats()
	if st.Finished != 8-len(lost) {
		t.Fatalf("finished %d, want %d (8 minus %d lost)", st.Finished, 8-len(lost), len(lost))
	}
}

func TestRemoveNodeLostWhenNoAlternative(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1, Seed: 22})
	gid, err := g.AddNode(gpuNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(basicNode()); err != nil { // CPU-only peer
		t.Fatal(err)
	}
	h, err := g.Submit(JobSpec{
		CPU: &CEReqSpec{Cores: 1}, GPU: &CEReqSpec{Cores: 64}, GPUSlot: 1,
		DurationHours: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.RunNode() != gid {
		t.Fatalf("GPU job on node %d, want the GPU node", h.RunNode())
	}
	requeued, lost, err := g.RemoveNode(gid)
	if err != nil {
		t.Fatal(err)
	}
	if len(requeued) != 0 || len(lost) != 1 {
		t.Fatalf("requeued=%d lost=%d, want 0/1 (no GPU remains)", len(requeued), len(lost))
	}
	if lost[0].Status() != StatusQueued {
		t.Fatal("lost job should remain queued")
	}
}

func TestRemoveUnknownNode(t *testing.T) {
	g, _ := New(Options{})
	if _, _, err := g.RemoveNode(99); err == nil {
		t.Fatal("removing unknown node did not error")
	}
}

func TestRemoveNodeRestartLosesProgress(t *testing.T) {
	g, _ := New(Options{Seed: 23})
	a, _ := g.AddNode(basicNode())
	b, _ := g.AddNode(basicNode())
	h, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim, other := a, b
	if h.RunNode() == b {
		victim, other = b, a
	}
	_ = other
	// Let it run half way, then kill its node.
	g.RunFor(900)
	if h.Status() != StatusRunning {
		t.Fatalf("status %v midway", h.Status())
	}
	requeued, lost, err := g.RemoveNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 || len(requeued) != 1 {
		t.Fatalf("requeued=%d lost=%d", len(requeued), len(lost))
	}
	start := g.NowSeconds()
	g.Run()
	// The job restarted from scratch: a full execution after removal.
	// Node clocks are 2.0, so 1 nominal hour takes 1800 s.
	if got := g.NowSeconds() - start; got < 1800 {
		t.Fatalf("job finished only %.0fs after restart; progress was not discarded", got)
	}
	if h.Status() != StatusFinished {
		t.Fatal("restarted job did not finish")
	}
}

func TestStatsByCE(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1, Seed: 24})
	g.AddNode(gpuNode(1))
	g.AddNode(basicNode())
	g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 0.5})
	g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, GPU: &CEReqSpec{Cores: 32}, GPUSlot: 1, DurationHours: 0.5})
	g.Run()
	st := g.Stats()
	if _, ok := st.MeanWaitByCE["cpu"]; !ok {
		t.Fatalf("no cpu breakdown: %v", st.MeanWaitByCE)
	}
	if _, ok := st.MeanWaitByCE["gpu1"]; !ok {
		t.Fatalf("no gpu1 breakdown: %v", st.MeanWaitByCE)
	}
}

// TestRemoveNodeConservesJobs is the regression test for the silent
// orphan-drop on the failure path: RemoveNode must leave the cluster's
// job accounting balanced (submitted == finished + queued + running)
// after every removal, with every displaced job either re-queued on a
// survivor or reported lost — never silently gone. It also pins the
// ordering fix: the overlay departure happens before the runtime drain,
// so an overlay error cannot strand already-drained orphans.
func TestRemoveNodeConservesJobs(t *testing.T) {
	g, _ := New(Options{GPUSlots: 1, Seed: 25})
	ids, err := g.AddRandomNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := g.Submit(JobSpec{CPU: &CEReqSpec{Cores: 1}, DurationHours: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.cluster.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	displaced := 0
	for _, victim := range ids[:4] {
		requeued, lost, err := g.RemoveNode(victim)
		if err != nil {
			t.Fatal(err)
		}
		displaced += len(requeued) + len(lost)
		if err := g.cluster.CheckConservation(); err != nil {
			t.Fatalf("after removing node %d: %v", victim, err)
		}
		// The overlay must already have forgotten the victim when the
		// orphans were re-matched: no survivor may be the victim.
		for _, h := range requeued {
			if h.RunNode() == victim {
				t.Fatalf("job re-queued on the removed node %d", victim)
			}
		}
	}
	if displaced == 0 {
		t.Fatal("four removals displaced no jobs; the test exercises nothing")
	}
	g.Run()
	if err := g.cluster.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if q, r := g.cluster.Totals(); q != 0 || r != 0 {
		t.Fatalf("drain left (%d queued, %d running)", q, r)
	}
}
