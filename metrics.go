package hetgrid

import (
	"io"

	"hetgrid/internal/metrics"
	"hetgrid/internal/metricsreg"
	"hetgrid/internal/sched"
	"hetgrid/internal/sim"
)

// Metrics is a virtual-clock telemetry plane for one Grid: per-node
// gauges (queue depth, per-CE utilization, neighbor count, aggregated
// load per dimension) and per-interval counters (placements, routing
// and pushing hops, jobs submitted/finished) sampled on the simulation
// clock. Telemetry is passive — attaching a plane never changes what
// the grid computes, only what it reports.
//
// Samples live in fixed-size rings, so memory is bounded regardless of
// how long the simulation runs; once a series wraps, the oldest points
// are dropped first.
type Metrics struct {
	plane *metrics.Plane
}

// NewMetrics creates a telemetry plane sampling every sampleSeconds of
// virtual time (0 means the 60 s default, matching the heartbeat
// period).
func NewMetrics(sampleSeconds float64) *Metrics {
	return &Metrics{plane: metrics.New(sim.FromSeconds(sampleSeconds), 0)}
}

// Len returns the total number of retained points across all series.
func (m *Metrics) Len() int { return m.plane.Len() }

// Samples returns how many sampling sweeps have run.
func (m *Metrics) Samples() int { return m.plane.Samples() }

// SeriesNames lists the registered series in registration order.
func (m *Metrics) SeriesNames() []string {
	ss := m.plane.Series()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// WriteJSONL exports every series as one JSON object per line:
// {"series":...,"t":...,"node":...,"v":...}. Counter series use node
// -1.
func (m *Metrics) WriteJSONL(w io.Writer) error { return m.plane.WriteJSONL(w, "") }

// WriteCSV exports every series as CSV with a "series,t,node,v" header.
func (m *Metrics) WriteCSV(w io.Writer) error { return m.plane.WriteCSV(w) }

// SetMetrics attaches a telemetry plane to the grid. Call it once,
// after New and before submitting work; the plane samples the live
// node set, so nodes added later are picked up automatically. Passing
// nil permanently stops sampling (points already recorded are kept and
// stay exportable).
func (g *Grid) SetMetrics(m *Metrics) {
	if m == nil {
		if g.metrics != nil {
			g.metrics.plane.Stop()
		}
		g.metrics = nil
		return
	}
	g.metrics = m
	p := m.plane
	p.Attach(g.eng)
	metricsreg.RegisterGridGauges(p, g.ov, g.cluster, g.ctx.Agg, g.space.Dims(), g.opts.GPUSlots)
	if st := sched.StatsOf(g.scheduler); st != nil {
		metricsreg.RegisterSchedCounters(p, st)
	}
	metricsreg.RegisterClusterCounters(p, g.cluster)
	g.pokeMetrics()
}

// pokeMetrics re-arms the sampler. The sampler disarms itself whenever
// the event queue drains (otherwise Grid.Run would never return), so
// every entry point that creates new future work pokes it.
func (g *Grid) pokeMetrics() {
	if g.metrics != nil {
		g.metrics.plane.Poke()
	}
}
